// The complete Fig. 2 design flow, file-based:
//
//   partial region specification (.fdf)  --.
//                                           >--> constraint solver --> placement
//   module specification (.mlf)          --'
//
// Run with no arguments to generate a sample fabric + module library in the
// current directory first, or pass existing files:
//
//   ./design_flow [fabric.fdf modules.mlf]
#include <fstream>
#include <iostream>

#include "rrplace.hpp"

namespace {

void write_sample_inputs(const std::string& fdf_path,
                         const std::string& mlf_path) {
  // A 40x12 device with BRAM columns every 8 tiles and a static right flank.
  rr::fpga::ColumnarSpec spec;
  spec.bram_period = 8;
  spec.bram_offset = 4;
  spec.dsp_period = 0;
  spec.center_clock_column = false;
  spec.edge_io = false;
  rr::fpga::Fabric fabric = rr::fpga::make_columnar(40, 12, spec);
  fabric.set_rect(rr::Rect{34, 0, 6, 12}, rr::fpga::ResourceType::kStatic);
  rr::fpga::save_fdf(fdf_path, fabric);

  rr::model::GeneratorParams params;
  params.clb_min = 10;
  params.clb_max = 36;
  params.bram_blocks_max = 2;
  params.bram_block_height = 2;
  params.max_height = 8;
  params.max_width = 7;
  rr::model::ModuleGenerator generator(params, 42);
  rr::model::save_mlf(mlf_path, generator.generate_many(5));
  std::cout << "wrote sample inputs: " << fdf_path << ", " << mlf_path
            << "\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string fdf_path = "design_flow_fabric.fdf";
  std::string mlf_path = "design_flow_modules.mlf";
  if (argc >= 3) {
    fdf_path = argv[1];
    mlf_path = argv[2];
  } else {
    write_sample_inputs(fdf_path, mlf_path);
  }

  // 1. Partial region specification.
  const auto fabric = std::make_shared<const rr::fpga::Fabric>(
      rr::fpga::load_fdf(fdf_path));
  const rr::fpga::PartialRegion region(fabric);
  std::cout << "fabric '" << fabric->name() << "': " << fabric->width() << "x"
            << fabric->height() << ", " << region.total_available()
            << " available tiles\n";

  // 2. Module specification.
  const auto modules = rr::model::load_mlf(mlf_path);
  std::cout << "modules: " << modules.size() << "\n";
  for (const auto& m : modules) {
    std::cout << "  " << m.name() << ": " << m.shape_count()
              << " design alternatives, "
              << m.demand(0, rr::fpga::ResourceType::kClb) << " CLB / "
              << m.demand(0, rr::fpga::ResourceType::kBram) << " BRAM tiles\n";
  }

  // 3. Constraint solver -> optimal placement.
  rr::placer::PlacerOptions options;
  options.time_limit_seconds = 3.0;
  rr::placer::Placer placer(region, modules, options);
  const auto outcome = placer.place();
  if (!outcome.solution.feasible) {
    std::cout << "no feasible placement exists for these inputs\n";
    return 1;
  }
  const auto report = rr::placer::validate(region, modules, outcome.solution);

  std::cout << '\n'
            << rr::render::placement_ascii(region, modules, outcome.solution)
            << rr::render::legend() << '\n'
            << "extent " << outcome.solution.extent << " columns"
            << (outcome.optimal ? " (proven optimal)" : "") << ", utilization "
            << rr::TextTable::pct(rr::placer::spanned_utilization(
                   region, modules, outcome.solution))
            << ", solved in " << outcome.seconds << " s\n"
            << "validator: " << (report.ok() ? "OK" : "FAILED") << '\n';

  rr::render::save_placement_svg("design_flow_placement.svg", region, modules,
                                 outcome.solution);
  std::cout << "floorplan written to design_flow_placement.svg\n";
  return report.ok() ? 0 : 1;
}
