// Placeability study: how often does a random module set fit at all?
//
// Beyond packing density, design alternatives raise the *service level* of
// a reconfigurable system (§II): module requests that are unplaceable with
// one fixed layout become placeable when the placer may pick among
// alternatives. This example samples many random workloads on a tight
// heterogeneous region and reports the fraction that fits in each
// configuration.
//
//   ./placeability [trials] [modules-per-trial]
#include <cstdlib>
#include <iostream>

#include "rrplace.hpp"

int main(int argc, char** argv) {
  using namespace rr;
  const int trials = argc > 1 ? std::atoi(argv[1]) : 20;
  const int module_count = argc > 2 ? std::atoi(argv[2]) : 6;

  // A deliberately tight device: few memory columns, small area.
  fpga::IrregularSpec spec;
  spec.base.bram_period = 9;
  spec.base.bram_offset = 4;
  spec.base.dsp_period = 0;
  spec.base.center_clock_column = true;
  spec.base.edge_io = false;
  spec.interruption_probability = 0.5;

  int fits_without = 0, fits_with = 0, fits_only_with = 0;
  double util_without = 0, util_with = 0;
  for (int trial = 0; trial < trials; ++trial) {
    const std::uint64_t seed = 1000 + static_cast<std::uint64_t>(trial);
    auto fabric = std::make_shared<const fpga::Fabric>(
        fpga::make_irregular(30, 16, spec, seed));
    const fpga::PartialRegion region(fabric);

    model::GeneratorParams params;
    params.clb_min = 15;
    params.clb_max = 45;
    params.bram_blocks_max = 2;
    params.max_height = 10;
    params.max_width = 8;
    model::ModuleGenerator generator(params, seed);
    const auto modules = generator.generate_many(module_count);

    bool ok[2] = {false, false};
    for (const bool alternatives : {false, true}) {
      placer::PlacerOptions options;
      options.use_alternatives = alternatives;
      options.time_limit_seconds = 1.0;
      options.seed = seed;
      const auto outcome = placer::Placer(region, modules, options).place();
      ok[alternatives] = outcome.solution.feasible;
      if (outcome.solution.feasible) {
        const double util =
            placer::spanned_utilization(region, modules, outcome.solution);
        (alternatives ? util_with : util_without) += util;
      }
    }
    fits_without += ok[0];
    fits_with += ok[1];
    fits_only_with += !ok[0] && ok[1];
  }

  TextTable table({"Configuration", "Workloads placed", "Mean util. (when placed)"});
  table.add_row({"without alternatives",
                 std::to_string(fits_without) + "/" + std::to_string(trials),
                 fits_without ? TextTable::pct(util_without / fits_without)
                              : "-"});
  table.add_row({"with alternatives",
                 std::to_string(fits_with) + "/" + std::to_string(trials),
                 fits_with ? TextTable::pct(util_with / fits_with) : "-"});
  table.print(std::cout, "Placeability on a tight heterogeneous region");
  std::cout << fits_only_with
            << " workload(s) fit ONLY when design alternatives are "
               "considered.\n";
  return 0;
}
