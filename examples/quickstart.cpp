// Quickstart: generate a small workload, place it optimally on a
// heterogeneous fabric, and print the resulting floorplan.
//
//   ./quickstart [module-count] [seed]
#include <cstdlib>
#include <iostream>

#include "rrplace.hpp"

int main(int argc, char** argv) {
  const int module_count = argc > 1 ? std::atoi(argv[1]) : 8;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 7;

  // 1. A device: 48x16 tiles, BRAM columns every 8 tiles.
  rr::fpga::ColumnarSpec spec;
  spec.bram_period = 8;
  spec.dsp_period = 0;
  spec.center_clock_column = false;
  spec.edge_io = false;
  auto fabric = std::make_shared<const rr::fpga::Fabric>(
      rr::fpga::make_columnar(48, 16, spec));
  rr::fpga::PartialRegion region(fabric);

  // 2. A workload: small modules with four design alternatives each.
  rr::model::GeneratorParams params;
  params.clb_min = 8;
  params.clb_max = 30;
  params.bram_blocks_max = 2;
  params.max_height = 8;
  rr::model::ModuleGenerator generator(params, seed);
  const auto modules = generator.generate_many(module_count);

  // 3. Place, minimizing the occupied extent (paper eq. 6).
  rr::placer::PlacerOptions options;
  options.time_limit_seconds = 2.0;
  rr::placer::Placer placer(region, modules, options);
  const auto outcome = placer.place();

  if (!outcome.solution.feasible) {
    std::cout << "no feasible placement found\n";
    return 1;
  }
  const auto report = rr::placer::validate(region, modules, outcome.solution);
  std::cout << rr::render::placement_ascii(region, modules, outcome.solution)
            << rr::render::legend() << '\n'
            << "extent: " << outcome.solution.extent << " columns"
            << (outcome.optimal ? " (optimal)" : " (best found)") << '\n'
            << "utilization of spanned area: "
            << 100.0 * rr::placer::spanned_utilization(region, modules,
                                                       outcome.solution)
            << "%\n"
            << "solve time: " << outcome.seconds << " s, nodes: "
            << outcome.stats.nodes << ", fails: " << outcome.stats.fails
            << '\n'
            << "validator: " << (report.ok() ? "OK" : "FAILED") << '\n';
  return report.ok() ? 0 : 1;
}
