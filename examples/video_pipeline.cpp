// Domain scenario: a runtime reconfigurable video processing system.
//
// A set of hand-modeled IP cores (the kind of workload the paper's
// introduction motivates) is floorplanned onto a Virtex-style device. Each
// core is written directly in the module library format, with explicit
// design alternatives: rotations, moved memory columns, reshaped bounding
// boxes. The example compares service quality with and without the
// alternatives — on a tight region, alternatives decide whether the whole
// pipeline fits at all.
#include <iostream>

#include "rrplace.hpp"

namespace {

// IP cores of the pipeline. Top row first; B = embedded memory, C = logic.
constexpr const char* kPipelineLibrary = R"(# video pipeline IP cores
module deinterlacer
shape
BCCCC
BCCCC
BCCCC
BCCCC
endshape
shape
CCCCB
CCCCB
CCCCB
CCCCB
endshape
shape
BCCCCCCC
BCCCCCCC
BCCCC...
endshape
endmodule
module scaler
shape
BCCC
BCCC
BCCC
BCCC
BCCC
BCCC
endshape
shape
CCCB
CCCB
CCCB
CCCB
CCCB
CCCB
endshape
shape
BCCCCCC
BCCCCCC
BCCCCCC
B......
B......
B......
endshape
endmodule
module edge_detect
shape
CCC
CCC
CCC
endshape
shape
CCCCC
CCCC.
endshape
endmodule
module motion_comp
shape
BCCCCC
BCCCCC
BCCCCC
BCCCCC
endshape
shape
CCCCCB
CCCCCB
CCCCCB
CCCCCB
endshape
endmodule
module osd_overlay
shape
CCCC
CCCC
endshape
shape
CC
CC
CC
CC
endshape
endmodule
)";

}  // namespace

int main() {
  using namespace rr;
  // The device: a deliberately tight 14x10 region with memory columns every
  // 7 tiles - fitting the whole pipeline depends on layout choices.
  fpga::ColumnarSpec spec;
  spec.bram_period = 7;
  spec.bram_offset = 0;
  spec.dsp_period = 0;
  spec.center_clock_column = false;
  spec.edge_io = false;
  auto fabric = std::make_shared<const fpga::Fabric>(
      fpga::make_columnar(14, 10, spec));
  const fpga::PartialRegion region(fabric);

  const auto modules = model::parse_mlf_string(kPipelineLibrary);
  std::cout << "video pipeline: " << modules.size() << " IP cores\n";
  for (const auto& m : modules) {
    std::cout << "  " << m.name() << " (" << m.shape_count()
              << " layouts, " << m.shapes().front().area() << " tiles)\n";
  }
  std::cout << '\n';

  for (const bool alternatives : {false, true}) {
    placer::PlacerOptions options;
    options.use_alternatives = alternatives;
    options.time_limit_seconds = 2.0;
    const auto outcome = placer::Placer(region, modules, options).place();
    std::cout << "=== " << (alternatives ? "with" : "without")
              << " design alternatives ===\n";
    if (!outcome.solution.feasible) {
      std::cout << "pipeline does NOT fit"
                << (outcome.optimal ? " (proven)" : "") << "\n\n";
      continue;
    }
    const auto report = placer::validate(region, modules, outcome.solution);
    std::cout << render::placement_ascii(region, modules, outcome.solution)
              << "extent " << outcome.solution.extent << " columns, "
              << "utilization "
              << TextTable::pct(placer::spanned_utilization(
                     region, modules, outcome.solution))
              << ", fragmentation "
              << TextTable::num(
                     placer::fragmentation(region, modules, outcome.solution),
                     2)
              << (outcome.optimal ? ", optimal" : "") << ", validator "
              << (report.ok() ? "OK" : "FAILED") << "\n\n";
  }
  std::cout << render::legend();
  return 0;
}
