// A phased runtime reconfigurable system: an application that cycles
// through operating modes (phases), each activating a subset of a module
// pool. Shows the ReconfigurationManager's two placement policies and the
// area / reconfiguration-time trade-off between them.
//
//   ./phased_system [phases] [modules-per-phase]
#include <cstdlib>
#include <iostream>

#include "rrplace.hpp"

int main(int argc, char** argv) {
  using namespace rr;
  const int phases = argc > 1 ? std::atoi(argv[1]) : 4;
  const int per_phase = argc > 2 ? std::atoi(argv[2]) : 5;

  // Device and pool.
  fpga::IrregularSpec spec;
  spec.base.bram_period = 12;
  spec.base.bram_offset = 5;
  spec.base.dsp_period = 0;
  spec.base.edge_io = false;
  auto fabric = std::make_shared<const fpga::Fabric>(
      fpga::make_irregular(64, 28, spec, 99));
  const fpga::PartialRegion region(fabric);

  model::GeneratorParams params;
  params.clb_min = 20;
  params.clb_max = 80;
  params.bram_blocks_max = 3;
  params.max_width = 11;
  params.max_height = 14;
  model::ModuleGenerator generator(params, 99);
  const auto pool = generator.generate_many(per_phase * 2);

  const runtime::Schedule schedule = runtime::make_rolling_schedule(
      static_cast<int>(pool.size()), phases, per_phase,
      /*keep_fraction=*/0.6, /*seed=*/5);
  std::cout << "schedule: " << phases << " phases over a pool of "
            << pool.size() << " modules\n";
  for (const auto& phase : schedule.phases) {
    std::cout << "  " << phase.name << ":";
    for (const int id : phase.active_modules)
      std::cout << ' ' << pool[static_cast<std::size_t>(id)].name();
    std::cout << '\n';
  }

  placer::PlacerOptions options;
  options.time_limit_seconds = 1.0;
  const runtime::ReconfigurationManager manager(region, pool, options);

  for (const auto policy : {runtime::PlacementPolicy::kReplaceAll,
                            runtime::PlacementPolicy::kIncremental}) {
    const bool incremental =
        policy == runtime::PlacementPolicy::kIncremental;
    const runtime::RunResult result = manager.run(schedule, policy);
    std::cout << "\n=== policy: "
              << (incremental ? "incremental" : "replace-all") << " ===\n";
    for (std::size_t p = 0; p < result.phases.size(); ++p) {
      const auto& phase = result.phases[p];
      const auto& cost = result.transitions[p];
      std::cout << "  " << schedule.phases[p].name << ": ";
      if (!phase.feasible) {
        std::cout << "INFEASIBLE\n";
        continue;
      }
      std::cout << "extent " << phase.extent << ", util "
                << TextTable::pct(phase.utilization) << ", transition wrote "
                << cost.tiles_written << " tiles (" << cost.modules_loaded
                << " loaded, " << cost.modules_kept << " kept)"
                << (phase.fell_back ? " [fell back to re-place]" : "")
                << '\n';
    }
    const auto mean_util = result.mean_utilization();
    std::cout << "  total tiles written: " << result.total_tiles_written()
              << ", mean utilization: "
              << (mean_util ? TextTable::pct(*mean_util) : "n/a") << '\n';
  }
  std::cout << "\nreplace-all packs each phase tighter; incremental keeps "
               "running modules untouched and rewrites far less.\n";
  return 0;
}
