// Compaction / defragmentation and the per-resource utilization breakdown.
#include <gtest/gtest.h>

#include "baseline/greedy.hpp"
#include "baseline/online.hpp"
#include "fpga/builders.hpp"
#include "model/generator.hpp"
#include "placer/compaction.hpp"
#include "placer/metrics.hpp"
#include "placer/validator.hpp"
#include "util/rng.hpp"

namespace rr::placer {
namespace {

using model::Module;
using model::ModuleGenerator;

std::shared_ptr<fpga::PartialRegion> homogeneous_region(int w, int h) {
  auto fabric =
      std::make_shared<const fpga::Fabric>(fpga::make_homogeneous(w, h));
  return std::make_shared<fpga::PartialRegion>(fabric);
}

Module rect_module(const std::string& name, int w, int h) {
  return Module(name, {ModuleGenerator::make_column_shape(w * h, 0, 1, h, 0)});
}

TEST(Compaction, ShrinksASpreadOutPlacement) {
  const auto region = homogeneous_region(16, 4);
  std::vector<Module> modules;
  for (int i = 0; i < 4; ++i)
    modules.push_back(rect_module("m" + std::to_string(i), 2, 2));
  // Hand-spread placement: one module per column group.
  PlacementSolution spread;
  spread.feasible = true;
  for (int i = 0; i < 4; ++i)
    spread.placements.push_back(ModulePlacement{i, 0, i * 4, 0});
  spread.extent = 14;
  ASSERT_TRUE(validate(*region, modules, spread).ok());

  CompactionOptions options;
  options.time_limit_seconds = 3.0;
  const CompactionResult result =
      compact(*region, modules, spread, options);
  EXPECT_EQ(result.extent_before, 14);
  EXPECT_EQ(result.extent_after, 4);  // area bound: 16 cells / height 4
  EXPECT_TRUE(result.optimal);
  EXPECT_GT(result.relocated, 0);
  EXPECT_TRUE(validate(*region, modules, result.solution).ok());
}

TEST(Compaction, NeverWorsensAnAlreadyTightPlacement) {
  const auto region = homogeneous_region(4, 4);
  std::vector<Module> modules;
  for (int i = 0; i < 4; ++i)
    modules.push_back(rect_module("m" + std::to_string(i), 2, 2));
  PlacementSolution tight;
  tight.feasible = true;
  tight.placements = {{0, 0, 0, 0}, {1, 0, 2, 0}, {2, 0, 0, 2}, {3, 0, 2, 2}};
  tight.extent = 4;
  const CompactionResult result = compact(*region, modules, tight,
                                          CompactionOptions{0.2, true, 1});
  EXPECT_EQ(result.extent_after, 4);
  EXPECT_TRUE(result.optimal);
  EXPECT_TRUE(validate(*region, modules, result.solution).ok());
}

TEST(Compaction, RejectsInvalidInput) {
  const auto region = homogeneous_region(4, 4);
  const std::vector<Module> modules{rect_module("a", 2, 2)};
  PlacementSolution bad;
  bad.feasible = true;
  bad.placements = {{0, 0, 3, 3}};  // pokes out of the region
  bad.extent = 5;
  EXPECT_THROW(compact(*region, modules, bad), InvalidInput);
}

TEST(Compaction, DefragmentsAfterOnlineChurn) {
  // Produce a fragmented layout by churning the online placer, then
  // compact the survivors.
  const auto region = homogeneous_region(24, 6);
  model::GeneratorParams params;
  params.clb_min = 4;
  params.clb_max = 12;
  params.bram_blocks_max = 0;
  params.max_height = 4;
  ModuleGenerator generator(params, 7);
  const auto pool = generator.generate_many(6);

  baseline::OnlinePlacer online(*region);
  Rng rng(42);
  std::vector<std::pair<int, int>> live;  // (instance id, pool index)
  int next_id = 0;
  for (int step = 0; step < 120; ++step) {
    if (live.empty() || rng.chance(0.55)) {
      const std::size_t pick = rng.pick_index(pool);
      if (online.place(next_id, pool[pick]))
        live.emplace_back(next_id, static_cast<int>(pick));
      ++next_id;
    } else {
      const std::size_t pick = rng.pick_index(live);
      online.remove(live[pick].first);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    }
  }
  ASSERT_GE(live.size(), 2u) << "churn left too few modules to compact";

  // Snapshot the survivors as a placement problem. (The online placer does
  // not expose positions, so re-place survivors greedily for the snapshot.)
  std::vector<Module> modules;
  for (const auto& [id, pool_index] : live)
    modules.push_back(pool[static_cast<std::size_t>(pool_index)]);
  const auto greedy = baseline::place_greedy(*region, modules);
  ASSERT_TRUE(greedy.solution.feasible);
  const CompactionResult result = compact(
      *region, modules, greedy.solution, CompactionOptions{1.0, true, 3});
  EXPECT_LE(result.extent_after, result.extent_before);
  EXPECT_TRUE(validate(*region, modules, result.solution).ok());
}

TEST(Metrics, ResourceBreakdownSeparatesTypes) {
  // 6x2 fabric with a BRAM column at x=2; module uses 2 BRAM + 4 CLB.
  auto fabric = std::make_shared<const fpga::Fabric>([] {
    fpga::Fabric f(6, 2);
    f.set_column(2, fpga::ResourceType::kBram);
    return f;
  }());
  const fpga::PartialRegion region(fabric);
  const Module m("m", {ModuleGenerator::make_column_shape(4, 1, 2, 2, 0)});
  const std::vector<Module> modules{m};
  PlacementSolution solution;
  solution.feasible = true;
  solution.placements = {{0, 0, 2, 0}};  // BRAM column on x=2
  solution.extent = 5;
  const auto breakdown =
      resource_utilization_breakdown(region, modules, solution);
  // Span columns 0..4: 8 CLB tiles offered, 4 used; 2 BRAM offered, 2 used.
  EXPECT_DOUBLE_EQ(breakdown[static_cast<int>(fpga::ResourceType::kClb)],
                   0.5);
  EXPECT_DOUBLE_EQ(breakdown[static_cast<int>(fpga::ResourceType::kBram)],
                   1.0);
  EXPECT_DOUBLE_EQ(breakdown[static_cast<int>(fpga::ResourceType::kDsp)],
                   0.0);
}

TEST(Metrics, ResourceBreakdownInfeasibleIsZero) {
  const auto region = homogeneous_region(4, 4);
  const std::vector<Module> modules{rect_module("a", 2, 2)};
  const auto breakdown =
      resource_utilization_breakdown(*region, modules, PlacementSolution{});
  for (const double v : breakdown) EXPECT_DOUBLE_EQ(v, 0.0);
}

}  // namespace
}  // namespace rr::placer
