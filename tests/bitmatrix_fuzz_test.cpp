// Word-edge fuzz for BitMatrix and ReversibleSparseBitSet.
//
// The SIMD rewrite moved both onto the dispatch kernels, so the dangerous
// inputs are the ones where vector lanes meet word boundaries: widths of
// 63/64/65/127/130 columns, shifted operations whose windows straddle
// words, and tail words whose high bits must stay zero. Everything is
// checked against naive set-based references; CI runs the suite on both
// RRPLACE_SIMD legs, making this a differential oracle for the kernels as
// used by the real data structures.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <utility>
#include <vector>

#include "cp/sparse_bitset.hpp"
#include "util/bitmatrix.hpp"
#include "util/rng.hpp"

namespace rr {
namespace {

using CellRef = std::set<std::pair<int, int>>;  // (row, col)

// Widths chosen to land on and around 64-bit word edges; heights stay small
// so the fuzz rounds cover many (width, shift) combinations cheaply.
const int kWidths[] = {1, 7, 63, 64, 65, 127, 128, 130};

BitMatrix random_matrix(Rng& rng, int rows, int cols, int fill_pct,
                        CellRef* ref = nullptr) {
  BitMatrix m(rows, cols);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (rng.bounded(100) < static_cast<std::uint64_t>(fill_pct)) {
        m.set(r, c, true);
        if (ref) ref->emplace(r, c);
      }
    }
  }
  return m;
}

CellRef to_ref(const BitMatrix& m) {
  CellRef ref;
  for (int r = 0; r < m.rows(); ++r)
    for (int c = 0; c < m.cols(); ++c)
      if (m.get(r, c)) ref.emplace(r, c);
  return ref;
}

/// Tail bits beyond cols() must be zero in every stored row — the invariant
/// all word-parallel operations rely on.
void expect_tail_clear(const BitMatrix& m) {
  for (int r = 0; r < m.rows(); ++r) {
    const auto row = m.row_span(r);
    for (int c = m.cols(); c < static_cast<int>(row.size()) * 64; ++c)
      ASSERT_FALSE((row[static_cast<std::size_t>(c >> 6)] >> (c & 63)) & 1u)
          << "tail bit set at row " << r << " col " << c;
  }
}

TEST(BitMatrixFuzzTest, PopcountAndRowPopcountAtWordEdges) {
  Rng rng(101);
  for (const int cols : kWidths) {
    CellRef ref;
    const BitMatrix m = random_matrix(rng, 5, cols, 40, &ref);
    EXPECT_EQ(m.popcount(), ref.size());
    for (int r = 0; r < m.rows(); ++r) {
      std::size_t want = 0;
      for (const auto& [rr_, cc] : ref) want += (rr_ == r);
      EXPECT_EQ(m.row_popcount(r), want);
    }
  }
}

TEST(BitMatrixFuzzTest, ShiftedOpsMatchSetReference) {
  Rng rng(103);
  for (const int cols : kWidths) {
    for (int round = 0; round < 6; ++round) {
      const int rows = 3 + static_cast<int>(rng.bounded(4));
      const int o_rows = 1 + static_cast<int>(rng.bounded(3));
      const int o_cols = 1 + static_cast<int>(rng.bounded(
                                 static_cast<std::uint64_t>(cols)));
      CellRef base_ref, other_ref;
      const BitMatrix base = random_matrix(rng, rows, cols, 35, &base_ref);
      const BitMatrix other =
          random_matrix(rng, o_rows, o_cols, 50, &other_ref);

      // Shifts cover fully-inside, word-straddling, and hanging-outside
      // placements in both directions.
      for (int dr = -o_rows - 1; dr <= rows + 1; ++dr) {
        for (const int dc : {-o_cols - 1, -1, 0, 1, 62, 63, 64, 65,
                             cols - o_cols, cols - 1, cols + 1}) {
          std::size_t want_overlap = 0;
          bool want_covers = true;
          for (const auto& [r, c] : other_ref) {
            const int tr = r + dr, tc = c + dc;
            const bool inside =
                tr >= 0 && tr < rows && tc >= 0 && tc < cols;
            const bool hit = inside && base_ref.count({tr, tc}) > 0;
            want_overlap += hit;
            want_covers = want_covers && hit;  // outside => not covered
          }
          EXPECT_EQ(base.overlap_popcount_shifted(other, dr, dc),
                    want_overlap)
              << "cols=" << cols << " dr=" << dr << " dc=" << dc;
          EXPECT_EQ(base.intersects_shifted(other, dr, dc), want_overlap > 0);
          EXPECT_EQ(base.covers_shifted(other, dr, dc), want_covers);

          // clear_shifted accepts any placement (out-of-range bits of
          // `other` are simply ignored).
          BitMatrix cleared = base;
          cleared.clear_shifted(other, dr, dc);
          CellRef want_cleared = base_ref;
          for (const auto& [r, c] : other_ref)
            want_cleared.erase({r + dr, c + dc});
          EXPECT_EQ(to_ref(cleared), want_cleared)
              << "cols=" << cols << " dr=" << dr << " dc=" << dc;
          expect_tail_clear(cleared);

          // or_shifted requires every set bit to land inside.
          bool fits = true;
          for (const auto& [r, c] : other_ref) {
            const int tr = r + dr, tc = c + dc;
            fits = fits && tr >= 0 && tr < rows && tc >= 0 && tc < cols;
          }
          if (fits) {
            BitMatrix merged = base;
            merged.or_shifted(other, dr, dc);
            CellRef want_merged = base_ref;
            for (const auto& [r, c] : other_ref)
              want_merged.emplace(r + dr, c + dc);
            EXPECT_EQ(to_ref(merged), want_merged)
                << "cols=" << cols << " dr=" << dr << " dc=" << dc;
            expect_tail_clear(merged);
          }
        }
      }
    }
  }
}

TEST(BitMatrixFuzzTest, AndOrWithMatchSetReference) {
  Rng rng(107);
  for (const int cols : kWidths) {
    CellRef a_ref, b_ref;
    const BitMatrix a = random_matrix(rng, 4, cols, 45, &a_ref);
    const BitMatrix b = random_matrix(rng, 4, cols, 45, &b_ref);

    BitMatrix anded = a, ored = a;
    anded.and_with(b);
    ored.or_with(b);

    CellRef want_and, want_or = a_ref;
    for (const auto& cell : a_ref)
      if (b_ref.count(cell)) want_and.insert(cell);
    want_or.insert(b_ref.begin(), b_ref.end());

    EXPECT_EQ(to_ref(anded), want_and) << "cols=" << cols;
    EXPECT_EQ(to_ref(ored), want_or) << "cols=" << cols;
    expect_tail_clear(anded);
    expect_tail_clear(ored);
  }
}

// ---------------------------------------------------------------------------
// ReversibleSparseBitSet vs a std::set<long> model with an explicit undo
// stack. Verifies the SIMD dense paths (count / and_mask / and_not_mask /
// intersects) and that pop_level restores exactly.
// ---------------------------------------------------------------------------

class RsbModel {
 public:
  explicit RsbModel(long bits) : bits_(bits) {
    for (long b = 0; b < bits; ++b) live_.insert(b);
  }

  void and_mask(const std::vector<std::uint64_t>& mask) {
    for (auto it = live_.begin(); it != live_.end();)
      it = bit_of(mask, *it) ? std::next(it) : live_.erase(it);
  }
  void and_not_mask(const std::vector<std::uint64_t>& mask) {
    for (auto it = live_.begin(); it != live_.end();)
      it = bit_of(mask, *it) ? live_.erase(it) : std::next(it);
  }
  void clear_bit(long b) { live_.erase(b); }
  void push_level() { saved_.push_back(live_); }
  void pop_level() {
    live_ = saved_.back();
    saved_.pop_back();
  }

  [[nodiscard]] const std::set<long>& live() const { return live_; }
  [[nodiscard]] bool intersects(const std::vector<std::uint64_t>& mask) const {
    for (const long b : live_)
      if (bit_of(mask, b)) return true;
    return false;
  }

 private:
  static bool bit_of(const std::vector<std::uint64_t>& mask, long b) {
    return (mask[static_cast<std::size_t>(b >> 6)] >> (b & 63)) & 1u;
  }
  long bits_;
  std::set<long> live_;
  std::vector<std::set<long>> saved_;
};

void expect_same(const cp::ReversibleSparseBitSet& rsb, const RsbModel& model,
                 long bits) {
  ASSERT_EQ(rsb.count(), static_cast<long>(model.live().size()));
  ASSERT_EQ(rsb.empty(), model.live().empty());
  for (long b = 0; b < bits; ++b)
    ASSERT_EQ(rsb.test(b), model.live().count(b) > 0) << "bit " << b;
}

TEST(SparseBitSetFuzzTest, TrailReplayAtWordEdges) {
  // Bit counts around word edges; 130 gives three words so the dense-path
  // gate (limit*2 >= num_words) flips both ways during a run.
  for (const long bits : {63L, 64L, 65L, 130L, 192L, 257L}) {
    Rng rng(211 + static_cast<std::uint64_t>(bits));
    cp::ReversibleSparseBitSet rsb;
    rsb.init_full(bits);
    RsbModel model(bits);
    const int num_words = rsb.num_words();

    auto random_mask = [&](int fill_pct) {
      std::vector<std::uint64_t> mask(static_cast<std::size_t>(num_words));
      for (long b = 0; b < bits; ++b) {
        if (rng.bounded(100) < static_cast<std::uint64_t>(fill_pct))
          mask[static_cast<std::size_t>(b >> 6)] |= std::uint64_t{1}
                                                    << (b & 63);
      }
      return mask;
    };

    int depth = 0;
    for (int step = 0; step < 400; ++step) {
      const auto op = rng.bounded(10);
      if (op < 2) {
        rsb.push_level();
        model.push_level();
        ++depth;
      } else if (op < 4 && depth > 0) {
        rsb.pop_level();
        model.pop_level();
        --depth;
      } else if (op < 6) {
        // Dense masks keep the set populated; sparse masks drive words to
        // zero and shrink the active prefix.
        const auto mask = random_mask(op == 4 ? 90 : 40);
        rsb.and_mask(mask);
        model.and_mask(mask);
      } else if (op < 8) {
        const auto mask = random_mask(15);
        rsb.and_not_mask(mask);
        model.and_not_mask(mask);
      } else if (op == 8) {
        const long b = static_cast<long>(
            rng.bounded(static_cast<std::uint64_t>(bits)));
        if (rsb.test(b)) {
          rsb.clear_bit(b);
          model.clear_bit(b);
        }
      } else {
        const auto mask = random_mask(static_cast<int>(rng.bounded(60)));
        int residue = 0;
        EXPECT_EQ(rsb.intersects(mask, residue), model.intersects(mask))
            << "bits=" << bits << " step=" << step;
      }
      expect_same(rsb, model, bits);
    }
    while (depth-- > 0) {
      rsb.pop_level();
      model.pop_level();
      expect_same(rsb, model, bits);
    }
  }
}

TEST(SparseBitSetFuzzTest, ResidueWitnessStaysValid) {
  // The residue cache must never change results — only speed. Drive one
  // residue int through many intersects calls against changing sets.
  const long bits = 257;
  Rng rng(401);
  cp::ReversibleSparseBitSet rsb;
  rsb.init_full(bits);
  RsbModel model(bits);
  const int num_words = rsb.num_words();

  int residue = 0;
  for (int step = 0; step < 300; ++step) {
    std::vector<std::uint64_t> mask(static_cast<std::size_t>(num_words));
    for (long b = 0; b < bits; ++b)
      if (rng.bounded(100) < 10)
        mask[static_cast<std::size_t>(b >> 6)] |= std::uint64_t{1} << (b & 63);
    ASSERT_EQ(rsb.intersects(mask, residue), model.intersects(mask))
        << "step=" << step;
    ASSERT_GE(residue, 0);
    ASSERT_LT(residue, num_words);
    if (step % 3 == 0) {
      const auto thin = [&] {
        std::vector<std::uint64_t> m(static_cast<std::size_t>(num_words));
        for (long b = 0; b < bits; ++b)
          if (rng.bounded(100) < 70)
            m[static_cast<std::size_t>(b >> 6)] |= std::uint64_t{1}
                                                   << (b & 63);
        return m;
      }();
      rsb.and_mask(thin);
      model.and_mask(thin);
    }
  }
}

}  // namespace
}  // namespace rr
