// Multi-tenant soak: 8 tenants sharded over 4 workers, each driven by its
// own submitter thread with a deterministic churn script (places, removes,
// fault injections, repairs). Verifies the service's concurrency contract:
//
//   1. Responses and final occupancy are bit-identical, per tenant, to a
//      serial replay of that tenant's script through a fresh Tenant (the
//      oracle shares Tenant::apply, so this pins scheduling/batching/cache
//      effects, not the placement policy).
//   2. No leaked tiles: the occupancy bitmap, the occupied-tile counter,
//      and the live footprints agree exactly.
//   3. No stale solve context: no live instance overlaps the fault mask
//      (placements after a fault went through refreshed tables).
//
// Runs under the `concurrent` ctest label, so the TSan CI leg executes it
// with real thread interleavings.
#include <gtest/gtest.h>

#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "fpga/builders.hpp"
#include "model/generator.hpp"
#include "service/service.hpp"
#include "util/clock.hpp"
#include "util/rng.hpp"

namespace rr::service {
namespace {

using model::Module;
using model::ModuleGenerator;

constexpr int kTenants = 8;
constexpr int kWorkers = 4;
constexpr int kRequestsPerTenant = 160;
constexpr int kFabricW = 12;
constexpr int kFabricH = 6;

std::vector<Module> soak_library() {
  // Mixed sizes incl. an alternative-rich module so cached tables cover
  // multi-shape lookups too.
  std::vector<Module> lib;
  lib.push_back(Module("s1", {ModuleGenerator::make_column_shape(1, 0, 1, 1, 0)}));
  lib.push_back(Module("s4", {ModuleGenerator::make_column_shape(4, 0, 1, 2, 0),
                              ModuleGenerator::make_column_shape(4, 0, 1, 4, 0)}));
  lib.push_back(Module("s6", {ModuleGenerator::make_column_shape(6, 0, 1, 3, 0),
                              ModuleGenerator::make_column_shape(6, 0, 1, 2, 0)}));
  return lib;
}

Tenant::Config soak_config(const std::shared_ptr<const fpga::Fabric>& fabric,
                           SolveContextCache* cache) {
  Tenant::Config config;
  config.fabric = fabric;
  config.library = soak_library();
  config.cache = cache;
  return config;
}

Request place_request(int tenant, int instance) {
  Request request;
  request.tenant = tenant;
  request.op = RequestOp::kPlace;
  request.instance = instance;
  request.module = 0;  // the 1x1 module: always placeable on a healthy fabric
  return request;
}

/// Deterministic per-tenant churn script. Fault rate is low enough that
/// tenants keep placing between fabric epochs, high enough that every
/// tenant sees several context invalidations.
std::vector<Request> tenant_script(int tenant) {
  Rng rng(0x50AB1E5ULL + static_cast<std::uint64_t>(tenant) * 7919);
  std::vector<Request> script;
  std::vector<int> live;
  int next_instance = 0;
  int faulted_column = -1;
  for (int i = 0; i < kRequestsPerTenant; ++i) {
    Request request;
    request.tenant = tenant;
    if (rng.chance(0.04)) {
      // Fault event: alternate transient tile faults and scrub repairs.
      request.op = RequestOp::kFault;
      if (faulted_column >= 0 && rng.chance(0.5)) {
        request.fault.op = fpga::FaultEvent::Op::kRepairTransient;
        faulted_column = -1;
      } else {
        request.fault.op = fpga::FaultEvent::Op::kTile;
        request.fault.kind = fpga::FaultKind::kTransient;
        const int x = rng.uniform_int(0, kFabricW - 1);
        const int y = rng.uniform_int(0, kFabricH - 1);
        request.fault.rect = Rect{x, y, 1, 1};
        faulted_column = x;
      }
    } else if (!live.empty() && rng.chance(0.45)) {
      request.op = RequestOp::kRemove;
      const std::size_t pick = rng.pick_index(live);
      request.instance = live[pick];
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    } else {
      request.op = RequestOp::kPlace;
      request.instance = next_instance++;
      request.module = rng.uniform_int(0, 2);
      live.push_back(request.instance);
    }
    script.push_back(request);
  }
  return script;
}

TEST(ServiceSoak, ConcurrentChurnMatchesSerialOracleExactly) {
  const auto fabric = std::make_shared<const fpga::Fabric>(
      fpga::make_homogeneous(kFabricW, kFabricH));

  // Scripts first (deterministic, shared by service run and oracle).
  std::vector<std::vector<Request>> scripts;
  scripts.reserve(kTenants);
  for (int t = 0; t < kTenants; ++t) scripts.push_back(tenant_script(t));

  // --- Service run: one submitter thread per tenant.
  std::vector<Tenant::Config> configs;
  configs.reserve(kTenants);
  for (int t = 0; t < kTenants; ++t)
    configs.push_back(soak_config(fabric, nullptr));  // cache set by service
  ServiceOptions options;
  options.workers = kWorkers;
  options.queue_capacity = 32;
  PlacementService service(std::move(configs), options);

  std::vector<std::vector<Response>> responses(kTenants);
  {
    std::vector<std::thread> submitters;
    submitters.reserve(kTenants);
    for (int t = 0; t < kTenants; ++t) {
      submitters.emplace_back([&, t] {
        std::vector<std::future<Response>> futures;
        futures.reserve(scripts[t].size());
        for (const Request& request : scripts[t])
          futures.push_back(service.submit(request));
        responses[t].reserve(futures.size());
        for (auto& future : futures) responses[t].push_back(future.get());
      });
    }
    for (std::thread& thread : submitters) thread.join();
  }
  service.stop();

  // --- Serial oracle: same scripts through fresh tenants, one at a time,
  // without any cache. Cached tables are bit-identical to scanned ones, so
  // any divergence is a service-layer bug (lost/reordered/misrouted
  // requests, stale context, cross-tenant state bleed).
  for (int t = 0; t < kTenants; ++t) {
    Tenant oracle(soak_config(fabric, nullptr));
    ASSERT_EQ(responses[t].size(), scripts[t].size()) << "tenant " << t;
    for (std::size_t i = 0; i < scripts[t].size(); ++i) {
      const Response expected = oracle.apply(scripts[t][i]);
      EXPECT_EQ(responses[t][i], expected)
          << "tenant " << t << " diverged at request " << i;
    }

    const Tenant& served = service.tenant(t);
    EXPECT_EQ(served.placer().live_placements(),
              oracle.placer().live_placements())
        << "tenant " << t;
    EXPECT_EQ(served.placer().occupied_tiles(),
              oracle.placer().occupied_tiles())
        << "tenant " << t;
    EXPECT_EQ(served.faults(), oracle.faults()) << "tenant " << t;
    EXPECT_EQ(served.fabric_epoch(), oracle.fabric_epoch()) << "tenant " << t;
  }

  // --- Structural invariants per tenant.
  for (int t = 0; t < kTenants; ++t) {
    const Tenant& tenant = service.tenant(t);
    // No leaked tiles: bitmap and counter agree.
    EXPECT_EQ(static_cast<long>(tenant.placer().occupied_matrix().popcount()),
              tenant.placer().occupied_tiles())
        << "tenant " << t;
    // No stale context: nothing live sits on a faulty tile.
    const BitMatrix& faulty = tenant.region().fault_mask();
    EXPECT_EQ(faulty.overlap_popcount_shifted(
                  tenant.placer().occupied_matrix(), 0, 0),
              0u)
        << "tenant " << t;
  }

  // The soak must actually exercise the machinery it claims to cover.
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.requests,
            static_cast<std::uint64_t>(kTenants * kRequestsPerTenant));
  EXPECT_GT(stats.placed, 0u);
  EXPECT_GT(stats.removed, 0u);
  EXPECT_GT(stats.fault_events, 0u);
  // (A remove of an instance the fault path lost is a legitimate error
  // response, so no errors == 0 assertion — the oracle match above already
  // pins every response exactly.)
  EXPECT_GT(stats.cache.hits, 0u);
  // Fault churn re-keys contexts instead of eagerly invalidating; the LRU
  // cap alone bounds the entry count.
  EXPECT_EQ(stats.cache.invalidations, 0u);
  EXPECT_LE(stats.cache.entries, SolveContextCache::kDefaultCapacity);
}

TEST(ServiceSoak, ManyClientThreadsOneTenantStaySerial) {
  // Several client threads hammer a single tenant: the shard serializes
  // them, so every placer invariant must hold even though submissions race.
  const auto fabric = std::make_shared<const fpga::Fabric>(
      fpga::make_homogeneous(10, 5));
  std::vector<Tenant::Config> configs;
  configs.push_back(soak_config(fabric, nullptr));
  ServiceOptions options;
  options.workers = 2;
  PlacementService service(std::move(configs), options);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 40;
  std::vector<std::thread> clients;
  std::vector<std::uint64_t> placed_counts(kThreads, 0);
  for (int c = 0; c < kThreads; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kPerThread; ++i) {
        Request request;
        request.tenant = 0;
        request.op = RequestOp::kPlace;
        request.instance = c * kPerThread + i;  // distinct ids across threads
        request.module = i % 3;
        const Response response = service.call(request);
        if (response.status == Response::Status::kPlaced) ++placed_counts[c];
        // Remove every other instance to keep churn going.
        if (response.status == Response::Status::kPlaced && i % 2 == 0) {
          Request removal;
          removal.tenant = 0;
          removal.op = RequestOp::kRemove;
          removal.instance = request.instance;
          ASSERT_EQ(service.call(removal).status, Response::Status::kRemoved);
        }
      }
    });
  }
  for (std::thread& thread : clients) thread.join();
  service.stop();

  const Tenant& tenant = service.tenant(0);
  EXPECT_EQ(static_cast<long>(tenant.placer().occupied_matrix().popcount()),
            tenant.placer().occupied_tiles());
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.errors, 0u);
  EXPECT_GT(stats.placed, 0u);
}

TEST(ServiceSoak, OverloadedBurstKeepsShedAccountingExact) {
  // Overload soak on a FakeClock: every deadline decision is driven by a
  // manual clock advance, so the test asserts exact shed counts — no real
  // sleeps, no timing margins to flake under TSan — while the submission
  // phase still races real client threads against the admission path.
  FakeClock clock;
  constexpr int kBurstTenants = 4;
  constexpr int kQuota = 6;
  constexpr int kBurst = 10;  // per tenant: kQuota admitted, rest quota-shed
  const auto fabric = std::make_shared<const fpga::Fabric>(
      fpga::make_homogeneous(kFabricW, kFabricH));
  std::vector<Tenant::Config> configs;
  configs.reserve(kBurstTenants);
  for (int t = 0; t < kBurstTenants; ++t)
    configs.push_back(soak_config(fabric, nullptr));
  ServiceOptions options;
  options.workers = 2;
  options.queue_capacity = 64;
  options.tenant_inflight_quota = kQuota;
  options.default_deadline_ms = 5.0;
  options.clock = &clock;
  options.start_paused = true;  // admit the burst before anything executes
  PlacementService service(std::move(configs), options);

  // Phase 1: concurrent burst into the paused service. Per tenant, the
  // first kQuota submissions are admitted and the rest shed on quota; the
  // clock then jumps past every deadline, so the admitted ones shed at
  // dequeue. Deterministic totals, racy interleavings.
  std::vector<std::vector<std::future<Response>>> futures(kBurstTenants);
  {
    std::vector<std::thread> submitters;
    submitters.reserve(kBurstTenants);
    for (int t = 0; t < kBurstTenants; ++t) {
      submitters.emplace_back([&, t] {
        for (int i = 0; i < kBurst; ++i)
          futures[t].push_back(service.submit(place_request(t, i)));
      });
    }
    for (std::thread& thread : submitters) thread.join();
  }
  clock.advance_ms(6);  // past the 5ms default deadline
  service.resume();
  std::uint64_t seen_quota = 0, seen_deadline = 0;
  for (auto& tenant_futures : futures)
    for (auto& future : tenant_futures) {
      const Response::Status status = future.get().status;
      if (status == Response::Status::kShedQuota) ++seen_quota;
      else if (status == Response::Status::kShedDeadline) ++seen_deadline;
      else FAIL() << "unexpected status " << static_cast<int>(status);
    }
  EXPECT_EQ(seen_quota,
            static_cast<std::uint64_t>(kBurstTenants * (kBurst - kQuota)));
  EXPECT_EQ(seen_deadline,
            static_cast<std::uint64_t>(kBurstTenants * kQuota));

  // Phase 2: the frozen clock accrues no queue wait, so with the shed storm
  // drained the same service serves normal traffic — quota slots were all
  // released and no tenant state was touched by shed requests.
  for (int t = 0; t < kBurstTenants; ++t) {
    // Every future has resolved, so the quiesced accessor is race-free.
    EXPECT_EQ(service.tenant_quiesced(t).placer().live_count(), 0)
        << "tenant " << t;
    EXPECT_EQ(service.call(place_request(t, 1000)).status,
              Response::Status::kPlaced);
  }
  service.stop();
  for (int t = 0; t < kBurstTenants; ++t)
    EXPECT_EQ(service.tenant(t).placer().live_count(), 1) << "tenant " << t;

  const ShedCounters shed = service.shed_counters();
  EXPECT_EQ(shed.submitted,
            static_cast<std::uint64_t>(kBurstTenants * (kBurst + 1)));
  EXPECT_EQ(shed.shed_quota, seen_quota);
  EXPECT_EQ(shed.shed_deadline, seen_deadline);
  EXPECT_EQ(shed.completed, static_cast<std::uint64_t>(kBurstTenants));
  EXPECT_EQ(shed.shed_queue, 0u);
  EXPECT_EQ(shed.rejected_stopped, 0u);
  // The accounting identity, exact because every future above resolved.
  EXPECT_EQ(shed.submitted, shed.completed + shed.total_shed());
  // Shed requests never reach the latency distribution.
  EXPECT_EQ(service.stats().latency_count,
            static_cast<std::uint64_t>(kBurstTenants));
}

}  // namespace
}  // namespace rr::service
