// Differential fuzz for cp::Domain against a std::set<int> reference.
//
// The domain has two storage representations (range list and word-block
// bitset) and silently switches between them mid-mutation; every mutator
// therefore has four paths (ranges->ranges, ranges->words, words->words,
// and the initial pack). This test drives long seeded random mutation
// sequences through both the Domain and a set<int> model, checking full
// value-level equality plus every query helper after each step — so a
// divergence pinpoints the first bad op. CI runs it under ASan/UBSan.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "cp/domain.hpp"
#include "util/rng.hpp"

namespace rr::cp {
namespace {

std::vector<int> domain_values(const Domain& d) {
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(d.size()));
  d.for_each([&](int v) { out.push_back(v); });
  return out;
}

void expect_matches(const Domain& d, const std::set<int>& ref,
                    const std::string& context) {
  ASSERT_EQ(d.empty(), ref.empty()) << context;
  ASSERT_EQ(d.size(), static_cast<long>(ref.size())) << context;
  if (ref.empty()) return;
  ASSERT_EQ(d.min(), *ref.begin()) << context;
  ASSERT_EQ(d.max(), *ref.rbegin()) << context;
  ASSERT_EQ(d.assigned(), ref.size() == 1) << context;

  const std::vector<int> values = domain_values(d);
  ASSERT_TRUE(std::equal(values.begin(), values.end(), ref.begin(),
                         ref.end()))
      << context << ": value lists diverge";

  // Spot-check the query helpers on a few probes around the bounds.
  Rng probe_rng(static_cast<std::uint64_t>(ref.size() * 2654435761u));
  for (int probe = 0; probe < 8; ++probe) {
    const int v = probe_rng.uniform_int(d.min() - 2, d.max() + 2);
    ASSERT_EQ(d.contains(v), ref.count(v) == 1) << context << " v=" << v;
    int next = 0;
    const auto it = ref.lower_bound(v);
    ASSERT_EQ(d.next_geq(v, next), it != ref.end()) << context << " v=" << v;
    if (it != ref.end()) ASSERT_EQ(next, *it) << context << " v=" << v;
  }
  const long k = static_cast<long>(
      probe_rng.bounded(static_cast<std::uint64_t>(ref.size())));
  ASSERT_EQ(d.nth_value(k), *std::next(ref.begin(), k))
      << context << " k=" << k;
}

/// One full random trajectory: start from a dense interval, mutate until
/// empty or the op budget runs out. `span` controls how hard the sequence
/// leans on the word-block representation (packing needs a fragmented
/// domain over a wide span).
void run_trajectory(std::uint64_t seed, int span, int ops) {
  Rng rng(seed);
  const int lo = rng.uniform_int(-span / 3, span / 3);
  Domain d(lo, lo + span);
  std::set<int> ref;
  for (int v = lo; v <= lo + span; ++v) ref.insert(v);
  expect_matches(d, ref, "init");

  for (int op = 0; op < ops && !ref.empty(); ++op) {
    const std::string context =
        "seed=" + std::to_string(seed) + " op=" + std::to_string(op);
    const int min = *ref.begin();
    const int max = *ref.rbegin();
    const std::vector<int> before = domain_values(d);
    bool changed = false;
    switch (rng.uniform_int(0, 7)) {
      case 0: {  // remove_below
        const int v = rng.uniform_int(min - 1, max + 1);
        changed = d.remove_below(v);
        ref.erase(ref.begin(), ref.lower_bound(v));
        break;
      }
      case 1: {  // remove_above
        const int v = rng.uniform_int(min - 1, max + 1);
        changed = d.remove_above(v);
        ref.erase(ref.upper_bound(v), ref.end());
        break;
      }
      case 2: {  // remove one value
        const int v = rng.uniform_int(min - 1, max + 1);
        changed = d.remove(v);
        ref.erase(v);
        break;
      }
      case 3: {  // remove_range
        const int a = rng.uniform_int(min - 1, max + 1);
        const int b = a + rng.uniform_int(0, span / 4);
        changed = d.remove_range(a, b);
        ref.erase(ref.lower_bound(a), ref.upper_bound(b));
        break;
      }
      case 4: {  // remove_values_sorted: scattered batch
        std::set<int> batch;
        const int n = rng.uniform_int(1, span / 2 + 1);
        for (int i = 0; i < n; ++i)
          batch.insert(rng.uniform_int(min - 1, max + 1));
        const std::vector<int> sorted(batch.begin(), batch.end());
        changed = d.remove_values_sorted(sorted);
        for (int v : sorted) ref.erase(v);
        break;
      }
      case 5: {  // intersect with a random sparse domain
        std::vector<int> keep;
        for (int v : ref)
          if (rng.uniform_int(0, 3) != 0) keep.push_back(v);
        // A few values outside ref so `other` is not a subset.
        for (int i = 0; i < 4; ++i)
          keep.push_back(rng.uniform_int(min - 3, max + 3));
        std::sort(keep.begin(), keep.end());
        keep.erase(std::unique(keep.begin(), keep.end()), keep.end());
        const Domain other = Domain::from_values(std::move(keep));
        changed = d.intersect(other);
        for (auto it = ref.begin(); it != ref.end();)
          it = other.contains(*it) ? std::next(it) : ref.erase(it);
        break;
      }
      case 6: {  // keep_masked over a random window
        const int base = rng.uniform_int(min - 70, min + span / 4);
        const std::size_t words = static_cast<std::size_t>(
            rng.uniform_int(1, (span + 63) / 64 + 1));
        std::vector<std::uint64_t> mask(words);
        for (std::uint64_t& w : mask)
          w = rng() | rng();  // ~75% bit density
        changed = d.keep_masked(base, mask);
        const long long hi =
            static_cast<long long>(base) + static_cast<long long>(words) * 64;
        for (auto it = ref.begin(); it != ref.end();) {
          const int v = *it;
          const bool kept =
              v >= base && v < hi &&
              (mask[static_cast<std::size_t>(v - base) / 64] >>
                   (static_cast<unsigned>(v - base) % 64) &
               1) != 0;
          it = kept ? std::next(it) : ref.erase(it);
        }
        break;
      }
      case 7: {  // assign to a present or absent value
        const int v = rng.uniform_int(min, max);
        changed = d.assign_value(v);
        const bool present = ref.count(v) == 1;
        ref.clear();
        if (present) ref.insert(v);
        break;
      }
    }
    ASSERT_EQ(changed, domain_values(d) != before)
        << context << ": change flag disagrees with effect";
    expect_matches(d, ref, context);
  }
}

TEST(DomainFuzz, SmallSpansStayOnRangeLists) {
  for (std::uint64_t seed = 1; seed <= 40; ++seed)
    run_trajectory(seed, /*span=*/40, /*ops=*/60);
}

TEST(DomainFuzz, WideSpansCrossIntoWordBlocks) {
  for (std::uint64_t seed = 100; seed <= 120; ++seed)
    run_trajectory(seed, /*span=*/1500, /*ops=*/80);
}

TEST(DomainFuzz, HugeSparseDomains) {
  for (std::uint64_t seed = 200; seed <= 206; ++seed)
    run_trajectory(seed, /*span=*/20000, /*ops=*/50);
}

// Equality must hold across representations: the same value set reached
// via different mutation orders (one side packed, one not) compares equal.
TEST(DomainFuzz, EqualityIsRepresentationIndependent) {
  Rng rng(42);
  for (int round = 0; round < 20; ++round) {
    std::vector<int> values;
    const int n = rng.uniform_int(1, 400);
    for (int i = 0; i < n; ++i) values.push_back(rng.uniform_int(0, 3000));
    std::sort(values.begin(), values.end());
    values.erase(std::unique(values.begin(), values.end()), values.end());

    const Domain as_ranges = Domain::from_values(values);
    // Same set via the word path: wide interval, then keep_masked.
    Domain as_words(0, 3000);
    std::vector<std::uint64_t> mask((3000 + 64) / 64, 0);
    for (int v : values)
      mask[static_cast<std::size_t>(v) / 64] |=
          std::uint64_t{1} << (static_cast<unsigned>(v) % 64);
    as_words.keep_masked(0, mask);

    ASSERT_EQ(as_ranges.size(), as_words.size()) << "round=" << round;
    ASSERT_TRUE(as_ranges == as_words) << "round=" << round;
    ASSERT_TRUE(as_words == as_ranges) << "round=" << round;
    ASSERT_EQ(domain_values(as_ranges), domain_values(as_words))
        << "round=" << round;
  }
}

}  // namespace
}  // namespace rr::cp
