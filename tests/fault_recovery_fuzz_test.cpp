// Randomized oracle test for the fault-recovery pipeline: random fault
// sequences (tiles, rectangles, columns, repairs; transient and permanent)
// are driven through a FaultRecoveryManager whose every intermediate state
// is cross-checked against naive reference structures — a per-cell fault
// map replica, an occupancy grid rebuilt from live_placements(), and a
// from-scratch region. The invariants:
//   - no live module ever overlaps a faulty, blocked, or static tile;
//   - live modules never overlap each other;
//   - occupancy bitmap and tile accounting match the rebuilt grid;
//   - live + parked instances always account for every admitted module;
//   - capacity accounting equals a freshly faulted region's availability;
//   - the manager never throws, no matter how degraded the fabric gets.
#include <gtest/gtest.h>

#include <memory>
#include <unordered_map>
#include <vector>

#include "baseline/greedy.hpp"
#include "fpga/builders.hpp"
#include "fpga/faults.hpp"
#include "fpga/region.hpp"
#include "model/generator.hpp"
#include "runtime/recovery.hpp"
#include "util/rng.hpp"

namespace rr::runtime {
namespace {

using fpga::FaultEvent;
using fpga::FaultKind;
using model::Module;

constexpr Rect kBlocked{9, 2, 2, 4};

struct Fixture {
  std::shared_ptr<const fpga::Fabric> fabric;
  std::shared_ptr<fpga::PartialRegion> region;
  std::vector<Module> pool;
};

Fixture make_fixture(std::uint64_t seed) {
  Fixture f;
  f.fabric =
      std::make_shared<const fpga::Fabric>(fpga::make_homogeneous(20, 8));
  f.region = std::make_shared<fpga::PartialRegion>(f.fabric);
  // A blocked obstacle so the oracle checks region availability, not just
  // fault masking and mutual non-overlap.
  f.region->block(kBlocked);
  model::GeneratorParams params;
  params.clb_min = 4;
  params.clb_max = 16;
  params.bram_blocks_max = 0;
  params.min_height = 1;
  params.max_height = 5;
  model::ModuleGenerator generator(params, seed);
  f.pool = generator.generate_many(6);
  return f;
}

FaultEvent random_event(Rng& rng, int width, int height) {
  FaultEvent event;
  const int roll = rng.uniform_int(0, 99);
  event.kind = rng.chance(0.5) ? FaultKind::kPermanent
                               : FaultKind::kTransient;
  if (roll < 55) {
    event.op = FaultEvent::Op::kTile;
    event.rect = Rect{rng.uniform_int(0, width - 1),
                      rng.uniform_int(0, height - 1), 1, 1};
  } else if (roll < 70) {
    event.op = FaultEvent::Op::kRect;
    const int w = rng.uniform_int(1, 3);
    const int h = rng.uniform_int(1, 3);
    event.rect = Rect{rng.uniform_int(0, width - w),
                      rng.uniform_int(0, height - h), w, h};
  } else if (roll < 80) {
    event.op = FaultEvent::Op::kColumn;
    event.rect = Rect{rng.uniform_int(0, width - 1), 0, 1, height};
  } else if (roll < 92) {
    event.op = FaultEvent::Op::kRepairTile;
    event.rect = Rect{rng.uniform_int(0, width - 1),
                      rng.uniform_int(0, height - 1), 1, 1};
  } else {
    event.op = FaultEvent::Op::kRepairTransient;
  }
  return event;
}

void check_oracle(const FaultRecoveryManager& manager, const Fixture& f,
                  const fpga::FaultMap& reference_map, int admitted) {
  // The manager's fault map must track the reference replica exactly.
  ASSERT_EQ(manager.fault_map(), reference_map);

  // Rebuild occupancy from scratch out of live_placements().
  const auto placements = manager.live_placements();
  ASSERT_EQ(static_cast<int>(placements.size()), manager.live_count());
  ASSERT_EQ(manager.live_count() + manager.parked_count(), admitted);

  const BitMatrix& fault_mask = manager.region().fault_mask();
  BitMatrix grid(manager.occupied_matrix().rows(),
                 manager.occupied_matrix().cols());
  long total = 0;
  for (const auto& p : placements) {
    const Module& module = manager.module_of(p.module);
    ASSERT_GE(p.shape, 0);
    ASSERT_LT(p.shape, static_cast<int>(module.shapes().size()));
    const auto& shape = module.shapes()[static_cast<std::size_t>(p.shape)];
    // Never on a faulty tile...
    ASSERT_FALSE(fault_mask.intersects_shifted(shape.mask(), p.y, p.x))
        << "instance " << p.module << " overlaps a faulty tile";
    // ...nor on blocked/static/out-of-region cells, per the region masks...
    for (const Point& cell : shape.all_cells().cells()) {
      const int x = p.x + cell.x;
      const int y = p.y + cell.y;
      ASSERT_TRUE(manager.region().available(x, y))
          << "instance " << p.module << " uses unavailable (" << x << ","
          << y << ")";
      ASSERT_FALSE(kBlocked.contains(Point{x, y}));
    }
    // ...nor on another live module.
    ASSERT_FALSE(grid.intersects_shifted(shape.mask(), p.y, p.x))
        << "instance " << p.module << " overlaps another module";
    grid.or_shifted(shape.mask(), p.y, p.x);
    total += shape.area();
  }
  ASSERT_EQ(grid, manager.occupied_matrix());
  ASSERT_EQ(total, manager.occupied_tiles());

  // Capacity accounting: equal to a freshly faulted region's availability.
  fpga::PartialRegion fresh(f.fabric);
  fresh.block(kBlocked);
  fresh.apply_faults(reference_map);
  ASSERT_EQ(manager.healthy_available(), fresh.total_available());
}

TEST(FaultRecoveryFuzz, RandomFaultSequencesPreserveAllInvariants) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const Fixture f = make_fixture(seed);
    const auto greedy = baseline::place_greedy(*f.region, f.pool);
    ASSERT_TRUE(greedy.solution.feasible) << "seed " << seed;

    FaultRecoveryOptions options;
    options.deadline_seconds = 0.5;
    options.retry_backoff_events = 1;
    options.seed = seed;
    FaultRecoveryManager manager(*f.region, options);
    for (const auto& p : greedy.solution.placements)
      manager.admit(p.module, f.pool[static_cast<std::size_t>(p.module)],
                    p.shape, p.x, p.y);
    const int admitted = manager.live_count();

    fpga::FaultMap reference_map(*f.fabric);
    Rng rng(seed * 7919);
    for (int step = 0; step < 40; ++step) {
      const FaultEvent event =
          random_event(rng, f.fabric->width(), f.fabric->height());
      reference_map.apply(event);
      ASSERT_NO_THROW((void)manager.on_fault(event))
          << "seed " << seed << " step " << step;
      check_oracle(manager, f, reference_map, admitted);
      if (::testing::Test::HasFatalFailure())
        FAIL() << "oracle failed at seed " << seed << " step " << step;
    }
  }
}

// A near-zero deadline must degrade recovery quality, never correctness:
// the pipeline parks what it cannot save in time and every invariant holds.
TEST(FaultRecoveryFuzz, TinyDeadlineNeverBreaksInvariants) {
  const Fixture f = make_fixture(42);
  const auto greedy = baseline::place_greedy(*f.region, f.pool);
  ASSERT_TRUE(greedy.solution.feasible);

  FaultRecoveryOptions options;
  options.deadline_seconds = 1e-9;
  FaultRecoveryManager manager(*f.region, options);
  for (const auto& p : greedy.solution.placements)
    manager.admit(p.module, f.pool[static_cast<std::size_t>(p.module)],
                  p.shape, p.x, p.y);
  const int admitted = manager.live_count();

  fpga::FaultMap reference_map(*f.fabric);
  Rng rng(4242);
  for (int step = 0; step < 60; ++step) {
    const FaultEvent event =
        random_event(rng, f.fabric->width(), f.fabric->height());
    reference_map.apply(event);
    ASSERT_NO_THROW((void)manager.on_fault(event)) << "step " << step;
    check_oracle(manager, f, reference_map, admitted);
  }
}

}  // namespace
}  // namespace rr::runtime
