// Runtime reconfiguration: schedules, phase placement, transition costs,
// and the replace-all vs incremental policy trade-off.
#include <gtest/gtest.h>

#include "fpga/builders.hpp"
#include "model/generator.hpp"
#include "placer/validator.hpp"
#include "runtime/manager.hpp"

namespace rr::runtime {
namespace {

using model::Module;
using model::ModuleGenerator;

std::vector<Module> make_pool(int count, std::uint64_t seed) {
  model::GeneratorParams params;
  params.clb_min = 6;
  params.clb_max = 18;
  params.bram_blocks_max = 0;
  params.max_height = 6;
  return ModuleGenerator(params, seed).generate_many(count);
}

std::shared_ptr<fpga::PartialRegion> region_for_tests() {
  auto fabric =
      std::make_shared<const fpga::Fabric>(fpga::make_homogeneous(30, 8));
  return std::make_shared<fpga::PartialRegion>(fabric);
}

TEST(ScheduleTest, ValidateCatchesBadReferences) {
  Schedule schedule;
  schedule.phases.push_back(Phase{"p0", {0, 1}});
  schedule.validate(2);  // fine
  schedule.phases.push_back(Phase{"p1", {2}});
  EXPECT_THROW(schedule.validate(2), InvalidInput);
  schedule.phases[1] = Phase{"p1", {0, 0}};
  EXPECT_THROW(schedule.validate(2), InvalidInput);
}

TEST(ScheduleTest, PersistentBetween) {
  Schedule schedule;
  schedule.phases.push_back(Phase{"a", {3, 1, 2}});
  schedule.phases.push_back(Phase{"b", {2, 4, 3}});
  EXPECT_EQ(schedule.persistent_between(0, 1), (std::vector<int>{2, 3}));
  EXPECT_THROW(schedule.persistent_between(0, 5), InvalidInput);
}

TEST(ScheduleTest, RollingScheduleRespectsShape) {
  const Schedule schedule = make_rolling_schedule(10, 5, 4, 0.5, 77);
  ASSERT_EQ(schedule.phases.size(), 5u);
  schedule.validate(10);
  for (const Phase& phase : schedule.phases)
    EXPECT_EQ(phase.active_modules.size(), 4u);
  // Adjacent phases share roughly keep_fraction of their modules.
  int shared_total = 0;
  for (std::size_t p = 1; p < schedule.phases.size(); ++p)
    shared_total +=
        static_cast<int>(schedule.persistent_between(p - 1, p).size());
  EXPECT_GE(shared_total, 4);  // 4 transitions, ~2 each
}

TEST(ScheduleTest, RollingScheduleDeterministic) {
  const Schedule a = make_rolling_schedule(8, 4, 3, 0.4, 5);
  const Schedule b = make_rolling_schedule(8, 4, 3, 0.4, 5);
  for (std::size_t p = 0; p < a.phases.size(); ++p)
    EXPECT_EQ(a.phases[p].active_modules, b.phases[p].active_modules);
}

TEST(TransitionCostTest, InitialLoadCountsEverything) {
  const auto pool = make_pool(3, 1);
  std::vector<PlacedModule> after{{0, 0, 0, 0}, {2, 0, 5, 0}};
  const TransitionCost cost = transition_cost(pool, {}, after);
  EXPECT_EQ(cost.modules_loaded, 2);
  EXPECT_EQ(cost.modules_kept, 0);
  EXPECT_EQ(cost.tiles_written,
            pool[0].shapes()[0].area() + pool[2].shapes()[0].area());
  EXPECT_EQ(cost.tiles_cleared, 0);
}

TEST(TransitionCostTest, KeptMovedAndRemoved) {
  const auto pool = make_pool(3, 2);
  const std::vector<PlacedModule> before{
      {0, 0, 0, 0}, {1, 0, 6, 0}, {2, 0, 12, 0}};
  const std::vector<PlacedModule> after{
      {0, 0, 0, 0},   // kept in place
      {1, 0, 9, 0},   // moved
  };                   // 2 removed
  const TransitionCost cost = transition_cost(pool, before, after);
  EXPECT_EQ(cost.modules_kept, 1);
  EXPECT_EQ(cost.modules_loaded, 1);
  EXPECT_EQ(cost.tiles_written, pool[1].shapes()[0].area());
  EXPECT_EQ(cost.tiles_cleared,
            pool[1].shapes()[0].area() + pool[2].shapes()[0].area());
}

TEST(Manager, PlacesEveryPhaseValidly) {
  const auto pool = make_pool(8, 3);
  const auto region = region_for_tests();
  placer::PlacerOptions options;
  options.time_limit_seconds = 0.5;
  const ReconfigurationManager manager(*region, pool, options);
  const Schedule schedule = make_rolling_schedule(8, 4, 4, 0.5, 9);

  for (const PlacementPolicy policy :
       {PlacementPolicy::kReplaceAll, PlacementPolicy::kIncremental}) {
    const RunResult result = manager.run(schedule, policy);
    ASSERT_EQ(result.phases.size(), 4u);
    ASSERT_EQ(result.transitions.size(), 4u);
    EXPECT_EQ(result.infeasible_phases(), 0);
    for (std::size_t p = 0; p < result.phases.size(); ++p) {
      const PhaseOutcome& phase = result.phases[p];
      // Re-validate through the standard validator.
      std::vector<Module> modules;
      placer::PlacementSolution solution;
      solution.feasible = true;
      for (std::size_t i = 0; i < phase.placements.size(); ++i) {
        const PlacedModule& pm = phase.placements[i];
        modules.push_back(pool[static_cast<std::size_t>(pm.module)]);
        solution.placements.push_back(placer::ModulePlacement{
            static_cast<int>(i), pm.shape, pm.x, pm.y});
        solution.extent = std::max(solution.extent, phase.extent);
      }
      solution.extent = phase.extent;
      const auto report = placer::validate(*region, modules, solution);
      EXPECT_TRUE(report.ok())
          << "policy " << static_cast<int>(policy) << " phase " << p << ": "
          << (report.errors.empty() ? "" : report.errors.front());
    }
  }
}

TEST(Manager, IncrementalKeepsPersistentModulesInPlace) {
  const auto pool = make_pool(6, 4);
  const auto region = region_for_tests();
  placer::PlacerOptions options;
  options.time_limit_seconds = 0.5;
  const ReconfigurationManager manager(*region, pool, options);

  Schedule schedule;
  schedule.phases.push_back(Phase{"p0", {0, 1, 2}});
  schedule.phases.push_back(Phase{"p1", {1, 2, 3}});  // 1, 2 persist
  const RunResult result =
      manager.run(schedule, PlacementPolicy::kIncremental);
  ASSERT_EQ(result.infeasible_phases(), 0);
  if (result.phases[1].fell_back) GTEST_SKIP() << "freeze infeasible";
  for (const int id : {1, 2}) {
    PlacedModule first{}, second{};
    for (const PlacedModule& p : result.phases[0].placements)
      if (p.module == id) first = p;
    for (const PlacedModule& p : result.phases[1].placements)
      if (p.module == id) second = p;
    EXPECT_EQ(first, second) << "module " << id << " moved";
  }
  // The transition only wrote the new module.
  EXPECT_EQ(result.transitions[1].modules_kept, 2);
  EXPECT_EQ(result.transitions[1].modules_loaded, 1);
}

TEST(Manager, IncrementalWritesNoMoreTilesThanReplaceAll) {
  const auto pool = make_pool(10, 6);
  const auto region = region_for_tests();
  placer::PlacerOptions options;
  options.time_limit_seconds = 0.4;
  options.seed = 21;
  const ReconfigurationManager manager(*region, pool, options);
  const Schedule schedule = make_rolling_schedule(10, 5, 4, 0.6, 13);

  const RunResult replace =
      manager.run(schedule, PlacementPolicy::kReplaceAll);
  const RunResult incremental =
      manager.run(schedule, PlacementPolicy::kIncremental);
  ASSERT_EQ(replace.infeasible_phases(), 0);
  ASSERT_EQ(incremental.infeasible_phases(), 0);
  for (const PhaseOutcome& p : incremental.phases) {
    if (p.fell_back) GTEST_SKIP() << "freeze infeasible on some phase";
  }
  // Without fallbacks, incremental writes exactly the non-persistent
  // modules; replace-all additionally rewrites any persistent module that
  // moved, so it can never write less.
  EXPECT_LE(incremental.total_tiles_written(),
            replace.total_tiles_written());
  EXPECT_GT(replace.mean_utilization().value_or(0.0), 0.3);
}

// A 1-row strip module: `w` tiles wide, one tall.
Module strip(const std::string& name, int w) {
  return Module(name, {ModuleGenerator::make_column_shape(w, 0, 1, 1, 0)});
}

TEST(Manager, IncrementalFallBackReplacesFreelyAndAccountsTransition) {
  // 12x1 strip with column 5 blocked: free runs [0..4] and [6..11].
  // Phase 0 {A=3, C=5}: the extent-9 optimum is unique — C fills [0..4],
  // A sits at [6..8]. Phase 1 {A, B=6}: B only fits at [6..11], so the
  // frozen copy of A blocks it; kIncremental must fall back to a free
  // re-place (fell_back == true) and the transition must charge A as a
  // move, not a keep.
  auto fabric =
      std::make_shared<const fpga::Fabric>(fpga::make_homogeneous(12, 1));
  fpga::PartialRegion region(fabric);
  region.block(Rect{5, 0, 1, 1});
  const std::vector<Module> pool{strip("A", 3), strip("C", 5), strip("B", 6)};
  placer::PlacerOptions options;
  options.time_limit_seconds = 2.0;
  const ReconfigurationManager manager(region, pool, options);

  Schedule schedule;
  schedule.phases.push_back(Phase{"p0", {0, 1}});
  schedule.phases.push_back(Phase{"p1", {0, 2}});
  const RunResult result =
      manager.run(schedule, PlacementPolicy::kIncremental);
  ASSERT_EQ(result.infeasible_phases(), 0);
  EXPECT_EQ(result.phases[0].extent, 9);
  EXPECT_FALSE(result.phases[0].fell_back);
  EXPECT_TRUE(result.phases[1].fell_back);
  EXPECT_EQ(result.phases[1].defrag_unpinned, 0);

  // A moved (3 written + 3 cleared), B loaded (6 written), C departed
  // (5 cleared); nothing stayed in place.
  const TransitionCost& cost = result.transitions[1];
  EXPECT_EQ(cost.modules_kept, 0);
  EXPECT_EQ(cost.modules_loaded, 2);
  EXPECT_EQ(cost.tiles_written, 3 + 6);
  EXPECT_EQ(cost.tiles_cleared, 3 + 5);
}

TEST(Manager, DefragPolicyUnpinsMinimalSetAndKeepsSurvivors) {
  // 18x1 strip with column 5 blocked: free runs [0..4] and [6..17].
  // Phase 0 {C=5, S1=3, S2=3}: extent-12 optimum puts C at [0..4] and the
  // two S modules at [6..8] and [9..11]. Phase 1 {S1, S2, B=7}: with both
  // S frozen the longest free run is 6 < 7, so a full freeze is
  // infeasible — but unpinning exactly one S opens [9..17] (or keeps it
  // closed, depending on which S sat where; the manager must find the
  // unpin that works). kDefrag keeps one survivor in place where
  // kIncremental's free-re-place fallback keeps none.
  auto fabric =
      std::make_shared<const fpga::Fabric>(fpga::make_homogeneous(18, 1));
  fpga::PartialRegion region(fabric);
  region.block(Rect{5, 0, 1, 1});
  const std::vector<Module> pool{strip("C", 5), strip("S1", 3),
                                 strip("S2", 3), strip("B", 7)};
  placer::PlacerOptions options;
  options.time_limit_seconds = 2.0;
  const ReconfigurationManager manager(region, pool, options);

  Schedule schedule;
  schedule.phases.push_back(Phase{"p0", {0, 1, 2}});
  schedule.phases.push_back(Phase{"p1", {1, 2, 3}});

  const RunResult defrag = manager.run(schedule, PlacementPolicy::kDefrag);
  ASSERT_EQ(defrag.infeasible_phases(), 0);
  EXPECT_EQ(defrag.phases[0].extent, 12);
  EXPECT_FALSE(defrag.phases[1].fell_back);
  EXPECT_EQ(defrag.phases[1].defrag_unpinned, 1);
  // Exactly one of S1/S2 retains its phase-0 placement.
  int kept_in_place = 0;
  for (const int id : {1, 2}) {
    PlacedModule first{}, second{};
    for (const PlacedModule& p : defrag.phases[0].placements)
      if (p.module == id) first = p;
    for (const PlacedModule& p : defrag.phases[1].placements)
      if (p.module == id) second = p;
    if (first == second) ++kept_in_place;
  }
  EXPECT_EQ(kept_in_place, 1);
  EXPECT_EQ(defrag.transitions[1].modules_kept, 1);

  // The same schedule under kIncremental can only fall back to a free
  // re-place, which keeps nothing in place.
  const RunResult incremental =
      manager.run(schedule, PlacementPolicy::kIncremental);
  ASSERT_EQ(incremental.infeasible_phases(), 0);
  EXPECT_TRUE(incremental.phases[1].fell_back);
  EXPECT_EQ(incremental.transitions[1].modules_kept, 0);
}

TEST(Manager, EmptyPhaseIsFeasibleAndFree) {
  const auto pool = make_pool(2, 8);
  const auto region = region_for_tests();
  const ReconfigurationManager manager(*region, pool, {});
  Schedule schedule;
  schedule.phases.push_back(Phase{"idle", {}});
  const RunResult result = manager.run(schedule, PlacementPolicy::kReplaceAll);
  EXPECT_TRUE(result.phases[0].feasible);
  EXPECT_EQ(result.transitions[0].tiles_written, 0);
}

TEST(Manager, InfeasiblePhaseReported) {
  // Pool module too big for the region.
  const std::vector<Module> pool{
      Module("huge", {ModuleGenerator::make_column_shape(400, 0, 1, 10, 0)})};
  auto fabric =
      std::make_shared<const fpga::Fabric>(fpga::make_homogeneous(6, 6));
  const fpga::PartialRegion region(fabric);
  const ReconfigurationManager manager(region, pool, {});
  Schedule schedule;
  schedule.phases.push_back(Phase{"p0", {0}});
  const RunResult result = manager.run(schedule, PlacementPolicy::kReplaceAll);
  EXPECT_EQ(result.infeasible_phases(), 1);
}

}  // namespace
}  // namespace rr::runtime
