// ASCII and SVG renderers.
#include <gtest/gtest.h>

#include <fstream>

#include "fpga/builders.hpp"
#include "model/generator.hpp"
#include "placer/placer.hpp"
#include "render/ascii.hpp"
#include "render/svg.hpp"

namespace rr::render {
namespace {

using model::Module;
using model::ModuleGenerator;

std::shared_ptr<fpga::PartialRegion> small_region() {
  auto fabric = std::make_shared<const fpga::Fabric>([] {
    fpga::Fabric f(6, 3);
    f.set_column(2, fpga::ResourceType::kBram);
    f.set_rect(Rect{5, 0, 1, 3}, fpga::ResourceType::kStatic);
    return f;
  }());
  return std::make_shared<fpga::PartialRegion>(fabric);
}

TEST(ModuleChar, CyclesThroughAlphabet) {
  EXPECT_EQ(module_char(0), 'A');
  EXPECT_EQ(module_char(25), 'Z');
  EXPECT_EQ(module_char(26), '0');
  EXPECT_EQ(module_char(-1), '?');
}

TEST(Ascii, RegionShowsResourcesAndStatic) {
  const auto region = small_region();
  const std::string picture = region_ascii(*region);
  // 3 rows of 6 characters + newlines.
  EXPECT_EQ(picture.size(), 3u * 7u);
  // Row content: ccbcc# (BRAM column at x=2, static at x=5).
  EXPECT_EQ(picture.substr(0, 6), "ccbcc#");
}

TEST(Ascii, PlacementDrawsModuleLetters) {
  const auto region = small_region();
  const std::vector<Module> modules{
      Module("a", {ModuleGenerator::make_column_shape(4, 0, 1, 2, 0)})};
  placer::PlacementSolution solution;
  solution.feasible = true;
  solution.placements = {{0, 0, 0, 0}};  // 2x2 at origin
  solution.extent = 2;
  const std::string picture = placement_ascii(*region, modules, solution);
  // Bottom row (printed last) starts with AA.
  const auto lines_start = picture.rfind("AA");
  EXPECT_NE(lines_start, std::string::npos);
  // Top row (printed first) keeps the background.
  EXPECT_EQ(picture.substr(0, 6), "ccbcc#");
}

TEST(Ascii, AnchorMaskMarksValidAnchors) {
  const auto region = small_region();
  const auto shape = ModuleGenerator::make_column_shape(4, 0, 1, 2, 0);
  const std::string picture = anchor_mask_ascii(*region, shape);
  EXPECT_NE(picture.find('*'), std::string::npos);
}

TEST(Ascii, LegendMentionsAllSymbols) {
  const std::string text = legend();
  for (const char* token : {"CLB", "BRAM", "static", "anchor"})
    EXPECT_NE(text.find(token), std::string::npos) << token;
}

TEST(Svg, ContainsModuleAndBackgroundRects) {
  const auto region = small_region();
  const std::vector<Module> modules{
      Module("a", {ModuleGenerator::make_column_shape(4, 0, 1, 2, 0)})};
  placer::PlacementSolution solution;
  solution.feasible = true;
  solution.placements = {{0, 0, 0, 0}};
  solution.extent = 2;
  const std::string svg = placement_svg(*region, modules, solution);
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  EXPECT_NE(svg.find("hsl("), std::string::npos);       // module fill
  EXPECT_NE(svg.find("#555555"), std::string::npos);    // static fill
  // 18 background tiles + 4 module tiles.
  std::size_t rects = 0;
  for (std::size_t pos = svg.find("<rect"); pos != std::string::npos;
       pos = svg.find("<rect", pos + 1))
    ++rects;
  EXPECT_EQ(rects, 22u);
}

TEST(Svg, SaveWritesFile) {
  const auto region = small_region();
  const std::vector<Module> modules{
      Module("a", {ModuleGenerator::make_column_shape(2, 0, 1, 1, 0)})};
  placer::PlacementSolution solution;  // infeasible: background only
  const std::string path = ::testing::TempDir() + "/rr_render.svg";
  save_placement_svg(path, *region, modules, solution);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_NE(content.find("<svg"), std::string::npos);
}

}  // namespace
}  // namespace rr::render
