// Fabric, builders, partial region and the .fdf format.
#include <gtest/gtest.h>

#include <stdexcept>

#include "fpga/builders.hpp"
#include "fpga/fdf.hpp"
#include "fpga/region.hpp"

namespace rr::fpga {
namespace {

TEST(Resource, CharRoundTrip) {
  for (int k = 0; k < kNumResourceTypes; ++k) {
    const auto t = static_cast<ResourceType>(k);
    const auto back = resource_from_char(resource_char(t));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, t);
  }
  EXPECT_FALSE(resource_from_char('x').has_value());
  EXPECT_EQ(resource_from_char('b'), ResourceType::kBram);  // lower case
}

TEST(Resource, Placeability) {
  EXPECT_TRUE(placeable(ResourceType::kClb));
  EXPECT_TRUE(placeable(ResourceType::kIo));
  EXPECT_FALSE(placeable(ResourceType::kStatic));
}

TEST(Fabric, ConstructionAndMutation) {
  Fabric f(8, 4);
  EXPECT_EQ(f.width(), 8);
  EXPECT_EQ(f.height(), 4);
  EXPECT_EQ(f.at(0, 0), ResourceType::kClb);
  f.set(3, 2, ResourceType::kDsp);
  EXPECT_EQ(f.at(3, 2), ResourceType::kDsp);
  f.set_column(5, ResourceType::kBram);
  for (int y = 0; y < 4; ++y) EXPECT_EQ(f.at(5, y), ResourceType::kBram);
  f.set_rect(Rect{6, 1, 10, 2}, ResourceType::kStatic);  // clipped
  EXPECT_EQ(f.at(7, 1), ResourceType::kStatic);
  EXPECT_EQ(f.at(7, 0), ResourceType::kClb);
}

TEST(Fabric, RejectsDegenerateDimensions) {
  EXPECT_THROW(Fabric(0, 5), InvalidInput);
  EXPECT_THROW(Fabric(5, -1), InvalidInput);
}

TEST(Fabric, SetRectRejectsEmptyAndFullyOutOfBoundsInputs) {
  Fabric f(8, 4);
  // Empty and fully out-of-bounds rectangles are caller bugs: the mutation
  // would silently do nothing, so the contract asserts instead of clipping.
  EXPECT_THROW(f.set_rect(Rect{0, 0, 0, 2}, ResourceType::kStatic),
               std::logic_error);
  EXPECT_THROW(f.set_rect(Rect{3, 1, 2, -1}, ResourceType::kStatic),
               std::logic_error);
  EXPECT_THROW(f.set_rect(Rect{20, 20, 2, 2}, ResourceType::kStatic),
               std::logic_error);
  EXPECT_THROW(f.set_rect(Rect{-5, 0, 3, 2}, ResourceType::kStatic),
               std::logic_error);
  // A partial overlap is still clipped to the fabric, not rejected.
  f.set_rect(Rect{6, 2, 10, 10}, ResourceType::kBram);
  EXPECT_EQ(f.at(7, 3), ResourceType::kBram);
  EXPECT_EQ(f.at(5, 3), ResourceType::kClb);
}

TEST(Fabric, SetColumnRejectsOutOfBoundsIndex) {
  Fabric f(8, 4);
  EXPECT_THROW(f.set_column(-1, ResourceType::kBram), std::logic_error);
  EXPECT_THROW(f.set_column(8, ResourceType::kBram), std::logic_error);
  f.set_column(7, ResourceType::kBram);  // last valid column is fine
  EXPECT_EQ(f.at(7, 0), ResourceType::kBram);
}

TEST(Fabric, ResourceCounts) {
  Fabric f(4, 2);
  f.set_column(1, ResourceType::kBram);
  const auto counts = f.resource_counts();
  EXPECT_EQ(counts[static_cast<int>(ResourceType::kClb)], 6);
  EXPECT_EQ(counts[static_cast<int>(ResourceType::kBram)], 2);
}

TEST(Builders, Homogeneous) {
  const Fabric f = make_homogeneous(10, 5);
  const auto counts = f.resource_counts();
  EXPECT_EQ(counts[static_cast<int>(ResourceType::kClb)], 50);
}

TEST(Builders, ColumnarPlacesBramColumns) {
  ColumnarSpec spec;
  spec.bram_period = 4;
  spec.bram_offset = 1;
  spec.dsp_period = 0;
  spec.center_clock_column = false;
  spec.edge_io = false;
  const Fabric f = make_columnar(10, 3, spec);
  for (const int x : {1, 5, 9})
    EXPECT_EQ(f.at(x, 0), ResourceType::kBram) << x;
  EXPECT_EQ(f.at(2, 0), ResourceType::kClb);
}

TEST(Builders, ColumnarEdgeIoAndClock) {
  ColumnarSpec spec;
  spec.bram_period = 0;
  spec.dsp_period = 0;
  const Fabric f = make_columnar(11, 3, spec);
  EXPECT_EQ(f.at(0, 1), ResourceType::kIo);
  EXPECT_EQ(f.at(10, 1), ResourceType::kIo);
  EXPECT_EQ(f.at(5, 1), ResourceType::kClock);
}

TEST(Builders, IrregularIsDeterministicPerSeed) {
  IrregularSpec spec;
  const Fabric a = make_irregular(40, 16, spec, 7);
  const Fabric b = make_irregular(40, 16, spec, 7);
  const Fabric c = make_irregular(40, 16, spec, 8);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
}

TEST(Builders, EvaluationDeviceHasStaticFlank) {
  const Fabric f = make_evaluation_device();
  EXPECT_EQ(f.width(), 120);
  EXPECT_EQ(f.height(), 48);
  EXPECT_EQ(f.at(110, 10), ResourceType::kStatic);
  EXPECT_NE(f.at(50, 10), ResourceType::kStatic);
}

TEST(PartialRegion, WholeFabricExcludesStatic) {
  auto fabric = std::make_shared<const Fabric>(make_evaluation_device());
  const PartialRegion region(fabric);
  EXPECT_EQ(region.width(), 120);
  EXPECT_FALSE(region.available(110, 10));  // static flank
  EXPECT_TRUE(region.available(1, 1));
  const auto counts = region.available_counts();
  EXPECT_EQ(counts[static_cast<int>(ResourceType::kStatic)], 0);
  EXPECT_GT(counts[static_cast<int>(ResourceType::kClb)], 0);
}

TEST(PartialRegion, WindowUsesLocalCoordinates) {
  auto fabric = std::make_shared<const Fabric>(make_homogeneous(10, 10));
  const PartialRegion region(fabric, Rect{4, 2, 5, 6});
  EXPECT_EQ(region.width(), 5);
  EXPECT_EQ(region.height(), 6);
  EXPECT_TRUE(region.available(0, 0));   // fabric (4,2)
  EXPECT_FALSE(region.available(5, 0));  // outside window
  EXPECT_EQ(region.total_available(), 30);
}

TEST(PartialRegion, RejectsWindowOutsideFabric) {
  auto fabric = std::make_shared<const Fabric>(make_homogeneous(4, 4));
  EXPECT_THROW(PartialRegion(fabric, Rect{2, 2, 4, 4}), InvalidInput);
  EXPECT_THROW(PartialRegion(fabric, Rect{0, 0, 0, 0}), InvalidInput);
}

TEST(PartialRegion, BlockRemovesTiles) {
  auto fabric = std::make_shared<const Fabric>(make_homogeneous(6, 6));
  PartialRegion region(fabric);
  region.block(Rect{0, 0, 3, 6});
  EXPECT_FALSE(region.available(1, 1));
  EXPECT_TRUE(region.available(3, 1));
  EXPECT_EQ(region.total_available(), 18);
  EXPECT_EQ(region.available_in_columns(3), 0);
  EXPECT_EQ(region.available_in_columns(4), 6);
}

TEST(PartialRegion, BlockMaskEmptyBitmapIsANoOp) {
  auto fabric = std::make_shared<const Fabric>(make_homogeneous(6, 4));
  PartialRegion region(fabric);
  const long before = region.total_available();
  region.block_mask(BitMatrix(4, 6));  // region-shaped, all zero
  EXPECT_EQ(region.total_available(), before);
  EXPECT_TRUE(region.available(0, 0));
}

TEST(PartialRegion, BlockMaskRejectsDimensionMismatch) {
  auto fabric = std::make_shared<const Fabric>(make_homogeneous(6, 4));
  PartialRegion region(fabric);
  EXPECT_THROW(region.block_mask(BitMatrix(4, 7)), InvalidInput);
  EXPECT_THROW(region.block_mask(BitMatrix(3, 6)), InvalidInput);
  EXPECT_THROW(region.block_mask(BitMatrix(0, 0)), InvalidInput);
  // Failed calls must not have blocked anything.
  EXPECT_EQ(region.total_available(), 24);
}

TEST(PartialRegion, FullyBlockedMaskEmptiesTheRegion) {
  auto fabric = std::make_shared<const Fabric>(make_homogeneous(5, 3));
  PartialRegion region(fabric);
  BitMatrix all(3, 5);
  for (int y = 0; y < 3; ++y)
    for (int x = 0; x < 5; ++x) all.set(y, x, true);
  region.block_mask(all);
  EXPECT_EQ(region.total_available(), 0);
  for (int y = 0; y < 3; ++y)
    for (int x = 0; x < 5; ++x) EXPECT_FALSE(region.available(x, y));
  for (const auto& mask : region.masks()) EXPECT_EQ(mask.popcount(), 0);
}

TEST(PartialRegion, AvailableIsFalseOutsideTheWindow) {
  auto fabric = std::make_shared<const Fabric>(make_homogeneous(5, 3));
  const PartialRegion region(fabric, Rect{1, 1, 3, 2});
  EXPECT_TRUE(region.available(0, 0));
  EXPECT_FALSE(region.available(-1, 0));
  EXPECT_FALSE(region.available(0, -1));
  EXPECT_FALSE(region.available(3, 0));  // window is 3 wide
  EXPECT_FALSE(region.available(0, 2));  // window is 2 tall
}

TEST(PartialRegion, MasksMatchAvailability) {
  auto fabric = std::make_shared<const Fabric>(make_evaluation_device());
  const PartialRegion region(fabric);
  const auto& masks = region.masks();
  ASSERT_EQ(masks.size(), static_cast<std::size_t>(kNumResourceTypes));
  for (int y = 0; y < region.height(); ++y) {
    for (int x = 0; x < region.width(); ++x) {
      int set_count = 0;
      for (const auto& mask : masks) set_count += mask.get(y, x);
      EXPECT_EQ(set_count, region.available(x, y) ? 1 : 0)
          << "tile " << x << "," << y;
    }
  }
}

TEST(Fdf, RoundTrip) {
  const Fabric original = make_evaluation_device(99);
  const Fabric parsed = parse_fdf_string(write_fdf_string(original));
  EXPECT_EQ(parsed, original);
  EXPECT_EQ(parsed.name(), original.name());
}

TEST(Fdf, ParsesMinimalFabric) {
  const Fabric f = parse_fdf_string(
      "# comment\n"
      "fabric tiny 3 2\n"
      "row 0 CBC\n"
      "row 1 CCS\n");
  EXPECT_EQ(f.width(), 3);
  EXPECT_EQ(f.at(1, 0), ResourceType::kBram);
  EXPECT_EQ(f.at(2, 1), ResourceType::kStatic);
}

TEST(Fdf, StaticRectangleRetypesTiles) {
  // The static directive is applied after all rows are painted, so it wins
  // regardless of where it appears relative to the row lines.
  const Fabric f = parse_fdf_string(
      "fabric t 4 2\n"
      "static 1 0 2 1\n"
      "row 0 CCCC\n"
      "row 1 BBBB\n"
      "static 3 1 1 1\n");
  EXPECT_EQ(f.at(0, 0), ResourceType::kClb);
  EXPECT_EQ(f.at(1, 0), ResourceType::kStatic);
  EXPECT_EQ(f.at(2, 0), ResourceType::kStatic);
  EXPECT_EQ(f.at(3, 0), ResourceType::kClb);
  EXPECT_EQ(f.at(3, 1), ResourceType::kStatic);
  EXPECT_EQ(f.at(0, 1), ResourceType::kBram);
}

TEST(Fdf, StaticRectangleOutOfBoundsReportsLine) {
  try {
    static_cast<void>(parse_fdf_string(
        "fabric t 4 2\nrow 0 CCCC\nrow 1 CCCC\nstatic 3 0 2 1\n"));
    FAIL() << "out-of-bounds static rectangle must throw";
  } catch (const InvalidInput& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("fdf:4:"), std::string::npos) << what;
    EXPECT_NE(what.find("out of bounds"), std::string::npos) << what;
  }
}

TEST(Fdf, OverlappingStaticRectanglesReportLine) {
  try {
    static_cast<void>(parse_fdf_string(
        "fabric t 4 2\n"
        "row 0 CCCC\n"
        "row 1 CCCC\n"
        "static 0 0 2 2\n"
        "static 1 1 2 1\n"));
    FAIL() << "overlapping static rectangles must throw";
  } catch (const InvalidInput& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("fdf:5:"), std::string::npos) << what;
    EXPECT_NE(what.find("overlaps"), std::string::npos) << what;
  }
}

TEST(Fdf, RowsInAnyOrder) {
  const Fabric f = parse_fdf_string(
      "fabric t 2 2\nrow 1 BB\nrow 0 CC\n");
  EXPECT_EQ(f.at(0, 1), ResourceType::kBram);
  EXPECT_EQ(f.at(0, 0), ResourceType::kClb);
}

TEST(Fdf, AcceptsCrlfLineEndings) {
  const Fabric f = parse_fdf_string(
      "# dos file\r\n"
      "fabric tiny 3 2\r\n"
      "row 0 CBC\r\n"
      "row 1 CCS\r\n");
  EXPECT_EQ(f.width(), 3);
  EXPECT_EQ(f.at(1, 0), ResourceType::kBram);
  EXPECT_EQ(f.at(2, 1), ResourceType::kStatic);
}

TEST(Fdf, EmptyInputReportsEmptyFabricFile) {
  // Not the misleading "fdf:0: missing fabric header".
  try {
    static_cast<void>(parse_fdf_string(""));
    FAIL() << "empty input must throw";
  } catch (const InvalidInput& e) {
    EXPECT_NE(std::string(e.what()).find("empty fabric file"),
              std::string::npos)
        << e.what();
  }
}

TEST(Fdf, UnknownResourceCharacterReportsColumn) {
  try {
    static_cast<void>(parse_fdf_string("fabric t 4 1\nrow 0 CCXC\n"));
    FAIL() << "bad character must throw";
  } catch (const InvalidInput& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("'X'"), std::string::npos) << what;
    EXPECT_NE(what.find("column 3"), std::string::npos) << what;  // 1-based
  }
}

class FdfErrorTest : public ::testing::TestWithParam<const char*> {};

TEST_P(FdfErrorTest, RejectsMalformedInput) {
  EXPECT_THROW(parse_fdf_string(GetParam()), InvalidInput);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, FdfErrorTest,
    ::testing::Values(
        "",                                          // empty
        "row 0 CC\n",                                // row before header
        "fabric t 0 2\nrow 0 \n",                    // zero width
        "fabric t 2 2\nrow 0 CC\n",                  // missing row 1
        "fabric t 2 2\nrow 0 CC\nrow 0 CC\nrow 1 CC\n",  // duplicate row
        "fabric t 2 1\nrow 0 CCC\n",                 // row too long
        "fabric t 2 1\nrow 0 CX\n",                  // bad character
        "fabric t 2 1\nrow 5 CC\n",                  // row out of range
        "fabric t 2 1\nbogus\n",                     // unknown directive
        "fabric t 2 1\nfabric t 2 1\nrow 0 CC\n",    // duplicate header
        "static 0 0 1 1\nfabric t 2 1\nrow 0 CC\n",  // static before header
        "fabric t 2 1\nrow 0 CC\nstatic 0 0\n",      // static field count
        "fabric t 2 1\nrow 0 CC\nstatic 0 0 a 1\n",  // non-integer static
        "fabric t 2 1\nrow 0 CC\nstatic 0 0 0 1\n",  // zero-width static
        "fabric t 2 1\nrow 0 CC\nstatic 0 0 1 -1\n",  // negative static
        "fabric t 2 1\nrow 0 CC\nstatic 0 0 3 1\n"));  // static oob

TEST(Fdf, FileRoundTrip) {
  const Fabric original = make_columnar(12, 6);
  const std::string path = ::testing::TempDir() + "/rr_fabric.fdf";
  save_fdf(path, original);
  EXPECT_EQ(load_fdf(path), original);
}

TEST(Fdf, LoadMissingFileThrows) {
  EXPECT_THROW(load_fdf("/nonexistent/path/x.fdf"), InvalidInput);
}

}  // namespace
}  // namespace rr::fpga
