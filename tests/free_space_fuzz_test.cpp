// Differential fuzz for the maximal-empty-rectangle free-space index.
//
// Three oracle layers, mirroring the PR 2/3/6 pattern:
//   1. FreeSpaceIndex::enumerate against a brute-force maximal-rectangle
//      definition check on small grids.
//   2. The incremental occupy/release/set_available updates against
//      enumerate-from-scratch after every event of random
//      place/remove/fault/repair sequences.
//   3. best_anchor (all three policies, with and without a window) against
//      a per-anchor bitmap reference that knows nothing about rectangles.
// Layer 4 — the online placer's index admission against the bitmap sweep —
// lives at the end: whole random traces replayed through OnlinePlacer pairs
// with free_space_index on/off must make identical decisions.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "baseline/online.hpp"
#include "comm/net.hpp"
#include "fpga/builders.hpp"
#include "fpga/fabric.hpp"
#include "fpga/faults.hpp"
#include "fpga/region.hpp"
#include "geo/free_space.hpp"
#include "model/generator.hpp"
#include "runtime/recovery.hpp"
#include "util/bitmatrix.hpp"
#include "util/rng.hpp"

namespace rr {
namespace {

BitMatrix random_bitmap(Rng& rng, int rows, int cols, int fill_pct) {
  BitMatrix m(rows, cols);
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols; ++c)
      if (rng.bounded(100) < static_cast<std::uint64_t>(fill_pct))
        m.set(r, c, true);
  return m;
}

bool rect_all_free(const BitMatrix& free, const Rect& r) {
  if (r.x < 0 || r.y < 0 || r.right() > free.cols() || r.top() > free.rows())
    return false;
  for (int y = r.y; y < r.top(); ++y)
    for (int x = r.x; x < r.right(); ++x)
      if (!free.get(y, x)) return false;
  return true;
}

/// Brute-force: every maximal free rectangle by definition (free, and no
/// 1-step extension in any direction stays free).
std::set<Rect> brute_maximal_rects(const BitMatrix& free) {
  std::set<Rect> out;
  for (int y = 0; y < free.rows(); ++y) {
    for (int x = 0; x < free.cols(); ++x) {
      if (!free.get(y, x)) continue;
      for (int h = 1; y + h <= free.rows(); ++h) {
        for (int w = 1; x + w <= free.cols(); ++w) {
          const Rect r{x, y, w, h};
          if (!rect_all_free(free, r)) break;
          const bool maximal =
              !rect_all_free(free, Rect{x - 1, y, w + 1, h}) &&
              !rect_all_free(free, Rect{x, y, w + 1, h}) &&
              !rect_all_free(free, Rect{x, y - 1, w, h + 1}) &&
              !rect_all_free(free, Rect{x, y, w, h + 1});
          if (maximal) out.insert(r);
        }
        if (!rect_all_free(free, Rect{x, y, 1, h})) break;
      }
    }
  }
  return out;
}

std::set<Rect> to_set(const std::vector<Rect>& rects) {
  std::set<Rect> out(rects.begin(), rects.end());
  EXPECT_EQ(out.size(), rects.size()) << "duplicate rectangles stored";
  return out;
}

TEST(FreeSpaceEnumerate, MatchesBruteForceOnRandomGrids) {
  Rng rng(0xFEE15ABCULL);
  for (int round = 0; round < 60; ++round) {
    const int rows = 1 + static_cast<int>(rng.bounded(12));
    const int cols = 1 + static_cast<int>(rng.bounded(14));
    const int fill = static_cast<int>(rng.bounded(101));
    const BitMatrix free = random_bitmap(rng, rows, cols, fill);
    EXPECT_EQ(to_set(FreeSpaceIndex::enumerate(free)),
              brute_maximal_rects(free))
        << "round " << round << " grid\n"
        << free.to_string();
  }
}

TEST(FreeSpaceEnumerate, WordEdgeWidths) {
  Rng rng(0x5EED5EEDULL);
  for (const int cols : {63, 64, 65, 127, 128, 130}) {
    const BitMatrix free = random_bitmap(rng, 5, cols, 70);
    EXPECT_EQ(to_set(FreeSpaceIndex::enumerate(free)),
              brute_maximal_rects(free))
        << "cols " << cols;
  }
}

TEST(FreeSpaceEnumerate, FullAndEmpty) {
  const BitMatrix empty(6, 9);
  EXPECT_TRUE(FreeSpaceIndex::enumerate(empty).empty());
  BitMatrix full(6, 9);
  full.fill();
  const auto rects = FreeSpaceIndex::enumerate(full);
  ASSERT_EQ(rects.size(), 1u);
  EXPECT_EQ(rects[0], (Rect{0, 0, 9, 6}));
}

/// A random footprint mask: a union of a few rectangles, guaranteeing at
/// least one set cell, normalized to its bounding box.
BitMatrix random_footprint(Rng& rng, int max_dim) {
  const int rows = 1 + static_cast<int>(rng.bounded(max_dim));
  const int cols = 1 + static_cast<int>(rng.bounded(max_dim));
  BitMatrix m(rows, cols);
  const int blobs = 1 + static_cast<int>(rng.bounded(3));
  for (int b = 0; b < blobs; ++b) {
    const int x = static_cast<int>(rng.bounded(static_cast<std::uint64_t>(cols)));
    const int y = static_cast<int>(rng.bounded(static_cast<std::uint64_t>(rows)));
    const int w = 1 + static_cast<int>(rng.bounded(static_cast<std::uint64_t>(cols - x)));
    const int h = 1 + static_cast<int>(rng.bounded(static_cast<std::uint64_t>(rows - y)));
    for (int yy = y; yy < y + h; ++yy)
      for (int xx = x; xx < x + w; ++xx) m.set(yy, xx, true);
  }
  // Normalize: crop to the bounding box of set cells.
  int x0 = cols, x1 = -1, y0 = rows, y1 = -1;
  for (int y = 0; y < rows; ++y)
    for (int x = 0; x < cols; ++x)
      if (m.get(y, x)) {
        x0 = std::min(x0, x);
        x1 = std::max(x1, x);
        y0 = std::min(y0, y);
        y1 = std::max(y1, y);
      }
  BitMatrix out(y1 - y0 + 1, x1 - x0 + 1);
  for (int y = y0; y <= y1; ++y)
    for (int x = x0; x <= x1; ++x)
      if (m.get(y, x)) out.set(y - y0, x - x0, true);
  return out;
}

TEST(FreeSpaceDecompose, PartsTileTheMask) {
  Rng rng(0xDECC0DEULL);
  for (int round = 0; round < 200; ++round) {
    const BitMatrix mask = random_footprint(rng, 9);
    const std::vector<Rect> parts = decompose_mask(mask);
    BitMatrix cover(mask.rows(), mask.cols());
    long covered = 0;
    for (const Rect& p : parts) {
      ASSERT_GE(p.x, 0);
      ASSERT_GE(p.y, 0);
      ASSERT_LE(p.right(), mask.cols());
      ASSERT_LE(p.top(), mask.rows());
      for (int y = p.y; y < p.top(); ++y)
        for (int x = p.x; x < p.right(); ++x) {
          ASSERT_TRUE(mask.get(y, x)) << "part cell outside mask";
          ASSERT_FALSE(cover.get(y, x)) << "overlapping parts";
          cover.set(y, x, true);
          ++covered;
        }
    }
    EXPECT_EQ(covered, static_cast<long>(mask.popcount()))
        << "parts do not cover mask\n"
        << mask.to_string();
  }
}

/// Checks the stored MER set of `index` exactly matches a from-scratch
/// enumeration and the stored free bitmap matches `expect_free`.
void expect_index_consistent(const FreeSpaceIndex& index,
                             const BitMatrix& expect_free,
                             const char* context) {
  ASSERT_EQ(index.free_matrix(), expect_free) << context;
  ASSERT_EQ(static_cast<std::size_t>(index.free_tiles()),
            expect_free.popcount())
      << context;
  EXPECT_EQ(to_set(index.rectangles()),
            to_set(FreeSpaceIndex::enumerate(expect_free)))
      << context << " free bitmap:\n"
      << expect_free.to_string();
}

TEST(FreeSpaceIncremental, RandomPlaceRemoveFaultRepairSequences) {
  Rng rng(0x1C4E3E27ULL);
  for (int round = 0; round < 25; ++round) {
    const int rows = 4 + static_cast<int>(rng.bounded(12));
    const int cols = 4 + static_cast<int>(rng.bounded(16));
    // Availability with a few static holes.
    BitMatrix avail(rows, cols, true);
    for (int k = static_cast<int>(rng.bounded(5)); k > 0; --k)
      avail.set(static_cast<int>(rng.bounded(static_cast<std::uint64_t>(rows))),
                static_cast<int>(rng.bounded(static_cast<std::uint64_t>(cols))),
                false);
    FreeSpaceIndex index(avail);
    BitMatrix occupied(rows, cols);
    struct Live {
      BitMatrix mask;
      int x, y;
    };
    std::vector<Live> live;
    BitMatrix faults(rows, cols);  // currently faulted cells
    const auto free_now = [&] {
      BitMatrix f = avail;
      f.clear_shifted(faults, 0, 0);
      f.clear_shifted(occupied, 0, 0);
      return f;
    };
    expect_index_consistent(index, free_now(), "initial");
    for (int step = 0; step < 60; ++step) {
      const std::uint64_t op = rng.bounded(100);
      if (op < 45) {  // try to place a random footprint at a random free spot
        const BitMatrix fp = random_footprint(rng, 5);
        if (fp.rows() > rows || fp.cols() > cols) continue;
        const int x = static_cast<int>(
            rng.bounded(static_cast<std::uint64_t>(cols - fp.cols() + 1)));
        const int y = static_cast<int>(
            rng.bounded(static_cast<std::uint64_t>(rows - fp.rows() + 1)));
        if (!free_now().covers_shifted(fp, y, x)) continue;
        index.occupy(fp, y, x);
        occupied.or_shifted(fp, y, x);
        live.push_back(Live{fp, x, y});
      } else if (op < 70 && !live.empty()) {  // remove
        const std::size_t pick = rng.bounded(live.size());
        const Live victim = live[static_cast<std::size_t>(pick)];
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
        occupied.clear_shifted(victim.mask, victim.y, victim.x);
        index.release(victim.mask, victim.y, victim.x);
      } else if (op < 85) {  // fault a random small rect
        const int x = static_cast<int>(rng.bounded(static_cast<std::uint64_t>(cols)));
        const int y = static_cast<int>(rng.bounded(static_cast<std::uint64_t>(rows)));
        const int w = 1 + static_cast<int>(rng.bounded(3));
        const int h = 1 + static_cast<int>(rng.bounded(3));
        for (int yy = y; yy < std::min(rows, y + h); ++yy)
          for (int xx = x; xx < std::min(cols, x + w); ++xx)
            faults.set(yy, xx, true);
        BitMatrix now_avail = avail;
        now_avail.clear_shifted(faults, 0, 0);
        index.set_available(now_avail);
      } else {  // repair everything
        faults = BitMatrix(rows, cols);
        index.set_available(avail);
      }
      expect_index_consistent(index, free_now(), "after step");
    }
  }
}

/// Per-anchor reference for best_anchor: knows only bitmaps, no rectangles.
std::optional<AnchorPick> reference_best_anchor(
    const BitMatrix& free, std::span<const BitMatrix> shapes,
    std::span<const BitMatrix> anchors, AnchorPolicy policy,
    const Rect* window, const AnchorCost* cost = nullptr) {
  const std::vector<Rect> mers = FreeSpaceIndex::enumerate(free);
  std::optional<AnchorPick> best;
  std::vector<long> best_key;
  for (std::size_t s = 0; s < shapes.size(); ++s) {
    const BitMatrix& fp = shapes[s];
    const std::vector<Rect> parts = decompose_mask(fp);
    if (parts.empty()) continue;
    for (int y = 0; y < free.rows(); ++y) {
      for (int x = 0; x < free.cols(); ++x) {
        if (!anchors[s].get(y, x)) continue;
        if (window != nullptr &&
            !window->contains(Rect{x, y, fp.cols(), fp.rows()}))
          continue;
        if (!free.covers_shifted(fp, y, x)) continue;
        std::vector<long> key;
        switch (policy) {
          case AnchorPolicy::kFirstFit:
            key = {x + fp.cols(), x, y, static_cast<long>(s)};
            break;
          case AnchorPolicy::kBottomLeft:
            key = {y, x, static_cast<long>(s)};
            break;
          case AnchorPolicy::kBestFit: {
            const Rect p0 = parts[0].translated(Point{x, y});
            long bf = -1;
            for (const Rect& m : mers)
              if (m.contains(p0) && (bf < 0 || m.area() < bf)) bf = m.area();
            key = {bf, x + fp.cols(), x, y, static_cast<long>(s)};
            break;
          }
          case AnchorPolicy::kCommCost: {
            const long c =
                cost != nullptr ? (*cost)(static_cast<int>(s), x, y) : 0;
            key = {c, x + fp.cols(), x, y, static_cast<long>(s)};
            break;
          }
        }
        if (!best.has_value() || key < best_key) {
          best = AnchorPick{static_cast<int>(s), x, y};
          best_key = key;
        }
      }
    }
  }
  return best;
}

TEST(FreeSpaceQuery, BestAnchorMatchesPerAnchorReference) {
  Rng rng(0xBE57A4C4ULL);
  for (int round = 0; round < 120; ++round) {
    const int rows = 4 + static_cast<int>(rng.bounded(12));
    const int cols = 4 + static_cast<int>(rng.bounded(70));
    const BitMatrix free = random_bitmap(rng, rows, cols, 60);
    FreeSpaceIndex index(free);
    const int n_shapes = 1 + static_cast<int>(rng.bounded(3));
    std::vector<BitMatrix> shapes;
    std::vector<BitMatrix> anchor_maps;
    std::vector<std::vector<Rect>> parts;
    for (int s = 0; s < n_shapes; ++s) {
      shapes.push_back(random_footprint(rng, 5));
      // Random valid-anchor bitmap restricted to in-bounds placements.
      BitMatrix a(rows, cols);
      for (int y = 0; y + shapes.back().rows() <= rows; ++y)
        for (int x = 0; x + shapes.back().cols() <= cols; ++x)
          if (rng.bounded(100) < 80) a.set(y, x, true);
      anchor_maps.push_back(std::move(a));
      parts.push_back(decompose_mask(shapes.back()));
    }
    std::vector<AnchorQuery> queries;
    for (int s = 0; s < n_shapes; ++s)
      queries.push_back(AnchorQuery{&anchor_maps[static_cast<std::size_t>(s)],
                                    parts[static_cast<std::size_t>(s)],
                                    shapes[static_cast<std::size_t>(s)].cols(),
                                    shapes[static_cast<std::size_t>(s)].rows()});
    std::optional<Rect> window;
    if (rng.bounded(2) == 0) {
      const int wx = static_cast<int>(rng.bounded(static_cast<std::uint64_t>(cols)));
      const int wy = static_cast<int>(rng.bounded(static_cast<std::uint64_t>(rows)));
      window = Rect{wx, wy, 1 + static_cast<int>(rng.bounded(static_cast<std::uint64_t>(cols - wx))),
                    1 + static_cast<int>(rng.bounded(static_cast<std::uint64_t>(rows - wy)))};
    }
    for (const AnchorPolicy policy :
         {AnchorPolicy::kFirstFit, AnchorPolicy::kBestFit,
          AnchorPolicy::kBottomLeft}) {
      const auto got = index.best_anchor(queries, policy,
                                         window ? &*window : nullptr);
      const auto want = reference_best_anchor(
          free, shapes, anchor_maps, policy, window ? &*window : nullptr);
      ASSERT_EQ(got.has_value(), want.has_value())
          << "round " << round << " policy " << static_cast<int>(policy);
      if (got.has_value()) {
        EXPECT_EQ(got->shape, want->shape) << "round " << round;
        EXPECT_EQ(got->x, want->x) << "round " << round;
        EXPECT_EQ(got->y, want->y) << "round " << round;
      }
    }
    // kCommCost against a synthetic deterministic cost. Integer division
    // by 3 quantizes the distance so distinct anchors routinely share a
    // cost and the pinned first-fit tie-break has to decide.
    const int tx = static_cast<int>(rng.bounded(static_cast<std::uint64_t>(cols)));
    const int ty = static_cast<int>(rng.bounded(static_cast<std::uint64_t>(rows)));
    const AnchorCost cost = [&](int shape, int x, int y) {
      return static_cast<long>((std::abs(x - tx) + std::abs(y - ty)) / 3 +
                               shape % 2);
    };
    const auto got = index.best_anchor(queries, AnchorPolicy::kCommCost,
                                       window ? &*window : nullptr, &cost);
    const auto want =
        reference_best_anchor(free, shapes, anchor_maps,
                              AnchorPolicy::kCommCost,
                              window ? &*window : nullptr, &cost);
    ASSERT_EQ(got.has_value(), want.has_value()) << "round " << round;
    if (got.has_value()) {
      EXPECT_EQ(got->shape, want->shape) << "round " << round;
      EXPECT_EQ(got->x, want->x) << "round " << round;
      EXPECT_EQ(got->y, want->y) << "round " << round;
    }
    // Null cost: kCommCost must degenerate to exactly kFirstFit.
    const auto ff = index.best_anchor(queries, AnchorPolicy::kFirstFit,
                                      window ? &*window : nullptr);
    const auto null_cost = index.best_anchor(
        queries, AnchorPolicy::kCommCost, window ? &*window : nullptr);
    ASSERT_EQ(ff.has_value(), null_cost.has_value()) << "round " << round;
    if (ff.has_value()) {
      EXPECT_EQ(ff->shape, null_cost->shape) << "round " << round;
      EXPECT_EQ(ff->x, null_cost->x) << "round " << round;
      EXPECT_EQ(ff->y, null_cost->y) << "round " << round;
    }
  }
}

/// Satellite: tie-break audit. Uniform grids where every feasible anchor
/// scores equal under the policy (constant comm cost; identical 1x1 shapes
/// duplicated across queries so even the shape component has to decide)
/// force the pinned tie-break keys to carry the whole decision; index and
/// per-anchor reference must still agree everywhere.
TEST(FreeSpaceQuery, TieBreakingIsPinnedUnderEqualScores) {
  Rng rng(0x71EB4EA8ULL);
  for (int round = 0; round < 40; ++round) {
    const int rows = 3 + static_cast<int>(rng.bounded(8));
    const int cols = 3 + static_cast<int>(rng.bounded(10));
    // Mostly-free grid: large equal-score plateaus with a few holes.
    const BitMatrix free = random_bitmap(rng, rows, cols, 85);
    FreeSpaceIndex index(free);
    // Two identical 1x1 shapes with full anchor maps: every feasible
    // anchor ties on geometry, and the duplicate shape ties on (x, y) so
    // only the shape-index component separates the two queries.
    const BitMatrix unit(1, 1, true);
    BitMatrix anchors(rows, cols, true);
    const std::vector<Rect> unit_parts = decompose_mask(unit);
    std::vector<BitMatrix> shapes(2, unit);
    std::vector<BitMatrix> anchor_maps(2, anchors);
    std::vector<AnchorQuery> queries(
        2, AnchorQuery{&anchor_maps[0], unit_parts, 1, 1});
    queries[1].anchors = &anchor_maps[1];
    const AnchorCost flat = [](int, int, int) { return 7; };
    for (const AnchorPolicy policy :
         {AnchorPolicy::kFirstFit, AnchorPolicy::kBestFit,
          AnchorPolicy::kBottomLeft, AnchorPolicy::kCommCost}) {
      const AnchorCost* cost =
          policy == AnchorPolicy::kCommCost ? &flat : nullptr;
      const auto got = index.best_anchor(queries, policy, nullptr, cost);
      const auto want = reference_best_anchor(free, shapes, anchor_maps,
                                              policy, nullptr, cost);
      ASSERT_EQ(got.has_value(), want.has_value())
          << "round " << round << " policy " << static_cast<int>(policy);
      if (got.has_value()) {
        EXPECT_EQ(got->shape, want->shape) << "round " << round;
        EXPECT_EQ(got->x, want->x) << "round " << round;
        EXPECT_EQ(got->y, want->y) << "round " << round;
        // A duplicated shape can never win: the key's trailing shape
        // component makes the lower query index strictly better.
        EXPECT_EQ(got->shape, 0) << "round " << round;
      }
    }
  }
}

// ---- Layer 4: whole components, index arm against sweep arm. ----

/// A column-module library with alternative-rich entries so multi-shape
/// queries and bestfit tie-breaks are exercised.
std::vector<model::Module> differential_library() {
  using model::ModuleGenerator;
  std::vector<model::Module> lib;
  lib.push_back(
      model::Module("s1", {ModuleGenerator::make_column_shape(1, 0, 1, 1, 0)}));
  lib.push_back(
      model::Module("s4", {ModuleGenerator::make_column_shape(4, 0, 1, 2, 0),
                           ModuleGenerator::make_column_shape(4, 0, 1, 4, 0)}));
  lib.push_back(
      model::Module("s6", {ModuleGenerator::make_column_shape(6, 0, 1, 3, 0),
                           ModuleGenerator::make_column_shape(6, 0, 1, 2, 0)}));
  lib.push_back(
      model::Module("s9", {ModuleGenerator::make_column_shape(9, 0, 1, 3, 0)}));
  return lib;
}

/// Replays random place/remove/fault/repair traces through two OnlinePlacer
/// arms — free-space index on vs. the occupancy-bitmap sweep — and requires
/// identical accept/reject decisions and identical chosen anchors at every
/// event, under every anchor policy. This is the "decision_mismatches == 0"
/// oracle contract the bench pins at scale.
TEST(OnlinePlacerDifferential, IndexMatchesSweepOnRandomTraces) {
  const auto fabric = std::make_shared<const fpga::Fabric>(
      fpga::make_homogeneous(14, 8));
  const std::vector<model::Module> library = differential_library();
  // Nets over the library for the commcost policy: a chain plus an IO
  // terminal, weighted so anchors genuinely reorder relative to first fit.
  const auto nets = std::make_shared<const comm::NetList>([&] {
    comm::NetList list;
    comm::Net chain;
    chain.weight = 3;
    chain.modules = {"s1", "s4", "s6"};
    list.nets.push_back(std::move(chain));
    comm::Net io;
    io.weight = 2;
    io.modules = {"s9"};
    io.terminals.push_back(Point{0, 4});
    list.nets.push_back(std::move(io));
    return list;
  }());
  for (const AnchorPolicy policy :
       {AnchorPolicy::kFirstFit, AnchorPolicy::kBestFit,
        AnchorPolicy::kBottomLeft, AnchorPolicy::kCommCost}) {
    Rng rng(0xD1FFC0DEULL + static_cast<std::uint64_t>(policy) * 97);
    for (int round = 0; round < 5; ++round) {
      fpga::PartialRegion region_index(fabric);
      fpga::PartialRegion region_sweep(fabric);
      baseline::OnlineOptions with_index;
      with_index.policy = policy;
      with_index.free_space_index = true;
      if (policy == AnchorPolicy::kCommCost) {
        with_index.nets = nets;
        with_index.comm_weight = 5;
      }
      baseline::OnlineOptions with_sweep = with_index;
      with_sweep.free_space_index = false;
      baseline::OnlinePlacer indexed(region_index, with_index);
      baseline::OnlinePlacer swept(region_sweep, with_sweep);
      fpga::FaultMap faults(fabric->width(), fabric->height());
      std::vector<int> live;
      int next_id = 0;
      for (int step = 0; step < 110; ++step) {
        const std::uint64_t op = rng.bounded(100);
        if (op < 55) {
          const std::size_t m = rng.bounded(library.size());
          const int id = next_id++;
          const auto a = indexed.place(id, library[m]);
          const auto b = swept.place(id, library[m]);
          ASSERT_EQ(a.has_value(), b.has_value())
              << "policy " << static_cast<int>(policy) << " round " << round
              << " step " << step << " module " << library[m].name();
          if (a.has_value()) {
            ASSERT_EQ(a->shape, b->shape) << "step " << step;
            ASSERT_EQ(a->x, b->x) << "step " << step;
            ASSERT_EQ(a->y, b->y) << "step " << step;
            live.push_back(id);
          }
        } else if (op < 80 && !live.empty()) {
          const std::size_t pick = rng.bounded(live.size());
          const int id = live[pick];
          live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
          indexed.remove(id);
          swept.remove(id);
        } else {
          // Fault or scrub. Displacement is the recovery layer's business;
          // the admission contract only needs both arms to see the same
          // masks, so the event goes to both regions followed by the
          // mandatory refresh_region() resync.
          fpga::FaultEvent event;
          if (rng.bounded(3) == 0) {
            event.op = fpga::FaultEvent::Op::kRepairTransient;
          } else {
            event.op = fpga::FaultEvent::Op::kTile;
            event.kind = fpga::FaultKind::kTransient;
            event.rect = Rect{
                static_cast<int>(rng.bounded(
                    static_cast<std::uint64_t>(fabric->width()))),
                static_cast<int>(rng.bounded(
                    static_cast<std::uint64_t>(fabric->height()))),
                1, 1};
          }
          faults.apply(event);
          region_index.apply_faults(faults);
          region_sweep.apply_faults(faults);
          indexed.refresh_region();
          swept.refresh_region();
        }
        ASSERT_EQ(indexed.occupied_matrix(), swept.occupied_matrix())
            << "step " << step;
        // The index arm's internal free bitmap must track avail ∧ ¬occ.
        BitMatrix expect_free =
            FreeSpaceIndex::union_of(region_index.masks());
        expect_free.clear_shifted(indexed.occupied_matrix(), 0, 0);
        ASSERT_EQ(indexed.free_space().free_matrix(), expect_free)
            << "step " << step;
      }
      EXPECT_EQ(indexed.live_placements(), swept.live_placements());
    }
  }
}

/// Replays random fault/repair sequences through two FaultRecoveryManager
/// arms (tier-1 queries from the index vs. the sweep) and requires
/// identical recovery outcomes and final state. Deadline 0 (unlimited)
/// keeps the tier ladder wall-clock independent.
TEST(FaultRecoveryDifferential, IndexMatchesSweepOnRandomFaultSequences) {
  const auto fabric = std::make_shared<const fpga::Fabric>(
      fpga::make_homogeneous(14, 8));
  const std::vector<model::Module> library = differential_library();
  Rng rng(0xFA171D1FULL);
  for (int round = 0; round < 4; ++round) {
    // Initial layout: greedy first-fit via an OnlinePlacer, admitted into
    // both managers identically.
    fpga::PartialRegion seed_region(fabric);
    baseline::OnlinePlacer seeder(seed_region);
    std::vector<std::pair<int, std::size_t>> admitted;  // id -> library idx
    for (int id = 0; id < 10; ++id) {
      const std::size_t m = rng.bounded(library.size());
      if (seeder.place(id, library[m]).has_value()) admitted.push_back({id, m});
    }
    runtime::FaultRecoveryOptions base;
    base.deadline_seconds = 0.0;
    base.seed = 7;
    runtime::FaultRecoveryOptions with_index = base;
    with_index.use_free_space_index = true;
    runtime::FaultRecoveryOptions with_sweep = base;
    with_sweep.use_free_space_index = false;
    runtime::FaultRecoveryManager indexed(fpga::PartialRegion(fabric),
                                          with_index);
    runtime::FaultRecoveryManager swept(fpga::PartialRegion(fabric),
                                        with_sweep);
    for (const placer::ModulePlacement& p : seeder.live_placements()) {
      std::size_t m = 0;
      for (const auto& [id, idx] : admitted)
        if (id == p.module) m = idx;
      indexed.admit(p.module, library[m], p.shape, p.x, p.y);
      swept.admit(p.module, library[m], p.shape, p.x, p.y);
    }
    for (int step = 0; step < 30; ++step) {
      fpga::FaultEvent event;
      const std::uint64_t kind = rng.bounded(10);
      if (kind < 5) {
        event.op = fpga::FaultEvent::Op::kTile;
        event.kind = rng.bounded(2) == 0 ? fpga::FaultKind::kTransient
                                         : fpga::FaultKind::kPermanent;
        event.rect = Rect{
            static_cast<int>(rng.bounded(
                static_cast<std::uint64_t>(fabric->width()))),
            static_cast<int>(rng.bounded(
                static_cast<std::uint64_t>(fabric->height()))),
            1, 1};
      } else if (kind < 7) {
        event.op = fpga::FaultEvent::Op::kRect;
        event.kind = fpga::FaultKind::kTransient;
        const int x = static_cast<int>(
            rng.bounded(static_cast<std::uint64_t>(fabric->width() - 1)));
        const int y = static_cast<int>(
            rng.bounded(static_cast<std::uint64_t>(fabric->height() - 1)));
        event.rect = Rect{x, y, 2, 2};
      } else {
        event.op = fpga::FaultEvent::Op::kRepairTransient;
      }
      const auto a = indexed.on_fault(event);
      const auto b = swept.on_fault(event);
      ASSERT_EQ(a.tiles_faulted, b.tiles_faulted) << "step " << step;
      ASSERT_EQ(a.tiles_repaired, b.tiles_repaired) << "step " << step;
      ASSERT_EQ(a.modules_hit, b.modules_hit) << "step " << step;
      ASSERT_EQ(a.recovered, b.recovered) << "step " << step;
      ASSERT_EQ(a.parked, b.parked) << "step " << step;
      ASSERT_EQ(a.retry_recoveries, b.retry_recoveries) << "step " << step;
      ASSERT_EQ(a.modules.size(), b.modules.size()) << "step " << step;
      for (std::size_t i = 0; i < a.modules.size(); ++i) {
        ASSERT_EQ(a.modules[i].instance_id, b.modules[i].instance_id);
        ASSERT_EQ(a.modules[i].tier, b.modules[i].tier)
            << "step " << step << " module " << a.modules[i].instance_id;
        ASSERT_EQ(a.modules[i].recovered, b.modules[i].recovered);
        ASSERT_EQ(a.modules[i].from_parked, b.modules[i].from_parked);
      }
      ASSERT_EQ(indexed.occupied_matrix(), swept.occupied_matrix())
          << "step " << step;
      ASSERT_EQ(indexed.live_placements(), swept.live_placements())
          << "step " << step;
    }
  }
}

}  // namespace
}  // namespace rr
