// Reified relations and the positive table constraint, cross-checked
// against brute force like the rest of the constraint library.
#include <gtest/gtest.h>

#include "cp/constraints.hpp"
#include "cp_test_utils.hpp"

namespace rr::cp {
namespace {

using testing::Assignment;
using testing::brute_force;
using testing::solve_all;

class ReifiedOpTest : public ::testing::TestWithParam<RelOp> {};

TEST_P(ReifiedOpTest, MatchesBruteForce) {
  const RelOp op = GetParam();
  Space s;
  const VarId x = s.new_var(0, 5);
  const VarId b = s.new_var(0, 1);
  post_rel_reified(s, x, op, 3, b);
  const auto expected = brute_force(
      {{0, 5}, {0, 1}}, [&](const Assignment& a) {
        bool truth = false;
        switch (op) {
          case RelOp::kEq: truth = a[0] == 3; break;
          case RelOp::kNeq: truth = a[0] != 3; break;
          case RelOp::kLeq: truth = a[0] <= 3; break;
          case RelOp::kGeq: truth = a[0] >= 3; break;
          case RelOp::kLt: truth = a[0] < 3; break;
          case RelOp::kGt: truth = a[0] > 3; break;
        }
        return (a[1] == 1) == truth;
      });
  EXPECT_EQ(solve_all(s, {x, b}), expected);
}

INSTANTIATE_TEST_SUITE_P(AllOps, ReifiedOpTest,
                         ::testing::Values(RelOp::kEq, RelOp::kNeq,
                                           RelOp::kLeq, RelOp::kGeq,
                                           RelOp::kLt, RelOp::kGt),
                         [](const auto& info) {
                           switch (info.param) {
                             case RelOp::kEq: return "Eq";
                             case RelOp::kNeq: return "Neq";
                             case RelOp::kLeq: return "Leq";
                             case RelOp::kGeq: return "Geq";
                             case RelOp::kLt: return "Lt";
                             case RelOp::kGt: return "Gt";
                           }
                           return "?";
                         });

TEST(ReifiedRel, ForwardDirection) {
  Space s;
  const VarId x = s.new_var(0, 9);
  const VarId b = s.new_var(0, 1);
  post_rel_reified(s, x, RelOp::kLeq, 4, b);
  s.assign(b, 1);
  ASSERT_TRUE(s.propagate());
  EXPECT_EQ(s.max(x), 4);
}

TEST(ReifiedRel, NegativeDirection) {
  Space s;
  const VarId x = s.new_var(0, 9);
  const VarId b = s.new_var(0, 1);
  post_rel_reified(s, x, RelOp::kLeq, 4, b);
  s.assign(b, 0);
  ASSERT_TRUE(s.propagate());
  EXPECT_EQ(s.min(x), 5);
}

TEST(ReifiedRel, EntailmentDecidesB) {
  Space s;
  const VarId x = s.new_var(0, 9);
  const VarId b = s.new_var(0, 1);
  post_rel_reified(s, x, RelOp::kGeq, 3, b);
  s.set_min(x, 5);
  ASSERT_TRUE(s.propagate());
  EXPECT_TRUE(s.assigned(b));
  EXPECT_EQ(s.value(b), 1);
}

TEST(ReifiedRel, RefutationDecidesB) {
  Space s;
  const VarId x = s.new_var(0, 9);
  const VarId b = s.new_var(0, 1);
  post_rel_reified(s, x, RelOp::kEq, 7, b);
  s.remove(x, 7);
  ASSERT_TRUE(s.propagate());
  EXPECT_EQ(s.value(b), 0);
}

TEST(ReifiedRel, BClippedToBool) {
  Space s;
  const VarId x = s.new_var(0, 9);
  const VarId b = s.new_var(-5, 5);
  post_rel_reified(s, x, RelOp::kEq, 1, b);
  ASSERT_TRUE(s.propagate());
  EXPECT_GE(s.min(b), 0);
  EXPECT_LE(s.max(b), 1);
}

TEST(TableConstraint, MatchesBruteForce) {
  Space s;
  const VarId x = s.new_var(0, 3);
  const VarId y = s.new_var(0, 3);
  const VarId z = s.new_var(0, 3);
  const std::vector<std::vector<int>> tuples{
      {0, 1, 2}, {1, 2, 3}, {2, 0, 1}, {0, 1, 3}, {3, 3, 3}};
  post_table(s, std::vector<VarId>{x, y, z}, tuples);
  const auto expected = brute_force(
      {{0, 3}, {0, 3}, {0, 3}}, [&](const Assignment& a) {
        for (const auto& t : tuples)
          if (t[0] == a[0] && t[1] == a[1] && t[2] == a[2]) return true;
        return false;
      });
  EXPECT_EQ(solve_all(s, {x, y, z}), expected);
  EXPECT_EQ(expected.size(), 5u);
}

TEST(TableConstraint, PropagatesGac) {
  Space s;
  const VarId x = s.new_var(0, 3);
  const VarId y = s.new_var(0, 3);
  post_table(s, std::vector<VarId>{x, y},
             {{0, 1}, {1, 2}, {2, 1}});
  ASSERT_TRUE(s.propagate());
  EXPECT_EQ(s.dom(x).values(), (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(s.dom(y).values(), (std::vector<int>{1, 2}));
  s.remove(y, 2);  // kills tuple {1,2}
  ASSERT_TRUE(s.propagate());
  EXPECT_EQ(s.dom(x).values(), (std::vector<int>{0, 2}));
}

TEST(TableConstraint, FailsWhenNoTupleLives) {
  Space s;
  const VarId x = s.new_var(5, 9);
  const VarId y = s.new_var(0, 3);
  post_table(s, std::vector<VarId>{x, y}, {{0, 0}, {1, 1}});
  EXPECT_FALSE(s.propagate());
}

TEST(TableConstraint, EmptyTupleSetIsInfeasible) {
  Space s;
  const VarId x = s.new_var(0, 3);
  post_table(s, std::vector<VarId>{x}, {});
  EXPECT_FALSE(s.propagate());
}

TEST(TableConstraint, RejectsArityMismatch) {
  Space s;
  const VarId x = s.new_var(0, 3);
  EXPECT_THROW(post_table(s, std::vector<VarId>{x}, {{1, 2}}), InvalidInput);
}

}  // namespace
}  // namespace rr::cp
