// Exhaustive cross-check: on tiny random instances, the CP placer's proven
// optimum must equal the optimum found by brute-force enumeration over all
// placement combinations. This is the strongest end-to-end correctness
// property the engine can be held to.
#include <gtest/gtest.h>

#include <functional>
#include <limits>

#include "fpga/builders.hpp"
#include "model/generator.hpp"
#include "placer/model_builder.hpp"
#include "placer/placer.hpp"
#include "placer/validator.hpp"

namespace rr::placer {
namespace {

/// Brute force: try every combination of table entries, track the minimal
/// feasible extent. Exponential — callers keep instances tiny.
int brute_force_optimal_extent(const fpga::PartialRegion& region,
                               std::span<const ModuleTables> tables) {
  const std::size_t n = tables.size();
  BitMatrix occupied(region.height(), region.width());
  int best = std::numeric_limits<int>::max();

  std::vector<int> chosen(n, -1);
  // Recursive enumeration with the only pruning being feasibility — no
  // bounds, so the result is an independent ground truth.
  std::function<void(std::size_t, int)> rec = [&](std::size_t i, int extent) {
    if (i == n) {
      best = std::min(best, extent);
      return;
    }
    const ModuleTables& t = tables[i];
    for (std::size_t v = 0; v < t.table.size(); ++v) {
      const geost::Placement& p = t.table[v];
      const geost::ShapeFootprint& shape =
          (*t.shapes)[static_cast<std::size_t>(p.shape)];
      if (occupied.intersects_shifted(shape.mask(), p.y, p.x)) continue;
      occupied.or_shifted(shape.mask(), p.y, p.x);
      rec(i + 1, std::max(extent, t.extents[v]));
      occupied.clear_shifted(shape.mask(), p.y, p.x);
    }
  };
  rec(0, 0);
  return best;
}

class OptimalityFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OptimalityFuzzTest, BranchAndBoundMatchesBruteForce) {
  const std::uint64_t seed = GetParam();
  // Tiny instances: 3 modules, small region with one BRAM column.
  auto fabric = std::make_shared<const fpga::Fabric>([&] {
    fpga::Fabric f(10, 5);
    f.set_column(static_cast<int>(3 + seed % 4), fpga::ResourceType::kBram);
    return f;
  }());
  const fpga::PartialRegion region(fabric);

  model::GeneratorParams params;
  params.clb_min = 3;
  params.clb_max = 9;
  params.bram_blocks_min = 0;
  params.bram_blocks_max = 1;
  params.bram_block_height = 2;
  params.max_height = 4;
  params.max_width = 3;
  params.alternatives = 3;
  model::ModuleGenerator generator(params, seed);
  const auto modules = generator.generate_many(3);

  const auto tables = prepare_tables(region, modules, true);
  bool any_empty = false;
  for (const auto& t : tables) any_empty |= t.table.empty();
  const int expected =
      any_empty ? std::numeric_limits<int>::max()
                : brute_force_optimal_extent(region, tables);

  PlacerOptions options;
  options.mode = PlacerMode::kBranchAndBound;
  options.time_limit_seconds = 30.0;
  const PlacementOutcome outcome = Placer(region, modules, options).place();
  ASSERT_TRUE(outcome.optimal) << "instance too hard for the test budget";
  if (expected == std::numeric_limits<int>::max()) {
    EXPECT_FALSE(outcome.solution.feasible) << "seed " << seed;
  } else {
    ASSERT_TRUE(outcome.solution.feasible) << "seed " << seed;
    EXPECT_EQ(outcome.solution.extent, expected) << "seed " << seed;
    EXPECT_TRUE(validate(region, modules, outcome.solution).ok());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptimalityFuzzTest,
                         ::testing::Range<std::uint64_t>(0, 12));

}  // namespace
}  // namespace rr::placer
