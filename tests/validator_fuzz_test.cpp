// Validator fuzzing: take solver-produced (valid) solutions, apply a
// corrupting mutation, and require the validator to reject the result.
// Each mutation type targets one constraint family of §III.C.
#include <gtest/gtest.h>

#include "fpga/builders.hpp"
#include "model/generator.hpp"
#include "placer/placer.hpp"
#include "placer/validator.hpp"
#include "util/rng.hpp"

namespace rr::placer {
namespace {

enum class Mutation {
  kShiftOutOfRegion,   // move a module past the region edge
  kOverlapNeighbor,    // move a module onto another one
  kWrongShapeIndex,    // reference a shape the module does not have
  kMisalignResource,   // shift by one column: resource types mismatch
  kDropModule,         // remove one placement entirely
  kDuplicateModule,    // place one module twice
  kLieAboutExtent,     // under-report the extent
};

struct FuzzCase {
  Mutation mutation;
  std::uint64_t seed;
};

class ValidatorFuzzTest : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(ValidatorFuzzTest, MutationIsRejected) {
  const FuzzCase param = GetParam();
  // A heterogeneous region so resource-alignment mutations can bite.
  fpga::ColumnarSpec spec;
  spec.bram_period = 6;
  spec.bram_offset = 3;
  spec.dsp_period = 0;
  spec.center_clock_column = false;
  spec.edge_io = false;
  auto fabric = std::make_shared<const fpga::Fabric>(
      fpga::make_columnar(30, 10, spec));
  const fpga::PartialRegion region(fabric);

  model::GeneratorParams params;
  params.clb_min = 8;
  params.clb_max = 20;
  params.bram_blocks_min = 1;  // every module has a memory column, so the
  params.bram_blocks_max = 1;  // misalignment mutation always breaks eq. 3
  params.max_height = 7;
  params.max_width = 5;
  model::ModuleGenerator generator(params, param.seed);
  const auto modules = generator.generate_many(4);

  PlacerOptions options;
  options.time_limit_seconds = 2.0;
  options.seed = param.seed;
  const PlacementOutcome outcome = Placer(region, modules, options).place();
  ASSERT_TRUE(outcome.solution.feasible);
  ASSERT_TRUE(validate(region, modules, outcome.solution).ok());

  PlacementSolution mutated = outcome.solution;
  Rng rng(param.seed * 31 + 7);
  const std::size_t victim = rng.pick_index(mutated.placements);
  switch (param.mutation) {
    case Mutation::kShiftOutOfRegion:
      mutated.placements[victim].x = region.width();  // clearly outside
      break;
    case Mutation::kOverlapNeighbor: {
      const std::size_t other = (victim + 1) % mutated.placements.size();
      mutated.placements[victim].x = mutated.placements[other].x;
      mutated.placements[victim].y = mutated.placements[other].y;
      // Verify the mutation really creates an overlap (footprints could in
      // principle interlock); if not, this case proves nothing -- skip.
      const auto& a = mutated.placements[victim];
      const auto& b = mutated.placements[other];
      BitMatrix grid(region.height(), region.width());
      const auto& shape_a = modules[static_cast<std::size_t>(a.module)]
                                .shapes()[static_cast<std::size_t>(a.shape)];
      const auto& shape_b = modules[static_cast<std::size_t>(b.module)]
                                .shapes()[static_cast<std::size_t>(b.shape)];
      grid.or_shifted(shape_a.mask(), a.y, a.x);
      if (!grid.intersects_shifted(shape_b.mask(), b.y, b.x))
        GTEST_SKIP() << "footprints interlock; no overlap to detect";
      break;
    }
    case Mutation::kWrongShapeIndex:
      mutated.placements[victim].shape =
          modules[static_cast<std::size_t>(
                      mutated.placements[victim].module)]
              .shape_count();
      break;
    case Mutation::kMisalignResource:
      // One column over: a memory column lands on logic (or logic on a
      // BRAM column), or the module pokes out of the region.
      mutated.placements[victim].x += 1;
      break;
    case Mutation::kDropModule:
      mutated.placements.erase(mutated.placements.begin() +
                               static_cast<std::ptrdiff_t>(victim));
      break;
    case Mutation::kDuplicateModule:
      mutated.placements.push_back(mutated.placements[victim]);
      break;
    case Mutation::kLieAboutExtent:
      mutated.extent -= 1;  // no longer covers the rightmost module
      break;
  }
  const ValidationReport report = validate(region, modules, mutated);
  EXPECT_FALSE(report.ok())
      << "mutation " << static_cast<int>(param.mutation)
      << " slipped past the validator";
}

std::vector<FuzzCase> all_cases() {
  std::vector<FuzzCase> cases;
  for (const Mutation m :
       {Mutation::kShiftOutOfRegion, Mutation::kOverlapNeighbor,
        Mutation::kWrongShapeIndex, Mutation::kMisalignResource,
        Mutation::kDropModule, Mutation::kDuplicateModule,
        Mutation::kLieAboutExtent}) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed)
      cases.push_back(FuzzCase{m, seed});
  }
  return cases;
}

std::string case_name(const ::testing::TestParamInfo<FuzzCase>& info) {
  static constexpr const char* kNames[] = {
      "ShiftOut", "Overlap",   "WrongShape", "Misalign",
      "Drop",     "Duplicate", "WrongExtent"};
  return std::string(kNames[static_cast<int>(info.param.mutation)]) + "_s" +
         std::to_string(info.param.seed);
}

INSTANTIATE_TEST_SUITE_P(Mutations, ValidatorFuzzTest,
                         ::testing::ValuesIn(all_cases()), case_name);

}  // namespace
}  // namespace rr::placer
