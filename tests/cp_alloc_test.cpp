// Steady-state allocation tests for the compact-table propagators.
//
// The compact engines size every scratch buffer at post time (support
// masks, dirty sets, keep/remove word buffers) and the reversible sparse
// bitsets reuse their trail capacity across push/pop cycles, so a
// propagation run that finds nothing new to prune must not touch the heap
// at all. These tests count global operator new calls around propagate()
// after a short warm-up and pin that number at zero — a regression back to
// per-run vector allocations fails immediately.
//
// The instances are built so the measured runs are genuine no-op fixpoints
// (every remaining value keeps a support by construction); the mutations
// that feed the propagator deltas happen outside the measured window,
// because Space mutators intentionally snapshot domains onto the trail.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "cp/constraints.hpp"
#include "cp/space.hpp"

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace rr::cp {
namespace {

std::uint64_t allocations() {
  return g_allocations.load(std::memory_order_relaxed);
}

// result == table[index] with table[i] = (i % 8) + 4: every result value
// keeps 64 index supports, so removing single index values never prunes
// the result and the steady-state propagation is a pure no-op check.
TEST(SteadyStateAllocations, CompactElementPropagationIsAllocationFree) {
  Space space;
  constexpr int kN = 512;
  std::vector<int> table(kN);
  for (int i = 0; i < kN; ++i) table[i] = (i % 8) + 4;
  const VarId index = space.new_var(0, kN - 1);
  const VarId result = space.new_var(0, 64);
  const int prop = post_element(space, table, index, result,
                                ElementOptions{/*compact=*/true});
  ASSERT_TRUE(space.propagate());
  ASSERT_EQ(space.dom(result).size(), 8);

  constexpr int kWarmup = 5;
  constexpr int kMeasured = 20;
  for (int cycle = 0; cycle < kWarmup + kMeasured; ++cycle) {
    space.push();
    // Feed the advisor a delta outside the measured window: the trail
    // snapshot this triggers is Space policy, not propagator cost.
    ASSERT_EQ(space.remove(index, 100 + cycle), ModEvent::kDomain);
    const std::uint64_t before = allocations();
    ASSERT_TRUE(space.propagate());
    const std::uint64_t delta_run = allocations() - before;
    // Re-running at the fixpoint takes the version-skip fast path.
    space.schedule(prop);
    const std::uint64_t before_rerun = allocations();
    ASSERT_TRUE(space.propagate());
    const std::uint64_t rerun = allocations() - before_rerun;
    if (cycle >= kWarmup) {
      EXPECT_EQ(delta_run, 0u) << "cycle=" << cycle;
      EXPECT_EQ(rerun, 0u) << "cycle=" << cycle;
    }
    space.pop();
  }
}

// Positive table over tuples (a, b, (a+b) % 64): removing one value of b
// leaves 63 supports for every value of a and c, so propagation after the
// delta is again a no-op check — and must stay off the heap.
TEST(SteadyStateAllocations, CompactTablePropagationIsAllocationFree) {
  Space space;
  constexpr int kDomainSize = 64;
  std::vector<VarId> vars;
  for (int i = 0; i < 3; ++i) vars.push_back(space.new_var(0, kDomainSize - 1));
  std::vector<std::vector<int>> tuples;
  for (int a = 0; a < kDomainSize; ++a)
    for (int b = 0; b < kDomainSize; ++b)
      tuples.push_back({a, b, (a + b) % kDomainSize});
  post_table(space, vars, std::move(tuples), TableOptions{/*compact=*/true});
  ASSERT_TRUE(space.propagate());
  for (const VarId v : vars) ASSERT_EQ(space.dom(v).size(), kDomainSize);

  constexpr int kWarmup = 5;
  constexpr int kMeasured = 20;
  for (int cycle = 0; cycle < kWarmup + kMeasured; ++cycle) {
    space.push();
    ASSERT_NE(space.remove(vars[1], 1 + cycle % (kDomainSize - 2)),
              ModEvent::kFail);
    const std::uint64_t before = allocations();
    ASSERT_TRUE(space.propagate());
    const std::uint64_t delta_run = allocations() - before;
    if (cycle >= kWarmup) EXPECT_EQ(delta_run, 0u) << "cycle=" << cycle;
    space.pop();
  }
}

}  // namespace
}  // namespace rr::cp
