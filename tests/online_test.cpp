// Online placement: incremental occupancy management, removal, acceptance
// behavior under churn, and the service-level effect of alternatives.
#include <gtest/gtest.h>

#include "baseline/online.hpp"
#include "fpga/builders.hpp"
#include "model/generator.hpp"
#include "util/rng.hpp"

namespace rr::baseline {
namespace {

using model::Module;
using model::ModuleGenerator;

std::shared_ptr<fpga::PartialRegion> homogeneous_region(int w, int h) {
  auto fabric =
      std::make_shared<const fpga::Fabric>(fpga::make_homogeneous(w, h));
  return std::make_shared<fpga::PartialRegion>(fabric);
}

Module rect_module(const std::string& name, int w, int h) {
  return Module(name, {ModuleGenerator::make_column_shape(w * h, 0, 1, h, 0)});
}

TEST(OnlinePlacer, PlaceAndRemoveRoundTrip) {
  const auto region = homogeneous_region(8, 4);
  OnlinePlacer placer(*region);
  const Module m = rect_module("m", 2, 2);
  const auto placement = placer.place(1, m);
  ASSERT_TRUE(placement.has_value());
  EXPECT_EQ(placement->x, 0);
  EXPECT_EQ(placement->y, 0);
  EXPECT_EQ(placer.occupied_tiles(), 4);
  EXPECT_TRUE(placer.is_placed(1));
  placer.remove(1);
  EXPECT_EQ(placer.occupied_tiles(), 0);
  EXPECT_FALSE(placer.is_placed(1));
  // The freed space is reusable.
  EXPECT_TRUE(placer.place(2, m).has_value());
  EXPECT_TRUE(placer.place(3, rect_module("x", 1, 1)).has_value());
}

TEST(OnlinePlacer, RejectsDuplicateAndUnknownIds) {
  const auto region = homogeneous_region(8, 4);
  OnlinePlacer placer(*region);
  ASSERT_TRUE(placer.place(7, rect_module("m", 2, 2)).has_value());
  EXPECT_THROW(placer.place(7, rect_module("m", 1, 1)), InvalidInput);
  EXPECT_THROW(placer.remove(99), InvalidInput);
}

TEST(OnlinePlacer, FillsBottomLeftFirst) {
  const auto region = homogeneous_region(6, 4);
  OnlinePlacer placer(*region);
  const Module m = rect_module("m", 2, 2);
  const auto a = placer.place(0, m);
  const auto b = placer.place(1, m);
  ASSERT_TRUE(a && b);
  // Bottom-left order: second instance stacks above the first (same
  // column, lower extent) before moving right.
  EXPECT_EQ(a->x, 0);
  EXPECT_EQ(b->x, 0);
  EXPECT_EQ(b->y, 2);
}

TEST(OnlinePlacer, RefusesWhenFull) {
  const auto region = homogeneous_region(4, 2);
  OnlinePlacer placer(*region);
  ASSERT_TRUE(placer.place(0, rect_module("m", 2, 2)).has_value());
  ASSERT_TRUE(placer.place(1, rect_module("m", 2, 2)).has_value());
  EXPECT_EQ(placer.place(2, rect_module("m", 2, 2)), std::nullopt);
  EXPECT_DOUBLE_EQ(placer.occupancy(), 1.0);
}

TEST(OnlinePlacer, AlternativesRaiseAcceptance) {
  // Tall base layout cannot fit a short region; the rotated alternative can.
  const auto region = homogeneous_region(8, 2);
  const Module rotatable(
      "rot", {ModuleGenerator::make_column_shape(4, 0, 1, 4, 0),   // 1x4
              ModuleGenerator::make_column_shape(4, 0, 1, 1, 0)}); // 4x1
  OnlineOptions with;
  OnlinePlacer a(*region, with);
  EXPECT_TRUE(a.place(0, rotatable).has_value());
  OnlineOptions without;
  without.use_alternatives = false;
  OnlinePlacer b(*region, without);
  EXPECT_EQ(b.place(0, rotatable), std::nullopt);
}

TEST(OnlinePlacer, ChurnConservesOccupancyAccounting) {
  // Random arrivals and departures; occupancy accounting must never drift.
  const auto region = homogeneous_region(24, 10);
  OnlinePlacer placer(*region);
  model::GeneratorParams params;
  params.clb_min = 4;
  params.clb_max = 16;
  params.bram_blocks_max = 0;
  params.max_height = 5;
  ModuleGenerator generator(params, 17);
  const auto pool = generator.generate_many(6);

  Rng rng(99);
  std::vector<std::pair<int, long>> live;  // (id, area placed)
  long expected = 0;
  int next_id = 0;
  for (int step = 0; step < 300; ++step) {
    if (live.empty() || rng.chance(0.6)) {
      const auto& module = pool[rng.pick_index(pool)];
      const auto placement = placer.place(next_id, module);
      if (placement) {
        const long area =
            module.shapes()[static_cast<std::size_t>(placement->shape)].area();
        live.emplace_back(next_id, area);
        expected += area;
      } else {
        // Rejection must not change state; clean up the failed id space.
        EXPECT_FALSE(placer.is_placed(next_id));
      }
      ++next_id;
    } else {
      const std::size_t pick = rng.pick_index(live);
      placer.remove(live[pick].first);
      expected -= live[pick].second;
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    ASSERT_EQ(placer.occupied_tiles(), expected);
    ASSERT_EQ(placer.live_count(), static_cast<int>(live.size()));
  }
}

TEST(OnlinePlacer, AcceptanceRatioStudyUnderChurn) {
  // The service-level claim, in miniature: with alternatives the online
  // placer accepts at least as many requests as without, on the same
  // arrival/departure trace.
  const auto region = homogeneous_region(20, 8);
  model::GeneratorParams params;
  params.clb_min = 8;
  params.clb_max = 24;
  params.bram_blocks_max = 0;
  params.max_height = 7;
  params.min_height = 4;
  ModuleGenerator generator(params, 23);
  const auto pool = generator.generate_many(5);

  int accepted[2] = {0, 0};
  for (const bool alternatives : {false, true}) {
    OnlineOptions options;
    options.use_alternatives = alternatives;
    OnlinePlacer placer(*region, options);
    Rng rng(5);  // identical trace for both configurations
    std::vector<int> live;
    int next_id = 0;
    for (int step = 0; step < 200; ++step) {
      if (live.empty() || rng.chance(0.55)) {
        const auto& module = pool[rng.pick_index(pool)];
        if (placer.place(next_id, module)) {
          live.push_back(next_id);
          ++accepted[alternatives];
        }
        ++next_id;
      } else {
        const std::size_t pick = rng.pick_index(live);
        placer.remove(live[pick]);
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
      }
    }
  }
  EXPECT_GE(accepted[1], accepted[0]);
  EXPECT_GT(accepted[0], 0);
}

}  // namespace
}  // namespace rr::baseline
