// Online placement: incremental occupancy management, removal, acceptance
// behavior under churn, and the service-level effect of alternatives.
#include <gtest/gtest.h>

#include "baseline/online.hpp"
#include "fpga/builders.hpp"
#include "model/generator.hpp"
#include "util/rng.hpp"

namespace rr::baseline {
namespace {

using model::Module;
using model::ModuleGenerator;

std::shared_ptr<fpga::PartialRegion> homogeneous_region(int w, int h) {
  auto fabric =
      std::make_shared<const fpga::Fabric>(fpga::make_homogeneous(w, h));
  return std::make_shared<fpga::PartialRegion>(fabric);
}

Module rect_module(const std::string& name, int w, int h) {
  return Module(name, {ModuleGenerator::make_column_shape(w * h, 0, 1, h, 0)});
}

TEST(OnlinePlacer, PlaceAndRemoveRoundTrip) {
  const auto region = homogeneous_region(8, 4);
  OnlinePlacer placer(*region);
  const Module m = rect_module("m", 2, 2);
  const auto placement = placer.place(1, m);
  ASSERT_TRUE(placement.has_value());
  EXPECT_EQ(placement->x, 0);
  EXPECT_EQ(placement->y, 0);
  EXPECT_EQ(placer.occupied_tiles(), 4);
  EXPECT_TRUE(placer.is_placed(1));
  placer.remove(1);
  EXPECT_EQ(placer.occupied_tiles(), 0);
  EXPECT_FALSE(placer.is_placed(1));
  // The freed space is reusable.
  EXPECT_TRUE(placer.place(2, m).has_value());
  EXPECT_TRUE(placer.place(3, rect_module("x", 1, 1)).has_value());
}

TEST(OnlinePlacer, RejectsDuplicateAndUnknownIds) {
  const auto region = homogeneous_region(8, 4);
  OnlinePlacer placer(*region);
  ASSERT_TRUE(placer.place(7, rect_module("m", 2, 2)).has_value());
  EXPECT_THROW(placer.place(7, rect_module("m", 1, 1)), InvalidInput);
  EXPECT_THROW(placer.remove(99), InvalidInput);
}

TEST(OnlinePlacer, FillsBottomLeftFirst) {
  const auto region = homogeneous_region(6, 4);
  OnlinePlacer placer(*region);
  const Module m = rect_module("m", 2, 2);
  const auto a = placer.place(0, m);
  const auto b = placer.place(1, m);
  ASSERT_TRUE(a && b);
  // Bottom-left order: second instance stacks above the first (same
  // column, lower extent) before moving right.
  EXPECT_EQ(a->x, 0);
  EXPECT_EQ(b->x, 0);
  EXPECT_EQ(b->y, 2);
}

TEST(OnlinePlacer, RefusesWhenFull) {
  const auto region = homogeneous_region(4, 2);
  OnlinePlacer placer(*region);
  ASSERT_TRUE(placer.place(0, rect_module("m", 2, 2)).has_value());
  ASSERT_TRUE(placer.place(1, rect_module("m", 2, 2)).has_value());
  EXPECT_EQ(placer.place(2, rect_module("m", 2, 2)), std::nullopt);
  EXPECT_DOUBLE_EQ(placer.occupancy(), 1.0);
}

TEST(OnlinePlacer, AlternativesRaiseAcceptance) {
  // Tall base layout cannot fit a short region; the rotated alternative can.
  const auto region = homogeneous_region(8, 2);
  const Module rotatable(
      "rot", {ModuleGenerator::make_column_shape(4, 0, 1, 4, 0),   // 1x4
              ModuleGenerator::make_column_shape(4, 0, 1, 1, 0)}); // 4x1
  OnlineOptions with;
  OnlinePlacer a(*region, with);
  EXPECT_TRUE(a.place(0, rotatable).has_value());
  OnlineOptions without;
  without.use_alternatives = false;
  OnlinePlacer b(*region, without);
  EXPECT_EQ(b.place(0, rotatable), std::nullopt);
}

TEST(OnlinePlacer, ChurnConservesOccupancyAccounting) {
  // Random arrivals and departures; occupancy accounting must never drift.
  const auto region = homogeneous_region(24, 10);
  OnlinePlacer placer(*region);
  model::GeneratorParams params;
  params.clb_min = 4;
  params.clb_max = 16;
  params.bram_blocks_max = 0;
  params.max_height = 5;
  ModuleGenerator generator(params, 17);
  const auto pool = generator.generate_many(6);

  Rng rng(99);
  std::vector<std::pair<int, long>> live;  // (id, area placed)
  long expected = 0;
  int next_id = 0;
  for (int step = 0; step < 300; ++step) {
    if (live.empty() || rng.chance(0.6)) {
      const auto& module = pool[rng.pick_index(pool)];
      const auto placement = placer.place(next_id, module);
      if (placement) {
        const long area =
            module.shapes()[static_cast<std::size_t>(placement->shape)].area();
        live.emplace_back(next_id, area);
        expected += area;
      } else {
        // Rejection must not change state; clean up the failed id space.
        EXPECT_FALSE(placer.is_placed(next_id));
      }
      ++next_id;
    } else {
      const std::size_t pick = rng.pick_index(live);
      placer.remove(live[pick].first);
      expected -= live[pick].second;
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    ASSERT_EQ(placer.occupied_tiles(), expected);
    ASSERT_EQ(placer.live_count(), static_cast<int>(live.size()));
  }
}

// A 1-row strip module: `w` tiles wide, one tall.
Module strip_module(const std::string& name, int w) {
  return Module(name, {ModuleGenerator::make_column_shape(w, 0, 1, 1, 0)});
}

TEST(OnlineDefrag, RelocatesLiveModuleToAdmitRequest) {
  // 16x1 strip: A=[0..3], B=[4..7], C=[8..11]; removing B leaves two 4-cell
  // holes. A 6-wide request fits nowhere until defrag moves C into one of
  // the holes, merging [8..15] into a single 8-cell run.
  const auto region = homogeneous_region(16, 1);
  OnlineOptions options;
  options.defrag.deadline_seconds = 5.0;
  OnlinePlacer placer(*region, options);
  ASSERT_TRUE(placer.place(1, strip_module("A", 4)).has_value());
  ASSERT_TRUE(placer.place(2, strip_module("B", 4)).has_value());
  ASSERT_TRUE(placer.place(3, strip_module("C", 4)).has_value());
  placer.remove(2);

  const auto placement = placer.place(4, strip_module("D", 6));
  ASSERT_TRUE(placement.has_value());
  const OnlineDefragStats& stats = placer.defrag_stats();
  EXPECT_EQ(stats.attempts, 1u);
  EXPECT_EQ(stats.successes, 1u);
  EXPECT_EQ(stats.exact_successes, 1u);
  EXPECT_EQ(stats.relocated_modules, 1u);
  EXPECT_EQ(stats.relocated_tiles, 8u);  // C: 4 cleared + 4 written
  EXPECT_EQ(placer.occupied_tiles(), 4 + 4 + 6);
  // Relocation cost follows the no-break copy model.
  EXPECT_EQ(placer.relocation_cost().tiles_cleared, 4);
  EXPECT_EQ(placer.relocation_cost().tiles_written, 4);
  EXPECT_EQ(placer.relocation_cost().modules_loaded, 1);

  // The occupancy bitmap and the live placements agree (no overlap: total
  // popcount equals summed areas).
  long bitmap_tiles = 0;
  for (int x = 0; x < 16; ++x)
    bitmap_tiles += placer.occupied_matrix().get(0, x) ? 1 : 0;
  EXPECT_EQ(bitmap_tiles, placer.occupied_tiles());

  // Removing the relocated module frees its *new* footprint.
  placer.remove(3);
  EXPECT_EQ(placer.occupied_tiles(), 4 + 6);
  EXPECT_TRUE(placer.place(5, strip_module("E", 4)).has_value());
}

TEST(OnlineDefrag, DeadlineZeroIsBitIdenticalToFirstFit) {
  // defrag.deadline_seconds == 0 must leave the placer's behavior exactly
  // as before the defrag subsystem existed: every decision on a random
  // churn trace matches a plain placer, event by event.
  const auto region = homogeneous_region(24, 10);
  model::GeneratorParams params;
  params.clb_min = 4;
  params.clb_max = 16;
  params.bram_blocks_max = 0;
  params.max_height = 5;
  ModuleGenerator generator(params, 31);
  const auto pool = generator.generate_many(6);

  OnlineOptions gated;
  gated.defrag.deadline_seconds = 0.0;  // disabled ...
  gated.defrag.max_relocations = 8;     // ... regardless of other knobs
  gated.defrag.relocation_budget_tiles = 0;
  OnlinePlacer plain(*region);
  OnlinePlacer with_knobs(*region, gated);

  Rng rng(71);
  std::vector<int> live;
  int next_id = 0;
  for (int step = 0; step < 300; ++step) {
    if (live.empty() || rng.chance(0.6)) {
      const auto& module = pool[rng.pick_index(pool)];
      const auto a = plain.place(next_id, module);
      const auto b = with_knobs.place(next_id, module);
      ASSERT_EQ(a.has_value(), b.has_value()) << "step " << step;
      if (a) {
        EXPECT_EQ(a->shape, b->shape);
        EXPECT_EQ(a->x, b->x);
        EXPECT_EQ(a->y, b->y);
        live.push_back(next_id);
      }
      ++next_id;
    } else {
      const std::size_t pick = rng.pick_index(live);
      plain.remove(live[pick]);
      with_knobs.remove(live[pick]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    ASSERT_EQ(plain.occupied_tiles(), with_knobs.occupied_tiles());
  }
  const OnlineDefragStats& stats = with_knobs.defrag_stats();
  EXPECT_EQ(stats.attempts, 0u);
  EXPECT_EQ(stats.budget_skips, 0u);
  EXPECT_EQ(stats.retry_skips, 0u);
}

TEST(OnlineDefrag, RetryGateSkipsUnchangedState) {
  // 8x1 strip completely full: a doomed request triggers exactly one defrag
  // pass; retrying against unchanged state is gated off, and a state change
  // (remove) re-arms the gate.
  const auto region = homogeneous_region(8, 1);
  OnlineOptions options;
  options.defrag.deadline_seconds = 5.0;
  OnlinePlacer placer(*region, options);
  ASSERT_TRUE(placer.place(1, strip_module("A", 4)).has_value());
  ASSERT_TRUE(placer.place(2, strip_module("B", 4)).has_value());

  EXPECT_EQ(placer.place(3, strip_module("C", 4)), std::nullopt);
  EXPECT_EQ(placer.defrag_stats().attempts, 1u);
  EXPECT_EQ(placer.defrag_stats().rejects, 1u);

  EXPECT_EQ(placer.place(4, strip_module("C", 4)), std::nullopt);
  EXPECT_EQ(placer.defrag_stats().attempts, 1u);  // gated: no second pass
  EXPECT_EQ(placer.defrag_stats().retry_skips, 1u);

  placer.remove(1);  // state changed: the gate re-arms
  EXPECT_TRUE(placer.place(5, strip_module("C", 4)).has_value());
}

TEST(OnlineDefrag, RelocationBudgetZeroDisablesPasses) {
  const auto region = homogeneous_region(16, 1);
  OnlineOptions options;
  options.defrag.deadline_seconds = 5.0;
  options.defrag.relocation_budget_tiles = 0;  // budget already spent
  OnlinePlacer placer(*region, options);
  ASSERT_TRUE(placer.place(1, strip_module("A", 4)).has_value());
  ASSERT_TRUE(placer.place(2, strip_module("B", 4)).has_value());
  ASSERT_TRUE(placer.place(3, strip_module("C", 4)).has_value());
  placer.remove(2);

  EXPECT_EQ(placer.place(4, strip_module("D", 6)), std::nullopt);
  EXPECT_EQ(placer.defrag_stats().attempts, 0u);
  EXPECT_EQ(placer.defrag_stats().budget_skips, 1u);
}

TEST(OnlineDefrag, RaisesAcceptanceUnderChurn) {
  // On an identical churn trace, the defrag-enabled placer accepts at
  // least as many requests — and on this fragmenting trace strictly more.
  const auto region = homogeneous_region(20, 8);
  model::GeneratorParams params;
  params.clb_min = 8;
  params.clb_max = 24;
  params.bram_blocks_max = 0;
  params.max_height = 7;
  params.min_height = 4;
  ModuleGenerator generator(params, 23);
  const auto pool = generator.generate_many(5);

  // After the first relocation the two trajectories diverge, so a single
  // seed can go either way; the service-level claim is about the aggregate.
  long accepted[2] = {0, 0};
  std::uint64_t defrag_successes = 0;
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    for (const bool defrag : {false, true}) {
      OnlineOptions options;
      if (defrag) options.defrag.deadline_seconds = 5.0;
      OnlinePlacer placer(*region, options);
      Rng rng(seed);  // identical trace for both configurations
      std::vector<int> live;
      int next_id = 0;
      for (int step = 0; step < 200; ++step) {
        if (live.empty() || rng.chance(0.55)) {
          const auto& module = pool[rng.pick_index(pool)];
          if (placer.place(next_id, module)) {
            live.push_back(next_id);
            ++accepted[defrag];
          }
          ++next_id;
        } else {
          const std::size_t pick = rng.pick_index(live);
          placer.remove(live[pick]);
          live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
        }
      }
      if (defrag) defrag_successes += placer.defrag_stats().successes;
    }
  }
  EXPECT_GT(defrag_successes, 0u);
  EXPECT_GT(accepted[1], accepted[0]);
}

TEST(OnlinePlacer, AcceptanceRatioStudyUnderChurn) {
  // The service-level claim, in miniature: with alternatives the online
  // placer accepts at least as many requests as without, on the same
  // arrival/departure trace.
  const auto region = homogeneous_region(20, 8);
  model::GeneratorParams params;
  params.clb_min = 8;
  params.clb_max = 24;
  params.bram_blocks_max = 0;
  params.max_height = 7;
  params.min_height = 4;
  ModuleGenerator generator(params, 23);
  const auto pool = generator.generate_many(5);

  int accepted[2] = {0, 0};
  for (const bool alternatives : {false, true}) {
    OnlineOptions options;
    options.use_alternatives = alternatives;
    OnlinePlacer placer(*region, options);
    Rng rng(5);  // identical trace for both configurations
    std::vector<int> live;
    int next_id = 0;
    for (int step = 0; step < 200; ++step) {
      if (live.empty() || rng.chance(0.55)) {
        const auto& module = pool[rng.pick_index(pool)];
        if (placer.place(next_id, module)) {
          live.push_back(next_id);
          ++accepted[alternatives];
        }
        ++next_id;
      } else {
        const std::size_t pick = rng.pick_index(live);
        placer.remove(live[pick]);
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
      }
    }
  }
  EXPECT_GE(accepted[1], accepted[0]);
  EXPECT_GT(accepted[0], 0);
}

}  // namespace
}  // namespace rr::baseline
