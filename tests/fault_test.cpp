// Fault model and fault-aware recovery: FaultMap semantics, .fft trace
// parsing, the region fault overlay (including the empty-map identity the
// placers rely on), fault-masked placement across every solver layer, and
// the tiered recovery pipeline.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "baseline/annealing.hpp"
#include "baseline/greedy.hpp"
#include "baseline/online.hpp"
#include "fpga/builders.hpp"
#include "fpga/faults.hpp"
#include "fpga/region.hpp"
#include "model/generator.hpp"
#include "placer/placer.hpp"
#include "runtime/recovery.hpp"

namespace rr {
namespace {

using fpga::FaultEvent;
using fpga::FaultKind;
using fpga::FaultMap;
using model::Module;

constexpr int kClb = static_cast<int>(fpga::ResourceType::kClb);

geost::ShapeFootprint shape_of(std::vector<Point> cells) {
  return geost::ShapeFootprint::from_typed(
      {geost::TypedCells{kClb, CellSet(std::move(cells), false)}});
}

geost::ShapeFootprint rect_shape(int w, int h) {
  std::vector<Point> cells;
  for (int x = 0; x < w; ++x)
    for (int y = 0; y < h; ++y) cells.push_back({x, y});
  return shape_of(std::move(cells));
}

std::shared_ptr<fpga::PartialRegion> clb_region(int w, int h) {
  auto fabric =
      std::make_shared<const fpga::Fabric>(fpga::make_homogeneous(w, h));
  return std::make_shared<fpga::PartialRegion>(fabric);
}

void expect_parse_error(const std::string& text, const std::string& needle) {
  try {
    (void)fpga::parse_fault_trace_string(text);
    FAIL() << "expected InvalidInput for: " << text;
  } catch (const InvalidInput& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "message '" << e.what() << "' lacks '" << needle << "'";
  }
}

// --- FaultMap semantics ---------------------------------------------------

TEST(FaultMap, InjectQueryAndCounts) {
  FaultMap map(8, 4);
  EXPECT_EQ(map.width(), 8);
  EXPECT_EQ(map.height(), 4);
  EXPECT_EQ(map.faulty_count(), 0);
  map.inject(2, 1, FaultKind::kPermanent);
  map.inject(5, 3, FaultKind::kTransient);
  EXPECT_TRUE(map.faulty(2, 1));
  EXPECT_TRUE(map.permanent(2, 1));
  EXPECT_TRUE(map.faulty(5, 3));
  EXPECT_FALSE(map.permanent(5, 3));
  EXPECT_FALSE(map.faulty(0, 0));
  EXPECT_EQ(map.faulty_count(), 2);
  EXPECT_EQ(map.permanent_count(), 1);
  EXPECT_EQ(map.transient_count(), 1);
  EXPECT_EQ(map.mask().popcount(), 2u);
  EXPECT_TRUE(map.mask().get(1, 2));
  EXPECT_TRUE(map.mask().get(3, 5));
}

TEST(FaultMap, PermanentNeverDowngrades) {
  FaultMap map(4, 4);
  map.inject(1, 1, FaultKind::kPermanent);
  map.inject(1, 1, FaultKind::kTransient);  // ignored: already permanent
  EXPECT_TRUE(map.permanent(1, 1));
  map.repair(1, 1);  // repairs clear transient faults only
  EXPECT_TRUE(map.faulty(1, 1));
  map.repair_transient();
  EXPECT_TRUE(map.faulty(1, 1));
}

TEST(FaultMap, RepairClearsTransientFaults) {
  FaultMap map(4, 4);
  map.inject(0, 0, FaultKind::kTransient);
  map.inject(1, 0, FaultKind::kTransient);
  map.inject(2, 0, FaultKind::kPermanent);
  map.repair(0, 0);
  EXPECT_FALSE(map.faulty(0, 0));
  EXPECT_TRUE(map.faulty(1, 0));
  map.repair_transient();
  EXPECT_EQ(map.faulty_count(), 1);
  EXPECT_TRUE(map.permanent(2, 0));
}

TEST(FaultMap, ColumnAndRectInjection) {
  FaultMap map(6, 3);
  map.inject_column(2, FaultKind::kTransient);
  EXPECT_EQ(map.faulty_count(), 3);
  for (int y = 0; y < 3; ++y) EXPECT_TRUE(map.faulty(2, y));
  map.inject_rect(Rect{4, 1, 2, 2}, FaultKind::kPermanent);
  EXPECT_EQ(map.faulty_count(), 7);
  EXPECT_TRUE(map.permanent(5, 2));
  EXPECT_THROW(map.inject_rect(Rect{5, 0, 3, 1}, FaultKind::kPermanent),
               InvalidInput);
  EXPECT_THROW(map.inject_column(6, FaultKind::kPermanent), InvalidInput);
  EXPECT_THROW(map.inject_rect(Rect{0, 0, 0, 1}, FaultKind::kPermanent),
               InvalidInput);
}

TEST(FaultMap, TraceRoundTrip) {
  FaultMap map(10, 5);
  map.inject(3, 2, FaultKind::kPermanent);
  map.inject(7, 0, FaultKind::kTransient);
  map.inject_rect(Rect{0, 3, 2, 2}, FaultKind::kPermanent);
  const fpga::FaultTrace trace = fpga::fault_trace_from_map(map);
  const std::string text = fpga::write_fault_trace_string(trace);
  const FaultMap parsed =
      fpga::fault_map_from_trace(fpga::parse_fault_trace_string(text));
  EXPECT_EQ(parsed, map);
}

TEST(FaultMap, TraceAppliesEventsInOrder) {
  const fpga::FaultTrace trace = fpga::parse_fault_trace_string(
      "faults 6 4\n"
      "tile 1 1 transient\n"
      "column 3 transient\n"
      "tile 5 0\n"          // kind defaults to permanent
      "repair 1 1\n"
      "repair-transient\n");
  const FaultMap map = fpga::fault_map_from_trace(trace);
  EXPECT_FALSE(map.faulty(1, 1));  // repaired
  EXPECT_FALSE(map.faulty(3, 2));  // transient column cleared
  EXPECT_TRUE(map.permanent(5, 0));
  EXPECT_EQ(map.faulty_count(), 1);
}

TEST(FaultMap, TraceParserAcceptsCommentsAndCrlf) {
  const fpga::FaultTrace trace = fpga::parse_fault_trace_string(
      "# header comment\r\n"
      "faults 4 4\r\n"
      "\r\n"
      "tile 0 0 permanent\r\n");
  EXPECT_EQ(trace.width, 4);
  ASSERT_EQ(trace.events.size(), 1u);
  EXPECT_EQ(trace.events[0].rect, (Rect{0, 0, 1, 1}));
}

TEST(FaultMap, TraceParserRejectsMalformedInput) {
  expect_parse_error("", "empty fault trace");
  expect_parse_error("# only comments\n", "missing faults header");
  expect_parse_error("tile 0 0\n", "fft:1:");
  expect_parse_error("faults 0 4\n", "must be positive");
  expect_parse_error("faults 4 4\nfaults 4 4\n", "duplicate");
  expect_parse_error("faults 4 4\ntile 4 0\n", "fft:2: tile coordinates");
  expect_parse_error("faults 4 4\ntile 0 -1\n", "out of bounds");
  expect_parse_error("faults 4 4\ncolumn 9\n", "column index");
  expect_parse_error("faults 4 4\nrect 2 2 4 1\n", "rect out of bounds");
  expect_parse_error("faults 4 4\nrect 0 0 0 2\n", "non-empty");
  expect_parse_error("faults 4 4\ntile 1 1 broken\n", "fault kind");
  expect_parse_error("faults 4 4\ntile x 1\n", "must be an integer");
  expect_parse_error("faults 4 4\nrepair 5 5\n", "repair coordinates");
  expect_parse_error("faults 4 4\nzap 1 1\n", "unknown directive 'zap'");
  expect_parse_error("faults 4 4\n\n\ntile 1\n", "fft:4:");
}

// --- Region fault overlay -------------------------------------------------

TEST(RegionFaults, FaultyTilesDropOutOfAvailability) {
  const auto region = clb_region(8, 4);
  const long before = region->total_available();
  FaultMap map(region->fabric());
  map.inject(3, 2, FaultKind::kPermanent);
  map.inject_column(6, FaultKind::kTransient);
  region->apply_faults(map);
  EXPECT_FALSE(region->available(3, 2));
  EXPECT_FALSE(region->available(6, 0));
  EXPECT_TRUE(region->available(0, 0));
  EXPECT_EQ(region->total_available(), before - 5);
  EXPECT_FALSE(region->masks()[kClb].get(2, 3));
  EXPECT_EQ(region->fault_mask().popcount(), 5u);
}

TEST(RegionFaults, OverlayIsReplacedSoRepairsRestoreTiles) {
  const auto region = clb_region(8, 4);
  const long before = region->total_available();
  FaultMap map(region->fabric());
  map.inject_column(2, FaultKind::kTransient);
  region->apply_faults(map);
  EXPECT_EQ(region->total_available(), before - 4);
  map.repair_transient();
  region->apply_faults(map);
  EXPECT_EQ(region->total_available(), before);
  EXPECT_TRUE(region->available(2, 1));
}

TEST(RegionFaults, EmptyFaultMapIsBitIdentical) {
  // The acceptance criterion for the whole fault layer: a fault-free map
  // must leave every placer input untouched.
  const auto seed = std::uint64_t{7};
  auto fabric = std::make_shared<const fpga::Fabric>(
      fpga::make_irregular(24, 12, fpga::IrregularSpec{}, seed));
  fpga::PartialRegion plain(fabric);
  fpga::PartialRegion faulted(fabric);
  faulted.apply_faults(FaultMap(*fabric));
  ASSERT_EQ(plain.masks().size(), faulted.masks().size());
  for (std::size_t k = 0; k < plain.masks().size(); ++k)
    EXPECT_EQ(plain.masks()[k], faulted.masks()[k]) << "resource " << k;
  EXPECT_EQ(plain.total_available(), faulted.total_available());

  model::GeneratorParams params;
  params.clb_min = 6;
  params.clb_max = 24;
  params.bram_blocks_max = 1;
  model::ModuleGenerator generator(params, seed);
  const auto modules = generator.generate_many(5);

  const auto greedy_plain = baseline::place_greedy(plain, modules);
  const auto greedy_faulted = baseline::place_greedy(faulted, modules);
  ASSERT_EQ(greedy_plain.solution.feasible, greedy_faulted.solution.feasible);
  ASSERT_TRUE(greedy_plain.solution.feasible);
  for (std::size_t i = 0; i < modules.size(); ++i) {
    const auto& a = greedy_plain.solution.placements[i];
    const auto& b = greedy_faulted.solution.placements[i];
    EXPECT_EQ(a.shape, b.shape);
    EXPECT_EQ(a.x, b.x);
    EXPECT_EQ(a.y, b.y);
  }

  placer::PlacerOptions options;
  options.mode = placer::PlacerMode::kBranchAndBound;
  options.time_limit_seconds = 10.0;
  options.seed = seed;
  const auto cp_plain = placer::Placer(plain, modules, options).place();
  const auto cp_faulted = placer::Placer(faulted, modules, options).place();
  ASSERT_TRUE(cp_plain.solution.feasible);
  ASSERT_TRUE(cp_faulted.solution.feasible);
  EXPECT_EQ(cp_plain.solution.extent, cp_faulted.solution.extent);
  for (std::size_t i = 0; i < modules.size(); ++i) {
    const auto& a = cp_plain.solution.placements[i];
    const auto& b = cp_faulted.solution.placements[i];
    EXPECT_EQ(a.shape, b.shape);
    EXPECT_EQ(a.x, b.x);
    EXPECT_EQ(a.y, b.y);
  }
}

TEST(RegionFaults, DimensionMismatchesAreRejected) {
  const auto region = clb_region(8, 4);
  EXPECT_THROW(region->apply_faults(FaultMap(7, 4)), InvalidInput);
  EXPECT_THROW(region->set_fault_mask(BitMatrix(3, 8)), InvalidInput);
}

// Every solver layer consumes the same availability masks, so a faulted
// region must keep all of them off the dead tiles.
TEST(RegionFaults, AllPlacersRefuseFaultyTiles) {
  const auto seed = std::uint64_t{11};
  const auto region = clb_region(20, 8);
  FaultMap map(region->fabric());
  map.inject_rect(Rect{4, 2, 2, 3}, FaultKind::kPermanent);
  map.inject_column(11, FaultKind::kPermanent);
  map.inject(16, 7, FaultKind::kTransient);
  region->apply_faults(map);
  const BitMatrix fault_mask = region->fault_mask();

  model::GeneratorParams params;
  params.clb_min = 4;
  params.clb_max = 16;
  params.bram_blocks_max = 0;
  params.max_height = 6;
  model::ModuleGenerator generator(params, seed);
  const auto modules = generator.generate_many(5);

  const auto check = [&](const std::vector<placer::ModulePlacement>& placed,
                         const char* who) {
    for (const auto& p : placed) {
      const auto& shape =
          modules[static_cast<std::size_t>(p.module)]
              .shapes()[static_cast<std::size_t>(p.shape)];
      EXPECT_FALSE(fault_mask.intersects_shifted(shape.mask(), p.y, p.x))
          << who << " placed module " << p.module << " on a faulty tile";
      for (const Point& cell : shape.all_cells().cells())
        EXPECT_TRUE(region->available(p.x + cell.x, p.y + cell.y))
            << who << " used unavailable tile";
    }
  };

  const auto greedy = baseline::place_greedy(*region, modules);
  ASSERT_TRUE(greedy.solution.feasible);
  check(greedy.solution.placements, "greedy");

  const auto annealed = baseline::place_annealing(*region, modules, {});
  if (annealed.solution.feasible) check(annealed.solution.placements, "sa");

  placer::PlacerOptions options;
  options.time_limit_seconds = 5.0;
  options.seed = seed;
  const auto exact = placer::Placer(*region, modules, options).place();
  ASSERT_TRUE(exact.solution.feasible);
  check(exact.solution.placements, "cp");

  baseline::OnlinePlacer online(*region, {});
  std::vector<placer::ModulePlacement> online_placed;
  for (std::size_t i = 0; i < modules.size(); ++i) {
    const auto p = online.place(static_cast<int>(i), modules[i]);
    if (p) online_placed.push_back(*p);
  }
  EXPECT_FALSE(online_placed.empty());
  check(online_placed, "online");
}

// --- Tiered recovery ------------------------------------------------------

runtime::FaultRecoveryOptions test_recovery_options() {
  runtime::FaultRecoveryOptions options;
  options.deadline_seconds = 5.0;  // generous: tests assert tier choice
  return options;
}

FaultEvent tile_fault(int x, int y,
                      FaultKind kind = FaultKind::kPermanent) {
  FaultEvent event;
  event.op = FaultEvent::Op::kTile;
  event.kind = kind;
  event.rect = Rect{x, y, 1, 1};
  return event;
}

TEST(FaultRecovery, AdmitValidatesItsInputs) {
  const auto region = clb_region(8, 4);
  runtime::FaultRecoveryManager manager(*region, test_recovery_options());
  const Module module("m", {rect_shape(2, 2)});
  manager.admit(0, module, 0, 0, 0);
  EXPECT_THROW(manager.admit(0, module, 0, 4, 0), InvalidInput);  // id taken
  EXPECT_THROW(manager.admit(1, module, 1, 0, 0), InvalidInput);  // bad shape
  EXPECT_THROW(manager.admit(1, module, 0, 1, 1), InvalidInput);  // overlap
  EXPECT_THROW(manager.admit(1, module, 0, 7, 0), InvalidInput);  // outside
  manager.admit(1, module, 0, 4, 0);
  EXPECT_EQ(manager.live_count(), 2);
  EXPECT_EQ(manager.occupied_tiles(), 8);
}

TEST(FaultRecovery, InPlaceSwapUsesAnAlternativeInsideTheOldBbox) {
  const auto region = clb_region(6, 4);
  // Shape 0 fills its 2x2 bbox; shape 1 is an L that leaves local (0,1)
  // empty — the design alternative that can route around a dead tile.
  const Module module(
      "m", {rect_shape(2, 2), shape_of({{0, 0}, {1, 0}, {1, 1}})});
  runtime::FaultRecoveryManager manager(*region, test_recovery_options());
  manager.admit(0, module, 0, 2, 1);
  // Kill the tile under local (0,1) of the placement: global (2, 2).
  const auto outcome = manager.on_fault(tile_fault(2, 2));
  ASSERT_EQ(outcome.modules_hit, 1);
  ASSERT_EQ(outcome.recovered, 1);
  ASSERT_EQ(outcome.modules.size(), 1u);
  EXPECT_EQ(outcome.modules[0].tier, runtime::RecoveryTier::kInPlaceSwap);
  EXPECT_EQ(manager.stats().inplace_swaps, 1u);
  const auto placements = manager.live_placements();
  ASSERT_EQ(placements.size(), 1u);
  EXPECT_EQ(placements[0].shape, 1);
  EXPECT_EQ(placements[0].x, 2);
  EXPECT_EQ(placements[0].y, 1);
}

TEST(FaultRecovery, LocalReplaceMovesTheModuleOffTheFault) {
  const auto region = clb_region(8, 2);
  const Module module("m", {rect_shape(2, 2)});
  runtime::FaultRecoveryManager manager(*region, test_recovery_options());
  manager.admit(0, module, 0, 0, 0);
  const auto outcome = manager.on_fault(tile_fault(1, 1));
  ASSERT_EQ(outcome.recovered, 1);
  EXPECT_EQ(outcome.modules[0].tier, runtime::RecoveryTier::kLocalReplace);
  const auto placements = manager.live_placements();
  ASSERT_EQ(placements.size(), 1u);
  EXPECT_GE(placements[0].x, 2);  // off the faulty columns
  EXPECT_EQ(manager.occupied_tiles(), 4);
  // The no-break copy model charges the old footprint as cleared and the
  // new one as written.
  EXPECT_EQ(manager.recovery_cost().tiles_cleared, 4);
  EXPECT_EQ(manager.recovery_cost().tiles_written, 4);
}

TEST(FaultRecovery, DefragRelocatesABystanderToMakeRoom) {
  // 6x1 strip: victim V on columns 0-1, bystander B on 3-4. Killing column
  // 1 leaves free healthy cells {0, 2, 5} — no two adjacent, so V only
  // fits after B moves. That is exactly the defrag tier's job.
  const auto region = clb_region(6, 1);
  const Module victim("v", {rect_shape(2, 1)});
  const Module bystander("b", {rect_shape(2, 1)});
  runtime::FaultRecoveryManager manager(*region, test_recovery_options());
  manager.admit(0, victim, 0, 0, 0);
  manager.admit(1, bystander, 0, 3, 0);
  const auto outcome = manager.on_fault(tile_fault(1, 0));
  ASSERT_EQ(outcome.modules_hit, 1);
  ASSERT_EQ(outcome.recovered, 1);
  EXPECT_EQ(outcome.modules[0].tier, runtime::RecoveryTier::kDefrag);
  EXPECT_EQ(manager.stats().relocated_modules, 1u);
  EXPECT_EQ(manager.live_count(), 2);
  // Both modules live, disjoint, and off the dead tile.
  const auto placements = manager.live_placements();
  BitMatrix grid(1, 6);
  for (const auto& p : placements) {
    const auto& module = manager.module_of(p.module);
    const auto& shape = module.shapes()[static_cast<std::size_t>(p.shape)];
    ASSERT_FALSE(grid.intersects_shifted(shape.mask(), p.y, p.x));
    grid.or_shifted(shape.mask(), p.y, p.x);
  }
  EXPECT_FALSE(grid.get(0, 1));  // nobody sits on the dead tile
}

TEST(FaultRecovery, ParkedModuleIsRevivedAfterRepair) {
  // The region has room for exactly one 2x2 module; a transient fault
  // evicts it with nowhere to go, so it parks. After the repair its backoff
  // has elapsed and the retry pass brings it back.
  const auto region = clb_region(2, 2);
  const Module module("m", {rect_shape(2, 2)});
  auto options = test_recovery_options();
  options.retry_backoff_events = 1;
  runtime::FaultRecoveryManager manager(*region, options);
  manager.admit(0, module, 0, 0, 0);

  const auto fault = manager.on_fault(tile_fault(0, 0, FaultKind::kTransient));
  EXPECT_EQ(fault.modules_hit, 1);
  EXPECT_EQ(fault.recovered, 0);
  EXPECT_EQ(fault.parked, 1);
  EXPECT_EQ(manager.parked_count(), 1);
  EXPECT_EQ(manager.live_count(), 0);
  EXPECT_EQ(manager.occupied_tiles(), 0);
  EXPECT_TRUE(manager.is_parked(0));
  EXPECT_LT(manager.capacity_retained(), 1.0);

  FaultEvent repair;
  repair.op = FaultEvent::Op::kRepairTransient;
  const auto revived = manager.on_fault(repair);
  EXPECT_EQ(revived.retry_recoveries, 1);
  EXPECT_EQ(manager.live_count(), 1);
  EXPECT_EQ(manager.parked_count(), 0);
  EXPECT_EQ(manager.occupied_tiles(), 4);
  EXPECT_DOUBLE_EQ(manager.capacity_retained(), 1.0);
  EXPECT_EQ(manager.stats().retry_recoveries, 1u);
  ASSERT_EQ(revived.modules.size(), 1u);
  EXPECT_TRUE(revived.modules[0].from_parked);
}

TEST(FaultRecovery, DegradesGracefullyWhenCapacityIsGone) {
  // Permanent fault on a fully used region: the module parks, retries are
  // bounded, and the manager keeps serving events without throwing.
  const auto region = clb_region(2, 2);
  const Module module("m", {rect_shape(2, 2)});
  auto options = test_recovery_options();
  options.retry_backoff_events = 1;
  options.max_retries = 2;
  runtime::FaultRecoveryManager manager(*region, options);
  manager.admit(0, module, 0, 0, 0);

  ASSERT_EQ(manager.on_fault(tile_fault(1, 1)).parked, 1);
  EXPECT_DOUBLE_EQ(manager.capacity_retained(), 0.75);
  EXPECT_DOUBLE_EQ(manager.utilization(), 0.0);
  // Subsequent events trigger retries until the budget is exhausted.
  for (int i = 0; i < 4; ++i)
    (void)manager.on_fault(tile_fault(0, 0, FaultKind::kTransient));
  EXPECT_EQ(manager.stats().retries, 2u);
  EXPECT_EQ(manager.stats().abandoned, 1u);
  EXPECT_EQ(manager.parked_count(), 1);
  EXPECT_EQ(manager.live_count(), 0);
}

TEST(FaultRecovery, RecoveryTierNamesAreStable) {
  EXPECT_STREQ(runtime::recovery_tier_name(runtime::RecoveryTier::kNone),
               "parked");
  EXPECT_STREQ(
      runtime::recovery_tier_name(runtime::RecoveryTier::kInPlaceSwap),
      "inplace-swap");
  EXPECT_STREQ(runtime::recovery_tier_name(runtime::RecoveryTier::kDefrag),
               "defrag");
}

}  // namespace
}  // namespace rr
