// Unit + property tests for cp::Domain (range-list integer domains).
#include <gtest/gtest.h>

#include <set>

#include "cp/domain.hpp"
#include "util/rng.hpp"

namespace rr::cp {
namespace {

TEST(Domain, IntervalConstruction) {
  const Domain d(3, 7);
  EXPECT_EQ(d.size(), 5);
  EXPECT_EQ(d.min(), 3);
  EXPECT_EQ(d.max(), 7);
  EXPECT_TRUE(d.contains(5));
  EXPECT_FALSE(d.contains(8));
  EXPECT_FALSE(d.assigned());
}

TEST(Domain, EmptyWhenLoAboveHi) {
  const Domain d(5, 4);
  EXPECT_TRUE(d.empty());
  EXPECT_EQ(d.size(), 0);
}

TEST(Domain, FromValuesCoalescesRuns) {
  const Domain d = Domain::from_values({5, 1, 2, 3, 9, 2});
  EXPECT_EQ(d.size(), 5);
  EXPECT_EQ(d.ranges().size(), 3u);  // 1..3, 5, 9
  EXPECT_TRUE(d.contains(2));
  EXPECT_FALSE(d.contains(4));
}

TEST(Domain, RemoveBelowAbove) {
  Domain d(0, 10);
  EXPECT_TRUE(d.remove_below(3));
  EXPECT_EQ(d.min(), 3);
  EXPECT_FALSE(d.remove_below(2));  // no-op
  EXPECT_TRUE(d.remove_above(7));
  EXPECT_EQ(d.max(), 7);
  EXPECT_EQ(d.size(), 5);
}

TEST(Domain, RemoveValueSplitsRange) {
  Domain d(0, 4);
  EXPECT_TRUE(d.remove(2));
  EXPECT_EQ(d.size(), 4);
  EXPECT_EQ(d.ranges().size(), 2u);
  EXPECT_FALSE(d.contains(2));
  EXPECT_FALSE(d.remove(2));  // already gone
}

TEST(Domain, RemoveRange) {
  Domain d(0, 9);
  EXPECT_TRUE(d.remove_range(3, 6));
  EXPECT_EQ(d.size(), 6);
  EXPECT_FALSE(d.contains(4));
  EXPECT_TRUE(d.contains(7));
}

TEST(Domain, AssignValue) {
  Domain d(0, 9);
  EXPECT_TRUE(d.assign_value(4));
  EXPECT_TRUE(d.assigned());
  EXPECT_EQ(d.value(), 4);
  // Assigning a missing value empties the domain.
  Domain e(0, 3);
  e.remove(2);
  EXPECT_TRUE(e.assign_value(2));
  EXPECT_TRUE(e.empty());
}

TEST(Domain, NextGeq) {
  Domain d = Domain::from_values({1, 2, 3, 7, 8});
  int out = 0;
  EXPECT_TRUE(d.next_geq(0, out));
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(d.next_geq(4, out));
  EXPECT_EQ(out, 7);
  EXPECT_TRUE(d.next_geq(8, out));
  EXPECT_EQ(out, 8);
  EXPECT_FALSE(d.next_geq(9, out));
}

TEST(Domain, Intersect) {
  Domain a(0, 10);
  const Domain b = Domain::from_values({2, 3, 8, 12});
  EXPECT_TRUE(a.intersect(b));
  EXPECT_EQ(a.values(), (std::vector<int>{2, 3, 8}));
  EXPECT_FALSE(a.intersect(b));  // fixpoint
}

TEST(Domain, RemoveValuesSorted) {
  Domain d(0, 9);
  const std::vector<int> gone{0, 3, 4, 9};
  EXPECT_TRUE(d.remove_values_sorted(gone));
  EXPECT_EQ(d.values(), (std::vector<int>{1, 2, 5, 6, 7, 8}));
  EXPECT_FALSE(d.remove_values_sorted(gone));
}

TEST(Domain, ForEachVisitsAscending) {
  const Domain d = Domain::from_values({9, 1, 5});
  std::vector<int> seen;
  d.for_each([&](int v) { seen.push_back(v); });
  EXPECT_EQ(seen, (std::vector<int>{1, 5, 9}));
}

TEST(Domain, ToString) {
  EXPECT_EQ(Domain(1, 3).to_string(), "{1..3}");
  EXPECT_EQ(Domain::from_values({1, 3}).to_string(), "{1, 3}");
}

// Property test: a Domain behaves exactly like a std::set<int> under a
// random operation sequence.
class DomainModelTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DomainModelTest, MatchesReferenceSet) {
  Rng rng(GetParam());
  Domain dom(0, 60);
  std::set<int> ref;
  for (int v = 0; v <= 60; ++v) ref.insert(v);

  for (int step = 0; step < 300 && !ref.empty(); ++step) {
    const int op = rng.uniform_int(0, 4);
    const int v = rng.uniform_int(-5, 65);
    switch (op) {
      case 0:
        dom.remove(v);
        ref.erase(v);
        break;
      case 1:
        dom.remove_below(v);
        ref.erase(ref.begin(), ref.lower_bound(v));
        break;
      case 2:
        dom.remove_above(v);
        ref.erase(ref.upper_bound(v), ref.end());
        break;
      case 3: {
        const int w = v + rng.uniform_int(0, 8);
        dom.remove_range(v, w);
        for (int x = v; x <= w; ++x) ref.erase(x);
        break;
      }
      case 4: {
        std::vector<int> batch;
        for (int i = 0; i < 4; ++i)
          batch.push_back(rng.uniform_int(0, 60));
        std::sort(batch.begin(), batch.end());
        batch.erase(std::unique(batch.begin(), batch.end()), batch.end());
        dom.remove_values_sorted(batch);
        for (int x : batch) ref.erase(x);
        break;
      }
    }
    ASSERT_EQ(dom.size(), static_cast<long>(ref.size()));
    ASSERT_EQ(dom.values(), std::vector<int>(ref.begin(), ref.end()));
    if (!ref.empty()) {
      ASSERT_EQ(dom.min(), *ref.begin());
      ASSERT_EQ(dom.max(), *ref.rbegin());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, DomainModelTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace rr::cp
