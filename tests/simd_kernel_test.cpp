// Differential tests for the SIMD kernel layer (src/util/simd).
//
// Every dispatched kernel must be bit-identical to both the scalar
// reference table and a naive per-bit model, across word-edge widths,
// shifts spanning word boundaries in both directions, and empty inputs.
// The suite runs under whichever dispatch level the process resolved to
// (CI runs it on both RRPLACE_SIMD legs), and additionally pits the
// dispatched table against the scalar table directly, so on the AVX2 leg
// this is the vector-vs-scalar oracle.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "util/rng.hpp"
#include "util/simd/simd.hpp"

namespace rr::simd {
namespace {

std::vector<std::uint64_t> random_words(Rng& rng, std::size_t n,
                                        int density_shift = 0) {
  std::vector<std::uint64_t> words(n);
  for (auto& w : words) {
    w = rng();
    // density_shift > 0 thins the array (AND of several draws) so sparse
    // and dense inputs both get coverage.
    for (int d = 0; d < density_shift; ++d) w &= rng();
  }
  return words;
}

/// Naive bit gather matching the kernel window convention.
std::uint64_t naive_window(const std::vector<std::uint64_t>& src, long b) {
  std::uint64_t out = 0;
  for (int i = 0; i < 64; ++i) {
    const long bit = b + i;
    if (bit < 0 || bit >= static_cast<long>(src.size()) * 64) continue;
    const std::uint64_t word = src[static_cast<std::size_t>(bit >> 6)];
    out |= ((word >> (bit & 63)) & 1u) << i;
  }
  return out;
}

// The shifts exercised everywhere: zero, intra-word, exact word multiples,
// word-straddling, negative, and far out of range.
const long kShifts[] = {0,   1,   7,   63,  64,  65,   127,  128, 130,
                        -1,  -63, -64, -65, -128, -130, 1000, -1000};

class SimdKernelTest : public ::testing::Test {
 protected:
  const Kernels& dispatched_ = active();
  const Kernels& scalar_ = scalar_kernels();
};

TEST_F(SimdKernelTest, WindowMatchesNaive) {
  Rng rng(7);
  for (const std::size_t n : {std::size_t{1}, std::size_t{2}, std::size_t{5}}) {
    const auto src = random_words(rng, n);
    for (const long shift : kShifts) {
      for (long b = shift - 2; b <= shift + 2; ++b)
        EXPECT_EQ(detail::window(src.data(), n, b), naive_window(src, b))
            << "n=" << n << " b=" << b;
    }
  }
}

TEST_F(SimdKernelTest, PopcountFamily) {
  Rng rng(11);
  for (std::size_t n = 0; n <= 17; ++n) {
    const auto a = random_words(rng, n);
    const auto b = random_words(rng, n, 1);
    std::size_t naive_pop = 0, naive_and = 0;
    for (std::size_t i = 0; i < n; ++i) {
      naive_pop += static_cast<std::size_t>(std::popcount(a[i]));
      naive_and += static_cast<std::size_t>(std::popcount(a[i] & b[i]));
    }
    EXPECT_EQ(dispatched_.popcount(a.data(), n), naive_pop);
    EXPECT_EQ(scalar_.popcount(a.data(), n), naive_pop);
    EXPECT_EQ(dispatched_.and_popcount(a.data(), b.data(), n), naive_and);
    EXPECT_EQ(scalar_.and_popcount(a.data(), b.data(), n), naive_and);

    auto dst = a;
    EXPECT_EQ(dispatched_.and_inplace_popcount(dst.data(), b.data(), n),
              naive_and);
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(dst[i], a[i] & b[i]);
  }
}

TEST_F(SimdKernelTest, IntersectAndAndnotAgree) {
  Rng rng(13);
  for (std::size_t n = 0; n <= 17; ++n) {
    for (int density = 0; density <= 4; ++density) {
      const auto a = random_words(rng, n, density);
      const auto b = random_words(rng, n, density);
      long naive_first = -1;
      bool naive_andnot = false;
      for (std::size_t i = 0; i < n; ++i) {
        if (naive_first < 0 && (a[i] & b[i]) != 0)
          naive_first = static_cast<long>(i);
        naive_andnot = naive_andnot || (a[i] & ~b[i]) != 0;
      }
      EXPECT_EQ(dispatched_.first_intersect(a.data(), b.data(), n),
                naive_first);
      EXPECT_EQ(scalar_.first_intersect(a.data(), b.data(), n), naive_first);
      EXPECT_EQ(dispatched_.andnot_any(a.data(), b.data(), n), naive_andnot);
      EXPECT_EQ(scalar_.andnot_any(a.data(), b.data(), n), naive_andnot);
    }
  }
}

TEST_F(SimdKernelTest, BitwiseInplaceOps) {
  Rng rng(17);
  for (std::size_t n = 0; n <= 17; ++n) {
    const auto a = random_words(rng, n);
    const auto b = random_words(rng, n);
    auto d1 = a, d2 = a, d3 = a;
    dispatched_.and_inplace(d1.data(), b.data(), n);
    dispatched_.or_inplace(d2.data(), b.data(), n);
    dispatched_.andnot_inplace(d3.data(), b.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(d1[i], a[i] & b[i]);
      EXPECT_EQ(d2[i], a[i] | b[i]);
      EXPECT_EQ(d3[i], a[i] & ~b[i]);
    }
  }
}

TEST_F(SimdKernelTest, WindowedKernelsMatchNaive) {
  Rng rng(19);
  // Mismatched dst/src lengths included: the batch anchor kernels gather
  // from rows of a different word count than they write.
  const std::size_t sizes[][2] = {{1, 1}, {2, 1}, {1, 2}, {3, 3},
                                  {5, 2}, {2, 5}, {7, 7}};
  for (const auto& [n_dst, n_src] : sizes) {
    for (const long shift : kShifts) {
      const auto dst0 = random_words(rng, n_dst);
      const auto src = random_words(rng, n_src);

      std::vector<std::uint64_t> want_and(n_dst), want_or(n_dst),
          want_andnot(n_dst);
      std::size_t want_and_pop = 0, want_sap = 0;
      for (std::size_t i = 0; i < n_dst; ++i) {
        const std::uint64_t w =
            naive_window(src, static_cast<long>(i) * 64 + shift);
        want_and[i] = dst0[i] & w;
        want_or[i] = dst0[i] | w;
        want_andnot[i] = dst0[i] & ~w;
        want_and_pop += static_cast<std::size_t>(std::popcount(want_and[i]));
        want_sap += static_cast<std::size_t>(std::popcount(dst0[i] & w));
      }

      for (const Kernels* kernels : {&dispatched_, &scalar_}) {
        auto d = dst0;
        EXPECT_EQ(kernels->shift_and_into(d.data(), n_dst, src.data(), n_src,
                                          shift),
                  want_and_pop);
        EXPECT_EQ(d, want_and) << "shift=" << shift;
        d = dst0;
        kernels->shift_or_into(d.data(), n_dst, src.data(), n_src, shift);
        EXPECT_EQ(d, want_or) << "shift=" << shift;
        d = dst0;
        kernels->shift_andnot_into(d.data(), n_dst, src.data(), n_src, shift);
        EXPECT_EQ(d, want_andnot) << "shift=" << shift;
        EXPECT_EQ(kernels->shifted_and_popcount(dst0.data(), n_dst, src.data(),
                                                n_src, shift),
                  want_sap)
            << "shift=" << shift;
      }
    }
  }
}

TEST_F(SimdKernelTest, ShiftAndIntoAliasingInPlace) {
  // The doubling erosion in geost/anchor_kernel relies on dst == src with
  // shift >= 0 reading pre-write values.
  Rng rng(23);
  for (const long shift : {1L, 3L, 64L, 65L, 130L}) {
    auto words = random_words(rng, 9);
    const auto original = words;
    std::vector<std::uint64_t> want(words.size());
    for (std::size_t i = 0; i < words.size(); ++i)
      want[i] = original[i] &
                naive_window(original, static_cast<long>(i) * 64 + shift);
    active().shift_and_into(words.data(), words.size(), words.data(),
                            words.size(), shift);
    EXPECT_EQ(words, want) << "shift=" << shift;
  }
}

TEST_F(SimdKernelTest, DispatchedMatchesScalarOnRandomFuzz) {
  Rng rng(29);
  for (int round = 0; round < 200; ++round) {
    const std::size_t n_dst = 1 + rng.bounded(12);
    const std::size_t n_src = 1 + rng.bounded(12);
    // shift in [-150, 149]
    const long shift = static_cast<long>(rng.bounded(300)) - 150;
    const auto dst0 = random_words(rng, n_dst, static_cast<int>(round % 3));
    const auto src = random_words(rng, n_src, static_cast<int>(round % 2));

    auto d_dispatched = dst0, d_scalar = dst0;
    const std::size_t pop_dispatched = dispatched_.shift_and_into(
        d_dispatched.data(), n_dst, src.data(), n_src, shift);
    const std::size_t pop_scalar = scalar_.shift_and_into(
        d_scalar.data(), n_dst, src.data(), n_src, shift);
    EXPECT_EQ(pop_dispatched, pop_scalar);
    EXPECT_EQ(d_dispatched, d_scalar);

    EXPECT_EQ(dispatched_.shifted_and_popcount(dst0.data(), n_dst, src.data(),
                                               n_src, shift),
              scalar_.shifted_and_popcount(dst0.data(), n_dst, src.data(),
                                           n_src, shift));
  }
}

TEST_F(SimdKernelTest, DispatchReportsConsistentLevel) {
  // active_level() and the resolved table must agree; on a machine without
  // AVX2 (or with RRPLACE_SIMD=off) the dispatched table IS the scalar one.
  if (active_level() == Level::kScalar)
    EXPECT_EQ(&active(), &scalar_kernels());
  else
    EXPECT_TRUE(compiled_avx2() && cpu_supports_avx2());
  EXPECT_STREQ(level_name(Level::kScalar), "scalar");
  EXPECT_STREQ(level_name(Level::kAvx2), "avx2");
}

}  // namespace
}  // namespace rr::simd
