// Differential tests: the compact-table propagation engines must be
// observationally identical to the scanning oracles they replaced.
//
// Three layers of evidence, strongest last:
//   1. fixpoint equivalence on random positive-table instances — after
//      identical mutation bursts, both engines leave identical domains or
//      both fail;
//   2. lockstep seeded search walks over random table CSPs — identical
//      node/fail/solution counts and identical solutions;
//   3. the real placer model under branch-and-bound with the element
//      engine toggled — identical trees, extents and placements.
#include <gtest/gtest.h>

#include <vector>

#include "cp/constraints.hpp"
#include "cp/search.hpp"
#include "cp/space.hpp"
#include "fpga/builders.hpp"
#include "model/generator.hpp"
#include "placer/placer.hpp"
#include "util/rng.hpp"

namespace rr::cp {
namespace {

std::vector<std::vector<int>> random_tuples(Rng& rng, int arity, int count,
                                            int domain_size) {
  std::vector<std::vector<int>> tuples;
  tuples.reserve(static_cast<std::size_t>(count));
  for (int t = 0; t < count; ++t) {
    std::vector<int> tuple(static_cast<std::size_t>(arity));
    for (int& v : tuple) v = rng.uniform_int(0, domain_size - 1);
    tuples.push_back(std::move(tuple));
  }
  return tuples;
}

void expect_identical_domains(const Space& a, const Space& b, int nvars,
                              const std::string& context) {
  for (int v = 0; v < nvars; ++v) {
    ASSERT_TRUE(a.dom(VarId{v}) == b.dom(VarId{v}))
        << context << " var=" << v << ": " << a.dom(VarId{v}).to_string()
        << " vs " << b.dom(VarId{v}).to_string();
  }
}

// Layer 1: identical random mutation bursts on one table constraint must
// reach identical fixpoints (or both fail) at every step, including
// through push/pop cycles that exercise the reversible bitset trail.
TEST(TableDifferential, RandomMutationBurstsReachIdenticalFixpoints) {
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    Rng setup(seed);
    const int arity = setup.uniform_int(2, 4);
    const int domain_size = setup.uniform_int(6, 40);
    const int tuple_count = setup.uniform_int(5, 300);
    const auto tuples = random_tuples(setup, arity, tuple_count, domain_size);

    Space scan_space, compact_space;
    std::vector<VarId> scan_vars, compact_vars;
    for (int i = 0; i < arity; ++i) {
      scan_vars.push_back(scan_space.new_var(0, domain_size - 1));
      compact_vars.push_back(compact_space.new_var(0, domain_size - 1));
    }
    post_table(scan_space, scan_vars, tuples, TableOptions{false});
    post_table(compact_space, compact_vars, tuples, TableOptions{true});
    ASSERT_EQ(scan_space.propagate(), compact_space.propagate())
        << "seed=" << seed << " initial propagation";
    if (scan_space.failed()) continue;
    expect_identical_domains(scan_space, compact_space, arity,
                             "seed=" + std::to_string(seed) + " initial");

    Rng walk(seed * 977);
    int depth = 0;
    for (int step = 0; step < 40 && !scan_space.failed(); ++step) {
      const std::string context =
          "seed=" + std::to_string(seed) + " step=" + std::to_string(step);
      if (depth > 0 && walk.uniform_int(0, 4) == 0) {
        scan_space.pop();
        compact_space.pop();
        --depth;
        expect_identical_domains(scan_space, compact_space, arity,
                                 context + " after pop");
        continue;
      }
      scan_space.push();
      compact_space.push();
      ++depth;
      // A burst of 1-3 identical mutations, then propagate both.
      const int burst = walk.uniform_int(1, 3);
      for (int m = 0; m < burst; ++m) {
        const int var = walk.uniform_int(0, arity - 1);
        const Domain& dom = scan_space.dom(scan_vars[var]);
        if (dom.assigned()) continue;
        switch (walk.uniform_int(0, 2)) {
          case 0: {
            const int v = dom.nth_value(static_cast<long>(
                walk.bounded(static_cast<std::uint64_t>(dom.size()))));
            scan_space.remove(scan_vars[var], v);
            compact_space.remove(compact_vars[var], v);
            break;
          }
          case 1: {
            const int v = walk.uniform_int(dom.min(), dom.max());
            scan_space.set_max(scan_vars[var], v);
            compact_space.set_max(compact_vars[var], v);
            break;
          }
          case 2: {
            const int v = walk.uniform_int(dom.min(), dom.max());
            scan_space.set_min(scan_vars[var], v);
            compact_space.set_min(compact_vars[var], v);
            break;
          }
        }
      }
      const bool scan_ok = scan_space.propagate();
      const bool compact_ok = compact_space.propagate();
      ASSERT_EQ(scan_ok, compact_ok) << context;
      if (!scan_ok) break;
      expect_identical_domains(scan_space, compact_space, arity, context);
    }
  }
}

// Layer 2: full seeded search walks over chained random table CSPs. The
// engines see thousands of push/propagate/pop transitions; any live-set
// drift shows up as diverging node or solution counts.
TEST(TableDifferential, LockstepSearchOverRandomTableCsps) {
  for (std::uint64_t seed = 50; seed <= 54; ++seed) {
    SearchStats stats[2];
    std::vector<std::vector<int>> solutions[2];
    for (const bool compact : {false, true}) {
      Space space;
      Rng rng(seed);
      constexpr int kVars = 8;
      constexpr int kDomainSize = 12;
      std::vector<VarId> vars;
      for (int i = 0; i < kVars; ++i)
        vars.push_back(space.new_var(0, kDomainSize - 1));
      for (int first = 0; first + 3 <= kVars; first += 2) {
        std::vector<VarId> scope(vars.begin() + first,
                                 vars.begin() + first + 3);
        post_table(space, scope, random_tuples(rng, 3, 120, kDomainSize),
                   TableOptions{compact});
      }
      BasicBrancher brancher(vars, VarSelect::kFirstFail, ValSelect::kMin,
                             seed);
      Search::Options options;
      options.limits.max_fails = 2000;
      Search search(space, brancher, options);
      while (search.next()) {
        std::vector<int> solution;
        for (VarId v : vars) solution.push_back(space.dom(v).value());
        solutions[compact].push_back(std::move(solution));
      }
      stats[compact] = search.stats();
    }
    EXPECT_EQ(stats[0].nodes, stats[1].nodes) << "seed=" << seed;
    EXPECT_EQ(stats[0].fails, stats[1].fails) << "seed=" << seed;
    EXPECT_EQ(stats[0].solutions, stats[1].solutions) << "seed=" << seed;
    EXPECT_EQ(solutions[0], solutions[1]) << "seed=" << seed;
  }
}

// Element: random tables, lockstep mutation bursts on index and result.
TEST(TableDifferential, ElementFixpointEquivalence) {
  for (std::uint64_t seed = 300; seed <= 330; ++seed) {
    Rng setup(seed);
    const int n = setup.uniform_int(2, 400);
    std::vector<int> table(static_cast<std::size_t>(n));
    for (int& v : table) v = setup.uniform_int(-20, 60);

    Space scan_space, compact_space;
    const VarId si = scan_space.new_var(-3, n + 3);
    const VarId sr = scan_space.new_var(-30, 70);
    const VarId ci = compact_space.new_var(-3, n + 3);
    const VarId cr = compact_space.new_var(-30, 70);
    post_element(scan_space, table, si, sr, ElementOptions{false});
    post_element(compact_space, table, ci, cr, ElementOptions{true});
    ASSERT_EQ(scan_space.propagate(), compact_space.propagate())
        << "seed=" << seed;
    if (scan_space.failed()) continue;

    Rng walk(seed * 31 + 7);
    int depth = 0;
    for (int step = 0; step < 30 && !scan_space.failed(); ++step) {
      const std::string context =
          "seed=" + std::to_string(seed) + " step=" + std::to_string(step);
      if (depth > 0 && walk.uniform_int(0, 3) == 0) {
        scan_space.pop();
        compact_space.pop();
        --depth;
        continue;
      }
      scan_space.push();
      compact_space.push();
      ++depth;
      const bool on_index = walk.uniform_int(0, 1) == 0;
      const Domain& dom = scan_space.dom(on_index ? si : sr);
      if (dom.assigned()) {
        scan_space.pop();
        compact_space.pop();
        --depth;
        continue;
      }
      if (walk.uniform_int(0, 1) == 0) {
        const int v = walk.uniform_int(dom.min(), dom.max());
        scan_space.set_max(on_index ? si : sr, v);
        compact_space.set_max(on_index ? ci : cr, v);
      } else {
        const int v = dom.nth_value(static_cast<long>(
            walk.bounded(static_cast<std::uint64_t>(dom.size()))));
        scan_space.remove(on_index ? si : sr, v);
        compact_space.remove(on_index ? ci : cr, v);
      }
      const bool scan_ok = scan_space.propagate();
      const bool compact_ok = compact_space.propagate();
      ASSERT_EQ(scan_ok, compact_ok) << context;
      if (!scan_ok) break;
      ASSERT_TRUE(scan_space.dom(si) == compact_space.dom(ci))
          << context;
      ASSERT_TRUE(scan_space.dom(sr) == compact_space.dom(cr))
          << context;
    }
  }
}

// Layer 3: the real placer model. Branch-and-bound with the element engine
// toggled must explore the identical tree and return identical placements.
TEST(TableDifferential, PlacerBranchAndBoundTreesAreIdentical) {
  auto fabric = std::make_shared<const fpga::Fabric>(
      fpga::make_homogeneous(24, 10));
  const fpga::PartialRegion region(fabric);
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    model::GeneratorParams params;
    params.clb_min = 6;
    params.clb_max = 20;
    params.bram_blocks_max = 0;
    params.max_height = 8;
    model::ModuleGenerator generator(params, seed);
    const auto modules = generator.generate_many(6);

    placer::PlacementOutcome outcomes[2];
    for (const bool compact : {false, true}) {
      placer::PlacerOptions options;
      options.mode = placer::PlacerMode::kBranchAndBound;
      options.time_limit_seconds = 0;  // deterministic: fail budget only
      options.max_fails = 3000;
      options.seed = seed;
      options.element.compact = compact;
      outcomes[compact] = placer::Placer(region, modules, options).place();
    }
    const auto& scan = outcomes[0];
    const auto& comp = outcomes[1];
    ASSERT_EQ(scan.solution.feasible, comp.solution.feasible)
        << "seed=" << seed;
    EXPECT_EQ(scan.stats.nodes, comp.stats.nodes) << "seed=" << seed;
    EXPECT_EQ(scan.stats.fails, comp.stats.fails) << "seed=" << seed;
    if (!scan.solution.feasible) continue;
    EXPECT_EQ(scan.solution.extent, comp.solution.extent) << "seed=" << seed;
    ASSERT_EQ(scan.solution.placements.size(),
              comp.solution.placements.size())
        << "seed=" << seed;
    for (std::size_t i = 0; i < scan.solution.placements.size(); ++i) {
      const auto& a = scan.solution.placements[i];
      const auto& b = comp.solution.placements[i];
      EXPECT_TRUE(a.module == b.module && a.shape == b.shape &&
                  a.x == b.x && a.y == b.y)
          << "seed=" << seed << " module=" << i;
    }
  }
}

}  // namespace
}  // namespace rr::cp
