// The zero-weight oracle, enforced end to end: every backend that accepts
// a communication net list must, when the list is present but weightless
// (comm_weight == 0, or all net weights zero so nothing survives binding),
// run byte-for-byte the area-only code path — same placements, same search
// tree, same RNG draws, same admission decisions. This is what makes
// `--comm-weight 0` differentially testable against builds that never
// heard of src/comm.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "baseline/annealing.hpp"
#include "baseline/greedy.hpp"
#include "baseline/online.hpp"
#include "comm/net.hpp"
#include "fpga/builders.hpp"
#include "fpga/faults.hpp"
#include "fpga/region.hpp"
#include "model/generator.hpp"
#include "placer/placer.hpp"
#include "runtime/recovery.hpp"
#include "util/rng.hpp"

namespace rr {
namespace {

/// Chain nets over a module pool with a terminal on the first module, at a
/// uniform weight (0 builds the all-zero-weight variant).
comm::NetList chain_nets(std::span<const model::Module> pool, long weight) {
  comm::NetList nets;
  for (std::size_t i = 0; i + 1 < pool.size(); ++i) {
    comm::Net net;
    net.weight = weight;
    net.modules = {pool[i].name(), pool[i + 1].name()};
    nets.nets.push_back(std::move(net));
  }
  comm::Net io;
  io.weight = weight;
  io.modules = {pool.front().name()};
  io.terminals.push_back(Point{0, 0});
  nets.nets.push_back(std::move(io));
  return nets;
}

std::vector<model::Module> generated_pool(std::uint64_t seed, int count) {
  model::GeneratorParams params;
  params.clb_min = 4;
  params.clb_max = 10;
  params.bram_blocks_max = 0;
  params.max_height = 4;
  model::ModuleGenerator generator(params, seed);
  return generator.generate_many(count);
}

void expect_same_solution(const placer::PlacementOutcome& a,
                          const placer::PlacementOutcome& b,
                          const char* context) {
  EXPECT_EQ(a.solution.feasible, b.solution.feasible) << context;
  EXPECT_EQ(a.solution.extent, b.solution.extent) << context;
  EXPECT_EQ(a.solution.placements, b.solution.placements) << context;
}

void expect_same_search_tree(const placer::PlacementOutcome& a,
                             const placer::PlacementOutcome& b,
                             const char* context) {
  EXPECT_EQ(a.stats.nodes, b.stats.nodes) << context;
  EXPECT_EQ(a.stats.fails, b.stats.fails) << context;
  EXPECT_EQ(a.stats.solutions, b.stats.solutions) << context;
  EXPECT_EQ(a.stats.max_depth, b.stats.max_depth) << context;
  EXPECT_EQ(a.stats.restarts, b.stats.restarts) << context;
  EXPECT_EQ(a.stats.complete, b.stats.complete) << context;
}

TEST(ZeroWeightOracle, CpPlacerSearchTreeIsBitIdentical) {
  const auto fabric =
      std::make_shared<const fpga::Fabric>(fpga::make_homogeneous(18, 8));
  const fpga::PartialRegion region(fabric);
  const auto pool = generated_pool(17, 4);
  const comm::NetList weighted = chain_nets(pool, 3);
  const comm::NetList weightless = chain_nets(pool, 0);

  placer::PlacerOptions base;
  base.mode = placer::PlacerMode::kBranchAndBound;
  base.time_limit_seconds = 30.0;
  const auto area_only = placer::Placer(region, pool, base).place();
  ASSERT_TRUE(area_only.solution.feasible);
  ASSERT_TRUE(area_only.stats.complete);

  placer::PlacerOptions zero_weight = base;
  zero_weight.nets = &weighted;
  zero_weight.comm_weight = 0;
  const auto with_zero = placer::Placer(region, pool, zero_weight).place();
  expect_same_solution(area_only, with_zero, "comm_weight 0");
  expect_same_search_tree(area_only, with_zero, "comm_weight 0");

  placer::PlacerOptions zero_nets = base;
  zero_nets.nets = &weightless;
  zero_nets.comm_weight = 5;
  const auto with_dead = placer::Placer(region, pool, zero_nets).place();
  expect_same_solution(area_only, with_dead, "all-zero net weights");
  expect_same_search_tree(area_only, with_dead, "all-zero net weights");

  // Sanity of the oracle's other arm: a positive weight genuinely changes
  // the objective (this instance has slack to trade), so the gating above
  // is not vacuous.
  placer::PlacerOptions live = base;
  live.nets = &weighted;
  live.comm_weight = 8;
  const auto with_comm = placer::Placer(region, pool, live).place();
  ASSERT_TRUE(with_comm.solution.feasible);
  EXPECT_NE(with_comm.stats.nodes, area_only.stats.nodes)
      << "comm objective did not alter the search at weight 8";
}

TEST(ZeroWeightOracle, GreedyPlacementsAreBitIdentical) {
  const auto fabric =
      std::make_shared<const fpga::Fabric>(fpga::make_homogeneous(20, 8));
  const fpga::PartialRegion region(fabric);
  const auto pool = generated_pool(23, 6);
  const comm::NetList weighted = chain_nets(pool, 3);
  const comm::NetList weightless = chain_nets(pool, 0);

  const auto area_only = baseline::place_greedy(region, pool);
  baseline::GreedyOptions zero_weight;
  zero_weight.nets = &weighted;
  zero_weight.comm_weight = 0;
  expect_same_solution(area_only,
                       baseline::place_greedy(region, pool, zero_weight),
                       "greedy comm_weight 0");
  baseline::GreedyOptions zero_nets;
  zero_nets.nets = &weightless;
  zero_nets.comm_weight = 5;
  expect_same_solution(area_only,
                       baseline::place_greedy(region, pool, zero_nets),
                       "greedy all-zero net weights");
}

TEST(ZeroWeightOracle, AnnealingWalkIsBitIdentical) {
  const auto fabric =
      std::make_shared<const fpga::Fabric>(fpga::make_homogeneous(16, 8));
  const fpga::PartialRegion region(fabric);
  const auto pool = generated_pool(31, 4);
  const comm::NetList weighted = chain_nets(pool, 3);
  const comm::NetList weightless = chain_nets(pool, 0);

  // The walk ends at the temperature floor, far inside the wall-clock
  // budget, so two runs take identical move sequences iff they draw the
  // same RNG stream — which is exactly what the oracle demands.
  baseline::AnnealingOptions base;
  base.seed = 9;
  base.time_limit_seconds = 60.0;
  const auto area_only = baseline::place_annealing(region, pool, base);

  baseline::AnnealingOptions zero_weight = base;
  zero_weight.nets = &weighted;
  zero_weight.comm_weight = 0;
  expect_same_solution(area_only,
                       baseline::place_annealing(region, pool, zero_weight),
                       "annealing comm_weight 0");
  baseline::AnnealingOptions zero_nets = base;
  zero_nets.nets = &weightless;
  zero_nets.comm_weight = 5;
  expect_same_solution(area_only,
                       baseline::place_annealing(region, pool, zero_nets),
                       "annealing all-zero net weights");
}

/// Hand-built library with stable names for the online/recovery nets.
std::vector<model::Module> online_library() {
  using model::ModuleGenerator;
  std::vector<model::Module> lib;
  lib.push_back(
      model::Module("s1", {ModuleGenerator::make_column_shape(1, 0, 1, 1, 0)}));
  lib.push_back(
      model::Module("s4", {ModuleGenerator::make_column_shape(4, 0, 1, 2, 0),
                           ModuleGenerator::make_column_shape(4, 0, 1, 4, 0)}));
  lib.push_back(
      model::Module("s6", {ModuleGenerator::make_column_shape(6, 0, 1, 3, 0),
                           ModuleGenerator::make_column_shape(6, 0, 1, 2, 0)}));
  return lib;
}

TEST(ZeroWeightOracle, OnlineAdmissionAndDefragAreBitIdentical) {
  const auto fabric =
      std::make_shared<const fpga::Fabric>(fpga::make_homogeneous(12, 8));
  const auto library = online_library();
  const auto nets =
      std::make_shared<const comm::NetList>(chain_nets(library, 4));
  const auto dead_nets =
      std::make_shared<const comm::NetList>(chain_nets(library, 0));
  // Three arms over the identical trace: area-only first fit, commcost at
  // weight 0, and commcost whose nets all weigh 0. Defrag is live on all
  // three (small scale: every pass finishes far under the deadline).
  for (const bool use_index : {true, false}) {
    fpga::PartialRegion region_a(fabric);
    fpga::PartialRegion region_b(fabric);
    fpga::PartialRegion region_c(fabric);
    baseline::OnlineOptions area_only;
    area_only.policy = AnchorPolicy::kFirstFit;
    area_only.free_space_index = use_index;
    area_only.defrag.deadline_seconds = 0.5;
    baseline::OnlineOptions zero_weight = area_only;
    zero_weight.policy = AnchorPolicy::kCommCost;
    zero_weight.nets = nets;
    zero_weight.comm_weight = 0;
    baseline::OnlineOptions dead = area_only;
    dead.policy = AnchorPolicy::kCommCost;
    dead.nets = dead_nets;
    dead.comm_weight = 9;
    baseline::OnlinePlacer a(region_a, area_only);
    baseline::OnlinePlacer b(region_b, zero_weight);
    baseline::OnlinePlacer c(region_c, dead);
    Rng rng(0x0A11CEULL + (use_index ? 1 : 0));
    std::vector<int> live;
    int next_id = 0;
    for (int step = 0; step < 160; ++step) {
      if (live.empty() || rng.chance(0.6)) {
        const std::size_t m = rng.bounded(library.size());
        const int id = next_id++;
        const auto pa = a.place(id, library[m]);
        const auto pb = b.place(id, library[m]);
        const auto pc = c.place(id, library[m]);
        ASSERT_EQ(pa, pb) << "step " << step << " index " << use_index;
        ASSERT_EQ(pa, pc) << "step " << step << " index " << use_index;
        if (pa.has_value()) live.push_back(id);
      } else {
        const std::size_t pick = rng.bounded(live.size());
        const int id = live[pick];
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
        a.remove(id);
        b.remove(id);
        c.remove(id);
      }
      ASSERT_EQ(a.live_placements(), b.live_placements()) << "step " << step;
      ASSERT_EQ(a.live_placements(), c.live_placements()) << "step " << step;
    }
    EXPECT_EQ(a.defrag_stats().attempts, b.defrag_stats().attempts);
    EXPECT_EQ(a.defrag_stats().successes, b.defrag_stats().successes);
  }
}

TEST(ZeroWeightOracle, FaultRecoveryIsBitIdentical) {
  const auto fabric =
      std::make_shared<const fpga::Fabric>(fpga::make_homogeneous(12, 8));
  const auto library = online_library();
  const auto nets =
      std::make_shared<const comm::NetList>(chain_nets(library, 4));
  Rng rng(0xFA17E0ULL);
  runtime::FaultRecoveryOptions base;
  base.deadline_seconds = 0.0;
  base.seed = 7;
  runtime::FaultRecoveryOptions zero_weight = base;
  zero_weight.nets = nets;
  zero_weight.comm_weight = 0;
  runtime::FaultRecoveryManager area_only(fpga::PartialRegion(fabric), base);
  runtime::FaultRecoveryManager with_zero(fpga::PartialRegion(fabric),
                                          zero_weight);
  // Identical initial layouts via a shared first-fit seeding pass.
  fpga::PartialRegion seed_region(fabric);
  baseline::OnlinePlacer seeder(seed_region);
  for (int id = 0; id < 8; ++id) {
    const std::size_t m = rng.bounded(library.size());
    if (const auto p = seeder.place(id, library[m])) {
      area_only.admit(id, library[m], p->shape, p->x, p->y);
      with_zero.admit(id, library[m], p->shape, p->x, p->y);
    }
  }
  for (int step = 0; step < 25; ++step) {
    fpga::FaultEvent event;
    if (rng.bounded(4) == 0) {
      event.op = fpga::FaultEvent::Op::kRepairTransient;
    } else {
      event.op = fpga::FaultEvent::Op::kTile;
      event.kind = rng.bounded(2) == 0 ? fpga::FaultKind::kTransient
                                       : fpga::FaultKind::kPermanent;
      event.rect =
          Rect{static_cast<int>(
                   rng.bounded(static_cast<std::uint64_t>(fabric->width()))),
               static_cast<int>(
                   rng.bounded(static_cast<std::uint64_t>(fabric->height()))),
               1, 1};
    }
    const auto a = area_only.on_fault(event);
    const auto b = with_zero.on_fault(event);
    ASSERT_EQ(a.modules_hit, b.modules_hit) << "step " << step;
    ASSERT_EQ(a.recovered, b.recovered) << "step " << step;
    ASSERT_EQ(a.parked, b.parked) << "step " << step;
    ASSERT_EQ(area_only.live_placements(), with_zero.live_placements())
        << "step " << step;
    ASSERT_EQ(area_only.occupied_matrix(), with_zero.occupied_matrix())
        << "step " << step;
  }
}

}  // namespace
}  // namespace rr
