// Communication architecture: bus lanes, module attachment, and the effect
// of the bus-alignment constraint on placement.
#include <gtest/gtest.h>

#include <string>

#include "comm/bus.hpp"
#include "fpga/builders.hpp"
#include "util/error.hpp"
#include "model/generator.hpp"
#include "placer/placer.hpp"
#include "placer/validator.hpp"

namespace rr::comm {
namespace {

constexpr auto kBus = fpga::ResourceType::kBusMacro;
constexpr auto kClb = fpga::ResourceType::kClb;

TEST(BusRows, PeriodAndOffset) {
  BusSpec spec;
  spec.lane_period = 8;
  spec.lane_offset = 1;
  EXPECT_EQ(bus_rows(28, spec), (std::vector<int>{1, 9, 17, 25}));
  spec.max_lanes = 2;
  EXPECT_EQ(bus_rows(28, spec), (std::vector<int>{1, 9}));
  spec.lane_offset = 30;
  EXPECT_TRUE(bus_rows(28, spec).empty());
}

TEST(BusRows, RejectsBadSpec) {
  BusSpec bad;
  bad.lane_period = 0;
  EXPECT_THROW(bus_rows(10, bad), InvalidInput);
}

TEST(WithBusLanes, RetypesOnlyClbTiles) {
  fpga::Fabric fabric = fpga::make_homogeneous(10, 12);
  fabric.set_column(4, fpga::ResourceType::kBram);
  BusSpec spec;
  spec.lane_period = 6;
  spec.lane_offset = 2;
  const fpga::Fabric with_bus = with_bus_lanes(fabric, spec);
  EXPECT_EQ(with_bus.at(0, 2), kBus);
  EXPECT_EQ(with_bus.at(9, 8), kBus);
  EXPECT_EQ(with_bus.at(4, 2), fpga::ResourceType::kBram);  // untouched
  EXPECT_EQ(with_bus.at(0, 3), kClb);                        // off-lane
  // The original is unmodified.
  EXPECT_EQ(fabric.at(0, 2), kClb);
}

TEST(WithBusAttachment, RetypesBottomRowLogic) {
  // 3x2 all-CLB module.
  const model::Module module(
      "m", {model::ModuleGenerator::make_column_shape(6, 0, 1, 2, 0)});
  const model::Module attached = with_bus_attachment(module, 0);
  ASSERT_EQ(attached.shape_count(), 1);
  const auto& shape = attached.shapes().front();
  EXPECT_EQ(shape.demand(static_cast<int>(kBus)), 3);
  EXPECT_EQ(shape.demand(static_cast<int>(kClb)), 3);
  EXPECT_EQ(shape.area(), 6);  // same tiles, different types
}

TEST(WithBusAttachment, KeepsDedicatedResources) {
  // BRAM column + CLB columns; BRAM cell in row 0 must stay BRAM.
  const model::Module module(
      "m", {model::ModuleGenerator::make_column_shape(6, 1, 2, 3, 0)});
  const model::Module attached = with_bus_attachment(module, 0);
  const auto& shape = attached.shapes().front();
  EXPECT_EQ(shape.demand(static_cast<int>(fpga::ResourceType::kBram)), 2);
  EXPECT_GT(shape.demand(static_cast<int>(kBus)), 0);
}

TEST(WithBusAttachment, RejectsNegativeAttachmentRow) {
  // 2x2 all-CLB module (height 2): a negative row is a model error, not
  // something to clamp to row 0.
  const model::Module module(
      "m", {model::ModuleGenerator::make_column_shape(4, 0, 1, 2, 0)});
  try {
    (void)with_bus_attachment(module, -1);
    FAIL() << "expected ModelError";
  } catch (const ModelError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("module m"), std::string::npos) << what;
    EXPECT_NE(what.find("shape 0"), std::string::npos) << what;
    EXPECT_NE(what.find("-1"), std::string::npos) << what;
  }
}

TEST(WithBusAttachment, RejectsAttachmentRowAtShapeHeight) {
  // Row indices are 0-based: row == height is the first out-of-range value.
  const model::Module module(
      "m", {model::ModuleGenerator::make_column_shape(4, 0, 1, 2, 0)});
  EXPECT_THROW((void)with_bus_attachment(module, 2), ModelError);
}

TEST(WithBusAttachment, RejectsAttachmentRowPastShapeHeight) {
  const model::Module module(
      "m", {model::ModuleGenerator::make_column_shape(4, 0, 1, 2, 0)});
  try {
    (void)with_bus_attachment(module, 99);
    FAIL() << "expected ModelError";
  } catch (const ModelError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("module m"), std::string::npos) << what;
    EXPECT_NE(what.find("99"), std::string::npos) << what;
  }
}

TEST(WithBusAttachment, TopRowAttachesWhenInsideEveryShape) {
  // The last in-range row (height - 1) still works.
  const model::Module module(
      "m", {model::ModuleGenerator::make_column_shape(4, 0, 1, 2, 0)});
  const model::Module attached = with_bus_attachment(module, 1);
  const auto& shape = attached.shapes().front();
  for (const auto& group : shape.typed()) {
    if (group.resource != static_cast<int>(kBus)) continue;
    for (const Point& p : group.cells.cells()) EXPECT_EQ(p.y, 1);
  }
}

TEST(WithBusAttachment, PlacementSticksToLanes) {
  // 24x14 device with lanes at rows 1 and 8; modules must anchor so their
  // bottom (attachment) row hits a lane.
  BusSpec spec;
  spec.lane_period = 7;
  spec.lane_offset = 1;
  auto fabric = std::make_shared<const fpga::Fabric>(
      with_bus_lanes(fpga::make_homogeneous(24, 14), spec));
  const fpga::PartialRegion region(fabric);

  model::GeneratorParams params;
  params.clb_min = 6;
  params.clb_max = 15;
  params.bram_blocks_max = 0;
  params.max_height = 5;
  model::ModuleGenerator generator(params, 3);
  const auto modules = with_bus_attachment(generator.generate_many(4), 0);

  placer::PlacerOptions options;
  options.time_limit_seconds = 2.0;
  const auto outcome = placer::Placer(region, modules, options).place();
  ASSERT_TRUE(outcome.solution.feasible);
  EXPECT_TRUE(placer::validate(region, modules, outcome.solution).ok());
  for (const auto& p : outcome.solution.placements) {
    EXPECT_TRUE(p.y == 1 || p.y == 8)
        << "module " << p.module << " not on a bus lane (y=" << p.y << ")";
  }
}

TEST(WithBusAttachment, UtilizationCostOfBusAlignment) {
  // The same workload on the same device, with and without the bus
  // constraint: alignment can only reduce (or keep) packing quality.
  auto plain_fabric =
      std::make_shared<const fpga::Fabric>(fpga::make_homogeneous(30, 14));
  BusSpec spec;
  spec.lane_period = 7;
  spec.lane_offset = 0;
  auto bus_fabric = std::make_shared<const fpga::Fabric>(
      with_bus_lanes(*plain_fabric, spec));

  model::GeneratorParams params;
  params.clb_min = 8;
  params.clb_max = 18;
  params.bram_blocks_max = 0;
  params.max_height = 6;
  model::ModuleGenerator generator(params, 11);
  const auto modules = generator.generate_many(5);
  const auto attached = with_bus_attachment(modules, 0);

  placer::PlacerOptions options;
  options.mode = placer::PlacerMode::kBranchAndBound;
  options.time_limit_seconds = 5.0;
  const fpga::PartialRegion plain_region(plain_fabric);
  const fpga::PartialRegion bus_region(bus_fabric);
  const auto free_outcome =
      placer::Placer(plain_region, modules, options).place();
  const auto bus_outcome =
      placer::Placer(bus_region, attached, options).place();
  ASSERT_TRUE(free_outcome.solution.feasible);
  if (bus_outcome.solution.feasible) {
    EXPECT_TRUE(placer::validate(bus_region, attached, bus_outcome.solution).ok());
    // Alignment restricts placements to a subset, so with both optima
    // proven the bus-constrained extent cannot be smaller.
    if (free_outcome.optimal && bus_outcome.optimal) {
      EXPECT_GE(bus_outcome.solution.extent, free_outcome.solution.extent);
    }
  }
}

TEST(WithBusAttachment, ModuleWithNoLogicOnRowThrows) {
  // A module that is pure BRAM cannot attach (no logic anywhere).
  const model::Module module(
      "mem_only",
      {geost::ShapeFootprint::from_typed(
          {geost::TypedCells{static_cast<int>(fpga::ResourceType::kBram),
                             CellSet({{0, 0}, {0, 1}})}})});
  EXPECT_THROW(with_bus_attachment(module, 0), ModelError);
}

}  // namespace
}  // namespace rr::comm
