// Unit tests for src/util: rng, stats, bitmatrix, strings, table, env.
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <set>

#include "util/bitmatrix.hpp"
#include "util/env.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/stopwatch.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace rr {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a() == b();
  EXPECT_LT(same, 4);
}

TEST(Rng, UniformIntStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const int v = rng.uniform_int(-3, 9);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 9);
  }
}

TEST(Rng, UniformIntSingletonRange) {
  Rng rng(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(Rng, UniformIntCoversRange) {
  Rng rng(3);
  std::set<int> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.uniform_int(0, 9));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, Uniform01InHalfOpenInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, BoundedIsRoughlyUniform) {
  Rng rng(5);
  std::map<std::uint64_t, int> histogram;
  const int trials = 30000;
  for (int i = 0; i < trials; ++i) ++histogram[rng.bounded(5)];
  for (const auto& [value, count] : histogram) {
    EXPECT_LT(value, 5u);
    EXPECT_NEAR(count, trials / 5, trials / 25);
  }
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(9);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(42);
  Rng child = a.split();
  Rng b(42);
  // The child must not replay the parent seed's stream.
  int same = 0;
  for (int i = 0; i < 64; ++i) same += child() == b();
  EXPECT_LT(same, 4);
}

TEST(RunningStats, MeanAndStddev) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, EmptyIsSafe) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.ci95_half_width(), 0.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats all, left, right;
  Rng rng(13);
  for (int i = 0; i < 200; ++i) {
    const double x = rng.uniform01() * 10;
    all.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(Summary, OrderStatistics) {
  const std::vector<double> sample{5, 1, 4, 2, 3};
  const Summary s = summarize(sample);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.p25, 2.0);
  EXPECT_DOUBLE_EQ(s.p75, 4.0);
}

TEST(Summary, PercentileInterpolates) {
  const std::vector<double> sorted{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile_sorted(sorted, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(sorted, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(sorted, 1.0), 10.0);
}

TEST(BitMatrix, SetGetClear) {
  BitMatrix m(4, 70);  // cols straddle a word boundary
  EXPECT_FALSE(m.get(2, 65));
  m.set(2, 65, true);
  EXPECT_TRUE(m.get(2, 65));
  EXPECT_EQ(m.popcount(), 1u);
  m.set(2, 65, false);
  EXPECT_EQ(m.popcount(), 0u);
}

TEST(BitMatrix, FillRespectsTailBits) {
  BitMatrix m(3, 70);
  m.fill();
  EXPECT_EQ(m.popcount(), 3u * 70u);
  EXPECT_EQ(m.row_popcount(1), 70u);
}

TEST(BitMatrix, IntersectsShifted) {
  BitMatrix big(8, 8);
  big.set(3, 3, true);
  BitMatrix small(2, 2);
  small.set(0, 0, true);
  EXPECT_TRUE(big.intersects_shifted(small, 3, 3));
  EXPECT_FALSE(big.intersects_shifted(small, 0, 0));
  EXPECT_TRUE(big.intersects_shifted(small, 2, 2) == false);
  small.set(1, 1, true);
  EXPECT_TRUE(big.intersects_shifted(small, 2, 2));
}

TEST(BitMatrix, IntersectsShiftedIgnoresOutOfRange) {
  BitMatrix big(4, 4);
  big.fill();
  BitMatrix small(2, 2);
  small.fill();
  EXPECT_TRUE(big.intersects_shifted(small, 3, 3));   // partial overlap
  EXPECT_FALSE(big.intersects_shifted(small, 4, 4));  // fully outside
  EXPECT_TRUE(big.intersects_shifted(small, -1, -1)); // partial, negative
  EXPECT_FALSE(big.intersects_shifted(small, -2, -2));
}

TEST(BitMatrix, CoversShifted) {
  BitMatrix big(6, 6);
  for (int r = 1; r <= 3; ++r)
    for (int c = 1; c <= 3; ++c) big.set(r, c, true);
  BitMatrix shape(2, 2);
  shape.fill();
  EXPECT_TRUE(big.covers_shifted(shape, 1, 1));
  EXPECT_TRUE(big.covers_shifted(shape, 2, 2));
  EXPECT_FALSE(big.covers_shifted(shape, 3, 3));
  EXPECT_FALSE(big.covers_shifted(shape, 0, 0));
  EXPECT_FALSE(big.covers_shifted(shape, 5, 5));  // out of range
}

TEST(BitMatrix, OrAndClearShifted) {
  BitMatrix grid(5, 5);
  BitMatrix shape(2, 3);
  shape.fill();
  grid.or_shifted(shape, 1, 2);
  EXPECT_EQ(grid.popcount(), 6u);
  EXPECT_TRUE(grid.get(1, 2));
  EXPECT_TRUE(grid.get(2, 4));
  grid.clear_shifted(shape, 1, 2);
  EXPECT_EQ(grid.popcount(), 0u);
}

TEST(BitMatrix, AndWithOrWith) {
  BitMatrix a(2, 2), b(2, 2);
  a.set(0, 0, true);
  a.set(1, 1, true);
  b.set(1, 1, true);
  BitMatrix c = a;
  c.and_with(b);
  EXPECT_EQ(c.popcount(), 1u);
  EXPECT_TRUE(c.get(1, 1));
  c.or_with(a);
  EXPECT_EQ(c.popcount(), 2u);
}

TEST(BitMatrix, ToStringPicture) {
  BitMatrix m(2, 3);
  m.set(0, 1, true);
  EXPECT_EQ(m.to_string(), ".#.\n...\n");
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  abc  "), "abc");
  EXPECT_EQ(trim("abc"), "abc");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(Strings, Split) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
}

TEST(Strings, SplitWs) {
  const auto parts = split_ws("  one\ttwo   three ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "two");
}

TEST(Strings, ParseInt) {
  EXPECT_EQ(parse_int("42"), 42);
  EXPECT_EQ(parse_int(" -7 "), -7);
  EXPECT_FALSE(parse_int("12x").has_value());
  EXPECT_FALSE(parse_int("").has_value());
  EXPECT_FALSE(parse_int("4.5").has_value());
}

TEST(Strings, ParseDouble) {
  EXPECT_DOUBLE_EQ(*parse_double("2.5"), 2.5);
  EXPECT_FALSE(parse_double("abc").has_value());
}

TEST(TextTable, RendersAlignedAndCsv) {
  TextTable table({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row({"b", "22"});
  const std::string text = table.to_string();
  EXPECT_NE(text.find("| alpha | 1  "), std::string::npos);
  const std::string csv = table.to_csv();
  EXPECT_NE(csv.find("name,value\nalpha,1\nb,22\n"), std::string::npos);
}

TEST(TextTable, CsvEscapesCommas) {
  TextTable table({"a"});
  table.add_row({"x,y"});
  EXPECT_NE(table.to_csv().find("\"x,y\""), std::string::npos);
}

TEST(TextTable, RejectsArityMismatch) {
  TextTable table({"a", "b"});
  EXPECT_THROW(table.add_row({"only one"}), InvalidInput);
}

TEST(TextTable, NumberFormatting) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::pct(0.6543, 1), "65.4%");
}

TEST(Env, FallbacksAndParsing) {
  ::unsetenv("RRPLACE_TEST_ENV");
  EXPECT_EQ(env_int("RRPLACE_TEST_ENV", 5), 5);
  ::setenv("RRPLACE_TEST_ENV", "12", 1);
  EXPECT_EQ(env_int("RRPLACE_TEST_ENV", 5), 12);
  ::setenv("RRPLACE_TEST_ENV", "oops", 1);
  EXPECT_EQ(env_int("RRPLACE_TEST_ENV", 5), 5);
  ::setenv("RRPLACE_TEST_ENV", "2.5", 1);
  EXPECT_DOUBLE_EQ(env_double("RRPLACE_TEST_ENV", 0.0), 2.5);
  EXPECT_EQ(env_string("RRPLACE_TEST_ENV", "d"), "2.5");
  ::unsetenv("RRPLACE_TEST_ENV");
}

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch w;
  EXPECT_GE(w.seconds(), 0.0);
}

TEST(Deadline, UnlimitedNeverExpires) {
  Deadline d;
  EXPECT_TRUE(d.unlimited());
  EXPECT_FALSE(d.expired());
}

TEST(Deadline, ZeroBudgetMeansUnlimited) {
  Deadline d(0.0);
  EXPECT_TRUE(d.unlimited());
}

TEST(Deadline, TinyBudgetExpires) {
  Deadline d(1e-9);
  // Allow the clock a moment to pass the deadline.
  while (!d.expired()) {
  }
  EXPECT_TRUE(d.expired());
}

TEST(Deadline, HugeBudgetDoesNotOverflowIntoThePast) {
  // Regression: duration_cast from a double-seconds budget overflowed the
  // clock representation, wrapping end_ into the past so the deadline was
  // born expired. Saturating budgets must behave like "practically
  // unlimited" instead.
  for (const double budget : {1e12, 1e18, 1e30, 4e17 /* ~2^62 ns */}) {
    Deadline d(budget);
    EXPECT_FALSE(d.unlimited()) << budget;
    EXPECT_FALSE(d.expired()) << budget;
    EXPECT_GT(d.remaining_seconds(), 1e6) << budget;
  }
}

TEST(Deadline, ModerateBudgetStillExact) {
  Deadline d(3600.0);
  EXPECT_FALSE(d.expired());
  EXPECT_GT(d.remaining_seconds(), 3590.0);
  EXPECT_LT(d.remaining_seconds(), 3601.0);
}

}  // namespace
}  // namespace rr
