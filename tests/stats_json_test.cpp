// End-to-end stats document tests: a real solve through the Placer must
// produce an rrplace-stats-v1 document with every documented key, non-zero
// per-kind propagator buckets when metrics are enabled, and a dump that
// survives a parse round trip.
#include <gtest/gtest.h>

#include "cp/constraints.hpp"
#include "cp/space.hpp"
#include "fpga/builders.hpp"
#include "model/generator.hpp"
#include "placer/placer.hpp"
#include "placer/stats_json.hpp"
#include "util/metrics.hpp"

namespace rr::placer {
namespace {

using model::Module;
using model::ModuleGenerator;

std::shared_ptr<fpga::PartialRegion> homogeneous_region(int w, int h) {
  auto fabric =
      std::make_shared<const fpga::Fabric>(fpga::make_homogeneous(w, h));
  return std::make_shared<fpga::PartialRegion>(fabric);
}

Module rect_module(const std::string& name, int w, int h) {
  return Module(name, {ModuleGenerator::make_column_shape(w * h, 0, 1, h, 0)});
}

/// Restores the global metrics switch when a test exits.
class MetricsSwitchGuard {
 public:
  MetricsSwitchGuard() : was_(metrics::enabled()) {}
  ~MetricsSwitchGuard() { metrics::set_enabled(was_); }

 private:
  bool was_;
};

PlacementOutcome solve_sample(const fpga::PartialRegion& region,
                              const std::vector<Module>& modules) {
  PlacerOptions options;
  options.time_limit_seconds = 5.0;
  options.seed = 7;
  Placer placer(region, modules, options);
  return placer.place();
}

TEST(StatsJson, DocumentHasAllDocumentedKeys) {
  MetricsSwitchGuard guard;
  metrics::set_enabled(true);
  const auto region = homogeneous_region(8, 4);
  const std::vector<Module> modules{rect_module("a", 2, 2),
                                    rect_module("b", 3, 2),
                                    rect_module("c", 2, 3)};
  const PlacementOutcome outcome = solve_sample(*region, modules);
  ASSERT_TRUE(outcome.solution.feasible);

  json::Value config = json::Value::object();
  config.set("seed", json::Value(7));
  const json::Value doc =
      solve_stats_json(*region, modules, outcome, "stats_json_test",
                       std::move(config));

  EXPECT_EQ(doc.at("schema").as_string(), "rrplace-stats-v1");
  EXPECT_EQ(doc.at("tool").as_string(), "stats_json_test");
  EXPECT_EQ(doc.at("config").at("seed").as_number(), 7.0);

  const json::Value& search = doc.at("search");
  for (const char* key : {"nodes", "fails", "solutions", "max_depth",
                          "restarts"}) {
    EXPECT_TRUE(search.at(key).is_number()) << key;
  }
  EXPECT_TRUE(search.at("complete").is_bool());
  EXPECT_GT(search.at("nodes").as_number(), 0.0);

  const json::Value& space = doc.at("space");
  EXPECT_GT(space.at("propagations").as_number(), 0.0);
  EXPECT_TRUE(space.at("domain_changes").is_number());

  // Every PropKind gets a bucket, present even at zero.
  const json::Value& propagators = doc.at("propagators");
  EXPECT_EQ(propagators.members().size(),
            static_cast<std::size_t>(cp::kNumPropKinds));
  for (int k = 0; k < cp::kNumPropKinds; ++k) {
    const char* name = cp::prop_kind_name(static_cast<cp::PropKind>(k));
    ASSERT_TRUE(propagators.contains(name)) << name;
    const json::Value& bucket = propagators.at(name);
    for (const char* key : {"runs", "failures", "prunings", "seconds"}) {
      EXPECT_TRUE(bucket.at(key).is_number()) << name << "." << key;
    }
  }
  // The placement model always posts the geost non-overlap propagator and
  // one element constraint per module; with metrics enabled their runs and
  // time must have been attributed to the right buckets — a propagation
  // engine swap must never make a kind's bucket vanish.
#ifndef RRPLACE_DISABLE_METRICS
  EXPECT_GT(propagators.at("geost-nonoverlap").at("runs").as_number(), 0.0);
  EXPECT_GT(propagators.at("element").at("runs").as_number(), 0.0);
  EXPECT_GT(propagators.at("element").at("seconds").as_number(), 0.0);
#endif

  EXPECT_TRUE(doc.at("incumbents").is_array());

  const json::Value& result = doc.at("result");
  EXPECT_TRUE(result.at("feasible").as_bool());
  EXPECT_GT(result.at("extent").as_number(), 0.0);
  EXPECT_TRUE(result.at("optimal").is_bool());
  EXPECT_GE(result.at("seconds").as_number(), 0.0);
  const double utilization = result.at("utilization").as_number();
  EXPECT_GT(utilization, 0.0);
  EXPECT_LE(utilization, 1.0);

  EXPECT_EQ(doc.at("modules").at("count").as_number(), 3.0);
  EXPECT_EQ(doc.at("modules").at("alternatives_per_module").size(), 3u);

  EXPECT_TRUE(doc.at("metrics").at("counters").is_object());
  EXPECT_TRUE(doc.at("metrics").at("timers").is_object());
}

TEST(StatsJson, DumpRoundTripsThroughParse) {
  MetricsSwitchGuard guard;
  metrics::set_enabled(true);
  const auto region = homogeneous_region(6, 4);
  const std::vector<Module> modules{rect_module("a", 2, 2),
                                    rect_module("b", 2, 2)};
  const PlacementOutcome outcome = solve_sample(*region, modules);
  const json::Value doc =
      solve_stats_json(*region, modules, outcome, "stats_json_test");
  const json::Value parsed = json::parse(doc.dump(2));
  EXPECT_EQ(parsed.dump(), doc.dump());
  EXPECT_EQ(parsed.at("schema").as_string(), "rrplace-stats-v1");
  // An omitted config collapses to an empty object, never null.
  EXPECT_TRUE(parsed.at("config").is_object());
}

TEST(StatsJson, DisabledMetricsStillProducesValidDocument) {
  MetricsSwitchGuard guard;
  metrics::set_enabled(false);
  const auto region = homogeneous_region(6, 4);
  const std::vector<Module> modules{rect_module("a", 2, 2)};
  const PlacementOutcome outcome = solve_sample(*region, modules);
  const json::Value doc =
      solve_stats_json(*region, modules, outcome, "stats_json_test");
  // The schema keeps its shape; the per-kind buckets just stay at zero.
  EXPECT_EQ(doc.at("propagators").members().size(),
            static_cast<std::size_t>(cp::kNumPropKinds));
  EXPECT_EQ(doc.at("propagators").at("geost-nonoverlap").at("runs")
                .as_number(),
            0.0);
  EXPECT_GT(doc.at("search").at("nodes").as_number(), 0.0);
  EXPECT_GT(doc.at("space").at("propagations").as_number(), 0.0);
}

// Both the compact and the scanning engines must attribute their work to
// the same kTable / kElement buckets: the engine toggle is a performance
// switch, never a metrics schema change.
TEST(StatsJson, TableAndElementBucketsAttributedByBothEngines) {
#ifndef RRPLACE_DISABLE_METRICS
  MetricsSwitchGuard guard;
  metrics::set_enabled(true);
  for (const bool compact : {false, true}) {
    cp::Space space;
    const cp::VarId x = space.new_var(0, 15);
    const cp::VarId y = space.new_var(0, 15);
    std::vector<std::vector<int>> tuples;
    for (int a = 0; a < 16; ++a)
      for (int b = 0; b < 16; ++b)
        if ((a + b) % 3 == 0) tuples.push_back({a, b});
    const std::vector<cp::VarId> scope{x, y};
    cp::post_table(space, scope, std::move(tuples),
                   cp::TableOptions{compact});
    std::vector<int> table(16);
    for (int i = 0; i < 16; ++i) table[i] = (i * 7) % 11;
    const cp::VarId index = space.new_var(0, 15);
    const cp::VarId result = space.new_var(0, 15);
    cp::post_element(space, table, index, result,
                     cp::ElementOptions{compact});
    ASSERT_TRUE(space.propagate());
    space.push();
    space.remove(x, 3);
    space.set_max(result, 5);
    ASSERT_TRUE(space.propagate());

    const json::Value doc = space_stats_json(space.stats());
    const json::Value& propagators = doc.at("propagators");
    for (const char* kind : {"table", "element"}) {
      EXPECT_GT(propagators.at(kind).at("runs").as_number(), 0.0)
          << kind << " compact=" << compact;
      EXPECT_GT(propagators.at(kind).at("seconds").as_number(), 0.0)
          << kind << " compact=" << compact;
    }
  }
#endif
}

TEST(StatsJson, SearchStatsJsonMatchesInputs) {
  cp::SearchStats stats;
  stats.nodes = 12;
  stats.fails = 4;
  stats.solutions = 2;
  stats.max_depth = 6;
  stats.restarts = 3;
  stats.complete = true;
  const json::Value doc = search_stats_json(stats);
  EXPECT_EQ(doc.at("nodes").as_number(), 12.0);
  EXPECT_EQ(doc.at("fails").as_number(), 4.0);
  EXPECT_EQ(doc.at("solutions").as_number(), 2.0);
  EXPECT_EQ(doc.at("max_depth").as_number(), 6.0);
  EXPECT_EQ(doc.at("restarts").as_number(), 3.0);
  EXPECT_TRUE(doc.at("complete").as_bool());
}

}  // namespace
}  // namespace rr::placer
