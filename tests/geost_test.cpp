// geost kernel tests: footprints, resource-aware anchors, placement
// tables, polymorphic objects and the non-overlap propagator.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <random>

#include "cp/search.hpp"
#include "cp_test_utils.hpp"
#include "geost/nonoverlap.hpp"
#include "geost/object.hpp"

namespace rr::geost {
namespace {

constexpr int kClb = 0;
constexpr int kBram = 1;

ShapeFootprint rect_shape(int w, int h, int resource = kClb) {
  std::vector<Point> cells;
  for (int x = 0; x < w; ++x)
    for (int y = 0; y < h; ++y) cells.push_back({x, y});
  return ShapeFootprint::from_typed(
      {TypedCells{resource, CellSet(std::move(cells), false)}});
}

/// 2x2 shape: left column BRAM, right column CLB.
ShapeFootprint mixed_shape() {
  return ShapeFootprint::from_typed(
      {TypedCells{kClb, CellSet({{1, 0}, {1, 1}}, false)},
       TypedCells{kBram, CellSet({{0, 0}, {0, 1}}, false)}});
}

/// Masks for a width x height all-CLB region, with optional BRAM columns.
std::vector<BitMatrix> region_masks(int width, int height,
                                    const std::vector<int>& bram_columns = {}) {
  std::vector<BitMatrix> masks(2, BitMatrix(height, width));
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      const bool is_bram =
          std::find(bram_columns.begin(), bram_columns.end(), x) !=
          bram_columns.end();
      masks[is_bram ? kBram : kClb].set(y, x, true);
    }
  }
  return masks;
}

TEST(ShapeFootprint, JointNormalization) {
  // Groups placed away from the origin normalize jointly, preserving the
  // relative offset between resource groups.
  const ShapeFootprint fp = ShapeFootprint::from_typed(
      {TypedCells{kClb, CellSet({{5, 5}}, false)},
       TypedCells{kBram, CellSet({{6, 5}, {6, 6}}, false)}});
  EXPECT_EQ(fp.bounding_box(), (Rect{0, 0, 2, 2}));
  EXPECT_EQ(fp.area(), 3);
  EXPECT_TRUE(fp.all_cells().contains(Point{0, 0}));   // the CLB
  EXPECT_TRUE(fp.all_cells().contains(Point{1, 0}));
  EXPECT_TRUE(fp.all_cells().contains(Point{1, 1}));
  EXPECT_EQ(fp.demand(kClb), 1);
  EXPECT_EQ(fp.demand(kBram), 2);
  EXPECT_EQ(fp.demand(99), 0);
}

TEST(ShapeFootprint, MergesGroupsOfSameResource) {
  const ShapeFootprint fp = ShapeFootprint::from_typed(
      {TypedCells{kClb, CellSet({{0, 0}})},
       TypedCells{kClb, CellSet({{1, 0}}, false)}});
  EXPECT_EQ(fp.typed().size(), 1u);
  EXPECT_EQ(fp.demand(kClb), 2);
}

TEST(ShapeFootprint, RejectsOverlappingGroups) {
  EXPECT_THROW(ShapeFootprint::from_typed(
                   {TypedCells{kClb, CellSet({{0, 0}})},
                    TypedCells{kBram, CellSet({{0, 0}})}}),
               InvalidInput);
}

TEST(ShapeFootprint, RejectsEmpty) {
  EXPECT_THROW(ShapeFootprint::from_typed({}), InvalidInput);
  EXPECT_THROW(ShapeFootprint::from_typed(
                   {TypedCells{kClb, CellSet(std::vector<Point>{})}}),
               InvalidInput);
}

TEST(ShapeFootprint, MaskMatchesCells) {
  const ShapeFootprint fp = mixed_shape();
  EXPECT_EQ(fp.mask().popcount(), 4u);
  EXPECT_TRUE(fp.mask().get(0, 0));
  EXPECT_TRUE(fp.mask().get(1, 1));
}

TEST(ValidAnchors, HomogeneousRegionGivesFullGrid) {
  const auto masks = region_masks(5, 4);
  const auto anchors = compute_valid_anchors(masks, rect_shape(2, 2));
  // (5-2+1) x (4-2+1) = 12 anchors.
  EXPECT_EQ(anchors.size(), 12u);
  EXPECT_EQ(anchors.front(), (Point{0, 0}));
  EXPECT_EQ(anchors.back(), (Point{3, 2}));
}

TEST(ValidAnchors, ResourceTypesRestrictPlacement) {
  // BRAM column at x=2 in a 6x2 region; the mixed 2x2 shape needs its BRAM
  // column on x=2, so the only anchor is (2,0).
  const auto masks = region_masks(6, 2, {2});
  const auto anchors = compute_valid_anchors(masks, mixed_shape());
  ASSERT_EQ(anchors.size(), 1u);
  EXPECT_EQ(anchors[0], (Point{2, 0}));
}

TEST(ValidAnchors, ClbShapesAvoidBramColumns) {
  const auto masks = region_masks(6, 1, {2});
  const auto anchors = compute_valid_anchors(masks, rect_shape(2, 1));
  // Valid x: 0 (cols 0-1), 3 (3-4), 4 (4-5). x=1,2 touch the BRAM column.
  std::vector<int> xs;
  for (const Point& a : anchors) xs.push_back(a.x);
  EXPECT_EQ(xs, (std::vector<int>{0, 3, 4}));
}

TEST(ValidAnchors, ShapeLargerThanRegionHasNone) {
  const auto masks = region_masks(3, 3);
  EXPECT_TRUE(compute_valid_anchors(masks, rect_shape(4, 1)).empty());
}

TEST(ValidAnchors, UnknownResourceHasNone) {
  const auto masks = region_masks(3, 3);
  EXPECT_TRUE(compute_valid_anchors(masks, rect_shape(1, 1, /*resource=*/7))
                  .empty());
}

TEST(PlacementTable, SortedByExtentThenXThenY) {
  std::vector<ShapeFootprint> shapes{rect_shape(2, 1), rect_shape(1, 2)};
  const std::vector<std::vector<Point>> anchors{
      {{0, 0}, {1, 0}},  // wide shape: extents 2, 3
      {{0, 0}, {0, 1}},  // narrow shape: extent 1
  };
  const auto table = sorted_placement_table(shapes, anchors);
  ASSERT_EQ(table.size(), 4u);
  EXPECT_EQ(table[0].shape, 1);  // extent 1 first
  EXPECT_EQ(table[1].shape, 1);
  EXPECT_EQ(table[0].y, 0);
  EXPECT_EQ(table[1].y, 1);
  EXPECT_EQ(table[2].shape, 0);  // extent 2
  EXPECT_EQ(table[3].shape, 0);  // extent 3
}

TEST(GeostObjectTest, ExtentAndBBox) {
  cp::Space space;
  auto shapes = std::make_shared<std::vector<ShapeFootprint>>();
  shapes->push_back(rect_shape(3, 2));
  const std::vector<std::vector<Point>> anchors{{{1, 2}, {0, 0}}};
  const GeostObject object = make_object(space, shapes, anchors);
  ASSERT_EQ(object.table().size(), 2u);
  EXPECT_EQ(object.extent_x_of(0), 3);  // anchor (0,0)
  EXPECT_EQ(object.extent_x_of(1), 4);  // anchor (1,2)
  EXPECT_EQ(object.bbox_of(1), (Rect{1, 2, 3, 2}));
  EXPECT_EQ(object.extent_table(), (std::vector<int>{3, 4}));
  EXPECT_EQ(object.min_area(), 6);
}

TEST(GeostObjectTest, EmptyTableFailsSpace) {
  cp::Space space;
  auto shapes = std::make_shared<std::vector<ShapeFootprint>>();
  shapes->push_back(rect_shape(2, 2));
  const std::vector<std::vector<Point>> anchors{{}};
  const GeostObject object = make_object(space, shapes, anchors);
  EXPECT_TRUE(object.table().empty());
  EXPECT_TRUE(space.failed());
}

// --- Non-overlap propagator --------------------------------------------------

struct TwoObjects {
  cp::Space space;
  GeostObject a, b;
};

/// Two 2x2 CLB squares on a width x height all-CLB region.
std::unique_ptr<TwoObjects> two_squares(int width, int height,
                                        const NonOverlapOptions& options = {}) {
  auto setup = std::make_unique<TwoObjects>();
  auto shapes = std::make_shared<std::vector<ShapeFootprint>>();
  shapes->push_back(rect_shape(2, 2));
  const auto masks = region_masks(width, height);
  const std::vector<std::vector<Point>> anchors{
      compute_valid_anchors(masks, shapes->front())};
  setup->a = make_object(setup->space, shapes, anchors);
  setup->b = make_object(setup->space, shapes, anchors);
  post_non_overlap(setup->space, {setup->a, setup->b}, width, height, options);
  return setup;
}

TEST(NonOverlap, AssignedObjectPrunesOthers) {
  auto setup = two_squares(4, 2);
  // 3 anchors each: x in {0,1,2}.
  setup->space.assign(setup->a.var(), 0);  // occupies x 0-1
  ASSERT_TRUE(setup->space.propagate());
  // b can only be at x=2 (anchor index 2).
  EXPECT_TRUE(setup->space.assigned(setup->b.var()));
  EXPECT_EQ(setup->space.value(setup->b.var()), 2);
}

TEST(NonOverlap, DetectsAssignedConflict) {
  auto setup = two_squares(4, 2);
  setup->space.assign(setup->a.var(), 1);
  setup->space.assign(setup->b.var(), 1);
  EXPECT_FALSE(setup->space.propagate());
}

TEST(NonOverlap, CompulsoryPartsPruneWithoutAssignment) {
  // Region 5x2; object a restricted to anchors {1, 2}: both placements
  // cover column 2, so its compulsory part is column 2 (both rows).
  auto setup = two_squares(5, 2, {});
  setup->space.remove(setup->a.var(), 0);
  setup->space.set_max(setup->a.var(), 2);  // dom(a) = {1, 2}
  ASSERT_TRUE(setup->space.propagate());
  // b at x=1 or x=2 would touch column 2 -> must be pruned by the
  // compulsory part even though a is unassigned.
  EXPECT_FALSE(setup->space.dom(setup->b.var()).contains(1));
  EXPECT_FALSE(setup->space.dom(setup->b.var()).contains(2));
  EXPECT_TRUE(setup->space.dom(setup->b.var()).contains(0));
  EXPECT_TRUE(setup->space.dom(setup->b.var()).contains(3));
}

TEST(NonOverlap, ForwardCheckingModeSkipsCompulsoryParts) {
  NonOverlapOptions options;
  options.use_compulsory_parts = false;
  auto setup = two_squares(5, 2, options);
  setup->space.remove(setup->a.var(), 0);
  setup->space.set_max(setup->a.var(), 2);
  ASSERT_TRUE(setup->space.propagate());
  // Weaker propagation: b keeps the conflicting values until a is assigned.
  EXPECT_TRUE(setup->space.dom(setup->b.var()).contains(1));
}

TEST(NonOverlap, SearchEnumeratesExactlyNonOverlappingPlacements) {
  // 4x2 region, two 2x2 squares, anchors x in {0,1,2}: valid pairs are
  // (0,2) and (2,0).
  auto setup = two_squares(4, 2);
  const auto solutions = cp::testing::solve_all(
      setup->space, {setup->a.var(), setup->b.var()});
  EXPECT_EQ(solutions.size(), 2u);
  for (const auto& sol : solutions)
    EXPECT_EQ(std::abs(sol[0] - sol[1]), 2);
}

TEST(NonOverlap, PolymorphicShapesChooseCompatibleAlternative) {
  // Region 4x2. Object a fixed 2x2 at x=0. Object b is polymorphic:
  // a 3x1 bar (fits only at y rows but needs x<=1 impossible) or a 2x2
  // square (fits at x=2).
  cp::Space space;
  const auto masks = region_masks(4, 2);
  auto shapes_a = std::make_shared<std::vector<ShapeFootprint>>();
  shapes_a->push_back(rect_shape(2, 2));
  auto shapes_b = std::make_shared<std::vector<ShapeFootprint>>();
  shapes_b->push_back(rect_shape(3, 1));
  shapes_b->push_back(rect_shape(2, 2));
  std::vector<std::vector<Point>> anchors_a{
      compute_valid_anchors(masks, shapes_a->front())};
  std::vector<std::vector<Point>> anchors_b{
      compute_valid_anchors(masks, (*shapes_b)[0]),
      compute_valid_anchors(masks, (*shapes_b)[1])};
  GeostObject a = make_object(space, shapes_a, anchors_a);
  GeostObject b = make_object(space, shapes_b, anchors_b);
  post_non_overlap(space, {a, b}, 4, 2);
  space.assign(a.var(), 0);  // 2x2 at x=0
  ASSERT_TRUE(space.propagate());
  // Every remaining placement of b must be the square shape at x=2.
  space.dom(b.var()).for_each([&](int v) {
    EXPECT_EQ(b.placement(v).shape, 1);
    EXPECT_EQ(b.placement(v).x, 2);
  });
  EXPECT_GT(space.dom(b.var()).size(), 0);
}

// Property sweep: on a W x H all-CLB region, the engine must enumerate
// exactly the set of non-overlapping (a, b) anchor pairs for two 2x2
// squares, for every region size — counted independently by brute force.
class NonOverlapSweepTest
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(NonOverlapSweepTest, SolutionCountMatchesBruteForce) {
  const auto [width, height] = GetParam();
  auto setup = two_squares(width, height);
  if (setup->space.failed()) {
    // No anchors at all (region smaller than the shape): nothing to check.
    GTEST_SKIP();
  }
  const auto solutions = cp::testing::solve_all(
      setup->space, {setup->a.var(), setup->b.var()});

  // Brute force over anchor pairs.
  const auto& table = setup->a.table();
  std::size_t expected = 0;
  for (const Placement& pa : table) {
    for (const Placement& pb : table) {
      const bool overlap = std::abs(pa.x - pb.x) < 2 &&
                           std::abs(pa.y - pb.y) < 2;
      expected += !overlap;
    }
  }
  EXPECT_EQ(solutions.size(), expected)
      << "region " << width << "x" << height;
}

INSTANTIATE_TEST_SUITE_P(
    Regions, NonOverlapSweepTest,
    ::testing::Values(std::pair{4, 2}, std::pair{5, 2}, std::pair{6, 3},
                      std::pair{4, 4}, std::pair{7, 3}, std::pair{2, 2},
                      std::pair{8, 2}, std::pair{5, 5}),
    [](const auto& info) {
      return std::to_string(info.param.first) + "x" +
             std::to_string(info.param.second);
    });

// --- Differential test: incremental engine vs from-scratch oracle ------------

struct DiffSetup {
  cp::Space space;
  std::vector<GeostObject> objects;
};

/// Four polymorphic objects (square / bar / mixed CLB+BRAM) on an 8x5
/// region with a BRAM column, under the given engine options.
std::unique_ptr<DiffSetup> diff_setup(const NonOverlapOptions& options) {
  constexpr int kWidth = 8, kHeight = 5;
  auto setup = std::make_unique<DiffSetup>();
  const auto masks = region_masks(kWidth, kHeight, {3});
  auto shapes = std::make_shared<std::vector<ShapeFootprint>>();
  shapes->push_back(rect_shape(2, 2));
  shapes->push_back(rect_shape(3, 1));
  shapes->push_back(mixed_shape());
  std::vector<std::vector<Point>> anchors;
  for (const ShapeFootprint& shape : *shapes)
    anchors.push_back(compute_valid_anchors(masks, shape));
  for (int i = 0; i < 4; ++i)
    setup->objects.push_back(make_object(setup->space, shapes, anchors));
  post_non_overlap(setup->space, setup->objects, kWidth, kHeight, options);
  return setup;
}

// Random push/assign/remove/pop walks through both engines side by side:
// at every step the fail verdicts must agree, and whenever neither space
// failed, every domain must be identical. This is the soundness *and*
// completeness check for the incremental kernel — a missed pruning or an
// over-pruning after backtracking both show up as a domain divergence.
TEST(NonOverlapDifferential, RandomWalksMatchFromScratchOracle) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    NonOverlapOptions incremental_options;
    incremental_options.incremental = true;
    incremental_options.compulsory_threshold = 64;  // soft parts everywhere
    NonOverlapOptions scratch_options = incremental_options;
    scratch_options.incremental = false;

    auto incr = diff_setup(incremental_options);
    auto scratch = diff_setup(scratch_options);
    std::mt19937 rng(static_cast<unsigned>(seed * 7919 + 1));

    const auto domains_match = [&]() {
      for (std::size_t i = 0; i < incr->objects.size(); ++i) {
        const cp::Domain& da = incr->space.dom(incr->objects[i].var());
        const cp::Domain& db = scratch->space.dom(scratch->objects[i].var());
        if (!(da == db)) return false;
      }
      return true;
    };
    const auto random_value = [&](const cp::Domain& dom) {
      std::vector<int> values;
      dom.for_each([&](int v) { values.push_back(v); });
      return values[rng() % values.size()];
    };

    ASSERT_EQ(incr->space.propagate(), scratch->space.propagate());
    ASSERT_TRUE(domains_match()) << "seed " << seed << " at root";

    int depth = 0;
    for (int step = 0; step < 150; ++step) {
      const unsigned op = rng() % 4;
      if (op == 3) {  // pop
        if (depth == 0) continue;
        incr->space.pop();
        scratch->space.pop();
        --depth;
        ASSERT_TRUE(domains_match())
            << "seed " << seed << " step " << step << " after pop";
        continue;
      }
      // Pick a still-open object (walk ends when everything is assigned).
      std::vector<std::size_t> open;
      for (std::size_t i = 0; i < incr->objects.size(); ++i)
        if (!incr->space.assigned(incr->objects[i].var())) open.push_back(i);
      if (open.empty()) break;
      const std::size_t obj = open[rng() % open.size()];
      const cp::VarId va = incr->objects[obj].var();
      const cp::VarId vb = scratch->objects[obj].var();
      const int value = random_value(incr->space.dom(va));

      incr->space.push();
      scratch->space.push();
      ++depth;
      if (op == 0) {  // assign
        incr->space.assign(va, value);
        scratch->space.assign(vb, value);
      } else {  // remove one value (op 1 and 2: removals twice as likely)
        incr->space.remove(va, value);
        scratch->space.remove(vb, value);
      }
      const bool ok_a = incr->space.propagate();
      const bool ok_b = scratch->space.propagate();
      ASSERT_EQ(ok_a, ok_b)
          << "seed " << seed << " step " << step << " op " << op << " obj "
          << obj << " value " << value;
      if (!ok_a) {
        incr->space.pop();
        scratch->space.pop();
        --depth;
        continue;
      }
      ASSERT_TRUE(domains_match())
          << "seed " << seed << " step " << step << " op " << op << " obj "
          << obj << " value " << value;
    }
  }
}

// Both engines must enumerate the identical solution set under real search.
TEST(NonOverlapDifferential, SearchFindsIdenticalSolutionSets) {
  NonOverlapOptions incremental_options;
  incremental_options.incremental = true;
  NonOverlapOptions scratch_options;
  scratch_options.incremental = false;
  auto incr = diff_setup(incremental_options);
  auto scratch = diff_setup(scratch_options);
  std::vector<cp::VarId> vars_a, vars_b;
  for (const GeostObject& o : incr->objects) vars_a.push_back(o.var());
  for (const GeostObject& o : scratch->objects) vars_b.push_back(o.var());
  EXPECT_EQ(cp::testing::solve_all(incr->space, vars_a),
            cp::testing::solve_all(scratch->space, vars_b));
}

TEST(NonOverlap, SubsumedWhenAllPlaced) {
  auto setup = two_squares(6, 2);
  setup->space.push();
  setup->space.assign(setup->a.var(), 0);
  setup->space.assign(setup->b.var(), 4);  // x=4? anchors x in 0..4
  ASSERT_TRUE(setup->space.propagate());
  // No direct observable for subsumption; re-propagating must stay happy.
  ASSERT_TRUE(setup->space.propagate());
  setup->space.pop();
  ASSERT_TRUE(setup->space.propagate());
}

}  // namespace
}  // namespace rr::geost
