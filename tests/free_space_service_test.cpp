// Concurrent differential for the free-space index inside the service:
// tenant pairs run the SAME deterministic churn script (places, removes,
// fault injections, scrubs), one arm answering admission from the
// incremental maximal-empty-rectangle index and the other from the
// occupancy-bitmap sweep. All tenants are driven by concurrent submitter
// threads over a shared worker pool and solve-context cache, so index
// maintenance (occupy/release/set_available on fault) runs under real
// interleavings — the `concurrent` ctest label puts this under the TSan CI
// leg. Responses must be bit-identical between the arms of every pair.
#include <gtest/gtest.h>

#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "fpga/builders.hpp"
#include "model/generator.hpp"
#include "service/service.hpp"
#include "util/rng.hpp"

namespace rr::service {
namespace {

using model::Module;
using model::ModuleGenerator;

constexpr int kPairs = 4;
constexpr int kWorkers = 4;
constexpr int kRequestsPerTenant = 120;
constexpr int kFabricW = 12;
constexpr int kFabricH = 6;

std::vector<Module> pair_library() {
  std::vector<Module> lib;
  lib.push_back(Module("s1", {ModuleGenerator::make_column_shape(1, 0, 1, 1, 0)}));
  lib.push_back(Module("s4", {ModuleGenerator::make_column_shape(4, 0, 1, 2, 0),
                              ModuleGenerator::make_column_shape(4, 0, 1, 4, 0)}));
  lib.push_back(Module("s6", {ModuleGenerator::make_column_shape(6, 0, 1, 3, 0),
                              ModuleGenerator::make_column_shape(6, 0, 1, 2, 0)}));
  return lib;
}

/// Deterministic per-pair churn script (both arms of a pair replay the
/// same one, with only the tenant id differing at submit time).
std::vector<Request> pair_script(int pair) {
  Rng rng(0xF5D1FFULL + static_cast<std::uint64_t>(pair) * 6151);
  std::vector<Request> script;
  std::vector<int> live;
  int next_instance = 0;
  for (int i = 0; i < kRequestsPerTenant; ++i) {
    Request request;
    if (rng.chance(0.05)) {
      request.op = RequestOp::kFault;
      if (rng.chance(0.4)) {
        request.fault.op = fpga::FaultEvent::Op::kRepairTransient;
      } else {
        request.fault.op = fpga::FaultEvent::Op::kTile;
        request.fault.kind = fpga::FaultKind::kTransient;
        request.fault.rect = Rect{rng.uniform_int(0, kFabricW - 1),
                                  rng.uniform_int(0, kFabricH - 1), 1, 1};
      }
    } else if (!live.empty() && rng.chance(0.45)) {
      request.op = RequestOp::kRemove;
      const std::size_t pick = rng.pick_index(live);
      request.instance = live[pick];
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    } else {
      request.op = RequestOp::kPlace;
      request.instance = next_instance++;
      request.module = rng.uniform_int(0, 2);
      live.push_back(request.instance);
    }
    script.push_back(request);
  }
  return script;
}

TEST(FreeSpaceService, IndexAndSweepTenantsAgreeUnderConcurrentChurn) {
  const auto fabric = std::make_shared<const fpga::Fabric>(
      fpga::make_homogeneous(kFabricW, kFabricH));

  std::vector<std::vector<Request>> scripts;
  scripts.reserve(kPairs);
  for (int p = 0; p < kPairs; ++p) scripts.push_back(pair_script(p));

  // Tenant 2p is the index arm, 2p+1 the sweep arm of pair p. All policies
  // get coverage across the pairs.
  const AnchorPolicy policies[] = {AnchorPolicy::kFirstFit,
                                   AnchorPolicy::kBestFit,
                                   AnchorPolicy::kBottomLeft};
  std::vector<Tenant::Config> configs;
  configs.reserve(2 * kPairs);
  for (int p = 0; p < kPairs; ++p) {
    for (const bool use_index : {true, false}) {
      Tenant::Config config;
      config.fabric = fabric;
      config.library = pair_library();
      config.online.policy = policies[p % 3];
      config.online.free_space_index = use_index;
      configs.push_back(std::move(config));
    }
  }
  ServiceOptions options;
  options.workers = kWorkers;
  options.queue_capacity = 32;
  PlacementService service(std::move(configs), options);

  std::vector<std::vector<Response>> responses(2 * kPairs);
  {
    std::vector<std::thread> submitters;
    submitters.reserve(2 * kPairs);
    for (int t = 0; t < 2 * kPairs; ++t) {
      submitters.emplace_back([&, t] {
        std::vector<std::future<Response>> futures;
        futures.reserve(scripts[t / 2].size());
        for (Request request : scripts[t / 2]) {
          request.tenant = t;
          futures.push_back(service.submit(request));
        }
        responses[t].reserve(futures.size());
        for (auto& future : futures) responses[t].push_back(future.get());
      });
    }
    for (std::thread& thread : submitters) thread.join();
  }
  service.stop();

  for (int p = 0; p < kPairs; ++p) {
    const int index_arm = 2 * p;
    const int sweep_arm = 2 * p + 1;
    ASSERT_EQ(responses[index_arm].size(), responses[sweep_arm].size());
    for (std::size_t i = 0; i < responses[index_arm].size(); ++i) {
      EXPECT_EQ(responses[index_arm][i], responses[sweep_arm][i])
          << "pair " << p << " diverged at request " << i;
    }
    const Tenant& indexed = service.tenant(index_arm);
    const Tenant& swept = service.tenant(sweep_arm);
    EXPECT_EQ(indexed.placer().live_placements(),
              swept.placer().live_placements())
        << "pair " << p;
    EXPECT_EQ(indexed.placer().occupied_matrix(),
              swept.placer().occupied_matrix())
        << "pair " << p;
    // The index arm's free bitmap tracks avail ∧ ¬occ after all the churn.
    BitMatrix expect_free =
        FreeSpaceIndex::union_of(indexed.region().masks());
    expect_free.clear_shifted(indexed.placer().occupied_matrix(), 0, 0);
    EXPECT_EQ(indexed.placer().free_space().free_matrix(), expect_free)
        << "pair " << p;
  }

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.requests,
            static_cast<std::uint64_t>(2 * kPairs * kRequestsPerTenant));
  EXPECT_GT(stats.placed, 0u);
  EXPECT_GT(stats.fault_events, 0u);
}

}  // namespace
}  // namespace rr::service
