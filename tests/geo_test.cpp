// Unit tests for src/geo: points, rects, D4 transforms and cell sets.
#include <gtest/gtest.h>

#include "geo/cellset.hpp"
#include "geo/rect.hpp"
#include "geo/transform.hpp"

namespace rr {
namespace {

TEST(PointTest, Arithmetic) {
  const Point a{1, 2}, b{3, -1};
  EXPECT_EQ(a + b, (Point{4, 1}));
  EXPECT_EQ(a - b, (Point{-2, 3}));
  EXPECT_LT(a, b);  // lexicographic
}

TEST(RectTest, ContainsAndArea) {
  const Rect r{1, 1, 3, 2};
  EXPECT_EQ(r.area(), 6);
  EXPECT_TRUE(r.contains(Point{1, 1}));
  EXPECT_TRUE(r.contains(Point{3, 2}));
  EXPECT_FALSE(r.contains(Point{4, 1}));
  EXPECT_FALSE(r.contains(Point{1, 3}));
}

TEST(RectTest, Intersection) {
  const Rect a{0, 0, 4, 4}, b{2, 2, 4, 4};
  const Rect i = a.intersection(b);
  EXPECT_EQ(i, (Rect{2, 2, 2, 2}));
  const Rect disjoint{10, 10, 2, 2};
  EXPECT_TRUE(a.intersection(disjoint).empty());
  EXPECT_FALSE(a.intersects(disjoint));
  EXPECT_TRUE(a.intersects(b));
}

TEST(RectTest, EmptyRectsNeverIntersect) {
  const Rect empty{};
  const Rect r{0, 0, 5, 5};
  EXPECT_FALSE(empty.intersects(r));
  EXPECT_FALSE(r.intersects(empty));
}

TEST(RectTest, BoundingUnion) {
  const Rect a{0, 0, 2, 2}, b{5, 5, 1, 1};
  EXPECT_EQ(a.bounding_union(b), (Rect{0, 0, 6, 6}));
  EXPECT_EQ(Rect{}.bounding_union(b), b);
  EXPECT_EQ(b.bounding_union(Rect{}), b);
}

TEST(RectTest, ContainsRect) {
  const Rect outer{0, 0, 10, 10};
  EXPECT_TRUE(outer.contains(Rect{2, 3, 4, 5}));
  EXPECT_TRUE(outer.contains(outer));
  EXPECT_FALSE(outer.contains(Rect{8, 8, 3, 3}));
}

// --- D4 group properties, checked over all elements -------------------------

class TransformGroupTest : public ::testing::TestWithParam<Transform> {};

TEST_P(TransformGroupTest, InverseComposesToIdentity) {
  const Transform t = GetParam();
  EXPECT_EQ(compose(t, inverse(t)), Transform::kIdentity);
  EXPECT_EQ(compose(inverse(t), t), Transform::kIdentity);
}

TEST_P(TransformGroupTest, ApplyMatchesComposition) {
  const Transform t = GetParam();
  for (Transform u : kAllTransforms) {
    const Transform c = compose(t, u);
    for (const Point p : {Point{2, 5}, Point{-1, 3}, Point{0, 0}}) {
      EXPECT_EQ(apply(c, p), apply(u, apply(t, p)))
          << to_string(t) << " then " << to_string(u);
    }
  }
}

TEST_P(TransformGroupTest, PreservesOriginDistance) {
  const Transform t = GetParam();
  const Point p{3, 4};
  const Point q = apply(t, p);
  EXPECT_EQ(q.x * q.x + q.y * q.y, 25);
}

INSTANTIATE_TEST_SUITE_P(AllTransforms, TransformGroupTest,
                         ::testing::ValuesIn(kAllTransforms),
                         [](const auto& info) {
                           std::string name(to_string(info.param));
                           for (char& c : name)
                             if (c == '-' || c == '+') c = '_';
                           return name;
                         });

TEST(TransformTest, Rot180IsItsOwnInverse) {
  EXPECT_EQ(compose(Transform::kRot180, Transform::kRot180),
            Transform::kIdentity);
}

TEST(TransformTest, SwapsAxes) {
  EXPECT_TRUE(swaps_axes(Transform::kRot90));
  EXPECT_TRUE(swaps_axes(Transform::kRot270));
  EXPECT_FALSE(swaps_axes(Transform::kRot180));
  EXPECT_FALSE(swaps_axes(Transform::kMirrorX));
}

// --- CellSet ---------------------------------------------------------------

TEST(CellSetTest, NormalizesToOrigin) {
  const CellSet s({{5, 7}, {6, 7}, {5, 8}});
  EXPECT_EQ(s.bounding_box(), (Rect{0, 0, 2, 2}));
  EXPECT_TRUE(s.contains(Point{0, 0}));
  EXPECT_TRUE(s.contains(Point{1, 0}));
  EXPECT_TRUE(s.contains(Point{0, 1}));
  EXPECT_FALSE(s.contains(Point{1, 1}));
}

TEST(CellSetTest, DeduplicatesCells) {
  const CellSet s({{0, 0}, {0, 0}, {1, 0}});
  EXPECT_EQ(s.size(), 2u);
}

TEST(CellSetTest, TranslationIsExact) {
  const CellSet s({{0, 0}, {1, 1}});
  const CellSet moved = s.translated(Point{3, 4});
  EXPECT_TRUE(moved.contains(Point{3, 4}));
  EXPECT_TRUE(moved.contains(Point{4, 5}));
  EXPECT_EQ(moved.bounding_box(), (Rect{3, 4, 2, 2}));
}

TEST(CellSetTest, TransformRot90OfLShape) {
  // L-shape: (0,0),(1,0),(0,1)
  const CellSet l({{0, 0}, {1, 0}, {0, 1}});
  const CellSet r = l.transformed(Transform::kRot90);
  EXPECT_EQ(r.size(), 3u);
  EXPECT_EQ(r.bounding_box(), (Rect{0, 0, 2, 2}));
  // rot90 ccw maps (x,y)->(-y,x): {(0,0),(0,1),(-1,0)} -> normalized
  EXPECT_TRUE(r.contains(Point{1, 0}));
  EXPECT_TRUE(r.contains(Point{1, 1}));
  EXPECT_TRUE(r.contains(Point{0, 0}));
}

TEST(CellSetTest, TransformTwiceRot180IsIdentity) {
  const CellSet s({{0, 0}, {1, 0}, {2, 0}, {2, 1}});
  EXPECT_EQ(
      s.transformed(Transform::kRot180).transformed(Transform::kRot180), s);
}

TEST(CellSetTest, CanonicalEqualForCongruentShapes) {
  const CellSet a({{0, 0}, {1, 0}, {0, 1}});
  for (Transform t : kAllTransforms) {
    const CellSet b = a.transformed(t);
    EXPECT_EQ(a.canonical().first, b.canonical().first) << to_string(t);
  }
}

TEST(CellSetTest, CanonicalDistinguishesDifferentShapes) {
  const CellSet l({{0, 0}, {1, 0}, {0, 1}});
  const CellSet bar({{0, 0}, {1, 0}, {2, 0}});
  EXPECT_FALSE(l.canonical().first == bar.canonical().first);
}

TEST(CellSetTest, Connectivity) {
  EXPECT_TRUE(CellSet({{0, 0}, {1, 0}, {1, 1}}).connected());
  EXPECT_FALSE(CellSet({{0, 0}, {2, 0}}).connected());
  EXPECT_TRUE(CellSet({{0, 0}}).connected());
  EXPECT_TRUE(CellSet(std::vector<Point>{}).connected());
  // Diagonal adjacency does not count (4-connectivity).
  EXPECT_FALSE(CellSet({{0, 0}, {1, 1}}).connected());
}

TEST(CellSetTest, IsRectangle) {
  EXPECT_TRUE(CellSet({{0, 0}, {1, 0}, {0, 1}, {1, 1}}).is_rectangle());
  EXPECT_FALSE(CellSet({{0, 0}, {1, 0}, {0, 1}}).is_rectangle());
}

TEST(CellSetTest, ToStringPicture) {
  const CellSet l({{0, 0}, {1, 0}, {0, 1}});
  EXPECT_EQ(l.to_string(), "#.\n##\n");
}

}  // namespace
}  // namespace rr
