// Workload generator: seeded byte-reproducibility, exact render/parse
// round-trips through the serve-trace grammar, and the adversarial edge
// cases the grammar has to survive (zero-duration instances, deadline
// tokens, storm fault/repair interleavings, malformed input).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "model/generator.hpp"
#include "service/trace.hpp"
#include "sim/workload.hpp"
#include "util/error.hpp"

namespace rr::sim {
namespace {

using model::Module;
using model::ModuleGenerator;
using service::Request;
using service::RequestOp;
using service::ServeTrace;

std::vector<Module> test_library() {
  // Distinct areas so the nearest-area mapping has real choices.
  std::vector<Module> lib;
  lib.push_back(
      Module("tiny", {ModuleGenerator::make_column_shape(1, 0, 1, 1, 0)}));
  lib.push_back(
      Module("mid", {ModuleGenerator::make_column_shape(6, 0, 1, 3, 0)}));
  lib.push_back(
      Module("big", {ModuleGenerator::make_column_shape(16, 0, 1, 4, 0)}));
  return lib;
}

WorkloadParams small_params(std::uint64_t seed) {
  WorkloadParams params;
  params.tenants = 3;
  params.requests = 400;
  params.seed = seed;
  return params;
}

TEST(Workload, SameSeedIsByteIdentical) {
  const std::vector<Module> lib = test_library();
  WorkloadGenerator a(small_params(7), lib, 16, 8);
  WorkloadGenerator b(small_params(7), lib, 16, 8);
  const std::string text_a = a.generate_text();
  const std::string text_b = b.generate_text();
  EXPECT_FALSE(text_a.empty());
  EXPECT_EQ(text_a, text_b);
  // generate() twice off one instance is just as deterministic: the Rng is
  // re-seeded per call, not carried across calls.
  EXPECT_EQ(a.generate_text(), text_a);
}

TEST(Workload, DifferentSeedsDiverge) {
  const std::vector<Module> lib = test_library();
  WorkloadGenerator a(small_params(7), lib, 16, 8);
  WorkloadGenerator b(small_params(8), lib, 16, 8);
  EXPECT_NE(a.generate_text(), b.generate_text());
}

TEST(Workload, RenderParseRoundTripIsExact) {
  const std::vector<Module> lib = test_library();
  WorkloadParams params = small_params(11);
  // Exercise every line kind: deadlines on, storms frequent.
  params.deadline_base_ms = 2.0;
  params.p_storm_start = 0.02;
  WorkloadGenerator generator(params, lib, 16, 8);
  const ServeTrace trace = generator.generate();
  EXPECT_EQ(trace.requests.size(), static_cast<std::size_t>(params.requests));

  const std::string text = WorkloadGenerator::render(trace, lib);
  const ServeTrace parsed =
      service::parse_serve_trace_text(text, "roundtrip", lib, 16, 8);
  EXPECT_EQ(parsed.tenants, trace.tenants);
  ASSERT_EQ(parsed.requests.size(), trace.requests.size());
  for (std::size_t i = 0; i < trace.requests.size(); ++i)
    EXPECT_EQ(parsed.requests[i], trace.requests[i]) << "request " << i;
}

TEST(Workload, ZeroDurationInstancesRemoveImmediately) {
  const std::vector<Module> lib = test_library();
  WorkloadParams params = small_params(3);
  params.life_min = 0;
  params.life_max = 0;     // every instance is zero-duration
  params.p_storm_start = 0.0;  // only places and removes
  WorkloadGenerator generator(params, lib, 16, 8);
  const ServeTrace trace = generator.generate();
  ASSERT_FALSE(trace.requests.empty());
  for (std::size_t i = 0; i < trace.requests.size(); ++i) {
    const Request& request = trace.requests[i];
    if (request.op != RequestOp::kPlace) continue;
    // The matching remove lands immediately after its place (unless the
    // request budget cut the trace right at the boundary).
    if (i + 1 == trace.requests.size()) break;
    const Request& next = trace.requests[i + 1];
    EXPECT_EQ(next.op, RequestOp::kRemove);
    EXPECT_EQ(next.tenant, request.tenant);
    EXPECT_EQ(next.instance, request.instance);
    ++i;  // the remove is consumed by this pair
  }
}

TEST(Workload, StormsEmitFaultsAndRepairs) {
  const std::vector<Module> lib = test_library();
  WorkloadParams params = small_params(5);
  params.requests = 3000;
  params.p_storm_start = 0.05;  // storm-heavy on purpose
  WorkloadGenerator generator(params, lib, 16, 8);
  const ServeTrace trace = generator.generate();
  long faults = 0, repairs = 0;
  for (const Request& request : trace.requests) {
    if (request.op != RequestOp::kFault) continue;
    if (request.fault.op == fpga::FaultEvent::Op::kRepairTransient ||
        request.fault.op == fpga::FaultEvent::Op::kRepairTile)
      ++repairs;
    else
      ++faults;
  }
  EXPECT_GT(faults, 0);
  EXPECT_GT(repairs, 0);
  // Storm output still round-trips through the grammar exactly.
  const ServeTrace parsed = service::parse_serve_trace_text(
      WorkloadGenerator::render(trace, lib), "storms", lib, 16, 8);
  ASSERT_EQ(parsed.requests.size(), trace.requests.size());
  for (std::size_t i = 0; i < trace.requests.size(); ++i)
    EXPECT_EQ(parsed.requests[i], trace.requests[i]) << "request " << i;
}

TEST(Workload, DeadlineClassesFollowTheMultiplierLadder) {
  const std::vector<Module> lib = test_library();
  WorkloadParams params = small_params(9);
  params.deadline_base_ms = 3.0;
  params.deadline_class_mult = 4.0;
  params.priority_classes = 3;
  WorkloadGenerator generator(params, lib, 16, 8);
  const ServeTrace trace = generator.generate();
  bool saw_deadline = false;
  for (const Request& request : trace.requests) {
    if (request.op != RequestOp::kPlace) continue;
    saw_deadline = saw_deadline || request.deadline_ms > 0.0;
    // ceil(3 * 4^k) for k in {0, 1, 2}.
    EXPECT_TRUE(request.deadline_ms == 3.0 || request.deadline_ms == 12.0 ||
                request.deadline_ms == 48.0)
        << request.deadline_ms;
  }
  EXPECT_TRUE(saw_deadline);
}

TEST(TraceParser, AcceptsDeadlineTokenAndComments) {
  const std::vector<Module> lib = test_library();
  const ServeTrace trace = service::parse_serve_trace_text(
      "# header comment\n"
      "tenants 2\n"
      "place 0 1 tiny 2.5\n"
      "place 1 2 mid\n"
      "remove 0 1\n",
      "inline", lib, 16, 8);
  EXPECT_EQ(trace.tenants, 2);
  ASSERT_EQ(trace.requests.size(), 3u);
  EXPECT_EQ(trace.requests[0].deadline_ms, 2.5);
  EXPECT_EQ(trace.requests[1].deadline_ms, 0.0);  // absent = no deadline
}

TEST(TraceParser, RejectsMalformedDeadlines) {
  const std::vector<Module> lib = test_library();
  // Non-numeric trailing token.
  EXPECT_THROW((void)service::parse_serve_trace_text(
                   "place 0 1 tiny soon\n", "bad", lib, 16, 8),
               InvalidInput);
  // Deadlines must be strictly positive.
  EXPECT_THROW((void)service::parse_serve_trace_text(
                   "place 0 1 tiny -3\n", "bad", lib, 16, 8),
               InvalidInput);
  EXPECT_THROW((void)service::parse_serve_trace_text(
                   "place 0 1 tiny 0\n", "bad", lib, 16, 8),
               InvalidInput);
}

}  // namespace
}  // namespace rr::sim
