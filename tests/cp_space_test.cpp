// Tests for the Space: modification events, trailing, propagation loop.
#include <gtest/gtest.h>

#include <memory>

#include "cp/space.hpp"

namespace rr::cp {
namespace {

TEST(Space, VariableCreationAndAccess) {
  Space s;
  const VarId x = s.new_var(1, 5);
  EXPECT_EQ(s.num_vars(), 1);
  EXPECT_EQ(s.min(x), 1);
  EXPECT_EQ(s.max(x), 5);
  EXPECT_FALSE(s.assigned(x));
}

TEST(Space, ModificationEvents) {
  Space s;
  const VarId x = s.new_var(0, 10);
  EXPECT_EQ(s.set_min(x, 0), ModEvent::kNone);
  EXPECT_EQ(s.set_min(x, 3), ModEvent::kBounds);
  EXPECT_EQ(s.remove(x, 5), ModEvent::kDomain);
  EXPECT_EQ(s.set_max(x, 3), ModEvent::kAssign);
  EXPECT_TRUE(s.assigned(x));
  EXPECT_EQ(s.value(x), 3);
}

TEST(Space, FailureOnEmptyDomain) {
  Space s;
  const VarId x = s.new_var(0, 2);
  EXPECT_EQ(s.remove_range(x, 0, 2), ModEvent::kFail);
  EXPECT_TRUE(s.failed());
}

TEST(Space, MutatingFailedSpaceIsBenign) {
  Space s;
  const VarId x = s.new_var(0, 2);
  const VarId y = s.new_var(0, 2);
  s.fail();
  EXPECT_EQ(s.assign(x, 1), ModEvent::kFail);
  EXPECT_EQ(s.set_min(y, 2), ModEvent::kFail);
  EXPECT_TRUE(s.failed());
}

TEST(Space, PushPopRestoresDomains) {
  Space s;
  const VarId x = s.new_var(0, 10);
  const VarId y = s.new_var(0, 10);
  s.set_min(x, 2);  // root-level change: permanent

  s.push();
  s.assign(x, 5);
  s.remove(y, 7);
  EXPECT_TRUE(s.assigned(x));
  s.pop();
  EXPECT_EQ(s.min(x), 2);
  EXPECT_EQ(s.max(x), 10);
  EXPECT_TRUE(s.dom(y).contains(7));
}

TEST(Space, NestedPushPop) {
  Space s;
  const VarId x = s.new_var(0, 10);
  s.push();
  s.set_min(x, 3);
  s.push();
  s.set_min(x, 6);
  s.push();
  s.assign(x, 8);
  EXPECT_EQ(s.decision_level(), 3);
  s.pop();
  EXPECT_EQ(s.min(x), 6);
  s.pop();
  EXPECT_EQ(s.min(x), 3);
  s.pop();
  EXPECT_EQ(s.min(x), 0);
}

TEST(Space, PopClearsFailure) {
  Space s;
  const VarId x = s.new_var(0, 3);
  s.push();
  s.remove_range(x, 0, 3);
  EXPECT_TRUE(s.failed());
  s.pop();
  EXPECT_FALSE(s.failed());
  EXPECT_EQ(s.dom(x).size(), 4);
}

// A propagator that enforces x < y (bounds) and counts its activations.
class LessThan final : public Propagator {
 public:
  LessThan(VarId x, VarId y, int* counter)
      : x_(x), y_(y), counter_(counter) {}
  void attach(Space& space, int self) override {
    space.subscribe(x_, self, kOnBounds);
    space.subscribe(y_, self, kOnBounds);
  }
  PropStatus propagate(Space& space) override {
    ++*counter_;
    if (space.set_max(x_, space.max(y_) - 1) == ModEvent::kFail)
      return PropStatus::kFail;
    if (space.set_min(y_, space.min(x_) + 1) == ModEvent::kFail)
      return PropStatus::kFail;
    return PropStatus::kFix;
  }

 private:
  VarId x_, y_;
  int* counter_;
};

TEST(Space, PropagationReachesFixpoint) {
  Space s;
  const VarId x = s.new_var(0, 10);
  const VarId y = s.new_var(0, 10);
  int count = 0;
  s.post(std::make_unique<LessThan>(x, y, &count));
  ASSERT_TRUE(s.propagate());
  EXPECT_EQ(s.max(x), 9);
  EXPECT_EQ(s.min(y), 1);
  const int after_initial = count;

  s.push();
  s.set_min(x, 7);
  ASSERT_TRUE(s.propagate());
  EXPECT_EQ(s.min(y), 8);
  EXPECT_GT(count, after_initial);
}

TEST(Space, PropagationChainAcrossPropagators) {
  // x < y, y < z: setting x's min must cascade to z.
  Space s;
  const VarId x = s.new_var(0, 10);
  const VarId y = s.new_var(0, 10);
  const VarId z = s.new_var(0, 10);
  int c1 = 0, c2 = 0;
  s.post(std::make_unique<LessThan>(x, y, &c1));
  s.post(std::make_unique<LessThan>(y, z, &c2));
  ASSERT_TRUE(s.propagate());
  s.push();
  s.set_min(x, 8);
  ASSERT_TRUE(s.propagate());
  EXPECT_EQ(s.min(y), 9);
  EXPECT_EQ(s.min(z), 10);
  s.push();
  s.set_min(y, 10);
  EXPECT_FALSE(s.propagate());  // y < z impossible
  EXPECT_TRUE(s.failed());
}

// Propagator that reports subsumption immediately and must not run again at
// this level or below, but must run again after backtracking.
class SubsumeOnce final : public Propagator {
 public:
  SubsumeOnce(VarId x, int* counter) : x_(x), counter_(counter) {}
  void attach(Space& space, int self) override {
    space.subscribe(x_, self, kOnDomain);
  }
  PropStatus propagate(Space&) override {
    ++*counter_;
    return PropStatus::kSubsumed;
  }

 private:
  VarId x_;
  int* counter_;
};

TEST(Space, SubsumptionIsTrailed) {
  Space s;
  const VarId x = s.new_var(0, 10);
  int count = 0;
  s.post(std::make_unique<SubsumeOnce>(x, &count));
  s.push();
  ASSERT_TRUE(s.propagate());
  EXPECT_EQ(count, 1);
  s.remove(x, 5);  // would schedule, but the propagator is subsumed
  ASSERT_TRUE(s.propagate());
  EXPECT_EQ(count, 1);
  s.pop();
  // After backtracking past the subsumption level, it runs again.
  s.push();
  s.remove(x, 6);
  ASSERT_TRUE(s.propagate());
  EXPECT_EQ(count, 2);
}

TEST(Space, StatsCountPropagations) {
  Space s;
  const VarId x = s.new_var(0, 10);
  const VarId y = s.new_var(0, 10);
  int count = 0;
  s.post(std::make_unique<LessThan>(x, y, &count));
  s.propagate();
  EXPECT_GE(s.stats().propagations, 1u);
  EXPECT_GE(s.stats().domain_changes, 2u);
}

TEST(Space, RemoveValuesSortedEvent) {
  Space s;
  const VarId x = s.new_var(0, 5);
  const std::vector<int> batch{1, 3};
  EXPECT_EQ(s.remove_values_sorted(x, batch), ModEvent::kDomain);
  EXPECT_EQ(s.dom(x).size(), 4);
  const std::vector<int> rest{0, 2, 4, 5};
  EXPECT_EQ(s.remove_values_sorted(x, rest), ModEvent::kFail);
}

TEST(Space, IntersectEvent) {
  Space s;
  const VarId x = s.new_var(0, 10);
  EXPECT_EQ(s.intersect(x, Domain(2, 4)), ModEvent::kBounds);
  EXPECT_EQ(s.intersect(x, Domain(2, 4)), ModEvent::kNone);
  EXPECT_EQ(s.intersect(x, Domain(20, 30)), ModEvent::kFail);
}

}  // namespace
}  // namespace rr::cp
