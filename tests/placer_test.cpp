// Placer tests: model building, optimality on brute-forceable instances,
// metrics, the validator, LNS and the solver modes.
#include <gtest/gtest.h>

#include "baseline/greedy.hpp"
#include "fpga/builders.hpp"
#include "model/generator.hpp"
#include "placer/lns.hpp"
#include "placer/metrics.hpp"
#include "placer/placer.hpp"
#include "placer/validator.hpp"

namespace rr::placer {
namespace {

using model::Module;
using model::ModuleGenerator;

std::shared_ptr<fpga::PartialRegion> homogeneous_region(int w, int h) {
  auto fabric =
      std::make_shared<const fpga::Fabric>(fpga::make_homogeneous(w, h));
  return std::make_shared<fpga::PartialRegion>(fabric);
}

Module rect_module(const std::string& name, int w, int h) {
  return Module(name, {ModuleGenerator::make_column_shape(w * h, 0, 1, h, 0)});
}

/// Module with two alternatives: w x h and h x w.
Module rotatable_module(const std::string& name, int w, int h) {
  return Module(name, {ModuleGenerator::make_column_shape(w * h, 0, 1, h, 0),
                       ModuleGenerator::make_column_shape(w * h, 0, 1, w, 0)});
}

TEST(ModelBuilder, BuildsExpectedStructure) {
  const auto region = homogeneous_region(6, 4);
  const std::vector<Module> modules{rect_module("a", 2, 2),
                                    rect_module("b", 3, 2)};
  const BuiltModel model = build_model(*region, modules);
  EXPECT_FALSE(model.infeasible);
  ASSERT_EQ(model.objects.size(), 2u);
  EXPECT_EQ(model.placement_vars.size(), 2u);
  EXPECT_EQ(model.extent_vars.size(), 2u);
  EXPECT_NE(model.objective, cp::kNoVar);
  // a: (6-2+1)*(4-2+1) = 15 anchors; b: 4*3 = 12.
  EXPECT_EQ(model.objects[0].table().size(), 15u);
  EXPECT_EQ(model.objects[1].table().size(), 12u);
}

TEST(ModelBuilder, AreaBoundTightensObjective) {
  const auto region = homogeneous_region(10, 2);
  // Two 2x2 modules: 8 cells over height 2 -> extent >= 4.
  const std::vector<Module> modules{rect_module("a", 2, 2),
                                    rect_module("b", 2, 2)};
  BuildOptions options;
  options.area_bound = true;
  const BuiltModel model = build_model(*region, modules, options);
  ASSERT_TRUE(model.space->propagate());
  EXPECT_GE(model.space->min(model.objective), 4);
}

TEST(ModelBuilder, UnplaceableModuleMarksInfeasible) {
  const auto region = homogeneous_region(3, 3);
  const std::vector<Module> modules{rect_module("big", 5, 2)};
  const BuiltModel model = build_model(*region, modules);
  EXPECT_TRUE(model.infeasible);
  EXPECT_TRUE(model.space->failed());
}

TEST(ModelBuilder, OverfullRegionMarksInfeasible) {
  const auto region = homogeneous_region(3, 3);
  std::vector<Module> modules;
  for (int i = 0; i < 4; ++i)
    modules.push_back(rect_module("m" + std::to_string(i), 2, 2));
  const BuiltModel model = build_model(*region, modules);  // 16 > 9 cells
  EXPECT_TRUE(model.infeasible);
}

TEST(ModelBuilder, TablesCacheMatchesDirectBuild) {
  const auto region = homogeneous_region(6, 4);
  const std::vector<Module> modules{rect_module("a", 2, 2)};
  const auto tables = prepare_tables(*region, modules, true);
  ASSERT_EQ(tables.size(), 1u);
  EXPECT_EQ(tables[0].table.size(), 15u);
  EXPECT_EQ(tables[0].extents.size(), 15u);
  EXPECT_EQ(tables[0].min_area, 4);
  const BuiltModel model = build_model_from_tables(*region, tables);
  EXPECT_EQ(model.objects[0].table().size(), 15u);
}

TEST(Placer, OptimalOnTinyInstanceMatchesExhaustive) {
  // 4x4 region, two 2x2 squares and one 4x2 bar: optimal extent is 4
  // (bar vertical impossible - it is 4 wide x 2 tall; stack squares left,
  // bar on rows? Exhaustive reasoning: total area 16 = region -> extent 4).
  const auto region = homogeneous_region(4, 4);
  const std::vector<Module> modules{rect_module("s1", 2, 2),
                                    rect_module("s2", 2, 2),
                                    rect_module("bar", 4, 2)};
  PlacerOptions options;
  options.mode = PlacerMode::kBranchAndBound;
  options.time_limit_seconds = 10.0;
  Placer placer(*region, modules, options);
  const PlacementOutcome outcome = placer.place();
  ASSERT_TRUE(outcome.solution.feasible);
  EXPECT_TRUE(outcome.optimal);
  EXPECT_EQ(outcome.solution.extent, 4);
  EXPECT_TRUE(validate(*region, modules, outcome.solution).ok());
  EXPECT_DOUBLE_EQ(
      spanned_utilization(*region, modules, outcome.solution), 1.0);
}

TEST(Placer, AlternativesReduceExtent) {
  // Region 8x2. One 4x2 module and one 2x4/4x2 rotatable module: without
  // alternatives (4x2 base... choose base 2x4 which cannot fit the height-2
  // region at all) -- so construct carefully: base is 1x4 (too tall),
  // alternative is 4x1.
  const auto region = homogeneous_region(8, 2);
  const Module fixed = rect_module("fixed", 4, 2);
  const Module rotatable = rotatable_module("rot", 4, 1);  // 4x1 and 1x4
  const std::vector<Module> modules{fixed, rotatable};
  PlacerOptions with;
  with.mode = PlacerMode::kBranchAndBound;
  with.time_limit_seconds = 5.0;
  const PlacementOutcome a = Placer(*region, modules, with).place();
  ASSERT_TRUE(a.solution.feasible);
  EXPECT_TRUE(validate(*region, modules, a.solution).ok());

  PlacerOptions without = with;
  without.use_alternatives = false;
  const PlacementOutcome b = Placer(*region, modules, without).place();
  // The base shape of "rot" is 4x1 -> still feasible, but any alternative
  // placement is at least as good with alternatives enabled.
  ASSERT_TRUE(b.solution.feasible);
  EXPECT_LE(a.solution.extent, b.solution.extent);
}

TEST(Placer, InfeasibleOutcomeReported) {
  const auto region = homogeneous_region(3, 2);
  const std::vector<Module> modules{rect_module("big", 3, 3)};
  PlacerOptions options;
  Placer placer(*region, modules, options);
  const PlacementOutcome outcome = placer.place();
  EXPECT_FALSE(outcome.solution.feasible);
  EXPECT_TRUE(outcome.optimal);  // proven infeasible
}

TEST(Placer, HeterogeneousResourceMatching) {
  // BRAM column at x=2. A module with a BRAM column must land on it.
  auto fabric = std::make_shared<const fpga::Fabric>([] {
    fpga::Fabric f(8, 4);
    f.set_column(2, fpga::ResourceType::kBram);
    return f;
  }());
  const auto region = std::make_shared<fpga::PartialRegion>(fabric);
  const Module m("mem", {ModuleGenerator::make_column_shape(
                     6, 1, 2, 3, 0)});  // BRAM col + 2 CLB cols, height 3
  const std::vector<Module> modules{m};
  Placer placer(*region, modules, {});
  const PlacementOutcome outcome = placer.place();
  ASSERT_TRUE(outcome.solution.feasible);
  EXPECT_EQ(outcome.solution.placements[0].x, 2);  // anchored on the column
  EXPECT_TRUE(validate(*region, modules, outcome.solution).ok());
}

TEST(Placer, ModesAgreeOnSmallInstances) {
  const auto region = homogeneous_region(6, 4);
  const std::vector<Module> modules{rect_module("a", 2, 2),
                                    rect_module("b", 2, 2),
                                    rect_module("c", 2, 4)};
  int extents[4];
  int i = 0;
  for (const PlacerMode mode :
       {PlacerMode::kBranchAndBound, PlacerMode::kLns, PlacerMode::kAuto,
        PlacerMode::kRestarts}) {
    PlacerOptions options;
    options.mode = mode;
    options.time_limit_seconds = 5.0;
    const PlacementOutcome outcome =
        Placer(*region, modules, options).place();
    ASSERT_TRUE(outcome.solution.feasible);
    EXPECT_TRUE(validate(*region, modules, outcome.solution).ok());
    extents[i++] = outcome.solution.extent;
  }
  // Area bound: 4+4+8 = 16 cells over height 4 -> extent 4 is optimal,
  // and every mode must reach it on so small an instance.
  EXPECT_EQ(extents[0], 4);
  EXPECT_EQ(extents[1], 4);
  EXPECT_EQ(extents[2], 4);
  EXPECT_EQ(extents[3], 4);
}

TEST(Placer, PortfolioMatchesSequentialOptimum) {
  const auto region = homogeneous_region(6, 4);
  const std::vector<Module> modules{rect_module("a", 3, 2),
                                    rect_module("b", 3, 2),
                                    rect_module("c", 2, 2)};
  PlacerOptions sequential;
  sequential.mode = PlacerMode::kBranchAndBound;
  sequential.time_limit_seconds = 5.0;
  const PlacementOutcome s = Placer(*region, modules, sequential).place();
  PlacerOptions parallel = sequential;
  parallel.workers = 3;
  const PlacementOutcome p = Placer(*region, modules, parallel).place();
  ASSERT_TRUE(s.solution.feasible);
  ASSERT_TRUE(p.solution.feasible);
  EXPECT_TRUE(s.optimal);
  EXPECT_TRUE(p.optimal);
  EXPECT_EQ(s.solution.extent, p.solution.extent);
  EXPECT_TRUE(validate(*region, modules, p.solution).ok());
}

TEST(Placer, ParallelWorkersHonorLnsModes) {
  // Regression: workers > 1 used to silently force a pure-B&B portfolio,
  // discarding the requested mode. kLns and kAuto must now run the
  // portfolio exact phase followed by LNS and still reach the optimum on a
  // small instance.
  const auto region = homogeneous_region(6, 4);
  const std::vector<Module> modules{rect_module("a", 2, 2),
                                    rect_module("b", 2, 2),
                                    rect_module("c", 2, 4)};
  for (const PlacerMode mode : {PlacerMode::kLns, PlacerMode::kAuto}) {
    PlacerOptions options;
    options.mode = mode;
    options.workers = 2;
    options.time_limit_seconds = 5.0;
    const PlacementOutcome outcome =
        Placer(*region, modules, options).place();
    ASSERT_TRUE(outcome.solution.feasible);
    EXPECT_TRUE(validate(*region, modules, outcome.solution).ok());
    EXPECT_EQ(outcome.solution.extent, 4);  // area bound, see ModesAgree
  }
}

TEST(Placer, RestartsModeRejectsMultipleWorkers) {
  // kRestarts has no portfolio variant; asking for one must fail loudly at
  // construction instead of silently running something else.
  const auto region = homogeneous_region(6, 4);
  const std::vector<Module> modules{rect_module("a", 2, 2)};
  PlacerOptions options;
  options.mode = PlacerMode::kRestarts;
  options.workers = 2;
  EXPECT_THROW(Placer(*region, modules, options), InvalidInput);
}

TEST(Lns, ImprovesAGreedyIncumbent) {
  // A workload where bottom-left greedy is suboptimal and LNS must close
  // the gap to the area bound: 8 modules on a tight region.
  const auto region = homogeneous_region(12, 6);
  std::vector<Module> modules;
  for (int i = 0; i < 6; ++i)
    modules.push_back(rect_module("s" + std::to_string(i), 2, 3));
  // total area: 6*6 = 36 cells over height 6 -> bound 6, achievable by
  // tiling three column pairs with two stacked modules each.
  const auto tables = prepare_tables(*region, modules, true);
  // Deliberately poor incumbent: modules spread to the right.
  std::vector<int> incumbent;
  for (const ModuleTables& t : tables)
    incumbent.push_back(static_cast<int>(t.table.size()) - 1);
  LnsOptions options;
  options.seed = 5;
  const LnsResult result = improve_lns(*region, tables, incumbent, {},
                                       options, Deadline(5.0));
  EXPECT_TRUE(result.found);
  EXPECT_GT(result.iterations, 0);
  EXPECT_EQ(result.extent, 6);
  EXPECT_TRUE(result.optimal);  // reached the area bound
}

TEST(Lns, RejectsArityMismatch) {
  const auto region = homogeneous_region(4, 4);
  const std::vector<Module> modules{rect_module("a", 2, 2)};
  const auto tables = prepare_tables(*region, modules, true);
  EXPECT_THROW(
      improve_lns(*region, tables, std::vector<int>{}, {}, {}, Deadline(1.0)),
      InvalidInput);
}

TEST(ModelBuilder, SymmetryBreakingRemovesPermutations) {
  // Two identical squares on a 4x2 strip: placements x in {0,1,2}, the only
  // packings are {0,2} — one per ordering. Symmetry breaking keeps exactly
  // one representative.
  const auto region = homogeneous_region(4, 2);
  std::vector<Module> modules;
  for (int i = 0; i < 2; ++i)
    modules.push_back(rect_module("m" + std::to_string(i), 2, 2));

  auto count_solutions = [&](bool break_symmetries) {
    BuildOptions build;
    build.break_symmetries = break_symmetries;
    build.area_bound = false;  // satisfaction: count everything
    BuiltModel model = build_model(*region, modules, build);
    cp::BasicBrancher brancher(model.placement_vars,
                               cp::VarSelect::kInputOrder,
                               cp::ValSelect::kMin);
    cp::Search search(*model.space, brancher, {});
    int solutions = 0;
    while (search.next()) ++solutions;
    return solutions;
  };
  EXPECT_EQ(count_solutions(false), 2);  // (0,2) and (2,0)
  EXPECT_EQ(count_solutions(true), 1);   // only the ordered one
}

// --- Validator --------------------------------------------------------------

TEST(Validator, AcceptsSolverOutput) {
  const auto region = homogeneous_region(6, 4);
  const std::vector<Module> modules{rect_module("a", 2, 2),
                                    rect_module("b", 3, 2)};
  const PlacementOutcome outcome = Placer(*region, modules, {}).place();
  ASSERT_TRUE(outcome.solution.feasible);
  EXPECT_TRUE(validate(*region, modules, outcome.solution).ok());
}

TEST(Validator, DetectsOverlap) {
  const auto region = homogeneous_region(6, 4);
  const std::vector<Module> modules{rect_module("a", 2, 2),
                                    rect_module("b", 2, 2)};
  PlacementSolution bad;
  bad.feasible = true;
  bad.placements = {{0, 0, 0, 0}, {1, 0, 1, 1}};
  bad.extent = 3;
  const auto report = validate(*region, modules, bad);
  EXPECT_FALSE(report.ok());
  EXPECT_NE(report.errors.front().find("overlap"), std::string::npos);
}

TEST(Validator, DetectsOutOfRegion) {
  const auto region = homogeneous_region(4, 4);
  const std::vector<Module> modules{rect_module("a", 2, 2)};
  PlacementSolution bad;
  bad.feasible = true;
  bad.placements = {{0, 0, 3, 3}};
  bad.extent = 5;
  EXPECT_FALSE(validate(*region, modules, bad).ok());
}

TEST(Validator, DetectsResourceMismatch) {
  auto fabric = std::make_shared<const fpga::Fabric>([] {
    fpga::Fabric f(4, 4);
    f.set_column(1, fpga::ResourceType::kBram);
    return f;
  }());
  const auto region = std::make_shared<fpga::PartialRegion>(fabric);
  const std::vector<Module> modules{rect_module("a", 2, 2)};
  PlacementSolution bad;
  bad.feasible = true;
  bad.placements = {{0, 0, 0, 0}};  // covers the BRAM column with CLB cells
  bad.extent = 2;
  const auto report = validate(*region, modules, bad);
  EXPECT_FALSE(report.ok());
}

TEST(Validator, DetectsWrongExtentAndMissingModules) {
  const auto region = homogeneous_region(6, 4);
  const std::vector<Module> modules{rect_module("a", 2, 2)};
  PlacementSolution wrong_extent;
  wrong_extent.feasible = true;
  wrong_extent.placements = {{0, 0, 2, 0}};  // actual extent 4
  wrong_extent.extent = 3;                   // under-reported: invalid
  EXPECT_FALSE(validate(*region, modules, wrong_extent).ok());
  wrong_extent.extent = 5;  // over-reservation is legal (slot style)
  EXPECT_TRUE(validate(*region, modules, wrong_extent).ok());

  PlacementSolution missing;
  missing.feasible = true;
  EXPECT_FALSE(validate(*region, modules, missing).ok());
}

TEST(Validator, RejectsInfeasibleFlag) {
  const auto region = homogeneous_region(4, 4);
  const std::vector<Module> modules{rect_module("a", 2, 2)};
  EXPECT_FALSE(validate(*region, modules, PlacementSolution{}).ok());
}

// --- Metrics ----------------------------------------------------------------

TEST(Metrics, UtilizationOfPerfectPacking) {
  const auto region = homogeneous_region(4, 2);
  const std::vector<Module> modules{rect_module("a", 2, 2),
                                    rect_module("b", 2, 2)};
  PlacementSolution solution;
  solution.feasible = true;
  solution.placements = {{0, 0, 0, 0}, {1, 0, 2, 0}};
  solution.extent = 4;
  EXPECT_DOUBLE_EQ(spanned_utilization(*region, modules, solution), 1.0);
  EXPECT_DOUBLE_EQ(region_utilization(*region, modules, solution), 1.0);
  EXPECT_DOUBLE_EQ(fragmentation(*region, modules, solution), 0.0);
  EXPECT_EQ(placed_area(modules, solution), 8);
}

TEST(Metrics, UtilizationCountsOnlySpannedColumns) {
  const auto region = homogeneous_region(8, 2);
  const std::vector<Module> modules{rect_module("a", 2, 2)};
  PlacementSolution solution;
  solution.feasible = true;
  solution.placements = {{0, 0, 0, 0}};
  solution.extent = 2;
  EXPECT_DOUBLE_EQ(spanned_utilization(*region, modules, solution), 1.0);
  EXPECT_DOUBLE_EQ(region_utilization(*region, modules, solution), 0.25);
}

TEST(Metrics, FragmentationDistinguishesScatter) {
  const auto region = homogeneous_region(4, 4);
  const std::vector<Module> modules{rect_module("a", 2, 2),
                                    rect_module("b", 2, 2)};
  // Compact: both squares left, free space is one 4x2 block... actually
  // squares at (0,0) and (0,2) fill columns 0-1; free = columns 2-3.
  PlacementSolution compact;
  compact.feasible = true;
  compact.placements = {{0, 0, 0, 0}, {1, 0, 0, 2}};
  compact.extent = 2;
  // Diagonal: squares at (0,0) and (2,2): free space is two 2x2 corners.
  PlacementSolution diagonal;
  diagonal.feasible = true;
  diagonal.placements = {{0, 0, 0, 0}, {1, 0, 2, 2}};
  diagonal.extent = 4;
  EXPECT_DOUBLE_EQ(fragmentation(*region, modules, compact), 0.0);
  EXPECT_GT(fragmentation(*region, modules, diagonal), 0.4);
}

TEST(Metrics, LargestFreeRectangle) {
  BitMatrix occupied(3, 4);
  BitMatrix usable(3, 4);
  usable.fill();
  occupied.set(1, 1, true);
  // Best free rectangle avoiding (1,1): rows 0..2 x cols 2..3 = 6.
  EXPECT_EQ(largest_free_rectangle(occupied, usable), 6);
  occupied.clear();
  EXPECT_EQ(largest_free_rectangle(occupied, usable), 12);
  usable.clear();
  EXPECT_EQ(largest_free_rectangle(occupied, usable), 0);
}

TEST(Metrics, InfeasibleSolutionsScoreZero) {
  const auto region = homogeneous_region(4, 4);
  const std::vector<Module> modules{rect_module("a", 2, 2)};
  const PlacementSolution infeasible;
  EXPECT_DOUBLE_EQ(spanned_utilization(*region, modules, infeasible), 0.0);
  EXPECT_DOUBLE_EQ(region_utilization(*region, modules, infeasible), 0.0);
  EXPECT_DOUBLE_EQ(fragmentation(*region, modules, infeasible), 0.0);
}

}  // namespace
}  // namespace rr::placer
