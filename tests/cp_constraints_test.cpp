// Constraint correctness: every constraint's full solution set is compared
// against a brute-force reference on small domains (soundness AND
// completeness), plus targeted propagation-strength checks.
#include <gtest/gtest.h>

#include "cp/constraints.hpp"
#include "cp_test_utils.hpp"

namespace rr::cp {
namespace {

using testing::Assignment;
using testing::brute_force;
using testing::solve_all;

TEST(RelConstraint, UnaryOps) {
  Space s;
  const VarId x = s.new_var(0, 10);
  post_rel_const(s, x, RelOp::kGeq, 3);
  post_rel_const(s, x, RelOp::kLt, 8);
  post_rel_const(s, x, RelOp::kNeq, 5);
  ASSERT_TRUE(s.propagate());
  EXPECT_EQ(s.dom(x).values(), (std::vector<int>{3, 4, 6, 7}));
  post_rel_const(s, x, RelOp::kEq, 6);
  ASSERT_TRUE(s.propagate());
  EXPECT_EQ(s.value(x), 6);
}

class BinaryRelTest : public ::testing::TestWithParam<RelOp> {};

TEST_P(BinaryRelTest, MatchesBruteForce) {
  const RelOp op = GetParam();
  Space s;
  const VarId x = s.new_var(0, 4);
  const VarId y = s.new_var(1, 3);
  post_rel(s, x, op, y, /*offset=*/1);  // x op y + 1
  const auto expected = brute_force(
      {{0, 4}, {1, 3}}, [&](const Assignment& a) {
        const int rhs = a[1] + 1;
        switch (op) {
          case RelOp::kEq: return a[0] == rhs;
          case RelOp::kNeq: return a[0] != rhs;
          case RelOp::kLeq: return a[0] <= rhs;
          case RelOp::kGeq: return a[0] >= rhs;
          case RelOp::kLt: return a[0] < rhs;
          case RelOp::kGt: return a[0] > rhs;
        }
        return false;
      });
  EXPECT_EQ(solve_all(s, {x, y}), expected);
}

INSTANTIATE_TEST_SUITE_P(AllOps, BinaryRelTest,
                         ::testing::Values(RelOp::kEq, RelOp::kNeq,
                                           RelOp::kLeq, RelOp::kGeq,
                                           RelOp::kLt, RelOp::kGt),
                         [](const auto& info) {
                           switch (info.param) {
                             case RelOp::kEq: return "Eq";
                             case RelOp::kNeq: return "Neq";
                             case RelOp::kLeq: return "Leq";
                             case RelOp::kGeq: return "Geq";
                             case RelOp::kLt: return "Lt";
                             case RelOp::kGt: return "Gt";
                           }
                           return "?";
                         });

TEST(RelConstraint, EqChannelsHoles) {
  Space s;
  const VarId x = s.new_var(Domain::from_values({1, 3, 5}));
  const VarId y = s.new_var(0, 10);
  post_rel(s, x, RelOp::kEq, y);
  ASSERT_TRUE(s.propagate());
  EXPECT_EQ(s.dom(y).values(), (std::vector<int>{1, 3, 5}));
}

class LinearOpTest : public ::testing::TestWithParam<RelOp> {};

TEST_P(LinearOpTest, MatchesBruteForce) {
  const RelOp op = GetParam();
  Space s;
  const VarId x = s.new_var(0, 3);
  const VarId y = s.new_var(0, 3);
  const VarId z = s.new_var(-2, 2);
  const std::vector<int> coeffs{2, 3, -1};
  const std::vector<VarId> vars{x, y, z};
  post_linear(s, coeffs, vars, op, 6);
  const auto expected = brute_force(
      {{0, 3}, {0, 3}, {-2, 2}}, [&](const Assignment& a) {
        const int sum = 2 * a[0] + 3 * a[1] - a[2];
        switch (op) {
          case RelOp::kEq: return sum == 6;
          case RelOp::kLeq: return sum <= 6;
          case RelOp::kGeq: return sum >= 6;
          default: return false;
        }
      });
  EXPECT_EQ(solve_all(s, {x, y, z}), expected);
}

INSTANTIATE_TEST_SUITE_P(EqLeqGeq, LinearOpTest,
                         ::testing::Values(RelOp::kEq, RelOp::kLeq,
                                           RelOp::kGeq),
                         [](const auto& info) {
                           switch (info.param) {
                             case RelOp::kEq: return "Eq";
                             case RelOp::kLeq: return "Leq";
                             case RelOp::kGeq: return "Geq";
                             default: return "?";
                           }
                         });

TEST(LinearConstraint, PropagatesBoundsWithoutSearch) {
  Space s;
  const VarId x = s.new_var(0, 100);
  const VarId y = s.new_var(0, 100);
  // x + y <= 10 must clip both to [0, 10] immediately.
  post_linear(s, std::vector<int>{1, 1}, std::vector<VarId>{x, y},
              RelOp::kLeq, 10);
  ASSERT_TRUE(s.propagate());
  EXPECT_EQ(s.max(x), 10);
  EXPECT_EQ(s.max(y), 10);
}

TEST(LinearConstraint, RejectsBadArity) {
  Space s;
  const VarId x = s.new_var(0, 1);
  EXPECT_THROW(post_linear(s, std::vector<int>{1, 2},
                           std::vector<VarId>{x}, RelOp::kEq, 0),
               InvalidInput);
}

TEST(MaxConstraint, MatchesBruteForce) {
  Space s;
  const VarId a = s.new_var(0, 3);
  const VarId b = s.new_var(1, 4);
  const VarId z = s.new_var(0, 5);
  post_max(s, z, std::vector<VarId>{a, b});
  const auto expected = brute_force(
      {{0, 3}, {1, 4}, {0, 5}},
      [](const Assignment& v) { return v[2] == std::max(v[0], v[1]); });
  EXPECT_EQ(solve_all(s, {a, b, z}), expected);
}

TEST(MinConstraint, MatchesBruteForce) {
  Space s;
  const VarId a = s.new_var(0, 3);
  const VarId b = s.new_var(1, 4);
  const VarId z = s.new_var(-1, 5);
  post_min(s, z, std::vector<VarId>{a, b});
  const auto expected = brute_force(
      {{0, 3}, {1, 4}, {-1, 5}},
      [](const Assignment& v) { return v[2] == std::min(v[0], v[1]); });
  EXPECT_EQ(solve_all(s, {a, b, z}), expected);
}

TEST(MaxConstraint, BoundsPropagation) {
  Space s;
  const VarId a = s.new_var(0, 3);
  const VarId b = s.new_var(0, 7);
  const VarId z = s.new_var(0, 100);
  post_max(s, z, std::vector<VarId>{a, b});
  ASSERT_TRUE(s.propagate());
  EXPECT_EQ(s.max(z), 7);
  // Lowering z's max clips every operand.
  s.set_max(z, 5);
  ASSERT_TRUE(s.propagate());
  EXPECT_EQ(s.max(b), 5);
  // Raising z's min above all-but-one operand's max forces that operand.
  s.set_min(z, 4);
  ASSERT_TRUE(s.propagate());
  EXPECT_EQ(s.min(b), 4);  // a caps at 3, so b must reach z
}

TEST(ElementConstraint, MatchesBruteForce) {
  Space s;
  const std::vector<int> table{4, 7, 4, 9};
  const VarId index = s.new_var(-2, 10);  // out-of-range pruned by post
  const VarId result = s.new_var(0, 10);
  post_element(s, table, index, result);
  const auto expected = brute_force(
      {{0, 3}, {0, 10}}, [&](const Assignment& a) {
        return table[static_cast<std::size_t>(a[0])] == a[1];
      });
  EXPECT_EQ(solve_all(s, {index, result}), expected);
}

TEST(ElementConstraint, DomainConsistentBothWays) {
  Space s;
  const std::vector<int> table{4, 7, 4, 9};
  const VarId index = s.new_var(0, 3);
  const VarId result = s.new_var(0, 10);
  post_element(s, table, index, result);
  ASSERT_TRUE(s.propagate());
  EXPECT_EQ(s.dom(result).values(), (std::vector<int>{4, 7, 9}));
  s.remove(result, 4);
  ASSERT_TRUE(s.propagate());
  EXPECT_EQ(s.dom(index).values(), (std::vector<int>{1, 3}));
  s.assign(index, 3);
  ASSERT_TRUE(s.propagate());
  EXPECT_EQ(s.value(result), 9);
}

TEST(AllDifferent, MatchesBruteForce) {
  Space s;
  const VarId a = s.new_var(0, 2);
  const VarId b = s.new_var(0, 2);
  const VarId c = s.new_var(0, 2);
  post_all_different(s, std::vector<VarId>{a, b, c});
  const auto expected = brute_force(
      {{0, 2}, {0, 2}, {0, 2}}, [](const Assignment& v) {
        return v[0] != v[1] && v[1] != v[2] && v[0] != v[2];
      });
  EXPECT_EQ(solve_all(s, {a, b, c}), expected);
  EXPECT_EQ(expected.size(), 6u);  // 3!
}

TEST(AllDifferent, ForwardChecking) {
  Space s;
  const VarId a = s.new_var(0, 2);
  const VarId b = s.new_var(0, 2);
  post_all_different(s, std::vector<VarId>{a, b});
  s.assign(a, 1);
  ASSERT_TRUE(s.propagate());
  EXPECT_EQ(s.dom(b).values(), (std::vector<int>{0, 2}));
}

class CountOpTest : public ::testing::TestWithParam<RelOp> {};

TEST_P(CountOpTest, MatchesBruteForce) {
  const RelOp op = GetParam();
  Space s;
  std::vector<VarId> vars;
  for (int i = 0; i < 4; ++i) vars.push_back(s.new_var(0, 2));
  post_count(s, vars, /*value=*/1, op, /*n=*/2);
  const auto expected = brute_force(
      {{0, 2}, {0, 2}, {0, 2}, {0, 2}}, [&](const Assignment& a) {
        const int count = static_cast<int>(
            std::count(a.begin(), a.end(), 1));
        switch (op) {
          case RelOp::kEq: return count == 2;
          case RelOp::kLeq: return count <= 2;
          case RelOp::kGeq: return count >= 2;
          default: return false;
        }
      });
  EXPECT_EQ(solve_all(s, vars), expected);
}

INSTANTIATE_TEST_SUITE_P(EqLeqGeq, CountOpTest,
                         ::testing::Values(RelOp::kEq, RelOp::kLeq,
                                           RelOp::kGeq),
                         [](const auto& info) {
                           switch (info.param) {
                             case RelOp::kEq: return "Eq";
                             case RelOp::kLeq: return "Leq";
                             case RelOp::kGeq: return "Geq";
                             default: return "?";
                           }
                         });

TEST(CountConstraint, SaturationForcesAssignments) {
  Space s;
  std::vector<VarId> vars;
  for (int i = 0; i < 3; ++i) vars.push_back(s.new_var(0, 1));
  post_count(s, vars, 1, RelOp::kGeq, 3);  // all must be 1
  ASSERT_TRUE(s.propagate());
  for (VarId v : vars) EXPECT_EQ(s.value(v), 1);
}

}  // namespace
}  // namespace rr::cp
