// Inter-module communication model: .net parsing, doubled-center geometry,
// name binding, and the HPWL evaluators (full assignments, live pin sets,
// and the per-request PinContext ranking bounds).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "comm/net.hpp"
#include "model/generator.hpp"
#include "util/error.hpp"

namespace rr::comm {
namespace {

model::Module make_module(const std::string& name, int area, int height) {
  return model::Module(
      name, {model::ModuleGenerator::make_column_shape(area, 0, 1, height, 0)});
}

TEST(ParseNets, ParsesWeightsModulesAndTerminals) {
  const NetList nets = parse_nets(
      "# header comment\n"
      "\n"
      "net 4 a b\n"
      "net 2 a @3,5 c  # trailing comment\n");
  ASSERT_EQ(nets.nets.size(), 2u);
  EXPECT_EQ(nets.nets[0].weight, 4);
  EXPECT_EQ(nets.nets[0].modules, (std::vector<std::string>{"a", "b"}));
  EXPECT_TRUE(nets.nets[0].terminals.empty());
  EXPECT_EQ(nets.nets[1].weight, 2);
  EXPECT_EQ(nets.nets[1].modules, (std::vector<std::string>{"a", "c"}));
  ASSERT_EQ(nets.nets[1].terminals.size(), 1u);
  EXPECT_EQ(nets.nets[1].terminals[0], (Point{3, 5}));
  EXPECT_TRUE(nets.mentions("a"));
  EXPECT_FALSE(nets.mentions("d"));
}

TEST(ParseNets, ErrorsCarryTheLineNumber) {
  const auto expect_line_error = [](const std::string& text,
                                    const std::string& fragment) {
    try {
      (void)parse_nets(text);
      FAIL() << "expected InvalidInput for: " << text;
    } catch (const InvalidInput& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find(fragment), std::string::npos) << what;
    }
  };
  expect_line_error("net 1 a b\nwire 1 a b\n", "net:2");
  expect_line_error("net -3 a b\n", "net:1");
  expect_line_error("net 1x a b\n", "non-negative integer weight");
  expect_line_error("net 1\n", "at least 2 endpoints");
  expect_line_error("net 1 a\n", "at least 2 endpoints");
  expect_line_error("net 1 a @35\n", "terminal must be @x,y");
  expect_line_error("net 1 a @3,-5\n", "non-negative integers");
  expect_line_error("# ok\nnet\n", "missing net weight");
}

TEST(ParseNets, WeightZeroIsValidSyntax) {
  // Weight 0 parses fine (the zero-weight oracle runs real files with all
  // weights zeroed); it is dropped later, at binding/eval time.
  const NetList nets = parse_nets("net 0 a b\n");
  ASSERT_EQ(nets.nets.size(), 1u);
  EXPECT_EQ(nets.nets[0].weight, 0);
}

TEST(Center2Math, DoubledCentersStayIntegral) {
  // 3x2 bbox anchored at (4, 1): real center (5.5, 2.0) -> doubled (11, 4).
  EXPECT_EQ(center2(Rect{0, 0, 3, 2}, 4, 1), (Center2{11, 4}));
  // Terminal tile (3, 5): center (3.5, 5.5) -> doubled (7, 11).
  EXPECT_EQ(terminal_center2(Point{3, 5}), (Center2{7, 11}));
}

TEST(BoundNetsTest, BindsNamesAndEvaluatesHpwl) {
  const std::vector<model::Module> modules = {make_module("a", 4, 2),
                                              make_module("b", 4, 2),
                                              make_module("c", 4, 2)};
  const NetList nets =
      parse_nets("net 3 a b\nnet 2 b @0,0\nnet 5 a c\n");
  const BoundNets bound(nets, modules);
  ASSERT_FALSE(bound.empty());
  EXPECT_EQ(bound.module_count(), 3);
  EXPECT_EQ(bound.used_modules(), (std::vector<int>{0, 1, 2}));
  // a at doubled (2, 2), b at (10, 2), c at (2, 10).
  const std::vector<Center2> centers = {{2, 2}, {10, 2}, {2, 10}};
  // net a-b: 3 * (8 + 0); net b-@0,0 (center {1,1}): 2 * (9 + 1);
  // net a-c: 5 * (0 + 8).
  EXPECT_EQ(bound.wirelength2(centers), 3 * 8 + 2 * 10 + 5 * 8);
}

TEST(BoundNetsTest, ThrowsOnUnknownModuleName) {
  const std::vector<model::Module> modules = {make_module("a", 4, 2)};
  const NetList nets = parse_nets("net 1 a ghost\n");
  try {
    (void)BoundNets(nets, modules);
    FAIL() << "expected ModelError";
  } catch (const ModelError& e) {
    EXPECT_NE(std::string(e.what()).find("ghost"), std::string::npos)
        << e.what();
  }
}

TEST(BoundNetsTest, DropsZeroWeightAndDegenerateNets) {
  const std::vector<model::Module> modules = {make_module("a", 4, 2),
                                              make_module("b", 4, 2)};
  NetList nets = parse_nets("net 0 a b\n");
  Net dup;
  dup.weight = 4;
  dup.modules = {"a", "a"};  // two mentions of one module still bind
  nets.nets.push_back(dup);
  const BoundNets bound(nets, modules);
  // The duplicate-endpoint net survives binding (2 members), the zero
  // weight one does not.
  ASSERT_EQ(bound.nets().size(), 1u);
  EXPECT_EQ(bound.nets()[0].weight, 4);
  EXPECT_TRUE(BoundNets(parse_nets("net 0 a b\n"), modules).empty());
}

TEST(PinsWirelength, NetsWithFewerThanTwoPresentEndpointsContributeZero) {
  const NetList nets = parse_nets("net 3 a b\nnet 2 c @1,1\nnet 1 d e\n");
  const std::vector<NamedPin> pins = {{"a", {2, 2}}, {"b", {10, 6}},
                                      {"d", {0, 0}}};
  // a-b: 3 * (8 + 4) = 36. c-@1,1: terminal + no "c" pin -> only one
  // endpoint present -> 0. d-e: only "d" present -> 0.
  EXPECT_EQ(pins_wirelength2(nets, pins), 36);
}

TEST(PinsWirelength, CountsEveryLiveInstanceOfAName) {
  // Online traces may hold several instances of one module; each live pin
  // folds into the net's bounding box.
  const NetList nets = parse_nets("net 2 a b\n");
  const std::vector<NamedPin> pins = {
      {"a", {0, 0}}, {"a", {20, 0}}, {"b", {10, 8}}};
  EXPECT_EQ(pins_wirelength2(nets, pins), 2 * (20 + 8));
}

TEST(PinContextTest, CostIsClampedSpanGrowth) {
  const NetList nets = parse_nets("net 3 m x y\nnet 2 m @0,2\n");
  const std::vector<NamedPin> pins = {{"x", {4, 4}}, {"y", {8, 10}}};
  const PinContext ctx = PinContext::build(nets, "m", pins);
  ASSERT_FALSE(ctx.empty());
  ASSERT_EQ(ctx.bounds().size(), 2u);
  // Net 1 folds the x/y pins to the box {4..8} x {4..10}; net 2 folds the
  // @0,2 terminal to its doubled center {1, 5}.
  // Inside net 1's box, level with the terminal: only net 2 grows, in x.
  const Center2 inside{6, 5};
  EXPECT_EQ(ctx.cost2(inside), 0 + 2 * ((6 - 1) + 0));
  // Far right: net 1 grows by (20 - 8), net 2 by (20 - 1).
  const Center2 right{20, 5};
  EXPECT_EQ(ctx.cost2(right), 3 * (20 - 8) + 2 * (20 - 1));
  // Left of / below both boxes: growth on both axes.
  const Center2 origin{0, 0};
  EXPECT_EQ(ctx.cost2(origin), 3 * (4 + 4) + 2 * (1 + 5));
}

TEST(PinContextTest, DropsNetsWithNoPresentPartner) {
  // "m" is the only endpoint present: every anchor costs the same, so the
  // net is dropped; with no surviving nets the context reports empty and
  // the caller falls back to the area-only policy.
  const NetList nets = parse_nets("net 3 m x\n");
  EXPECT_TRUE(PinContext::build(nets, "m", {}).empty());
  // A terminal is always present, though.
  const NetList io = parse_nets("net 3 m @2,2\n");
  EXPECT_FALSE(PinContext::build(io, "m", {}).empty());
}

TEST(PinContextTest, ZeroWeightNetsNeverRank) {
  const NetList nets = parse_nets("net 0 m @2,2\n");
  EXPECT_TRUE(PinContext::build(nets, "m", {}).empty());
}

}  // namespace
}  // namespace rr::comm
