// Observability layer tests: the JSON document model, the counter/timer
// registry (reset, merge, disabled-mode no-op), and the per-propagator-kind
// instrumentation of Space::propagate.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "cp/brancher.hpp"
#include "cp/constraints.hpp"
#include "cp/search.hpp"
#include "cp/space.hpp"
#include "util/json.hpp"
#include "util/metrics.hpp"

namespace rr {
namespace {

/// Restores the global metrics switch when a test exits.
class MetricsSwitchGuard {
 public:
  MetricsSwitchGuard() : was_(metrics::enabled()) {}
  ~MetricsSwitchGuard() { metrics::set_enabled(was_); }

 private:
  bool was_;
};

// --- JSON document model ----------------------------------------------------

TEST(Json, BuildsAndDumpsCompact) {
  json::Value doc = json::Value::object();
  doc.set("n", json::Value(42));
  doc.set("name", json::Value("solver"));
  doc.set("ok", json::Value(true));
  json::Value list = json::Value::array();
  list.push_back(json::Value(1));
  list.push_back(json::Value(2.5));
  doc.set("xs", std::move(list));
  EXPECT_EQ(doc.dump(), R"({"n":42,"name":"solver","ok":true,"xs":[1,2.5]})");
}

TEST(Json, RoundTripsThroughParse) {
  json::Value doc = json::Value::object();
  doc.set("counters", json::Value::object());
  doc["counters"].set("placer.solves", json::Value(3));
  doc.set("text", json::Value("line\n\"quoted\"\ttab"));
  doc.set("negative", json::Value(-17.25));
  doc.set("none", json::Value());

  const json::Value parsed = json::parse(doc.dump(2));
  EXPECT_EQ(parsed.at("counters").at("placer.solves").as_number(), 3.0);
  EXPECT_EQ(parsed.at("text").as_string(), "line\n\"quoted\"\ttab");
  EXPECT_EQ(parsed.at("negative").as_number(), -17.25);
  EXPECT_TRUE(parsed.at("none").is_null());
  // Serialization is stable: dump(parse(dump(x))) == dump(x).
  EXPECT_EQ(parsed.dump(), doc.dump());
}

TEST(Json, ParsesInterchangeForms) {
  const json::Value doc =
      json::parse(R"(  {"a": [true, false, null, 1e3], "b": "A"} )");
  EXPECT_EQ(doc.at("a").size(), 4u);
  EXPECT_TRUE(doc.at("a").at(0).as_bool());
  EXPECT_EQ(doc.at("a").at(3).as_number(), 1000.0);
  EXPECT_EQ(doc.at("b").as_string(), "A");
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW(json::parse("{"), InvalidInput);
  EXPECT_THROW(json::parse("[1,]"), InvalidInput);
  EXPECT_THROW(json::parse("{\"a\":1} trailing"), InvalidInput);
  EXPECT_THROW(json::parse("nul"), InvalidInput);
  EXPECT_THROW(json::parse("\"unterminated"), InvalidInput);
}

TEST(Json, TypedAccessorsEnforceTypes) {
  const json::Value doc = json::parse(R"({"n": 1})");
  EXPECT_THROW((void)doc.at("n").as_string(), InvalidInput);
  EXPECT_THROW((void)doc.at("missing"), InvalidInput);
  EXPECT_FALSE(doc.contains("missing"));
}

// --- Registry ---------------------------------------------------------------

TEST(MetricsRegistry, CountsAndResets) {
  MetricsSwitchGuard guard;
  metrics::set_enabled(true);
  metrics::Registry registry;
  registry.add("a.counter");
  registry.add("a.counter", 4);
  registry.add("b.counter", 2);
  EXPECT_EQ(registry.counter("a.counter"), 5u);
  EXPECT_EQ(registry.counter("b.counter"), 2u);
  EXPECT_EQ(registry.counter("absent"), 0u);
  registry.reset();
  EXPECT_TRUE(registry.empty());
  EXPECT_EQ(registry.counter("a.counter"), 0u);
}

TEST(MetricsRegistry, DisabledModeIsANoOp) {
  MetricsSwitchGuard guard;
  metrics::set_enabled(false);
  metrics::Registry registry;
  registry.add("a.counter", 100);
  registry.record_time("a.timer", 1000);
  {
    metrics::ScopedTimer timer(registry, "scoped.timer");
  }
  EXPECT_TRUE(registry.empty());
  EXPECT_EQ(registry.timer("a.timer").count, 0u);
}

TEST(MetricsRegistry, MergesAcrossWorkers) {
  MetricsSwitchGuard guard;
  metrics::set_enabled(true);
  // One registry per portfolio worker, folded into a total at the end.
  metrics::Registry worker0;
  metrics::Registry worker1;
  worker0.add("nodes", 10);
  worker0.record_time("solve", 500);
  worker1.add("nodes", 32);
  worker1.add("fails", 7);
  worker1.record_time("solve", 1500);

  metrics::Registry total;
  total.merge(worker0);
  total.merge(worker1);
  EXPECT_EQ(total.counter("nodes"), 42u);
  EXPECT_EQ(total.counter("fails"), 7u);
  EXPECT_EQ(total.timer("solve").count, 2u);
  EXPECT_EQ(total.timer("solve").total_ns, 2000u);
}

TEST(MetricsRegistry, ThreadShardRedirectsGlobal) {
  MetricsSwitchGuard guard;
  metrics::set_enabled(true);
  metrics::Registry shard;
  EXPECT_EQ(&metrics::global(), &metrics::process());
  {
    metrics::ThreadShard redirect(shard);
    EXPECT_EQ(&metrics::global(), &shard);
    metrics::global().add("sharded.counter", 3);
    {
      metrics::Registry inner;
      metrics::ThreadShard nested(inner);
      EXPECT_EQ(&metrics::global(), &inner);
    }
    EXPECT_EQ(&metrics::global(), &shard);  // nesting restores
  }
  EXPECT_EQ(&metrics::global(), &metrics::process());
  EXPECT_EQ(shard.counter("sharded.counter"), 3u);
  EXPECT_EQ(metrics::process().counter("sharded.counter"), 0u);
}

TEST(MetricsRegistry, ConcurrentShardedRecordingIsExact) {
  // The service-worker pattern: each thread records through global() into
  // its own shard; the merged snapshot must account for every event exactly
  // (and TSan must see no race). Deliberately hammers one shared registry
  // from all threads as well — the documented per-call locking contract.
  MetricsSwitchGuard guard;
  metrics::set_enabled(true);
  constexpr int kThreads = 4;
  constexpr int kEvents = 2000;
  std::vector<metrics::Registry> shards(kThreads);
  metrics::Registry shared;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      metrics::ThreadShard redirect(shards[static_cast<std::size_t>(t)]);
      for (int i = 0; i < kEvents; ++i) {
        metrics::global().add("worker.events");
        metrics::global().record_time("worker.time", 5);
        shared.add("shared.events");
        shared.record_time("shared.time", 7);
      }
    });
  }
  // Concurrent snapshots must be consistent (never torn) while recording
  // is in flight.
  for (int i = 0; i < 50; ++i) {
    const json::Value snapshot = shared.to_json();
    EXPECT_TRUE(snapshot.at("counters").is_object());
  }
  for (std::thread& thread : threads) thread.join();

  metrics::Registry total;
  for (const metrics::Registry& shard : shards) total.merge(shard);
  EXPECT_EQ(total.counter("worker.events"),
            static_cast<std::uint64_t>(kThreads) * kEvents);
  EXPECT_EQ(total.timer("worker.time").count,
            static_cast<std::uint64_t>(kThreads) * kEvents);
  EXPECT_EQ(total.timer("worker.time").total_ns,
            static_cast<std::uint64_t>(kThreads) * kEvents * 5);
  EXPECT_EQ(shared.counter("shared.events"),
            static_cast<std::uint64_t>(kThreads) * kEvents);
  EXPECT_EQ(shared.timer("shared.time").total_ns,
            static_cast<std::uint64_t>(kThreads) * kEvents * 7);
}

TEST(MetricsRegistry, ScopedTimerRecordsWallTime) {
  MetricsSwitchGuard guard;
  metrics::set_enabled(true);
  metrics::Registry registry;
  {
    metrics::ScopedTimer timer(registry, "scope");
  }
  EXPECT_EQ(registry.timer("scope").count, 1u);
}

TEST(MetricsRegistry, SnapshotJsonHasDocumentedShape) {
  MetricsSwitchGuard guard;
  metrics::set_enabled(true);
  metrics::Registry registry;
  registry.add("z.last", 1);
  registry.add("a.first", 2);
  registry.record_time("t", 2500000000ull);  // 2.5 s

  const json::Value doc = json::parse(registry.to_json().dump());
  EXPECT_EQ(doc.at("counters").at("a.first").as_number(), 2.0);
  EXPECT_EQ(doc.at("counters").at("z.last").as_number(), 1.0);
  // Keys are sorted for stable output.
  EXPECT_EQ(doc.at("counters").members().front().first, "a.first");
  EXPECT_EQ(doc.at("timers").at("t").at("count").as_number(), 1.0);
  EXPECT_NEAR(doc.at("timers").at("t").at("seconds").as_number(), 2.5, 1e-9);
}

// --- Per-propagator-kind space instrumentation ------------------------------

/// x + y == 6, x != y over [0,5]^2; posts linear + distinct propagators.
cp::VarId build_small_model(cp::Space& space) {
  const cp::VarId x = space.new_var(0, 5);
  const cp::VarId y = space.new_var(0, 5);
  const std::vector<cp::VarId> vars{x, y};
  const std::vector<int> coeffs{1, 1};
  cp::post_linear(space, coeffs, vars, cp::RelOp::kEq, 6);
  cp::post_all_different(space, vars);
  return x;
}

TEST(SpaceKindStats, CollectsPerKindCountersWhenEnabled) {
#ifdef RRPLACE_DISABLE_METRICS
  GTEST_SKIP() << "metrics compiled out (RRPLACE_METRICS=OFF)";
#endif
  MetricsSwitchGuard guard;
  metrics::set_enabled(true);
  cp::Space space;  // snapshots the enabled flag now
  const cp::VarId x = build_small_model(space);
  ASSERT_TRUE(space.propagate());
  space.push();
  space.assign(x, 1);
  ASSERT_TRUE(space.propagate());

  const auto& linear =
      space.stats().by_kind[static_cast<int>(cp::PropKind::kLinear)];
  EXPECT_GT(linear.runs, 0u);
  EXPECT_GT(linear.prunings, 0u);  // assigning x forces y = 5
  const auto& distinct =
      space.stats().by_kind[static_cast<int>(cp::PropKind::kDistinct)];
  EXPECT_GT(distinct.runs, 0u);
  // Kind totals never exceed the global propagation count.
  std::uint64_t kind_runs = 0;
  for (const auto& bucket : space.stats().by_kind) kind_runs += bucket.runs;
  EXPECT_EQ(kind_runs, space.stats().propagations);
}

TEST(SpaceKindStats, CountsFailures) {
#ifdef RRPLACE_DISABLE_METRICS
  GTEST_SKIP() << "metrics compiled out (RRPLACE_METRICS=OFF)";
#endif
  MetricsSwitchGuard guard;
  metrics::set_enabled(true);
  cp::Space space;
  const cp::VarId x = build_small_model(space);
  ASSERT_TRUE(space.propagate());
  space.push();
  space.assign(x, 3);  // forces y = 3, violating all-different
  EXPECT_FALSE(space.propagate());
  std::uint64_t failures = 0;
  for (const auto& bucket : space.stats().by_kind)
    failures += bucket.failures;
  EXPECT_GE(failures, 1u);
}

TEST(SpaceKindStats, DisabledModeLeavesBucketsEmpty) {
  MetricsSwitchGuard guard;
  metrics::set_enabled(false);
  cp::Space space;
  const cp::VarId x = build_small_model(space);
  ASSERT_TRUE(space.propagate());
  space.push();
  space.assign(x, 1);
  ASSERT_TRUE(space.propagate());
  EXPECT_GT(space.stats().propagations, 0u);  // coarse counters stay on
  for (const auto& bucket : space.stats().by_kind) {
    EXPECT_EQ(bucket.runs, 0u);
    EXPECT_EQ(bucket.time_ns, 0u);
  }
}

TEST(SpaceKindStats, MergeSumsBuckets) {
  cp::SpaceStats a;
  a.propagations = 3;
  a.by_kind[0].runs = 2;
  a.by_kind[0].time_ns = 10;
  cp::SpaceStats b;
  b.propagations = 4;
  b.by_kind[0].runs = 5;
  b.by_kind[0].failures = 1;
  a.merge(b);
  EXPECT_EQ(a.propagations, 7u);
  EXPECT_EQ(a.by_kind[0].runs, 7u);
  EXPECT_EQ(a.by_kind[0].failures, 1u);
  EXPECT_EQ(a.by_kind[0].time_ns, 10u);
}

TEST(SearchStatsMerge, SumsCountersAndOrsComplete) {
  cp::SearchStats a;
  a.nodes = 10;
  a.fails = 2;
  a.max_depth = 3;
  cp::SearchStats b;
  b.nodes = 5;
  b.solutions = 1;
  b.max_depth = 7;
  b.restarts = 2;
  b.complete = true;
  a.merge(b);
  EXPECT_EQ(a.nodes, 15u);
  EXPECT_EQ(a.fails, 2u);
  EXPECT_EQ(a.solutions, 1u);
  EXPECT_EQ(a.max_depth, 7);
  EXPECT_EQ(a.restarts, 2u);
  EXPECT_TRUE(a.complete);
}

TEST(SearchStats, RestartEngineCountsRestarts) {
  // Minimize x subject to x + y == 6 with a tiny fail budget so the
  // geometric schedule needs at least one restart to finish.
  cp::Space space;
  const cp::VarId x = space.new_var(0, 5);
  const cp::VarId y = space.new_var(0, 5);
  const std::vector<cp::VarId> vars{x, y};
  const std::vector<int> coeffs{1, 1};
  cp::post_linear(space, coeffs, vars, cp::RelOp::kEq, 6);
  const auto make_brancher = [&](int) {
    return std::make_unique<cp::BasicBrancher>(
        vars, cp::VarSelect::kInputOrder, cp::ValSelect::kMax);
  };
  const std::vector<cp::VarId> report{x, y};
  const cp::MinimizeResult result = cp::minimize_with_restarts(
      space, make_brancher, x, report, {}, cp::RestartOptions{1, 1.5});
  EXPECT_TRUE(result.found);
  EXPECT_TRUE(result.stats.complete);
  EXPECT_GE(result.stats.restarts, 1u);
}

}  // namespace
}  // namespace rr
