// Trail stress test: a random walk of push / pop / mutate operations on a
// Space, mirrored against a reference implementation that snapshots full
// domain states per level. After every operation, all domains must agree.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "cp/space.hpp"
#include "util/rng.hpp"

namespace rr::cp {
namespace {

/// Reference: per-level full snapshots of every variable's value set.
class ReferenceStore {
 public:
  explicit ReferenceStore(int vars, int lo, int hi) {
    std::set<int> full;
    for (int v = lo; v <= hi; ++v) full.insert(v);
    current_.assign(static_cast<std::size_t>(vars), full);
  }

  void push() { stack_.push_back(current_); }
  void pop() {
    current_ = stack_.back();
    stack_.pop_back();
  }
  [[nodiscard]] int depth() const { return static_cast<int>(stack_.size()); }

  std::set<int>& dom(int v) { return current_[static_cast<std::size_t>(v)]; }

 private:
  std::vector<std::set<int>> current_;
  std::vector<std::vector<std::set<int>>> stack_;
};

class TrailStressTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TrailStressTest, SpaceMatchesSnapshotReference) {
  constexpr int kVars = 6;
  constexpr int kLo = 0;
  constexpr int kHi = 25;
  Rng rng(GetParam());

  Space space;
  std::vector<VarId> vars;
  for (int i = 0; i < kVars; ++i) vars.push_back(space.new_var(kLo, kHi));
  ReferenceStore ref(kVars, kLo, kHi);

  auto check_all = [&]() {
    for (int i = 0; i < kVars; ++i) {
      const auto& expected = ref.dom(i);
      const Domain& actual = space.dom(vars[static_cast<std::size_t>(i)]);
      ASSERT_EQ(actual.size(), static_cast<long>(expected.size()))
          << "var " << i;
      ASSERT_EQ(actual.values(),
                std::vector<int>(expected.begin(), expected.end()))
          << "var " << i;
    }
  };

  for (int step = 0; step < 600; ++step) {
    const int op = rng.uniform_int(0, 9);
    if (op <= 1) {  // push
      if (space.decision_level() < 12) {
        space.push();
        ref.push();
      }
    } else if (op <= 3) {  // pop
      if (space.decision_level() > 0) {
        space.pop();
        ref.pop();
      }
    } else {  // mutate a random variable, skipping ops that would fail
      const int i = rng.uniform_int(0, kVars - 1);
      auto& rdom = ref.dom(i);
      if (rdom.size() <= 1) continue;
      const VarId v = vars[static_cast<std::size_t>(i)];
      switch (rng.uniform_int(0, 3)) {
        case 0: {  // raise min, keep non-empty
          const int bound = *std::next(rdom.begin(),
                                       static_cast<long>(rng.bounded(rdom.size() - 1)) + 1);
          space.set_min(v, bound);
          rdom.erase(rdom.begin(), rdom.lower_bound(bound));
          break;
        }
        case 1: {  // lower max, keep non-empty
          const int bound = *std::next(rdom.begin(),
                                       static_cast<long>(rng.bounded(rdom.size() - 1)));
          space.set_max(v, bound);
          rdom.erase(rdom.upper_bound(bound), rdom.end());
          break;
        }
        case 2: {  // remove an interior value
          const int value = *std::next(rdom.begin(),
                                       static_cast<long>(rng.bounded(rdom.size())));
          if (rdom.size() <= 1) break;
          space.remove(v, value);
          rdom.erase(value);
          break;
        }
        case 3: {  // assign
          const int value = *std::next(rdom.begin(),
                                       static_cast<long>(rng.bounded(rdom.size())));
          space.assign(v, value);
          rdom.clear();
          rdom.insert(value);
          break;
        }
      }
    }
    ASSERT_EQ(space.decision_level(), ref.depth());
    check_all();
    if (::testing::Test::HasFatalFailure()) return;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrailStressTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

}  // namespace
}  // namespace rr::cp
