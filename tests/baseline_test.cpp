// Baseline placers: greedy bottom-left and simulated annealing.
#include <gtest/gtest.h>

#include <set>

#include "baseline/annealing.hpp"
#include "baseline/greedy.hpp"
#include "baseline/slots.hpp"
#include "fpga/builders.hpp"
#include "model/generator.hpp"
#include "placer/metrics.hpp"
#include "placer/placer.hpp"
#include "placer/validator.hpp"

namespace rr::baseline {
namespace {

using model::Module;
using model::ModuleGenerator;

std::shared_ptr<fpga::PartialRegion> homogeneous_region(int w, int h) {
  auto fabric =
      std::make_shared<const fpga::Fabric>(fpga::make_homogeneous(w, h));
  return std::make_shared<fpga::PartialRegion>(fabric);
}

Module rect_module(const std::string& name, int w, int h) {
  return Module(name, {ModuleGenerator::make_column_shape(w * h, 0, 1, h, 0)});
}

std::vector<Module> random_workload(int count, std::uint64_t seed) {
  model::GeneratorParams params;
  params.clb_min = 6;
  params.clb_max = 24;
  params.bram_blocks_max = 0;
  params.max_height = 6;
  return ModuleGenerator(params, seed).generate_many(count);
}

TEST(Greedy, ProducesValidPlacement) {
  const auto region = homogeneous_region(24, 8);
  const auto modules = random_workload(6, 3);
  const auto outcome = place_greedy(*region, modules);
  ASSERT_TRUE(outcome.solution.feasible);
  EXPECT_TRUE(placer::validate(*region, modules, outcome.solution).ok());
  EXPECT_GT(outcome.solution.extent, 0);
}

TEST(Greedy, PacksPerfectInstancePerfectly) {
  // First-fit decreasing on equal squares tiles the region exactly.
  const auto region = homogeneous_region(8, 4);
  std::vector<Module> modules;
  for (int i = 0; i < 8; ++i)
    modules.push_back(rect_module("m" + std::to_string(i), 2, 2));
  const auto outcome = place_greedy(*region, modules);
  ASSERT_TRUE(outcome.solution.feasible);
  EXPECT_EQ(outcome.solution.extent, 8);
  EXPECT_DOUBLE_EQ(
      placer::spanned_utilization(*region, modules, outcome.solution), 1.0);
}

TEST(Greedy, InfeasibleWhenModuleCannotFit) {
  const auto region = homogeneous_region(4, 4);
  const std::vector<Module> modules{rect_module("big", 5, 1)};
  const auto outcome = place_greedy(*region, modules);
  EXPECT_FALSE(outcome.solution.feasible);
}

TEST(Greedy, InputOrderDiffersFromDecreasing) {
  // A small module first can block the bottom-left corner for a large one.
  const auto region = homogeneous_region(8, 3);
  const std::vector<Module> modules{rect_module("small", 1, 1),
                                    rect_module("large", 3, 3)};
  GreedyOptions input_order;
  input_order.order = GreedyOrder::kInputOrder;
  const auto by_input = place_greedy(*region, modules, input_order);
  const auto by_area = place_greedy(*region, modules);
  ASSERT_TRUE(by_input.solution.feasible);
  ASSERT_TRUE(by_area.solution.feasible);
  // Decreasing-area order puts the large module at x=0.
  EXPECT_EQ(by_area.solution.placements[1].x, 0);
  EXPECT_GE(by_input.solution.extent, by_area.solution.extent);
}

TEST(Greedy, WithoutAlternativesUsesBaseShapeOnly) {
  const auto region = homogeneous_region(6, 2);
  const Module rotatable(
      "rot", {ModuleGenerator::make_column_shape(4, 0, 1, 4, 0),   // 1x4
              ModuleGenerator::make_column_shape(4, 0, 1, 1, 0)}); // 4x1
  const std::vector<Module> modules{rotatable};
  GreedyOptions with;
  const auto a = place_greedy(*region, modules, with);
  ASSERT_TRUE(a.solution.feasible);  // uses the 4x1 alternative
  EXPECT_EQ(a.solution.placements[0].shape, 1);
  GreedyOptions without;
  without.use_alternatives = false;
  const auto b = place_greedy(*region, modules, without);
  EXPECT_FALSE(b.solution.feasible);  // 1x4 cannot fit height 2
}

TEST(Greedy, NeverBeatsCpPlacer) {
  // Region sized above the worst-case workload area (8 x 24 cells).
  const auto region = homogeneous_region(32, 8);
  const auto modules = random_workload(8, 11);
  const auto greedy = place_greedy(*region, modules);
  placer::PlacerOptions options;
  options.time_limit_seconds = 3.0;
  const auto cp = placer::Placer(*region, modules, options).place();
  ASSERT_TRUE(greedy.solution.feasible);
  ASSERT_TRUE(cp.solution.feasible);
  EXPECT_LE(cp.solution.extent, greedy.solution.extent);
}

TEST(Slots, OneModulePerSlotRun) {
  // 12x4 region, slot width 4: three slots. Three 2x2 modules get one slot
  // each (no vertical stacking in slot-style placement).
  const auto region = homogeneous_region(12, 4);
  std::vector<Module> modules;
  for (int i = 0; i < 3; ++i)
    modules.push_back(rect_module("m" + std::to_string(i), 2, 2));
  SlotOptions options;
  options.slot_width = 4;
  const auto outcome = place_slots(*region, modules, options);
  ASSERT_TRUE(outcome.solution.feasible);
  EXPECT_EQ(outcome.solution.extent, 12);  // all three slots reserved
  EXPECT_TRUE(placer::validate(*region, modules, outcome.solution).ok());
  std::set<int> xs;
  for (const auto& p : outcome.solution.placements) xs.insert(p.x);
  EXPECT_EQ(xs, (std::set<int>{0, 4, 8}));  // slot-boundary anchors
}

TEST(Slots, WideModuleSpansMultipleSlots) {
  const auto region = homogeneous_region(12, 4);
  const std::vector<Module> modules{rect_module("wide", 6, 2),
                                    rect_module("small", 2, 2)};
  SlotOptions options;
  options.slot_width = 4;
  const auto outcome = place_slots(*region, modules, options);
  ASSERT_TRUE(outcome.solution.feasible);
  // wide takes slots 0-1, small slot 2.
  EXPECT_EQ(outcome.solution.placements[0].x, 0);
  EXPECT_EQ(outcome.solution.placements[1].x, 8);
  EXPECT_EQ(outcome.solution.extent, 12);
}

TEST(Slots, InfeasibleWhenSlotsRunOut) {
  const auto region = homogeneous_region(8, 4);
  std::vector<Module> modules;
  for (int i = 0; i < 3; ++i)
    modules.push_back(rect_module("m" + std::to_string(i), 2, 2));
  SlotOptions options;
  options.slot_width = 4;  // only two slots
  EXPECT_FALSE(place_slots(*region, modules, options).solution.feasible);
}

TEST(Slots, NeverBeatsTwoDimensionalGreedy) {
  // Slot-granular reservation cannot span fewer columns than free 2-D
  // bottom-left placement of the same workload.
  const auto region = homogeneous_region(36, 8);
  const auto modules = random_workload(6, 19);
  SlotOptions options;
  options.slot_width = 6;
  const auto slots = place_slots(*region, modules, options);
  const auto greedy = place_greedy(*region, modules);
  ASSERT_TRUE(greedy.solution.feasible);
  if (slots.solution.feasible)
    EXPECT_GE(slots.solution.extent, greedy.solution.extent);
}

TEST(Annealing, ProducesValidPlacement) {
  const auto region = homogeneous_region(24, 8);
  const auto modules = random_workload(6, 4);
  AnnealingOptions options;
  options.time_limit_seconds = 1.0;
  options.seed = 9;
  const auto outcome = place_annealing(*region, modules, options);
  ASSERT_TRUE(outcome.solution.feasible);
  EXPECT_TRUE(placer::validate(*region, modules, outcome.solution).ok());
}

TEST(Annealing, InfeasibleWhenModuleCannotFit) {
  const auto region = homogeneous_region(4, 4);
  const std::vector<Module> modules{rect_module("big", 5, 1)};
  AnnealingOptions options;
  options.time_limit_seconds = 0.2;
  const auto outcome = place_annealing(*region, modules, options);
  EXPECT_FALSE(outcome.solution.feasible);
}

TEST(Annealing, AtLeastAsGoodAsItsGreedySeed) {
  const auto region = homogeneous_region(32, 8);
  const auto modules = random_workload(8, 13);
  const auto greedy = place_greedy(*region, modules);
  AnnealingOptions options;
  options.time_limit_seconds = 1.0;
  options.seed = 17;
  const auto annealed = place_annealing(*region, modules, options);
  ASSERT_TRUE(greedy.solution.feasible);
  ASSERT_TRUE(annealed.solution.feasible);
  EXPECT_LE(annealed.solution.extent, greedy.solution.extent);
}

TEST(Annealing, DeterministicPerSeed) {
  const auto region = homogeneous_region(16, 6);
  const auto modules = random_workload(5, 21);
  AnnealingOptions options;
  options.time_limit_seconds = 0.0;  // unlimited; cooling terminates
  options.initial_temperature = 2.0;
  options.cooling = 0.8;
  options.moves_per_round_per_module = 10;
  options.seed = 33;
  const auto a = place_annealing(*region, modules, options);
  const auto b = place_annealing(*region, modules, options);
  ASSERT_EQ(a.solution.feasible, b.solution.feasible);
  if (a.solution.feasible) {
    EXPECT_EQ(a.solution.extent, b.solution.extent);
    for (std::size_t i = 0; i < a.solution.placements.size(); ++i) {
      EXPECT_EQ(a.solution.placements[i].x, b.solution.placements[i].x);
      EXPECT_EQ(a.solution.placements[i].y, b.solution.placements[i].y);
      EXPECT_EQ(a.solution.placements[i].shape, b.solution.placements[i].shape);
    }
  }
}

}  // namespace
}  // namespace rr::baseline
