// Shared helpers for constraint/search tests: exhaustive solution
// enumeration through the engine, and brute-force reference enumeration.
#pragma once

#include <algorithm>
#include <functional>
#include <vector>

#include "cp/brancher.hpp"
#include "cp/search.hpp"
#include "cp/space.hpp"

namespace rr::cp::testing {

using Assignment = std::vector<int>;

/// All solutions of `space` projected onto `vars`, sorted, found by DFS.
inline std::vector<Assignment> solve_all(Space& space,
                                         const std::vector<VarId>& vars) {
  BasicBrancher brancher(vars, VarSelect::kInputOrder, ValSelect::kMin);
  Search search(space, brancher, {});
  std::vector<Assignment> solutions;
  while (search.next()) {
    Assignment a;
    a.reserve(vars.size());
    for (VarId v : vars) a.push_back(space.value(v));
    solutions.push_back(std::move(a));
  }
  std::sort(solutions.begin(), solutions.end());
  return solutions;
}

/// Brute force: every assignment over the given inclusive ranges that
/// satisfies `ok`, sorted.
inline std::vector<Assignment> brute_force(
    const std::vector<std::pair<int, int>>& ranges,
    const std::function<bool(const Assignment&)>& ok) {
  std::vector<Assignment> out;
  Assignment current(ranges.size());
  std::function<void(std::size_t)> rec = [&](std::size_t i) {
    if (i == ranges.size()) {
      if (ok(current)) out.push_back(current);
      return;
    }
    for (int v = ranges[i].first; v <= ranges[i].second; ++v) {
      current[i] = v;
      rec(i + 1);
    }
  };
  rec(0);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace rr::cp::testing
