// Module model, design-alternative derivation, the random generator
// (§V.A invariants) and the .mlf library format.
#include <gtest/gtest.h>

#include "model/alternatives.hpp"
#include "model/generator.hpp"
#include "model/library.hpp"

namespace rr::model {
namespace {

constexpr int kClb = static_cast<int>(fpga::ResourceType::kClb);
constexpr int kBram = static_cast<int>(fpga::ResourceType::kBram);

TEST(ModuleTest, ConstructionAndValidation) {
  const ShapeFootprint shape = ShapeFootprint::from_typed(
      {TypedCells{kClb, CellSet({{0, 0}, {1, 0}})}});
  const Module m("alu", {shape});
  EXPECT_EQ(m.name(), "alu");
  EXPECT_EQ(m.shape_count(), 1);
  EXPECT_EQ(m.min_area(), 2);
  EXPECT_THROW(Module("", {shape}), ModelError);
  EXPECT_THROW(Module("x", {}), ModelError);
}

TEST(ModuleTest, WithoutAlternativesKeepsBaseShape) {
  const ShapeFootprint a = ShapeFootprint::from_typed(
      {TypedCells{kClb, CellSet({{0, 0}})}});
  const ShapeFootprint b = ShapeFootprint::from_typed(
      {TypedCells{kClb, CellSet({{0, 0}, {1, 0}})}});
  const Module m("m", {a, b});
  EXPECT_EQ(m.min_area(), 1);
  EXPECT_EQ(m.max_area(), 2);
  const Module base = m.without_alternatives();
  EXPECT_EQ(base.shape_count(), 1);
  EXPECT_EQ(base.shapes().front().area(), 1);
}

TEST(ModuleTest, DemandQueries) {
  const ShapeFootprint mixed = ShapeFootprint::from_typed(
      {TypedCells{kClb, CellSet({{1, 0}}, false)},
       TypedCells{kBram, CellSet({{0, 0}, {0, 1}}, false)}});
  const ShapeFootprint pure = ShapeFootprint::from_typed(
      {TypedCells{kClb, CellSet({{0, 0}, {0, 1}, {0, 2}})}});
  const Module m("m", {mixed, pure});
  EXPECT_EQ(m.demand(0, fpga::ResourceType::kBram), 2);
  EXPECT_EQ(m.demand(1, fpga::ResourceType::kBram), 0);
  EXPECT_EQ(m.min_demand(fpga::ResourceType::kBram), 0);
  EXPECT_EQ(m.min_demand(fpga::ResourceType::kClb), 1);
  EXPECT_THROW((void)m.demand(5, fpga::ResourceType::kClb), InvalidInput);
}

TEST(Alternatives, TransformShapeKeepsGroupsAligned) {
  // BRAM column left of a CLB column; rot180 must move it to the right
  // while preserving the relative offset.
  const ShapeFootprint base = ShapeFootprint::from_typed(
      {TypedCells{kBram, CellSet({{0, 0}, {0, 1}}, false)},
       TypedCells{kClb, CellSet({{1, 0}, {1, 1}}, false)}});
  const ShapeFootprint rotated = transform_shape(base, Transform::kRot180);
  EXPECT_EQ(rotated.bounding_box(), base.bounding_box());
  // After rot180 the BRAM group occupies x=1.
  for (const TypedCells& group : rotated.typed()) {
    for (const Point& p : group.cells.cells()) {
      if (group.resource == kBram) EXPECT_EQ(p.x, 1);
      else EXPECT_EQ(p.x, 0);
    }
  }
  EXPECT_FALSE(same_layout(base, rotated));
  // Full turn restores the original layout.
  EXPECT_TRUE(same_layout(
      base, transform_shape(rotated, Transform::kRot180)));
}

TEST(Alternatives, SameLayoutDetectsEquality) {
  const ShapeFootprint a = ShapeFootprint::from_typed(
      {TypedCells{kClb, CellSet({{0, 0}, {1, 0}})}});
  const ShapeFootprint b = ShapeFootprint::from_typed(
      {TypedCells{kClb, CellSet({{5, 3}, {6, 3}}, false)}});
  EXPECT_TRUE(same_layout(a, b));  // normalization makes them equal
}

TEST(Alternatives, AddUniqueShapeRejectsDuplicates) {
  std::vector<ShapeFootprint> shapes;
  const ShapeFootprint s = ShapeFootprint::from_typed(
      {TypedCells{kClb, CellSet({{0, 0}})}});
  EXPECT_TRUE(add_unique_shape(shapes, s));
  EXPECT_FALSE(add_unique_shape(shapes, s));
  EXPECT_EQ(shapes.size(), 1u);
}

TEST(Alternatives, SymmetryVariantsOfSquareCollapse) {
  const ShapeFootprint square = ShapeFootprint::from_typed(
      {TypedCells{kClb, CellSet({{0, 0}, {1, 0}, {0, 1}, {1, 1}})}});
  const auto variants = symmetry_variants(square, kAllTransforms);
  EXPECT_EQ(variants.size(), 1u);  // fully symmetric
}

TEST(Alternatives, SymmetryVariantsOfLShape) {
  const ShapeFootprint l = ShapeFootprint::from_typed(
      {TypedCells{kClb, CellSet({{0, 0}, {1, 0}, {0, 1}})}});
  const auto variants = symmetry_variants(l, kAllTransforms);
  EXPECT_EQ(variants.size(), 4u);  // L has 4 distinct orientations
}

TEST(Generator, ColumnShapeGeometry) {
  // 10 CLBs, 1 BRAM block of height 2, height 4, memory at column 0:
  // columns: BRAM(2 tall), CLB x4, CLB x4, CLB x2 -> bbox 4x4.
  const ShapeFootprint s =
      ModuleGenerator::make_column_shape(10, 1, 2, 4, 0);
  EXPECT_EQ(s.area(), 12);
  EXPECT_EQ(s.demand(kClb), 10);
  EXPECT_EQ(s.demand(kBram), 2);
  EXPECT_EQ(s.bounding_box(), (Rect{0, 0, 4, 4}));
  EXPECT_TRUE(s.all_cells().contains(Point{0, 0}));
  EXPECT_TRUE(s.all_cells().contains(Point{0, 1}));
  EXPECT_FALSE(s.all_cells().contains(Point{0, 2}));  // BRAM stack is 2 tall
  EXPECT_TRUE(s.all_cells().contains(Point{3, 1}));   // partial last column
  EXPECT_FALSE(s.all_cells().contains(Point{3, 2}));
}

TEST(Generator, ColumnShapeConnected) {
  const ShapeFootprint s =
      ModuleGenerator::make_column_shape(23, 2, 2, 6, 1);
  EXPECT_TRUE(s.all_cells().connected());
}

TEST(Generator, ColumnShapeClampsHeightToBramStack) {
  // Stack of 3 blocks x 2 = 6 exceeds the requested height 4.
  const ShapeFootprint s =
      ModuleGenerator::make_column_shape(4, 3, 2, 4, 0);
  EXPECT_EQ(s.bounding_box().height, 6);
  EXPECT_EQ(s.demand(kBram), 6);
}

TEST(Generator, RejectsInvalidParams) {
  GeneratorParams bad;
  bad.clb_min = 0;
  EXPECT_THROW(ModuleGenerator(bad, 1), InvalidInput);
  GeneratorParams reversed;
  reversed.clb_min = 50;
  reversed.clb_max = 20;
  EXPECT_THROW(ModuleGenerator(reversed, 1), InvalidInput);
  GeneratorParams alt;
  alt.alternatives = 0;
  EXPECT_THROW(ModuleGenerator(alt, 1), InvalidInput);
}

struct GeneratorCase {
  int alternatives;
  int max_width;
  std::uint64_t seed;
};

class GeneratorInvariantTest
    : public ::testing::TestWithParam<GeneratorCase> {};

TEST_P(GeneratorInvariantTest, WorkloadRespectsSpec) {
  const GeneratorCase param = GetParam();
  GeneratorParams params;
  params.clb_min = 20;
  params.clb_max = 100;
  params.bram_blocks_min = 0;
  params.bram_blocks_max = 4;
  params.alternatives = param.alternatives;
  params.max_width = param.max_width;
  ModuleGenerator generator(params, param.seed);
  const auto modules = generator.generate_many(10);
  ASSERT_EQ(modules.size(), 10u);
  for (const Module& m : modules) {
    EXPECT_GE(m.shape_count(), 1);
    EXPECT_LE(m.shape_count(), param.alternatives);
    const int base_clb = m.demand(0, fpga::ResourceType::kClb);
    const int base_bram = m.demand(0, fpga::ResourceType::kBram);
    EXPECT_GE(base_clb, 20);
    EXPECT_LE(base_clb, 100);
    EXPECT_GE(base_bram, 0);
    EXPECT_LE(base_bram, 4 * params.bram_block_height);
    for (int s = 0; s < m.shape_count(); ++s) {
      // Design alternatives provide identical functionality: equal
      // resource demand in this generator (the model allows otherwise).
      EXPECT_EQ(m.demand(s, fpga::ResourceType::kClb), base_clb);
      EXPECT_EQ(m.demand(s, fpga::ResourceType::kBram), base_bram);
      EXPECT_TRUE(m.shapes()[static_cast<std::size_t>(s)]
                      .all_cells()
                      .connected());
      if (param.max_width > 0) {
        EXPECT_LE(m.shapes()[static_cast<std::size_t>(s)]
                      .bounding_box()
                      .width,
                  param.max_width);
      }
    }
    // Shapes are pairwise distinct layouts.
    for (int a = 0; a < m.shape_count(); ++a)
      for (int b = a + 1; b < m.shape_count(); ++b)
        EXPECT_FALSE(same_layout(m.shapes()[static_cast<std::size_t>(a)],
                                 m.shapes()[static_cast<std::size_t>(b)]))
            << m.name() << " shapes " << a << "," << b;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GeneratorInvariantTest,
    ::testing::Values(GeneratorCase{1, 0, 1}, GeneratorCase{2, 0, 2},
                      GeneratorCase{4, 0, 3}, GeneratorCase{4, 11, 4},
                      GeneratorCase{8, 11, 5}, GeneratorCase{4, 7, 6}),
    [](const auto& info) {
      return "alt" + std::to_string(info.param.alternatives) + "_w" +
             std::to_string(info.param.max_width) + "_s" +
             std::to_string(static_cast<int>(info.param.seed));
    });

TEST(Generator, DeterministicPerSeed) {
  GeneratorParams params;
  ModuleGenerator a(params, 42), b(params, 42);
  const auto ma = a.generate_many(5);
  const auto mb = b.generate_many(5);
  for (std::size_t i = 0; i < ma.size(); ++i) {
    ASSERT_EQ(ma[i].shape_count(), mb[i].shape_count());
    for (int s = 0; s < ma[i].shape_count(); ++s)
      EXPECT_TRUE(same_layout(ma[i].shapes()[static_cast<std::size_t>(s)],
                              mb[i].shapes()[static_cast<std::size_t>(s)]));
  }
}

TEST(Generator, FourAlternativesForTypicalModules) {
  GeneratorParams params;
  params.alternatives = 4;
  params.max_width = 11;
  ModuleGenerator generator(params, 2011);
  int with_four = 0;
  const auto modules = generator.generate_many(20);
  for (const Module& m : modules) with_four += m.shape_count() == 4;
  // The vast majority of generated modules must reach 4 distinct layouts.
  EXPECT_GE(with_four, 16);
}

TEST(Mlf, RoundTrip) {
  GeneratorParams params;
  params.max_width = 9;
  ModuleGenerator generator(params, 7);
  const auto modules = generator.generate_many(4);
  const auto parsed = parse_mlf_string(write_mlf_string(modules));
  ASSERT_EQ(parsed.size(), modules.size());
  for (std::size_t i = 0; i < modules.size(); ++i) {
    EXPECT_EQ(parsed[i].name(), modules[i].name());
    ASSERT_EQ(parsed[i].shape_count(), modules[i].shape_count());
    for (int s = 0; s < modules[i].shape_count(); ++s)
      EXPECT_TRUE(
          same_layout(parsed[i].shapes()[static_cast<std::size_t>(s)],
                      modules[i].shapes()[static_cast<std::size_t>(s)]));
  }
}

TEST(Mlf, ParsesHandWrittenModule) {
  const auto modules = parse_mlf_string(
      "# library\n"
      "module decoder\n"
      "shape\n"
      "BC\n"
      "BC\n"
      ".C\n"
      "endshape\n"
      "endmodule\n");
  ASSERT_EQ(modules.size(), 1u);
  const Module& m = modules[0];
  EXPECT_EQ(m.name(), "decoder");
  EXPECT_EQ(m.shapes().front().area(), 5);
  EXPECT_EQ(m.demand(0, fpga::ResourceType::kBram), 2);
  // Top row first: the '.C' row is y=0.
  EXPECT_TRUE(m.shapes().front().all_cells().contains(Point{1, 0}));
  EXPECT_FALSE(m.shapes().front().all_cells().contains(Point{0, 0}));
  EXPECT_TRUE(m.shapes().front().all_cells().contains(Point{0, 1}));
}

class MlfErrorTest : public ::testing::TestWithParam<const char*> {};

TEST_P(MlfErrorTest, RejectsMalformedInput) {
  EXPECT_THROW(parse_mlf_string(GetParam()), InvalidInput);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, MlfErrorTest,
    ::testing::Values("module a\n",                        // unterminated
                      "module a\nshape\nCC\n",             // unterminated shape
                      "module a\nendmodule\n",             // no shapes
                      "shape\nC\nendshape\n",              // shape outside module
                      "module a\nshape\nCX\nendshape\nendmodule\n",  // bad char
                      "module a\nshape\nSS\nendshape\nendmodule\n",  // static tile
                      "module a\nshape\nendshape\nendmodule\n",      // empty shape
                      "module a\nmodule b\n",              // nested
                      "endmodule\n",                       // stray end
                      "garbage\n"));                       // unknown directive

TEST(Mlf, FileRoundTrip) {
  GeneratorParams params;
  ModuleGenerator generator(params, 3);
  const auto modules = generator.generate_many(2);
  const std::string path = ::testing::TempDir() + "/rr_modules.mlf";
  save_mlf(path, modules);
  const auto loaded = load_mlf(path);
  EXPECT_EQ(loaded.size(), 2u);
}

TEST(ShapePicture, RendersTopRowFirst) {
  const ShapeFootprint s = ShapeFootprint::from_typed(
      {TypedCells{kClb, CellSet({{0, 0}, {1, 0}}, false)},
       TypedCells{kBram, CellSet({{0, 1}}, false)}});
  EXPECT_EQ(shape_picture(s), "B.\nCC\n");
}

}  // namespace
}  // namespace rr::model
