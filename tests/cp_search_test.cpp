// Search engine tests: DFS completeness, branch-and-bound optimality,
// limits, branchers and the parallel portfolio.
#include <gtest/gtest.h>

#include <atomic>

#include "cp/constraints.hpp"
#include "cp/portfolio.hpp"
#include "cp_test_utils.hpp"

namespace rr::cp {
namespace {

using testing::solve_all;

/// n-queens model; returns the column variables.
std::vector<VarId> queens(Space& s, int n) {
  std::vector<VarId> cols;
  for (int i = 0; i < n; ++i) cols.push_back(s.new_var(0, n - 1));
  post_all_different(s, cols);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      // cols[i] != cols[j] +/- (j - i)
      post_rel(s, cols[i], RelOp::kNeq, cols[j], j - i);
      post_rel(s, cols[i], RelOp::kNeq, cols[j], i - j);
    }
  }
  return cols;
}

TEST(Search, CountsAllNQueensSolutions) {
  // Known counts: n=6 -> 4, n=7 -> 40, n=8 -> 92.
  const std::vector<std::pair<int, std::size_t>> expected{
      {6, 4}, {7, 40}, {8, 92}};
  for (const auto& [n, count] : expected) {
    Space s;
    const auto cols = queens(s, n);
    EXPECT_EQ(solve_all(s, cols).size(), count) << "n=" << n;
  }
}

TEST(Search, SolutionAtRootWithoutBranching) {
  Space s;
  const VarId x = s.new_var(3, 3);
  BasicBrancher brancher({x}, VarSelect::kInputOrder, ValSelect::kMin);
  Search search(s, brancher, {});
  EXPECT_TRUE(search.next());
  EXPECT_EQ(s.value(x), 3);
  EXPECT_FALSE(search.next());
  EXPECT_TRUE(search.stats().complete);
  EXPECT_EQ(search.stats().solutions, 1u);
}

TEST(Search, InfeasibleAtRoot) {
  Space s;
  const VarId x = s.new_var(0, 1);
  post_rel_const(s, x, RelOp::kGt, 5);
  BasicBrancher brancher({x}, VarSelect::kInputOrder, ValSelect::kMin);
  Search search(s, brancher, {});
  EXPECT_FALSE(search.next());
  EXPECT_TRUE(search.stats().complete);
}

TEST(Search, NodeLimitStopsEarly) {
  Space s;
  const auto cols = queens(s, 8);
  BasicBrancher brancher(cols, VarSelect::kInputOrder, ValSelect::kMin);
  Search::Options options;
  options.limits.max_nodes = 5;
  Search search(s, brancher, options);
  int found = 0;
  while (search.next()) ++found;
  EXPECT_FALSE(search.stats().complete);
  EXPECT_LE(search.stats().nodes, 6u);
  EXPECT_EQ(found, 0);
}

TEST(Search, FailLimitStopsEarly) {
  Space s;
  const auto cols = queens(s, 8);
  BasicBrancher brancher(cols, VarSelect::kInputOrder, ValSelect::kMin);
  Search::Options options;
  options.limits.max_fails = 3;
  Search search(s, brancher, options);
  while (search.next()) {
  }
  EXPECT_FALSE(search.stats().complete);
}

TEST(Search, ResumableAfterLimit) {
  // Raising the node limit step by step must still find every solution
  // exactly once (the engine resumes where it stopped).
  Space s;
  const auto cols = queens(s, 6);
  BasicBrancher brancher(cols, VarSelect::kInputOrder, ValSelect::kMin);
  Search::Options options;
  options.limits.max_nodes = 1;  // will be bumped via a fresh engine below
  Search search(s, brancher, {});
  // Without limits, enumerate all; this also exercises next() resumption
  // across solutions.
  int found = 0;
  while (search.next()) ++found;
  EXPECT_EQ(found, 4);
  EXPECT_TRUE(search.stats().complete);
}

TEST(BranchAndBound, FindsOptimumAndProvesIt) {
  // Minimize z = max(x, y) with x + y >= 7: optimum is 4 (x=3,y=4 or 4,3).
  Space s;
  const VarId x = s.new_var(0, 10);
  const VarId y = s.new_var(0, 10);
  const VarId z = s.new_var(0, 10);
  post_linear(s, std::vector<int>{1, 1}, std::vector<VarId>{x, y},
              RelOp::kGeq, 7);
  post_max(s, z, std::vector<VarId>{x, y});
  BasicBrancher brancher({x, y}, VarSelect::kInputOrder, ValSelect::kMin);
  const MinimizeResult result =
      minimize(s, brancher, z, std::vector<VarId>{x, y});
  EXPECT_TRUE(result.found);
  EXPECT_EQ(result.objective, 4);
  EXPECT_TRUE(result.stats.complete);
  ASSERT_EQ(result.assignment.size(), 2u);
  EXPECT_GE(result.assignment[0] + result.assignment[1], 7);
  EXPECT_EQ(std::max(result.assignment[0], result.assignment[1]), 4);
}

TEST(BranchAndBound, ImprovingSolutionsAreMonotone) {
  Space s;
  const VarId x = s.new_var(0, 20);
  const VarId z = s.new_var(0, 20);
  post_rel(s, z, RelOp::kEq, x);
  BasicBrancher brancher({x}, VarSelect::kInputOrder, ValSelect::kMax);
  Search::Options options;
  options.objective = z;
  Search search(s, brancher, options);
  long last = kNoBound;
  int solutions = 0;
  while (search.next()) {
    const long value = s.min(z);
    EXPECT_LT(value, last);
    last = value;
    ++solutions;
  }
  EXPECT_TRUE(search.stats().complete);
  EXPECT_EQ(last, 0);
  EXPECT_GT(solutions, 1);
}

TEST(BranchAndBound, InfeasibleReportsNotFound) {
  Space s;
  const VarId x = s.new_var(0, 3);
  post_rel_const(s, x, RelOp::kGt, 9);
  BasicBrancher brancher({x}, VarSelect::kInputOrder, ValSelect::kMin);
  const MinimizeResult result =
      minimize(s, brancher, x, std::vector<VarId>{x});
  EXPECT_FALSE(result.found);
  EXPECT_TRUE(result.stats.complete);
}

TEST(BranchAndBound, SharedBoundPrunesImmediately) {
  Space s;
  const VarId x = s.new_var(0, 10);
  BasicBrancher brancher({x}, VarSelect::kInputOrder, ValSelect::kMax);
  std::atomic<long> bound{4};  // someone already found 4
  Search::Options options;
  options.objective = x;
  options.shared_bound = &bound;
  Search search(s, brancher, options);
  ASSERT_TRUE(search.next());
  EXPECT_LT(s.value(x), 4);
}

TEST(Brancher, FirstFailPicksSmallestDomain) {
  Space s;
  const VarId wide = s.new_var(0, 9);
  const VarId narrow = s.new_var(0, 1);
  BasicBrancher brancher({wide, narrow}, VarSelect::kFirstFail,
                         ValSelect::kMin);
  const auto choice = brancher.choose(s);
  ASSERT_TRUE(choice.has_value());
  EXPECT_EQ(choice->var, narrow);
  EXPECT_EQ(choice->value, 0);
}

TEST(Brancher, ValSelectMax) {
  Space s;
  const VarId x = s.new_var(2, 6);
  BasicBrancher brancher({x}, VarSelect::kInputOrder, ValSelect::kMax);
  EXPECT_EQ(brancher.choose(s)->value, 6);
}

TEST(Brancher, RandomValueIsInDomain) {
  Space s;
  const VarId x = s.new_var(Domain::from_values({1, 5, 9}));
  BasicBrancher brancher({x}, VarSelect::kRandom, ValSelect::kRandom, 3);
  for (int i = 0; i < 50; ++i) {
    const auto choice = brancher.choose(s);
    ASSERT_TRUE(choice.has_value());
    EXPECT_TRUE(s.dom(x).contains(choice->value));
  }
}

TEST(Brancher, ReturnsNulloptWhenAllAssigned) {
  Space s;
  const VarId x = s.new_var(4, 4);
  BasicBrancher brancher({x}, VarSelect::kFirstFail, ValSelect::kMin);
  EXPECT_FALSE(brancher.choose(s).has_value());
}

TEST(FunctionBrancherTest, DrivesSearch) {
  Space s;
  const VarId x = s.new_var(0, 3);
  FunctionBrancher brancher([&](const Space& space) -> std::optional<Choice> {
    if (space.assigned(x)) return std::nullopt;
    return Choice{x, space.dom(x).max()};
  });
  Search search(s, brancher, {});
  ASSERT_TRUE(search.next());
  EXPECT_EQ(s.value(x), 3);
}

TEST(RestartingSearch, FindsAndProvesOptimum) {
  Space s;
  const VarId x = s.new_var(0, 10);
  const VarId y = s.new_var(0, 10);
  const VarId z = s.new_var(0, 10);
  post_linear(s, std::vector<int>{1, 1}, std::vector<VarId>{x, y},
              RelOp::kGeq, 7);
  post_max(s, z, std::vector<VarId>{x, y});
  int restarts = 0;
  const MinimizeResult result = minimize_with_restarts(
      s,
      [&](int restart) {
        return std::make_unique<BasicBrancher>(
            std::vector<VarId>{x, y}, VarSelect::kInputOrder,
            restart == 0 ? ValSelect::kMin : ValSelect::kRandom,
            static_cast<std::uint64_t>(restart) + 1);
      },
      z, std::vector<VarId>{x, y}, {}, RestartOptions{}, &restarts);
  EXPECT_TRUE(result.found);
  EXPECT_EQ(result.objective, 4);
  EXPECT_TRUE(result.stats.complete);
  EXPECT_GE(restarts, 1);
}

TEST(RestartingSearch, TinyBudgetForcesManyRestarts) {
  Space s;
  const auto cols = queens(s, 8);
  int restarts = 0;
  RestartOptions restart_options;
  restart_options.base_fails = 2;
  restart_options.growth = 1.2;
  SearchLimits limits;
  limits.max_fails = 200;  // global cap so the test terminates quickly
  const VarId objective = cols[0];
  const MinimizeResult result = minimize_with_restarts(
      s,
      [&](int restart) {
        return std::make_unique<BasicBrancher>(
            cols, VarSelect::kInputOrder, ValSelect::kRandom,
            static_cast<std::uint64_t>(restart) + 7);
      },
      objective, cols, limits, restart_options, &restarts);
  EXPECT_GT(restarts, 3);
  // Either a solution was found or the global fail cap fired; both fine.
  if (result.stats.complete) {
    EXPECT_TRUE(result.found);
  }
}

TEST(RestartingSearch, GlobalFailBudgetIsNeverExceeded) {
  // Regression: each restart used to receive min(max_fails, restart_fails)
  // afresh, without subtracting fails already spent, so the total could
  // overshoot the global budget by nearly a full restart — and Search
  // itself overshot inside backtrack(), which counted failed right
  // branches without consulting the limits. The global cap must bound the
  // *recorded* total exactly, across every restart combined.
  for (const std::uint64_t max_fails : {1u, 7u, 25u, 60u}) {
    Space s;
    const auto cols = queens(s, 8);
    RestartOptions restart_options;
    restart_options.base_fails = 50;  // restarts larger than some budgets
    restart_options.growth = 1.5;
    SearchLimits limits;
    limits.max_fails = max_fails;
    const MinimizeResult result = minimize_with_restarts(
        s,
        [&](int restart) {
          return std::make_unique<BasicBrancher>(
              cols, VarSelect::kInputOrder, ValSelect::kRandom,
              static_cast<std::uint64_t>(restart) + 3);
        },
        cols[0], cols, limits, restart_options);
    EXPECT_LE(result.stats.fails, max_fails) << "budget " << max_fails;
  }
}

TEST(SearchTest, FailLimitIsExactInsideBacktrack) {
  // A single Search must stop exactly at max_fails even when the limit is
  // crossed while unwinding exhausted right branches.
  for (const std::uint64_t max_fails : {1u, 3u, 10u, 33u}) {
    Space s;
    const auto cols = queens(s, 7);
    BasicBrancher brancher(cols, VarSelect::kInputOrder, ValSelect::kMin);
    Search::Options options;
    options.limits.max_fails = max_fails;
    Search search(s, brancher, options);
    while (search.next()) {
    }
    EXPECT_LE(search.stats().fails, max_fails) << "budget " << max_fails;
    // Enumerating all of 7-queens needs far more fails than any budget
    // here, so the search must have stopped on the limit, not exhaustion.
    EXPECT_FALSE(search.stats().complete) << "budget " << max_fails;
  }
}

PortfolioModel make_bab_model(int /*worker*/) {
  PortfolioModel model;
  model.space = std::make_unique<Space>();
  const VarId x = model.space->new_var(0, 10);
  const VarId y = model.space->new_var(0, 10);
  const VarId z = model.space->new_var(0, 20);
  post_linear(*model.space, std::vector<int>{1, 1}, std::vector<VarId>{x, y},
              RelOp::kGeq, 9);
  post_max(*model.space, z, std::vector<VarId>{x, y});
  model.brancher = std::make_unique<BasicBrancher>(
      std::vector<VarId>{x, y}, VarSelect::kInputOrder, ValSelect::kMin);
  model.objective = z;
  model.report = {x, y};
  return model;
}

TEST(Portfolio, SingleWorkerMatchesSequential) {
  const PortfolioResult result = minimize_portfolio(make_bab_model, 1, {});
  EXPECT_TRUE(result.found);
  EXPECT_EQ(result.objective, 5);  // ceil(9/2)
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(result.winner, 0);
}

TEST(Portfolio, MultiWorkerFindsSameOptimum) {
  const PortfolioResult result = minimize_portfolio(make_bab_model, 4, {});
  EXPECT_TRUE(result.found);
  EXPECT_EQ(result.objective, 5);
  EXPECT_TRUE(result.complete);
  ASSERT_EQ(result.assignment.size(), 2u);
  EXPECT_GE(result.assignment[0] + result.assignment[1], 9);
}

TEST(Portfolio, RejectsZeroWorkers) {
  EXPECT_THROW(minimize_portfolio(make_bab_model, 0, {}), InvalidInput);
}

}  // namespace
}  // namespace rr::cp
