// Placement service: queue semantics, content signatures, solve-context
// caching, the Tenant state machine (including fault displacement and the
// stale-context regression), and the end-to-end server.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <optional>
#include <vector>

#include "fpga/builders.hpp"
#include "model/generator.hpp"
#include "service/queue.hpp"
#include "service/service.hpp"
#include "service/solve_context.hpp"
#include "util/clock.hpp"
#include "util/json.hpp"

namespace rr::service {
namespace {

using model::Module;
using model::ModuleGenerator;

std::shared_ptr<const fpga::Fabric> homogeneous_fabric(int w, int h) {
  return std::make_shared<const fpga::Fabric>(fpga::make_homogeneous(w, h));
}

Module rect_module(const std::string& name, int cells, int height) {
  return Module(name, {ModuleGenerator::make_column_shape(cells, 0, 1, height,
                                                          0)});
}

std::vector<Module> small_library() {
  return {rect_module("a", 4, 2), rect_module("b", 2, 2),
          rect_module("c", 1, 1)};
}

Tenant::Config tenant_config(int w, int h, SolveContextCache* cache) {
  Tenant::Config config;
  config.fabric = homogeneous_fabric(w, h);
  config.library = small_library();
  config.cache = cache;
  return config;
}

Request place_req(int tenant, int instance, int module) {
  Request r;
  r.tenant = tenant;
  r.op = RequestOp::kPlace;
  r.instance = instance;
  r.module = module;
  return r;
}

Request remove_req(int tenant, int instance) {
  Request r;
  r.tenant = tenant;
  r.op = RequestOp::kRemove;
  r.instance = instance;
  return r;
}

Request fault_req(int tenant, const fpga::FaultEvent& event) {
  Request r;
  r.tenant = tenant;
  r.op = RequestOp::kFault;
  r.fault = event;
  return r;
}

fpga::FaultEvent tile_fault(int x, int y, fpga::FaultKind kind) {
  fpga::FaultEvent e;
  e.op = fpga::FaultEvent::Op::kTile;
  e.kind = kind;
  e.rect = Rect{x, y, 1, 1};
  return e;
}

TEST(BoundedQueue, FifoAndCloseSemantics) {
  BoundedQueue<int> queue(4);
  EXPECT_TRUE(queue.push(1));
  EXPECT_TRUE(queue.push(2));
  EXPECT_TRUE(queue.push(3));
  queue.close();
  EXPECT_FALSE(queue.push(4));  // closed: push fails
  // Closed queues drain in order, then signal shutdown.
  EXPECT_EQ(queue.pop(), std::optional<int>(1));
  EXPECT_EQ(queue.pop(), std::optional<int>(2));
  EXPECT_EQ(queue.pop(), std::optional<int>(3));
  EXPECT_EQ(queue.pop(), std::nullopt);
}

TEST(BoundedQueue, TryPopIfOnlyTakesMatchingHead) {
  BoundedQueue<int> queue(4);
  ASSERT_TRUE(queue.push(10));
  ASSERT_TRUE(queue.push(21));
  const auto even = [](int v) { return v % 2 == 0; };
  EXPECT_EQ(queue.try_pop_if(even), std::optional<int>(10));
  EXPECT_EQ(queue.try_pop_if(even), std::nullopt);  // head 21 doesn't match
  EXPECT_EQ(queue.pop(), std::optional<int>(21));
  EXPECT_EQ(queue.try_pop_if(even), std::nullopt);  // empty
}

TEST(Signatures, FabricSignatureTracksFaultOverlay) {
  const auto fabric = homogeneous_fabric(8, 4);
  fpga::PartialRegion region(fabric);
  const std::uint64_t healthy = fabric_signature(region);

  fpga::FaultMap faults(*fabric);
  faults.inject(2, 1, fpga::FaultKind::kTransient);
  region.apply_faults(faults);
  const std::uint64_t faulty = fabric_signature(region);
  EXPECT_NE(healthy, faulty);

  // Repairing the transient fault restores the exact healthy signature —
  // the cache entry for the healthy fabric becomes reusable again.
  faults.repair_transient();
  region.apply_faults(faults);
  EXPECT_EQ(fabric_signature(region), healthy);
}

TEST(Signatures, LibrarySignatureIsOrderAndContentSensitive) {
  const std::vector<Module> lib = small_library();
  std::vector<Module> swapped = {lib[1], lib[0], lib[2]};
  EXPECT_NE(library_signature(lib), library_signature(swapped));

  std::vector<Module> renamed = {rect_module("a", 4, 2),
                                 rect_module("b", 2, 2),
                                 rect_module("d", 1, 1)};
  EXPECT_NE(library_signature(lib), library_signature(renamed));
  EXPECT_EQ(library_signature(lib), library_signature(small_library()));
}

TEST(SolveContextCache, HitsMissesAndInvalidation) {
  const auto fabric = homogeneous_fabric(8, 4);
  const fpga::PartialRegion region(fabric);
  const std::vector<Module> lib = small_library();

  SolveContextCache cache(true);
  const auto first = cache.acquire(region, lib, true);
  const auto second = cache.acquire(region, lib, true);
  EXPECT_EQ(first, second);  // shared entry
  // A different alternatives setting is a different context.
  const auto no_alts = cache.acquire(region, lib, false);
  EXPECT_NE(first, no_alts);
  SolveContextCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.entries, 2u);

  cache.invalidate(first->key());
  stats = cache.stats();
  EXPECT_EQ(stats.invalidations, 1u);
  EXPECT_EQ(stats.entries, 1u);
  // Holders keep the old context alive; re-acquire rebuilds (a miss).
  const auto rebuilt = cache.acquire(region, lib, true);
  EXPECT_NE(rebuilt, first);
  EXPECT_EQ(cache.stats().misses, 3u);
}

TEST(SolveContextCache, LruEvictsLeastRecentlyUsedAtCapacity) {
  const std::vector<Module> lib = small_library();
  // Three distinct fabric signatures.
  const fpga::PartialRegion region_a(homogeneous_fabric(8, 4));
  const fpga::PartialRegion region_b(homogeneous_fabric(9, 4));
  const fpga::PartialRegion region_c(homogeneous_fabric(10, 4));

  SolveContextCache cache(true, 2);
  const auto a = cache.acquire(region_a, lib, true);
  const auto b = cache.acquire(region_b, lib, true);
  EXPECT_EQ(cache.stats().entries, 2u);
  // Touch A so B becomes the least-recently-used entry; inserting C must
  // evict B, not A.
  EXPECT_EQ(cache.acquire(region_a, lib, true), a);
  const auto c = cache.acquire(region_c, lib, true);
  SolveContextCacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(cache.acquire(region_a, lib, true), a);  // survived: hit
  EXPECT_NE(cache.acquire(region_b, lib, true), b);  // evicted: rebuild
  stats = cache.stats();
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.misses, 4u);
}

TEST(Tenant, FaultRekeysWithoutFlushingHealthyEntries) {
  // Two tenants share one cache and one fabric state. A fault local to one
  // tenant re-keys only that tenant's context; the healthy-fabric entry the
  // other tenant runs on must stay cached (the flush regression the old
  // last-user eviction used to cause).
  SolveContextCache cache(true);
  Tenant healthy(tenant_config(8, 4, &cache));
  Tenant faulting(tenant_config(8, 4, &cache));
  EXPECT_EQ(healthy.context(), faulting.context());  // one shared entry
  const std::uint64_t misses_before = cache.stats().misses;

  ASSERT_EQ(faulting
                .apply(fault_req(0, tile_fault(0, 0,
                                               fpga::FaultKind::kPermanent)))
                .status,
            Response::Status::kFaulted);
  EXPECT_NE(faulting.context(), healthy.context());
  EXPECT_EQ(cache.stats().entries, 2u);
  EXPECT_EQ(cache.stats().evictions, 0u);

  // The healthy tenant re-resolves its context: a hit, no rebuild.
  ASSERT_EQ(healthy.apply(place_req(0, 0, 2)).status,
            Response::Status::kPlaced);
  const auto reacquired = cache.acquire(
      healthy.region(), std::vector<Module>(small_library()), true);
  EXPECT_EQ(reacquired, healthy.context());
  EXPECT_EQ(cache.stats().misses, misses_before + 1);  // only the re-key
}

TEST(SolveContextCache, DisabledModeCachesNothing) {
  const auto fabric = homogeneous_fabric(8, 4);
  const fpga::PartialRegion region(fabric);
  const std::vector<Module> lib = small_library();

  SolveContextCache cache(false);
  const auto a = cache.acquire(region, lib, true);
  const auto b = cache.acquire(region, lib, true);
  EXPECT_NE(a, b);
  const SolveContextCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.entries, 0u);
}

TEST(SolveContext, LookupResolvesLibraryModulesOnly) {
  const auto fabric = homogeneous_fabric(8, 4);
  const fpga::PartialRegion region(fabric);
  const std::vector<Module> lib = small_library();
  SolveContextCache cache(true);
  const auto context = cache.acquire(region, lib, true);

  ASSERT_NE(context->lookup(lib[1]), nullptr);
  EXPECT_EQ(context->lookup(lib[1]), &(*context->tables())[1]);
  const Module stranger = rect_module("zz", 1, 1);
  EXPECT_EQ(context->lookup(stranger), nullptr);
}

TEST(Tenant, PlaceRemoveAndErrorPaths) {
  SolveContextCache cache(true);
  Tenant tenant(tenant_config(8, 4, &cache));

  const Response placed = tenant.apply(place_req(0, 1, 0));
  ASSERT_EQ(placed.status, Response::Status::kPlaced);
  EXPECT_EQ(placed.placement.module, 1);  // instance id echoed back

  // Duplicate instance id and out-of-range module are request errors, not
  // crashes.
  EXPECT_EQ(tenant.apply(place_req(0, 1, 0)).status,
            Response::Status::kError);
  EXPECT_EQ(tenant.apply(place_req(0, 2, 99)).status,
            Response::Status::kError);
  EXPECT_EQ(tenant.apply(remove_req(0, 42)).status, Response::Status::kError);

  EXPECT_EQ(tenant.apply(remove_req(0, 1)).status, Response::Status::kRemoved);
  EXPECT_EQ(tenant.placer().live_count(), 0);
}

TEST(Tenant, CachedAndUncachedPlacementsAreBitIdentical) {
  SolveContextCache cache(true);
  Tenant cached(tenant_config(10, 5, &cache));
  Tenant uncached(tenant_config(10, 5, nullptr));

  // A churn sequence with placements, rejections, and removals.
  const std::vector<Request> script = {
      place_req(0, 0, 0), place_req(0, 1, 1), place_req(0, 2, 2),
      place_req(0, 3, 0), place_req(0, 4, 0), remove_req(0, 1),
      place_req(0, 5, 1), place_req(0, 6, 0), place_req(0, 7, 0),
      place_req(0, 8, 0), place_req(0, 9, 0), place_req(0, 10, 2),
  };
  for (const Request& request : script) {
    const Response a = cached.apply(request);
    const Response b = uncached.apply(request);
    EXPECT_EQ(a, b);
  }
  EXPECT_EQ(cached.placer().live_placements(),
            uncached.placer().live_placements());
  ASSERT_NE(cached.context(), nullptr);
  EXPECT_GE(cache.stats().hits + cache.stats().misses, 1u);
}

TEST(Tenant, FaultDisplacesAndRecoversWithFreshContext) {
  SolveContextCache cache(true);
  Tenant tenant(tenant_config(4, 1, &cache));
  // 4x1 strip, 1x1 module: deterministic bottom-left placement at (0,0).
  const Response placed = tenant.apply(place_req(0, 7, 2));
  ASSERT_EQ(placed.status, Response::Status::kPlaced);
  EXPECT_EQ(placed.placement.x, 0);
  const SolveContextKey healthy_key = tenant.context()->key();

  // Permanent fault under the instance: it must be displaced and re-placed
  // on a healthy tile — possible only if the solve context was refreshed
  // before the re-place (the stale-context regression this test pins).
  const Response faulted = tenant.apply(
      fault_req(0, tile_fault(0, 0, fpga::FaultKind::kPermanent)));
  ASSERT_EQ(faulted.status, Response::Status::kFaulted);
  EXPECT_EQ(faulted.displaced, 1);
  EXPECT_EQ(faulted.recovered, 1);
  EXPECT_NE(tenant.context()->key(), healthy_key);
  // The fault re-keys the context; the healthy entry stays cached (memory
  // is bounded by the LRU cap, not by eager eviction).
  EXPECT_EQ(cache.stats().invalidations, 0u);
  EXPECT_EQ(cache.stats().entries, 2u);

  const auto live = tenant.placer().live_placements();
  ASSERT_EQ(live.size(), 1u);
  EXPECT_GE(live[0].x, 1);  // off the faulty tile
  EXPECT_EQ(tenant.fabric_epoch(), 1u);
}

TEST(Tenant, FaultCanLoseUnrecoverableInstances) {
  SolveContextCache cache(true);
  Tenant tenant(tenant_config(2, 1, &cache));
  ASSERT_EQ(tenant.apply(place_req(0, 0, 2)).status,
            Response::Status::kPlaced);
  ASSERT_EQ(tenant.apply(place_req(0, 1, 2)).status,
            Response::Status::kPlaced);
  // Kill one tile: one instance displaced, nowhere to go (the other tile
  // is occupied), so it is lost and its id is freed.
  const Response faulted = tenant.apply(
      fault_req(0, tile_fault(0, 0, fpga::FaultKind::kPermanent)));
  ASSERT_EQ(faulted.status, Response::Status::kFaulted);
  EXPECT_EQ(faulted.displaced, 1);
  EXPECT_EQ(faulted.recovered, 0);
  EXPECT_EQ(tenant.placer().live_count(), 1);
  // The freed id is reusable (and rejected: no healthy free tile remains).
  EXPECT_EQ(tenant.apply(place_req(0, 0, 2)).status,
            Response::Status::kRejected);
}

TEST(PlacementService, ServesTenantsAndCountsStats) {
  std::vector<Tenant::Config> configs;
  for (int t = 0; t < 3; ++t) configs.push_back(tenant_config(8, 4, nullptr));
  ServiceOptions options;
  options.workers = 2;
  PlacementService service(std::move(configs), options);

  for (int t = 0; t < 3; ++t) {
    EXPECT_EQ(service.call(place_req(t, 0, 0)).status,
              Response::Status::kPlaced);
    EXPECT_EQ(service.call(place_req(t, 1, 1)).status,
              Response::Status::kPlaced);
    EXPECT_EQ(service.call(remove_req(t, 0)).status,
              Response::Status::kRemoved);
  }
  // A bad request fails its future but not the worker.
  EXPECT_EQ(service.call(place_req(0, 1, 99)).status,
            Response::Status::kError);
  EXPECT_EQ(service.call(place_req(0, 2, 2)).status,
            Response::Status::kPlaced);

  service.stop();
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.requests, 11u);
  EXPECT_EQ(stats.placed, 7u);
  EXPECT_EQ(stats.removed, 3u);
  EXPECT_EQ(stats.errors, 1u);
  EXPECT_EQ(stats.latency_count, 11u);
  EXPECT_GT(stats.latency_p99_ms, 0.0);
  EXPECT_GE(stats.latency_p99_ms, stats.latency_p50_ms);
  // Shared cache across the service's tenants: same fabric + library
  // signatures, one table preparation, the rest hits.
  EXPECT_EQ(stats.cache.misses, 1u);
  EXPECT_GE(stats.cache.hits, 2u);

  for (int t = 0; t < 3; ++t)
    EXPECT_GE(service.tenant(t).placer().live_count(), 1);
  // Submitting after stop is an overload/lifecycle outcome, not a
  // programming error: a typed response, never a throw (the shutdown-race
  // regression — a client racing stop() used to get InvalidInput).
  EXPECT_EQ(service.submit(place_req(0, 50, 0)).get().status,
            Response::Status::kRejectedStopped);
  EXPECT_EQ(service.shed_counters().rejected_stopped, 1u);
}

TEST(PlacementService, RejectsUnknownTenantAndBadOptions) {
  std::vector<Tenant::Config> configs;
  configs.push_back(tenant_config(4, 2, nullptr));
  PlacementService service(std::move(configs));
  EXPECT_THROW((void)service.submit(place_req(9, 0, 0)), InvalidInput);
  EXPECT_THROW((void)service.submit(place_req(-1, 0, 0)), InvalidInput);
  service.stop();

  std::vector<Tenant::Config> empty;
  EXPECT_THROW(PlacementService(std::move(empty)), InvalidInput);
}

TEST(BoundedQueue, TryPushDistinguishesFullFromClosed) {
  BoundedQueue<int> queue(2);
  int value = 7;
  EXPECT_EQ(queue.try_push(value), BoundedQueue<int>::PushResult::kPushed);
  value = 8;
  EXPECT_EQ(queue.try_push(value), BoundedQueue<int>::PushResult::kPushed);
  // Full: the value is NOT consumed — a retrying caller keeps its item.
  value = 9;
  EXPECT_EQ(queue.try_push(value), BoundedQueue<int>::PushResult::kFull);
  EXPECT_EQ(value, 9);
  EXPECT_EQ(queue.pop(), std::optional<int>(7));
  EXPECT_EQ(queue.try_push(value), BoundedQueue<int>::PushResult::kPushed);
  queue.close();
  value = 10;
  EXPECT_EQ(queue.try_push(value), BoundedQueue<int>::PushResult::kClosed);
  // Closed queues still drain.
  EXPECT_EQ(queue.pop(), std::optional<int>(8));
  EXPECT_EQ(queue.pop(), std::optional<int>(9));
  EXPECT_EQ(queue.pop(), std::nullopt);
}

TEST(PlacementService, QuotaShedsExcessInflightPerTenant) {
  std::vector<Tenant::Config> configs;
  configs.push_back(tenant_config(8, 4, nullptr));
  configs.push_back(tenant_config(8, 4, nullptr));
  ServiceOptions options;
  options.workers = 1;
  options.tenant_inflight_quota = 2;
  options.start_paused = true;  // nothing drains: inflight counts are exact
  PlacementService service(std::move(configs), options);

  auto a0 = service.submit(place_req(0, 0, 2));
  auto a1 = service.submit(place_req(0, 1, 2));
  // Third in-flight request for tenant 0: over quota, shed synchronously.
  auto a2 = service.submit(place_req(0, 2, 2));
  EXPECT_EQ(a2.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  EXPECT_EQ(a2.get().status, Response::Status::kShedQuota);
  // The quota is per tenant: tenant 1 is unaffected.
  auto b0 = service.submit(place_req(1, 0, 2));

  service.resume();
  EXPECT_EQ(a0.get().status, Response::Status::kPlaced);
  EXPECT_EQ(a1.get().status, Response::Status::kPlaced);
  EXPECT_EQ(b0.get().status, Response::Status::kPlaced);
  // Completion released the slots: tenant 0 admits again.
  EXPECT_EQ(service.call(place_req(0, 3, 2)).status,
            Response::Status::kPlaced);
  service.stop();
  const ShedCounters shed = service.shed_counters();
  EXPECT_EQ(shed.submitted, 5u);
  EXPECT_EQ(shed.shed_quota, 1u);
  EXPECT_EQ(shed.completed, 4u);
  EXPECT_EQ(shed.submitted, shed.completed + shed.total_shed());
}

TEST(PlacementService, FakeClockDeadlineShedsAtDequeue) {
  FakeClock clock;
  std::vector<Tenant::Config> configs;
  configs.push_back(tenant_config(8, 4, nullptr));
  ServiceOptions options;
  options.workers = 1;
  options.default_deadline_ms = 10.0;
  options.clock = &clock;
  options.start_paused = true;
  PlacementService service(std::move(configs), options);

  // Per-request deadlines override the default; 0 means "use the default".
  Request tight = place_req(0, 0, 2);
  tight.deadline_ms = 5.0;
  auto doomed = service.submit(tight);
  auto surviving = service.submit(place_req(0, 1, 2));
  // 6ms of queue wait: past the 5ms deadline, within the 10ms default.
  clock.advance_ms(6);
  service.resume();
  EXPECT_EQ(doomed.get().status, Response::Status::kShedDeadline);
  EXPECT_EQ(surviving.get().status, Response::Status::kPlaced);

  service.stop();
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.shed.shed_deadline, 1u);
  EXPECT_EQ(stats.shed.completed, 1u);
  // Shed requests never executed, so they stay out of the latency
  // distribution — it describes served traffic only.
  EXPECT_EQ(stats.latency_count, 1u);
  EXPECT_EQ(stats.requests, 1u);
  // The tenant never saw the shed request.
  EXPECT_EQ(service.tenant(0).placer().live_count(), 1);
}

TEST(PlacementService, SubmitRetryBudgetShedsOnFullQueue) {
  std::vector<Tenant::Config> configs;
  configs.push_back(tenant_config(8, 4, nullptr));
  ServiceOptions options;
  options.workers = 1;
  options.queue_capacity = 1;
  options.submit_retry_budget = 2;
  options.backoff_initial_us = 1;  // keep the test fast; pacing only
  options.start_paused = true;     // the queue cannot drain
  PlacementService service(std::move(configs), options);

  auto queued = service.submit(place_req(0, 0, 2));
  // Queue full and frozen: the retry budget burns down, then kShedQueue.
  auto shed = service.submit(place_req(0, 1, 2));
  EXPECT_EQ(shed.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  EXPECT_EQ(shed.get().status, Response::Status::kShedQueue);

  service.resume();
  EXPECT_EQ(queued.get().status, Response::Status::kPlaced);
  service.stop();
  const ShedCounters counters = service.shed_counters();
  EXPECT_EQ(counters.shed_queue, 1u);
  EXPECT_EQ(counters.submit_retries, 2u);  // attempt-counted, deterministic
  EXPECT_EQ(counters.submitted, counters.completed + counters.total_shed());
}

TEST(ServiceStats, ToJsonCarriesShedSection) {
  std::vector<Tenant::Config> configs;
  configs.push_back(tenant_config(8, 4, nullptr));
  PlacementService service(std::move(configs));
  EXPECT_EQ(service.call(place_req(0, 0, 2)).status,
            Response::Status::kPlaced);
  service.stop();
  (void)service.submit(place_req(0, 1, 2));  // one rejected_stopped

  const json::Value doc = service.stats().to_json();
  ASSERT_TRUE(doc.contains("shed"));
  const json::Value& shed = doc.at("shed");
  for (const char* key : {"submitted", "completed", "deadline", "quota",
                          "queue", "stopped", "submit_retries", "shed_rate"})
    EXPECT_TRUE(shed.contains(key)) << key;
  EXPECT_EQ(shed.at("submitted").as_number(), 2.0);
  EXPECT_EQ(shed.at("completed").as_number(), 1.0);
  EXPECT_EQ(shed.at("stopped").as_number(), 1.0);
  EXPECT_EQ(shed.at("shed_rate").as_number(), 0.5);
}

TEST(PlacementService, WorkerShardingIsStableAndInRange) {
  std::vector<Tenant::Config> configs;
  for (int t = 0; t < 16; ++t) configs.push_back(tenant_config(4, 2, nullptr));
  ServiceOptions options;
  options.workers = 4;
  PlacementService service(std::move(configs), options);
  for (int t = 0; t < 16; ++t) {
    const int w = service.worker_of(t);
    EXPECT_GE(w, 0);
    EXPECT_LT(w, service.worker_count());
    EXPECT_EQ(w, service.worker_of(t));  // stable
  }
  service.stop();
}

}  // namespace
}  // namespace rr::service
