// End-to-end flows (the Fig. 2 pipeline): fabric file -> module library ->
// constraint model -> optimal placement -> validation and metrics, plus
// cross-configuration invariants used by the experiment harnesses.
#include <gtest/gtest.h>

#include "rrplace.hpp"

namespace rr {
namespace {

TEST(Integration, FileBasedDesignFlow) {
  // Write a fabric and module library to disk, load both, place, validate.
  const std::string dir = ::testing::TempDir();
  fpga::ColumnarSpec spec;
  spec.bram_period = 6;
  spec.bram_offset = 3;
  spec.dsp_period = 0;
  spec.center_clock_column = false;
  spec.edge_io = false;
  fpga::save_fdf(dir + "/flow.fdf", fpga::make_columnar(24, 8, spec));

  model::GeneratorParams params;
  params.clb_min = 6;
  params.clb_max = 18;
  params.bram_blocks_max = 1;
  params.bram_block_height = 2;
  params.max_height = 6;
  params.max_width = 5;
  model::ModuleGenerator generator(params, 77);
  model::save_mlf(dir + "/flow.mlf", generator.generate_many(4));

  const auto fabric =
      std::make_shared<const fpga::Fabric>(fpga::load_fdf(dir + "/flow.fdf"));
  const fpga::PartialRegion region(fabric);
  const auto modules = model::load_mlf(dir + "/flow.mlf");
  ASSERT_EQ(modules.size(), 4u);

  placer::PlacerOptions options;
  options.time_limit_seconds = 3.0;
  placer::Placer placer(region, modules, options);
  const auto outcome = placer.place();
  ASSERT_TRUE(outcome.solution.feasible);
  EXPECT_TRUE(placer::validate(region, modules, outcome.solution).ok());
  EXPECT_GT(placer::spanned_utilization(region, modules, outcome.solution),
            0.3);
}

TEST(Integration, AlternativesNeverHurtOptimalExtent) {
  // On fully solved instances, the with-alternatives optimum is at most
  // the without-alternatives optimum (the base layout is always available).
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    auto fabric = std::make_shared<const fpga::Fabric>(
        fpga::make_homogeneous(18, 6));
    const fpga::PartialRegion region(fabric);
    model::GeneratorParams params;
    params.clb_min = 4;
    params.clb_max = 12;
    params.bram_blocks_max = 0;
    params.max_height = 5;
    model::ModuleGenerator generator(params, seed);
    const auto modules = generator.generate_many(4);

    placer::PlacerOptions options;
    options.mode = placer::PlacerMode::kBranchAndBound;
    options.time_limit_seconds = 20.0;
    placer::Placer with(region, modules, options);
    options.use_alternatives = false;
    placer::Placer without(region, modules, options);
    const auto a = with.place();
    const auto b = without.place();
    if (a.optimal && b.optimal && a.solution.feasible &&
        b.solution.feasible) {
      EXPECT_LE(a.solution.extent, b.solution.extent) << "seed " << seed;
    }
  }
}

TEST(Integration, ValidatorAgreesWithSolverOnManySeeds) {
  for (std::uint64_t seed = 10; seed < 16; ++seed) {
    auto fabric = std::make_shared<const fpga::Fabric>(
        fpga::make_irregular(32, 12, {}, seed));
    const fpga::PartialRegion region(fabric);
    model::GeneratorParams params;
    params.clb_min = 6;
    params.clb_max = 20;
    params.bram_blocks_max = 1;
    params.max_height = 8;
    params.max_width = 6;
    model::ModuleGenerator generator(params, seed);
    const auto modules = generator.generate_many(5);
    placer::PlacerOptions options;
    options.time_limit_seconds = 1.0;
    options.seed = seed;
    const auto outcome = placer::Placer(region, modules, options).place();
    if (!outcome.solution.feasible) continue;
    const auto report = placer::validate(region, modules, outcome.solution);
    EXPECT_TRUE(report.ok())
        << "seed " << seed << ": " << report.errors.front();
  }
}

TEST(Integration, GreedyAnnealingCpQualityOrder) {
  auto fabric = std::make_shared<const fpga::Fabric>(
      fpga::make_homogeneous(28, 8));
  const fpga::PartialRegion region(fabric);
  model::GeneratorParams params;
  params.clb_min = 6;
  params.clb_max = 24;
  params.bram_blocks_max = 0;
  params.max_height = 7;
  model::ModuleGenerator generator(params, 5);
  const auto modules = generator.generate_many(7);

  const auto greedy = baseline::place_greedy(region, modules);
  baseline::AnnealingOptions sa;
  sa.time_limit_seconds = 1.0;
  const auto annealed = baseline::place_annealing(region, modules, sa);
  placer::PlacerOptions options;
  options.time_limit_seconds = 2.0;
  const auto cp = placer::Placer(region, modules, options).place();

  ASSERT_TRUE(greedy.solution.feasible);
  ASSERT_TRUE(annealed.solution.feasible);
  ASSERT_TRUE(cp.solution.feasible);
  for (const auto* outcome : {&greedy, &annealed, &cp}) {
    EXPECT_TRUE(placer::validate(region, modules, outcome->solution).ok());
  }
  EXPECT_LE(annealed.solution.extent, greedy.solution.extent);
  EXPECT_LE(cp.solution.extent, greedy.solution.extent);
}

TEST(Integration, StaticRegionIsNeverUsed) {
  auto fabric = std::make_shared<const fpga::Fabric>(
      fpga::make_evaluation_device(3));
  const fpga::PartialRegion region(fabric);
  model::GeneratorParams params;
  params.clb_min = 10;
  params.clb_max = 40;
  params.bram_blocks_max = 2;
  params.max_height = 12;
  params.max_width = 7;
  model::ModuleGenerator generator(params, 3);
  const auto modules = generator.generate_many(6);
  placer::PlacerOptions options;
  options.time_limit_seconds = 1.5;
  const auto outcome = placer::Placer(region, modules, options).place();
  ASSERT_TRUE(outcome.solution.feasible);
  // No placed tile may land on the static flank (x >= 100) or any other
  // unavailable tile — validate() checks exactly that.
  EXPECT_TRUE(placer::validate(region, modules, outcome.solution).ok());
  for (const auto& p : outcome.solution.placements) {
    const auto& shape = modules[static_cast<std::size_t>(p.module)]
                            .shapes()[static_cast<std::size_t>(p.shape)];
    EXPECT_LE(p.x + shape.bounding_box().width, 100);
  }
}

TEST(Integration, PortfolioIsDeterministicallyValid) {
  auto fabric = std::make_shared<const fpga::Fabric>(
      fpga::make_homogeneous(20, 6));
  const fpga::PartialRegion region(fabric);
  model::GeneratorParams params;
  params.clb_min = 6;
  params.clb_max = 16;
  params.bram_blocks_max = 0;
  params.max_height = 5;
  model::ModuleGenerator generator(params, 9);
  const auto modules = generator.generate_many(5);
  placer::PlacerOptions options;
  options.workers = 3;
  options.time_limit_seconds = 2.0;
  const auto outcome = placer::Placer(region, modules, options).place();
  ASSERT_TRUE(outcome.solution.feasible);
  EXPECT_TRUE(placer::validate(region, modules, outcome.solution).ok());
}

TEST(Integration, RendersRegenerateFigure3Layouts) {
  // Fig. 3: same modules, with vs without alternatives, rendered; both
  // renderings must be valid pictures of validated placements.
  auto fabric = std::make_shared<const fpga::Fabric>([] {
    fpga::ColumnarSpec spec;
    spec.bram_period = 6;
    spec.bram_offset = 3;
    spec.dsp_period = 0;
    spec.center_clock_column = false;
    spec.edge_io = false;
    return fpga::make_columnar(20, 8, spec);
  }());
  const fpga::PartialRegion region(fabric);
  model::GeneratorParams params;
  params.clb_min = 6;
  params.clb_max = 16;
  params.bram_blocks_max = 1;
  params.max_height = 6;
  params.max_width = 5;
  model::ModuleGenerator generator(params, 31);
  const auto modules = generator.generate_many(5);
  for (const bool alternatives : {true, false}) {
    placer::PlacerOptions options;
    options.use_alternatives = alternatives;
    options.time_limit_seconds = 1.5;
    const auto outcome = placer::Placer(region, modules, options).place();
    if (!outcome.solution.feasible) continue;
    ASSERT_TRUE(placer::validate(region, modules, outcome.solution).ok());
    const std::string ascii =
        render::placement_ascii(region, modules, outcome.solution);
    EXPECT_EQ(ascii.size(),
              static_cast<std::size_t>((region.width() + 1) * region.height()));
    const std::string svg =
        render::placement_svg(region, modules, outcome.solution);
    EXPECT_NE(svg.find("</svg>"), std::string::npos);
  }
}

TEST(Integration, BusAttachedScheduleThroughRuntimeManager) {
  // Full stack: bus lanes on the fabric, bus-attached modules, phased
  // schedule through the runtime manager — every phase placement must obey
  // lane alignment (validated) and incremental transitions must keep
  // persistent modules in place when possible.
  comm::BusSpec bus;
  bus.lane_period = 8;
  bus.lane_offset = 0;
  auto fabric = std::make_shared<const fpga::Fabric>(
      comm::with_bus_lanes(fpga::make_homogeneous(40, 16), bus));
  const fpga::PartialRegion region(fabric);

  model::GeneratorParams params;
  params.clb_min = 8;
  params.clb_max = 20;
  params.bram_blocks_max = 0;
  params.max_height = 6;
  model::ModuleGenerator generator(params, 41);
  const auto pool = comm::with_bus_attachment(generator.generate_many(8), 0);

  placer::PlacerOptions options;
  options.time_limit_seconds = 0.5;
  const runtime::ReconfigurationManager manager(region, pool, options);
  const runtime::Schedule schedule =
      runtime::make_rolling_schedule(8, 3, 4, 0.5, 2);
  const runtime::RunResult result =
      manager.run(schedule, runtime::PlacementPolicy::kIncremental);
  EXPECT_EQ(result.infeasible_phases(), 0);
  for (const runtime::PhaseOutcome& phase : result.phases) {
    for (const runtime::PlacedModule& p : phase.placements) {
      // Anchors must sit on bus lanes (rows 0, 8).
      EXPECT_TRUE(p.y % 8 == 0) << "module " << p.module << " off-lane";
    }
  }
}

}  // namespace
}  // namespace rr
