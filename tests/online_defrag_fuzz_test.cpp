// Randomized differential test for the online placer's defragmentation
// path: every intermediate state (including states produced by relocation
// commits) is checked against a naive per-cell reference grid rebuilt from
// live_placements(). The oracle catches overlap, static-region violations,
// tile-accounting drift, and occupancy-bitmap divergence that targeted
// unit scenarios cannot.
#include <gtest/gtest.h>

#include <unordered_map>
#include <vector>

#include "baseline/online.hpp"
#include "fpga/builders.hpp"
#include "model/generator.hpp"
#include "util/rng.hpp"

namespace rr::baseline {
namespace {

using model::Module;
using model::ModuleGenerator;

struct Fixture {
  std::shared_ptr<const fpga::Fabric> fabric;
  std::shared_ptr<fpga::PartialRegion> region;
  std::vector<Module> pool;
};

Fixture make_fixture(std::uint64_t seed) {
  Fixture f;
  f.fabric =
      std::make_shared<const fpga::Fabric>(fpga::make_homogeneous(20, 8));
  f.region = std::make_shared<fpga::PartialRegion>(f.fabric);
  // A static obstacle so the oracle exercises region availability, not just
  // mutual non-overlap.
  f.region->block(Rect{9, 2, 2, 4});
  model::GeneratorParams params;
  params.clb_min = 4;
  params.clb_max = 20;
  params.bram_blocks_max = 0;
  params.min_height = 1;
  params.max_height = 6;
  ModuleGenerator generator(params, seed);
  f.pool = generator.generate_many(6);
  return f;
}

/// Rebuild occupancy from scratch out of live_placements() and cross-check
/// every invariant the incremental state must preserve.
void check_oracle(const OnlinePlacer& placer, const Fixture& f,
                  const std::unordered_map<int, Module>& live_modules) {
  const auto placements = placer.live_placements();
  ASSERT_EQ(placements.size(), live_modules.size());
  ASSERT_EQ(placer.live_count(), static_cast<int>(live_modules.size()));

  BitMatrix grid(placer.occupied_matrix().rows(),
                 placer.occupied_matrix().cols());
  long total = 0;
  for (const auto& p : placements) {
    const auto it = live_modules.find(p.module);
    ASSERT_NE(it, live_modules.end()) << "unknown live id " << p.module;
    const auto& shape =
        it->second.shapes()[static_cast<std::size_t>(p.shape)];
    const BitMatrix& mask = shape.mask();
    for (int r = 0; r < mask.rows(); ++r) {
      for (int c = 0; c < mask.cols(); ++c) {
        if (!mask.get(r, c)) continue;
        const int x = p.x + c;
        const int y = p.y + r;
        // Inside the region and not on a blocked/static tile.
        ASSERT_TRUE(f.region->available(x, y))
            << "instance " << p.module << " occupies unavailable (" << x
            << "," << y << ")";
        // No two live instances share a tile.
        ASSERT_FALSE(grid.get(y, x))
            << "overlap at (" << x << "," << y << ")";
        grid.set(y, x);
        ++total;
      }
    }
  }
  // Incremental accounting matches the rebuilt state exactly.
  EXPECT_EQ(total, placer.occupied_tiles());
  EXPECT_EQ(grid, placer.occupied_matrix());
}

void run_trace(const OnlineOptions& options, std::uint64_t seed, int steps) {
  const Fixture f = make_fixture(seed);
  OnlinePlacer placer(*f.region, options);
  std::unordered_map<int, Module> live_modules;
  std::vector<int> live_ids;
  Rng rng(seed * 7919 + 13);
  int next_id = 0;
  for (int step = 0; step < steps; ++step) {
    if (live_ids.empty() || rng.chance(0.58)) {
      const Module& module = f.pool[rng.pick_index(f.pool)];
      if (placer.place(next_id, module)) {
        live_modules.emplace(next_id, module);
        live_ids.push_back(next_id);
      } else {
        EXPECT_FALSE(placer.is_placed(next_id));
      }
      ++next_id;
    } else {
      const std::size_t pick = rng.pick_index(live_ids);
      const int id = live_ids[pick];
      placer.remove(id);
      EXPECT_FALSE(placer.is_placed(id));
      live_modules.erase(id);
      live_ids.erase(live_ids.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    check_oracle(placer, f, live_modules);
  }
  // Relocation accounting is internally consistent at the end of the trace.
  const OnlineDefragStats& stats = placer.defrag_stats();
  EXPECT_EQ(stats.successes, stats.exact_successes + stats.greedy_successes);
  EXPECT_EQ(stats.relocated_tiles,
            static_cast<std::uint64_t>(placer.relocation_cost().tiles_cleared +
                                       placer.relocation_cost().tiles_written));
  EXPECT_EQ(
      stats.relocated_modules,
      static_cast<std::uint64_t>(placer.relocation_cost().modules_loaded));
}

TEST(OnlineDefragFuzz, FirstFitOnlyTracesStayConsistent) {
  for (const std::uint64_t seed : {1u, 2u, 3u})
    run_trace(OnlineOptions{}, seed, 250);
}

TEST(OnlineDefragFuzz, DefragTracesStayConsistent) {
  OnlineOptions options;
  options.defrag.deadline_seconds = 0.5;
  for (const std::uint64_t seed : {11u, 12u, 13u}) {
    options.defrag.seed = seed;
    run_trace(options, seed, 250);
  }
}

TEST(OnlineDefragFuzz, ConstrainedDefragTracesStayConsistent) {
  // Tight knobs force the greedy tier, the retry gate, and the budget gate
  // to all fire within the trace.
  OnlineOptions options;
  options.defrag.deadline_seconds = 0.5;
  options.defrag.max_relocations = 2;
  options.defrag.max_anchor_scan = 16;
  options.defrag.relocation_budget_tiles = 200;
  for (const std::uint64_t seed : {21u, 22u})
    run_trace(options, seed, 250);
}

TEST(OnlineDefragFuzz, DuplicateIdThrowsEvenAfterRelocation) {
  const Fixture f = make_fixture(5);
  OnlineOptions options;
  options.defrag.deadline_seconds = 0.5;
  OnlinePlacer placer(*f.region, options);
  ASSERT_TRUE(placer.place(0, f.pool[0]).has_value());
  EXPECT_THROW(placer.place(0, f.pool[1]), InvalidInput);
  EXPECT_THROW(placer.remove(42), InvalidInput);
}

}  // namespace
}  // namespace rr::baseline
