// Batch anchor-feasibility kernels (geost/anchor_kernel) vs their scalar
// oracles.
//
// The batch kernels answer "which anchors fit / which anchors conflict"
// for ALL anchors of a shape at once via erosion / dilation sweeps; the
// contract is bit-identical agreement with the per-anchor covers_shifted /
// intersects_shifted loops they replaced. This suite checks that contract
// three ways: directly on random fabrics, through the NonOverlap
// propagator's batch delta pruning (random walks and full search vs the
// per-anchor engine), and through the online placer's batch first-fit and
// defrag ranking (identical traces with the flag on and off).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <optional>
#include <vector>

#include "baseline/online.hpp"
#include "cp/search.hpp"
#include "cp_test_utils.hpp"
#include "fpga/builders.hpp"
#include "geost/anchor_kernel.hpp"
#include "geost/nonoverlap.hpp"
#include "geost/object.hpp"
#include "model/generator.hpp"
#include "util/rng.hpp"

namespace rr::geost {
namespace {

constexpr int kClb = 0;
constexpr int kBram = 1;

ShapeFootprint rect_shape(int w, int h, int resource = kClb) {
  std::vector<Point> cells;
  for (int x = 0; x < w; ++x)
    for (int y = 0; y < h; ++y) cells.push_back({x, y});
  return ShapeFootprint::from_typed(
      {TypedCells{resource, CellSet(std::move(cells), false)}});
}

/// 2x2 shape: bottom row BRAM, top row CLB.
ShapeFootprint mixed_shape() {
  return ShapeFootprint::from_typed(
      {TypedCells{kClb, CellSet({{1, 0}, {1, 1}}, false)},
       TypedCells{kBram, CellSet({{0, 0}, {0, 1}}, false)}});
}

/// Random (possibly non-convex) footprint over up to `num_resources`
/// resource types inside a w x h bounding box.
ShapeFootprint random_shape(Rng& rng, int max_w, int max_h,
                            int num_resources) {
  const int w = 1 + static_cast<int>(rng.bounded(
                        static_cast<std::uint64_t>(max_w)));
  const int h = 1 + static_cast<int>(rng.bounded(
                        static_cast<std::uint64_t>(max_h)));
  std::vector<std::vector<Point>> cells(
      static_cast<std::size_t>(num_resources));
  for (int x = 0; x < w; ++x) {
    for (int y = 0; y < h; ++y) {
      if (rng.bounded(100) < 65) {
        cells[rng.bounded(static_cast<std::uint64_t>(num_resources))]
            .push_back({x, y});
      }
    }
  }
  std::vector<TypedCells> groups;
  for (int res = 0; res < num_resources; ++res) {
    if (!cells[static_cast<std::size_t>(res)].empty()) {
      groups.push_back(TypedCells{
          res, CellSet(std::move(cells[static_cast<std::size_t>(res)]),
                       false)});
    }
  }
  if (groups.empty())
    groups.push_back(TypedCells{0, CellSet({{0, 0}}, false)});
  return ShapeFootprint::from_typed(groups);
}

/// Random fabric: each cell offers one random resource type or none
/// (a hole), so availability masks are irregular in every direction.
std::vector<BitMatrix> random_masks(Rng& rng, int width, int height,
                                    int num_resources, int hole_pct) {
  std::vector<BitMatrix> masks(static_cast<std::size_t>(num_resources),
                               BitMatrix(height, width));
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      if (rng.bounded(100) < static_cast<std::uint64_t>(hole_pct)) continue;
      masks[rng.bounded(static_cast<std::uint64_t>(num_resources))].set(y, x,
                                                                        true);
    }
  }
  return masks;
}

// --- Direct kernel-vs-oracle checks ----------------------------------------

TEST(BatchValidAnchors, MatchesScalarOracleOnRandomFabrics) {
  Rng rng(1001);
  // Region widths straddle the 64-bit word edge — the case the erosion
  // sweeps can get wrong.
  for (const int width : {9, 30, 63, 64, 65, 70}) {
    for (int round = 0; round < 8; ++round) {
      const int height = 3 + static_cast<int>(rng.bounded(6));
      const auto masks = random_masks(rng, width, height, 2, 15);
      const ShapeFootprint shape = random_shape(rng, 5, 3, 2);

      const auto batch = compute_valid_anchors(masks, shape);
      const auto scalar = compute_valid_anchors_scalar(masks, shape);
      ASSERT_EQ(batch, scalar)
          << "width=" << width << " round=" << round << " shape\n"
          << shape.mask().to_string();

      // The raw fit bitmap agrees with covers_shifted at EVERY anchor,
      // including ones where the bounding box hangs outside the region.
      const BitMatrix fit = batch_valid_anchors(masks, shape);
      for (int y = 0; y < height; ++y) {
        for (int x = 0; x < width; ++x) {
          bool want = true;
          for (std::size_t g = 0; g < shape.typed().size(); ++g) {
            const auto res =
                static_cast<std::size_t>(shape.typed()[g].resource);
            want = want && masks[res].covers_shifted(shape.typed_masks()[g],
                                                     y, x);
          }
          ASSERT_EQ(fit.get(y, x), want)
              << "anchor (" << x << "," << y << ") width=" << width;
        }
      }
    }
  }
}

TEST(BatchValidAnchors, UnknownResourceYieldsNoAnchors) {
  Rng rng(1002);
  const auto masks = random_masks(rng, 12, 4, 1, 0);
  const ShapeFootprint shape = mixed_shape();  // demands kBram = resource 1
  EXPECT_EQ(batch_valid_anchors(masks, shape).popcount(), 0u);
  EXPECT_TRUE(compute_valid_anchors(masks, shape).empty());
  EXPECT_TRUE(compute_valid_anchors_scalar(masks, shape).empty());
}

TEST(BatchValidAnchors, ShapeLargerThanRegionHasNone) {
  const std::vector<BitMatrix> masks{BitMatrix(3, 5, true)};
  EXPECT_EQ(batch_valid_anchors(masks, rect_shape(6, 2)).popcount(), 0u);
  EXPECT_EQ(batch_valid_anchors(masks, rect_shape(2, 4)).popcount(), 0u);
}

TEST(AccumulateConflicts, MatchesIntersectsShiftedOracle) {
  Rng rng(1003);
  for (const int width : {10, 63, 64, 65}) {
    for (int round = 0; round < 8; ++round) {
      const int height = 4 + static_cast<int>(rng.bounded(4));
      BitMatrix occ(height, width);
      for (int y = 0; y < height; ++y)
        for (int x = 0; x < width; ++x)
          if (rng.bounded(100) < 30) occ.set(y, x, true);
      const ShapeFootprint shape = random_shape(rng, 4, 3, 1);
      const BitMatrix& shape_mask = shape.mask();

      BitMatrix conflict(height, width);
      accumulate_conflicts(conflict, occ, shape_mask, 0, height);
      for (int y = 0; y < height; ++y) {
        for (int x = 0; x < width; ++x) {
          ASSERT_EQ(conflict.get(y, x),
                    occ.intersects_shifted(shape_mask, y, x))
              << "anchor (" << x << "," << y << ") width=" << width;
        }
      }
    }
  }
}

TEST(AccumulateConflicts, RespectsRowStripeAndAccumulates) {
  // Rows outside [row_lo, row_hi) must be untouched, and bits already set
  // in the destination must survive (the kernel ORs, never clears).
  Rng rng(1004);
  const int width = 40, height = 8;
  BitMatrix occ(height, width);
  for (int y = 0; y < height; ++y)
    for (int x = 0; x < width; ++x)
      if (rng.bounded(100) < 35) occ.set(y, x, true);
  const ShapeFootprint shape = rect_shape(3, 2);
  const BitMatrix& shape_mask = shape.mask();

  BitMatrix conflict(height, width);
  conflict.set(0, 5, true);  // pre-set sentinel outside the stripe
  conflict.set(4, 7, true);  // pre-set sentinel inside the stripe
  accumulate_conflicts(conflict, occ, shape_mask, 2, 6);
  EXPECT_TRUE(conflict.get(0, 5));
  EXPECT_TRUE(conflict.get(4, 7));
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      const bool sentinel = (y == 0 && x == 5) || (y == 4 && x == 7);
      const bool want = (y >= 2 && y < 6)
                            ? occ.intersects_shifted(shape_mask, y, x)
                            : false;
      EXPECT_EQ(conflict.get(y, x), want || sentinel)
          << "(" << x << "," << y << ")";
    }
  }
}

TEST(ErodeFit, MatchesCoversShiftedOracle) {
  Rng rng(1005);
  for (int round = 0; round < 10; ++round) {
    const int width = 20 + static_cast<int>(rng.bounded(50));
    const int height = 3 + static_cast<int>(rng.bounded(5));
    const auto masks = random_masks(rng, width, height, 1, 20);
    const ShapeFootprint shape = random_shape(rng, 6, 3, 1);
    const BitMatrix& shape_mask = shape.mask();

    BitMatrix fit(height, width, /*fill=*/true);
    erode_fit(fit, masks[0], shape_mask, 0, height);
    for (int y = 0; y < height; ++y)
      for (int x = 0; x < width; ++x)
        ASSERT_EQ(fit.get(y, x), masks[0].covers_shifted(shape_mask, y, x))
            << "anchor (" << x << "," << y << ") round=" << round;
  }
}

// --- NonOverlap: batch delta pruning vs the per-anchor loop -----------------

/// Masks for a width x height all-CLB region with optional BRAM columns.
std::vector<BitMatrix> region_masks(int width, int height,
                                    const std::vector<int>& bram_columns = {}) {
  std::vector<BitMatrix> masks(2, BitMatrix(height, width));
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      const bool is_bram =
          std::find(bram_columns.begin(), bram_columns.end(), x) !=
          bram_columns.end();
      masks[is_bram ? kBram : kClb].set(y, x, true);
    }
  }
  return masks;
}

struct DiffSetup {
  cp::Space space;
  std::vector<GeostObject> objects;
};

/// Four polymorphic objects on an 8x5 region with a BRAM column.
std::unique_ptr<DiffSetup> diff_setup(const NonOverlapOptions& options) {
  constexpr int kWidth = 8, kHeight = 5;
  auto setup = std::make_unique<DiffSetup>();
  const auto masks = region_masks(kWidth, kHeight, {3});
  auto shapes = std::make_shared<std::vector<ShapeFootprint>>();
  shapes->push_back(rect_shape(2, 2));
  shapes->push_back(rect_shape(3, 1));
  shapes->push_back(mixed_shape());
  std::vector<std::vector<Point>> anchors;
  for (const ShapeFootprint& shape : *shapes)
    anchors.push_back(compute_valid_anchors(masks, shape));
  for (int i = 0; i < 4; ++i)
    setup->objects.push_back(make_object(setup->space, shapes, anchors));
  post_non_overlap(setup->space, setup->objects, kWidth, kHeight, options);
  return setup;
}

NonOverlapOptions batch_options(bool batch) {
  NonOverlapOptions options;
  options.incremental = true;
  options.compulsory_threshold = 64;  // soft parts everywhere
  options.batch_anchors = batch;
  options.batch_threshold = 0;  // force the batch path on every domain size
  return options;
}

// Random push/assign/remove/pop walks through the batch and per-anchor
// engines side by side: fail verdicts and all domains must stay identical
// at every step.
TEST(NonOverlapBatch, RandomWalksMatchPerAnchorOracle) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    auto batch = diff_setup(batch_options(true));
    auto oracle = diff_setup(batch_options(false));
    Rng rng(seed * 6151 + 3);

    const auto domains_match = [&]() {
      for (std::size_t i = 0; i < batch->objects.size(); ++i) {
        const cp::Domain& da = batch->space.dom(batch->objects[i].var());
        const cp::Domain& db = oracle->space.dom(oracle->objects[i].var());
        if (!(da == db)) return false;
      }
      return true;
    };

    ASSERT_EQ(batch->space.propagate(), oracle->space.propagate());
    ASSERT_TRUE(domains_match()) << "seed " << seed << " at root";

    int depth = 0;
    for (int step = 0; step < 120; ++step) {
      const auto op = rng.bounded(4);
      if (op == 3) {
        if (depth == 0) continue;
        batch->space.pop();
        oracle->space.pop();
        --depth;
        ASSERT_TRUE(domains_match())
            << "seed " << seed << " step " << step << " after pop";
        continue;
      }
      std::vector<std::size_t> open;
      for (std::size_t i = 0; i < batch->objects.size(); ++i)
        if (!batch->space.assigned(batch->objects[i].var())) open.push_back(i);
      if (open.empty()) break;
      const std::size_t obj = open[rng.bounded(open.size())];
      const cp::VarId va = batch->objects[obj].var();
      const cp::VarId vb = oracle->objects[obj].var();
      std::vector<int> values;
      batch->space.dom(va).for_each([&](int v) { values.push_back(v); });
      const int value = values[rng.bounded(values.size())];

      batch->space.push();
      oracle->space.push();
      ++depth;
      if (op == 0) {
        batch->space.assign(va, value);
        oracle->space.assign(vb, value);
      } else {
        batch->space.remove(va, value);
        oracle->space.remove(vb, value);
      }
      const bool ok_a = batch->space.propagate();
      const bool ok_b = oracle->space.propagate();
      ASSERT_EQ(ok_a, ok_b) << "seed " << seed << " step " << step;
      if (!ok_a) {
        batch->space.pop();
        oracle->space.pop();
        --depth;
        continue;
      }
      ASSERT_TRUE(domains_match())
          << "seed " << seed << " step " << step << " value " << value;
    }
  }
}

TEST(NonOverlapBatch, SearchFindsIdenticalSolutionSets) {
  auto batch = diff_setup(batch_options(true));
  auto oracle = diff_setup(batch_options(false));
  std::vector<cp::VarId> vars_a, vars_b;
  for (const GeostObject& o : batch->objects) vars_a.push_back(o.var());
  for (const GeostObject& o : oracle->objects) vars_b.push_back(o.var());
  EXPECT_EQ(cp::testing::solve_all(batch->space, vars_a),
            cp::testing::solve_all(oracle->space, vars_b));
}

}  // namespace
}  // namespace rr::geost

// --- Online placer: batch first-fit / defrag ranking vs per-anchor ----------

namespace rr::baseline {
namespace {

using model::Module;
using model::ModuleGenerator;

struct TraceFixture {
  std::shared_ptr<const fpga::Fabric> fabric;
  std::shared_ptr<fpga::PartialRegion> region;
  std::vector<Module> pool;
};

TraceFixture make_trace_fixture(std::uint64_t seed) {
  TraceFixture f;
  f.fabric =
      std::make_shared<const fpga::Fabric>(fpga::make_homogeneous(20, 8));
  f.region = std::make_shared<fpga::PartialRegion>(f.fabric);
  f.region->block(Rect{9, 2, 2, 4});
  model::GeneratorParams params;
  params.clb_min = 4;
  params.clb_max = 20;
  params.bram_blocks_max = 0;
  params.min_height = 1;
  params.max_height = 6;
  ModuleGenerator generator(params, seed);
  f.pool = generator.generate_many(6);
  return f;
}

void expect_same_placement(
    const std::optional<placer::ModulePlacement>& a,
    const std::optional<placer::ModulePlacement>& b, int step) {
  ASSERT_EQ(a.has_value(), b.has_value()) << "step " << step;
  if (!a) return;
  EXPECT_EQ(a->shape, b->shape) << "step " << step;
  EXPECT_EQ(a->x, b->x) << "step " << step;
  EXPECT_EQ(a->y, b->y) << "step " << step;
}

/// Drive the identical request trace through a batch-feasibility placer
/// and a per-anchor placer; every placement decision, relocation, and the
/// occupancy bitmap must match step by step.
void run_identical_traces(OnlineOptions base, std::uint64_t seed, int steps) {
  const TraceFixture f = make_trace_fixture(seed);
  OnlineOptions batch = base, scalar = base;
  batch.batch_feasibility = true;
  scalar.batch_feasibility = false;
  OnlinePlacer placer_batch(*f.region, batch);
  OnlinePlacer placer_scalar(*f.region, scalar);

  std::vector<int> live_ids;
  Rng rng(seed * 7919 + 13);
  int next_id = 0;
  for (int step = 0; step < steps; ++step) {
    if (live_ids.empty() || rng.chance(0.6)) {
      const Module& module = f.pool[rng.pick_index(f.pool)];
      const auto pa = placer_batch.place(next_id, module);
      const auto pb = placer_scalar.place(next_id, module);
      expect_same_placement(pa, pb, step);
      if (pa) live_ids.push_back(next_id);
      ++next_id;
    } else {
      const std::size_t pick = rng.pick_index(live_ids);
      const int id = live_ids[pick];
      placer_batch.remove(id);
      placer_scalar.remove(id);
      live_ids.erase(live_ids.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    // Relocations included: the full occupancy state must be identical.
    ASSERT_EQ(placer_batch.occupied_matrix(), placer_scalar.occupied_matrix())
        << "step " << step;
    ASSERT_EQ(placer_batch.occupied_tiles(), placer_scalar.occupied_tiles());
    const auto la = placer_batch.live_placements();
    const auto lb = placer_scalar.live_placements();
    ASSERT_EQ(la.size(), lb.size()) << "step " << step;
    for (std::size_t i = 0; i < la.size(); ++i) {
      ASSERT_EQ(la[i].module, lb[i].module) << "step " << step;
      ASSERT_EQ(la[i].shape, lb[i].shape) << "step " << step;
      ASSERT_EQ(la[i].x, lb[i].x) << "step " << step;
      ASSERT_EQ(la[i].y, lb[i].y) << "step " << step;
    }
  }
}

TEST(OnlinePlacerBatch, FirstFitTracesIdentical) {
  for (const std::uint64_t seed : {1u, 2u, 3u})
    run_identical_traces(OnlineOptions{}, seed, 200);
}

TEST(OnlinePlacerBatch, DefragTracesIdentical) {
  // A generous deadline keeps the exact tier deterministic (it finishes
  // well inside the budget in both runs), so the defrag plans — and hence
  // the relocation commits — must coincide exactly.
  OnlineOptions options;
  options.defrag.deadline_seconds = 5.0;
  for (const std::uint64_t seed : {11u, 12u}) {
    options.defrag.seed = seed;
    run_identical_traces(options, seed, 120);
  }
}

}  // namespace
}  // namespace rr::baseline
