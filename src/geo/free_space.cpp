#include "geo/free_space.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <utility>

#include "util/error.hpp"
#include "util/simd/simd.hpp"

namespace rr {

namespace {

constexpr std::uint64_t kAllOnes = ~std::uint64_t{0};

/// True iff every bit of columns [l, r) in `row` of `m` is set. r > l.
bool row_all_set(const BitMatrix& m, int row, int l, int r) {
  const std::span<const std::uint64_t> words = m.row_span(row);
  const std::size_t wl = static_cast<std::size_t>(l >> 6);
  const std::size_t wr = static_cast<std::size_t>((r - 1) >> 6);
  const std::uint64_t first = kAllOnes << (l & 63);
  const std::uint64_t last = kAllOnes >> (63 - ((r - 1) & 63));
  if (wl == wr) {
    const std::uint64_t mask = first & last;
    return (words[wl] & mask) == mask;
  }
  if ((words[wl] & first) != first) return false;
  for (std::size_t w = wl + 1; w < wr; ++w)
    if (~words[w] != 0) return false;
  return (words[wr] & last) == last;
}

/// OR every bit of columns [l, r) into `row` of `m`. r > l.
void row_fill(BitMatrix& m, int row, int l, int r) {
  const std::span<std::uint64_t> words = m.row_span_mut(row);
  const std::size_t wl = static_cast<std::size_t>(l >> 6);
  const std::size_t wr = static_cast<std::size_t>((r - 1) >> 6);
  const std::uint64_t first = kAllOnes << (l & 63);
  const std::uint64_t last = kAllOnes >> (63 - ((r - 1) & 63));
  if (wl == wr) {
    words[wl] |= first & last;
    return;
  }
  words[wl] |= first;
  for (std::size_t w = wl + 1; w < wr; ++w) words[w] = kAllOnes;
  words[wr] |= last;
}

/// Keep only bits of columns [l, r] (inclusive) in `row` of `m`.
void row_clip(BitMatrix& m, int row, int l, int r) {
  const std::span<std::uint64_t> words = m.row_span_mut(row);
  for (std::size_t w = 0; w < words.size(); ++w) {
    const int lo = static_cast<int>(w) * 64;
    std::uint64_t mask = kAllOnes;
    if (l > lo) mask &= (l - lo >= 64) ? 0 : kAllOnes << (l - lo);
    if (r < lo + 63) mask &= (r < lo) ? 0 : kAllOnes >> (lo + 63 - r);
    words[w] &= mask;
  }
}

/// Invoke fn(start, end) for every maximal run [start, end) of set bits in
/// a row given as words (the word-parallel row-run extraction of the
/// rebuild path; tail bits beyond cols are zero by BitMatrix invariant).
template <typename Fn>
void for_each_set_run(std::span<const std::uint64_t> words, int cols, Fn&& fn) {
  const long n = static_cast<long>(words.size());
  int x = 0;
  while (x < cols) {
    // Next set bit at or after x.
    long w = x >> 6;
    std::uint64_t cur = words[static_cast<std::size_t>(w)] & (kAllOnes << (x & 63));
    while (cur == 0) {
      if (++w >= n) return;
      cur = words[static_cast<std::size_t>(w)];
    }
    const int start = static_cast<int>(w) * 64 + std::countr_zero(cur);
    // Next clear bit after start.
    std::uint64_t zeros = ~words[static_cast<std::size_t>(w)] &
                          ((start & 63) == 63 ? 0 : kAllOnes << ((start & 63) + 1));
    int end = cols;
    for (;;) {
      if (zeros != 0) {
        end = static_cast<int>(w) * 64 + std::countr_zero(zeros);
        break;
      }
      if (++w >= n) {
        end = static_cast<int>(n) * 64;
        break;
      }
      zeros = ~words[static_cast<std::size_t>(w)];
    }
    if (end > cols) end = cols;
    fn(start, end);
    x = end + 1;
  }
}

}  // namespace

std::vector<Rect> decompose_mask(const BitMatrix& mask) {
  std::vector<Rect> parts;
  int open_x = 0, open_y = 0, open_h = 0, open_w = 0;
  const auto flush = [&] {
    if (open_w > 0) parts.push_back(Rect{open_x, open_y, open_w, open_h});
    open_w = 0;
  };
  std::vector<std::pair<int, int>> runs;  // (y, len)
  for (int x = 0; x < mask.cols(); ++x) {
    runs.clear();
    for (int y = 0; y < mask.rows(); ++y) {
      if (!mask.get(y, x)) continue;
      int y2 = y;
      while (y2 + 1 < mask.rows() && mask.get(y2 + 1, x)) ++y2;
      runs.emplace_back(y, y2 - y + 1);
      y = y2;
    }
    if (runs.size() == 1) {
      if (open_w > 0 && open_y == runs[0].first && open_h == runs[0].second) {
        ++open_w;
      } else {
        flush();
        open_x = x;
        open_y = runs[0].first;
        open_h = runs[0].second;
        open_w = 1;
      }
    } else {
      flush();
      for (const auto& [ry, rlen] : runs) parts.push_back(Rect{x, ry, 1, rlen});
    }
  }
  flush();
  return parts;
}

FreeSpaceIndex::FreeSpaceIndex(BitMatrix available)
    : avail_(std::move(available)),
      occ_(avail_.rows(), avail_.cols()),
      free_(avail_),
      free_tiles_(static_cast<long>(free_.popcount())),
      mers_(enumerate(free_)),
      feasible_(avail_.rows(), avail_.cols()),
      strip_(avail_.rows(), avail_.cols()) {}

BitMatrix FreeSpaceIndex::union_of(std::span<const BitMatrix> masks) {
  RR_REQUIRE(!masks.empty(), "union_of: no masks");
  BitMatrix out = masks[0];
  for (std::size_t i = 1; i < masks.size(); ++i) out.or_with(masks[i]);
  return out;
}

std::vector<Rect> FreeSpaceIndex::enumerate(const BitMatrix& free) {
  std::vector<Rect> out;
  const int rows = free.rows();
  const int cols = free.cols();
  if (rows == 0 || cols == 0) return out;
  // h[x]: consecutive free cells in column x ending at the current row;
  // h[cols] stays 0 as the flushing sentinel.
  std::vector<int> h(static_cast<std::size_t>(cols) + 1, 0);
  struct Bar {
    int start;
    int height;
  };
  std::vector<Bar> stack;
  for (int y = 0; y < rows; ++y) {
    int prev_end = 0;
    for_each_set_run(free.row_span(y), cols, [&](int s, int e) {
      for (int c = prev_end; c < s; ++c) h[static_cast<std::size_t>(c)] = 0;
      for (int c = s; c < e; ++c) ++h[static_cast<std::size_t>(c)];
      prev_end = e;
    });
    for (int c = prev_end; c < cols; ++c) h[static_cast<std::size_t>(c)] = 0;

    // Histogram stack pass: a popped bar (start s, height ph) spanning
    // columns [s, x) is left/right/bottom-maximal by construction (both
    // neighbours are strictly lower, and some column in [s, x) has exactly
    // ph free cells); it is a maximal rectangle iff the row above blocks
    // it somewhere.
    stack.clear();
    for (int x = 0; x <= cols; ++x) {
      const int hx = h[static_cast<std::size_t>(x)];
      int start = x;
      while (!stack.empty() && stack.back().height > hx) {
        const Bar bar = stack.back();
        stack.pop_back();
        if (y + 1 >= rows || !row_all_set(free, y + 1, bar.start, x))
          out.push_back(Rect{bar.start, y - bar.height + 1, x - bar.start,
                             bar.height});
        start = bar.start;
      }
      if (hx > 0 && (stack.empty() || stack.back().height < hx))
        stack.push_back(Bar{start, hx});
    }
  }
  return out;
}

std::pair<int, int> FreeSpaceIndex::row_interval(int row, int x) const {
  const std::span<const std::uint64_t> words = free_.row_span(row);
  if (((words[static_cast<std::size_t>(x >> 6)] >> (x & 63)) & 1u) == 0)
    return {0, 0};
  // Right boundary: first blocked column at or after x + 1. The shared
  // windowed gather scans 64 columns at a time; out-of-range bits read as
  // zero, so the row end terminates the scan by itself.
  int r = x + 1;
  for (;;) {
    const std::uint64_t win =
        simd::detail::window(words.data(), words.size(), r);
    const std::uint64_t zeros = ~win;
    if (zeros != 0) {
      r += std::countr_zero(zeros);
      break;
    }
    r += 64;
  }
  if (r > free_.cols()) r = free_.cols();
  // Left boundary: last blocked column strictly before x (columns below 0
  // read as blocked the same way).
  int l = x;
  while (l > 0) {
    const long base = static_cast<long>(l) - 64;
    const std::uint64_t win =
        simd::detail::window(words.data(), words.size(), base);
    const std::uint64_t zeros = ~win;
    if (zeros != 0) {
      l = static_cast<int>(base) + (63 - std::countl_zero(zeros)) + 1;
      break;
    }
    l -= 64;
  }
  if (l < 0) l = 0;
  return {l, r};
}

void FreeSpaceIndex::insert_run(int x, int y1, int y2) {
  const Rect run{x, y1, 1, y2 - y1 + 1};
  std::vector<Rect> pieces;
  std::size_t keep = 0;
  for (std::size_t i = 0; i < mers_.size(); ++i) {
    const Rect m = mers_[i];
    if (!m.intersects(run)) {
      mers_[keep++] = m;
      continue;
    }
    // Split into the at-most-four remainders around the blocked column run.
    if (x > m.x) pieces.push_back(Rect{m.x, m.y, x - m.x, m.height});
    if (x + 1 < m.right())
      pieces.push_back(Rect{x + 1, m.y, m.right() - (x + 1), m.height});
    if (y1 > m.y) pieces.push_back(Rect{m.x, m.y, m.width, y1 - m.y});
    if (y2 + 1 < m.top())
      pieces.push_back(Rect{m.x, y2 + 1, m.width, m.top() - (y2 + 1)});
  }
  mers_.resize(keep);
  // A piece survives unless a surviving MER or another piece contains it
  // (among equal pieces the first wins).
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    const Rect& p = pieces[i];
    bool contained = false;
    for (std::size_t j = 0; j < keep && !contained; ++j)
      contained = mers_[j].contains(p);
    for (std::size_t j = 0; j < pieces.size() && !contained; ++j) {
      if (j == i) continue;
      contained = pieces[j].contains(p) && (pieces[j] != p || j < i);
    }
    if (!contained) mers_.push_back(p);
  }
}

void FreeSpaceIndex::remove_run(int x, int y1, int y2) {
  // Enumerate every maximal rectangle through column x that intersects the
  // freed rows [y1, y2]: for each bottom row a, grow the top b upward while
  // intersecting the per-row maximal free intervals containing x; each
  // strict shrink closes a horizontally+top-maximal candidate, kept when
  // also bottom-maximal. All other maximal rectangles of the new free
  // bitmap were free before the run and are already stored.
  const int rows = free_.rows();
  std::vector<Rect> fresh;
  std::pair<int, int> prev{0, 0};
  for (int a = 0; a <= y2; ++a) {
    const std::pair<int, int> cur = row_interval(a, x);
    if (cur.second <= cur.first) {
      prev = cur;
      continue;
    }
    // If the row below covers this row's whole interval, every candidate
    // with bottom a would extend downward: nothing bottom-maximal here.
    if (a > 0 && prev.second > prev.first && prev.first <= cur.first &&
        prev.second >= cur.second) {
      prev = cur;
      continue;
    }
    int l = cur.first;
    int r = cur.second;
    for (int b = a;; ++b) {
      std::pair<int, int> nxt{0, 0};
      if (b + 1 < rows) nxt = row_interval(b + 1, x);
      int nl = std::max(l, nxt.first);
      int nr = std::min(r, nxt.second);
      if (nxt.second <= nxt.first) {
        nl = 0;
        nr = 0;
      }
      if (nl != l || nr != r) {
        if (b >= y1 && a <= y2) {
          const bool covered_below = a > 0 && prev.second > prev.first &&
                                     prev.first <= l && prev.second >= r;
          if (!covered_below) fresh.push_back(Rect{l, a, r - l, b - a + 1});
        }
        if (nr <= nl) break;
        l = nl;
        r = nr;
      }
    }
    prev = cur;
  }
  if (fresh.empty()) return;
  // Old MERs swallowed by a fresh rectangle lose maximality; fresh ones
  // contain a newly freed cell, so none duplicates a survivor.
  std::size_t keep = 0;
  for (std::size_t i = 0; i < mers_.size(); ++i) {
    bool swallowed = false;
    for (const Rect& n : fresh) {
      if (n.contains(mers_[i])) {
        swallowed = true;
        break;
      }
    }
    if (!swallowed) mers_[keep++] = mers_[i];
  }
  mers_.resize(keep);
  mers_.insert(mers_.end(), fresh.begin(), fresh.end());
}

void FreeSpaceIndex::occupy(const BitMatrix& footprint, int y, int x) {
  for (int lx = 0; lx < footprint.cols(); ++lx) {
    const int gx = x + lx;
    for (int ly = 0; ly < footprint.rows(); ++ly) {
      if (!footprint.get(ly, lx)) continue;
      int le = ly;
      while (le + 1 < footprint.rows() && footprint.get(le + 1, lx)) ++le;
      const int gy1 = y + ly;
      const int gy2 = y + le;
      RR_ASSERT(gx >= 0 && gx < free_.cols() && gy1 >= 0 && gy2 < free_.rows());
      for (int gy = gy1; gy <= gy2; ++gy) {
        RR_ASSERT(free_.get(gy, gx));
        free_.set(gy, gx, false);
        occ_.set(gy, gx, true);
      }
      free_tiles_ -= gy2 - gy1 + 1;
      insert_run(gx, gy1, gy2);
      ly = le;
    }
  }
}

void FreeSpaceIndex::release(const BitMatrix& footprint, int y, int x) {
  for (int lx = 0; lx < footprint.cols(); ++lx) {
    const int gx = x + lx;
    for (int ly = 0; ly < footprint.rows(); ++ly) {
      if (!footprint.get(ly, lx)) continue;
      int le = ly;
      while (le + 1 < footprint.rows() && footprint.get(le + 1, lx)) ++le;
      int run_start = -1;
      for (int gy = y + ly; gy <= y + le; ++gy) {
        RR_ASSERT(occ_.get(gy, gx));
        occ_.set(gy, gx, false);
        if (avail_.get(gy, gx)) {
          free_.set(gy, gx, true);
          ++free_tiles_;
          if (run_start < 0) run_start = gy;
        } else if (run_start >= 0) {
          remove_run(gx, run_start, gy - 1);
          run_start = -1;
        }
      }
      if (run_start >= 0) remove_run(gx, run_start, y + le);
      ly = le;
    }
  }
}

void FreeSpaceIndex::set_available(const BitMatrix& available) {
  RR_REQUIRE(available.rows() == avail_.rows() &&
                 available.cols() == avail_.cols(),
             "set_available: availability bitmap shape mismatch");
  // Word-XOR diff; blocked cells applied before freed ones so each
  // remove_run sweep sees a settled free bitmap.
  std::vector<Point> lost;
  std::vector<Point> gained;
  for (int r = 0; r < avail_.rows(); ++r) {
    const std::span<const std::uint64_t> a = avail_.row_span(r);
    const std::span<const std::uint64_t> b = available.row_span(r);
    for (std::size_t w = 0; w < a.size(); ++w) {
      std::uint64_t diff = a[w] ^ b[w];
      while (diff != 0) {
        const int bit = std::countr_zero(diff);
        diff &= diff - 1;
        const int c = static_cast<int>(w) * 64 + bit;
        if ((b[w] >> bit) & 1u)
          gained.push_back(Point{c, r});
        else
          lost.push_back(Point{c, r});
      }
    }
  }
  const auto column_runs = [](std::vector<Point>& cells, auto&& fn) {
    std::sort(cells.begin(), cells.end(), [](Point p, Point q) {
      return p.x != q.x ? p.x < q.x : p.y < q.y;
    });
    std::size_t i = 0;
    while (i < cells.size()) {
      std::size_t j = i;
      while (j + 1 < cells.size() && cells[j + 1].x == cells[i].x &&
             cells[j + 1].y == cells[j].y + 1)
        ++j;
      fn(cells[i].x, cells[i].y, cells[j].y);
      i = j + 1;
    }
  };
  column_runs(lost, [&](int x, int ya, int yb) {
    // Only cells that were free leave the MER set; occupied ones just lose
    // availability (they stay out when later released).
    int run_start = -1;
    for (int yy = ya; yy <= yb; ++yy) {
      avail_.set(yy, x, false);
      if (free_.get(yy, x)) {
        free_.set(yy, x, false);
        --free_tiles_;
        if (run_start < 0) run_start = yy;
      } else if (run_start >= 0) {
        insert_run(x, run_start, yy - 1);
        run_start = -1;
      }
    }
    if (run_start >= 0) insert_run(x, run_start, yb);
  });
  column_runs(gained, [&](int x, int ya, int yb) {
    int run_start = -1;
    for (int yy = ya; yy <= yb; ++yy) {
      avail_.set(yy, x, true);
      if (!occ_.get(yy, x)) {
        free_.set(yy, x, true);
        ++free_tiles_;
        if (run_start < 0) run_start = yy;
      } else if (run_start >= 0) {
        remove_run(x, run_start, yy - 1);
        run_start = -1;
      }
    }
    if (run_start >= 0) remove_run(x, run_start, yb);
  });
}

std::optional<AnchorPick> FreeSpaceIndex::best_anchor(
    std::span<const AnchorQuery> queries, AnchorPolicy policy,
    const Rect* window, const AnchorCost* cost) const {
  // Without a cost callback communication cannot distinguish anchors, so
  // kCommCost degenerates to the first-fit order (zero-weight oracle).
  if (policy == AnchorPolicy::kCommCost && cost == nullptr)
    policy = AnchorPolicy::kFirstFit;
  const int rows = free_.rows();
  const int cols = free_.cols();
  if (rows == 0 || cols == 0) return std::nullopt;
  if (feasible_.rows() != rows || feasible_.cols() != cols) {
    feasible_ = BitMatrix(rows, cols);
    strip_ = BitMatrix(rows, cols);
    strip_lo_ = strip_hi_ = 0;
  }

  // Fill strip_ with the union of per-MER anchor windows of `part`:
  // anchor (x, y) is set iff some MER with room for the part contains the
  // part placed at that anchor. Returns false when no MER qualifies.
  const auto build_strip = [&](const Rect& part, const Rect* m_begin,
                               const Rect* m_end) -> bool {
    for (int r = strip_lo_; r < strip_hi_; ++r) {
      const std::span<std::uint64_t> span = strip_.row_span_mut(r);
      std::fill(span.begin(), span.end(), 0);
    }
    strip_lo_ = rows;
    strip_hi_ = 0;
    bool any = false;
    for (const Rect* m = m_begin; m != m_end; ++m) {
      if (m->width < part.width || m->height < part.height) continue;
      int ax0 = m->x - part.x;
      int ay0 = m->y - part.y;
      int ax1 = m->right() - part.width - part.x;
      int ay1 = m->top() - part.height - part.y;
      if (ax0 < 0) ax0 = 0;
      if (ay0 < 0) ay0 = 0;
      if (ax1 > cols - 1) ax1 = cols - 1;
      if (ay1 > rows - 1) ay1 = rows - 1;
      if (ax1 < ax0 || ay1 < ay0) continue;
      any = true;
      if (ay0 < strip_lo_) strip_lo_ = ay0;
      if (ay1 + 1 > strip_hi_) strip_hi_ = ay1 + 1;
      for (int r = ay0; r <= ay1; ++r) row_fill(strip_, r, ax0, ax1 + 1);
    }
    if (!any) {
      strip_lo_ = strip_hi_ = 0;
    }
    return any;
  };

  // Minimal (x, y) lexicographic anchor of feasible_, optionally AND-masked
  // by strip_: the first non-empty word column's OR gives the minimal x.
  const auto min_xy = [&](bool with_strip) -> std::optional<std::pair<int, int>> {
    const std::size_t wpr = feasible_.words_per_row();
    for (std::size_t w = 0; w < wpr; ++w) {
      std::uint64_t orw = 0;
      for (int r = 0; r < rows; ++r) {
        std::uint64_t v = feasible_.row_span(r)[w];
        if (with_strip) v &= strip_.row_span(r)[w];
        orw |= v;
      }
      if (orw == 0) continue;
      const int c = static_cast<int>(w) * 64 + std::countr_zero(orw);
      const std::uint64_t bit = std::uint64_t{1} << (c & 63);
      for (int r = 0; r < rows; ++r) {
        std::uint64_t v = feasible_.row_span(r)[w];
        if (with_strip) v &= strip_.row_span(r)[w];
        if (v & bit) return std::make_pair(c, r);
      }
    }
    return std::nullopt;
  };

  // Minimal (y, x) lexicographic anchor of feasible_.
  const auto min_yx = [&]() -> std::optional<std::pair<int, int>> {
    for (int r = 0; r < rows; ++r) {
      const std::span<const std::uint64_t> span = feasible_.row_span(r);
      for (std::size_t w = 0; w < span.size(); ++w) {
        if (span[w] != 0)
          return std::make_pair(
              static_cast<int>(w) * 64 + std::countr_zero(span[w]), r);
      }
    }
    return std::nullopt;
  };

  // MERs ordered by (area, x, y, width, height) for the best-fit walk.
  std::vector<Rect> by_area;
  if (policy == AnchorPolicy::kBestFit) {
    by_area = mers_;
    std::sort(by_area.begin(), by_area.end(),
              [](const Rect& a, const Rect& b) {
                if (a.area() != b.area()) return a.area() < b.area();
                return a < b;
              });
  }

  bool have_best = false;
  std::array<long, 5> best_key{};
  AnchorPick best{};
  const auto offer = [&](const std::array<long, 5>& key, int shape, int x,
                         int y) {
    if (!have_best || key < best_key) {
      have_best = true;
      best_key = key;
      best = AnchorPick{shape, x, y};
    }
  };

  for (std::size_t s = 0; s < queries.size(); ++s) {
    const AnchorQuery& q = queries[s];
    if (q.anchors == nullptr || q.parts.empty()) continue;
    long area = 0;
    for (const Rect& p : q.parts) area += p.area();
    if (area > free_tiles_) continue;
    int wx0 = 0, wy0 = 0, wx1 = cols - 1, wy1 = rows - 1;
    if (window != nullptr) {
      wx0 = window->x;
      wy0 = window->y;
      wx1 = window->right() - q.width;
      wy1 = window->top() - q.height;
      if (wx1 < wx0 || wy1 < wy0) continue;
    }
    // feasible_ = valid anchors ∧ (every part inside some MER).
    for (int r = 0; r < rows; ++r) {
      const std::span<const std::uint64_t> src = q.anchors->row_span(r);
      const std::span<std::uint64_t> dst = feasible_.row_span_mut(r);
      std::copy(src.begin(), src.end(), dst.begin());
    }
    bool dead = false;
    for (const Rect& part : q.parts) {
      if (!build_strip(part, mers_.data(), mers_.data() + mers_.size())) {
        dead = true;
        break;
      }
      std::size_t pop = 0;
      for (int r = 0; r < rows; ++r)
        pop += simd::and_inplace_popcount(feasible_.row_span_mut(r),
                                          strip_.row_span(r));
      if (pop == 0) {
        dead = true;
        break;
      }
    }
    if (dead) continue;
    if (window != nullptr) {
      for (int r = 0; r < rows; ++r) {
        if (r < wy0 || r > wy1) {
          const std::span<std::uint64_t> span = feasible_.row_span_mut(r);
          std::fill(span.begin(), span.end(), 0);
        } else {
          row_clip(feasible_, r, wx0, wx1);
        }
      }
    }

    switch (policy) {
      case AnchorPolicy::kFirstFit: {
        if (const auto p = min_xy(false))
          offer({p->first + q.width, p->first, p->second,
                 static_cast<long>(s), 0},
                static_cast<int>(s), p->first, p->second);
        break;
      }
      case AnchorPolicy::kBottomLeft: {
        if (const auto p = min_yx())
          offer({p->second, p->first, static_cast<long>(s), 0, 0},
                static_cast<int>(s), p->first, p->second);
        break;
      }
      case AnchorPolicy::kBestFit: {
        // Walk MERs by ascending area; within one area class, the anchors
        // whose first part fits that class are exactly the anchors whose
        // tightest containing MER has this area (smaller classes came up
        // empty), so the first non-empty class decides.
        const Rect& p0 = q.parts[0];
        std::size_t i = 0;
        while (i < by_area.size()) {
          std::size_t j = i;
          while (j + 1 < by_area.size() &&
                 by_area[j + 1].area() == by_area[i].area())
            ++j;
          if (build_strip(p0, by_area.data() + i, by_area.data() + j + 1)) {
            if (const auto p = min_xy(true)) {
              offer({by_area[i].area(), p->first + q.width, p->first,
                     p->second, static_cast<long>(s)},
                    static_cast<int>(s), p->first, p->second);
              break;
            }
          }
          i = j + 1;
        }
        break;
      }
      case AnchorPolicy::kCommCost: {
        // Enumerate every feasible anchor and reduce by the pinned
        // (cost, x + width, x, y, shape) key — the bitmap sweep does the
        // same over its placement table, so both arms agree bit-for-bit.
        for (int r = 0; r < rows; ++r) {
          const std::span<const std::uint64_t> span = feasible_.row_span(r);
          for (std::size_t w = 0; w < span.size(); ++w) {
            std::uint64_t v = span[w];
            while (v != 0) {
              const int c = static_cast<int>(w) * 64 + std::countr_zero(v);
              v &= v - 1;
              offer({(*cost)(static_cast<int>(s), c, r), c + q.width, c, r,
                     static_cast<long>(s)},
                    static_cast<int>(s), c, r);
            }
          }
        }
        break;
      }
    }
  }
  return have_best ? std::optional<AnchorPick>(best) : std::nullopt;
}

}  // namespace rr
