#include "geo/transform.hpp"

#include "util/error.hpp"

namespace rr {
namespace {

// Probe points sufficient to identify an element of D4 uniquely.
constexpr Point kProbeA{1, 0};
constexpr Point kProbeB{0, 1};

}  // namespace

Transform compose(Transform a, Transform b) noexcept {
  const Point pa = apply(b, apply(a, kProbeA));
  const Point pb = apply(b, apply(a, kProbeB));
  for (Transform t : kAllTransforms) {
    if (apply(t, kProbeA) == pa && apply(t, kProbeB) == pb) return t;
  }
  RR_ASSERT(false && "composition closed over D4");
  return Transform::kIdentity;
}

Transform inverse(Transform t) noexcept {
  for (Transform u : kAllTransforms) {
    if (compose(t, u) == Transform::kIdentity) return u;
  }
  RR_ASSERT(false && "every D4 element has an inverse");
  return Transform::kIdentity;
}

std::string_view to_string(Transform t) noexcept {
  switch (t) {
    case Transform::kIdentity: return "id";
    case Transform::kRot90: return "rot90";
    case Transform::kRot180: return "rot180";
    case Transform::kRot270: return "rot270";
    case Transform::kMirrorX: return "mirror-x";
    case Transform::kMirrorY: return "mirror-y";
    case Transform::kMirrorXRot90: return "mirror-x+rot90";
    case Transform::kMirrorYRot90: return "mirror-y+rot90";
  }
  return "?";
}

}  // namespace rr
