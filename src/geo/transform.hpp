// The eight orthogonal symmetries of the grid (the dihedral group D4).
//
// Design alternatives in the paper include 180-degree rotations of a layout
// (§V.A); the model layer uses the full group to derive external-layout
// variants and then filters the ones that remain fabric-compatible.
#pragma once

#include <array>
#include <string_view>

#include "geo/point.hpp"

namespace rr {

enum class Transform : int {
  kIdentity = 0,
  kRot90 = 1,    // counter-clockwise
  kRot180 = 2,
  kRot270 = 3,
  kMirrorX = 4,  // flip across the vertical axis (x -> -x)
  kMirrorY = 5,  // flip across the horizontal axis (y -> -y)
  kMirrorXRot90 = 6,
  kMirrorYRot90 = 7,
};

inline constexpr std::array<Transform, 8> kAllTransforms = {
    Transform::kIdentity,     Transform::kRot90,
    Transform::kRot180,       Transform::kRot270,
    Transform::kMirrorX,      Transform::kMirrorY,
    Transform::kMirrorXRot90, Transform::kMirrorYRot90,
};

/// Apply a transform to a point about the origin. The result generally has
/// negative coordinates; callers re-normalize (see CellSet::transformed).
[[nodiscard]] constexpr Point apply(Transform t, Point p) noexcept {
  switch (t) {
    case Transform::kIdentity: return p;
    case Transform::kRot90: return {-p.y, p.x};
    case Transform::kRot180: return {-p.x, -p.y};
    case Transform::kRot270: return {p.y, -p.x};
    case Transform::kMirrorX: return {-p.x, p.y};
    case Transform::kMirrorY: return {p.x, -p.y};
    case Transform::kMirrorXRot90: return {-p.y, -p.x};  // mirror then rot90
    case Transform::kMirrorYRot90: return {p.y, p.x};
  }
  return p;
}

/// Composition: apply `a` then `b`.
[[nodiscard]] Transform compose(Transform a, Transform b) noexcept;

/// Inverse element.
[[nodiscard]] Transform inverse(Transform t) noexcept;

/// True when the transform swaps the roles of width and height.
[[nodiscard]] constexpr bool swaps_axes(Transform t) noexcept {
  return t == Transform::kRot90 || t == Transform::kRot270 ||
         t == Transform::kMirrorXRot90 || t == Transform::kMirrorYRot90;
}

[[nodiscard]] std::string_view to_string(Transform t) noexcept;

}  // namespace rr
