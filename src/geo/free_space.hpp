// Incremental maximal-empty-rectangle (MER) free-space index.
//
// Online admission, defragmentation target search, and fault recovery all
// ask the same question — "where does this footprint still fit?" — and the
// bitmap placers answer it by sweeping anchor tables against the occupancy
// grid. Following Ahmadinia et al. ("Optimal Free-Space Management and
// Routing-Conscious Dynamic Placement for Reconfigurable Devices"), this
// index instead maintains the complete set of maximal empty rectangles over
// the region's free cells (available and not occupied) and answers
// admission as a query against that set:
//
//   - occupy() splits every MER crossed by a placed footprint into its at
//     most four remainder rectangles (left/right/below/above of each
//     occupied column run) and prunes rectangles contained in another.
//   - release() re-enumerates exactly the maximal rectangles that gained a
//     freed cell (a column sweep of shrinking row intervals through the
//     freed run), drops old MERs they swallow, and keeps the rest — the
//     merge dual of the split.
//   - set_available() diffs an availability bitmap (fault / repair overlay
//     changes) and applies the per-cell deltas through the same two paths.
//
// Invariants (checked by tests/free_space_fuzz_test against enumerate()):
// every stored rectangle is fully free and maximal — it cannot grow in any
// of the four directions — and every maximal empty rectangle of the free
// bitmap is stored exactly once.
//
// Queries are exact for non-rectangular footprints: a footprint is
// decomposed into rectangular parts (decompose_mask), and a part fits at an
// anchor iff some MER contains it, so the feasible-anchor set of a shape is
// the intersection over parts of unions of per-MER anchor windows, masked
// by the shape's resource-compatibility anchor bitmap. Resource types and
// fault overlays therefore filter through the anchor bitmaps (computed
// against the per-resource region masks), while the MER set tracks the
// union availability — together the decisions are bit-identical to the
// occupancy-bitmap sweep, which the callers keep as a differential oracle.
#pragma once

#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "geo/rect.hpp"
#include "util/bitmatrix.hpp"

namespace rr {

/// Anchor-selection policy for FreeSpaceIndex::best_anchor. All policies
/// see the same feasible set (accept/reject is policy-independent); they
/// differ only in which feasible anchor wins:
///   - kFirstFit: the sorted-placement-table order of geost — minimal
///     (x + bbox.width, x, y, shape); identical to the bitmap sweep's
///     first-fit scan.
///   - kBottomLeft: minimal (y, x, shape) — lowest row first.
///   - kBestFit: tightest hole first — minimal area of the smallest MER
///     containing the shape's first part, ties broken by the first-fit key.
///   - kCommCost: cheapest communication first — minimal caller-supplied
///     anchor cost (see AnchorCost), ties broken by the first-fit key.
///     Without a cost callback the policy degenerates to kFirstFit (the
///     zero-weight oracle).
///
/// Tie-breaking contract (pinned; the bitmap sweeps replicate it so the
/// index-vs-sweep differential oracle holds for every policy): each policy
/// reduces feasible anchors by strict `<` over a total-order key —
///   kFirstFit   (x + bbox.width, x, y, shape)
///   kBottomLeft (y, x, shape)
///   kBestFit    (containing-MER area, x + bbox.width, x, y, shape)
///   kCommCost   (cost, x + bbox.width, x, y, shape)
/// Every key ends in (.., x, y, shape)-distinguishing components, so equal
/// scores always resolve to the same anchor on both arms.
enum class AnchorPolicy {
  kFirstFit = 0,
  kBestFit = 1,
  kBottomLeft = 2,
  kCommCost = 3,
};

/// Anchor cost callback for AnchorPolicy::kCommCost: the communication cost
/// of anchoring shape `shape` (index into the query span) at (x, y). Must
/// be deterministic for the differential oracle to hold.
using AnchorCost = std::function<long(int shape, int x, int y)>;

/// One shape's inputs to best_anchor. `anchors` is the region-shaped
/// valid-anchor bitmap (resource compatibility folded in); `parts` is the
/// shape's rectangular decomposition in local coordinates (decompose_mask);
/// width/height are the shape's bounding box.
struct AnchorQuery {
  const BitMatrix* anchors = nullptr;
  std::span<const Rect> parts;
  int width = 0;
  int height = 0;
};

/// A winning anchor: shape index into the query span plus region coords.
struct AnchorPick {
  int shape = 0;
  int x = 0;
  int y = 0;
};

/// Decompose a footprint mask into disjoint rectangles covering exactly its
/// set cells: maximal groups of consecutive single-run columns sharing one
/// identical vertical run become one rectangle; columns with several runs
/// contribute one 1-wide rectangle per run. Deterministic left-to-right
/// order; the first part is the leftmost (the kBestFit probe part).
[[nodiscard]] std::vector<Rect> decompose_mask(const BitMatrix& mask);

class FreeSpaceIndex {
 public:
  FreeSpaceIndex() = default;

  /// Build over an availability bitmap (typically the union of a region's
  /// per-resource masks) with no occupancy.
  explicit FreeSpaceIndex(BitMatrix available);

  /// Union helper: OR of per-resource availability masks.
  [[nodiscard]] static BitMatrix union_of(std::span<const BitMatrix> masks);

  /// Replace the availability bitmap (fault/repair overlay change) and
  /// update the MER set incrementally from the per-cell diff. Cells under a
  /// live footprint stay non-free either way; they join the free set when
  /// released, if then available.
  void set_available(const BitMatrix& available);

  /// Mark a placed footprint's cells occupied. The cells must currently be
  /// free (the caller validated the placement).
  void occupy(const BitMatrix& footprint, int y, int x);

  /// Release a footprint's cells; cells still available re-join the free
  /// set (cells faulted while occupied stay out until repaired).
  void release(const BitMatrix& footprint, int y, int x);

  /// Best feasible anchor across `queries` under `policy`, or nullopt when
  /// no shape fits anywhere. `window`, when given, additionally requires
  /// the shape's bounding box to lie inside it (the fault-recovery local
  /// re-place tier). `cost` drives AnchorPolicy::kCommCost (ignored by the
  /// other policies; kCommCost with a null cost behaves as kFirstFit). Not
  /// thread-safe (reuses internal scratch).
  [[nodiscard]] std::optional<AnchorPick> best_anchor(
      std::span<const AnchorQuery> queries, AnchorPolicy policy,
      const Rect* window = nullptr, const AnchorCost* cost = nullptr) const;

  /// The maximal empty rectangles (unspecified order).
  [[nodiscard]] const std::vector<Rect>& rectangles() const noexcept {
    return mers_;
  }
  /// The free bitmap (available and not occupied) the MER set describes.
  [[nodiscard]] const BitMatrix& free_matrix() const noexcept { return free_; }
  [[nodiscard]] const BitMatrix& available_matrix() const noexcept {
    return avail_;
  }
  [[nodiscard]] long free_tiles() const noexcept { return free_tiles_; }
  [[nodiscard]] int rows() const noexcept { return free_.rows(); }
  [[nodiscard]] int cols() const noexcept { return free_.cols(); }

  /// From-scratch enumeration of every maximal empty rectangle of `free` —
  /// the construction path and the differential oracle for the incremental
  /// updates. One histogram-of-heights stack pass per row over word-
  /// extracted row runs; a popped histogram rectangle is maximal iff the
  /// row above blocks it somewhere.
  [[nodiscard]] static std::vector<Rect> enumerate(const BitMatrix& free);

 private:
  /// Cells (x, y1..y2) turned non-free: split every crossing MER.
  void insert_run(int x, int y1, int y2);
  /// Cells (x, y1..y2) turned free (free_ already updated): enumerate the
  /// maximal rectangles through the run and merge them into the set.
  void remove_run(int x, int y1, int y2);
  /// Maximal free row interval [l, r) of `row` containing column x, as
  /// stored in free_; {0, 0} when (x, row) is not free.
  [[nodiscard]] std::pair<int, int> row_interval(int row, int x) const;

  BitMatrix avail_;
  BitMatrix occ_;
  BitMatrix free_;
  long free_tiles_ = 0;
  std::vector<Rect> mers_;

  // best_anchor scratch (row-range cleared between uses).
  mutable BitMatrix feasible_;
  mutable BitMatrix strip_;
  mutable int strip_lo_ = 0;  // rows [strip_lo_, strip_hi_) may be dirty
  mutable int strip_hi_ = 0;
};

}  // namespace rr
