// Integer grid point. The fabric plane follows the paper's convention:
// x grows along the device's horizontal axis (the axis the objective
// minimizes, eq. 6), y along the vertical axis. Tiles have unit size.
#pragma once

#include <compare>
#include <cstddef>
#include <functional>

namespace rr {

struct Point {
  int x = 0;
  int y = 0;

  friend constexpr Point operator+(Point a, Point b) noexcept {
    return {a.x + b.x, a.y + b.y};
  }
  friend constexpr Point operator-(Point a, Point b) noexcept {
    return {a.x - b.x, a.y - b.y};
  }
  constexpr auto operator<=>(const Point&) const noexcept = default;
};

struct PointHash {
  std::size_t operator()(const Point& p) const noexcept {
    // 2-D -> 1-D mix; fine for the small coordinate ranges of FPGA grids.
    const std::size_t h =
        static_cast<std::size_t>(static_cast<unsigned>(p.x)) * 0x9e3779b97f4a7c15ULL;
    return h ^ (static_cast<std::size_t>(static_cast<unsigned>(p.y)) +
                0x517cc1b727220a95ULL + (h << 6) + (h >> 2));
  }
};

}  // namespace rr
