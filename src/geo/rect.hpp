// Axis-aligned integer rectangle, half-open in neither direction: a Rect
// covers cells [x, x+width) x [y, y+height).
#pragma once

#include <algorithm>
#include <compare>

#include "geo/point.hpp"

namespace rr {

struct Rect {
  int x = 0;
  int y = 0;
  int width = 0;
  int height = 0;

  [[nodiscard]] constexpr int right() const noexcept { return x + width; }
  [[nodiscard]] constexpr int top() const noexcept { return y + height; }
  [[nodiscard]] constexpr long area() const noexcept {
    return static_cast<long>(width) * height;
  }
  [[nodiscard]] constexpr bool empty() const noexcept {
    return width <= 0 || height <= 0;
  }

  [[nodiscard]] constexpr bool contains(Point p) const noexcept {
    return p.x >= x && p.x < right() && p.y >= y && p.y < top();
  }

  [[nodiscard]] constexpr bool contains(const Rect& other) const noexcept {
    return other.x >= x && other.right() <= right() && other.y >= y &&
           other.top() <= top();
  }

  [[nodiscard]] constexpr bool intersects(const Rect& other) const noexcept {
    return !empty() && !other.empty() && x < other.right() &&
           other.x < right() && y < other.top() && other.y < top();
  }

  /// Intersection rectangle (empty Rect when disjoint).
  [[nodiscard]] constexpr Rect intersection(const Rect& other) const noexcept {
    const int nx = std::max(x, other.x);
    const int ny = std::max(y, other.y);
    const int nr = std::min(right(), other.right());
    const int nt = std::min(top(), other.top());
    if (nr <= nx || nt <= ny) return Rect{};
    return Rect{nx, ny, nr - nx, nt - ny};
  }

  /// Smallest rectangle containing both (treats empty as identity).
  [[nodiscard]] constexpr Rect bounding_union(const Rect& other) const noexcept {
    if (empty()) return other;
    if (other.empty()) return *this;
    const int nx = std::min(x, other.x);
    const int ny = std::min(y, other.y);
    const int nr = std::max(right(), other.right());
    const int nt = std::max(top(), other.top());
    return Rect{nx, ny, nr - nx, nt - ny};
  }

  [[nodiscard]] constexpr Rect translated(Point d) const noexcept {
    return Rect{x + d.x, y + d.y, width, height};
  }

  constexpr auto operator<=>(const Rect&) const noexcept = default;
};

}  // namespace rr
