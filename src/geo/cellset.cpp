#include "geo/cellset.hpp"

#include <algorithm>
#include <unordered_set>

#include "util/error.hpp"

namespace rr {

CellSet::CellSet(std::vector<Point> cells, bool normalize)
    : cells_(std::move(cells)) {
  std::sort(cells_.begin(), cells_.end());
  cells_.erase(std::unique(cells_.begin(), cells_.end()), cells_.end());
  recompute_bbox();
  if (normalize && !cells_.empty() && (bbox_.x != 0 || bbox_.y != 0)) {
    const Point d{-bbox_.x, -bbox_.y};
    for (Point& p : cells_) p = p + d;
    bbox_.x = 0;
    bbox_.y = 0;
  }
}

void CellSet::recompute_bbox() noexcept {
  if (cells_.empty()) {
    bbox_ = Rect{};
    return;
  }
  int min_x = cells_.front().x, max_x = cells_.front().x;
  int min_y = cells_.front().y, max_y = cells_.front().y;
  for (const Point& p : cells_) {
    min_x = std::min(min_x, p.x);
    max_x = std::max(max_x, p.x);
    min_y = std::min(min_y, p.y);
    max_y = std::max(max_y, p.y);
  }
  bbox_ = Rect{min_x, min_y, max_x - min_x + 1, max_y - min_y + 1};
}

bool CellSet::contains(Point p) const noexcept {
  return std::binary_search(cells_.begin(), cells_.end(), p);
}

CellSet CellSet::translated(Point d) const {
  std::vector<Point> moved;
  moved.reserve(cells_.size());
  for (const Point& p : cells_) moved.push_back(p + d);
  return CellSet(std::move(moved), /*normalize=*/false);
}

CellSet CellSet::transformed(Transform t) const {
  std::vector<Point> moved;
  moved.reserve(cells_.size());
  for (const Point& p : cells_) moved.push_back(apply(t, p));
  return CellSet(std::move(moved), /*normalize=*/true);
}

std::pair<CellSet, Transform> CellSet::canonical() const {
  CellSet best = transformed(Transform::kIdentity);
  Transform best_t = Transform::kIdentity;
  for (Transform t : kAllTransforms) {
    if (t == Transform::kIdentity) continue;
    CellSet candidate = transformed(t);
    if (std::lexicographical_compare(candidate.cells_.begin(),
                                     candidate.cells_.end(),
                                     best.cells_.begin(), best.cells_.end())) {
      best = std::move(candidate);
      best_t = t;
    }
  }
  return {std::move(best), best_t};
}

bool CellSet::connected() const {
  if (cells_.size() <= 1) return true;
  std::unordered_set<Point, PointHash> unseen(cells_.begin(), cells_.end());
  std::vector<Point> frontier{cells_.front()};
  unseen.erase(cells_.front());
  while (!frontier.empty()) {
    const Point p = frontier.back();
    frontier.pop_back();
    for (const Point d : {Point{1, 0}, Point{-1, 0}, Point{0, 1}, Point{0, -1}}) {
      const Point q = p + d;
      const auto it = unseen.find(q);
      if (it != unseen.end()) {
        unseen.erase(it);
        frontier.push_back(q);
      }
    }
  }
  return unseen.empty();
}

bool CellSet::is_rectangle() const noexcept {
  return static_cast<long>(cells_.size()) == bbox_.area();
}

std::string CellSet::to_string() const {
  if (cells_.empty()) return "(empty)\n";
  std::string out;
  for (int y = bbox_.top() - 1; y >= bbox_.y; --y) {
    for (int x = bbox_.x; x < bbox_.right(); ++x)
      out.push_back(contains(Point{x, y}) ? '#' : '.');
    out.push_back('\n');
  }
  return out;
}

}  // namespace rr
