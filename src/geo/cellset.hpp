// A CellSet is a finite set of unit grid cells — the geometric skeleton of
// a tileset/shape (§III.A) before resource types are attached.
//
// CellSets are kept in normalized form: cells sorted lexicographically and
// translated so the bounding-box origin is (0, 0). This makes equality,
// hashing and canonicalization over symmetries straightforward.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "geo/point.hpp"
#include "geo/rect.hpp"
#include "geo/transform.hpp"

namespace rr {

class CellSet {
 public:
  CellSet() = default;

  /// Build from arbitrary cells; duplicates are removed, and the set is
  /// normalized to origin (0,0) unless `normalize` is false.
  explicit CellSet(std::vector<Point> cells, bool normalize = true);

  [[nodiscard]] bool empty() const noexcept { return cells_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return cells_.size(); }
  [[nodiscard]] std::span<const Point> cells() const noexcept { return cells_; }

  /// Bounding box; origin (0,0) when normalized.
  [[nodiscard]] Rect bounding_box() const noexcept { return bbox_; }

  [[nodiscard]] bool contains(Point p) const noexcept;

  /// Set translated by d (not re-normalized).
  [[nodiscard]] CellSet translated(Point d) const;

  /// Set under an orthogonal transform, re-normalized to origin (0,0).
  [[nodiscard]] CellSet transformed(Transform t) const;

  /// The lexicographically-least normalized image over all 8 symmetries,
  /// paired with one transform achieving it. Two cell sets are congruent
  /// iff their canonical forms are equal.
  [[nodiscard]] std::pair<CellSet, Transform> canonical() const;

  /// True when the cells form a single 4-connected component. The paper
  /// notes routing restricts modules to (mostly) adjacent tiles; the module
  /// generator enforces this per shape.
  [[nodiscard]] bool connected() const;

  /// True when the set covers its bounding box entirely (a solid rectangle).
  [[nodiscard]] bool is_rectangle() const noexcept;

  bool operator==(const CellSet& other) const noexcept {
    return cells_ == other.cells_;
  }

  /// '#'/'.' picture of the bounding box, highest y row printed first.
  [[nodiscard]] std::string to_string() const;

 private:
  void recompute_bbox() noexcept;

  std::vector<Point> cells_;  // sorted, unique
  Rect bbox_{};
};

}  // namespace rr
