// Umbrella header: the full public API of rrplace.
//
// rrplace is a constraint-programming floorplanner for runtime
// reconfigurable systems on heterogeneous FPGAs, reproducing Wold, Koch &
// Torresen, "Enhancing Resource Utilization with Design Alternatives in
// Runtime Reconfigurable Systems" (2011). Typical flow (Fig. 2):
//
//   auto fabric = std::make_shared<const rr::fpga::Fabric>(
//       rr::fpga::make_evaluation_device());
//   rr::fpga::PartialRegion region(fabric);
//   rr::model::ModuleGenerator gen({}, /*seed=*/1);
//   auto modules = gen.generate_many(10);
//   rr::placer::Placer placer(region, modules);
//   auto outcome = placer.place();
//   std::cout << rr::render::placement_ascii(region, modules,
//                                            outcome.solution);
#pragma once

#include "baseline/annealing.hpp"   // IWYU pragma: export
#include "baseline/greedy.hpp"      // IWYU pragma: export
#include "baseline/online.hpp"      // IWYU pragma: export
#include "baseline/slots.hpp"       // IWYU pragma: export
#include "comm/bus.hpp"             // IWYU pragma: export
#include "comm/net.hpp"             // IWYU pragma: export
#include "cp/constraints.hpp"       // IWYU pragma: export
#include "cp/portfolio.hpp"         // IWYU pragma: export
#include "cp/search.hpp"            // IWYU pragma: export
#include "fpga/builders.hpp"        // IWYU pragma: export
#include "fpga/faults.hpp"          // IWYU pragma: export
#include "fpga/fdf.hpp"             // IWYU pragma: export
#include "fpga/region.hpp"          // IWYU pragma: export
#include "geost/nonoverlap.hpp"     // IWYU pragma: export
#include "model/generator.hpp"      // IWYU pragma: export
#include "model/library.hpp"        // IWYU pragma: export
#include "placer/compaction.hpp"    // IWYU pragma: export
#include "placer/metrics.hpp"       // IWYU pragma: export
#include "placer/placer.hpp"        // IWYU pragma: export
#include "placer/stats_json.hpp"    // IWYU pragma: export
#include "placer/validator.hpp"     // IWYU pragma: export
#include "render/ascii.hpp"         // IWYU pragma: export
#include "runtime/manager.hpp"      // IWYU pragma: export
#include "runtime/recovery.hpp"     // IWYU pragma: export
#include "render/svg.hpp"           // IWYU pragma: export
#include "service/service.hpp"      // IWYU pragma: export
#include "service/trace.hpp"        // IWYU pragma: export
#include "sim/workload.hpp"         // IWYU pragma: export
#include "util/json.hpp"            // IWYU pragma: export
#include "util/metrics.hpp"         // IWYU pragma: export
#include "util/stats.hpp"           // IWYU pragma: export
#include "util/table.hpp"           // IWYU pragma: export
