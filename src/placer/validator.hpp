// Independent solution checker.
//
// Re-verifies a PlacementSolution directly against the paper's constraint
// definitions — inside the region (eq. 2), resource types match (eq. 3),
// no overlaps (eq. 4) — without consulting any solver state. Used by tests,
// the bench harnesses and the examples after every solve.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "fpga/region.hpp"
#include "model/module.hpp"
#include "placer/placement.hpp"

namespace rr::placer {

struct ValidationReport {
  std::vector<std::string> errors;
  [[nodiscard]] bool ok() const noexcept { return errors.empty(); }
};

[[nodiscard]] ValidationReport validate(const fpga::PartialRegion& region,
                                        std::span<const model::Module> modules,
                                        const PlacementSolution& solution);

}  // namespace rr::placer
