#include "placer/model_builder.hpp"

#include <algorithm>
#include <array>
#include <climits>

#include "util/log.hpp"
#include "util/metrics.hpp"

namespace rr::placer {
namespace {

/// Post the combined objective comm::kExtentScale * H + weight * HPWL2.
/// Doubled centers attach to the placement variables through the same
/// element machinery as the extents; per-net HPWL2 is (max - min) of the
/// member center coordinates plus fixed terminals on each axis.
void post_comm_objective(cp::Space& space, const fpga::PartialRegion& region,
                         std::span<const ModuleTables> tables,
                         BuiltModel& built, const comm::BoundNets& nets,
                         long weight, const cp::ElementOptions& element) {
  RR_REQUIRE(nets.module_count() == static_cast<int>(tables.size()),
             "communication nets bound against a different module list");
  // Doubled-center variables for every module that appears in a net.
  std::vector<cp::VarId> c2x(tables.size(), cp::kNoVar);
  std::vector<cp::VarId> c2y(tables.size(), cp::kNoVar);
  for (const int i : nets.used_modules()) {
    const ModuleTables& entry = tables[static_cast<std::size_t>(i)];
    std::vector<int> xs, ys;
    xs.reserve(entry.table.size());
    ys.reserve(entry.table.size());
    for (const geost::Placement& p : entry.table) {
      const Rect box =
          (*entry.shapes)[static_cast<std::size_t>(p.shape)].bounding_box();
      const comm::Center2 c = comm::center2(box, p.x, p.y);
      xs.push_back(c.x);
      ys.push_back(c.y);
    }
    const auto post_center = [&](const std::vector<int>& table) {
      const auto [lo, hi] = std::minmax_element(table.begin(), table.end());
      const cp::VarId v = space.new_var(*lo, *hi);
      cp::post_element(space, table,
                       built.placement_vars[static_cast<std::size_t>(i)], v,
                       element);
      return v;
    };
    c2x[static_cast<std::size_t>(i)] = post_center(xs);
    c2y[static_cast<std::size_t>(i)] = post_center(ys);
  }

  std::vector<cp::VarId> hpwl_vars;
  std::vector<int> hpwl_coeffs;
  long wl2_ub = 0;
  for (const comm::BoundNets::BoundNet& net : nets.nets()) {
    std::vector<cp::VarId> xs, ys;
    for (const int m : net.members) {
      xs.push_back(c2x[static_cast<std::size_t>(m)]);
      ys.push_back(c2y[static_cast<std::size_t>(m)]);
    }
    for (const comm::Center2 t : net.terminals) {
      xs.push_back(space.new_var(t.x, t.x));
      ys.push_back(space.new_var(t.y, t.y));
    }
    const auto span_bounds = [&](const std::vector<cp::VarId>& vs) {
      int lo = INT_MAX, hi = INT_MIN;
      for (const cp::VarId v : vs) {
        lo = std::min(lo, space.min(v));
        hi = std::max(hi, space.max(v));
      }
      return std::pair<int, int>(lo, hi);
    };
    const auto [xlo, xhi] = span_bounds(xs);
    const auto [ylo, yhi] = span_bounds(ys);
    const cp::VarId lo_x = space.new_var(xlo, xhi);
    const cp::VarId hi_x = space.new_var(xlo, xhi);
    const cp::VarId lo_y = space.new_var(ylo, yhi);
    const cp::VarId hi_y = space.new_var(ylo, yhi);
    cp::post_min(space, lo_x, xs);
    cp::post_max(space, hi_x, xs);
    cp::post_min(space, lo_y, ys);
    cp::post_max(space, hi_y, ys);
    const int ub = (xhi - xlo) + (yhi - ylo);
    const cp::VarId h = space.new_var(0, ub);
    const std::array<int, 5> coeffs{1, -1, 1, -1, -1};
    const std::array<cp::VarId, 5> vars{hi_x, lo_x, hi_y, lo_y, h};
    cp::post_linear(space, coeffs, vars, cp::RelOp::kEq, 0);
    RR_REQUIRE(net.weight <= INT_MAX, "net weight exceeds the integer domain");
    hpwl_vars.push_back(h);
    hpwl_coeffs.push_back(static_cast<int>(net.weight));
    wl2_ub += net.weight * static_cast<long>(ub);
  }

  const long obj_ub = comm::kExtentScale * static_cast<long>(region.width()) +
                      weight * wl2_ub;
  RR_REQUIRE(weight <= INT_MAX && obj_ub <= INT_MAX,
             "combined comm objective exceeds the integer domain; lower the "
             "comm weight or net weights");
  const cp::VarId wl2 = space.new_var(0, static_cast<int>(wl2_ub));
  hpwl_coeffs.push_back(-1);
  hpwl_vars.push_back(wl2);
  cp::post_linear(space, hpwl_coeffs, hpwl_vars, cp::RelOp::kEq, 0);
  const cp::VarId objective = space.new_var(0, static_cast<int>(obj_ub));
  const std::array<int, 3> coeffs{static_cast<int>(comm::kExtentScale),
                                  static_cast<int>(weight), -1};
  const std::array<cp::VarId, 3> vars{built.extent_objective, wl2, objective};
  cp::post_linear(space, coeffs, vars, cp::RelOp::kEq, 0);
  built.wirelength2_var = wl2;
  built.objective = objective;
}

}  // namespace

std::vector<ModuleTables> prepare_tables(
    const fpga::PartialRegion& region,
    std::span<const model::Module> modules, bool use_alternatives) {
  metrics::ScopedTimer timer("placer.prepare_tables");
  std::vector<ModuleTables> tables;
  tables.reserve(modules.size());
  for (const model::Module& module : modules) {
    ModuleTables entry;
    auto shapes = std::make_shared<std::vector<geost::ShapeFootprint>>();
    if (use_alternatives) {
      *shapes = module.shapes();
    } else {
      shapes->push_back(module.shapes().front());
    }
    // Valid anchors per shape: constraints (2) + (3) folded into the domain.
    std::vector<std::vector<Point>> anchors;
    anchors.reserve(shapes->size());
    std::size_t total_anchors = 0;
    for (const geost::ShapeFootprint& shape : *shapes) {
      anchors.push_back(geost::compute_valid_anchors(region.masks(), shape));
      total_anchors += anchors.back().size();
    }
    if (total_anchors == 0) {
      RR_WARN("module " << module.name()
                        << " has no valid placement on this region");
    }
    entry.table = geost::sorted_placement_table(*shapes, anchors);
    entry.extents.reserve(entry.table.size());
    for (const geost::Placement& p : entry.table) {
      const Rect box =
          (*shapes)[static_cast<std::size_t>(p.shape)].bounding_box();
      entry.extents.push_back(p.x + box.width);
    }
    int min_area = shapes->front().area();
    for (const geost::ShapeFootprint& shape : *shapes)
      min_area = std::min(min_area, shape.area());
    entry.min_area = min_area;
    entry.shapes = std::move(shapes);
    tables.push_back(std::move(entry));
  }
  return tables;
}

TablesHandle prepare_tables_shared(const fpga::PartialRegion& region,
                                   std::span<const model::Module> modules,
                                   bool use_alternatives) {
  return std::make_shared<const std::vector<ModuleTables>>(
      prepare_tables(region, modules, use_alternatives));
}

BuiltModel build_model_from_tables(const fpga::PartialRegion& region,
                                   std::span<const ModuleTables> tables,
                                   const BuildOptions& options) {
  BuiltModel built;
  built.space = std::make_unique<cp::Space>();
  cp::Space& space = *built.space;

  long total_min_area = 0;
  for (const ModuleTables& entry : tables) {
    geost::GeostObject object =
        geost::make_object_from_table(space, entry.shapes, entry.table);
    if (object.table().empty()) {
      built.infeasible = true;
      built.placement_vars.push_back(cp::kNoVar);
      built.extent_vars.push_back(cp::kNoVar);
      built.objects.push_back(std::move(object));
      continue;
    }
    built.placement_vars.push_back(object.var());
    built.objects.push_back(std::move(object));
    total_min_area += entry.min_area;
  }
  if (built.infeasible) {
    space.fail();
    return built;
  }

  // extent_i = extent_table[placement_i]
  for (std::size_t i = 0; i < tables.size(); ++i) {
    const std::vector<int>& extents = tables[i].extents;
    const int min_extent = *std::min_element(extents.begin(), extents.end());
    const int max_extent = *std::max_element(extents.begin(), extents.end());
    const cp::VarId extent_var = space.new_var(min_extent, max_extent);
    cp::post_element(space, extents, built.placement_vars[i], extent_var,
                     options.element);
    built.extent_vars.push_back(extent_var);
  }

  // Objective: H = max_i extent_i, minimized by the search engine. With an
  // active communication model the minimized variable becomes the combined
  // extent + wirelength cost; otherwise nothing extra is posted so the
  // model stays byte-identical to the area-only build (zero-weight oracle).
  built.objective = space.new_var(0, region.width());
  cp::post_max(space, built.objective, built.extent_vars);
  built.extent_objective = built.objective;
  const bool comm_on = options.comm_nets != nullptr &&
                       options.comm_weight > 0 && !options.comm_nets->empty();
  if (comm_on) {
    post_comm_objective(space, region, tables, built, *options.comm_nets,
                        options.comm_weight, options.element);
  }

  if (options.area_bound) {
    // The spanned columns must offer at least the modules' total minimum
    // area. available_in_columns is monotone in c, so scan for the bound.
    int bound = region.width() + 1;
    for (int c = 1; c <= region.width(); ++c) {
      if (region.available_in_columns(c) >= total_min_area) {
        bound = c;
        break;
      }
    }
    if (bound > region.width()) {
      RR_WARN("total module area exceeds region capacity");
      space.fail();
      built.infeasible = true;
      return built;
    }
    space.set_min(built.extent_objective, bound);
  }

  if (options.break_symmetries) {
    // Identical modules (shared or layout-equal shape lists => identical
    // placement tables) are interchangeable: force increasing placement
    // indices. Equal indices would overlap anyway, so <= is sound and
    // removes the k! permutations. Modules mentioned by a communication net
    // are NOT interchangeable (their net memberships may differ), so the
    // ordering is only posted between net-free pairs when comm is on.
    std::vector<bool> in_net(tables.size(), false);
    if (comm_on) {
      for (const int m : options.comm_nets->used_modules())
        in_net[static_cast<std::size_t>(m)] = true;
    }
    for (std::size_t i = 0; i + 1 < tables.size(); ++i) {
      for (std::size_t j = i + 1; j < tables.size(); ++j) {
        const bool same_tables =
            tables[i].shapes == tables[j].shapes ||  // shared list
            tables[i].table == tables[j].table;      // or equal content
        if (!same_tables || tables[i].table.size() != tables[j].table.size())
          continue;
        if (in_net[i] || in_net[j]) continue;
        cp::post_rel(space, built.placement_vars[i], cp::RelOp::kLeq,
                     built.placement_vars[j]);
      }
    }
  }

  geost::post_non_overlap(space, built.objects, region.width(),
                          region.height(), options.nonoverlap);
  return built;
}

BuiltModel build_model(const fpga::PartialRegion& region,
                       std::span<const model::Module> modules,
                       const BuildOptions& options) {
  const std::vector<ModuleTables> tables =
      prepare_tables(region, modules, options.use_alternatives);
  return build_model_from_tables(region, tables, options);
}

PlacementSolution extract_solution(const BuiltModel& model,
                                   std::span<const int> placement_values) {
  PlacementSolution solution;
  if (model.infeasible ||
      placement_values.size() != model.objects.size())
    return solution;
  solution.feasible = true;
  solution.placements.reserve(model.objects.size());
  for (std::size_t i = 0; i < model.objects.size(); ++i) {
    const geost::GeostObject& object = model.objects[i];
    const int value = placement_values[i];
    const geost::Placement& p = object.placement(value);
    solution.placements.push_back(
        ModulePlacement{static_cast<int>(i), p.shape, p.x, p.y});
    solution.extent = std::max(solution.extent, object.extent_x_of(value));
  }
  return solution;
}

long assignment_wirelength2(std::span<const ModuleTables> tables,
                            std::span<const int> values,
                            const comm::BoundNets& nets) {
  RR_ASSERT(values.size() == tables.size());
  std::vector<comm::Center2> centers(tables.size());
  for (const int i : nets.used_modules()) {
    const ModuleTables& entry = tables[static_cast<std::size_t>(i)];
    const geost::Placement& p =
        entry.table[static_cast<std::size_t>(values[i])];
    const Rect box =
        (*entry.shapes)[static_cast<std::size_t>(p.shape)].bounding_box();
    centers[static_cast<std::size_t>(i)] = comm::center2(box, p.x, p.y);
  }
  return nets.wirelength2(centers);
}

}  // namespace rr::placer
