#include "placer/model_builder.hpp"

#include <algorithm>

#include "util/log.hpp"
#include "util/metrics.hpp"

namespace rr::placer {

std::vector<ModuleTables> prepare_tables(
    const fpga::PartialRegion& region,
    std::span<const model::Module> modules, bool use_alternatives) {
  metrics::ScopedTimer timer("placer.prepare_tables");
  std::vector<ModuleTables> tables;
  tables.reserve(modules.size());
  for (const model::Module& module : modules) {
    ModuleTables entry;
    auto shapes = std::make_shared<std::vector<geost::ShapeFootprint>>();
    if (use_alternatives) {
      *shapes = module.shapes();
    } else {
      shapes->push_back(module.shapes().front());
    }
    // Valid anchors per shape: constraints (2) + (3) folded into the domain.
    std::vector<std::vector<Point>> anchors;
    anchors.reserve(shapes->size());
    std::size_t total_anchors = 0;
    for (const geost::ShapeFootprint& shape : *shapes) {
      anchors.push_back(geost::compute_valid_anchors(region.masks(), shape));
      total_anchors += anchors.back().size();
    }
    if (total_anchors == 0) {
      RR_WARN("module " << module.name()
                        << " has no valid placement on this region");
    }
    entry.table = geost::sorted_placement_table(*shapes, anchors);
    entry.extents.reserve(entry.table.size());
    for (const geost::Placement& p : entry.table) {
      const Rect box =
          (*shapes)[static_cast<std::size_t>(p.shape)].bounding_box();
      entry.extents.push_back(p.x + box.width);
    }
    int min_area = shapes->front().area();
    for (const geost::ShapeFootprint& shape : *shapes)
      min_area = std::min(min_area, shape.area());
    entry.min_area = min_area;
    entry.shapes = std::move(shapes);
    tables.push_back(std::move(entry));
  }
  return tables;
}

TablesHandle prepare_tables_shared(const fpga::PartialRegion& region,
                                   std::span<const model::Module> modules,
                                   bool use_alternatives) {
  return std::make_shared<const std::vector<ModuleTables>>(
      prepare_tables(region, modules, use_alternatives));
}

BuiltModel build_model_from_tables(const fpga::PartialRegion& region,
                                   std::span<const ModuleTables> tables,
                                   const BuildOptions& options) {
  BuiltModel built;
  built.space = std::make_unique<cp::Space>();
  cp::Space& space = *built.space;

  long total_min_area = 0;
  for (const ModuleTables& entry : tables) {
    geost::GeostObject object =
        geost::make_object_from_table(space, entry.shapes, entry.table);
    if (object.table().empty()) {
      built.infeasible = true;
      built.placement_vars.push_back(cp::kNoVar);
      built.extent_vars.push_back(cp::kNoVar);
      built.objects.push_back(std::move(object));
      continue;
    }
    built.placement_vars.push_back(object.var());
    built.objects.push_back(std::move(object));
    total_min_area += entry.min_area;
  }
  if (built.infeasible) {
    space.fail();
    return built;
  }

  // extent_i = extent_table[placement_i]
  for (std::size_t i = 0; i < tables.size(); ++i) {
    const std::vector<int>& extents = tables[i].extents;
    const int min_extent = *std::min_element(extents.begin(), extents.end());
    const int max_extent = *std::max_element(extents.begin(), extents.end());
    const cp::VarId extent_var = space.new_var(min_extent, max_extent);
    cp::post_element(space, extents, built.placement_vars[i], extent_var,
                     options.element);
    built.extent_vars.push_back(extent_var);
  }

  // Objective: H = max_i extent_i, minimized by the search engine.
  built.objective = space.new_var(0, region.width());
  cp::post_max(space, built.objective, built.extent_vars);

  if (options.area_bound) {
    // The spanned columns must offer at least the modules' total minimum
    // area. available_in_columns is monotone in c, so scan for the bound.
    int bound = region.width() + 1;
    for (int c = 1; c <= region.width(); ++c) {
      if (region.available_in_columns(c) >= total_min_area) {
        bound = c;
        break;
      }
    }
    if (bound > region.width()) {
      RR_WARN("total module area exceeds region capacity");
      space.fail();
      built.infeasible = true;
      return built;
    }
    space.set_min(built.objective, bound);
  }

  if (options.break_symmetries) {
    // Identical modules (shared or layout-equal shape lists => identical
    // placement tables) are interchangeable: force increasing placement
    // indices. Equal indices would overlap anyway, so <= is sound and
    // removes the k! permutations.
    for (std::size_t i = 0; i + 1 < tables.size(); ++i) {
      for (std::size_t j = i + 1; j < tables.size(); ++j) {
        const bool same_tables =
            tables[i].shapes == tables[j].shapes ||  // shared list
            tables[i].table == tables[j].table;      // or equal content
        if (!same_tables || tables[i].table.size() != tables[j].table.size())
          continue;
        cp::post_rel(space, built.placement_vars[i], cp::RelOp::kLeq,
                     built.placement_vars[j]);
      }
    }
  }

  geost::post_non_overlap(space, built.objects, region.width(),
                          region.height(), options.nonoverlap);
  return built;
}

BuiltModel build_model(const fpga::PartialRegion& region,
                       std::span<const model::Module> modules,
                       const BuildOptions& options) {
  const std::vector<ModuleTables> tables =
      prepare_tables(region, modules, options.use_alternatives);
  return build_model_from_tables(region, tables, options);
}

PlacementSolution extract_solution(const BuiltModel& model,
                                   std::span<const int> placement_values) {
  PlacementSolution solution;
  if (model.infeasible ||
      placement_values.size() != model.objects.size())
    return solution;
  solution.feasible = true;
  solution.placements.reserve(model.objects.size());
  for (std::size_t i = 0; i < model.objects.size(); ++i) {
    const geost::GeostObject& object = model.objects[i];
    const int value = placement_values[i];
    const geost::Placement& p = object.placement(value);
    solution.placements.push_back(
        ModulePlacement{static_cast<int>(i), p.shape, p.x, p.y});
    solution.extent = std::max(solution.extent, object.extent_x_of(value));
  }
  return solution;
}

}  // namespace rr::placer
