#include "placer/compaction.hpp"

#include <algorithm>

#include "placer/lns.hpp"
#include "placer/validator.hpp"
#include "util/metrics.hpp"

namespace rr::placer {

CompactionResult compact(const fpga::PartialRegion& region,
                         std::span<const model::Module> modules,
                         const PlacementSolution& solution,
                         const CompactionOptions& options) {
  const ValidationReport report = validate(region, modules, solution);
  RR_REQUIRE(report.ok(), "compact() needs a valid placement: " +
                              (report.errors.empty() ? std::string("?")
                                                     : report.errors.front()));

  CompactionResult result;
  result.extent_before = solution.extent;

  const std::vector<ModuleTables> tables =
      prepare_tables(region, modules, options.use_alternatives);

  // Locate the incumbent in the tables. A placement's shape index is only
  // meaningful with alternatives enabled; without them, re-locating a
  // non-base shape is impossible, so compact() requires matching configs.
  std::vector<int> incumbent(modules.size(), -1);
  for (const ModulePlacement& p : solution.placements) {
    const std::size_t i = static_cast<std::size_t>(p.module);
    const auto& table = tables[i].table;
    for (std::size_t v = 0; v < table.size(); ++v) {
      if (table[v].shape == p.shape && table[v].x == p.x &&
          table[v].y == p.y) {
        incumbent[i] = static_cast<int>(v);
        break;
      }
    }
    RR_REQUIRE(incumbent[i] >= 0,
               "placement of module " +
                   modules[i].name() +
                   " is not reachable with the current alternative set");
  }

  BuildOptions build_options;
  build_options.use_alternatives = options.use_alternatives;
  LnsOptions lns_options;
  lns_options.seed = options.seed;
  const LnsResult lns =
      improve_lns(region, tables, incumbent, build_options, lns_options,
                  Deadline(options.time_limit_seconds));

  RR_METRIC_COUNT("placer.compaction.passes");
  RR_METRIC_ADD("placer.compaction.iterations",
                static_cast<std::uint64_t>(lns.iterations));
  result.iterations = lns.iterations;
  result.optimal = lns.optimal;
  if (lns.extent >= solution.extent) {
    // No extent gain: moving modules for nothing would only cost
    // reconfigurations, so hand back the input untouched.
    result.solution = solution;
    result.extent_after = solution.extent;
    return result;
  }
  result.solution.feasible = true;
  for (std::size_t i = 0; i < modules.size(); ++i) {
    const geost::Placement& p =
        tables[i].table[static_cast<std::size_t>(lns.placement_values[i])];
    result.solution.placements.push_back(
        ModulePlacement{static_cast<int>(i), p.shape, p.x, p.y});
    result.solution.extent =
        std::max(result.solution.extent,
                 tables[i].extents[static_cast<std::size_t>(
                     lns.placement_values[i])]);
    result.relocated += lns.placement_values[i] != incumbent[i];
  }
  result.extent_after = result.solution.extent;
  RR_ASSERT(result.extent_after <= result.extent_before);
  RR_METRIC_ADD("placer.compaction.relocations",
                static_cast<std::uint64_t>(result.relocated));
  return result;
}

}  // namespace rr::placer
