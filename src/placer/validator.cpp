#include "placer/validator.hpp"

#include <sstream>

#include "util/metrics.hpp"

namespace rr::placer {
namespace {

std::string describe(const model::Module& module, const ModulePlacement& p) {
  std::ostringstream os;
  os << module.name() << " (shape " << p.shape << " at " << p.x << "," << p.y
     << ")";
  return os.str();
}

ValidationReport validate_impl(const fpga::PartialRegion& region,
                               std::span<const model::Module> modules,
                               const PlacementSolution& solution) {
  ValidationReport report;
  auto error = [&](const std::string& message) {
    report.errors.push_back(message);
  };

  if (!solution.feasible) {
    error("solution is marked infeasible");
    return report;
  }
  if (solution.placements.size() != modules.size()) {
    error("placement count does not match module count");
    return report;
  }

  std::vector<bool> seen(modules.size(), false);
  BitMatrix occupied(region.height(), region.width());
  int extent = 0;

  for (const ModulePlacement& p : solution.placements) {
    if (p.module < 0 || p.module >= static_cast<int>(modules.size())) {
      error("placement references unknown module index " +
            std::to_string(p.module));
      continue;
    }
    const model::Module& module = modules[static_cast<std::size_t>(p.module)];
    if (seen[static_cast<std::size_t>(p.module)]) {
      error("module " + module.name() + " placed twice");
      continue;
    }
    seen[static_cast<std::size_t>(p.module)] = true;
    if (p.shape < 0 || p.shape >= module.shape_count()) {
      error("module " + module.name() + " uses unknown shape " +
            std::to_string(p.shape));
      continue;
    }
    const geost::ShapeFootprint& shape =
        module.shapes()[static_cast<std::size_t>(p.shape)];

    // Constraint (2) + (3): every tile inside the region on a tile of the
    // same resource type.
    bool placed_ok = true;
    for (const geost::TypedCells& group : shape.typed()) {
      for (const Point& cell : group.cells.cells()) {
        const int x = cell.x + p.x;
        const int y = cell.y + p.y;
        if (!region.available(x, y)) {
          error(describe(module, p) + ": tile (" + std::to_string(x) + "," +
                std::to_string(y) + ") outside region or unavailable");
          placed_ok = false;
          break;
        }
        if (static_cast<int>(region.at(x, y)) != group.resource) {
          error(describe(module, p) + ": tile (" + std::to_string(x) + "," +
                std::to_string(y) + ") needs " +
                std::string(fpga::resource_name(
                    static_cast<fpga::ResourceType>(group.resource))) +
                " but region offers " +
                std::string(fpga::resource_name(region.at(x, y))));
          placed_ok = false;
          break;
        }
      }
      if (!placed_ok) break;
    }
    if (!placed_ok) continue;

    // Constraint (4): no overlap.
    if (occupied.intersects_shifted(shape.mask(), p.y, p.x)) {
      error(describe(module, p) + ": overlaps a previously placed module");
      continue;
    }
    occupied.or_shifted(shape.mask(), p.y, p.x);
    extent = std::max(extent,
                      shape.bounding_box().width + p.x);
  }

  for (std::size_t i = 0; i < modules.size(); ++i) {
    if (!seen[i]) error("module " + modules[i].name() + " not placed");
  }
  // The reported extent is the number of reserved columns: it must cover
  // every placement. Over-reservation is legal (slot-style placers reserve
  // whole slots); under-reporting is not.
  if (report.ok() && solution.extent < extent) {
    error("reported extent " + std::to_string(solution.extent) +
          " does not cover the actual extent " + std::to_string(extent));
  }
  return report;
}

}  // namespace

ValidationReport validate(const fpga::PartialRegion& region,
                          std::span<const model::Module> modules,
                          const PlacementSolution& solution) {
  ValidationReport report = validate_impl(region, modules, solution);
  RR_METRIC_COUNT("placer.validator.checks");
  if (!report.ok()) RR_METRIC_COUNT("placer.validator.rejections");
  return report;
}

}  // namespace rr::placer
