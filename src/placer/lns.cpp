#include "placer/lns.hpp"

#include <algorithm>

#include "placer/brancher.hpp"
#include "util/log.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"

namespace rr::placer {
namespace {

int assignment_extent(std::span<const ModuleTables> tables,
                      std::span<const int> values) {
  int extent = 0;
  for (std::size_t i = 0; i < tables.size(); ++i)
    extent = std::max(
        extent, tables[i].extents[static_cast<std::size_t>(values[i])]);
  return extent;
}

/// Smallest column count whose available area covers the total minimum
/// module area — the proof bound LNS can hit.
int area_lower_bound(const fpga::PartialRegion& region,
                     std::span<const ModuleTables> tables) {
  long total_min_area = 0;
  for (const ModuleTables& entry : tables) total_min_area += entry.min_area;
  for (int c = 1; c <= region.width(); ++c) {
    if (region.available_in_columns(c) >= total_min_area) return c;
  }
  return region.width() + 1;
}

}  // namespace

LnsResult improve_lns(const fpga::PartialRegion& region,
                      std::span<const ModuleTables> tables,
                      std::span<const int> incumbent,
                      const BuildOptions& build_options,
                      const LnsOptions& options, const Deadline& deadline) {
  RR_REQUIRE(incumbent.size() == tables.size(),
             "LNS incumbent arity mismatch");
  LnsResult result;
  result.found = true;
  result.placement_values.assign(incumbent.begin(), incumbent.end());
  result.extent = assignment_extent(tables, incumbent);

  // The minimized cost: plain extent, or the combined extent + wirelength
  // objective when the build options carry an active communication model.
  // With comm off every line below reduces to the historical extent-only
  // logic (the zero-weight oracle).
  const comm::BoundNets* nets = build_options.comm_nets;
  const bool comm_on =
      nets != nullptr && build_options.comm_weight > 0 && !nets->empty();
  const auto assignment_cost = [&](std::span<const int> values) -> long {
    const int extent = assignment_extent(tables, values);
    if (!comm_on) return extent;
    return comm::kExtentScale * extent +
           build_options.comm_weight *
               assignment_wirelength2(tables, values, *nets);
  };
  result.cost = assignment_cost(result.placement_values);

  const int lower_bound = area_lower_bound(region, tables);
  const long lower_cost =
      comm_on ? comm::kExtentScale * lower_bound : lower_bound;
  Rng rng(options.seed);
  const std::size_t n = tables.size();
  RR_REQUIRE(options.frozen.empty() || options.frozen.size() == n,
             "LNS frozen mask arity mismatch");
  const auto is_frozen = [&](std::size_t i) {
    return !options.frozen.empty() && options.frozen[i];
  };

  while (!deadline.expired() && result.cost > lower_cost) {
    // With every extent-defining module frozen, the extent cannot drop.
    // (Only conclusive for the extent-only objective: under comm the cost
    // can still improve by shortening nets at the same extent.)
    if (!comm_on) {
      bool movable_at_extent = false;
      for (std::size_t i = 0; i < n; ++i) {
        const int extent_i = tables[i].extents[static_cast<std::size_t>(
            result.placement_values[i])];
        if (extent_i >= result.extent && !is_frozen(i))
          movable_at_extent = true;
      }
      if (!movable_at_extent) break;
    }

    ++result.iterations;
    // Most iterations demand a strict improvement; every fourth allows an
    // equal-extent sideways move to shake the incumbent out of plateaus.
    const bool strict = result.iterations % 4 != 0;
    // Pick the relaxed set: each module independently with probability p,
    // with at least two relaxed so a swap is possible. Modules sitting at
    // the incumbent extent are always relaxed under a strict cut — the
    // extent cannot drop unless they move.
    const double p = options.relax_min +
                     rng.uniform01() * (options.relax_max - options.relax_min);
    std::vector<bool> relaxed(n, false);
    std::size_t relaxed_count = 0;
    std::size_t movable = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (is_frozen(i)) continue;
      ++movable;
      const int extent_i =
          tables[i].extents[static_cast<std::size_t>(result.placement_values[i])];
      if ((strict && extent_i >= result.extent) || rng.chance(p)) {
        relaxed[i] = true;
        ++relaxed_count;
      }
    }
    if (movable == 0) break;
    while (relaxed_count < std::min<std::size_t>(2, movable)) {
      const std::size_t i = rng.bounded(n);
      if (!relaxed[i] && !is_frozen(i)) {
        relaxed[i] = true;
        ++relaxed_count;
      }
    }

    BuiltModel model = build_model_from_tables(region, tables, build_options);
    if (model.infeasible) break;
    cp::Space& space = *model.space;
    space.set_max(model.objective,
                  static_cast<int>(strict ? result.cost - 1 : result.cost));
    for (std::size_t i = 0; i < n; ++i) {
      if (!relaxed[i])
        space.assign(model.placement_vars[i], result.placement_values[i]);
    }

    auto brancher = make_placement_brancher(
        model, SearchStrategy::kAreaOrderRandomized, rng());
    cp::Search::Options search_options;
    search_options.limits.max_fails = options.fails_per_iteration;
    search_options.limits.deadline = deadline;
    cp::Search search(space, *brancher, search_options);
    if (search.next()) {
      for (std::size_t i = 0; i < n; ++i)
        result.placement_values[i] = space.min(model.placement_vars[i]);
      const long new_cost = assignment_cost(result.placement_values);
      RR_DEBUG("lns iter " << result.iterations << (strict ? " strict" : " sideways")
                           << " relaxed=" << relaxed_count << " cost "
                           << result.cost << " -> " << new_cost
                           << " fails=" << search.stats().fails);
      if (new_cost < result.cost) ++result.improvements;
      result.cost = new_cost;
      result.extent = assignment_extent(tables, result.placement_values);
    } else {
      RR_DEBUG("lns iter " << result.iterations << (strict ? " strict" : " sideways")
                           << " relaxed=" << relaxed_count
                           << " no solution (fails=" << search.stats().fails
                           << ", complete=" << search.stats().complete << ")");
    }
    // A completed sub-search only exhausted its restricted neighborhood —
    // never fold that into `complete`, which callers read as a global proof.
    cp::SearchStats iteration_stats = search.stats();
    iteration_stats.complete = false;
    result.stats.merge(iteration_stats);
    result.space_stats.merge(space.stats());
  }

  result.optimal = result.cost <= lower_cost;
  RR_METRIC_ADD("placer.lns.iterations",
                static_cast<std::uint64_t>(result.iterations));
  RR_METRIC_ADD("placer.lns.improvements",
                static_cast<std::uint64_t>(result.improvements));
  return result;
}

}  // namespace rr::placer
