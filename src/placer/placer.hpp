// The public placement API (the "constraint solver → optimal placement"
// box of Fig. 2): build the CP model for a region + module set and run
// branch-and-bound minimization of the occupied extent, optionally as a
// parallel portfolio.
#pragma once

#include <cstdint>
#include <span>

#include "fpga/region.hpp"
#include "model/module.hpp"
#include "placer/brancher.hpp"
#include "placer/model_builder.hpp"
#include "placer/placement.hpp"

namespace rr::placer {

enum class PlacerMode {
  /// Pure branch-and-bound: exact, proves optimality when it finishes, but
  /// degrades on large instances under a time limit.
  kBranchAndBound,
  /// Large neighborhood search seeded by the first B&B descent: best
  /// anytime quality; proves optimality only via the area lower bound.
  kLns,
  /// B&B under a fail budget first (small instances finish exactly), then
  /// LNS with the remaining time. The default.
  kAuto,
  /// Restarting B&B with randomized bottom-left descents under a geometric
  /// fail schedule — complete like kBranchAndBound, but diversified. The
  /// one mode without a portfolio variant: the Placer constructor rejects
  /// kRestarts with workers > 1 (the portfolio *is* the diversification).
  kRestarts,
};

struct PlacerOptions {
  PlacerMode mode = PlacerMode::kAuto;
  /// Consider all design alternatives (true) or only base layouts (false).
  bool use_alternatives = true;
  /// Wall-clock budget; <= 0 means unlimited. The best solution found by
  /// the deadline is returned (offline placement per §V.B, but bounded so
  /// the method stays usable interactively).
  double time_limit_seconds = 5.0;
  /// Optional fail limit (0 = unlimited) — deterministic truncation knob.
  std::uint64_t max_fails = 0;
  /// Portfolio width; 1 runs a single deterministic search.
  int workers = 1;
  SearchStrategy strategy = SearchStrategy::kAreaOrderBottomLeft;
  geost::NonOverlapOptions nonoverlap{};
  cp::ElementOptions element{};
  bool area_bound = true;
  std::uint64_t seed = 1;
  /// Communication nets (non-owning; must outlive the placer). With a
  /// positive comm_weight the objective becomes
  /// comm::kExtentScale * extent + comm_weight * HPWL2; otherwise (or with
  /// no surviving net) the solve is byte-identical to the area-only
  /// objective. Net endpoints must name modules from the placed list.
  const comm::NetList* nets = nullptr;
  long comm_weight = 0;
  /// kAuto only: fail budget for the exact phase before switching to LNS.
  std::uint64_t auto_exact_fails = 20000;
  /// LNS tuning (kLns / kAuto).
  double lns_relax_min = 0.25;
  double lns_relax_max = 0.5;
  std::uint64_t lns_fails_per_iteration = 2000;
};

class Placer {
 public:
  /// The region and modules must outlive the placer.
  Placer(const fpga::PartialRegion& region,
         std::span<const model::Module> modules, PlacerOptions options = {});

  /// As above, but with precomputed placement tables (prepare_tables_shared
  /// over the same region, modules, and alternatives setting): place()
  /// skips the anchor scans entirely and every mode — including each
  /// portfolio worker — builds its model from the shared tables. The
  /// service layer's SolveContext cache is the main client. Pass nullptr to
  /// prepare per call (identical to the two-argument constructor). Options
  /// are required here so `Placer(region, modules, {})` stays unambiguous.
  Placer(const fpga::PartialRegion& region,
         std::span<const model::Module> modules, TablesHandle tables,
         PlacerOptions options);

  /// Solve. Repeatable; every call rebuilds and re-solves (from the cached
  /// tables when the placer holds a handle).
  [[nodiscard]] PlacementOutcome place() const;

  [[nodiscard]] const PlacerOptions& options() const noexcept {
    return options_;
  }

 private:
  [[nodiscard]] BuildOptions build_options() const;
  [[nodiscard]] PlacementOutcome place_single(
      const std::vector<ModuleTables>& tables) const;
  [[nodiscard]] PlacementOutcome place_portfolio(
      const std::vector<ModuleTables>& tables) const;
  [[nodiscard]] PlacementOutcome place_portfolio_lns(
      const std::vector<ModuleTables>& tables, bool exact_first) const;
  [[nodiscard]] PlacementOutcome place_lns_mode(
      const std::vector<ModuleTables>& tables, bool exact_first) const;
  [[nodiscard]] PlacementOutcome place_restarts(
      const std::vector<ModuleTables>& tables) const;

  const fpga::PartialRegion& region_;
  std::span<const model::Module> modules_;
  TablesHandle tables_;  // null: prepare per place() call
  PlacerOptions options_;
  comm::BoundNets bound_nets_;  // empty unless options_.nets is active
};

}  // namespace rr::placer
