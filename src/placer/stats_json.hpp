// Machine-readable solver statistics: assemble the `rrplace-stats-v1` JSON
// document from a PlacementOutcome.
//
// Consumers: `rrplace_cli --stats-json`, the bench harnesses' BENCH_*.json
// records, and the CI benchmark-smoke job (validated by
// tools/check_stats_json). Schema, stable across minor versions:
//
//   {
//     "schema": "rrplace-stats-v1",
//     "tool": "<producer>",
//     "config": { ... free-form producer configuration echo ... },
//     "search": {"nodes", "fails", "solutions", "max_depth", "restarts",
//                "complete"},
//     "space": {"propagations", "domain_changes"},
//     "propagators": {"<kind>": {"runs", "failures", "prunings",
//                                "seconds"}, ...},   // all PropKind buckets
//     "incumbents": [{"worker", "seconds", "objective"}, ...],
//     "result": {"feasible", "extent", "optimal", "seconds",
//                "utilization"},
//     "modules": {"count", "alternatives_per_module": [...]},
//     "metrics": {"counters": {...}, "timers": {...}}  // global registry
//   }
//
// Per-kind propagator buckets (and timer values) are only non-zero when
// metrics collection was enabled during the solve — call
// rr::metrics::set_enabled(true) before Placer construction.
#pragma once

#include <span>
#include <string>

#include "fpga/region.hpp"
#include "model/module.hpp"
#include "placer/placement.hpp"
#include "util/json.hpp"

namespace rr::placer {

/// Search counters as a JSON object.
[[nodiscard]] json::Value search_stats_json(const cp::SearchStats& stats);

/// Propagation counters: {"space": {...}, "propagators": {...}}, one
/// propagator bucket per PropKind (zeros included, so the schema is fixed).
[[nodiscard]] json::Value space_stats_json(const cp::SpaceStats& stats);

/// The full rrplace-stats-v1 document for one solve. `tool` names the
/// producer; `config` is echoed verbatim (pass json::Value() for an
/// empty object — the key is always present).
[[nodiscard]] json::Value solve_stats_json(
    const fpga::PartialRegion& region,
    std::span<const model::Module> modules, const PlacementOutcome& outcome,
    const std::string& tool, json::Value config = json::Value());

}  // namespace rr::placer
