#include "placer/placer.hpp"

#include "cp/portfolio.hpp"
#include "placer/lns.hpp"
#include "util/metrics.hpp"
#include "util/stopwatch.hpp"

namespace rr::placer {
namespace {

cp::SearchLimits to_limits(const PlacerOptions& options) {
  cp::SearchLimits limits;
  if (options.time_limit_seconds > 0)
    limits.deadline = Deadline(options.time_limit_seconds);
  limits.max_fails = options.max_fails;
  return limits;
}

/// Strategy/seed diversification per portfolio worker.
SearchStrategy worker_strategy(const PlacerOptions& options, int worker) {
  if (worker == 0) return options.strategy;
  switch (worker % 3) {
    case 1: return SearchStrategy::kFirstFailBottomLeft;
    case 2: return SearchStrategy::kAreaOrderRandomized;
    default: return SearchStrategy::kAreaOrderBottomLeft;
  }
}

}  // namespace

Placer::Placer(const fpga::PartialRegion& region,
               std::span<const model::Module> modules, PlacerOptions options)
    : Placer(region, modules, nullptr, std::move(options)) {}

Placer::Placer(const fpga::PartialRegion& region,
               std::span<const model::Module> modules, TablesHandle tables,
               PlacerOptions options)
    : region_(region),
      modules_(modules),
      tables_(std::move(tables)),
      options_(std::move(options)) {
  RR_REQUIRE(!modules_.empty(), "nothing to place: module list is empty");
  RR_REQUIRE(tables_ == nullptr || tables_->size() == modules_.size(),
             "cached tables must cover exactly the placed modules");
  RR_REQUIRE(options_.workers >= 1, "placer needs at least one worker");
  RR_REQUIRE(options_.mode != PlacerMode::kRestarts || options_.workers == 1,
             "restarts mode has no portfolio variant: use workers == 1 or "
             "another mode");
  // Bind the communication nets once against the module list; binding
  // validates that every net endpoint names a placed module. With weight 0
  // the nets are ignored entirely (the zero-weight oracle).
  if (options_.nets != nullptr && options_.comm_weight > 0)
    bound_nets_ = comm::BoundNets(*options_.nets, modules_);
}

BuildOptions Placer::build_options() const {
  BuildOptions build;
  build.use_alternatives = options_.use_alternatives;
  build.nonoverlap = options_.nonoverlap;
  build.element = options_.element;
  build.area_bound = options_.area_bound;
  if (!bound_nets_.empty()) {
    build.comm_nets = &bound_nets_;
    build.comm_weight = options_.comm_weight;
  }
  return build;
}

PlacementOutcome Placer::place() const {
  metrics::ScopedTimer timer("placer.place");
  RR_METRIC_COUNT("placer.solves");
  // "Alternatives tried" in the paper's sense: layouts the model may pick.
  if (metrics::enabled()) {
    std::uint64_t alternatives = 0;
    for (const model::Module& module : modules_)
      alternatives += static_cast<std::uint64_t>(
          options_.use_alternatives ? module.shape_count() : 1);
    RR_METRIC_ADD("placer.modules", modules_.size());
    RR_METRIC_ADD("placer.alternatives_considered", alternatives);
  }
  // Every mode solves from one table set, prepared here (or taken from the
  // cached handle): portfolio workers and LNS iterations share it instead
  // of re-running the anchor scans per worker/model build.
  const TablesHandle tables =
      tables_ != nullptr
          ? tables_
          : prepare_tables_shared(region_, modules_,
                                  options_.use_alternatives);
  // The mode is honored for any worker count: workers > 1 swaps the exact
  // phase for a parallel portfolio, it does not silently force pure B&B.
  const bool parallel = options_.workers > 1;
  switch (options_.mode) {
    case PlacerMode::kBranchAndBound:
      return parallel ? place_portfolio(*tables) : place_single(*tables);
    case PlacerMode::kLns:
      return parallel ? place_portfolio_lns(*tables, /*exact_first=*/false)
                      : place_lns_mode(*tables, /*exact_first=*/false);
    case PlacerMode::kAuto:
      return parallel ? place_portfolio_lns(*tables, /*exact_first=*/true)
                      : place_lns_mode(*tables, /*exact_first=*/true);
    case PlacerMode::kRestarts:
      return place_restarts(*tables);  // workers == 1
  }
  return place_single(*tables);
}

PlacementOutcome Placer::place_restarts(
    const std::vector<ModuleTables>& tables) const {
  Stopwatch watch;
  PlacementOutcome outcome;

  BuiltModel model =
      build_model_from_tables(region_, tables, build_options());
  if (model.infeasible) {
    outcome.optimal = true;
    outcome.seconds = watch.seconds();
    return outcome;
  }
  // Restart 0 uses the deterministic bottom-left descent; later restarts
  // randomize value choice so each one explores a different packing.
  const auto make_brancher = [&](int restart) {
    return make_placement_brancher(
        model,
        restart == 0 ? options_.strategy
                     : SearchStrategy::kAreaOrderRandomized,
        options_.seed + static_cast<std::uint64_t>(restart) * 0x9e3779b9ULL);
  };
  const cp::MinimizeResult result = cp::minimize_with_restarts(
      *model.space, make_brancher, model.objective, model.placement_vars,
      to_limits(options_));
  outcome.stats = result.stats;
  outcome.space_stats = model.space->stats();
  outcome.optimal = result.stats.complete;
  if (result.found)
    outcome.solution = extract_solution(model, result.assignment);
  outcome.seconds = watch.seconds();
  return outcome;
}

PlacementOutcome Placer::place_lns_mode(
    const std::vector<ModuleTables>& tables, bool exact_first) const {
  Stopwatch watch;
  const Deadline deadline(options_.time_limit_seconds);
  PlacementOutcome outcome;

  const BuildOptions build_options = this->build_options();
  BuiltModel model = build_model_from_tables(region_, tables, build_options);
  if (model.infeasible) {
    outcome.optimal = true;  // proven: some module cannot be placed at all
    outcome.seconds = watch.seconds();
    return outcome;
  }

  // Phase 1: exact search — to completion (kAuto, small instances) or just
  // to the first bottom-left descent (the LNS incumbent).
  auto brancher =
      make_placement_brancher(model, options_.strategy, options_.seed);
  cp::Search::Options search_options;
  search_options.objective = model.objective;
  // The exact phase gets at most a quarter of the budget; if it cannot
  // finish in that, LNS uses the remainder far better.
  search_options.limits.deadline =
      (exact_first && options_.time_limit_seconds > 0)
          ? Deadline(options_.time_limit_seconds * 0.25)
          : deadline;
  search_options.limits.max_fails =
      exact_first ? options_.auto_exact_fails : 0;
  if (options_.max_fails != 0) {
    search_options.limits.max_fails =
        search_options.limits.max_fails == 0
            ? options_.max_fails
            : std::min(search_options.limits.max_fails, options_.max_fails);
  }
  cp::Search search(*model.space, *brancher, search_options);
  std::vector<int> incumbent;
  while (search.next()) {
    incumbent.clear();
    for (cp::VarId v : model.placement_vars)
      incumbent.push_back(model.space->min(v));
    if (!exact_first) break;  // the first descent is the LNS seed
  }
  outcome.stats = search.stats();
  outcome.space_stats = model.space->stats();
  if (incumbent.empty()) {
    // No solution yet: fall back to pure B&B semantics (likely infeasible
    // or the deadline was too tight even for one descent).
    outcome.optimal = search.stats().complete;
    outcome.seconds = watch.seconds();
    return outcome;
  }
  if (search.stats().complete) {
    outcome.optimal = true;
    outcome.solution = extract_solution(model, incumbent);
    outcome.seconds = watch.seconds();
    return outcome;
  }

  // Phase 2: LNS until the deadline.
  LnsOptions lns_options;
  lns_options.relax_min = options_.lns_relax_min;
  lns_options.relax_max = options_.lns_relax_max;
  lns_options.fails_per_iteration = options_.lns_fails_per_iteration;
  lns_options.seed = options_.seed ^ 0xC0FFEEULL;
  const LnsResult lns = improve_lns(region_, tables, incumbent,
                                    build_options, lns_options, deadline);
  outcome.stats.merge(lns.stats);
  outcome.space_stats.merge(lns.space_stats);
  outcome.optimal = lns.optimal;
  outcome.solution = extract_solution(model, lns.placement_values);
  outcome.seconds = watch.seconds();
  return outcome;
}

PlacementOutcome Placer::place_portfolio_lns(
    const std::vector<ModuleTables>& tables, bool exact_first) const {
  Stopwatch watch;
  const Deadline deadline(options_.time_limit_seconds);
  PlacementOutcome outcome;

  const BuildOptions build_options = this->build_options();
  BuiltModel reference =
      build_model_from_tables(region_, tables, build_options);
  if (reference.infeasible) {
    outcome.optimal = true;  // proven: some module cannot be placed at all
    outcome.seconds = watch.seconds();
    return outcome;
  }

  // Phase 1: portfolio exact search under a slice of the budget. kAuto
  // gives it a real chance to finish (quarter deadline plus the exact fail
  // budget per worker); kLns only hunts for an incumbent, so each worker
  // gets one LNS iteration's worth of fails.
  cp::SearchLimits exact_limits;
  if (options_.time_limit_seconds > 0)
    exact_limits.deadline = Deadline(options_.time_limit_seconds * 0.25);
  exact_limits.max_fails = exact_first ? options_.auto_exact_fails
                                       : options_.lns_fails_per_iteration;
  if (options_.max_fails != 0)
    exact_limits.max_fails =
        std::min(exact_limits.max_fails, options_.max_fails);

  // Sequential factory calls (see place_portfolio), so sharing `tables` and
  // `this` members is safe.
  cp::PortfolioFactory factory = [&](int worker) {
    BuiltModel model = build_model_from_tables(region_, tables, build_options);
    cp::PortfolioModel instance;
    instance.objective = model.objective;
    instance.report = model.placement_vars;
    instance.brancher = make_placement_brancher(
        model, worker_strategy(options_, worker),
        options_.seed + static_cast<std::uint64_t>(worker) * 0x9e37U);
    instance.space = std::move(model.space);
    return instance;
  };
  const cp::PortfolioResult exact =
      cp::minimize_portfolio(factory, options_.workers, exact_limits);
  outcome.stats = exact.total;
  outcome.stats.complete = exact.complete;
  outcome.space_stats = exact.space;
  outcome.incumbents = exact.incumbents;
  if (!exact.found || exact.complete) {
    // No incumbent to improve, or optimality already proven.
    outcome.optimal = exact.complete;
    if (exact.found)
      outcome.solution = extract_solution(reference, exact.assignment);
    outcome.seconds = watch.seconds();
    return outcome;
  }

  // Phase 2: LNS from the portfolio's best incumbent until the deadline.
  LnsOptions lns_options;
  lns_options.relax_min = options_.lns_relax_min;
  lns_options.relax_max = options_.lns_relax_max;
  lns_options.fails_per_iteration = options_.lns_fails_per_iteration;
  lns_options.seed = options_.seed ^ 0xC0FFEEULL;
  const LnsResult lns = improve_lns(region_, tables, exact.assignment,
                                    build_options, lns_options, deadline);
  outcome.stats.merge(lns.stats);
  outcome.space_stats.merge(lns.space_stats);
  outcome.optimal = lns.optimal;
  outcome.solution = extract_solution(reference, lns.placement_values);
  outcome.seconds = watch.seconds();
  return outcome;
}

PlacementOutcome Placer::place_single(
    const std::vector<ModuleTables>& tables) const {
  Stopwatch watch;
  PlacementOutcome outcome;

  BuiltModel model =
      build_model_from_tables(region_, tables, build_options());
  if (model.infeasible) {
    outcome.optimal = true;  // proven: some module cannot be placed at all
    outcome.seconds = watch.seconds();
    return outcome;
  }
  auto brancher =
      make_placement_brancher(model, options_.strategy, options_.seed);
  const cp::MinimizeResult result =
      cp::minimize(*model.space, *brancher, model.objective,
                   model.placement_vars, to_limits(options_));
  outcome.stats = result.stats;
  outcome.space_stats = model.space->stats();
  // A completed search is a proof either way: of optimality when a solution
  // was found, of infeasibility otherwise.
  outcome.optimal = result.stats.complete;
  if (result.found)
    outcome.solution = extract_solution(model, result.assignment);
  outcome.seconds = watch.seconds();
  return outcome;
}

PlacementOutcome Placer::place_portfolio(
    const std::vector<ModuleTables>& tables) const {
  Stopwatch watch;
  PlacementOutcome outcome;

  // A reference model for early infeasibility detection and for mapping the
  // winning assignment back to placements (all workers build from the same
  // tables, so any model can decode any worker's assignment).
  const BuiltModel reference =
      build_model_from_tables(region_, tables, build_options());
  if (reference.infeasible) {
    outcome.optimal = true;
    outcome.seconds = watch.seconds();
    return outcome;
  }

  // All models are built sequentially by minimize_portfolio before any
  // thread starts, so capturing `this` members and `tables` is safe.
  cp::PortfolioFactory factory = [&](int worker) {
    BuiltModel model =
        build_model_from_tables(region_, tables, build_options());
    cp::PortfolioModel instance;
    instance.objective = model.objective;
    instance.report = model.placement_vars;
    instance.brancher = make_placement_brancher(
        model, worker_strategy(options_, worker),
        options_.seed + static_cast<std::uint64_t>(worker) * 0x9e37U);
    instance.space = std::move(model.space);
    return instance;
  };

  const cp::PortfolioResult result =
      cp::minimize_portfolio(factory, options_.workers, to_limits(options_));
  outcome.stats = result.total;
  outcome.stats.complete = result.complete;
  outcome.space_stats = result.space;
  outcome.incumbents = result.incumbents;
  outcome.optimal = result.complete;
  if (result.found)
    outcome.solution = extract_solution(reference, result.assignment);
  outcome.seconds = watch.seconds();
  return outcome;
}

}  // namespace rr::placer
