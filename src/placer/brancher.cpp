#include "placer/brancher.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

#include "util/rng.hpp"

namespace rr::placer {
namespace {

class PlacementBrancher final : public cp::Brancher {
 public:
  PlacementBrancher(std::vector<cp::VarId> order,
                    std::vector<geost::GeostObject> objects,
                    SearchStrategy strategy, std::uint64_t seed)
      : order_(std::move(order)),
        objects_(std::move(objects)),
        strategy_(strategy),
        rng_(seed) {}

  std::optional<cp::Choice> choose(const cp::Space& space) override {
    cp::VarId chosen = cp::kNoVar;
    const geost::GeostObject* object = nullptr;
    switch (strategy_) {
      case SearchStrategy::kAreaOrderBottomLeft:
      case SearchStrategy::kAreaOrderRandomized:
        for (std::size_t i = 0; i < order_.size(); ++i) {
          if (!space.assigned(order_[i])) {
            chosen = order_[i];
            object = &objects_[i];
            break;
          }
        }
        break;
      case SearchStrategy::kFirstFailBottomLeft: {
        long best = 0;
        for (std::size_t i = 0; i < order_.size(); ++i) {
          if (space.assigned(order_[i])) continue;
          const long size = space.dom(order_[i]).size();
          if (chosen == cp::kNoVar || size < best) {
            chosen = order_[i];
            object = &objects_[i];
            best = size;
          }
        }
        break;
      }
    }
    if (chosen == cp::kNoVar) return std::nullopt;

    const cp::Domain& dom = space.dom(chosen);
    int value = dom.min();
    if (strategy_ == SearchStrategy::kAreaOrderRandomized) {
      // Sample among the placements tied (or nearly tied) on extent with
      // the bottom-left one, keeping the heuristic greedy but diverse.
      const int best_extent = object->extent_x_of(dom.min());
      std::vector<int> candidates;
      int probe = dom.min();
      // Values ascend in extent, so a prefix walk suffices.
      while (true) {
        if (object->extent_x_of(probe) > best_extent + 1) break;
        candidates.push_back(probe);
        int next = 0;
        if (!dom.next_geq(probe + 1, next)) break;
        probe = next;
        if (candidates.size() >= 16) break;
      }
      value = candidates[rng_.pick_index(candidates)];
    }
    return cp::Choice{chosen, value};
  }

 private:
  std::vector<cp::VarId> order_;
  // Owned copies: the brancher must outlive any BuiltModel it was made
  // from (portfolio workers); shape lists are shared, tables are copied.
  std::vector<geost::GeostObject> objects_;
  SearchStrategy strategy_;
  Rng rng_;
};

}  // namespace

std::unique_ptr<cp::Brancher> make_placement_brancher(const BuiltModel& model,
                                                      SearchStrategy strategy,
                                                      std::uint64_t seed) {
  // Decreasing minimum-area order: placing big modules first keeps the
  // branching factor manageable and the bottom-left packing tight.
  std::vector<std::size_t> index(model.objects.size());
  std::iota(index.begin(), index.end(), 0);
  std::sort(index.begin(), index.end(), [&](std::size_t a, std::size_t b) {
    return model.objects[a].min_area() > model.objects[b].min_area();
  });
  std::vector<cp::VarId> order;
  std::vector<geost::GeostObject> objects;
  order.reserve(index.size());
  objects.reserve(index.size());
  for (std::size_t i : index) {
    order.push_back(model.objects[i].var());
    objects.push_back(model.objects[i]);
  }
  return std::make_unique<PlacementBrancher>(std::move(order),
                                             std::move(objects), strategy,
                                             seed);
}

}  // namespace rr::placer
