#include "placer/stats_json.hpp"

#include "placer/metrics.hpp"
#include "util/metrics.hpp"

namespace rr::placer {

json::Value search_stats_json(const cp::SearchStats& stats) {
  json::Value doc = json::Value::object();
  doc.set("nodes", json::Value(stats.nodes));
  doc.set("fails", json::Value(stats.fails));
  doc.set("solutions", json::Value(stats.solutions));
  doc.set("max_depth", json::Value(stats.max_depth));
  doc.set("restarts", json::Value(stats.restarts));
  doc.set("complete", json::Value(stats.complete));
  return doc;
}

json::Value space_stats_json(const cp::SpaceStats& stats) {
  json::Value doc = json::Value::object();
  json::Value space = json::Value::object();
  space.set("propagations", json::Value(stats.propagations));
  space.set("domain_changes", json::Value(stats.domain_changes));
  doc.set("space", std::move(space));
  json::Value kinds = json::Value::object();
  for (int k = 0; k < cp::kNumPropKinds; ++k) {
    const cp::PropKindStats& bucket =
        stats.by_kind[static_cast<std::size_t>(k)];
    json::Value entry = json::Value::object();
    entry.set("runs", json::Value(bucket.runs));
    entry.set("failures", json::Value(bucket.failures));
    entry.set("prunings", json::Value(bucket.prunings));
    entry.set("seconds",
              json::Value(static_cast<double>(bucket.time_ns) * 1e-9));
    kinds.set(cp::prop_kind_name(static_cast<cp::PropKind>(k)),
              std::move(entry));
  }
  doc.set("propagators", std::move(kinds));
  return doc;
}

json::Value solve_stats_json(const fpga::PartialRegion& region,
                             std::span<const model::Module> modules,
                             const PlacementOutcome& outcome,
                             const std::string& tool, json::Value config) {
  json::Value doc = json::Value::object();
  doc.set("schema", json::Value("rrplace-stats-v1"));
  doc.set("tool", json::Value(tool));
  // The schema always carries a config object so consumers can index it
  // unconditionally; a producer with nothing to echo gets {}.
  doc.set("config", config.is_object() ? std::move(config)
                                       : json::Value::object());

  doc.set("search", search_stats_json(outcome.stats));
  json::Value propagation = space_stats_json(outcome.space_stats);
  doc.set("space", propagation.at("space"));
  doc.set("propagators", propagation.at("propagators"));

  json::Value incumbents = json::Value::array();
  for (const cp::IncumbentEvent& event : outcome.incumbents) {
    json::Value entry = json::Value::object();
    entry.set("worker", json::Value(event.worker));
    entry.set("seconds", json::Value(event.seconds));
    entry.set("objective",
              json::Value(static_cast<double>(event.objective)));
    incumbents.push_back(std::move(entry));
  }
  doc.set("incumbents", std::move(incumbents));

  json::Value result = json::Value::object();
  result.set("feasible", json::Value(outcome.solution.feasible));
  result.set("extent", json::Value(outcome.solution.extent));
  result.set("optimal", json::Value(outcome.optimal));
  result.set("seconds", json::Value(outcome.seconds));
  result.set("utilization",
             json::Value(outcome.solution.feasible
                             ? spanned_utilization(region, modules,
                                                   outcome.solution)
                             : 0.0));
  doc.set("result", std::move(result));

  json::Value module_doc = json::Value::object();
  module_doc.set("count", json::Value(modules.size()));
  json::Value alternatives = json::Value::array();
  for (const model::Module& module : modules)
    alternatives.push_back(json::Value(module.shape_count()));
  module_doc.set("alternatives_per_module", std::move(alternatives));
  doc.set("modules", std::move(module_doc));

  doc.set("metrics", metrics::global().to_json());
  return doc;
}

}  // namespace rr::placer
