// Placement-specific branching strategies.
//
// Because every object's placement table is sorted by (extent, x, y),
// choosing the minimum remaining value realizes a bottom-left packing
// heuristic: the very first descent of the search acts as a greedy
// warm start whose extent seeds the branch-and-bound cut.
#pragma once

#include <cstdint>
#include <memory>

#include "cp/brancher.hpp"
#include "placer/model_builder.hpp"

namespace rr::placer {

enum class SearchStrategy {
  /// Modules in decreasing minimum-area order, bottom-left values —
  /// the default and the strongest single strategy.
  kAreaOrderBottomLeft,
  /// First-fail (smallest placement domain first), bottom-left values.
  kFirstFailBottomLeft,
  /// Decreasing-area order with randomized value choice among the
  /// lowest-extent placements (portfolio diversification).
  kAreaOrderRandomized,
};

/// Build a brancher over the model's placement variables.
[[nodiscard]] std::unique_ptr<cp::Brancher> make_placement_brancher(
    const BuiltModel& model, SearchStrategy strategy, std::uint64_t seed = 1);

}  // namespace rr::placer
