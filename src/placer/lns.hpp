// Large Neighborhood Search on top of the CP model.
//
// Branch-and-bound with chronological backtracking stalls on packing
// instances: improving the incumbent usually requires moving an early
// (big) module, which DFS only reconsiders after exhausting the tail
// permutations. LNS sidesteps this: each iteration freezes a random subset
// of modules at their incumbent placements, posts the incumbent extent as
// an upper bound, and re-solves the small remainder exactly under a fail
// limit. Model builds are microseconds from cached tables, so hundreds of
// iterations fit in an interactive budget.
#pragma once

#include <cstdint>
#include <span>

#include "placer/model_builder.hpp"
#include "util/stopwatch.hpp"

namespace rr::placer {

struct LnsOptions {
  /// Fraction of modules relaxed per iteration (drawn uniformly per round).
  double relax_min = 0.25;
  double relax_max = 0.5;
  /// Fail budget per iteration.
  std::uint64_t fails_per_iteration = 2000;
  std::uint64_t seed = 1;
  /// Modules that must keep their incumbent placement throughout (used by
  /// incremental runtime reconfiguration). Empty = none; otherwise one flag
  /// per module. When every extent-defining module is frozen the search
  /// stops early — the extent cannot improve.
  std::vector<bool> frozen;
};

struct LnsResult {
  bool found = false;
  std::vector<int> placement_values;  // table index per module
  int extent = 0;
  /// Objective actually minimized: the extent, or the combined
  /// comm::kExtentScale * extent + comm_weight * HPWL2 cost when the build
  /// options carry an active communication model.
  long cost = 0;
  bool optimal = false;  // cost reached the area-derived lower bound
  cp::SearchStats stats; // summed over iterations
  cp::SpaceStats space_stats;  // propagation counters summed over iterations
  int iterations = 0;
  int improvements = 0;  // iterations that reduced the cost
};

/// Improve from `incumbent` (table index per module; must be a feasible
/// assignment for the given tables) until the deadline.
[[nodiscard]] LnsResult improve_lns(const fpga::PartialRegion& region,
                                    std::span<const ModuleTables> tables,
                                    std::span<const int> incumbent,
                                    const BuildOptions& build_options,
                                    const LnsOptions& options,
                                    const Deadline& deadline);

}  // namespace rr::placer
