#include "placer/metrics.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace rr::placer {

long placed_area(std::span<const model::Module> modules,
                 const PlacementSolution& solution) {
  if (!solution.feasible) return 0;
  long area = 0;
  for (const ModulePlacement& p : solution.placements) {
    const auto& shapes =
        modules[static_cast<std::size_t>(p.module)].shapes();
    area += shapes[static_cast<std::size_t>(p.shape)].area();
  }
  return area;
}

double spanned_utilization(const fpga::PartialRegion& region,
                           std::span<const model::Module> modules,
                           const PlacementSolution& solution) {
  if (!solution.feasible || solution.extent <= 0) return 0.0;
  const long span = region.available_in_columns(solution.extent);
  if (span <= 0) return 0.0;
  return static_cast<double>(placed_area(modules, solution)) /
         static_cast<double>(span);
}

double region_utilization(const fpga::PartialRegion& region,
                          std::span<const model::Module> modules,
                          const PlacementSolution& solution) {
  const long total = region.total_available();
  if (!solution.feasible || total <= 0) return 0.0;
  return static_cast<double>(placed_area(modules, solution)) /
         static_cast<double>(total);
}

BitMatrix occupancy_grid(const fpga::PartialRegion& region,
                         std::span<const model::Module> modules,
                         const PlacementSolution& solution) {
  BitMatrix grid(region.height(), region.width());
  if (!solution.feasible) return grid;
  for (const ModulePlacement& p : solution.placements) {
    const auto& shape = modules[static_cast<std::size_t>(p.module)]
                            .shapes()[static_cast<std::size_t>(p.shape)];
    grid.or_shifted(shape.mask(), p.y, p.x);
  }
  return grid;
}

long largest_free_rectangle(const BitMatrix& occupied,
                            const BitMatrix& usable) {
  RR_ASSERT(occupied.rows() == usable.rows() &&
            occupied.cols() == usable.cols());
  const int rows = occupied.rows();
  const int cols = occupied.cols();
  if (rows == 0 || cols == 0) return 0;
  // Classic maximal-rectangle-in-binary-matrix via histogram per row.
  std::vector<int> heights(static_cast<std::size_t>(cols), 0);
  long best = 0;
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      const bool free_cell = usable.get(r, c) && !occupied.get(r, c);
      auto& h = heights[static_cast<std::size_t>(c)];
      h = free_cell ? h + 1 : 0;
    }
    // Largest rectangle in histogram with a stack.
    std::vector<std::pair<int, int>> stack;  // (start column, height)
    for (int c = 0; c <= cols; ++c) {
      const int h = c < cols ? heights[static_cast<std::size_t>(c)] : 0;
      int start = c;
      while (!stack.empty() && stack.back().second > h) {
        const auto [s, sh] = stack.back();
        stack.pop_back();
        best = std::max(best, static_cast<long>(sh) * (c - s));
        start = s;
      }
      if (stack.empty() || stack.back().second < h)
        stack.emplace_back(start, h);
    }
  }
  return best;
}

std::array<double, fpga::kNumResourceTypes> resource_utilization_breakdown(
    const fpga::PartialRegion& region,
    std::span<const model::Module> modules,
    const PlacementSolution& solution) {
  std::array<double, fpga::kNumResourceTypes> out{};
  if (!solution.feasible || solution.extent <= 0) return out;
  std::array<long, fpga::kNumResourceTypes> offered{};
  const int span = std::min(solution.extent, region.width());
  for (int y = 0; y < region.height(); ++y) {
    for (int x = 0; x < span; ++x) {
      if (region.available(x, y))
        ++offered[static_cast<std::size_t>(region.at(x, y))];
    }
  }
  std::array<long, fpga::kNumResourceTypes> used{};
  for (const ModulePlacement& p : solution.placements) {
    const auto& shape = modules[static_cast<std::size_t>(p.module)]
                            .shapes()[static_cast<std::size_t>(p.shape)];
    for (const geost::TypedCells& group : shape.typed())
      used[static_cast<std::size_t>(group.resource)] +=
          static_cast<long>(group.cells.size());
  }
  for (std::size_t k = 0; k < out.size(); ++k) {
    if (offered[k] > 0)
      out[k] = static_cast<double>(used[k]) / static_cast<double>(offered[k]);
  }
  return out;
}

double fragmentation(const fpga::PartialRegion& region,
                     std::span<const model::Module> modules,
                     const PlacementSolution& solution) {
  if (!solution.feasible || solution.extent <= 0) return 0.0;
  // Restrict to the spanned columns.
  const int span_cols = std::min(solution.extent, region.width());
  BitMatrix occupied = occupancy_grid(region, modules, solution);
  BitMatrix usable(region.height(), region.width());
  for (int y = 0; y < region.height(); ++y)
    for (int x = 0; x < span_cols; ++x)
      if (region.available(x, y)) usable.set(y, x, true);
  const long free_tiles =
      static_cast<long>(usable.popcount()) -
      placed_area(modules, solution);
  if (free_tiles <= 0) return 0.0;
  const long biggest = largest_free_rectangle(occupied, usable);
  return 1.0 - static_cast<double>(biggest) / static_cast<double>(free_tiles);
}

}  // namespace rr::placer
