// Placement result types shared by the CP placer, the baselines, the
// metrics, the renderers and the validator.
#pragma once

#include <vector>

#include "cp/portfolio.hpp"
#include "cp/search.hpp"
#include "geo/rect.hpp"

namespace rr::placer {

/// One placed module: which design alternative and where its shape-local
/// origin (0,0) sits in region coordinates.
struct ModulePlacement {
  int module = 0;
  int shape = 0;
  int x = 0;
  int y = 0;

  bool operator==(const ModulePlacement&) const = default;
};

struct PlacementSolution {
  bool feasible = false;
  /// One entry per module (same order as the module list) when feasible.
  std::vector<ModulePlacement> placements;
  /// Rightmost occupied column + 1 — the minimized objective (eq. 6).
  int extent = 0;
};

/// Solution plus solve telemetry, as reported in Table I.
struct PlacementOutcome {
  PlacementSolution solution;
  double seconds = 0.0;
  bool optimal = false;  // search proved the extent minimal
  cp::SearchStats stats;
  /// Propagation counters of the solve, summed over portfolio workers and
  /// LNS iterations. Per-kind buckets fill only while metrics collection is
  /// enabled (rr::metrics::enabled()).
  cp::SpaceStats space_stats;
  /// Incumbent timeline (portfolio mode only; empty otherwise).
  std::vector<cp::IncumbentEvent> incumbents;
};

}  // namespace rr::placer
