// Utilization and fragmentation metrics (§V / Table I).
#pragma once

#include <span>

#include "fpga/region.hpp"
#include "model/module.hpp"
#include "placer/placement.hpp"

namespace rr::placer {

/// Total tiles occupied by the placed shapes.
[[nodiscard]] long placed_area(std::span<const model::Module> modules,
                               const PlacementSolution& solution);

/// Average resource utilization as the paper reports it: occupied tiles
/// divided by the available tiles within the spanned extent (columns
/// [0, solution.extent)). Higher is better; design alternatives raise this
/// by shrinking the extent. Returns 0 for infeasible solutions.
[[nodiscard]] double spanned_utilization(const fpga::PartialRegion& region,
                                         std::span<const model::Module> modules,
                                         const PlacementSolution& solution);

/// Occupied tiles over all available tiles of the region.
[[nodiscard]] double region_utilization(const fpga::PartialRegion& region,
                                        std::span<const model::Module> modules,
                                        const PlacementSolution& solution);

/// External fragmentation of the spanned area: 1 - (largest free rectangle
/// / free tiles). 0 means all waste is one reusable block; near 1 means the
/// waste is scattered and unusable. Returns 0 when nothing is free.
[[nodiscard]] double fragmentation(const fpga::PartialRegion& region,
                                   std::span<const model::Module> modules,
                                   const PlacementSolution& solution);

/// Occupancy grid of a solution (rows = y): true where a module tile sits.
[[nodiscard]] BitMatrix occupancy_grid(const fpga::PartialRegion& region,
                                       std::span<const model::Module> modules,
                                       const PlacementSolution& solution);

/// Area (tiles) of the largest all-false axis-aligned rectangle of `free`.
[[nodiscard]] long largest_free_rectangle(const BitMatrix& occupied,
                                          const BitMatrix& usable);

/// Per-resource utilization within the spanned columns: used[k] / offered[k]
/// for each resource type k, indexed by int(ResourceType). Types the region
/// does not offer in the span report 0. The paper's "dedicated resources
/// reduce placement possibilities" argument becomes visible here: BRAM
/// columns are often the under-used ones.
[[nodiscard]] std::array<double, fpga::kNumResourceTypes>
resource_utilization_breakdown(const fpga::PartialRegion& region,
                               std::span<const model::Module> modules,
                               const PlacementSolution& solution);

}  // namespace rr::placer
