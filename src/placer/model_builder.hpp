// Translate a placement problem (partial region + modules) into a CP model:
// one polymorphic geost object per module, an extent variable tied to each
// placement via an element constraint, the resource-typed non-overlap
// kernel, and the minimization objective H = max extent (eq. 6).
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "cp/constraints.hpp"
#include "fpga/region.hpp"
#include "geost/nonoverlap.hpp"
#include "model/module.hpp"
#include "placer/placement.hpp"

namespace rr::placer {

struct BuildOptions {
  /// false: restrict every module to its first shape (the paper's
  /// "no design alternatives" configuration).
  bool use_alternatives = true;
  geost::NonOverlapOptions nonoverlap{};
  /// Element propagator selection for the placement->extent coupling
  /// (compact-table by default; scanning kept for differential testing).
  cp::ElementOptions element{};
  /// Add the root-level area lower bound on the extent (redundant but
  /// effective pruning: the spanned columns must offer enough tiles).
  bool area_bound = true;
  /// Order the placement variables of *identical* modules (same shape
  /// lists): interchangeable modules otherwise multiply the search space by
  /// k! without adding solutions.
  bool break_symmetries = true;
};

struct BuiltModel {
  std::unique_ptr<cp::Space> space;
  std::vector<geost::GeostObject> objects;  // one per module, module order
  std::vector<cp::VarId> placement_vars;    // objects[i].var()
  std::vector<cp::VarId> extent_vars;
  cp::VarId objective = cp::kNoVar;  // H = max_i extent_i
  /// True when some module had no valid placement at all (model is failed).
  bool infeasible = false;
};

/// Precomputed per-module placement data: the expensive part of model
/// construction (anchor correlation over the region), cacheable across
/// repeated builds (LNS iterations, portfolio workers).
struct ModuleTables {
  geost::ShapeList shapes;
  std::vector<geost::Placement> table;  // sorted bottom-left
  std::vector<int> extents;             // x-extent per table entry
  int min_area = 0;
};

[[nodiscard]] std::vector<ModuleTables> prepare_tables(
    const fpga::PartialRegion& region,
    std::span<const model::Module> modules, bool use_alternatives);

/// Shared immutable tables: one prepare, many builds. The handle is safe to
/// reference from several threads at once (the tables are never mutated
/// after construction) — portfolio workers, repeated solves, and the
/// service layer's SolveContext cache all hold one.
using TablesHandle = std::shared_ptr<const std::vector<ModuleTables>>;

[[nodiscard]] TablesHandle prepare_tables_shared(
    const fpga::PartialRegion& region,
    std::span<const model::Module> modules, bool use_alternatives);

/// Build a model from cached tables — microseconds, no anchor scans.
[[nodiscard]] BuiltModel build_model_from_tables(
    const fpga::PartialRegion& region, std::span<const ModuleTables> tables,
    const BuildOptions& options = {});

/// Convenience: prepare_tables + build_model_from_tables.
[[nodiscard]] BuiltModel build_model(const fpga::PartialRegion& region,
                                     std::span<const model::Module> modules,
                                     const BuildOptions& options = {});

/// Extract the solution from a (solved) model given the report-variable
/// assignment `placement_values` (one table index per module).
[[nodiscard]] PlacementSolution extract_solution(
    const BuiltModel& model, std::span<const int> placement_values);

}  // namespace rr::placer
