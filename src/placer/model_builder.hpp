// Translate a placement problem (partial region + modules) into a CP model:
// one polymorphic geost object per module, an extent variable tied to each
// placement via an element constraint, the resource-typed non-overlap
// kernel, and the minimization objective H = max extent (eq. 6).
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "comm/net.hpp"
#include "cp/constraints.hpp"
#include "fpga/region.hpp"
#include "geost/nonoverlap.hpp"
#include "model/module.hpp"
#include "placer/placement.hpp"

namespace rr::placer {

struct BuildOptions {
  /// false: restrict every module to its first shape (the paper's
  /// "no design alternatives" configuration).
  bool use_alternatives = true;
  geost::NonOverlapOptions nonoverlap{};
  /// Element propagator selection for the placement->extent coupling
  /// (compact-table by default; scanning kept for differential testing).
  cp::ElementOptions element{};
  /// Add the root-level area lower bound on the extent (redundant but
  /// effective pruning: the spanned columns must offer enough tiles).
  bool area_bound = true;
  /// Order the placement variables of *identical* modules (same shape
  /// lists): interchangeable modules otherwise multiply the search space by
  /// k! without adding solutions.
  bool break_symmetries = true;
  /// Communication model (non-owning; must outlive every build). When set
  /// with a positive comm_weight and at least one surviving net, the
  /// objective becomes comm::kExtentScale * H + comm_weight * HPWL2 via a
  /// doubled-center element encoding. Otherwise the model is built
  /// byte-for-byte identically to the area-only objective (same variable
  /// ids, same propagators) — the zero-weight oracle.
  const comm::BoundNets* comm_nets = nullptr;
  long comm_weight = 0;
};

struct BuiltModel {
  std::unique_ptr<cp::Space> space;
  std::vector<geost::GeostObject> objects;  // one per module, module order
  std::vector<cp::VarId> placement_vars;    // objects[i].var()
  std::vector<cp::VarId> extent_vars;
  /// Minimized by the search engine: equal to extent_objective for the
  /// area-only model, the combined extent + wirelength variable when the
  /// communication term is active.
  cp::VarId objective = cp::kNoVar;
  cp::VarId extent_objective = cp::kNoVar;  // H = max_i extent_i
  /// Weighted doubled HPWL variable (kNoVar when comm is off).
  cp::VarId wirelength2_var = cp::kNoVar;
  /// True when some module had no valid placement at all (model is failed).
  bool infeasible = false;
};

/// Precomputed per-module placement data: the expensive part of model
/// construction (anchor correlation over the region), cacheable across
/// repeated builds (LNS iterations, portfolio workers).
struct ModuleTables {
  geost::ShapeList shapes;
  std::vector<geost::Placement> table;  // sorted bottom-left
  std::vector<int> extents;             // x-extent per table entry
  int min_area = 0;
};

[[nodiscard]] std::vector<ModuleTables> prepare_tables(
    const fpga::PartialRegion& region,
    std::span<const model::Module> modules, bool use_alternatives);

/// Shared immutable tables: one prepare, many builds. The handle is safe to
/// reference from several threads at once (the tables are never mutated
/// after construction) — portfolio workers, repeated solves, and the
/// service layer's SolveContext cache all hold one.
using TablesHandle = std::shared_ptr<const std::vector<ModuleTables>>;

[[nodiscard]] TablesHandle prepare_tables_shared(
    const fpga::PartialRegion& region,
    std::span<const model::Module> modules, bool use_alternatives);

/// Build a model from cached tables — microseconds, no anchor scans.
[[nodiscard]] BuiltModel build_model_from_tables(
    const fpga::PartialRegion& region, std::span<const ModuleTables> tables,
    const BuildOptions& options = {});

/// Convenience: prepare_tables + build_model_from_tables.
[[nodiscard]] BuiltModel build_model(const fpga::PartialRegion& region,
                                     std::span<const model::Module> modules,
                                     const BuildOptions& options = {});

/// Extract the solution from a (solved) model given the report-variable
/// assignment `placement_values` (one table index per module).
[[nodiscard]] PlacementSolution extract_solution(
    const BuiltModel& model, std::span<const int> placement_values);

/// Weighted doubled HPWL of a table-index assignment (one value per module,
/// module order matching the tables `nets` was bound against).
[[nodiscard]] long assignment_wirelength2(std::span<const ModuleTables> tables,
                                          std::span<const int> values,
                                          const comm::BoundNets& nets);

}  // namespace rr::placer
