// Placement compaction (defragmentation).
//
// After run-time churn an online-managed region is fragmented ([12] and
// §II's free-space management literature). compact() takes any valid
// placement and improves it in place with the LNS machinery: modules are
// re-placed (possibly switching design alternatives) to shrink the
// occupied extent, never making it worse. The result can be interpreted
// as a relocation plan: every module whose placement changed must be
// reconfigured.
#pragma once

#include <span>

#include "fpga/region.hpp"
#include "model/module.hpp"
#include "placer/placement.hpp"
#include "util/stopwatch.hpp"

namespace rr::placer {

struct CompactionResult {
  PlacementSolution solution;  // the compacted placement
  int extent_before = 0;
  int extent_after = 0;
  /// Modules whose placement changed (these need reconfiguration).
  int relocated = 0;
  bool optimal = false;  // reached the area lower bound
  int iterations = 0;
};

struct CompactionOptions {
  double time_limit_seconds = 1.0;
  bool use_alternatives = true;
  std::uint64_t seed = 1;
};

/// Compact `solution` (which must validate against region/modules; an
/// InvalidInput is thrown otherwise). The returned solution is always at
/// least as good as the input.
[[nodiscard]] CompactionResult compact(const fpga::PartialRegion& region,
                                       std::span<const model::Module> modules,
                                       const PlacementSolution& solution,
                                       const CompactionOptions& options = {});

}  // namespace rr::placer
