#include "geost/object.hpp"

#include <algorithm>
#include <limits>
#include <tuple>

namespace rr::geost {

std::vector<int> GeostObject::extent_table() const {
  std::vector<int> extents;
  extents.reserve(table_.size());
  for (int v = 0; v < static_cast<int>(table_.size()); ++v)
    extents.push_back(extent_x_of(v));
  return extents;
}

int GeostObject::min_area() const {
  int best = std::numeric_limits<int>::max();
  for (const ShapeFootprint& shape : shapes())
    best = std::min(best, shape.area());
  return best;
}

std::vector<Placement> sorted_placement_table(
    const std::vector<ShapeFootprint>& shapes,
    std::span<const std::vector<Point>> anchors_per_shape) {
  RR_REQUIRE(anchors_per_shape.size() == shapes.size(),
             "one anchor list per shape required");
  std::vector<Placement> table;
  for (std::size_t s = 0; s < shapes.size(); ++s) {
    for (const Point& anchor : anchors_per_shape[s]) {
      table.push_back(Placement{static_cast<int>(s), anchor.x, anchor.y});
    }
  }
  auto key = [&](const Placement& p) {
    const Rect box = shapes[static_cast<std::size_t>(p.shape)].bounding_box();
    return std::tuple<int, int, int, int>(p.x + box.width, p.x, p.y, p.shape);
  };
  std::sort(table.begin(), table.end(),
            [&](const Placement& a, const Placement& b) {
              return key(a) < key(b);
            });
  return table;
}

GeostObject make_object(cp::Space& space, ShapeList shapes,
                        std::span<const std::vector<Point>> anchors_per_shape) {
  RR_REQUIRE(shapes != nullptr && !shapes->empty(),
             "geost object needs at least one shape");
  return make_object_from_table(
      space, shapes, sorted_placement_table(*shapes, anchors_per_shape));
}

GeostObject make_object_from_table(cp::Space& space, ShapeList shapes,
                                   std::vector<Placement> table) {
  RR_REQUIRE(shapes != nullptr && !shapes->empty(),
             "geost object needs at least one shape");
  if (table.empty()) {
    space.fail();
    return GeostObject(cp::kNoVar, std::move(shapes), {});
  }
  const cp::VarId var = space.new_var(0, static_cast<int>(table.size()) - 1);
  return GeostObject(var, std::move(shapes), std::move(table));
}

}  // namespace rr::geost
