#include "geost/anchor_kernel.hpp"

#include <algorithm>
#include <bit>

#include "util/error.hpp"
#include "util/simd/simd.hpp"

namespace rr::geost {
namespace {

/// Invoke fn(column) for every set bit of a shape-mask row.
template <typename F>
void for_each_column(std::span<const std::uint64_t> row, F&& fn) {
  for (std::size_t wi = 0; wi < row.size(); ++wi) {
    std::uint64_t word = row[wi];
    while (word != 0) {
      fn(static_cast<int>(wi) * 64 + std::countr_zero(word));
      word &= word - 1;
    }
  }
}

/// Invoke fn(start, length) for every maximal run of set bits of a
/// shape-mask row, in increasing column order.
template <typename F>
void for_each_run(std::span<const std::uint64_t> row, F&& fn) {
  int run_start = -1;
  int prev = -2;
  for_each_column(row, [&](int c) {
    if (c != prev + 1) {
      if (run_start >= 0) fn(run_start, prev - run_start + 1);
      run_start = c;
    }
    prev = c;
  });
  if (run_start >= 0) fn(run_start, prev - run_start + 1);
}

/// scratch[x] = AND of scratch[x .. x+length-1] (bits past the array end
/// read as zero), by doubling: O(log length) shift-AND sweeps. In-place
/// aliasing is safe because every window read is at an index >= the word
/// being written, so it always sees the current sweep's pre-write values.
void erode_run(std::span<std::uint64_t> scratch, int length) {
  for (int cur = 1; cur < length;) {
    const int step = std::min(cur, length - cur);
    simd::shift_and_into(scratch, scratch, step);
    cur += step;
  }
}

void zero_row(std::span<std::uint64_t> row) noexcept {
  for (std::uint64_t& w : row) w = 0;
}

}  // namespace

void erode_fit(BitMatrix& fit, const BitMatrix& avail,
               const BitMatrix& shape_mask, int row_lo, int row_hi) {
  RR_ASSERT(fit.rows() == avail.rows() && fit.cols() == avail.cols());
  row_lo = std::max(row_lo, 0);
  row_hi = std::min(row_hi, fit.rows());
  if (row_lo >= row_hi) return;
  // Shape rows are mostly solid runs (module layouts are unions of
  // rectangles), so flatten the mask into maximal runs once; each anchor
  // row then pays one shift-AND per run.
  struct Run {
    int sy;
    int start;
    int length;
    int eroded;  // index into `eroded` when length > 1, else -1
  };
  std::vector<Run> runs;
  int max_sy = -1;
  for (int sy = 0; sy < shape_mask.rows(); ++sy) {
    for_each_run(shape_mask.row_span(sy), [&](int start, int length) {
      runs.push_back({sy, start, length, -1});
      max_sy = std::max(max_sy, sy);
    });
  }
  if (runs.empty()) return;
  // Anchor rows whose lowest non-empty shape row hangs below the region
  // cannot be covered at all.
  const int cover_hi = std::min(row_hi, avail.rows() - max_sy);
  for (int y = std::max(row_lo, cover_hi); y < row_hi; ++y) {
    zero_row(fit.row_span_mut(y));
  }
  if (row_lo >= cover_hi) return;
  // A run of length L reads an avail row eroded horizontally by L. Anchor
  // rows y and y' with y + sy == y' + sy' read the *same* eroded row, so
  // erode each (avail row, run length) pair once up front — O(rows *
  // distinct_lengths * log length) sweeps — instead of re-eroding per
  // anchor row.
  const int erode_hi = std::min(avail.rows(), cover_hi + max_sy);
  std::vector<int> lengths;
  std::vector<BitMatrix> eroded;
  for (Run& run : runs) {
    if (run.length == 1) continue;
    const auto it = std::find(lengths.begin(), lengths.end(), run.length);
    run.eroded = static_cast<int>(it - lengths.begin());
    if (it != lengths.end()) continue;
    lengths.push_back(run.length);
    BitMatrix copy = avail;
    for (int r = row_lo; r < erode_hi; ++r) {
      erode_run(copy.row_span_mut(r), run.length);
    }
    eroded.push_back(std::move(copy));
  }
  for (int y = row_lo; y < cover_hi; ++y) {
    auto dst = fit.row_span_mut(y);
    std::size_t live = simd::popcount(dst);
    for (const Run& run : runs) {
      if (live == 0) break;
      const BitMatrix& src =
          run.eroded >= 0 ? eroded[static_cast<std::size_t>(run.eroded)]
                          : avail;
      live = simd::shift_and_into(dst, src.row_span(y + run.sy), run.start);
    }
  }
}

void accumulate_conflicts(BitMatrix& conflict, const BitMatrix& occ,
                          const BitMatrix& shape_mask, int row_lo,
                          int row_hi) {
  RR_ASSERT(conflict.rows() == occ.rows() && conflict.cols() == occ.cols());
  row_lo = std::max(row_lo, 0);
  row_hi = std::min(row_hi, conflict.rows());
  for (int y = row_lo; y < row_hi; ++y) {
    auto dst = conflict.row_span_mut(y);
    for (int sy = 0; sy < shape_mask.rows(); ++sy) {
      const int src_row = y + sy;
      // Shape rows landing outside the region cannot overlap anything —
      // the same "out of range means non-overlapping" rule as
      // intersects_shifted.
      if (src_row >= occ.rows()) break;
      const auto occ_row = occ.row_span(src_row);
      for_each_column(shape_mask.row_span(sy),
                      [&](int sc) { simd::shift_or_into(dst, occ_row, sc); });
    }
  }
}

BitMatrix batch_valid_anchors(std::span<const BitMatrix> masks_by_resource,
                              const ShapeFootprint& shape) {
  if (masks_by_resource.empty()) return {};
  const int region_h = masks_by_resource.front().rows();
  const int region_w = masks_by_resource.front().cols();
  for (const BitMatrix& m : masks_by_resource) {
    RR_REQUIRE(m.rows() == region_h && m.cols() == region_w,
               "all resource masks must share the region dimensions");
  }
  // Start from the valid anchor window — anchors at which the shape's
  // bounding box stays inside the region — and erode per typed group.
  // (Erosion alone would clear the out-of-window anchors too, because the
  // bounding box is tight; seeding the window just skips that work.)
  const Rect box = shape.bounding_box();
  BitMatrix fit(region_h, region_w);
  if (box.width <= region_w && box.height <= region_h) {
    BitMatrix window_row(1, region_w);
    for (int x = 0; x + box.width <= region_w; ++x) window_row.set(0, x, true);
    for (int y = 0; y + box.height <= region_h; ++y) {
      auto dst = fit.row_span_mut(y);
      const auto src = window_row.row_span(0);
      std::copy(src.begin(), src.end(), dst.begin());
    }
  }
  for (std::size_t g = 0; g < shape.typed().size(); ++g) {
    const int resource = shape.typed()[g].resource;
    if (resource >= static_cast<int>(masks_by_resource.size())) {
      fit.clear();
      return fit;  // shape demands a resource the region does not offer
    }
    erode_fit(fit, masks_by_resource[static_cast<std::size_t>(resource)],
              shape.typed_masks()[g], 0, region_h);
  }
  return fit;
}

}  // namespace rr::geost
