// Shape footprints for the geost kernel.
//
// Following Beldiceanu et al., a geost shape is a set of shifted boxes; our
// 2-D instantiation uses unit cells grouped by resource type — exactly the
// paper's extension: "the geost definition of a box is extended with a
// resource property" (§IV). A ShapeFootprint caches, per resource, a local
// bitmap used both for resource-compatibility anchor computation and for
// fast overlap tests during propagation.
#pragma once

#include <vector>

#include "geo/cellset.hpp"
#include "util/bitmatrix.hpp"

namespace rr::geost {

/// Cells of a shape that require one particular resource type. Resource
/// identifiers are small non-negative integers defined by the client (the
/// fpga layer maps its ResourceType enum onto them).
struct TypedCells {
  int resource = 0;
  CellSet cells;
};

/// One concrete layout of an object: typed cells plus cached geometry.
/// All coordinates are local, normalized so the joint bounding box of all
/// typed cells has origin (0, 0).
class ShapeFootprint {
 public:
  /// Build from typed cell groups. Groups with the same resource are merged;
  /// empty groups are rejected; overlapping cells across groups are rejected
  /// (a tile has exactly one resource type, §III.A).
  static ShapeFootprint from_typed(std::vector<TypedCells> groups);

  [[nodiscard]] const std::vector<TypedCells>& typed() const noexcept {
    return typed_;
  }
  /// Union of all cells, regardless of type.
  [[nodiscard]] const CellSet& all_cells() const noexcept { return all_; }
  /// Local occupancy bitmap; rows indexed by y, columns by x.
  [[nodiscard]] const BitMatrix& mask() const noexcept { return mask_; }
  /// Per-resource local bitmaps, parallel to typed().
  [[nodiscard]] const std::vector<BitMatrix>& typed_masks() const noexcept {
    return typed_masks_;
  }
  [[nodiscard]] Rect bounding_box() const noexcept { return bbox_; }
  [[nodiscard]] int area() const noexcept {
    return static_cast<int>(all_.size());
  }
  /// Total cells demanded of `resource` (0 when the shape uses none).
  [[nodiscard]] int demand(int resource) const noexcept;

 private:
  std::vector<TypedCells> typed_;
  std::vector<BitMatrix> typed_masks_;
  CellSet all_;
  BitMatrix mask_;
  Rect bbox_{};
};

/// Compute all anchors (x, y) at which `shape` is resource-compatible with
/// a region described by one availability bitmap per resource type
/// (masks[k].get(y, x) == true iff the region cell (x, y) offers resource k
/// and is usable). This folds the paper's constraints (2) — inside the
/// region — and (3) — matching resource types — into the initial domain.
/// Anchors are returned in row-major order (y outer, x inner... see impl),
/// sorted by (x, y). Implemented on the batch anchor-feasibility kernel
/// (geost/anchor_kernel); compute_valid_anchors_scalar is the per-anchor
/// reference it must match anchor for anchor.
[[nodiscard]] std::vector<Point> compute_valid_anchors(
    std::span<const BitMatrix> masks_by_resource, const ShapeFootprint& shape);

/// Per-anchor reference implementation of compute_valid_anchors — the
/// differential oracle for the batch kernel (tests / bench; the batch path
/// is strictly faster).
[[nodiscard]] std::vector<Point> compute_valid_anchors_scalar(
    std::span<const BitMatrix> masks_by_resource, const ShapeFootprint& shape);

}  // namespace rr::geost
