#include "geost/nonoverlap.hpp"

#include <memory>

namespace rr::geost {
namespace {

class NonOverlap final : public cp::Propagator {
 public:
  NonOverlap(std::vector<GeostObject> objects, int width, int height,
             NonOverlapOptions options)
      : cp::Propagator(cp::PropPriority::kGlobal, cp::PropKind::kGeost),
        objects_(std::move(objects)),
        width_(width),
        height_(height),
        options_(options) {}

  void attach(cp::Space& space, int self) override {
    for (const GeostObject& object : objects_)
      space.subscribe(object.var(), self, cp::kOnDomain);
  }

  cp::PropStatus propagate(cp::Space& space) override {
    // Definite occupancy from assigned objects. Rebuilt every call; the
    // propagator keeps no search-dependent state, which keeps it trivially
    // backtrack-safe (see Propagator contract).
    BitMatrix occupancy(height_, width_);
    Rect occupied_box{};  // union bbox, cheap prefilter
    int assigned = 0;
    for (const GeostObject& object : objects_) {
      if (!space.assigned(object.var())) continue;
      ++assigned;
      const int value = space.value(object.var());
      const Placement& p = object.placement(value);
      const ShapeFootprint& shape = object.footprint_of(value);
      if (occupancy.intersects_shifted(shape.mask(), p.y, p.x))
        return cp::PropStatus::kFail;
      occupancy.or_shifted(shape.mask(), p.y, p.x);
      occupied_box = occupied_box.bounding_union(object.bbox_of(value));
    }

    // Compulsory parts of nearly-decided, still-open objects.
    struct Soft {
      std::size_t owner;
      BitMatrix mask;
      Rect box;
    };
    std::vector<Soft> soft;
    if (options_.use_compulsory_parts) {
      for (std::size_t j = 0; j < objects_.size(); ++j) {
        const GeostObject& object = objects_[j];
        const cp::Domain& dom = space.dom(object.var());
        if (dom.assigned() || dom.size() > options_.compulsory_threshold)
          continue;
        BitMatrix part(height_, width_);
        bool first = true;
        Rect box{};
        dom.for_each([&](int value) {
          const Placement& p = object.placement(value);
          const ShapeFootprint& shape = object.footprint_of(value);
          if (first) {
            part.or_shifted(shape.mask(), p.y, p.x);
            box = object.bbox_of(value);
            first = false;
          } else {
            BitMatrix this_one(height_, width_);
            this_one.or_shifted(shape.mask(), p.y, p.x);
            part.and_with(this_one);
            box = box.intersection(object.bbox_of(value));
          }
        });
        if (part.popcount() > 0)
          soft.push_back(Soft{j, std::move(part), box});
      }
    }

    if (assigned == static_cast<int>(objects_.size()))
      return cp::PropStatus::kSubsumed;  // all placed, overlap-free

    // Prune every open object against occupancy and others' compulsory
    // parts. Removals are collected per object (domain values ascend, so
    // the batch is already sorted).
    std::vector<int> removals;
    for (std::size_t j = 0; j < objects_.size(); ++j) {
      const GeostObject& object = objects_[j];
      if (space.assigned(object.var())) continue;
      removals.clear();
      space.dom(object.var()).for_each([&](int value) {
        const Rect box = object.bbox_of(value);
        const Placement& p = object.placement(value);
        const ShapeFootprint& shape = object.footprint_of(value);
        if (box.intersects(occupied_box) &&
            occupancy.intersects_shifted(shape.mask(), p.y, p.x)) {
          removals.push_back(value);
          return;
        }
        for (const Soft& s : soft) {
          if (s.owner == j || !box.intersects(s.box)) continue;
          if (s.mask.intersects_shifted(shape.mask(), p.y, p.x)) {
            removals.push_back(value);
            return;
          }
        }
      });
      if (!removals.empty()) {
        if (space.remove_values_sorted(object.var(), removals) ==
            cp::ModEvent::kFail)
          return cp::PropStatus::kFail;
      }
    }
    return cp::PropStatus::kFix;
  }

 private:
  std::vector<GeostObject> objects_;
  int width_;
  int height_;
  NonOverlapOptions options_;
};

}  // namespace

int post_non_overlap(cp::Space& space, std::vector<GeostObject> objects,
                     int region_width, int region_height,
                     const NonOverlapOptions& options) {
  RR_REQUIRE(region_width > 0 && region_height > 0,
             "non-overlap region must be non-degenerate");
  return space.post(std::make_unique<NonOverlap>(
      std::move(objects), region_width, region_height, options));
}

}  // namespace rr::geost
