#include "geost/nonoverlap.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "geost/anchor_kernel.hpp"
#include "util/error.hpp"

namespace rr::geost {
namespace {

// Two engines, one pruning semantics (see nonoverlap.hpp):
//
// The incremental engine is an advised propagator. The Space reports every
// modification of a placement variable through modified(), which lands in a
// dirty set drained at propagate() entry. Internal state — the union
// occupancy bitmap of committed (assigned) objects and per-object cached
// compulsory parts — is trailed through level_pushed()/level_popped() in
// lockstep with the Space's domain trail:
//   - committing an object ORs its footprint in; commits are recorded on a
//     trail and are pairwise disjoint (a conflicting commit fails the space
//     first), so rollback via clear_shifted is exact;
//   - a compulsory part cached at a decision level is invalidated when that
//     level dies, because the prunings justified against it die with it.
// Each run then prunes open objects only against the *delta*: footprint
// cells committed this run plus cells each recomputed compulsory part
// gained. Values that survived earlier runs stay consistent with the old
// occupancy, so re-checking them against it would be pure waste.
class NonOverlap final : public cp::Propagator {
 public:
  NonOverlap(std::vector<GeostObject> objects, int width, int height,
             NonOverlapOptions options)
      : cp::Propagator(cp::PropPriority::kGlobal, cp::PropKind::kGeost),
        objects_(std::move(objects)),
        width_(width),
        height_(height),
        options_(options) {}

  void attach(cp::Space& space, int self) override {
    const std::size_t n = objects_.size();
    for (std::size_t j = 0; j < n; ++j) {
      space.subscribe(objects_[j].var(), self, cp::kOnDomain,
                      static_cast<int>(j));
    }
    if (!options_.incremental) return;
    occupancy_ = BitMatrix(height_, width_);
    delta_occupancy_ = BitMatrix(height_, width_);
    hazard_ = BitMatrix(height_, width_);
    committed_.assign(n, -1);
    caches_.resize(n);
    // Start with everything dirty: the first run is a full from-scratch
    // pruning, later runs are pure deltas.
    in_dirty_.assign(n, 1);
    dirty_.resize(n);
    for (std::size_t j = 0; j < n; ++j) dirty_[j] = static_cast<int>(j);
    // Bounding box over each object's whole placement table — a cheap
    // whole-object prefilter for the delta pruning pass.
    table_boxes_.reserve(n);
    for (const GeostObject& object : objects_) {
      Rect box{};
      const int values = static_cast<int>(object.table().size());
      for (int v = 0; v < values; ++v)
        box = box.bounding_union(object.bbox_of(v));
      table_boxes_.push_back(box);
    }
  }

  [[nodiscard]] bool advised() const noexcept override {
    return options_.incremental;
  }

  void modified(cp::Space& /*space*/, cp::VarId /*var*/, int data) override {
    const std::size_t j = static_cast<std::size_t>(data);
    if (in_dirty_[j]) return;
    in_dirty_[j] = 1;
    dirty_.push_back(static_cast<int>(j));
  }

  void level_pushed(cp::Space& /*space*/) override {
    commit_marks_.push_back(commit_trail_.size());
    cache_marks_.push_back(cache_trail_.size());
  }

  void level_popped(cp::Space& /*space*/) override {
    RR_ASSERT(!commit_marks_.empty());
    const std::size_t cmark = commit_marks_.back();
    commit_marks_.pop_back();
    while (commit_trail_.size() > cmark) {
      const std::size_t j = commit_trail_.back();
      const GeostObject& object = objects_[j];
      const Placement& p = object.placement(committed_[j]);
      occupancy_.clear_shifted(object.footprint_of(committed_[j]).mask(), p.y,
                               p.x);
      committed_[j] = -1;
      commit_trail_.pop_back();
    }
    const std::size_t kmark = cache_marks_.back();
    cache_marks_.pop_back();
    while (cache_trail_.size() > kmark) {
      caches_[cache_trail_.back()].has_content = false;
      cache_trail_.pop_back();
    }
  }

  cp::PropStatus propagate(cp::Space& space) override {
    return options_.incremental ? propagate_incremental(space)
                                : propagate_scratch(space);
  }

 private:
  /// Cached compulsory part of one open object. `has_content` means other
  /// objects were already pruned against the stored part at a still-live
  /// decision level, so a recompute needs to prune only against the cells
  /// the part *gained*; level_popped clears the flag for caches filled at
  /// dead levels (the prunings they justified were rolled back too).
  struct SoftCache {
    BitMatrix part;
    bool has_content = false;
  };

  struct SoftDelta {
    std::size_t owner;
    BitMatrix grown;  // newly-compulsory cells, not yet pruned against
    Rect box;         // bounding box of the full (current) part
  };

  cp::PropStatus propagate_incremental(cp::Space& space);
  cp::PropStatus propagate_scratch(cp::Space& space);

  std::vector<GeostObject> objects_;
  int width_;
  int height_;
  NonOverlapOptions options_;

  // --- Incremental engine state (untouched in from-scratch mode) ---------
  BitMatrix occupancy_;         // union footprint of committed objects
  std::vector<int> committed_;  // committed placement value, -1 when open
  std::vector<std::size_t> commit_trail_;
  std::vector<std::size_t> commit_marks_;
  std::vector<SoftCache> caches_;
  std::vector<std::size_t> cache_trail_;  // caches filled at a live level
  std::vector<std::size_t> cache_marks_;
  std::vector<int> dirty_;  // objects modified since the last run, deduped
  std::vector<unsigned char> in_dirty_;
  std::vector<Rect> table_boxes_;
  // Per-run scratch, kept as members to avoid reallocation.
  BitMatrix delta_occupancy_;
  std::vector<int> drained_;
  std::vector<SoftDelta> soft_deltas_;
  std::vector<int> removals_;
  // Batch-pruning scratch: the per-object hazard union and one lazily
  // dilated conflict bitmap per shape of the object under examination.
  BitMatrix hazard_;
  std::vector<BitMatrix> batch_conflicts_;
  std::vector<unsigned char> batch_conflict_built_;
  std::vector<int> batch_probe_counts_;
};

cp::PropStatus NonOverlap::propagate_incremental(cp::Space& space) {
  const std::size_t n = objects_.size();

  // Drain the dirty set: everything modified since the previous run.
  drained_.clear();
  drained_.swap(dirty_);
  for (int j : drained_) in_dirty_[static_cast<std::size_t>(j)] = 0;

  // Phase 1: commit newly assigned objects into the occupancy bitmap.
  // Committed footprints stay pairwise disjoint (a conflicting commit fails
  // before OR-ing), which is what makes the clear_shifted rollback in
  // level_popped exact.
  const bool trail = space.decision_level() > 0;
  delta_occupancy_.clear();
  Rect delta_box{};
  bool occupancy_grew = false;
  for (int j : drained_) {
    const std::size_t idx = static_cast<std::size_t>(j);
    const GeostObject& object = objects_[idx];
    if (!space.assigned(object.var()) || committed_[idx] >= 0) continue;
    const int value = space.value(object.var());
    const Placement& p = object.placement(value);
    const BitMatrix& mask = object.footprint_of(value).mask();
    if (occupancy_.intersects_shifted(mask, p.y, p.x))
      return cp::PropStatus::kFail;
    if (trail) commit_trail_.push_back(idx);
    occupancy_.or_shifted(mask, p.y, p.x);
    committed_[idx] = value;
    delta_occupancy_.or_shifted(mask, p.y, p.x);
    delta_box = delta_box.bounding_union(object.bbox_of(value));
    occupancy_grew = true;
  }

  std::size_t committed_count = 0;
  for (std::size_t j = 0; j < n; ++j) committed_count += committed_[j] >= 0;
  if (committed_count == n)
    return cp::PropStatus::kSubsumed;  // all placed, overlap-free

  // Phase 2: recompute compulsory parts of open objects whose domains
  // changed, collecting the cells each part gained.
  soft_deltas_.clear();
  if (options_.use_compulsory_parts) {
    for (int j : drained_) {
      const std::size_t idx = static_cast<std::size_t>(j);
      const GeostObject& object = objects_[idx];
      if (committed_[idx] >= 0) continue;  // the footprint covers it now
      const cp::Domain& dom = space.dom(object.var());
      if (dom.size() > options_.compulsory_threshold) continue;
      BitMatrix part(height_, width_);
      bool first = true;
      Rect box{};
      dom.for_each([&](int value) {
        const Placement& p = object.placement(value);
        const ShapeFootprint& shape = object.footprint_of(value);
        if (first) {
          part.or_shifted(shape.mask(), p.y, p.x);
          box = object.bbox_of(value);
          first = false;
        } else {
          BitMatrix this_one(height_, width_);
          this_one.or_shifted(shape.mask(), p.y, p.x);
          part.and_with(this_one);
          box = box.intersection(object.bbox_of(value));
        }
      });
      SoftCache& cache = caches_[idx];
      SoftDelta delta;
      delta.owner = idx;
      delta.grown = part;
      if (cache.has_content) delta.grown.clear_shifted(cache.part, 0, 0);
      delta.box = box;
      cache.part = std::move(part);
      cache.has_content = true;
      if (trail) cache_trail_.push_back(idx);
      if (delta.grown.popcount() > 0)
        soft_deltas_.push_back(std::move(delta));
    }
  }

  if (!occupancy_grew && soft_deltas_.empty()) return cp::PropStatus::kFix;

  // Phase 3: prune open objects against the delta regions only. Values that
  // survived earlier runs are still consistent with the old occupancy and
  // parts; only the grown cells can invalidate them. Removals re-enter the
  // dirty set via modified(), so compulsory-part growth cascades to the
  // same fixpoint the from-scratch engine reaches.
  for (std::size_t j = 0; j < n; ++j) {
    const GeostObject& object = objects_[j];
    if (committed_[j] >= 0) continue;
    const Rect& table_box = table_boxes_[j];
    bool relevant = occupancy_grew && table_box.intersects(delta_box);
    for (std::size_t s = 0; !relevant && s < soft_deltas_.size(); ++s) {
      relevant = soft_deltas_[s].owner != j &&
                 table_box.intersects(soft_deltas_[s].box);
    }
    if (!relevant) continue;
    const cp::Domain& dom = space.dom(object.var());
    removals_.clear();
    // Per-value check against the individual delta sources — the reference
    // semantics both paths below implement.
    const auto removable = [&](int value) {
      const Rect box = object.bbox_of(value);
      const Placement& p = object.placement(value);
      const BitMatrix& mask = object.footprint_of(value).mask();
      if (occupancy_grew && box.intersects(delta_box) &&
          delta_occupancy_.intersects_shifted(mask, p.y, p.x)) {
        return true;
      }
      for (const SoftDelta& s : soft_deltas_) {
        if (s.owner == j || !box.intersects(s.box)) continue;
        if (s.grown.intersects_shifted(mask, p.y, p.x)) return true;
      }
      return false;
    };
    if (options_.batch_anchors &&
        dom.size() >= static_cast<long>(options_.batch_threshold)) {
      // Batch path, engaged lazily per shape: values are checked one at a
      // time exactly like the per-value path until a shape has seen enough
      // hazard-box hits to amortize a conflict bitmap — the union of all
      // hazard cells dilated by the shape over the hazard's anchor-row
      // stripe — after which each remaining value is a single bit probe.
      // The removal set is identical either way: the hazard union
      // distributes over the OR of the per-source intersects tests, and a
      // conflicting cell implies the bbox intersections checked by
      // `removable`. Small-delta propagations (the common in-tree case)
      // never reach the switch point and pay nothing beyond the per-value
      // path's cost.
      Rect hazard_box{};
      if (occupancy_grew) hazard_box = delta_box;
      for (const SoftDelta& s : soft_deltas_) {
        if (s.owner != j) hazard_box = hazard_box.bounding_union(s.box);
      }
      const std::size_t num_shapes = object.shapes().size();
      if (batch_conflicts_.size() < num_shapes) {
        batch_conflicts_.resize(num_shapes);
        batch_probe_counts_.resize(num_shapes);
      }
      std::fill_n(batch_probe_counts_.begin(), num_shapes, 0);
      batch_conflict_built_.assign(num_shapes, 0);
      bool hazard_built = false;
      dom.for_each([&](int value) {
        const Placement& p = object.placement(value);
        // Values outside the hazard union's bbox cannot conflict with any
        // grown cell — the same prefilter `removable` applies per source.
        if (!object.bbox_of(value).intersects(hazard_box)) return;
        const std::size_t s = static_cast<std::size_t>(p.shape);
        const ShapeFootprint& shape = object.shapes()[s];
        const int shape_rows = shape.mask().rows();
        // Anchor rows that can reach a hazard cell: the shape spans
        // shape_rows rows downward from its anchor, so the stripe is the
        // hazard rows dilated upward by shape_rows - 1 (clipped to the
        // object's anchor-row range).
        const int row_lo =
            std::max({0, table_box.y, hazard_box.y - shape_rows + 1});
        const int row_hi =
            std::min({height_, table_box.top(), hazard_box.top()});
        if (!batch_conflict_built_[s]) {
          // Cost model for the switch point: the build dilates every shape
          // cell across every stripe row (~stripe_rows * area word ops),
          // while a per-value probe gathers one window per shape row
          // (~shape_rows ops against the small delta bitmaps). The bitmap
          // therefore pays off only after about stripe_rows * cells_per_row
          // probes of this shape. batch_threshold <= 0 forces the bitmap on
          // the second probe (how the differential tests pin the batch
          // path).
          const int cells_per_row =
              std::max(shape.area() / std::max(shape_rows, 1), 1);
          const int switch_after =
              options_.batch_threshold <= 0
                  ? 1
                  : std::max(row_hi - row_lo, 1) * cells_per_row;
          if (++batch_probe_counts_[s] <= switch_after) {
            if (removable(value)) removals_.push_back(value);
            return;
          }
          if (!hazard_built) {
            hazard_.clear();
            if (occupancy_grew) hazard_.or_with(delta_occupancy_);
            for (const SoftDelta& s2 : soft_deltas_) {
              if (s2.owner != j) hazard_.or_with(s2.grown);
            }
            hazard_built = true;
          }
          BitMatrix& conflict = batch_conflicts_[s];
          if (conflict.rows() != height_ || conflict.cols() != width_)
            conflict = BitMatrix(height_, width_);
          else
            conflict.clear();
          accumulate_conflicts(conflict, hazard_,
                               object.shapes()[s].mask(), row_lo, row_hi);
          batch_conflict_built_[s] = 1;
        }
        // Every probed value passed the bbox test, which puts its anchor
        // row inside the built stripe.
        if (batch_conflicts_[s].get(p.y, p.x)) removals_.push_back(value);
      });
    } else {
      dom.for_each([&](int value) {
        if (removable(value)) removals_.push_back(value);
      });
    }
    if (!removals_.empty()) {
      if (space.remove_values_sorted(object.var(), removals_) ==
          cp::ModEvent::kFail)
        return cp::PropStatus::kFail;
    }
  }
  return cp::PropStatus::kFix;
}

cp::PropStatus NonOverlap::propagate_scratch(cp::Space& space) {
  // Definite occupancy from assigned objects. Rebuilt every call; this
  // engine keeps no search-dependent state, which keeps it trivially
  // backtrack-safe — the differential-testing oracle for the incremental
  // engine above.
  BitMatrix occupancy(height_, width_);
  Rect occupied_box{};  // union bbox, cheap prefilter
  int assigned = 0;
  for (const GeostObject& object : objects_) {
    if (!space.assigned(object.var())) continue;
    ++assigned;
    const int value = space.value(object.var());
    const Placement& p = object.placement(value);
    const ShapeFootprint& shape = object.footprint_of(value);
    if (occupancy.intersects_shifted(shape.mask(), p.y, p.x))
      return cp::PropStatus::kFail;
    occupancy.or_shifted(shape.mask(), p.y, p.x);
    occupied_box = occupied_box.bounding_union(object.bbox_of(value));
  }

  // All placed and overlap-free: subsumed. Checked before compulsory-part
  // construction so the final call does not build soft parts it would
  // immediately discard.
  if (assigned == static_cast<int>(objects_.size()))
    return cp::PropStatus::kSubsumed;

  // Compulsory parts of nearly-decided, still-open objects.
  struct Soft {
    std::size_t owner;
    BitMatrix mask;
    Rect box;
  };
  std::vector<Soft> soft;
  if (options_.use_compulsory_parts) {
    for (std::size_t j = 0; j < objects_.size(); ++j) {
      const GeostObject& object = objects_[j];
      const cp::Domain& dom = space.dom(object.var());
      if (dom.assigned() || dom.size() > options_.compulsory_threshold)
        continue;
      BitMatrix part(height_, width_);
      bool first = true;
      Rect box{};
      dom.for_each([&](int value) {
        const Placement& p = object.placement(value);
        const ShapeFootprint& shape = object.footprint_of(value);
        if (first) {
          part.or_shifted(shape.mask(), p.y, p.x);
          box = object.bbox_of(value);
          first = false;
        } else {
          BitMatrix this_one(height_, width_);
          this_one.or_shifted(shape.mask(), p.y, p.x);
          part.and_with(this_one);
          box = box.intersection(object.bbox_of(value));
        }
      });
      if (part.popcount() > 0)
        soft.push_back(Soft{j, std::move(part), box});
    }
  }

  // Prune every open object against occupancy and others' compulsory
  // parts. Removals are collected per object (domain values ascend, so
  // the batch is already sorted).
  std::vector<int> removals;
  for (std::size_t j = 0; j < objects_.size(); ++j) {
    const GeostObject& object = objects_[j];
    if (space.assigned(object.var())) continue;
    removals.clear();
    space.dom(object.var()).for_each([&](int value) {
      const Rect box = object.bbox_of(value);
      const Placement& p = object.placement(value);
      const ShapeFootprint& shape = object.footprint_of(value);
      if (box.intersects(occupied_box) &&
          occupancy.intersects_shifted(shape.mask(), p.y, p.x)) {
        removals.push_back(value);
        return;
      }
      for (const Soft& s : soft) {
        if (s.owner == j || !box.intersects(s.box)) continue;
        if (s.mask.intersects_shifted(shape.mask(), p.y, p.x)) {
          removals.push_back(value);
          return;
        }
      }
    });
    if (!removals.empty()) {
      if (space.remove_values_sorted(object.var(), removals) ==
          cp::ModEvent::kFail)
        return cp::PropStatus::kFail;
    }
  }
  return cp::PropStatus::kFix;
}

}  // namespace

int post_non_overlap(cp::Space& space, std::vector<GeostObject> objects,
                     int region_width, int region_height,
                     const NonOverlapOptions& options) {
  RR_REQUIRE(region_width > 0 && region_height > 0,
             "non-overlap region must be non-degenerate");
  return space.post(std::make_unique<NonOverlap>(
      std::move(objects), region_width, region_height, options));
}

}  // namespace rr::geost
