// Resource-typed geost non-overlap propagator.
//
// Implements the sweep-style pruning of the geost kernel for 2-D objects
// with shape alternatives: placements of any object that would overlap the
// *definite* occupancy of other objects are removed. Definite occupancy is
//   (a) the footprints of assigned objects, and
//   (b) optionally, the compulsory part of nearly-decided objects — cells
//       occupied by every placement still in an object's domain.
// (b) is what makes this a sweep/forbidden-region kernel rather than plain
// forward checking, and is the lever the ablation bench A3 toggles.
//
// Two propagation engines share the same pruning semantics:
//   - incremental (default): an advised propagator that keeps the union
//     occupancy bitmap and per-object compulsory parts as trailed state.
//     An assignment ORs one footprint in, a backtrack rolls the propagator's
//     own trail back alongside the Space's, and each run only re-examines
//     placements against the *delta* occupancy and *grown* compulsory-part
//     cells since the previous run.
//   - from-scratch: rebuilds occupancy and all compulsory parts on every
//     propagate() call. Kept as the differential-testing oracle and as the
//     fallback when incrementality is disabled.
#pragma once

#include <vector>

#include "cp/space.hpp"
#include "geost/object.hpp"

namespace rr::geost {

struct NonOverlapOptions {
  /// Compute compulsory parts for unassigned objects (kernel mode). With
  /// false, only assigned objects prune (forward-checking mode).
  bool use_compulsory_parts = true;
  /// Compulsory parts are computed only for domains at most this large —
  /// larger domains essentially never have a non-empty compulsory part.
  int compulsory_threshold = 24;
  /// Event-driven incremental kernel (see header comment). Both engines
  /// reach the same fixpoints; false selects the from-scratch oracle.
  bool incremental = true;
  /// Batch anchor-feasibility kernel for the incremental engine's delta
  /// pruning: objects with large live domains test all their placements
  /// against one dilated conflict bitmap per shape instead of one
  /// intersects_shifted call per value. Removal sets are identical either
  /// way (false keeps the per-value loop, the differential oracle).
  bool batch_anchors = true;
  /// Live-domain size at which the batch kernel is considered at all;
  /// smaller domains keep the per-value path. Within the batch path the
  /// bitmaps are still built lazily — only once a shape has seen enough
  /// hazard-box hits to amortize the build (capped by this value), so
  /// small-delta propagations cost the same as the per-value path.
  int batch_threshold = 96;
};

/// Post the non-overlap constraint over `objects` on a region of
/// `region_width` x `region_height` cells. Objects are copied (their shape
/// lists are shared). Returns the propagator id.
int post_non_overlap(cp::Space& space, std::vector<GeostObject> objects,
                     int region_width, int region_height,
                     const NonOverlapOptions& options = {});

}  // namespace rr::geost
