// Batch anchor-feasibility kernels.
//
// An *anchor bitmap* is a BitMatrix over anchors: bit (y, x) talks about
// anchoring a shape's local origin at region cell (x, y). These kernels
// answer, for a whole region (or a row stripe of it) in one sweep, the
// predicates the per-anchor loops ask one anchor at a time:
//
//   fit:      avail.covers_shifted(shape_mask, y, x)    — erosion
//   conflict: occ.intersects_shifted(shape_mask, y, x)  — dilation
//
// Both reduce to windowed word operations (util/simd): one shift-AND /
// shift-OR per shape cell per anchor row covers 64 anchors at a time, so a
// full-region feasibility scan costs O(shape_cells * rows * words_per_row)
// word operations instead of O(anchors * shape_words) window gathers.
//
// Contract: every kernel is bit-identical to its scalar counterpart for
// every anchor in the bitmap — including anchors whose shape would hang
// over the region edge (covers false, intersects false). The per-anchor
// loops stay in the tree as differential oracles; tests and the
// bench/anchor_kernel harness cross-check the two on random fabrics.
#pragma once

#include <span>

#include "geost/footprint.hpp"
#include "util/bitmatrix.hpp"

namespace rr::geost {

/// Erode `fit` by availability: for every anchor row y in [row_lo, row_hi),
///   fit(y, x) = old_fit(y, x) && avail.covers_shifted(shape_mask, y, x).
/// Rows outside the stripe are untouched. `fit` and `avail` must share
/// dimensions; `shape_mask` must be non-empty.
void erode_fit(BitMatrix& fit, const BitMatrix& avail,
               const BitMatrix& shape_mask, int row_lo, int row_hi);

/// Dilate occupancy into `conflict`: for every anchor row y in
/// [row_lo, row_hi),
///   conflict(y, x) = old(y, x) || occ.intersects_shifted(shape_mask, y, x).
/// Rows outside the stripe are untouched. `conflict` and `occ` must share
/// dimensions.
void accumulate_conflicts(BitMatrix& conflict, const BitMatrix& occ,
                          const BitMatrix& shape_mask, int row_lo, int row_hi);

/// Candidate-anchor bitmap of `shape` over per-resource availability masks:
/// bit (y, x) is set iff anchoring the shape at (x, y) places every typed
/// cell on an available cell of the matching resource — the batch form of
/// compute_valid_anchors (exactly the same anchor set).
[[nodiscard]] BitMatrix batch_valid_anchors(
    std::span<const BitMatrix> masks_by_resource, const ShapeFootprint& shape);

}  // namespace rr::geost
