// Polymorphic geost objects.
//
// A geost object has a set of alternative shapes (the module's design
// alternatives) and a position. We encode the pair (shape id, anchor) in a
// single *placement variable*: value v of the variable means "use
// table[v].shape anchored at (table[v].x, table[v].y)". The table is built
// from resource-compatible anchors only (compute_valid_anchors), which is
// how the paper's constraints (2) and (3) become the initial domain, and
// lets one variable carry the full polymorphism of the object.
#pragma once

#include <memory>
#include <vector>

#include "cp/space.hpp"
#include "geost/footprint.hpp"

namespace rr::geost {

/// One admissible (shape, anchor) pair of an object.
struct Placement {
  int shape = 0;  // index into the object's shape list
  int x = 0;      // anchor: where the shape's local (0,0) lands
  int y = 0;

  bool operator==(const Placement&) const noexcept = default;
};

/// Shared, immutable shape list. Shared so portfolio workers can reference
/// one copy across threads.
using ShapeList = std::shared_ptr<const std::vector<ShapeFootprint>>;

class GeostObject {
 public:
  GeostObject() = default;
  GeostObject(cp::VarId var, ShapeList shapes, std::vector<Placement> table)
      : var_(var), shapes_(std::move(shapes)), table_(std::move(table)) {}

  [[nodiscard]] cp::VarId var() const noexcept { return var_; }
  [[nodiscard]] const std::vector<ShapeFootprint>& shapes() const noexcept {
    return *shapes_;
  }
  [[nodiscard]] const ShapeList& shape_list() const noexcept { return shapes_; }
  [[nodiscard]] const std::vector<Placement>& table() const noexcept {
    return table_;
  }

  [[nodiscard]] const Placement& placement(int value) const noexcept {
    RR_ASSERT(value >= 0 && value < static_cast<int>(table_.size()));
    return table_[static_cast<std::size_t>(value)];
  }

  [[nodiscard]] const ShapeFootprint& footprint_of(int value) const noexcept {
    return shapes()[static_cast<std::size_t>(placement(value).shape)];
  }

  /// Bounding box of placement `value` in region coordinates.
  [[nodiscard]] Rect bbox_of(int value) const noexcept {
    const Placement& p = placement(value);
    return footprint_of(value).bounding_box().translated(Point{p.x, p.y});
  }

  /// Rightmost occupied column + 1 for placement `value` — the quantity the
  /// paper's minimization objective (eq. 6) bounds.
  [[nodiscard]] int extent_x_of(int value) const noexcept {
    return bbox_of(value).right();
  }

  /// Extent table parallel to the placement table (for element constraints).
  [[nodiscard]] std::vector<int> extent_table() const;

  /// Minimum cell count over all shapes still placeable (whole table).
  [[nodiscard]] int min_area() const;

 private:
  cp::VarId var_ = cp::kNoVar;
  ShapeList shapes_;
  std::vector<Placement> table_;
};

/// Flatten per-shape anchor lists into a placement table sorted by
/// (x-extent, x, y, shape) — "bottom-left" order, so that increasing table
/// index is the natural greedy/value-heuristic order. Shared by the CP
/// placer and the greedy baseline.
[[nodiscard]] std::vector<Placement> sorted_placement_table(
    const std::vector<ShapeFootprint>& shapes,
    std::span<const std::vector<Point>> anchors_per_shape);

/// Build an object and its placement variable on `space` from per-shape
/// anchor lists. Shapes with no anchors contribute no placements; an object
/// whose table ends up empty is unplaceable — the space is failed and the
/// returned object has an empty table.
GeostObject make_object(cp::Space& space, ShapeList shapes,
                        std::span<const std::vector<Point>> anchors_per_shape);

/// Same, but from an already-sorted placement table (see
/// sorted_placement_table) — lets callers cache tables across model builds.
GeostObject make_object_from_table(cp::Space& space, ShapeList shapes,
                                   std::vector<Placement> table);

}  // namespace rr::geost
