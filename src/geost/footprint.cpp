#include "geost/footprint.hpp"

#include <algorithm>
#include <map>

#include "geost/anchor_kernel.hpp"
#include "util/error.hpp"

namespace rr::geost {

ShapeFootprint ShapeFootprint::from_typed(std::vector<TypedCells> groups) {
  RR_REQUIRE(!groups.empty(), "shape must have at least one tile set");
  // Merge by resource.
  std::map<int, std::vector<Point>> by_resource;
  std::vector<Point> all;
  for (const TypedCells& group : groups) {
    RR_REQUIRE(!group.cells.empty(), "tile set must be non-empty (n > 0)");
    RR_REQUIRE(group.resource >= 0, "resource identifiers must be >= 0");
    auto& bucket = by_resource[group.resource];
    for (const Point& p : group.cells.cells()) {
      bucket.push_back(p);
      all.push_back(p);
    }
  }
  const std::size_t total = all.size();
  CellSet all_set(std::move(all), /*normalize=*/false);
  RR_REQUIRE(all_set.size() == total,
             "shape tile sets must not overlap: each tile has one resource");

  ShapeFootprint fp;
  // Normalize everything jointly so the union's bbox origin is (0, 0).
  const Rect raw_box = all_set.bounding_box();
  const Point shift{-raw_box.x, -raw_box.y};
  fp.all_ = all_set.translated(shift);
  fp.bbox_ = fp.all_.bounding_box();
  fp.mask_ = BitMatrix(fp.bbox_.height, fp.bbox_.width);
  for (const Point& p : fp.all_.cells()) fp.mask_.set(p.y, p.x, true);

  for (auto& [resource, cells] : by_resource) {
    CellSet set =
        CellSet(std::move(cells), /*normalize=*/false).translated(shift);
    BitMatrix mask(fp.bbox_.height, fp.bbox_.width);
    for (const Point& p : set.cells()) mask.set(p.y, p.x, true);
    fp.typed_.push_back(TypedCells{resource, std::move(set)});
    fp.typed_masks_.push_back(std::move(mask));
  }
  return fp;
}

int ShapeFootprint::demand(int resource) const noexcept {
  for (const TypedCells& group : typed_) {
    if (group.resource == resource)
      return static_cast<int>(group.cells.size());
  }
  return 0;
}

std::vector<Point> compute_valid_anchors(
    std::span<const BitMatrix> masks_by_resource,
    const ShapeFootprint& shape) {
  if (masks_by_resource.empty()) return {};
  const BitMatrix fit = batch_valid_anchors(masks_by_resource, shape);
  std::vector<Point> anchors;
  // Sorted by (x, y): x outer so the default bottom-left value ordering of
  // the placer (increasing placement index) minimizes x first. Bits outside
  // the valid anchor window are clear by construction, so the scan can stop
  // at the window edge.
  const Rect box = shape.bounding_box();
  for (int x = 0; x + box.width <= fit.cols(); ++x) {
    for (int y = 0; y + box.height <= fit.rows(); ++y) {
      if (fit.get(y, x)) anchors.push_back(Point{x, y});
    }
  }
  return anchors;
}

std::vector<Point> compute_valid_anchors_scalar(
    std::span<const BitMatrix> masks_by_resource,
    const ShapeFootprint& shape) {
  if (masks_by_resource.empty()) return {};
  const int region_h = masks_by_resource.front().rows();
  const int region_w = masks_by_resource.front().cols();
  for (const BitMatrix& m : masks_by_resource) {
    RR_REQUIRE(m.rows() == region_h && m.cols() == region_w,
               "all resource masks must share the region dimensions");
  }
  const Rect box = shape.bounding_box();
  std::vector<Point> anchors;
  for (int x = 0; x + box.width <= region_w; ++x) {
    for (int y = 0; y + box.height <= region_h; ++y) {
      bool ok = true;
      for (std::size_t g = 0; g < shape.typed().size() && ok; ++g) {
        const int resource = shape.typed()[g].resource;
        if (resource >= static_cast<int>(masks_by_resource.size())) {
          ok = false;
          break;
        }
        ok = masks_by_resource[static_cast<std::size_t>(resource)]
                 .covers_shifted(shape.typed_masks()[g], y, x);
      }
      if (ok) anchors.push_back(Point{x, y});
    }
  }
  return anchors;
}

}  // namespace rr::geost
