// The partial region (§III.B): the part of the device offered to
// reconfigurable modules, with per-resource availability masks.
//
// A PartialRegion pins down its own coordinate system: local (0,0) is the
// bottom-left tile of the region window on the fabric. Availability masks
// are what the geost kernel consumes to compute valid anchors.
#pragma once

#include <array>
#include <memory>
#include <vector>

#include "fpga/fabric.hpp"
#include "fpga/faults.hpp"
#include "util/bitmatrix.hpp"

namespace rr::fpga {

class PartialRegion {
 public:
  /// The whole fabric as one region. Static tiles are unavailable.
  explicit PartialRegion(std::shared_ptr<const Fabric> fabric);

  /// A rectangular window of the fabric (the reconfigurable partition of
  /// Fig. 4a/4c). The window must lie inside the fabric.
  PartialRegion(std::shared_ptr<const Fabric> fabric, const Rect& window);

  [[nodiscard]] int width() const noexcept { return window_.width; }
  [[nodiscard]] int height() const noexcept { return window_.height; }
  [[nodiscard]] const Rect& window() const noexcept { return window_; }
  [[nodiscard]] const Fabric& fabric() const noexcept { return *fabric_; }
  [[nodiscard]] const std::shared_ptr<const Fabric>& fabric_ptr()
      const noexcept {
    return fabric_;
  }

  /// Block an additional rectangle (region-local coordinates) — e.g. a
  /// second static island. Clipped to the region.
  void block(const Rect& local_rect);

  /// Block every set cell of a region-shaped bitmap (rows by y, columns by
  /// x). This is how the online defragmenter carves live-module occupancy
  /// out of a region copy before re-placing a relocation set.
  void block_mask(const BitMatrix& mask);

  /// Replace the fault overlay with the current state of `faults` (a
  /// fabric-sized map; the region window is extracted). Faulty tiles drop
  /// out of the availability masks exactly like blocked tiles, so every
  /// placer layered on the region refuses them — but unlike block(), the
  /// overlay is *replaced* on each call: repaired transient faults return
  /// tiles to service. An all-healthy map restores pre-fault availability.
  void apply_faults(const FaultMap& faults);

  /// Replace the fault overlay with a region-shaped bitmap directly.
  void set_fault_mask(const BitMatrix& mask);

  /// Currently faulty tiles (region-local, rows by y, columns by x).
  [[nodiscard]] const BitMatrix& fault_mask() const noexcept {
    return faulty_;
  }

  /// Resource type at region-local (x, y).
  [[nodiscard]] ResourceType at(int x, int y) const noexcept {
    return fabric_->at(x + window_.x, y + window_.y);
  }

  /// True when local (x, y) is inside the region, not blocked, and not a
  /// static tile.
  [[nodiscard]] bool available(int x, int y) const noexcept;

  /// Per-resource availability bitmaps (indexed by int(ResourceType), rows
  /// by y, columns by x) — the geost kernel's view of the region.
  [[nodiscard]] const std::vector<BitMatrix>& masks() const noexcept {
    return masks_;
  }

  /// Available tiles per resource type.
  [[nodiscard]] std::array<long, kNumResourceTypes> available_counts() const;

  /// Total available tiles (any placeable resource).
  [[nodiscard]] long total_available() const;

  /// Available tiles with x < columns (used for spanned-area utilization).
  [[nodiscard]] long available_in_columns(int columns) const;

 private:
  void rebuild_masks();

  std::shared_ptr<const Fabric> fabric_;
  Rect window_{};
  BitMatrix blocked_;  // locally blocked tiles (beyond static fabric tiles)
  BitMatrix faulty_;   // fault overlay (replaced, not accumulated)
  std::vector<BitMatrix> masks_;
};

}  // namespace rr::fpga
