// Fabric description format (.fdf) — the textual stand-in for the partial
// region specification a floorplanning tool would emit (Fig. 2).
//
//   # comment
//   fabric <name> <width> <height>
//   row <y> <width characters, one resource char per tile>
//   static <x> <y> <w> <h>
//   ...
//
// Every row 0..height-1 must appear exactly once; resource characters are
// those of resource_char(). Rows may appear in any order. `static`
// rectangles retype the covered tiles to kStatic after all rows are
// painted; a rectangle reaching outside the fabric or overlapping another
// static rectangle is rejected with a line-numbered error.
#pragma once

#include <iosfwd>
#include <string>

#include "fpga/fabric.hpp"

namespace rr::fpga {

/// Parse a fabric; throws rr::InvalidInput with a line-numbered message on
/// malformed input.
[[nodiscard]] Fabric parse_fdf(std::istream& in);
[[nodiscard]] Fabric parse_fdf_string(const std::string& text);
[[nodiscard]] Fabric load_fdf(const std::string& path);

/// Serialize; parse_fdf(write_fdf(f)) == f.
void write_fdf(std::ostream& out, const Fabric& fabric);
[[nodiscard]] std::string write_fdf_string(const Fabric& fabric);
void save_fdf(const std::string& path, const Fabric& fabric);

}  // namespace rr::fpga
