#include "fpga/fabric.hpp"

namespace rr::fpga {

Fabric::Fabric(int width, int height, ResourceType fill, std::string name)
    : width_(width), height_(height), name_(std::move(name)) {
  RR_REQUIRE(width > 0 && height > 0, "fabric dimensions must be positive");
  tiles_.assign(
      static_cast<std::size_t>(width) * static_cast<std::size_t>(height),
      fill);
}

void Fabric::set_column(int x, ResourceType t) {
  RR_ASSERT(x >= 0 && x < width_);
  for (int y = 0; y < height_; ++y) set(x, y, t);
}

void Fabric::set_rect(const Rect& r, ResourceType t) {
  RR_ASSERT(!r.empty());
  const Rect clipped = r.intersection(bounds());
  RR_ASSERT(!clipped.empty());  // fully out of bounds: nothing would change
  for (int y = clipped.y; y < clipped.top(); ++y)
    for (int x = clipped.x; x < clipped.right(); ++x) set(x, y, t);
}

std::array<long, kNumResourceTypes> Fabric::resource_counts() const {
  std::array<long, kNumResourceTypes> counts{};
  for (ResourceType t : tiles_) ++counts[static_cast<std::size_t>(t)];
  return counts;
}

std::string Fabric::to_string() const {
  std::string out;
  out.reserve(static_cast<std::size_t>(height_) *
              (static_cast<std::size_t>(width_) + 1));
  for (int y = height_ - 1; y >= 0; --y) {
    for (int x = 0; x < width_; ++x) out.push_back(resource_char(at(x, y)));
    out.push_back('\n');
  }
  return out;
}

}  // namespace rr::fpga
