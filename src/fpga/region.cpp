#include "fpga/region.hpp"

namespace rr::fpga {

PartialRegion::PartialRegion(std::shared_ptr<const Fabric> fabric)
    : PartialRegion(fabric, fabric ? fabric->bounds() : Rect{}) {}

PartialRegion::PartialRegion(std::shared_ptr<const Fabric> fabric,
                             const Rect& window)
    : fabric_(std::move(fabric)), window_(window) {
  RR_REQUIRE(fabric_ != nullptr, "partial region needs a fabric");
  RR_REQUIRE(!window_.empty() && fabric_->bounds().contains(window_),
             "region window must lie inside the fabric");
  blocked_ = BitMatrix(window_.height, window_.width);
  faulty_ = BitMatrix(window_.height, window_.width);
  rebuild_masks();
}

void PartialRegion::block(const Rect& local_rect) {
  const Rect clipped =
      local_rect.intersection(Rect{0, 0, window_.width, window_.height});
  for (int y = clipped.y; y < clipped.top(); ++y)
    for (int x = clipped.x; x < clipped.right(); ++x)
      blocked_.set(y, x, true);
  rebuild_masks();
}

void PartialRegion::block_mask(const BitMatrix& mask) {
  RR_REQUIRE(mask.rows() == window_.height && mask.cols() == window_.width,
             "block_mask needs a region-shaped bitmap");
  blocked_.or_with(mask);
  rebuild_masks();
}

void PartialRegion::apply_faults(const FaultMap& faults) {
  RR_REQUIRE(faults.width() == fabric_->width() &&
                 faults.height() == fabric_->height(),
             "fault map must match the fabric dimensions");
  for (int y = 0; y < window_.height; ++y)
    for (int x = 0; x < window_.width; ++x)
      faulty_.set(y, x, faults.faulty(x + window_.x, y + window_.y));
  rebuild_masks();
}

void PartialRegion::set_fault_mask(const BitMatrix& mask) {
  RR_REQUIRE(mask.rows() == window_.height && mask.cols() == window_.width,
             "fault mask must be region-shaped");
  faulty_ = mask;
  rebuild_masks();
}

bool PartialRegion::available(int x, int y) const noexcept {
  if (x < 0 || x >= window_.width || y < 0 || y >= window_.height) return false;
  if (blocked_.get(y, x) || faulty_.get(y, x)) return false;
  return placeable(at(x, y));
}

void PartialRegion::rebuild_masks() {
  masks_.assign(static_cast<std::size_t>(kNumResourceTypes),
                BitMatrix(window_.height, window_.width));
  for (int y = 0; y < window_.height; ++y) {
    for (int x = 0; x < window_.width; ++x) {
      if (!available(x, y)) continue;
      masks_[static_cast<std::size_t>(at(x, y))].set(y, x, true);
    }
  }
}

std::array<long, kNumResourceTypes> PartialRegion::available_counts() const {
  std::array<long, kNumResourceTypes> counts{};
  for (int k = 0; k < kNumResourceTypes; ++k)
    counts[static_cast<std::size_t>(k)] =
        static_cast<long>(masks_[static_cast<std::size_t>(k)].popcount());
  return counts;
}

long PartialRegion::total_available() const {
  long total = 0;
  for (long c : available_counts()) total += c;
  return total;
}

long PartialRegion::available_in_columns(int columns) const {
  long total = 0;
  const int limit = std::min(columns, window_.width);
  for (int y = 0; y < window_.height; ++y)
    for (int x = 0; x < limit; ++x)
      if (available(x, y)) ++total;
  return total;
}

}  // namespace rr::fpga
