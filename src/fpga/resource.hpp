// FPGA resource types.
//
// The paper's partial-region model assigns every tile an internal resource
// type (§III.B): logic (CLB), embedded memory (BRAM), multipliers/DSP, IO
// and clock resources, plus "not available" for tiles claimed by the static
// design. The integer values double as indices into per-resource masks.
#pragma once

#include <optional>
#include <string_view>

namespace rr::fpga {

enum class ResourceType : int {
  kClb = 0,      // configurable logic block
  kBram = 1,     // embedded block memory
  kDsp = 2,      // multiplier / DSP block
  kIo = 3,       // input/output resources
  kClock = 4,    // clock management resources
  kBusMacro = 5, // on-FPGA communication macro (ReCoBus-style bus lane)
  kStatic = 6,   // occupied by the static region: not available for modules
  kCount = 7,
};

inline constexpr int kNumResourceTypes = static_cast<int>(ResourceType::kCount);

/// Resource types modules may actually request. kIo/kClock exist on the
/// fabric and constrain placement (modules cannot sit on them unless they
/// ask for them); kStatic can never be requested.
[[nodiscard]] constexpr bool placeable(ResourceType t) noexcept {
  return t != ResourceType::kStatic && t != ResourceType::kCount;
}

/// One display/parse character per resource
/// ('C', 'B', 'D', 'I', 'K', 'M', 'S').
[[nodiscard]] char resource_char(ResourceType t) noexcept;

/// Inverse of resource_char; also accepts lower case. nullopt when unknown.
[[nodiscard]] std::optional<ResourceType> resource_from_char(char c) noexcept;

[[nodiscard]] std::string_view resource_name(ResourceType t) noexcept;

}  // namespace rr::fpga
