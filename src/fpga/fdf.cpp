#include "fpga/fdf.hpp"

#include <fstream>
#include <sstream>
#include <vector>

#include "util/strings.hpp"

namespace rr::fpga {
namespace {

[[noreturn]] void fail(int line, const std::string& message) {
  throw InvalidInput("fdf:" + std::to_string(line) + ": " + message);
}

}  // namespace

Fabric parse_fdf(std::istream& in) {
  std::string line;
  int line_no = 0;
  Fabric fabric;
  bool have_header = false;
  std::vector<bool> row_seen;
  std::vector<Rect> static_rects;

  while (std::getline(in, line)) {
    ++line_no;
    // Accept CRLF line endings regardless of how trim() treats '\r'.
    if (!line.empty() && line.back() == '\r') line.pop_back();
    const std::string_view text = trim(line);
    if (text.empty() || text.front() == '#') continue;
    const auto fields = split_ws(text);
    if (fields[0] == "fabric") {
      if (have_header) fail(line_no, "duplicate fabric header");
      if (fields.size() != 4) fail(line_no, "expected: fabric <name> <w> <h>");
      const auto w = parse_int(fields[2]);
      const auto h = parse_int(fields[3]);
      if (!w || !h || *w <= 0 || *h <= 0)
        fail(line_no, "fabric dimensions must be positive integers");
      fabric = Fabric(static_cast<int>(*w), static_cast<int>(*h),
                      ResourceType::kClb, std::string(fields[1]));
      row_seen.assign(static_cast<std::size_t>(*h), false);
      have_header = true;
    } else if (fields[0] == "row") {
      if (!have_header) fail(line_no, "row before fabric header");
      if (fields.size() != 3) fail(line_no, "expected: row <y> <tiles>");
      const auto y = parse_int(fields[1]);
      if (!y || *y < 0 || *y >= fabric.height())
        fail(line_no, "row index out of range");
      const std::string_view tiles = fields[2];
      if (static_cast<int>(tiles.size()) != fabric.width())
        fail(line_no, "row must have exactly width tiles");
      if (row_seen[static_cast<std::size_t>(*y)])
        fail(line_no, "duplicate row " + std::to_string(*y));
      row_seen[static_cast<std::size_t>(*y)] = true;
      for (int x = 0; x < fabric.width(); ++x) {
        const auto t = resource_from_char(tiles[static_cast<std::size_t>(x)]);
        if (!t) fail(line_no, std::string("unknown resource character '") +
                                  tiles[static_cast<std::size_t>(x)] +
                                  "' (column " + std::to_string(x + 1) + ")");
        fabric.set(x, static_cast<int>(*y), *t);
      }
    } else if (fields[0] == "static") {
      // Static-region rectangle: retypes the covered tiles to kStatic after
      // all rows are painted. Out-of-bounds and mutually overlapping
      // rectangles are rejected outright — silently clipping or
      // double-claiming tiles hides floorplan errors.
      if (!have_header) fail(line_no, "static before fabric header");
      if (fields.size() != 5) fail(line_no, "expected: static <x> <y> <w> <h>");
      const auto x = parse_int(fields[1]);
      const auto y = parse_int(fields[2]);
      const auto w = parse_int(fields[3]);
      const auto h = parse_int(fields[4]);
      if (!x || !y || !w || !h)
        fail(line_no, "static rectangle fields must be integers");
      if (*w <= 0 || *h <= 0)
        fail(line_no, "static rectangle dimensions must be positive");
      const Rect rect{static_cast<int>(*x), static_cast<int>(*y),
                      static_cast<int>(*w), static_cast<int>(*h)};
      if (!fabric.bounds().contains(rect))
        fail(line_no, "static rectangle out of bounds");
      for (const Rect& prior : static_rects) {
        if (rect.intersects(prior))
          fail(line_no, "static rectangle overlaps an earlier one");
      }
      static_rects.push_back(rect);
    } else {
      fail(line_no, "unknown directive '" + std::string(fields[0]) + "'");
    }
  }
  if (!have_header) {
    // Distinguish "no input at all" from "input without a header": the
    // former gets a message that does not point at a bogus line 0.
    if (line_no == 0) throw InvalidInput("fdf: empty fabric file");
    fail(line_no, "missing fabric header");
  }
  for (std::size_t y = 0; y < row_seen.size(); ++y) {
    if (!row_seen[y])
      fail(line_no, "missing row " + std::to_string(y));
  }
  for (const Rect& rect : static_rects)
    fabric.set_rect(rect, ResourceType::kStatic);
  return fabric;
}

Fabric parse_fdf_string(const std::string& text) {
  std::istringstream in(text);
  return parse_fdf(in);
}

Fabric load_fdf(const std::string& path) {
  std::ifstream in(path);
  RR_REQUIRE(in.good(), "cannot open fabric file: " + path);
  return parse_fdf(in);
}

void write_fdf(std::ostream& out, const Fabric& fabric) {
  out << "# rrplace fabric description\n";
  out << "fabric " << (fabric.name().empty() ? "fabric" : fabric.name()) << ' '
      << fabric.width() << ' ' << fabric.height() << '\n';
  for (int y = 0; y < fabric.height(); ++y) {
    out << "row " << y << ' ';
    for (int x = 0; x < fabric.width(); ++x)
      out << resource_char(fabric.at(x, y));
    out << '\n';
  }
}

std::string write_fdf_string(const Fabric& fabric) {
  std::ostringstream out;
  write_fdf(out, fabric);
  return out.str();
}

void save_fdf(const std::string& path, const Fabric& fabric) {
  std::ofstream out(path);
  RR_REQUIRE(out.good(), "cannot write fabric file: " + path);
  write_fdf(out, fabric);
}

}  // namespace rr::fpga
