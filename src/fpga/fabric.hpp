// The device model: a W x H grid of typed tiles.
//
// Coordinates follow the rest of the library: x is the column (the axis the
// placer minimizes along), y the row. Tile (0, 0) is the bottom-left corner.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "fpga/resource.hpp"
#include "geo/rect.hpp"
#include "util/error.hpp"

namespace rr::fpga {

class Fabric {
 public:
  Fabric() = default;

  /// A fabric initially made entirely of `fill` tiles.
  Fabric(int width, int height, ResourceType fill = ResourceType::kClb,
         std::string name = "fabric");

  [[nodiscard]] int width() const noexcept { return width_; }
  [[nodiscard]] int height() const noexcept { return height_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] Rect bounds() const noexcept {
    return Rect{0, 0, width_, height_};
  }

  [[nodiscard]] ResourceType at(int x, int y) const noexcept {
    RR_ASSERT(in_bounds(x, y));
    return tiles_[index(x, y)];
  }
  void set(int x, int y, ResourceType t) noexcept {
    RR_ASSERT(in_bounds(x, y));
    tiles_[index(x, y)] = t;
  }

  /// Overwrite a whole column with one resource type. The column index must
  /// be in bounds (RR_ASSERT).
  void set_column(int x, ResourceType t);

  /// Overwrite a rectangle with one resource type.
  ///
  /// Clipping contract: a rectangle partially outside the fabric is clipped
  /// to the fabric bounds — only the in-bounds tiles are written. An empty
  /// rectangle or one lying fully outside the fabric is a caller bug (there
  /// is nothing to write, which has always silently masked bad coordinates)
  /// and fails an RR_ASSERT.
  void set_rect(const Rect& r, ResourceType t);

  [[nodiscard]] bool in_bounds(int x, int y) const noexcept {
    return x >= 0 && x < width_ && y >= 0 && y < height_;
  }

  /// Tile count per resource type, indexed by static_cast<int>(type).
  [[nodiscard]] std::array<long, kNumResourceTypes> resource_counts() const;

  /// Multi-line picture, top row first, one resource char per tile.
  [[nodiscard]] std::string to_string() const;

  bool operator==(const Fabric& other) const noexcept {
    return width_ == other.width_ && height_ == other.height_ &&
           tiles_ == other.tiles_;
  }

 private:
  [[nodiscard]] std::size_t index(int x, int y) const noexcept {
    return static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) +
           static_cast<std::size_t>(x);
  }

  int width_ = 0;
  int height_ = 0;
  std::string name_;
  std::vector<ResourceType> tiles_;
};

}  // namespace rr::fpga
