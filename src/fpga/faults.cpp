#include "fpga/faults.hpp"

#include <fstream>
#include <sstream>

#include "util/strings.hpp"

namespace rr::fpga {
namespace {

[[noreturn]] void fail(int line, const std::string& message) {
  throw InvalidInput("fft:" + std::to_string(line) + ": " + message);
}

const char* kind_word(FaultKind kind) {
  return kind == FaultKind::kPermanent ? "permanent" : "transient";
}

}  // namespace

FaultMap::FaultMap(int width, int height) : width_(width), height_(height) {
  RR_REQUIRE(width > 0 && height > 0, "fault map dimensions must be positive");
  state_.assign(
      static_cast<std::size_t>(width) * static_cast<std::size_t>(height),
      kHealthy);
}

FaultMap::FaultMap(const Fabric& fabric)
    : FaultMap(fabric.width(), fabric.height()) {}

void FaultMap::inject(int x, int y, FaultKind kind) {
  std::uint8_t& tile = state_[index(x, y)];
  const std::uint8_t next =
      kind == FaultKind::kPermanent ? kPermanentState : kTransientState;
  if (next > tile) tile = next;  // a permanent fault never downgrades
}

void FaultMap::inject_column(int x, FaultKind kind) {
  RR_REQUIRE(x >= 0 && x < width_, "fault column out of bounds");
  for (int y = 0; y < height_; ++y) inject(x, y, kind);
}

void FaultMap::inject_rect(const Rect& rect, FaultKind kind) {
  RR_REQUIRE(!rect.empty() && (Rect{0, 0, width_, height_}.contains(rect)),
             "fault rectangle out of bounds");
  for (int y = rect.y; y < rect.top(); ++y)
    for (int x = rect.x; x < rect.right(); ++x) inject(x, y, kind);
}

void FaultMap::repair(int x, int y) {
  std::uint8_t& tile = state_[index(x, y)];
  if (tile == kTransientState) tile = kHealthy;
}

void FaultMap::repair_transient() {
  for (std::uint8_t& tile : state_)
    if (tile == kTransientState) tile = kHealthy;
}

void FaultMap::apply(const FaultEvent& event) {
  switch (event.op) {
    case FaultEvent::Op::kTile:
      inject_rect(event.rect, event.kind);
      break;
    case FaultEvent::Op::kColumn:
      inject_column(event.rect.x, event.kind);
      break;
    case FaultEvent::Op::kRect:
      inject_rect(event.rect, event.kind);
      break;
    case FaultEvent::Op::kRepairTile:
      RR_REQUIRE(
          !event.rect.empty() &&
              (Rect{0, 0, width_, height_}.contains(event.rect)),
          "repair coordinates out of bounds");
      repair(event.rect.x, event.rect.y);
      break;
    case FaultEvent::Op::kRepairTransient:
      repair_transient();
      break;
  }
}

long FaultMap::faulty_count() const noexcept {
  long count = 0;
  for (const std::uint8_t tile : state_) count += tile != kHealthy;
  return count;
}

long FaultMap::permanent_count() const noexcept {
  long count = 0;
  for (const std::uint8_t tile : state_) count += tile == kPermanentState;
  return count;
}

long FaultMap::transient_count() const noexcept {
  long count = 0;
  for (const std::uint8_t tile : state_) count += tile == kTransientState;
  return count;
}

BitMatrix FaultMap::mask() const {
  BitMatrix out(height_, width_);
  for (int y = 0; y < height_; ++y)
    for (int x = 0; x < width_; ++x)
      if (faulty(x, y)) out.set(y, x, true);
  return out;
}

std::vector<FaultEvent> FaultMap::to_events() const {
  std::vector<FaultEvent> events;
  for (const FaultKind kind : {FaultKind::kPermanent, FaultKind::kTransient}) {
    for (int y = 0; y < height_; ++y) {
      for (int x = 0; x < width_; ++x) {
        if (!faulty(x, y)) continue;
        if ((kind == FaultKind::kPermanent) != permanent(x, y)) continue;
        events.push_back(FaultEvent{FaultEvent::Op::kTile, kind,
                                    Rect{x, y, 1, 1}});
      }
    }
  }
  return events;
}

FaultTrace parse_fault_trace(std::istream& in) {
  FaultTrace trace;
  std::string line;
  int line_no = 0;
  bool have_header = false;
  const auto bounds = [&] { return Rect{0, 0, trace.width, trace.height}; };

  auto parse_kind = [&](const std::vector<std::string_view>& fields,
                        std::size_t at) -> FaultKind {
    if (fields.size() <= at) return FaultKind::kPermanent;
    if (fields[at] == "permanent") return FaultKind::kPermanent;
    if (fields[at] == "transient") return FaultKind::kTransient;
    fail(line_no, "fault kind must be 'permanent' or 'transient', got '" +
                      std::string(fields[at]) + "'");
  };
  auto parse_coord = [&](std::string_view field, const char* what) -> int {
    const auto value = parse_int(field);
    if (!value) fail(line_no, std::string(what) + " must be an integer");
    return static_cast<int>(*value);
  };

  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    const std::string_view text = trim(line);
    if (text.empty() || text.front() == '#') continue;
    const auto fields = split_ws(text);
    if (fields[0] == "faults") {
      if (have_header) fail(line_no, "duplicate faults header");
      if (fields.size() != 3) fail(line_no, "expected: faults <w> <h>");
      const auto w = parse_int(fields[1]);
      const auto h = parse_int(fields[2]);
      if (!w || !h || *w <= 0 || *h <= 0)
        fail(line_no, "fault trace dimensions must be positive integers");
      trace.width = static_cast<int>(*w);
      trace.height = static_cast<int>(*h);
      have_header = true;
      continue;
    }
    if (!have_header) fail(line_no, "event before faults header");
    FaultEvent event;
    if (fields[0] == "tile") {
      if (fields.size() != 3 && fields.size() != 4)
        fail(line_no, "expected: tile <x> <y> [permanent|transient]");
      event.op = FaultEvent::Op::kTile;
      event.rect = Rect{parse_coord(fields[1], "x"),
                        parse_coord(fields[2], "y"), 1, 1};
      event.kind = parse_kind(fields, 3);
      if (!bounds().contains(event.rect))
        fail(line_no, "tile coordinates out of bounds");
    } else if (fields[0] == "column") {
      if (fields.size() != 2 && fields.size() != 3)
        fail(line_no, "expected: column <x> [permanent|transient]");
      event.op = FaultEvent::Op::kColumn;
      const int x = parse_coord(fields[1], "x");
      event.rect = Rect{x, 0, 1, trace.height};
      event.kind = parse_kind(fields, 2);
      if (x < 0 || x >= trace.width)
        fail(line_no, "column index out of bounds");
    } else if (fields[0] == "rect") {
      if (fields.size() != 5 && fields.size() != 6)
        fail(line_no, "expected: rect <x> <y> <w> <h> [permanent|transient]");
      event.op = FaultEvent::Op::kRect;
      event.rect = Rect{parse_coord(fields[1], "x"),
                        parse_coord(fields[2], "y"),
                        parse_coord(fields[3], "w"),
                        parse_coord(fields[4], "h")};
      event.kind = parse_kind(fields, 5);
      if (event.rect.empty()) fail(line_no, "rect must be non-empty");
      if (!bounds().contains(event.rect))
        fail(line_no, "rect out of bounds");
    } else if (fields[0] == "repair") {
      if (fields.size() != 3) fail(line_no, "expected: repair <x> <y>");
      event.op = FaultEvent::Op::kRepairTile;
      event.rect = Rect{parse_coord(fields[1], "x"),
                        parse_coord(fields[2], "y"), 1, 1};
      if (!bounds().contains(event.rect))
        fail(line_no, "repair coordinates out of bounds");
    } else if (fields[0] == "repair-transient") {
      if (fields.size() != 1) fail(line_no, "expected: repair-transient");
      event.op = FaultEvent::Op::kRepairTransient;
    } else {
      fail(line_no, "unknown directive '" + std::string(fields[0]) + "'");
    }
    trace.events.push_back(event);
  }
  if (!have_header) {
    if (line_no == 0) throw InvalidInput("fft: empty fault trace");
    fail(line_no, "missing faults header");
  }
  return trace;
}

FaultTrace parse_fault_trace_string(const std::string& text) {
  std::istringstream in(text);
  return parse_fault_trace(in);
}

FaultTrace load_fault_trace(const std::string& path) {
  std::ifstream in(path);
  RR_REQUIRE(in.good(), "cannot open fault trace: " + path);
  return parse_fault_trace(in);
}

void write_fault_trace(std::ostream& out, const FaultTrace& trace) {
  out << "# rrplace fault trace\n";
  out << "faults " << trace.width << ' ' << trace.height << '\n';
  for (const FaultEvent& event : trace.events) {
    switch (event.op) {
      case FaultEvent::Op::kTile:
        out << "tile " << event.rect.x << ' ' << event.rect.y << ' '
            << kind_word(event.kind) << '\n';
        break;
      case FaultEvent::Op::kColumn:
        out << "column " << event.rect.x << ' ' << kind_word(event.kind)
            << '\n';
        break;
      case FaultEvent::Op::kRect:
        out << "rect " << event.rect.x << ' ' << event.rect.y << ' '
            << event.rect.width << ' ' << event.rect.height << ' '
            << kind_word(event.kind) << '\n';
        break;
      case FaultEvent::Op::kRepairTile:
        out << "repair " << event.rect.x << ' ' << event.rect.y << '\n';
        break;
      case FaultEvent::Op::kRepairTransient:
        out << "repair-transient\n";
        break;
    }
  }
}

std::string write_fault_trace_string(const FaultTrace& trace) {
  std::ostringstream out;
  write_fault_trace(out, trace);
  return out.str();
}

FaultMap fault_map_from_trace(const FaultTrace& trace) {
  FaultMap map(trace.width, trace.height);
  for (const FaultEvent& event : trace.events) map.apply(event);
  return map;
}

FaultTrace fault_trace_from_map(const FaultMap& map) {
  FaultTrace trace;
  trace.width = map.width();
  trace.height = map.height();
  trace.events = map.to_events();
  return trace;
}

}  // namespace rr::fpga
