#include "fpga/resource.hpp"

namespace rr::fpga {

char resource_char(ResourceType t) noexcept {
  switch (t) {
    case ResourceType::kClb: return 'C';
    case ResourceType::kBram: return 'B';
    case ResourceType::kDsp: return 'D';
    case ResourceType::kIo: return 'I';
    case ResourceType::kClock: return 'K';
    case ResourceType::kBusMacro: return 'M';
    case ResourceType::kStatic: return 'S';
    case ResourceType::kCount: break;
  }
  return '?';
}

std::optional<ResourceType> resource_from_char(char c) noexcept {
  switch (c) {
    case 'C': case 'c': return ResourceType::kClb;
    case 'B': case 'b': return ResourceType::kBram;
    case 'D': case 'd': return ResourceType::kDsp;
    case 'I': case 'i': return ResourceType::kIo;
    case 'K': case 'k': return ResourceType::kClock;
    case 'M': case 'm': return ResourceType::kBusMacro;
    case 'S': case 's': return ResourceType::kStatic;
    default: return std::nullopt;
  }
}

std::string_view resource_name(ResourceType t) noexcept {
  switch (t) {
    case ResourceType::kClb: return "CLB";
    case ResourceType::kBram: return "BRAM";
    case ResourceType::kDsp: return "DSP";
    case ResourceType::kIo: return "IO";
    case ResourceType::kClock: return "CLOCK";
    case ResourceType::kBusMacro: return "BUS";
    case ResourceType::kStatic: return "STATIC";
    case ResourceType::kCount: break;
  }
  return "?";
}

}  // namespace rr::fpga
