// Fabric fault model: per-tile healthy/faulty state layered over a Fabric.
//
// Runtime reconfigurable systems degrade in the field: single-event upsets
// flip configuration memory (transient faults, repairable by scrubbing or
// reconfiguration) and silicon defects kill tiles, columns, or clusters
// permanently. A FaultMap records that state *beside* the Fabric — the
// fabric stays the design-time description, the fault map is the runtime
// overlay — and PartialRegion::apply_faults() folds it into the
// availability masks every placer consumes, so a faulty tile is simply
// never offered as an anchor.
//
// Fault *traces* (.fft files) serialize timed injection/repair event
// sequences in the .fdf directive style:
//
//   # comment
//   faults <width> <height>
//   tile <x> <y> [permanent|transient]
//   column <x> [permanent|transient]
//   rect <x> <y> <w> <h> [permanent|transient]
//   repair <x> <y>
//   repair-transient
//
// The header is mandatory and every event is validated against it with a
// line-numbered error. A FaultMap round-trips through a trace of its
// surviving injections (write_fault_map / parse order-independent state).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "fpga/fabric.hpp"
#include "util/bitmatrix.hpp"

namespace rr::fpga {

enum class FaultKind : std::uint8_t {
  kTransient,  // SEU-style: repairable
  kPermanent,  // defect: never repairable
};

/// One timed fault-injection or repair event.
struct FaultEvent {
  enum class Op : std::uint8_t {
    kTile,             // rect is 1x1 at (x, y)
    kColumn,           // rect is column x, full height
    kRect,             // rectangular cluster
    kRepairTile,       // clear a transient fault at (x, y); rect is 1x1
    kRepairTransient,  // clear every transient fault
  };

  Op op = Op::kTile;
  FaultKind kind = FaultKind::kPermanent;
  Rect rect{};

  bool operator==(const FaultEvent&) const = default;
};

/// A parsed .fft file: fabric dimensions plus the event sequence.
struct FaultTrace {
  int width = 0;
  int height = 0;
  std::vector<FaultEvent> events;
};

/// Per-tile fault state over a width x height grid (fabric coordinates).
class FaultMap {
 public:
  FaultMap() = default;
  FaultMap(int width, int height);
  explicit FaultMap(const Fabric& fabric);

  [[nodiscard]] int width() const noexcept { return width_; }
  [[nodiscard]] int height() const noexcept { return height_; }

  [[nodiscard]] bool faulty(int x, int y) const noexcept {
    return state_[index(x, y)] != kHealthy;
  }
  /// True when (x, y) carries a permanent (unrepairable) fault.
  [[nodiscard]] bool permanent(int x, int y) const noexcept {
    return state_[index(x, y)] == kPermanentState;
  }

  /// Inject one fault. A permanent fault overrides a transient one on the
  /// same tile; a transient injection never downgrades a permanent fault.
  void inject(int x, int y, FaultKind kind);
  void inject_column(int x, FaultKind kind);
  /// The rectangle must lie fully inside the grid.
  void inject_rect(const Rect& rect, FaultKind kind);

  /// Clear a transient fault at (x, y); a permanent fault stays (repairing
  /// a defect is physically impossible), a healthy tile is a no-op.
  void repair(int x, int y);
  /// Clear every transient fault (configuration scrubbing).
  void repair_transient();

  /// Apply one event (dispatch over FaultEvent::Op).
  void apply(const FaultEvent& event);

  [[nodiscard]] long faulty_count() const noexcept;
  [[nodiscard]] long permanent_count() const noexcept;
  [[nodiscard]] long transient_count() const noexcept;

  /// Faulty-tile bitmap, rows by y and columns by x — the shape
  /// PartialRegion::apply_faults() consumes.
  [[nodiscard]] BitMatrix mask() const;

  /// The surviving state as injection events (permanent then transient,
  /// row-major): applying them to a fresh map reproduces *this.
  [[nodiscard]] std::vector<FaultEvent> to_events() const;

  bool operator==(const FaultMap& other) const noexcept = default;

 private:
  static constexpr std::uint8_t kHealthy = 0;
  static constexpr std::uint8_t kTransientState = 1;
  static constexpr std::uint8_t kPermanentState = 2;

  [[nodiscard]] std::size_t index(int x, int y) const noexcept {
    RR_ASSERT(x >= 0 && x < width_ && y >= 0 && y < height_);
    return static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) +
           static_cast<std::size_t>(x);
  }

  int width_ = 0;
  int height_ = 0;
  std::vector<std::uint8_t> state_;
};

/// Parse a fault trace; throws rr::InvalidInput with a line-numbered
/// message on malformed input (unknown op, missing header, out-of-bounds
/// coordinates, bad fault kind).
[[nodiscard]] FaultTrace parse_fault_trace(std::istream& in);
[[nodiscard]] FaultTrace parse_fault_trace_string(const std::string& text);
[[nodiscard]] FaultTrace load_fault_trace(const std::string& path);

/// Serialize; parse_fault_trace(write_fault_trace(t)) == t.
void write_fault_trace(std::ostream& out, const FaultTrace& trace);
[[nodiscard]] std::string write_fault_trace_string(const FaultTrace& trace);

/// Replay a whole trace into a map (dimensions from the trace header).
[[nodiscard]] FaultMap fault_map_from_trace(const FaultTrace& trace);
/// The map's surviving state as a trace; fault_map_from_trace() inverts it.
[[nodiscard]] FaultTrace fault_trace_from_map(const FaultMap& map);

}  // namespace rr::fpga
