// Synthetic fabric generators.
//
// Stand-ins for real device descriptions (see DESIGN.md, substitutions):
// the placement model only ever consumes the tile grid, so column-patterned
// grids modeled on Xilinx Virtex-family devices exercise the identical
// constraint structure. Three families:
//   - homogeneous: all CLB (the classical model the paper argues is dated)
//   - columnar:    regular BRAM/DSP columns (Virtex-II/-4 era)
//   - irregular:   jittered columns, interrupted by clock tiles and holes
//                  (current-generation heterogeneity per the paper's intro)
#pragma once

#include <cstdint>

#include "fpga/fabric.hpp"

namespace rr::fpga {

/// All-CLB fabric.
[[nodiscard]] Fabric make_homogeneous(int width, int height);

struct ColumnarSpec {
  /// Every `bram_period`-th column is a BRAM column (0 disables).
  int bram_period = 8;
  /// Column phase of the first BRAM column.
  int bram_offset = 4;
  /// Every `dsp_period`-th column is a DSP column (0 disables).
  int dsp_period = 16;
  int dsp_offset = 10;
  /// Place a clock column at the horizontal center.
  bool center_clock_column = true;
  /// IO columns at the left/right device edges.
  bool edge_io = true;
};

/// Regular columnar fabric (Virtex-II/-4 style).
[[nodiscard]] Fabric make_columnar(int width, int height,
                                   const ColumnarSpec& spec = {});

struct IrregularSpec {
  ColumnarSpec base{};
  /// Column jitter: each special column may shift by up to +/- this much.
  int jitter = 1;
  /// Probability that a special column is interrupted by a clock tile run.
  double interruption_probability = 0.35;
  /// Length of each interruption run, in tiles.
  int interruption_length = 2;
};

/// Irregular fabric: columnar layout with jittered columns and clock-tile
/// interruptions, seeded deterministically.
[[nodiscard]] Fabric make_irregular(int width, int height,
                                    const IrregularSpec& spec,
                                    std::uint64_t seed);

/// The default evaluation device used by the benches: an irregular
/// heterogeneous fabric sized so that the paper's 30-module workload spans
/// roughly half of it at optimal packing (leaving slack to measure
/// fragmentation), with a static region on the right flank as in Fig. 4(c).
[[nodiscard]] Fabric make_evaluation_device(std::uint64_t seed = 2011);

}  // namespace rr::fpga
