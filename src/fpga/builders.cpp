#include "fpga/builders.hpp"

#include <algorithm>

#include "util/rng.hpp"

namespace rr::fpga {
namespace {

/// Columns that receive a special resource under `spec`, with optional
/// per-column jitter already applied.
std::vector<std::pair<int, ResourceType>> special_columns(
    int width, const ColumnarSpec& spec, int jitter, Rng* rng) {
  std::vector<std::pair<int, ResourceType>> columns;
  auto add_period = [&](int period, int offset, ResourceType t) {
    if (period <= 0) return;
    for (int x = offset; x < width; x += period) {
      int col = x;
      if (jitter > 0 && rng != nullptr)
        col += rng->uniform_int(-jitter, jitter);
      if (col >= 0 && col < width) columns.emplace_back(col, t);
    }
  };
  add_period(spec.bram_period, spec.bram_offset, ResourceType::kBram);
  add_period(spec.dsp_period, spec.dsp_offset, ResourceType::kDsp);
  if (spec.center_clock_column)
    columns.emplace_back(width / 2, ResourceType::kClock);
  if (spec.edge_io) {
    columns.emplace_back(0, ResourceType::kIo);
    columns.emplace_back(width - 1, ResourceType::kIo);
  }
  return columns;
}

}  // namespace

Fabric make_homogeneous(int width, int height) {
  return Fabric(width, height, ResourceType::kClb, "homogeneous");
}

Fabric make_columnar(int width, int height, const ColumnarSpec& spec) {
  Fabric fabric(width, height, ResourceType::kClb, "columnar");
  // Later entries win; IO/clock columns deliberately override BRAM/DSP as
  // they do on real devices where the center column carries clocking.
  for (const auto& [x, t] : special_columns(width, spec, 0, nullptr))
    fabric.set_column(x, t);
  return fabric;
}

Fabric make_irregular(int width, int height, const IrregularSpec& spec,
                      std::uint64_t seed) {
  Fabric fabric(width, height, ResourceType::kClb, "irregular");
  Rng rng(seed);
  for (const auto& [x, t] : special_columns(width, spec.base, spec.jitter, &rng)) {
    fabric.set_column(x, t);
    // Some columns differ from their resource type along the way ("e.g.
    // they contain clock resources", §I): interrupt with clock tiles.
    if (t == ResourceType::kBram || t == ResourceType::kDsp) {
      if (rng.chance(spec.interruption_probability)) {
        const int start = rng.uniform_int(0, std::max(0, height - spec.interruption_length));
        for (int y = start;
             y < std::min(height, start + spec.interruption_length); ++y)
          fabric.set(x, y, ResourceType::kClock);
      }
    }
  }
  return fabric;
}

Fabric make_evaluation_device(std::uint64_t seed) {
  // 120 x 48 tiles; the right 20 columns host the static design (Fig. 4c).
  IrregularSpec spec;
  spec.base.bram_period = 8;
  spec.base.bram_offset = 4;
  spec.base.dsp_period = 24;
  spec.base.dsp_offset = 14;
  spec.base.center_clock_column = true;
  spec.base.edge_io = true;
  Fabric fabric = make_irregular(120, 48, spec, seed);
  fabric.set_rect(Rect{100, 0, 20, 48}, ResourceType::kStatic);
  return fabric;
}

}  // namespace rr::fpga
