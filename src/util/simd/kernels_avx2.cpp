// AVX2 kernel table. Compiled with -mavx2 -mpopcnt for this translation
// unit only; nothing here runs unless the dispatcher verified AVX2 via
// CPUID, so the rest of the binary stays baseline x86-64.
//
// Every kernel must be bit-identical to its scalar twin in simd.cpp —
// simd_kernel_test fuzzes the two tables against each other. Vector bodies
// cover the aligned middle; edges and windowed reads near array bounds fall
// back to the shared detail::window gather so out-of-range bits read as
// zero under exactly the scalar rules.
#include "util/simd/simd.hpp"

#if defined(RRPLACE_HAVE_AVX2)

#include <immintrin.h>

#include <bit>

namespace rr::simd {
namespace {

/// popcount of all 256 bits of `v` via the nibble-table method (Mula).
inline std::uint64_t popcount256(__m256i v) noexcept {
  const __m256i table = _mm256_setr_epi8(
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,  //
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low_mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
  const __m256i counts = _mm256_add_epi8(_mm256_shuffle_epi8(table, lo),
                                         _mm256_shuffle_epi8(table, hi));
  const __m256i sums = _mm256_sad_epu8(counts, _mm256_setzero_si256());
  return static_cast<std::uint64_t>(_mm256_extract_epi64(sums, 0)) +
         static_cast<std::uint64_t>(_mm256_extract_epi64(sums, 1)) +
         static_cast<std::uint64_t>(_mm256_extract_epi64(sums, 2)) +
         static_cast<std::uint64_t>(_mm256_extract_epi64(sums, 3));
}

std::size_t avx2_popcount(const std::uint64_t* a, std::size_t n) {
  std::uint64_t total = 0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4)
    total += popcount256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i)));
  for (; i < n; ++i)
    total += static_cast<std::uint64_t>(std::popcount(a[i]));
  return static_cast<std::size_t>(total);
}

std::size_t avx2_and_popcount(const std::uint64_t* a, const std::uint64_t* b,
                              std::size_t n) {
  std::uint64_t total = 0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    total += popcount256(_mm256_and_si256(va, vb));
  }
  for (; i < n; ++i)
    total += static_cast<std::uint64_t>(std::popcount(a[i] & b[i]));
  return static_cast<std::size_t>(total);
}

std::size_t avx2_and_inplace_popcount(std::uint64_t* dst,
                                      const std::uint64_t* src,
                                      std::size_t n) {
  std::uint64_t total = 0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i vd =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i vs =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i v = _mm256_and_si256(vd, vs);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), v);
    total += popcount256(v);
  }
  for (; i < n; ++i) {
    dst[i] &= src[i];
    total += static_cast<std::uint64_t>(std::popcount(dst[i]));
  }
  return static_cast<std::size_t>(total);
}

long avx2_first_intersect(const std::uint64_t* a, const std::uint64_t* b,
                          std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    if (!_mm256_testz_si256(va, vb)) {
      for (std::size_t j = i; j < i + 4; ++j)
        if ((a[j] & b[j]) != 0) return static_cast<long>(j);
    }
  }
  for (; i < n; ++i)
    if ((a[i] & b[i]) != 0) return static_cast<long>(i);
  return -1;
}

bool avx2_andnot_any(const std::uint64_t* a, const std::uint64_t* b,
                     std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    // testc(b, a) == 1 iff (~b & a) is all zero.
    if (!_mm256_testc_si256(vb, va)) return true;
  }
  for (; i < n; ++i)
    if ((a[i] & ~b[i]) != 0) return true;
  return false;
}

void avx2_and_inplace(std::uint64_t* dst, const std::uint64_t* src,
                      std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i vd =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i vs =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_and_si256(vd, vs));
  }
  for (; i < n; ++i) dst[i] &= src[i];
}

void avx2_or_inplace(std::uint64_t* dst, const std::uint64_t* src,
                     std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i vd =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i vs =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_or_si256(vd, vs));
  }
  for (; i < n; ++i) dst[i] |= src[i];
}

void avx2_andnot_inplace(std::uint64_t* dst, const std::uint64_t* src,
                         std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i vd =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i vs =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_andnot_si256(vs, vd));
  }
  for (; i < n; ++i) dst[i] &= ~src[i];
}

/// Vector gather of window(src, 64*i + shift) for lanes i, i+1, i+2, i+3,
/// valid only when every touched src word is in range: with ws =
/// floor(shift/64) and bs = shift mod 64, lanes read src[i+ws .. i+ws+4].
inline __m256i window4(const std::uint64_t* src, std::size_t i, long ws,
                       int bs) noexcept {
  const std::uint64_t* base = src + (static_cast<long>(i) + ws);
  const __m256i lo = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(base));
  if (bs == 0) return lo;
  const __m256i hi =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(base + 1));
  return _mm256_or_si256(_mm256_srli_epi64(lo, bs),
                         _mm256_slli_epi64(hi, 64 - bs));
}

/// Bounds of the vector-safe index range for windowed kernels: lanes
/// [i_lo, i_hi) read only in-range src words (see window4).
struct SafeRange {
  std::size_t lo;
  std::size_t hi;  // exclusive; hi <= n_dst, lo <= hi
};

inline SafeRange safe_range(std::size_t n_dst, std::size_t n_src, long ws,
                            int bs) noexcept {
  // Lowest lane with i + ws >= 0. Clamp to n_dst BEFORE deriving hi from
  // it: with a far-negative shift lo can exceed n_dst, and hi = max(hi, lo)
  // past n_dst would let the vector loop store out of bounds.
  long lo = ws < 0 ? -ws : 0;
  if (lo > static_cast<long>(n_dst)) lo = static_cast<long>(n_dst);
  // Highest exclusive lane: reads up to src[i + ws + (bs ? 1 : 0)], which
  // must stay < n_src.
  long hi = static_cast<long>(n_src) - ws - (bs != 0 ? 1 : 0);
  if (hi > static_cast<long>(n_dst)) hi = static_cast<long>(n_dst);
  if (hi < lo) hi = lo;
  return SafeRange{static_cast<std::size_t>(lo), static_cast<std::size_t>(hi)};
}

std::size_t avx2_shift_and_into(std::uint64_t* dst, std::size_t n_dst,
                                const std::uint64_t* src, std::size_t n_src,
                                long shift) {
  const long ws = detail::floor_div64(shift);
  const int bs = static_cast<int>(shift - ws * 64);
  const SafeRange range = safe_range(n_dst, n_src, ws, bs);
  std::uint64_t total = 0;
  std::size_t i = 0;
  for (; i < range.lo; ++i) {
    dst[i] &= detail::window(src, n_src, static_cast<long>(i) * 64 + shift);
    total += static_cast<std::uint64_t>(std::popcount(dst[i]));
  }
  for (; i + 4 <= range.hi; i += 4) {
    const __m256i vd =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i v = _mm256_and_si256(vd, window4(src, i, ws, bs));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), v);
    total += popcount256(v);
  }
  for (; i < n_dst; ++i) {
    dst[i] &= detail::window(src, n_src, static_cast<long>(i) * 64 + shift);
    total += static_cast<std::uint64_t>(std::popcount(dst[i]));
  }
  return static_cast<std::size_t>(total);
}

void avx2_shift_or_into(std::uint64_t* dst, std::size_t n_dst,
                        const std::uint64_t* src, std::size_t n_src,
                        long shift) {
  const long ws = detail::floor_div64(shift);
  const int bs = static_cast<int>(shift - ws * 64);
  const SafeRange range = safe_range(n_dst, n_src, ws, bs);
  std::size_t i = 0;
  for (; i < range.lo; ++i)
    dst[i] |= detail::window(src, n_src, static_cast<long>(i) * 64 + shift);
  for (; i + 4 <= range.hi; i += 4) {
    const __m256i vd =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_or_si256(vd, window4(src, i, ws, bs)));
  }
  for (; i < n_dst; ++i)
    dst[i] |= detail::window(src, n_src, static_cast<long>(i) * 64 + shift);
}

void avx2_shift_andnot_into(std::uint64_t* dst, std::size_t n_dst,
                            const std::uint64_t* src, std::size_t n_src,
                            long shift) {
  const long ws = detail::floor_div64(shift);
  const int bs = static_cast<int>(shift - ws * 64);
  const SafeRange range = safe_range(n_dst, n_src, ws, bs);
  std::size_t i = 0;
  for (; i < range.lo; ++i)
    dst[i] &= ~detail::window(src, n_src, static_cast<long>(i) * 64 + shift);
  for (; i + 4 <= range.hi; i += 4) {
    const __m256i vd =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(dst + i),
        _mm256_andnot_si256(window4(src, i, ws, bs), vd));
  }
  for (; i < n_dst; ++i)
    dst[i] &= ~detail::window(src, n_src, static_cast<long>(i) * 64 + shift);
}

std::size_t avx2_shifted_and_popcount(const std::uint64_t* a, std::size_t n_a,
                                      const std::uint64_t* t, std::size_t n_t,
                                      long shift) {
  const long ws = detail::floor_div64(shift);
  const int bs = static_cast<int>(shift - ws * 64);
  const SafeRange range = safe_range(n_a, n_t, ws, bs);
  std::uint64_t total = 0;
  std::size_t i = 0;
  for (; i < range.lo; ++i) {
    if (a[i] == 0) continue;
    total += static_cast<std::uint64_t>(std::popcount(
        a[i] & detail::window(t, n_t, static_cast<long>(i) * 64 + shift)));
  }
  for (; i + 4 <= range.hi; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    if (_mm256_testz_si256(va, va)) continue;
    total += popcount256(_mm256_and_si256(va, window4(t, i, ws, bs)));
  }
  for (; i < n_a; ++i) {
    if (a[i] == 0) continue;
    total += static_cast<std::uint64_t>(std::popcount(
        a[i] & detail::window(t, n_t, static_cast<long>(i) * 64 + shift)));
  }
  return static_cast<std::size_t>(total);
}

constexpr Kernels kAvx2Kernels{
    avx2_popcount,         avx2_and_popcount,
    avx2_and_inplace_popcount, avx2_first_intersect,
    avx2_andnot_any,       avx2_and_inplace,
    avx2_or_inplace,       avx2_andnot_inplace,
    avx2_shift_and_into,   avx2_shift_or_into,
    avx2_shift_andnot_into, avx2_shifted_and_popcount,
};

}  // namespace

namespace detail {
const Kernels& avx2_kernels() noexcept { return kAvx2Kernels; }
}  // namespace detail

}  // namespace rr::simd

#endif  // RRPLACE_HAVE_AVX2
