// Scalar reference kernels and the runtime dispatch resolver.
//
// The scalar table is both the portable fallback and the differential
// oracle: kernels_avx2.cpp must match it bit for bit on every input, which
// simd_kernel_test enforces by fuzzing the two tables against each other
// (and against naive per-bit loops).
#include "util/simd/simd.hpp"

#include <algorithm>
#include <bit>
#include <cctype>
#include <string>

#include "util/env.hpp"

namespace rr::simd {
namespace {

std::size_t scalar_popcount(const std::uint64_t* a, std::size_t n) {
  std::size_t total = 0;
  for (std::size_t i = 0; i < n; ++i)
    total += static_cast<std::size_t>(std::popcount(a[i]));
  return total;
}

std::size_t scalar_and_popcount(const std::uint64_t* a, const std::uint64_t* b,
                                std::size_t n) {
  std::size_t total = 0;
  for (std::size_t i = 0; i < n; ++i)
    total += static_cast<std::size_t>(std::popcount(a[i] & b[i]));
  return total;
}

std::size_t scalar_and_inplace_popcount(std::uint64_t* dst,
                                        const std::uint64_t* src,
                                        std::size_t n) {
  std::size_t total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    dst[i] &= src[i];
    total += static_cast<std::size_t>(std::popcount(dst[i]));
  }
  return total;
}

long scalar_first_intersect(const std::uint64_t* a, const std::uint64_t* b,
                            std::size_t n) {
  for (std::size_t i = 0; i < n; ++i)
    if ((a[i] & b[i]) != 0) return static_cast<long>(i);
  return -1;
}

bool scalar_andnot_any(const std::uint64_t* a, const std::uint64_t* b,
                       std::size_t n) {
  for (std::size_t i = 0; i < n; ++i)
    if ((a[i] & ~b[i]) != 0) return true;
  return false;
}

void scalar_and_inplace(std::uint64_t* dst, const std::uint64_t* src,
                        std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] &= src[i];
}

void scalar_or_inplace(std::uint64_t* dst, const std::uint64_t* src,
                       std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] |= src[i];
}

void scalar_andnot_inplace(std::uint64_t* dst, const std::uint64_t* src,
                           std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] &= ~src[i];
}

std::size_t scalar_shift_and_into(std::uint64_t* dst, std::size_t n_dst,
                                  const std::uint64_t* src, std::size_t n_src,
                                  long shift) {
  std::size_t total = 0;
  for (std::size_t i = 0; i < n_dst; ++i) {
    dst[i] &= detail::window(src, n_src, static_cast<long>(i) * 64 + shift);
    total += static_cast<std::size_t>(std::popcount(dst[i]));
  }
  return total;
}

void scalar_shift_or_into(std::uint64_t* dst, std::size_t n_dst,
                          const std::uint64_t* src, std::size_t n_src,
                          long shift) {
  for (std::size_t i = 0; i < n_dst; ++i)
    dst[i] |= detail::window(src, n_src, static_cast<long>(i) * 64 + shift);
}

void scalar_shift_andnot_into(std::uint64_t* dst, std::size_t n_dst,
                              const std::uint64_t* src, std::size_t n_src,
                              long shift) {
  for (std::size_t i = 0; i < n_dst; ++i)
    dst[i] &= ~detail::window(src, n_src, static_cast<long>(i) * 64 + shift);
}

std::size_t scalar_shifted_and_popcount(const std::uint64_t* a,
                                        std::size_t n_a,
                                        const std::uint64_t* t,
                                        std::size_t n_t, long shift) {
  std::size_t total = 0;
  for (std::size_t i = 0; i < n_a; ++i) {
    if (a[i] == 0) continue;
    total += static_cast<std::size_t>(std::popcount(
        a[i] & detail::window(t, n_t, static_cast<long>(i) * 64 + shift)));
  }
  return total;
}

constexpr Kernels kScalarKernels{
    scalar_popcount,         scalar_and_popcount,
    scalar_and_inplace_popcount, scalar_first_intersect,
    scalar_andnot_any,       scalar_and_inplace,
    scalar_or_inplace,       scalar_andnot_inplace,
    scalar_shift_and_into,   scalar_shift_or_into,
    scalar_shift_andnot_into, scalar_shifted_and_popcount,
};

struct Resolved {
  const Kernels* kernels;
  Level level;
};

Resolved resolve() {
  std::string mode = env_string("RRPLACE_SIMD", "auto");
  std::transform(mode.begin(), mode.end(), mode.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  const bool force_scalar =
      mode == "off" || mode == "0" || mode == "scalar" || mode == "none";
#if defined(RRPLACE_HAVE_AVX2)
  if (!force_scalar && cpu_supports_avx2())
    return Resolved{&detail::avx2_kernels(), Level::kAvx2};
#endif
  (void)force_scalar;
  return Resolved{&kScalarKernels, Level::kScalar};
}

const Resolved& resolved() noexcept {
  static const Resolved r = resolve();
  return r;
}

}  // namespace

const char* level_name(Level level) noexcept {
  switch (level) {
    case Level::kAvx2:
      return "avx2";
    case Level::kScalar:
      break;
  }
  return "scalar";
}

Level active_level() noexcept { return resolved().level; }

bool compiled_avx2() noexcept {
#if defined(RRPLACE_HAVE_AVX2)
  return true;
#else
  return false;
#endif
}

bool cpu_supports_avx2() noexcept {
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

const Kernels& active() noexcept { return *resolved().kernels; }

const Kernels& scalar_kernels() noexcept { return kScalarKernels; }

}  // namespace rr::simd
