// SIMD kernel layer: 64-bit-word array primitives behind runtime dispatch.
//
// Every hot word-loop in the placer — BitMatrix row sweeps, reversible
// sparse-bitset updates, Domain word-block pruning, and the batch
// anchor-feasibility kernel — bottoms out in one of the kernels declared
// here. Two implementations exist:
//
//   - scalar: portable 64-bit-word loops (namespace simd::scalar). Always
//     compiled, and the differential oracle: a dispatched kernel must be
//     bit-identical to its scalar twin on every input.
//   - avx2: AVX2 implementations, compiled only when the RRPLACE_SIMD CMake
//     option is on and the target is x86-64 (per-TU -mavx2; the rest of the
//     library stays baseline so the binary runs on any x86-64).
//
// Selection happens once per process: CPUID decides what the machine can
// run, and the RRPLACE_SIMD environment variable can force a lower level
// ("off"/"0"/"scalar" selects scalar, "avx2" requests AVX2, anything else —
// including unset, "on", "auto" — picks the best available). CI builds and
// runs the full suite on both legs; because results are bit-identical, the
// switch is safe to flip at any time.
//
// Windowed kernels share one gather convention: window(src, b) is the
// 64-bit little-endian window of the bit-array `src` starting at bit `b`
// (bit x of the window = bit b + x of src); b may be negative and bits
// outside [0, 64 * n_src) read as zero.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>

namespace rr::simd {

enum class Level { kScalar = 0, kAvx2 = 1 };

/// Name of a dispatch level ("scalar", "avx2").
[[nodiscard]] const char* level_name(Level level) noexcept;

/// The level the process resolved to (CPUID + RRPLACE_SIMD env override).
[[nodiscard]] Level active_level() noexcept;

/// True when AVX2 kernels were compiled into this binary.
[[nodiscard]] bool compiled_avx2() noexcept;

/// True when the CPU reports AVX2 support.
[[nodiscard]] bool cpu_supports_avx2() noexcept;

/// One resolved kernel table. All pointers are non-null.
struct Kernels {
  /// Total set bits in a[0..n).
  std::size_t (*popcount)(const std::uint64_t* a, std::size_t n);
  /// popcount(a & b) without modifying either side.
  std::size_t (*and_popcount)(const std::uint64_t* a, const std::uint64_t* b,
                              std::size_t n);
  /// dst &= src; returns popcount of dst afterwards.
  std::size_t (*and_inplace_popcount)(std::uint64_t* dst,
                                      const std::uint64_t* src, std::size_t n);
  /// Index of the first word with (a[i] & b[i]) != 0, or -1.
  long (*first_intersect)(const std::uint64_t* a, const std::uint64_t* b,
                          std::size_t n);
  /// True iff any word has (a[i] & ~b[i]) != 0.
  bool (*andnot_any)(const std::uint64_t* a, const std::uint64_t* b,
                     std::size_t n);
  void (*and_inplace)(std::uint64_t* dst, const std::uint64_t* src,
                      std::size_t n);
  void (*or_inplace)(std::uint64_t* dst, const std::uint64_t* src,
                     std::size_t n);
  /// dst &= ~src.
  void (*andnot_inplace)(std::uint64_t* dst, const std::uint64_t* src,
                         std::size_t n);
  /// dst[i] &= window(src, 64*i + shift); returns popcount of dst after.
  /// The erosion primitive of the batch anchor kernel. dst == src aliasing
  /// is allowed when shift >= 0: both implementations sweep ascending, so
  /// every window read lands at a word index >= the one being written.
  std::size_t (*shift_and_into)(std::uint64_t* dst, std::size_t n_dst,
                                const std::uint64_t* src, std::size_t n_src,
                                long shift);
  /// dst[i] |= window(src, 64*i + shift) — dilation (conflict accumulation).
  void (*shift_or_into)(std::uint64_t* dst, std::size_t n_dst,
                        const std::uint64_t* src, std::size_t n_src,
                        long shift);
  /// dst[i] &= ~window(src, 64*i + shift) — shifted clear.
  void (*shift_andnot_into)(std::uint64_t* dst, std::size_t n_dst,
                            const std::uint64_t* src, std::size_t n_src,
                            long shift);
  /// sum_i popcount(a[i] & window(t, 64*i + shift)) — the inner loop of
  /// BitMatrix::overlap_popcount_shifted.
  std::size_t (*shifted_and_popcount)(const std::uint64_t* a, std::size_t n_a,
                                      const std::uint64_t* t, std::size_t n_t,
                                      long shift);
};

/// The process-wide resolved kernel table.
[[nodiscard]] const Kernels& active() noexcept;

/// The portable reference kernels (the differential oracle).
[[nodiscard]] const Kernels& scalar_kernels() noexcept;

namespace detail {

/// AVX2 kernel table — defined in kernels_avx2.cpp, which is linked in only
/// when the RRPLACE_SIMD CMake option is on (RRPLACE_HAVE_AVX2).
[[nodiscard]] const Kernels& avx2_kernels() noexcept;

[[nodiscard]] constexpr long floor_div64(long v) noexcept {
  return v >= 0 ? v / 64 : -((63 - v) / 64);
}

/// The shared gather: 64 bits of `src` starting at bit `b` (see header
/// comment). Inline so scalar tails of vector kernels and tests agree on
/// one definition.
[[nodiscard]] inline std::uint64_t window(const std::uint64_t* src,
                                          std::size_t n_src,
                                          long b) noexcept {
  const long w = floor_div64(b);
  const int s = static_cast<int>(b - w * 64);
  const auto at = [&](long i) -> std::uint64_t {
    return i >= 0 && i < static_cast<long>(n_src)
               ? src[static_cast<std::size_t>(i)]
               : 0;
  };
  if (s == 0) return at(w);
  return (at(w) >> s) | (at(w + 1) << (64 - s));
}

}  // namespace detail

// --- Span convenience wrappers (the API the rest of the library uses) ------

inline std::size_t popcount(std::span<const std::uint64_t> a) noexcept {
  return active().popcount(a.data(), a.size());
}

inline std::size_t and_popcount(std::span<const std::uint64_t> a,
                                std::span<const std::uint64_t> b) noexcept {
  return active().and_popcount(a.data(), b.data(), a.size());
}

inline std::size_t and_inplace_popcount(
    std::span<std::uint64_t> dst, std::span<const std::uint64_t> src) noexcept {
  return active().and_inplace_popcount(dst.data(), src.data(), dst.size());
}

inline long first_intersect(std::span<const std::uint64_t> a,
                            std::span<const std::uint64_t> b) noexcept {
  return active().first_intersect(a.data(), b.data(), a.size());
}

inline bool andnot_any(std::span<const std::uint64_t> a,
                       std::span<const std::uint64_t> b) noexcept {
  return active().andnot_any(a.data(), b.data(), a.size());
}

inline void and_inplace(std::span<std::uint64_t> dst,
                        std::span<const std::uint64_t> src) noexcept {
  active().and_inplace(dst.data(), src.data(), dst.size());
}

inline void or_inplace(std::span<std::uint64_t> dst,
                       std::span<const std::uint64_t> src) noexcept {
  active().or_inplace(dst.data(), src.data(), dst.size());
}

inline void andnot_inplace(std::span<std::uint64_t> dst,
                           std::span<const std::uint64_t> src) noexcept {
  active().andnot_inplace(dst.data(), src.data(), dst.size());
}

// The windowed wrappers special-case single-word destinations inline: on
// narrow regions (<= 64 columns, one word per row) the per-call indirect
// dispatch would cost more than the word of work, and detail::window is the
// same gather both kernel tables bottom out in, so results are identical.

inline std::size_t shift_and_into(std::span<std::uint64_t> dst,
                                  std::span<const std::uint64_t> src,
                                  long shift) noexcept {
  if (dst.size() == 1) {
    dst[0] &= detail::window(src.data(), src.size(), shift);
    return static_cast<std::size_t>(std::popcount(dst[0]));
  }
  return active().shift_and_into(dst.data(), dst.size(), src.data(),
                                 src.size(), shift);
}

inline void shift_or_into(std::span<std::uint64_t> dst,
                          std::span<const std::uint64_t> src,
                          long shift) noexcept {
  if (dst.size() == 1) {
    dst[0] |= detail::window(src.data(), src.size(), shift);
    return;
  }
  active().shift_or_into(dst.data(), dst.size(), src.data(), src.size(),
                         shift);
}

inline void shift_andnot_into(std::span<std::uint64_t> dst,
                              std::span<const std::uint64_t> src,
                              long shift) noexcept {
  if (dst.size() == 1) {
    dst[0] &= ~detail::window(src.data(), src.size(), shift);
    return;
  }
  active().shift_andnot_into(dst.data(), dst.size(), src.data(), src.size(),
                             shift);
}

inline std::size_t shifted_and_popcount(std::span<const std::uint64_t> a,
                                        std::span<const std::uint64_t> t,
                                        long shift) noexcept {
  if (a.size() == 1) {
    return static_cast<std::size_t>(
        std::popcount(a[0] & detail::window(t.data(), t.size(), shift)));
  }
  return active().shifted_and_popcount(a.data(), a.size(), t.data(), t.size(),
                                       shift);
}

}  // namespace rr::simd
