// Environment-variable knobs for the experiment harnesses.
//
// The paper's full evaluation (50 runs x 30 modules) takes minutes; bench
// binaries default to a scaled-down configuration and honour RRPLACE_RUNS /
// RRPLACE_MODULES / RRPLACE_TIME_LIMIT to reproduce the full setting.
#pragma once

#include <string>

namespace rr {

/// $name as int, or `fallback` when unset/unparseable.
[[nodiscard]] int env_int(const char* name, int fallback) noexcept;

/// $name as double, or `fallback` when unset/unparseable.
[[nodiscard]] double env_double(const char* name, double fallback) noexcept;

/// $name as string, or `fallback` when unset.
[[nodiscard]] std::string env_string(const char* name,
                                     const std::string& fallback);

}  // namespace rr
