#include "util/metrics.hpp"

#include <algorithm>

#include "util/env.hpp"

namespace rr::metrics {
namespace {

std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> flag{env_int("RRPLACE_METRICS", 0) != 0};
  return flag;
}

template <typename T>
T* find_entry(std::vector<std::pair<std::string, T>>& entries,
              std::string_view name) {
  for (auto& [key, value] : entries) {
    if (key == name) return &value;
  }
  return nullptr;
}

template <typename T>
const T* find_entry(const std::vector<std::pair<std::string, T>>& entries,
                    std::string_view name) {
  for (const auto& [key, value] : entries) {
    if (key == name) return &value;
  }
  return nullptr;
}

template <typename T>
std::vector<std::pair<std::string, T>> sorted_copy(
    const std::vector<std::pair<std::string, T>>& entries) {
  auto copy = entries;
  std::sort(copy.begin(), copy.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return copy;
}

}  // namespace

bool enabled() noexcept {
  return enabled_flag().load(std::memory_order_relaxed);
}

void set_enabled(bool on) noexcept {
  enabled_flag().store(on, std::memory_order_relaxed);
}

void Registry::add(std::string_view name, std::uint64_t delta) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  if (std::uint64_t* counter = find_entry(counters_, name)) {
    *counter += delta;
    return;
  }
  counters_.emplace_back(std::string(name), delta);
}

void Registry::record_time(std::string_view name, std::uint64_t elapsed_ns) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  TimerStat* timer = find_entry(timers_, name);
  if (timer == nullptr) {
    timers_.emplace_back(std::string(name), TimerStat{});
    timer = &timers_.back().second;
  }
  ++timer->count;
  timer->total_ns += elapsed_ns;
}

std::uint64_t Registry::counter(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t* counter = find_entry(counters_, name);
  return counter != nullptr ? *counter : 0;
}

TimerStat Registry::timer(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const TimerStat* timer = find_entry(timers_, name);
  return timer != nullptr ? *timer : TimerStat{};
}

void Registry::merge(const Registry& other) {
  // Copy under the source lock, then fold under ours (avoids lock-order
  // issues if two registries merge into each other concurrently).
  decltype(counters_) other_counters;
  decltype(timers_) other_timers;
  {
    std::lock_guard<std::mutex> lock(other.mutex_);
    other_counters = other.counters_;
    other_timers = other.timers_;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, delta] : other_counters) {
    if (std::uint64_t* counter = find_entry(counters_, name)) {
      *counter += delta;
    } else {
      counters_.emplace_back(name, delta);
    }
  }
  for (const auto& [name, stat] : other_timers) {
    if (TimerStat* timer = find_entry(timers_, name)) {
      timer->count += stat.count;
      timer->total_ns += stat.total_ns;
    } else {
      timers_.emplace_back(name, stat);
    }
  }
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_.clear();
  timers_.clear();
}

bool Registry::empty() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_.empty() && timers_.empty();
}

json::Value Registry::to_json() const {
  decltype(counters_) counters;
  decltype(timers_) timers;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    counters = counters_;
    timers = timers_;
  }
  json::Value doc = json::Value::object();
  json::Value counter_doc = json::Value::object();
  for (const auto& [name, value] : sorted_copy(counters))
    counter_doc.set(name, json::Value(value));
  doc.set("counters", std::move(counter_doc));
  json::Value timer_doc = json::Value::object();
  for (const auto& [name, stat] : sorted_copy(timers)) {
    json::Value entry = json::Value::object();
    entry.set("count", json::Value(stat.count));
    entry.set("seconds", json::Value(stat.seconds()));
    timer_doc.set(name, std::move(entry));
  }
  doc.set("timers", std::move(timer_doc));
  return doc;
}

namespace {

// The calling thread's redirect target (nullptr: the process registry).
thread_local Registry* t_shard = nullptr;

}  // namespace

Registry& process() {
  static Registry registry;
  return registry;
}

Registry& global() { return t_shard != nullptr ? *t_shard : process(); }

ThreadShard::ThreadShard(Registry& shard) noexcept : previous_(t_shard) {
  t_shard = &shard;
}

ThreadShard::~ThreadShard() { t_shard = previous_; }

}  // namespace rr::metrics
