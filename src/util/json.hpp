// Minimal JSON document model: build, serialize, parse.
//
// This backs the solver observability layer (metrics snapshots, the
// `--stats-json` CLI flag, BENCH_*.json records) and the schema checker in
// tools/check_stats_json. It is deliberately small: objects keep insertion
// order (stable, diffable output), numbers are doubles (every counter we
// emit fits far below 2^53), and parse() accepts exactly what dump()
// produces plus ordinary interchange JSON.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace rr::json {

class Value;

/// One JSON value. Default-constructed as null; assign or use the factory
/// helpers to build documents:
///
///   json::Value doc = json::Value::object();
///   doc.set("nodes", 42.0);
///   doc.set("complete", true);
///   doc["propagators"].set("linear", json::Value::object());
class Value {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() noexcept : type_(Type::kNull) {}
  Value(bool b) noexcept : type_(Type::kBool), bool_(b) {}  // NOLINT
  Value(double n) noexcept : type_(Type::kNumber), number_(n) {}  // NOLINT
  Value(std::int64_t n) noexcept  // NOLINT
      : type_(Type::kNumber), number_(static_cast<double>(n)) {}
  Value(std::uint64_t n) noexcept  // NOLINT
      : type_(Type::kNumber), number_(static_cast<double>(n)) {}
  Value(int n) noexcept : type_(Type::kNumber), number_(n) {}  // NOLINT
  Value(std::string s) : type_(Type::kString), string_(std::move(s)) {}  // NOLINT
  Value(const char* s) : type_(Type::kString), string_(s) {}  // NOLINT

  static Value array() {
    Value v;
    v.type_ = Type::kArray;
    return v;
  }
  static Value object() {
    Value v;
    v.type_ = Type::kObject;
    return v;
  }

  [[nodiscard]] Type type() const noexcept { return type_; }
  [[nodiscard]] bool is_null() const noexcept { return type_ == Type::kNull; }
  [[nodiscard]] bool is_bool() const noexcept { return type_ == Type::kBool; }
  [[nodiscard]] bool is_number() const noexcept {
    return type_ == Type::kNumber;
  }
  [[nodiscard]] bool is_string() const noexcept {
    return type_ == Type::kString;
  }
  [[nodiscard]] bool is_array() const noexcept { return type_ == Type::kArray; }
  [[nodiscard]] bool is_object() const noexcept {
    return type_ == Type::kObject;
  }

  /// Typed accessors; throw InvalidInput on a type mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;

  /// Array/object element count; 0 for scalars.
  [[nodiscard]] std::size_t size() const noexcept;

  // --- Arrays ---------------------------------------------------------------
  /// Append to an array (null values become arrays on first push).
  void push_back(Value v);
  /// Array element access; throws InvalidInput when out of range.
  [[nodiscard]] const Value& at(std::size_t index) const;

  // --- Objects --------------------------------------------------------------
  /// Insert or overwrite a member (null values become objects on first set).
  void set(std::string_view key, Value v);
  /// Member lookup returning null; creates the member (as null) on a
  /// non-const object so nested construction composes.
  Value& operator[](std::string_view key);
  [[nodiscard]] bool contains(std::string_view key) const noexcept;
  /// Member access; throws InvalidInput when missing.
  [[nodiscard]] const Value& at(std::string_view key) const;
  /// Members in insertion order (empty for non-objects).
  [[nodiscard]] const std::vector<std::pair<std::string, Value>>& members()
      const noexcept {
    return object_;
  }
  /// Array items (empty for non-arrays).
  [[nodiscard]] const std::vector<Value>& items() const noexcept {
    return array_;
  }

  /// Serialize. indent < 0 gives the compact single-line form; otherwise
  /// pretty-print with that many spaces per nesting level.
  [[nodiscard]] std::string dump(int indent = -1) const;

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Value> array_;
  std::vector<std::pair<std::string, Value>> object_;
};

/// Parse a JSON document. Throws InvalidInput with position context on
/// malformed input; trailing non-whitespace is an error.
[[nodiscard]] Value parse(std::string_view text);

/// Quote + escape a string as a JSON string literal.
[[nodiscard]] std::string escape(std::string_view raw);

}  // namespace rr::json
