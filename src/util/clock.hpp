// Injectable monotonic clock — the time source for all service-level
// deadline logic (submit timestamps, queue-wait shedding, latency
// accounting, remaining-budget propagation into the defrag/recovery
// tiers).
//
// Production code reads system_clock() (steady_clock under the hood);
// tests inject a FakeClock and advance it by hand, which makes every
// deadline decision deterministic — no sleeps, no flaky timing margins.
// The interface is nanoseconds-since-an-arbitrary-epoch on purpose: a
// single integer read keeps the virtual call cheap enough for per-request
// hot paths, and differences are all the service ever computes.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

namespace rr {

/// Monotonic time source. Implementations must be thread-safe and
/// non-decreasing per observer.
class Clock {
 public:
  virtual ~Clock() = default;
  /// Nanoseconds since an arbitrary fixed epoch.
  [[nodiscard]] virtual std::uint64_t now_ns() const = 0;
};

/// The real steady clock.
class SystemClock final : public Clock {
 public:
  [[nodiscard]] std::uint64_t now_ns() const override {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }
};

/// Process-wide singleton; the default when no clock is injected.
[[nodiscard]] inline const Clock& system_clock() {
  static const SystemClock clock;
  return clock;
}

/// Manually advanced clock for deterministic tests. Starts at a non-zero
/// origin so "epoch minus a bit" arithmetic in code under test cannot
/// underflow to huge unsigned values.
class FakeClock final : public Clock {
 public:
  explicit FakeClock(std::uint64_t origin_ns = 1'000'000'000ULL)
      : now_(origin_ns) {}

  [[nodiscard]] std::uint64_t now_ns() const override {
    return now_.load(std::memory_order_relaxed);
  }

  void advance_ns(std::uint64_t delta_ns) {
    now_.fetch_add(delta_ns, std::memory_order_relaxed);
  }
  void advance_ms(std::uint64_t delta_ms) {
    advance_ns(delta_ms * 1'000'000ULL);
  }

 private:
  std::atomic<std::uint64_t> now_;
};

}  // namespace rr
