// Dense 2-D bit matrix with word-parallel row operations.
//
// The placer represents per-resource fabric occupancy and shape footprints
// as bit matrices; computing the set of valid anchors for a shape is a 2-D
// correlation implemented as shifted word-AND sweeps, which is the hot inner
// loop of model construction.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace rr {

class BitMatrix {
 public:
  BitMatrix() = default;
  BitMatrix(int rows, int cols, bool fill = false);

  [[nodiscard]] int rows() const noexcept { return rows_; }
  [[nodiscard]] int cols() const noexcept { return cols_; }
  [[nodiscard]] bool empty() const noexcept { return rows_ == 0 || cols_ == 0; }

  [[nodiscard]] bool get(int r, int c) const noexcept {
    RR_ASSERT(in_bounds(r, c));
    return (word(r, c) >> bit(c)) & 1u;
  }

  void set(int r, int c, bool value = true) noexcept {
    RR_ASSERT(in_bounds(r, c));
    if (value)
      word(r, c) |= (std::uint64_t{1} << bit(c));
    else
      word(r, c) &= ~(std::uint64_t{1} << bit(c));
  }

  void clear() noexcept;
  void fill() noexcept;

  /// Number of set bits.
  [[nodiscard]] std::size_t popcount() const noexcept;

  /// Number of set bits in row r.
  [[nodiscard]] std::size_t row_popcount(int r) const noexcept;

  /// True iff any bit of `other` overlaps a set bit of *this when `other`
  /// is translated by (dr, dc). Bits of `other` falling outside *this are
  /// ignored (treated as non-overlapping).
  [[nodiscard]] bool intersects_shifted(const BitMatrix& other, int dr,
                                        int dc) const noexcept;

  /// Number of set bits shared by *this and `other` translated by (dr, dc)
  /// — the overlap area behind intersects_shifted. Bits of `other` falling
  /// outside *this count as non-overlapping.
  [[nodiscard]] std::size_t overlap_popcount_shifted(const BitMatrix& other,
                                                     int dr,
                                                     int dc) const noexcept;

  /// OR `other` into *this translated by (dr, dc); out-of-range bits of
  /// `other` must be zero or an assertion fires.
  void or_shifted(const BitMatrix& other, int dr, int dc) noexcept;

  /// AND-NOT: clear every bit of *this that is set in `other` translated by
  /// (dr, dc).
  void clear_shifted(const BitMatrix& other, int dr, int dc) noexcept;

  /// In-place AND with a same-shaped matrix.
  void and_with(const BitMatrix& other) noexcept;

  /// In-place OR with a same-shaped matrix.
  void or_with(const BitMatrix& other) noexcept;

  /// True iff every set bit of `other`, translated by (dr, dc), lands on a
  /// set bit of *this (i.e. `other` "fits under" *this). Bits of `other`
  /// translated outside *this make the result false.
  [[nodiscard]] bool covers_shifted(const BitMatrix& other, int dr,
                                    int dc) const noexcept;

  bool operator==(const BitMatrix& other) const noexcept = default;

  /// Words per stored row (rows are contiguous, tail bits beyond cols()
  /// are zero). Together with row_span this is the raw view the SIMD batch
  /// kernels (geost/anchor_kernel) operate on.
  [[nodiscard]] std::size_t words_per_row() const noexcept {
    return words_per_row_;
  }

  /// The words of row r (length words_per_row()).
  [[nodiscard]] std::span<const std::uint64_t> row_span(int r) const noexcept {
    RR_ASSERT(r >= 0 && r < rows_);
    return {words_.data() + static_cast<std::size_t>(r) * words_per_row_,
            words_per_row_};
  }

  /// Mutable view of row r. Callers must keep tail bits beyond cols() zero
  /// — every other operation relies on that invariant.
  [[nodiscard]] std::span<std::uint64_t> row_span_mut(int r) noexcept {
    RR_ASSERT(r >= 0 && r < rows_);
    return {words_.data() + static_cast<std::size_t>(r) * words_per_row_,
            words_per_row_};
  }

  /// Multi-line string with '#' for set bits and '.' for clear bits;
  /// row 0 printed first.
  [[nodiscard]] std::string to_string() const;

 private:
  [[nodiscard]] bool in_bounds(int r, int c) const noexcept {
    return r >= 0 && r < rows_ && c >= 0 && c < cols_;
  }
  [[nodiscard]] std::uint64_t& word(int r, int c) noexcept {
    return words_[static_cast<std::size_t>(r) * words_per_row_ +
                  static_cast<std::size_t>(c >> 6)];
  }
  [[nodiscard]] const std::uint64_t& word(int r, int c) const noexcept {
    return words_[static_cast<std::size_t>(r) * words_per_row_ +
                  static_cast<std::size_t>(c >> 6)];
  }
  static int bit(int c) noexcept { return c & 63; }

  /// Extract the 64-bit window of row r beginning at column c (which may be
  /// negative or beyond the row; out-of-range bits read as zero).
  [[nodiscard]] std::uint64_t row_window(int r, int c) const noexcept;

  int rows_ = 0;
  int cols_ = 0;
  std::size_t words_per_row_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace rr
