#include "util/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/error.hpp"

namespace rr::json {
namespace {

[[noreturn]] void type_error(const char* want, Value::Type got) {
  static const char* const kNames[] = {"null",   "bool",  "number",
                                       "string", "array", "object"};
  throw InvalidInput(std::string("json: expected ") + want + ", have " +
                     kNames[static_cast<int>(got)]);
}

void append_number(std::string& out, double n) {
  if (!std::isfinite(n)) {
    out += "null";  // JSON has no Inf/NaN; null keeps the document parseable
    return;
  }
  // Integers (the common case for counters) print without a fraction.
  if (n == std::floor(n) && std::abs(n) < 1e15) {
    char buffer[32];
    std::snprintf(buffer, sizeof buffer, "%.0f", n);
    out += buffer;
    return;
  }
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.17g", n);
  out += buffer;
}

}  // namespace

std::string escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size() + 2);
  out += '"';
  for (const char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

bool Value::as_bool() const {
  if (type_ != Type::kBool) type_error("bool", type_);
  return bool_;
}

double Value::as_number() const {
  if (type_ != Type::kNumber) type_error("number", type_);
  return number_;
}

const std::string& Value::as_string() const {
  if (type_ != Type::kString) type_error("string", type_);
  return string_;
}

std::size_t Value::size() const noexcept {
  if (type_ == Type::kArray) return array_.size();
  if (type_ == Type::kObject) return object_.size();
  return 0;
}

void Value::push_back(Value v) {
  if (type_ == Type::kNull) type_ = Type::kArray;
  if (type_ != Type::kArray) type_error("array", type_);
  array_.push_back(std::move(v));
}

const Value& Value::at(std::size_t index) const {
  if (type_ != Type::kArray) type_error("array", type_);
  if (index >= array_.size())
    throw InvalidInput("json: array index " + std::to_string(index) +
                       " out of range (size " +
                       std::to_string(array_.size()) + ")");
  return array_[index];
}

void Value::set(std::string_view key, Value v) {
  if (type_ == Type::kNull) type_ = Type::kObject;
  if (type_ != Type::kObject) type_error("object", type_);
  for (auto& [k, existing] : object_) {
    if (k == key) {
      existing = std::move(v);
      return;
    }
  }
  object_.emplace_back(std::string(key), std::move(v));
}

Value& Value::operator[](std::string_view key) {
  if (type_ == Type::kNull) type_ = Type::kObject;
  if (type_ != Type::kObject) type_error("object", type_);
  for (auto& [k, existing] : object_) {
    if (k == key) return existing;
  }
  object_.emplace_back(std::string(key), Value());
  return object_.back().second;
}

bool Value::contains(std::string_view key) const noexcept {
  if (type_ != Type::kObject) return false;
  for (const auto& [k, v] : object_) {
    if (k == key) return true;
  }
  return false;
}

const Value& Value::at(std::string_view key) const {
  if (type_ != Type::kObject) type_error("object", type_);
  for (const auto& [k, v] : object_) {
    if (k == key) return v;
  }
  throw InvalidInput("json: missing key \"" + std::string(key) + "\"");
}

void Value::dump_to(std::string& out, int indent, int depth) const {
  const bool pretty = indent >= 0;
  const auto newline_at = [&](int level) {
    if (!pretty) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent * level), ' ');
  };
  switch (type_) {
    case Type::kNull: out += "null"; break;
    case Type::kBool: out += bool_ ? "true" : "false"; break;
    case Type::kNumber: append_number(out, number_); break;
    case Type::kString: out += escape(string_); break;
    case Type::kArray: {
      if (array_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i != 0) out += ',';
        newline_at(depth + 1);
        array_[i].dump_to(out, indent, depth + 1);
      }
      newline_at(depth);
      out += ']';
      break;
    }
    case Type::kObject: {
      if (object_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i != 0) out += ',';
        newline_at(depth + 1);
        out += escape(object_[i].first);
        out += pretty ? ": " : ":";
        object_[i].second.dump_to(out, indent, depth + 1);
      }
      newline_at(depth);
      out += '}';
      break;
    }
  }
}

std::string Value::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value run() {
    Value v = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw InvalidInput("json parse error at offset " + std::to_string(pos_) +
                       ": " + message);
  }

  void skip_whitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  Value parse_value() {
    skip_whitespace();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Value(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return Value(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return Value(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Value();
      default: return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    Value v = Value::object();
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_whitespace();
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      v.set(key, parse_value());
      skip_whitespace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  Value parse_array() {
    expect('[');
    Value v = Value::array();
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.push_back(parse_value());
      skip_whitespace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // Encode as UTF-8 (no surrogate-pair handling; the documents we
          // read are machine-generated ASCII).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("bad escape character");
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) fail("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double parsed = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') fail("malformed number");
    return Value(parsed);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Value parse(std::string_view text) { return Parser(text).run(); }

}  // namespace rr::json
