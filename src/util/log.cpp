#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace rr {
namespace {

LogLevel initial_level() {
  const char* env = std::getenv("RRPLACE_LOG");
  if (env == nullptr) return LogLevel::kWarn;
  const std::string v(env);
  if (v == "error" || v == "0") return LogLevel::kError;
  if (v == "warn" || v == "1") return LogLevel::kWarn;
  if (v == "info" || v == "2") return LogLevel::kInfo;
  if (v == "debug" || v == "3") return LogLevel::kDebug;
  return LogLevel::kWarn;
}

std::atomic<int>& level_storage() noexcept {
  static std::atomic<int> level{static_cast<int>(initial_level())};
  return level;
}

const char* level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kError: return "ERROR";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kDebug: return "DEBUG";
  }
  return "?";
}

}  // namespace

LogLevel log_level() noexcept {
  return static_cast<LogLevel>(level_storage().load(std::memory_order_relaxed));
}

void set_log_level(LogLevel level) noexcept {
  level_storage().store(static_cast<int>(level), std::memory_order_relaxed);
}

bool log_enabled(LogLevel level) noexcept {
  return static_cast<int>(level) <= static_cast<int>(log_level());
}

namespace detail {
void log_emit(LogLevel level, std::string_view message) {
  // One fprintf per message keeps interleaving at line granularity.
  std::fprintf(stderr, "[rrplace %s] %.*s\n", level_name(level),
               static_cast<int>(message.size()), message.data());
}
}  // namespace detail

}  // namespace rr
