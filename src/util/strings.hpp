// Small string parsing helpers shared by the fabric / module file formats.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace rr {

/// Strip leading/trailing ASCII whitespace.
[[nodiscard]] std::string_view trim(std::string_view s) noexcept;

/// Split on a delimiter; empty fields are preserved.
[[nodiscard]] std::vector<std::string_view> split(std::string_view s,
                                                  char delim);

/// Split on runs of whitespace; no empty fields.
[[nodiscard]] std::vector<std::string_view> split_ws(std::string_view s);

/// Parse a base-10 integer; nullopt on any trailing garbage or overflow.
[[nodiscard]] std::optional<long> parse_int(std::string_view s) noexcept;

/// Parse a double; nullopt on any trailing garbage.
[[nodiscard]] std::optional<double> parse_double(std::string_view s) noexcept;

/// True when `s` begins with `prefix`.
[[nodiscard]] bool starts_with(std::string_view s,
                               std::string_view prefix) noexcept;

/// Lower-case an ASCII string.
[[nodiscard]] std::string to_lower(std::string_view s);

}  // namespace rr
