#include "util/rng.hpp"

// Header-only in practice; this TU pins the vtable-free class into the
// library so downstream link lines stay uniform.
namespace rr {
static_assert(Rng::min() == 0);
}  // namespace rr
