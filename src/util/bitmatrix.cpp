#include "util/bitmatrix.hpp"

#include <algorithm>
#include <bit>

namespace rr {

BitMatrix::BitMatrix(int rows, int cols, bool fillValue) {
  RR_REQUIRE(rows >= 0 && cols >= 0, "BitMatrix dimensions must be >= 0");
  rows_ = rows;
  cols_ = cols;
  words_per_row_ = static_cast<std::size_t>((cols + 63) / 64);
  words_.assign(static_cast<std::size_t>(rows) * words_per_row_, 0);
  if (fillValue) fill();
}

void BitMatrix::clear() noexcept {
  std::fill(words_.begin(), words_.end(), 0);
}

void BitMatrix::fill() noexcept {
  if (empty()) return;
  std::fill(words_.begin(), words_.end(), ~std::uint64_t{0});
  // Mask off the tail bits beyond the last column in each row.
  const int tail = cols_ & 63;
  if (tail != 0) {
    const std::uint64_t mask = (std::uint64_t{1} << tail) - 1;
    for (int r = 0; r < rows_; ++r) {
      words_[static_cast<std::size_t>(r) * words_per_row_ +
             (words_per_row_ - 1)] &= mask;
    }
  }
}

std::size_t BitMatrix::popcount() const noexcept {
  std::size_t total = 0;
  for (std::uint64_t w : words_) total += static_cast<std::size_t>(std::popcount(w));
  return total;
}

std::size_t BitMatrix::row_popcount(int r) const noexcept {
  RR_ASSERT(r >= 0 && r < rows_);
  std::size_t total = 0;
  const std::size_t base = static_cast<std::size_t>(r) * words_per_row_;
  for (std::size_t i = 0; i < words_per_row_; ++i)
    total += static_cast<std::size_t>(std::popcount(words_[base + i]));
  return total;
}

std::uint64_t BitMatrix::row_window(int r, int c) const noexcept {
  // Reads 64 bits of row r starting at column c; columns outside [0, cols_)
  // contribute zeros. c may be negative.
  if (r < 0 || r >= rows_) return 0;
  std::uint64_t out = 0;
  const std::size_t base = static_cast<std::size_t>(r) * words_per_row_;
  // The window spans at most two stored words.
  const int firstWord = c >= 0 ? (c >> 6) : ((c - 63) / 64);
  const int shift = c - firstWord * 64;  // in [0, 63]
  auto load = [&](int wi) -> std::uint64_t {
    if (wi < 0 || wi >= static_cast<int>(words_per_row_)) return 0;
    return words_[base + static_cast<std::size_t>(wi)];
  };
  out = load(firstWord) >> shift;
  if (shift != 0) out |= load(firstWord + 1) << (64 - shift);
  return out;
}

bool BitMatrix::intersects_shifted(const BitMatrix& other, int dr,
                                   int dc) const noexcept {
  for (int r = 0; r < other.rows_; ++r) {
    const int tr = r + dr;
    if (tr < 0 || tr >= rows_) continue;
    const std::size_t obase = static_cast<std::size_t>(r) * other.words_per_row_;
    for (std::size_t wi = 0; wi < other.words_per_row_; ++wi) {
      const std::uint64_t ow = other.words_[obase + wi];
      if (ow == 0) continue;
      const int col = static_cast<int>(wi) * 64 + dc;
      if (ow & row_window(tr, col)) return true;
    }
  }
  return false;
}

std::size_t BitMatrix::overlap_popcount_shifted(const BitMatrix& other,
                                                int dr, int dc) const noexcept {
  std::size_t total = 0;
  for (int r = 0; r < other.rows_; ++r) {
    const int tr = r + dr;
    if (tr < 0 || tr >= rows_) continue;
    const std::size_t obase =
        static_cast<std::size_t>(r) * other.words_per_row_;
    for (std::size_t wi = 0; wi < other.words_per_row_; ++wi) {
      const std::uint64_t ow = other.words_[obase + wi];
      if (ow == 0) continue;
      const int col = static_cast<int>(wi) * 64 + dc;
      total += static_cast<std::size_t>(
          std::popcount(ow & row_window(tr, col)));
    }
  }
  return total;
}

bool BitMatrix::covers_shifted(const BitMatrix& other, int dr,
                               int dc) const noexcept {
  for (int r = 0; r < other.rows_; ++r) {
    const int tr = r + dr;
    const std::size_t obase = static_cast<std::size_t>(r) * other.words_per_row_;
    for (std::size_t wi = 0; wi < other.words_per_row_; ++wi) {
      const std::uint64_t ow = other.words_[obase + wi];
      if (ow == 0) continue;
      if (tr < 0 || tr >= rows_) return false;
      const int col = static_cast<int>(wi) * 64 + dc;
      if ((ow & row_window(tr, col)) != ow) return false;
    }
  }
  return true;
}

void BitMatrix::or_shifted(const BitMatrix& other, int dr, int dc) noexcept {
  for (int r = 0; r < other.rows_; ++r) {
    const int tr = r + dr;
    for (int c = 0; c < other.cols_; ++c) {
      if (!other.get(r, c)) continue;
      const int tc = c + dc;
      RR_ASSERT(tr >= 0 && tr < rows_ && tc >= 0 && tc < cols_);
      set(tr, tc, true);
    }
  }
}

void BitMatrix::clear_shifted(const BitMatrix& other, int dr, int dc) noexcept {
  for (int r = 0; r < other.rows_; ++r) {
    const int tr = r + dr;
    if (tr < 0 || tr >= rows_) continue;
    for (int c = 0; c < other.cols_; ++c) {
      if (!other.get(r, c)) continue;
      const int tc = c + dc;
      if (tc < 0 || tc >= cols_) continue;
      set(tr, tc, false);
    }
  }
}

void BitMatrix::and_with(const BitMatrix& other) noexcept {
  RR_ASSERT(rows_ == other.rows_ && cols_ == other.cols_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
}

void BitMatrix::or_with(const BitMatrix& other) noexcept {
  RR_ASSERT(rows_ == other.rows_ && cols_ == other.cols_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
}

std::string BitMatrix::to_string() const {
  std::string out;
  out.reserve(static_cast<std::size_t>(rows_) *
              (static_cast<std::size_t>(cols_) + 1));
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) out.push_back(get(r, c) ? '#' : '.');
    out.push_back('\n');
  }
  return out;
}

}  // namespace rr
