#include "util/bitmatrix.hpp"

#include <algorithm>
#include <bit>

#include "util/simd/simd.hpp"

namespace rr {

BitMatrix::BitMatrix(int rows, int cols, bool fillValue) {
  RR_REQUIRE(rows >= 0 && cols >= 0, "BitMatrix dimensions must be >= 0");
  rows_ = rows;
  cols_ = cols;
  words_per_row_ = static_cast<std::size_t>((cols + 63) / 64);
  words_.assign(static_cast<std::size_t>(rows) * words_per_row_, 0);
  if (fillValue) fill();
}

void BitMatrix::clear() noexcept {
  std::fill(words_.begin(), words_.end(), 0);
}

void BitMatrix::fill() noexcept {
  if (empty()) return;
  std::fill(words_.begin(), words_.end(), ~std::uint64_t{0});
  // Mask off the tail bits beyond the last column in each row.
  const int tail = cols_ & 63;
  if (tail != 0) {
    const std::uint64_t mask = (std::uint64_t{1} << tail) - 1;
    for (int r = 0; r < rows_; ++r) {
      words_[static_cast<std::size_t>(r) * words_per_row_ +
             (words_per_row_ - 1)] &= mask;
    }
  }
}

std::size_t BitMatrix::popcount() const noexcept {
  return simd::popcount(words_);
}

std::size_t BitMatrix::row_popcount(int r) const noexcept {
  return simd::popcount(row_span(r));
}

std::uint64_t BitMatrix::row_window(int r, int c) const noexcept {
  // Reads 64 bits of row r starting at column c; columns outside [0, cols_)
  // contribute zeros. c may be negative.
  if (r < 0 || r >= rows_) return 0;
  std::uint64_t out = 0;
  const std::size_t base = static_cast<std::size_t>(r) * words_per_row_;
  // The window spans at most two stored words.
  const int firstWord = c >= 0 ? (c >> 6) : ((c - 63) / 64);
  const int shift = c - firstWord * 64;  // in [0, 63]
  auto load = [&](int wi) -> std::uint64_t {
    if (wi < 0 || wi >= static_cast<int>(words_per_row_)) return 0;
    return words_[base + static_cast<std::size_t>(wi)];
  };
  out = load(firstWord) >> shift;
  if (shift != 0) out |= load(firstWord + 1) << (64 - shift);
  return out;
}

bool BitMatrix::intersects_shifted(const BitMatrix& other, int dr,
                                   int dc) const noexcept {
  for (int r = 0; r < other.rows_; ++r) {
    const int tr = r + dr;
    if (tr < 0 || tr >= rows_) continue;
    const std::size_t obase =
        static_cast<std::size_t>(r) * other.words_per_row_;
    for (std::size_t wi = 0; wi < other.words_per_row_; ++wi) {
      const std::uint64_t ow = other.words_[obase + wi];
      if (ow == 0) continue;
      const int col = static_cast<int>(wi) * 64 + dc;
      if (ow & row_window(tr, col)) return true;
    }
  }
  return false;
}

std::size_t BitMatrix::overlap_popcount_shifted(const BitMatrix& other,
                                                int dr, int dc) const noexcept {
  std::size_t total = 0;
  for (int r = 0; r < other.rows_; ++r) {
    const int tr = r + dr;
    if (tr < 0 || tr >= rows_) continue;
    total += simd::shifted_and_popcount(other.row_span(r), row_span(tr), dc);
  }
  return total;
}

bool BitMatrix::covers_shifted(const BitMatrix& other, int dr,
                               int dc) const noexcept {
  for (int r = 0; r < other.rows_; ++r) {
    const int tr = r + dr;
    const std::size_t obase =
        static_cast<std::size_t>(r) * other.words_per_row_;
    for (std::size_t wi = 0; wi < other.words_per_row_; ++wi) {
      const std::uint64_t ow = other.words_[obase + wi];
      if (ow == 0) continue;
      if (tr < 0 || tr >= rows_) return false;
      const int col = static_cast<int>(wi) * 64 + dc;
      if ((ow & row_window(tr, col)) != ow) return false;
    }
  }
  return true;
}

namespace {

/// Column positions of the first and last set bit of a row span, or
/// nothing when the row is empty.
struct BitBounds {
  int lo;
  int hi;
  bool any;
};

BitBounds row_bit_bounds(std::span<const std::uint64_t> row) noexcept {
  BitBounds bounds{0, 0, false};
  for (std::size_t wi = 0; wi < row.size(); ++wi) {
    if (row[wi] == 0) continue;
    if (!bounds.any) {
      bounds.lo = static_cast<int>(wi) * 64 + std::countr_zero(row[wi]);
      bounds.any = true;
    }
    bounds.hi = static_cast<int>(wi) * 64 + 63 - std::countl_zero(row[wi]);
  }
  return bounds;
}

}  // namespace

void BitMatrix::or_shifted(const BitMatrix& other, int dr, int dc) noexcept {
  // Word-parallel per-row OR. The contract stays the per-cell one: every
  // set bit of `other` translated by (dr, dc) must land inside *this, which
  // is equivalent to its extremal set bits landing inside.
  for (int r = 0; r < other.rows_; ++r) {
    const auto src = other.row_span(r);
    const BitBounds bounds = row_bit_bounds(src);
    if (!bounds.any) continue;
    const int tr = r + dr;
    RR_ASSERT(tr >= 0 && tr < rows_ && bounds.lo + dc >= 0 &&
              bounds.hi + dc < cols_);
    const std::size_t w0 = static_cast<std::size_t>(bounds.lo + dc) >> 6;
    const std::size_t w1 = static_cast<std::size_t>(bounds.hi + dc) >> 6;
    const auto dst = row_span_mut(tr).subspan(w0, w1 - w0 + 1);
    simd::shift_or_into(dst, src, static_cast<long>(w0) * 64 - dc);
  }
}

void BitMatrix::clear_shifted(const BitMatrix& other, int dr, int dc) noexcept {
  // Word-parallel per-row AND-NOT; bits translated outside *this simply
  // fall off the gathered window, matching the per-cell semantics.
  for (int r = 0; r < other.rows_; ++r) {
    const int tr = r + dr;
    if (tr < 0 || tr >= rows_) continue;
    const auto src = other.row_span(r);
    const BitBounds bounds = row_bit_bounds(src);
    if (!bounds.any) continue;
    const long lo_word =
        std::max<long>(0, static_cast<long>(bounds.lo + dc) >> 6);
    const long hi_word = std::min<long>(
        static_cast<long>(words_per_row_) - 1,
        simd::detail::floor_div64(static_cast<long>(bounds.hi) + dc));
    if (hi_word < lo_word) continue;
    const auto dst =
        row_span_mut(tr).subspan(static_cast<std::size_t>(lo_word),
                                 static_cast<std::size_t>(hi_word - lo_word) +
                                     1);
    simd::shift_andnot_into(dst, src, lo_word * 64 - dc);
  }
}

void BitMatrix::and_with(const BitMatrix& other) noexcept {
  RR_ASSERT(rows_ == other.rows_ && cols_ == other.cols_);
  simd::and_inplace(words_, other.words_);
}

void BitMatrix::or_with(const BitMatrix& other) noexcept {
  RR_ASSERT(rows_ == other.rows_ && cols_ == other.cols_);
  simd::or_inplace(words_, other.words_);
}

std::string BitMatrix::to_string() const {
  std::string out;
  out.reserve(static_cast<std::size_t>(rows_) *
              (static_cast<std::size_t>(cols_) + 1));
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) out.push_back(get(r, c) ? '#' : '.');
    out.push_back('\n');
  }
  return out;
}

}  // namespace rr
