// Solver observability: a process-wide registry of named counters and
// timers, plus the global collection switch.
//
// Design goals, in order:
//   1. Zero cost when disabled. Collection is off by default; every
//      recording call starts with one relaxed atomic-bool load (or compiles
//      away entirely under -DRRPLACE_DISABLE_METRICS). The hot solver loops
//      additionally cache the flag at Space construction so they pay
//      nothing per propagation.
//   2. Machine readable. Snapshots serialize to JSON (util/json) and feed
//      `rrplace_cli --stats-json`, the BENCH_*.json records and the CI
//      benchmark artifacts.
//   3. Mergeable. Portfolio workers and LNS iterations record into local
//      registries or stat structs and merge into one document at the end.
//
// Naming convention: dot-separated paths, coarse component first —
// "placer.lns.iterations", "placer.validator.rejections",
// "placer.build_seconds". Counters are monotone event counts; timers
// accumulate (count, total seconds) pairs.
//
// Threading contract:
//   - Every Registry method is individually thread-safe (one mutex per
//     registry; merge() copies the source under its lock, then folds under
//     the destination lock, so no call ever holds two locks at once).
//   - global() resolves to the process-wide registry unless the calling
//     thread installed a ThreadShard redirect, in which case it resolves to
//     that thread's shard. Concurrent engines (portfolio workers, service
//     workers) each install a shard so hot-path recording never contends on
//     the process mutex, every event lands in exactly one shard, and a
//     merge-on-snapshot yields totals identical to a serial run.
//   - Snapshots (counter()/timer()/to_json()) copy under the lock: a
//     snapshot taken while other threads record sees a consistent
//     (point-in-time) view and sorted keys, never a torn entry.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/json.hpp"
#include "util/stopwatch.hpp"

namespace rr::metrics {

/// Process-wide collection switch. Initialized once from $RRPLACE_METRICS
/// (unset/0 = off); flip programmatically with set_enabled — the CLI and
/// bench harnesses do this when asked for stats output.
[[nodiscard]] bool enabled() noexcept;
void set_enabled(bool on) noexcept;

/// One timer's accumulated state.
struct TimerStat {
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;

  [[nodiscard]] double seconds() const noexcept {
    return static_cast<double>(total_ns) * 1e-9;
  }
};

/// Named counters + timers. Thread-safe; recording takes one mutex, so
/// keep per-event recording out of inner solver loops (those use the
/// per-Space counters instead) and record phase-level events here.
class Registry {
 public:
  Registry() = default;

  /// Add `delta` to counter `name` (created on first use). No-op while
  /// collection is disabled.
  void add(std::string_view name, std::uint64_t delta = 1);

  /// Record one timed interval under timer `name`. No-op while disabled.
  void record_time(std::string_view name, std::uint64_t elapsed_ns);

  /// Current counter value (0 when absent).
  [[nodiscard]] std::uint64_t counter(std::string_view name) const;

  /// Current timer state (zeros when absent).
  [[nodiscard]] TimerStat timer(std::string_view name) const;

  /// Fold another registry into this one (summing counters and timers).
  /// Merging ignores the enabled() switch: data already collected is never
  /// dropped.
  void merge(const Registry& other);

  /// Drop all counters and timers.
  void reset();

  [[nodiscard]] bool empty() const;

  /// Snapshot as {"counters": {...}, "timers": {name: {count, seconds}}},
  /// keys sorted so output is stable across runs.
  [[nodiscard]] json::Value to_json() const;

 private:
  mutable std::mutex mutex_;
  // Flat sorted-on-demand vectors: the registry holds tens of entries, and
  // snapshots are rare next to updates.
  std::vector<std::pair<std::string, std::uint64_t>> counters_;
  std::vector<std::pair<std::string, TimerStat>> timers_;
};

/// The registry every component records into by default: the process-wide
/// registry, unless the calling thread is inside a ThreadShard scope (see
/// below), in which case its shard.
[[nodiscard]] Registry& global();

/// The process-wide registry itself, ignoring any thread redirect — the
/// snapshot/merge target for emitters.
[[nodiscard]] Registry& process();

/// RAII redirect: while alive, global() on *this thread* resolves to
/// `shard` instead of the process registry. Worker threads of concurrent
/// engines install one over a worker-local registry so deep-stack
/// RR_METRIC_* recording is contention-free and per-worker attributable;
/// the owner merges the shards into process() (or a result document) when
/// the workers are done. Scopes nest; each restores the previous target.
class ThreadShard {
 public:
  explicit ThreadShard(Registry& shard) noexcept;
  ~ThreadShard();

  ThreadShard(const ThreadShard&) = delete;
  ThreadShard& operator=(const ThreadShard&) = delete;

 private:
  Registry* previous_;
};

/// RAII timer: records the scope's wall time into `registry` under `name`.
/// Decides at construction; ~free when collection is disabled.
class ScopedTimer {
 public:
  ScopedTimer(Registry& registry, std::string_view name)
      : registry_(enabled() ? &registry : nullptr), name_(name) {}
  explicit ScopedTimer(std::string_view name) : ScopedTimer(global(), name) {}

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() {
    if (registry_ != nullptr) {
      registry_->record_time(
          name_, static_cast<std::uint64_t>(watch_.elapsed().count()));
    }
  }

 private:
  Registry* registry_;
  std::string name_;
  Stopwatch watch_;
};

}  // namespace rr::metrics

// Compile-time kill switch: -DRRPLACE_DISABLE_METRICS turns the recording
// macros into no-ops (the registry itself stays linkable so cold paths
// like the JSON emitters still compile).
#ifdef RRPLACE_DISABLE_METRICS
#define RR_METRIC_ADD(name, delta) \
  do {                             \
  } while (false)
#define RR_METRIC_COUNT(name) \
  do {                        \
  } while (false)
#else
#define RR_METRIC_ADD(name, delta)                        \
  do {                                                    \
    if (::rr::metrics::enabled())                         \
      ::rr::metrics::global().add((name), (delta));       \
  } while (false)
#define RR_METRIC_COUNT(name) RR_METRIC_ADD(name, 1)
#endif
