// Console table and CSV emission for the benchmark harnesses.
//
// Every bench binary prints its table/figure in two forms: an aligned
// human-readable table (what the paper prints) and a machine-readable CSV
// block (for downstream plotting), separated so scripts can grep `# csv`.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace rr {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Append a data row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Convenience: format doubles with fixed precision.
  static std::string num(double value, int precision = 2);
  static std::string pct(double fraction, int precision = 1);

  /// Render as an aligned ASCII table.
  [[nodiscard]] std::string to_string() const;

  /// Render as CSV (header + rows), commas in cells are escaped by quoting.
  [[nodiscard]] std::string to_csv() const;

  /// Print both renderings to `os`, the CSV prefixed with "# csv".
  void print(std::ostream& os, const std::string& title) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace rr
