#include "util/strings.hpp"

#include <cctype>
#include <charconv>

namespace rr {

std::string_view trim(std::string_view s) noexcept {
  std::size_t begin = 0;
  std::size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin])))
    ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1])))
    --end;
  return s.substr(begin, end - begin);
}

std::vector<std::string_view> split(std::string_view s, char delim) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string_view> split_ws(std::string_view s) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    const std::size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.push_back(s.substr(start, i - start));
  }
  return out;
}

std::optional<long> parse_int(std::string_view s) noexcept {
  s = trim(s);
  if (s.empty()) return std::nullopt;
  long value = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return value;
}

std::optional<double> parse_double(std::string_view s) noexcept {
  s = trim(s);
  if (s.empty()) return std::nullopt;
  double value = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return value;
}

bool starts_with(std::string_view s, std::string_view prefix) noexcept {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& ch : out)
    ch = static_cast<char>(std::tolower(static_cast<unsigned char>(ch)));
  return out;
}

}  // namespace rr
