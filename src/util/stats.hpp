// Streaming and batch descriptive statistics for experiment harnesses.
#pragma once

#include <cstddef>
#include <limits>
#include <span>
#include <string>
#include <vector>

namespace rr {

/// Welford streaming accumulator: numerically stable mean/variance plus
/// min/max. Used by every bench harness to aggregate per-run measurements.
class RunningStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  /// Half-width of the ~95% normal-approximation confidence interval.
  [[nodiscard]] double ci95_half_width() const noexcept;

  void merge(const RunningStats& other) noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Batch summary of a sample vector, including order statistics.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double max = 0.0;
};

/// Summarize a sample. The input is copied, not mutated.
[[nodiscard]] Summary summarize(std::span<const double> sample);

/// Linearly interpolated percentile of a *sorted* sample, q in [0, 1].
[[nodiscard]] double percentile_sorted(std::span<const double> sorted,
                                       double q);

/// Render a summary as "mean ± sd [min, max]" with the given precision.
[[nodiscard]] std::string format_summary(const Summary& s, int precision = 2);

}  // namespace rr
