// Error handling primitives shared across the library.
//
// We use exceptions for contract violations on the public API surface
// (malformed input files, inconsistent models) and RR_ASSERT for internal
// invariants that indicate a bug in rrplace itself.
#pragma once

#include <stdexcept>
#include <string>

namespace rr {

/// Thrown when user-provided input (fabric files, module libraries,
/// generator parameters) is malformed or inconsistent.
class InvalidInput : public std::runtime_error {
 public:
  explicit InvalidInput(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a model is structurally inconsistent (e.g. a shape with no
/// tiles, a module with no shapes) — violations of the §III definitions.
class ModelError : public std::logic_error {
 public:
  explicit ModelError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line) {
  throw std::logic_error(std::string("rrplace internal assertion failed: ") +
                         expr + " at " + file + ":" + std::to_string(line));
}
}  // namespace detail

}  // namespace rr

// Internal invariant check. Always on: the solver relies on these to catch
// propagation bugs early, and their cost is negligible next to search.
#define RR_ASSERT(expr)                                       \
  do {                                                        \
    if (!(expr)) ::rr::detail::assert_fail(#expr, __FILE__, __LINE__); \
  } while (false)

// Input validation on public entry points.
#define RR_REQUIRE(expr, msg)                  \
  do {                                         \
    if (!(expr)) throw ::rr::InvalidInput(msg); \
  } while (false)
