#include "util/table.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace rr {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  RR_REQUIRE(!header_.empty(), "table header must be non-empty");
}

void TextTable::add_row(std::vector<std::string> row) {
  RR_REQUIRE(row.size() == header_.size(),
             "table row arity must match header");
  rows_.push_back(std::move(row));
}

std::string TextTable::num(double value, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << value;
  return os.str();
}

std::string TextTable::pct(double fraction, int precision) {
  return num(fraction * 100.0, precision) + "%";
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t i = 0; i < header_.size(); ++i)
    width[i] = header_[i].size();
  for (const auto& row : rows_)
    for (std::size_t i = 0; i < row.size(); ++i)
      width[i] = std::max(width[i], row[i].size());

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      os << "| " << row[i] << std::string(width[i] - row[i].size() + 1, ' ');
    }
    os << "|\n";
  };
  auto emit_rule = [&] {
    for (std::size_t w : width) os << '+' << std::string(w + 2, '-');
    os << "+\n";
  };
  emit_rule();
  emit_row(header_);
  emit_rule();
  for (const auto& row : rows_) emit_row(row);
  emit_rule();
  return os.str();
}

std::string TextTable::to_csv() const {
  auto escape = [](const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string out = "\"";
    for (char ch : cell) {
      if (ch == '"') out += "\"\"";
      else out.push_back(ch);
    }
    out.push_back('"');
    return out;
  };
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) os << ',';
      os << escape(row[i]);
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void TextTable::print(std::ostream& os, const std::string& title) const {
  os << "== " << title << " ==\n" << to_string() << "# csv " << title << "\n"
     << to_csv() << "\n";
}

}  // namespace rr
