// Wall-clock stopwatch and deadline helpers used by the search engines.
#pragma once

#include <chrono>

namespace rr {

/// Monotonic stopwatch. Started on construction.
class Stopwatch {
 public:
  using clock = std::chrono::steady_clock;

  Stopwatch() noexcept : start_(clock::now()) {}

  void restart() noexcept { start_ = clock::now(); }

  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  [[nodiscard]] std::chrono::nanoseconds elapsed() const noexcept {
    return clock::now() - start_;
  }

 private:
  clock::time_point start_;
};

/// A deadline that search loops poll. A non-positive budget means "no limit".
class Deadline {
 public:
  Deadline() noexcept : unlimited_(true) {}

  explicit Deadline(double budget_seconds) noexcept
      : unlimited_(budget_seconds <= 0.0) {
    if (unlimited_) return;
    // duration_cast from a double-seconds value overflows the clock's
    // integer representation for very large budgets, which would wrap end_
    // into the past and make the deadline start out expired. Budgets at or
    // beyond what the clock can express saturate to the far future instead.
    const Stopwatch::clock::time_point now = Stopwatch::clock::now();
    const double max_budget =
        std::chrono::duration<double>(Stopwatch::clock::time_point::max() -
                                      now)
            .count();
    end_ = !(budget_seconds < max_budget)  // also catches NaN budgets
               ? Stopwatch::clock::time_point::max()
               : now + std::chrono::duration_cast<Stopwatch::clock::duration>(
                           std::chrono::duration<double>(budget_seconds));
  }

  [[nodiscard]] bool expired() const noexcept {
    return !unlimited_ && Stopwatch::clock::now() >= end_;
  }

  [[nodiscard]] bool unlimited() const noexcept { return unlimited_; }

  /// Remaining budget in seconds (infinity-ish large value when unlimited).
  [[nodiscard]] double remaining_seconds() const noexcept {
    if (unlimited_) return 1e30;
    return std::chrono::duration<double>(end_ - Stopwatch::clock::now())
        .count();
  }

 private:
  bool unlimited_;
  Stopwatch::clock::time_point end_{};
};

}  // namespace rr
