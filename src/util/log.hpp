// Minimal leveled logger. Thread-safe (each message is a single write);
// level is a process-wide atomic so the solver can raise verbosity from the
// RRPLACE_LOG environment variable without plumbing a logger everywhere.
#pragma once

#include <sstream>
#include <string_view>

namespace rr {

enum class LogLevel : int { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

/// Current process-wide log level (default: kWarn, or $RRPLACE_LOG).
[[nodiscard]] LogLevel log_level() noexcept;
void set_log_level(LogLevel level) noexcept;

/// True when messages at `level` would be emitted.
[[nodiscard]] bool log_enabled(LogLevel level) noexcept;

namespace detail {
void log_emit(LogLevel level, std::string_view message);
}

}  // namespace rr

#define RR_LOG(level, ...)                                       \
  do {                                                           \
    if (::rr::log_enabled(level)) {                              \
      std::ostringstream rr_log_os;                              \
      rr_log_os << __VA_ARGS__;                                  \
      ::rr::detail::log_emit(level, rr_log_os.str());            \
    }                                                            \
  } while (false)

#define RR_ERROR(...) RR_LOG(::rr::LogLevel::kError, __VA_ARGS__)
#define RR_WARN(...) RR_LOG(::rr::LogLevel::kWarn, __VA_ARGS__)
#define RR_INFO(...) RR_LOG(::rr::LogLevel::kInfo, __VA_ARGS__)
#define RR_DEBUG(...) RR_LOG(::rr::LogLevel::kDebug, __VA_ARGS__)
