#include "util/env.hpp"

#include <cstdlib>

#include "util/strings.hpp"

namespace rr {

int env_int(const char* name, int fallback) noexcept {
  const char* value = std::getenv(name);
  if (value == nullptr) return fallback;
  const auto parsed = parse_int(value);
  return parsed ? static_cast<int>(*parsed) : fallback;
}

double env_double(const char* name, double fallback) noexcept {
  const char* value = std::getenv(name);
  if (value == nullptr) return fallback;
  const auto parsed = parse_double(value);
  return parsed ? *parsed : fallback;
}

std::string env_string(const char* name, const std::string& fallback) {
  const char* value = std::getenv(name);
  return value ? std::string(value) : fallback;
}

}  // namespace rr
