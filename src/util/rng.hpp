// Deterministic, fast pseudo-random number generation.
//
// All stochastic components (module generator, simulated annealing, value
// ordering randomization, portfolio seeds) draw from rr::Rng so that every
// experiment is reproducible from a single seed. xoshiro256** is used for
// its speed and statistical quality; seeding goes through splitmix64 as
// recommended by the xoshiro authors.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <vector>

#include "util/error.hpp"

namespace rr {

/// splitmix64 step; used for seeding and as a cheap stateless mixer.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** generator. Satisfies UniformRandomBitGenerator so it can be
/// plugged into <random> distributions, though the member helpers below are
/// preferred (they are reproducible across standard library versions).
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept {
    reseed(seed);
  }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [lo, hi], inclusive. Uses Lemire's unbiased method.
  int uniform_int(int lo, int hi) noexcept {
    RR_ASSERT(lo <= hi);
    const std::uint64_t range = static_cast<std::uint64_t>(hi) - lo + 1;
    return lo + static_cast<int>(bounded(range));
  }

  /// Uniform value in [0, n). n must be > 0.
  std::uint64_t bounded(std::uint64_t n) noexcept {
    RR_ASSERT(n > 0);
    // Rejection sampling on the top bits to avoid modulo bias.
    const std::uint64_t threshold = (0 - n) % n;
    for (;;) {
      const std::uint64_t r = (*this)();
      if (r >= threshold) return r % n;
    }
  }

  /// Uniform double in [0, 1).
  double uniform01() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p of returning true.
  bool chance(double p) noexcept { return uniform01() < p; }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) noexcept {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = bounded(i);
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Pick a uniformly random element index of a non-empty container.
  template <typename Container>
  std::size_t pick_index(const Container& c) noexcept {
    RR_ASSERT(!c.empty());
    return static_cast<std::size_t>(bounded(c.size()));
  }

  /// Derive an independent child generator (for portfolio workers etc.).
  Rng split() noexcept { return Rng((*this)() ^ 0xd1b54a32d192ed03ULL); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace rr
