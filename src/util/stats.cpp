#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/error.hpp"

namespace rr {

void RunningStats::add(double x) noexcept {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::ci95_half_width() const noexcept {
  if (n_ < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(n_));
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double percentile_sorted(std::span<const double> sorted, double q) {
  RR_ASSERT(!sorted.empty());
  RR_ASSERT(q >= 0.0 && q <= 1.0);
  if (sorted.size() == 1) return sorted[0];
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

Summary summarize(std::span<const double> sample) {
  Summary s;
  s.count = sample.size();
  if (sample.empty()) return s;
  std::vector<double> sorted(sample.begin(), sample.end());
  std::sort(sorted.begin(), sorted.end());
  RunningStats rs;
  for (double x : sorted) rs.add(x);
  s.mean = rs.mean();
  s.stddev = rs.stddev();
  s.min = sorted.front();
  s.max = sorted.back();
  s.p25 = percentile_sorted(sorted, 0.25);
  s.median = percentile_sorted(sorted, 0.50);
  s.p75 = percentile_sorted(sorted, 0.75);
  return s;
}

std::string format_summary(const Summary& s, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << s.mean << " ± " << s.stddev << " [" << s.min << ", " << s.max << "]";
  return os.str();
}

}  // namespace rr
