#include "sim/workload.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <sstream>
#include <tuple>
#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace rr::sim {
namespace {

/// Bounded Pareto on [lo, hi) via inverse CDF; heavy upper tail for
/// small alpha. Requires 0 < lo < hi.
double bounded_pareto(Rng& rng, double alpha, double lo, double hi) {
  const double u = rng.uniform01();
  const double ratio = std::pow(lo / hi, alpha);
  return lo / std::pow(1.0 - u * (1.0 - ratio), 1.0 / alpha);
}

/// Knuth Poisson sampler — explicit uniform01 products keep the draw
/// reproducible across standard libraries (std::poisson_distribution is
/// implementation-defined). Lambda is clamped so a misconfigured rate
/// cannot spin the product loop unboundedly.
long poisson(Rng& rng, double lambda) {
  lambda = std::clamp(lambda, 0.0, 50.0);
  const double limit = std::exp(-lambda);
  long k = 0;
  double product = rng.uniform01();
  while (product > limit) {
    ++k;
    product *= rng.uniform01();
  }
  return k;
}

}  // namespace

WorkloadGenerator::WorkloadGenerator(WorkloadParams params,
                                     std::span<const model::Module> library,
                                     int fabric_width, int fabric_height)
    : params_(params),
      library_(library),
      fabric_width_(fabric_width),
      fabric_height_(fabric_height) {
  RR_REQUIRE(!library.empty(), "workload generator needs a module library");
  RR_REQUIRE(params_.tenants >= 1, "workload generator needs >= 1 tenant");
  RR_REQUIRE(params_.requests >= 0, "request budget must be non-negative");
  RR_REQUIRE(fabric_width >= 1 && fabric_height >= 1,
             "fabric dimensions must be positive");
  RR_REQUIRE(params_.life_min >= 0 && params_.life_max >= params_.life_min,
             "lifetime bounds must satisfy 0 <= min <= max");
  RR_REQUIRE(params_.priority_classes >= 1,
             "need at least one priority class");
}

service::ServeTrace WorkloadGenerator::generate() {
  service::ServeTrace trace;
  trace.tenants = params_.tenants;
  trace.requests.reserve(static_cast<std::size_t>(params_.requests));

  Rng rng(params_.seed);

  // Library modules sorted by minimum area: the Pareto area draw maps to
  // the nearest entry (ties to the lower library index).
  std::vector<std::pair<int, int>> by_area;  // (min_area, library index)
  by_area.reserve(library_.size());
  for (std::size_t i = 0; i < library_.size(); ++i)
    by_area.emplace_back(library_[i].min_area(), static_cast<int>(i));
  std::sort(by_area.begin(), by_area.end());
  const double area_lo = static_cast<double>(by_area.front().first);
  const double area_hi = static_cast<double>(by_area.back().first) + 1.0;

  auto pick_module = [&]() {
    const double target =
        area_lo < area_hi - 0.5
            ? bounded_pareto(rng, params_.size_alpha, std::max(1.0, area_lo),
                             area_hi)
            : area_lo;
    int best = by_area.front().second;
    double best_gap = 1e300;
    for (const auto& [area, index] : by_area) {
      const double gap = std::abs(static_cast<double>(area) - target);
      if (gap < best_gap) {
        best_gap = gap;
        best = index;
      }
    }
    return best;
  };

  auto draw_lifetime = [&]() -> long {
    const double lo = static_cast<double>(params_.life_min) + 1.0;
    const double hi = static_cast<double>(params_.life_max) + 2.0;
    const double drawn = bounded_pareto(rng, params_.life_alpha, lo, hi);
    return std::clamp(static_cast<long>(drawn) - 1, params_.life_min,
                      params_.life_max);
  };

  auto draw_deadline_ms = [&]() -> double {
    if (!(params_.deadline_base_ms > 0.0)) return 0.0;
    const int cls =
        static_cast<int>(rng.bounded(
            static_cast<std::uint64_t>(params_.priority_classes)));
    // Class 0 is the tightest; keep the value integral so rendered text
    // round-trips bit-exactly through the parser.
    return std::ceil(params_.deadline_base_ms *
                     std::pow(params_.deadline_class_mult, cls));
  };

  // Pending removals: (tick, tenant, instance), popped in that order.
  using Departure = std::tuple<long, int, int>;
  std::priority_queue<Departure, std::vector<Departure>,
                      std::greater<Departure>>
      departures;
  std::vector<int> next_instance(static_cast<std::size_t>(params_.tenants),
                                 1);
  // Per-tenant storm state + the permanent fault tiles the current storm
  // has injected (candidates for targeted repair at storm end).
  std::vector<char> storming(static_cast<std::size_t>(params_.tenants), 0);
  std::vector<std::vector<std::pair<int, int>>> storm_permanents(
      static_cast<std::size_t>(params_.tenants));

  bool burst = false;
  long emitted = 0;
  auto emit = [&](const service::Request& request) {
    if (emitted >= params_.requests) return false;
    trace.requests.push_back(request);
    ++emitted;
    return true;
  };

  for (long tick = 0; emitted < params_.requests; ++tick) {
    // 1. Departures due this tick (deterministic heap order).
    while (!departures.empty() && std::get<0>(departures.top()) <= tick) {
      const auto [when, tenant, instance] = departures.top();
      departures.pop();
      service::Request remove;
      remove.tenant = tenant;
      remove.op = service::RequestOp::kRemove;
      remove.instance = instance;
      if (!emit(remove)) return trace;
    }

    // 2. MMPP state, diurnal modulation, arrivals.
    if (burst ? rng.chance(params_.p_exit_burst)
              : rng.chance(params_.p_enter_burst))
      burst = !burst;
    double rate = burst ? params_.rate_high : params_.rate_low;
    if (params_.diurnal_period > 0) {
      const double phase = 2.0 * 3.14159265358979323846 *
                           static_cast<double>(tick) /
                           static_cast<double>(params_.diurnal_period);
      rate *= std::max(0.0, 1.0 + params_.diurnal_amplitude * std::sin(phase));
    }
    const long arrivals = poisson(rng, rate);
    for (long a = 0; a < arrivals; ++a) {
      const int tenant = static_cast<int>(
          rng.bounded(static_cast<std::uint64_t>(params_.tenants)));
      service::Request place;
      place.tenant = tenant;
      place.op = service::RequestOp::kPlace;
      place.instance = next_instance[static_cast<std::size_t>(tenant)]++;
      place.module = pick_module();
      place.deadline_ms = draw_deadline_ms();
      const long lifetime = draw_lifetime();
      if (!emit(place)) return trace;
      if (lifetime == 0) {
        // Zero-duration edge case: the remove lands immediately after the
        // place, in the same tick.
        service::Request remove;
        remove.tenant = tenant;
        remove.op = service::RequestOp::kRemove;
        remove.instance = place.instance;
        if (!emit(remove)) return trace;
      } else {
        departures.emplace(tick + lifetime, tenant, place.instance);
      }
    }

    // 3. Fault storms, per tenant.
    for (int tenant = 0; tenant < params_.tenants; ++tenant) {
      const auto t = static_cast<std::size_t>(tenant);
      if (storming[t] == 0) {
        if (rng.chance(params_.p_storm_start)) storming[t] = 1;
        continue;
      }
      if (rng.chance(params_.p_storm_stop)) {
        // Storm passed: scrub all transient damage, then repair most of
        // the permanent tiles it burned.
        storming[t] = 0;
        service::Request scrub;
        scrub.tenant = tenant;
        scrub.op = service::RequestOp::kFault;
        scrub.fault.op = fpga::FaultEvent::Op::kRepairTransient;
        if (!emit(scrub)) return trace;
        for (const auto& [x, y] : storm_permanents[t]) {
          if (!rng.chance(params_.p_repair_permanent)) continue;
          service::Request repair;
          repair.tenant = tenant;
          repair.op = service::RequestOp::kFault;
          repair.fault.op = fpga::FaultEvent::Op::kRepairTile;
          repair.fault.rect = Rect{x, y, 1, 1};
          if (!emit(repair)) return trace;
        }
        storm_permanents[t].clear();
        continue;
      }
      const long faults = poisson(rng, params_.storm_fault_rate);
      for (long f = 0; f < faults; ++f) {
        service::Request fault;
        fault.tenant = tenant;
        fault.op = service::RequestOp::kFault;
        const double shape = rng.uniform01();
        if (shape < 0.7) {
          const int x = rng.uniform_int(0, fabric_width_ - 1);
          const int y = rng.uniform_int(0, fabric_height_ - 1);
          fault.fault.op = fpga::FaultEvent::Op::kTile;
          fault.fault.rect = Rect{x, y, 1, 1};
          if (rng.chance(params_.storm_transient_fraction)) {
            fault.fault.kind = fpga::FaultKind::kTransient;
          } else {
            fault.fault.kind = fpga::FaultKind::kPermanent;
            storm_permanents[t].emplace_back(x, y);
          }
        } else if (shape < 0.9) {
          // Small rect burst; always transient so the post-storm scrub
          // fully undoes it (targeted repair is per-tile).
          const int w = std::min(fabric_width_, rng.uniform_int(1, 3));
          const int h = std::min(fabric_height_, rng.uniform_int(1, 3));
          const int x = rng.uniform_int(0, fabric_width_ - w);
          const int y = rng.uniform_int(0, fabric_height_ - h);
          fault.fault.op = fpga::FaultEvent::Op::kRect;
          fault.fault.rect = Rect{x, y, w, h};
          fault.fault.kind = fpga::FaultKind::kTransient;
        } else {
          fault.fault.op = fpga::FaultEvent::Op::kColumn;
          fault.fault.rect =
              Rect{rng.uniform_int(0, fabric_width_ - 1), 0, 1,
                   fabric_height_};
          fault.fault.kind = fpga::FaultKind::kTransient;
        }
        if (!emit(fault)) return trace;
      }
    }
  }
  return trace;
}

std::string WorkloadGenerator::render(const service::ServeTrace& trace,
                                      std::span<const model::Module> library) {
  std::ostringstream out;
  out << "tenants " << trace.tenants << '\n';
  for (const service::Request& r : trace.requests) {
    switch (r.op) {
      case service::RequestOp::kPlace: {
        RR_REQUIRE(r.module >= 0 &&
                       r.module < static_cast<int>(library.size()),
                   "render: module index outside the library");
        out << "place " << r.tenant << ' ' << r.instance << ' '
            << library[static_cast<std::size_t>(r.module)].name();
        if (r.deadline_ms > 0.0) {
          out << ' ';
          if (r.deadline_ms == std::floor(r.deadline_ms) &&
              r.deadline_ms < 9e15) {
            out << static_cast<long long>(r.deadline_ms);
          } else {
            std::ostringstream number;
            number.precision(17);
            number << r.deadline_ms;
            out << number.str();
          }
        }
        out << '\n';
        break;
      }
      case service::RequestOp::kRemove:
        out << "remove " << r.tenant << ' ' << r.instance << '\n';
        break;
      case service::RequestOp::kFault: {
        using Op = fpga::FaultEvent::Op;
        const char* kind = r.fault.kind == fpga::FaultKind::kTransient
                               ? "transient"
                               : "permanent";
        switch (r.fault.op) {
          case Op::kTile:
            out << "fault " << r.tenant << " tile " << r.fault.rect.x << ' '
                << r.fault.rect.y << ' ' << kind << '\n';
            break;
          case Op::kColumn:
            out << "fault " << r.tenant << " column " << r.fault.rect.x
                << ' ' << kind << '\n';
            break;
          case Op::kRect:
            out << "fault " << r.tenant << " rect " << r.fault.rect.x << ' '
                << r.fault.rect.y << ' ' << r.fault.rect.width << ' '
                << r.fault.rect.height << ' ' << kind << '\n';
            break;
          case Op::kRepairTile:
            out << "repair " << r.tenant << ' ' << r.fault.rect.x << ' '
                << r.fault.rect.y << '\n';
            break;
          case Op::kRepairTransient:
            out << "repair-transient " << r.tenant << '\n';
            break;
        }
        break;
      }
    }
  }
  return out.str();
}

std::string WorkloadGenerator::generate_text() {
  return render(generate(), library_);
}

}  // namespace rr::sim
