// Adversarial workload generator — seeded, reproducible serve traces with
// the load shapes a long-lived reconfigurable system actually sees:
//
//   - MMPP arrivals: a two-state Markov-modulated Poisson process (quiet /
//     burst) so load comes in squalls, not a steady drip.
//   - Heavy-tailed sizes and lifetimes: bounded-Pareto draws for the
//     requested module area (mapped to the nearest library module) and for
//     instance lifetime in ticks — including zero-duration instances whose
//     remove lands immediately after their place.
//   - Priority classes: class k carries deadline base * mult^k (class 0
//     tightest); the service sheds what misses its budget.
//   - Diurnal curve: a sinusoidal modulation of the arrival rate on top of
//     the MMPP bursts.
//   - Fault storms: per-tenant storm state machines inject clustered
//     tile/rect/column faults (mostly transient) under load, then scrub
//     transients and repair most permanents when the storm passes — the
//     combined fault+defrag regime single-shot tests never reach.
//
// Determinism: everything draws from one rr::Rng stream in a fixed loop
// order, so the same (params, library, fabric) produce a bit-identical
// request list and byte-identical rendered text — the property the
// workload tests pin. Removes are emitted for every generated instance
// whether or not the service ends up admitting its place; a remove of a
// rejected instance is a kError response the service must tolerate, which
// is part of the adversarial point.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "model/module.hpp"
#include "service/trace.hpp"

namespace rr::sim {

struct WorkloadParams {
  int tenants = 4;
  /// Stop once this many requests (places + removes + faults + repairs)
  /// have been generated.
  long requests = 10000;
  std::uint64_t seed = 1;

  // --- MMPP arrivals (per tick).
  double rate_low = 0.6;       // mean arrivals/tick in the quiet state
  double rate_high = 6.0;      // ... in the burst state
  double p_enter_burst = 0.015;
  double p_exit_burst = 0.12;

  // --- Bounded-Pareto module size (target area in tiles, mapped to the
  // nearest library module by minimum area).
  double size_alpha = 1.2;

  // --- Bounded-Pareto instance lifetime in ticks. life_min = 0 permits
  // zero-duration instances (remove immediately follows place).
  double life_alpha = 1.1;
  long life_min = 0;
  long life_max = 400;

  // --- Priority classes / deadlines. deadline_base_ms <= 0 emits no
  // deadlines at all (every place line stays grammar-identical to PR 7).
  int priority_classes = 3;
  double deadline_base_ms = 0.0;
  double deadline_class_mult = 4.0;

  // --- Diurnal arrival-rate modulation: rate *= 1 + amplitude *
  // sin(2*pi*t/period). period <= 0 disables.
  long diurnal_period = 0;
  double diurnal_amplitude = 0.5;

  // --- Per-tenant fault storms.
  double p_storm_start = 0.0008;        // per tick, per calm tenant
  double p_storm_stop = 0.15;           // per tick, per storming tenant
  double storm_fault_rate = 0.7;        // mean faults/tick while storming
  double storm_transient_fraction = 0.85;
  /// Chance that each permanent fault of a passed storm gets a targeted
  /// repair when the storm ends (transients are always scrubbed).
  double p_repair_permanent = 0.9;
};

class WorkloadGenerator {
 public:
  /// `library` supplies the placeable modules (names + areas); the fabric
  /// dimensions bound the generated fault rectangles. The library must be
  /// non-empty and the span must outlive the generator.
  WorkloadGenerator(WorkloadParams params,
                    std::span<const model::Module> library, int fabric_width,
                    int fabric_height);

  /// Generate the full trace. Deterministic: same construction arguments,
  /// same result, every time.
  [[nodiscard]] service::ServeTrace generate();

  /// Render a trace in the serve-trace grammar (parse_serve_trace inverts
  /// this exactly). Deadlines are emitted as a trailing number on place
  /// lines only when positive.
  [[nodiscard]] static std::string render(
      const service::ServeTrace& trace,
      std::span<const model::Module> library);

  /// generate() + render(): the byte-reproducible trace text.
  [[nodiscard]] std::string generate_text();

 private:
  WorkloadParams params_;
  std::span<const model::Module> library_;
  int fabric_width_;
  int fabric_height_;
};

}  // namespace rr::sim
