#include "service/trace.hpp"

#include <istream>
#include <sstream>
#include <string>

#include "util/error.hpp"

namespace rr::service {
namespace {

[[noreturn]] void trace_error(std::string_view name, long line_no,
                              const std::string& what) {
  throw InvalidInput(std::string(name) + ':' + std::to_string(line_no) +
                     ": " + what);
}

}  // namespace

ServeTrace parse_serve_trace(std::istream& in, std::string_view name,
                             std::span<const model::Module> modules,
                             int fabric_width, int fabric_height) {
  auto module_index = [&](const std::string& module_name) {
    for (std::size_t i = 0; i < modules.size(); ++i)
      if (modules[i].name() == module_name) return static_cast<int>(i);
    return -1;
  };
  const Rect fabric_bounds{0, 0, fabric_width, fabric_height};

  ServeTrace trace;
  long line_no = 0;
  std::string line;
  while (std::getline(in, line)) {
    ++line_no;
    std::istringstream tokens(line);
    std::string op;
    if (!(tokens >> op) || op.front() == '#') continue;
    if (op == "tenants") {
      if (!trace.requests.empty())
        trace_error(name, line_no, "tenants header after the first request");
      if (!(tokens >> trace.tenants) || trace.tenants < 1)
        trace_error(name, line_no, "expected: tenants <count >= 1>");
      continue;
    }
    Request request;
    if (!(tokens >> request.tenant))
      trace_error(name, line_no, "expected: " + op + " <tenant> ...");
    if (request.tenant < 0 || request.tenant >= trace.tenants)
      trace_error(name, line_no,
                  "tenant " + std::to_string(request.tenant) +
                      " outside [0, " + std::to_string(trace.tenants) + ")");
    if (op == "place") {
      request.op = RequestOp::kPlace;
      std::string module_name;
      if (!(tokens >> request.instance >> module_name))
        trace_error(name, line_no,
                    "expected: place <tenant> <id> <module> [deadline_ms]");
      request.module = module_index(module_name);
      if (request.module < 0)
        trace_error(name, line_no, "no module named '" + module_name + "'");
      // Optional trailing deadline. A token that is present but not a
      // positive number is a malformed line, not a silent no-deadline.
      double deadline_ms = 0.0;
      if (tokens >> deadline_ms) {
        if (!(deadline_ms > 0.0))
          trace_error(name, line_no, "deadline_ms must be > 0");
        request.deadline_ms = deadline_ms;
      } else if (!tokens.eof()) {
        trace_error(name, line_no, "deadline_ms must be a number");
      }
    } else if (op == "remove") {
      request.op = RequestOp::kRemove;
      if (!(tokens >> request.instance))
        trace_error(name, line_no, "expected: remove <tenant> <id>");
    } else if (op == "fault" || op == "repair" || op == "repair-transient") {
      request.op = RequestOp::kFault;
      auto parse_kind = [&]() {
        std::string kind;
        return (tokens >> kind) && kind == "transient"
                   ? fpga::FaultKind::kTransient
                   : fpga::FaultKind::kPermanent;
      };
      if (op == "repair") {
        request.fault.op = fpga::FaultEvent::Op::kRepairTile;
        int x = 0, y = 0;
        if (!(tokens >> x >> y))
          trace_error(name, line_no, "expected: repair <tenant> <x> <y>");
        request.fault.rect = Rect{x, y, 1, 1};
      } else if (op == "repair-transient") {
        request.fault.op = fpga::FaultEvent::Op::kRepairTransient;
      } else {
        std::string where;
        if (!(tokens >> where))
          trace_error(name, line_no,
                      "expected: fault <tenant> tile|column|rect ...");
        if (where == "tile") {
          request.fault.op = fpga::FaultEvent::Op::kTile;
          int x = 0, y = 0;
          if (!(tokens >> x >> y))
            trace_error(name, line_no,
                        "expected: fault <tenant> tile <x> <y> [kind]");
          request.fault.rect = Rect{x, y, 1, 1};
        } else if (where == "column") {
          request.fault.op = fpga::FaultEvent::Op::kColumn;
          int x = 0;
          if (!(tokens >> x))
            trace_error(name, line_no,
                        "expected: fault <tenant> column <x> [kind]");
          request.fault.rect = Rect{x, 0, 1, fabric_height};
        } else if (where == "rect") {
          request.fault.op = fpga::FaultEvent::Op::kRect;
          Rect r{};
          if (!(tokens >> r.x >> r.y >> r.width >> r.height))
            trace_error(name, line_no,
                        "expected: fault <tenant> rect <x> <y> <w> <h>");
          request.fault.rect = r;
        } else {
          trace_error(name, line_no, "unknown fault op '" + where + "'");
        }
        request.fault.kind = parse_kind();
      }
      if (request.fault.op != fpga::FaultEvent::Op::kRepairTransient &&
          (request.fault.rect.empty() ||
           !fabric_bounds.contains(request.fault.rect)))
        trace_error(name, line_no, "fault rect outside the fabric");
    } else {
      trace_error(name, line_no, "unknown trace op '" + op + "'");
    }
    trace.requests.push_back(request);
  }
  return trace;
}

ServeTrace parse_serve_trace_text(std::string_view text,
                                  std::string_view name,
                                  std::span<const model::Module> modules,
                                  int fabric_width, int fabric_height) {
  std::istringstream in{std::string(text)};
  return parse_serve_trace(in, name, modules, fabric_width, fabric_height);
}

}  // namespace rr::service
