// Placement-as-a-service: an in-process, multi-tenant placement server.
//
// Each tenant owns an independent reconfigurable fabric (region + fault
// overlay + occupancy) and a fixed module library; clients submit
// place/remove/fault/repair requests and get futures. Concurrency model:
//
//   - Tenants are sharded onto a fixed worker pool by tenant id. All
//     requests of one tenant land on one worker's queue (per-tenant serial
//     execution, no tenant-level locking anywhere), while distinct tenants
//     on distinct workers run fully in parallel.
//   - Each worker consumes its own bounded BoundedQueue; submit() blocks
//     when the shard's queue is full (backpressure instead of unbounded
//     memory).
//   - A worker drains consecutive same-tenant occupancy requests
//     (place/remove) from its queue head into one batch: the tenant's
//     solve context is resolved once per batch, and a fault/repair request
//     — which changes the fabric epoch and thus the context — always
//     starts a new batch.
//   - Solve contexts (per-module placement tables) are cached in a shared
//     SolveContextCache keyed by content signatures; tenants running the
//     same fabric and library share one preparation. See solve_context.hpp
//     for the invalidation rules.
//
// Determinism: per-tenant results are bit-identical to a serial replay of
// that tenant's request sequence through a fresh Tenant — the service and
// the oracle run the same Tenant::apply code, requests of one tenant never
// interleave, and cached tables equal freshly scanned ones. (Enable defrag
// with care: its deadline tiers are wall-clock dependent, so runs are only
// reproducible with defrag off.)
#pragma once

#include <cstdint>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "baseline/online.hpp"
#include "fpga/faults.hpp"
#include "fpga/region.hpp"
#include "model/module.hpp"
#include "placer/placement.hpp"
#include "service/queue.hpp"
#include "service/solve_context.hpp"
#include "util/json.hpp"
#include "util/metrics.hpp"

namespace rr::service {

enum class RequestOp : std::uint8_t {
  kPlace,   // place library module `module` as instance `instance`
  kRemove,  // remove instance `instance`
  kFault,   // apply `fault` (inject or repair) to the tenant's fabric
};

struct Request {
  int tenant = 0;
  RequestOp op = RequestOp::kPlace;
  int instance = 0;              // kPlace / kRemove
  int module = 0;                // kPlace: index into the tenant's library
  fpga::FaultEvent fault{};      // kFault: injection or repair event
};

struct Response {
  enum class Status : std::uint8_t {
    kPlaced,    // placement holds the result
    kRejected,  // no feasible placement (not an error)
    kRemoved,
    kFaulted,   // fault event applied; displaced/recovered filled
    kError,     // invalid request (duplicate instance, bad module, ...)
  };

  Status status = Status::kError;
  /// kPlaced: the chosen shape and anchor (module = instance id).
  placer::ModulePlacement placement{};
  /// kFaulted: live instances whose footprint the fault overlay hit ...
  int displaced = 0;
  /// ... and how many of them could be re-placed on the degraded fabric
  /// (the rest are lost and their ids freed).
  int recovered = 0;
  std::string error;  // kError only

  bool operator==(const Response&) const = default;
};

/// One tenant's full placement state: an owned fabric region with a fault
/// overlay, an online placer over it, and the module library. Tenant is a
/// *single-threaded* state machine — the service guarantees per-tenant
/// serial execution by sharding, and the same class replayed serially is
/// the determinism oracle in the tests.
class Tenant {
 public:
  struct Config {
    std::shared_ptr<const fpga::Fabric> fabric;
    /// Region window; nullopt offers the whole fabric.
    std::optional<Rect> window;
    std::vector<model::Module> library;
    baseline::OnlineOptions online{};
    /// Shared context cache; nullptr disables caching (every request pays
    /// the anchor scan — the bench's control arm).
    SolveContextCache* cache = nullptr;
  };

  explicit Tenant(Config config);

  Tenant(const Tenant&) = delete;
  Tenant& operator=(const Tenant&) = delete;

  /// Apply one request. Invalid requests yield Status::kError (the service
  /// must not die on a bad client), everything else the matching status.
  Response apply(const Request& request);

  /// Bumped by every fault/repair event; occupancy changes don't count.
  /// Batching uses it to delimit "same fabric epoch".
  [[nodiscard]] std::uint64_t fabric_epoch() const noexcept {
    return fabric_epoch_;
  }

  [[nodiscard]] const fpga::PartialRegion& region() const noexcept {
    return region_;
  }
  [[nodiscard]] const fpga::FaultMap& faults() const noexcept {
    return faults_;
  }
  [[nodiscard]] const baseline::OnlinePlacer& placer() const noexcept {
    return placer_;
  }
  [[nodiscard]] std::span<const model::Module> library() const noexcept {
    return library_;
  }
  /// The context currently installed (null when caching is off).
  [[nodiscard]] const std::shared_ptr<SolveContext>& context() const noexcept {
    return context_;
  }

 private:
  Response apply_place(const Request& request);
  Response apply_remove(const Request& request);
  Response apply_fault(const Request& request);
  /// Re-resolve the solve context against the current fabric state and
  /// install it as the placer's table source.
  void refresh_context();

  std::vector<model::Module> library_;
  fpga::PartialRegion region_;  // owned; placer_ references it
  fpga::FaultMap faults_;
  baseline::OnlinePlacer placer_;
  SolveContextCache* cache_;
  baseline::OnlineOptions online_;
  std::shared_ptr<SolveContext> context_;
  std::unordered_map<int, int> instance_module_;  // instance id → library idx
  std::uint64_t fabric_epoch_ = 0;
};

struct ServiceOptions {
  int workers = 4;
  std::size_t queue_capacity = 256;
  /// Most same-tenant occupancy requests drained into one batch.
  int max_batch = 16;
  /// Solve-context cache LRU capacity (0 = unbounded); see
  /// SolveContextCache.
  std::size_t cache_capacity = SolveContextCache::kDefaultCapacity;
};

/// Aggregated service telemetry; exact once the service is stopped.
struct ServiceStats {
  std::uint64_t requests = 0;
  std::uint64_t placed = 0;
  std::uint64_t rejected = 0;
  std::uint64_t removed = 0;
  std::uint64_t fault_events = 0;
  std::uint64_t errors = 0;
  std::uint64_t batches = 0;          // dequeue rounds
  std::uint64_t batched_requests = 0; // requests beyond the first in a batch
  SolveContextCacheStats cache;
  // Submit-to-completion latency over all requests, split into the time
  // spent inside Tenant::apply (service) and everything else between
  // submit and completion — queue wait plus batching overhead (queue).
  // total = service + queue per request, so the aggregate means add up;
  // the percentiles are per-component and need not.
  std::uint64_t latency_count = 0;
  double latency_mean_ms = 0.0;
  double latency_p50_ms = 0.0;
  double latency_p99_ms = 0.0;
  double latency_max_ms = 0.0;
  double latency_service_mean_ms = 0.0;
  double latency_service_p50_ms = 0.0;
  double latency_service_p99_ms = 0.0;
  double latency_service_max_ms = 0.0;
  double latency_queue_mean_ms = 0.0;
  double latency_queue_p50_ms = 0.0;
  double latency_queue_p99_ms = 0.0;
  double latency_queue_max_ms = 0.0;

  /// The `service` stats-json section (counters, cache, latency).
  [[nodiscard]] json::Value to_json() const;
};

/// The server: owns the tenants, the shared context cache, and the worker
/// pool. Submitting is thread-safe from any number of client threads;
/// per-tenant request order is the submission order (per submitting
/// thread). stop() is idempotent and runs in the destructor.
class PlacementService {
 public:
  PlacementService(std::vector<Tenant::Config> tenants,
                   ServiceOptions options = {}, bool cache_enabled = true);
  ~PlacementService();

  PlacementService(const PlacementService&) = delete;
  PlacementService& operator=(const PlacementService&) = delete;

  /// Enqueue a request; blocks while the tenant's shard queue is full.
  /// Throws InvalidInput on an unknown tenant id or after stop().
  [[nodiscard]] std::future<Response> submit(Request request);

  /// submit + wait.
  Response call(Request request);

  /// Drain all queues, join the workers, and fold the worker metric shards
  /// into metrics::process(). Idempotent.
  void stop();

  [[nodiscard]] int worker_count() const noexcept {
    return static_cast<int>(workers_.size());
  }
  [[nodiscard]] int tenant_count() const noexcept {
    return static_cast<int>(tenants_.size());
  }
  /// The worker shard serving `tenant` (the sharding function, exposed so
  /// tests can construct colliding/non-colliding tenant sets).
  [[nodiscard]] int worker_of(int tenant) const noexcept;

  /// Post-stop inspection: the tenant's final state (occupancy, faults,
  /// context). Only safe once stop() returned.
  [[nodiscard]] const Tenant& tenant(int id) const;

  [[nodiscard]] const SolveContextCache& cache() const noexcept {
    return cache_;
  }

  /// Exact after stop(); while running it races with the workers, so it
  /// requires a stopped service.
  [[nodiscard]] ServiceStats stats() const;

 private:
  struct Job {
    Request request;
    std::promise<Response> promise;
    Stopwatch latency;  // started at submit
  };
  struct Worker {
    explicit Worker(std::size_t queue_capacity) : queue(queue_capacity) {}
    BoundedQueue<Job> queue;
    std::thread thread;
    // Written by the worker thread only; read after join.
    metrics::Registry shard;
    std::vector<std::uint64_t> latency_ns;
    std::vector<std::uint64_t> service_ns;  // inside Tenant::apply
    std::vector<std::uint64_t> queue_ns;    // latency_ns - service_ns
    std::uint64_t requests = 0;
    std::uint64_t placed = 0;
    std::uint64_t rejected = 0;
    std::uint64_t removed = 0;
    std::uint64_t fault_events = 0;
    std::uint64_t errors = 0;
    std::uint64_t batches = 0;
    std::uint64_t batched_requests = 0;
  };

  void worker_loop(Worker& worker);
  void record(Worker& worker, const Response& response);

  ServiceOptions options_;
  SolveContextCache cache_;
  std::vector<std::unique_ptr<Tenant>> tenants_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<bool> stopped_{false};
};

}  // namespace rr::service
