// Placement-as-a-service: an in-process, multi-tenant placement server.
//
// Each tenant owns an independent reconfigurable fabric (region + fault
// overlay + occupancy) and a fixed module library; clients submit
// place/remove/fault/repair requests and get futures. Concurrency model:
//
//   - Tenants are sharded onto a fixed worker pool by tenant id. All
//     requests of one tenant land on one worker's queue (per-tenant serial
//     execution, no tenant-level locking anywhere), while distinct tenants
//     on distinct workers run fully in parallel.
//   - Each worker consumes its own bounded BoundedQueue; submit() blocks
//     when the shard's queue is full (backpressure instead of unbounded
//     memory).
//   - A worker drains consecutive same-tenant occupancy requests
//     (place/remove) from its queue head into one batch: the tenant's
//     solve context is resolved once per batch, and a fault/repair request
//     — which changes the fabric epoch and thus the context — always
//     starts a new batch.
//   - Solve contexts (per-module placement tables) are cached in a shared
//     SolveContextCache keyed by content signatures; tenants running the
//     same fabric and library share one preparation. See solve_context.hpp
//     for the invalidation rules.
//
// Overload control (all off by default; see ServiceOptions):
//
//   - Admission quotas: a tenant with `tenant_inflight_quota` requests in
//     flight gets kShedQuota immediately — one hog cannot fill the shard
//     queue and starve its neighbours.
//   - Bounded submit: with a non-negative `submit_retry_budget`, a full
//     queue is retried via BoundedQueue::try_push under exponential
//     backoff; when the budget is spent the request is shed with
//     kShedQueue instead of blocking the producer forever.
//   - Deadline shedding: a request carrying a deadline whose queue wait
//     has already consumed it is dropped at dequeue with kShedDeadline —
//     the worker never runs a doomed solve — and the remaining budget (not
//     the full configured budget) caps each defrag/recovery tier of the
//     requests that do run.
//   - Every deadline decision reads the injected Clock, so tests drive
//     shedding deterministically with a FakeClock. (The defrag pass's
//     interior CP search still polls the wall clock for its own cutoff,
//     so *placements* under an active defrag deadline remain
//     timing-dependent; all shed/admission decisions are not.)
//
// Determinism: per-tenant results are bit-identical to a serial replay of
// that tenant's request sequence through a fresh Tenant — the service and
// the oracle run the same Tenant::apply code, requests of one tenant never
// interleave, and cached tables equal freshly scanned ones. (Enable defrag
// with care: its interior deadline is wall-clock bounded, so runs are only
// reproducible with defrag off or an unlimited budget.)
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "baseline/online.hpp"
#include "fpga/faults.hpp"
#include "fpga/region.hpp"
#include "model/module.hpp"
#include "placer/placement.hpp"
#include "service/queue.hpp"
#include "service/solve_context.hpp"
#include "util/clock.hpp"
#include "util/json.hpp"
#include "util/metrics.hpp"

namespace rr::service {

enum class RequestOp : std::uint8_t {
  kPlace,   // place library module `module` as instance `instance`
  kRemove,  // remove instance `instance`
  kFault,   // apply `fault` (inject or repair) to the tenant's fabric
};

struct Request {
  int tenant = 0;
  RequestOp op = RequestOp::kPlace;
  int instance = 0;              // kPlace / kRemove
  int module = 0;                // kPlace: index into the tenant's library
  fpga::FaultEvent fault{};      // kFault: injection or repair event
  /// Submit-to-completion budget in milliseconds; <= 0 means "no deadline"
  /// (then ServiceOptions::default_deadline_ms applies, if set). A request
  /// whose queue wait exceeds the budget is shed with kShedDeadline; one
  /// that starts in time hands its *remaining* budget to the defrag tier.
  double deadline_ms = 0.0;

  bool operator==(const Request&) const = default;
};

struct Response {
  enum class Status : std::uint8_t {
    kPlaced,    // placement holds the result
    kRejected,  // no feasible placement (not an error)
    kRemoved,
    kFaulted,   // fault event applied; displaced/recovered filled
    kError,     // invalid request (duplicate instance, bad module, ...)
    // Overload / lifecycle outcomes: the request was *not* executed.
    kShedDeadline,     // queue wait consumed the deadline; solve skipped
    kShedQuota,        // tenant at its inflight quota at submit
    kShedQueue,        // shard queue full through the submit retry budget
    kRejectedStopped,  // service stopped before the request was enqueued
  };

  Status status = Status::kError;
  /// kPlaced: the chosen shape and anchor (module = instance id).
  placer::ModulePlacement placement{};
  /// kFaulted: live instances whose footprint the fault overlay hit ...
  int displaced = 0;
  /// ... and how many of them could be re-placed on the degraded fabric
  /// (the rest are lost and their ids freed).
  int recovered = 0;
  std::string error;  // kError only

  bool operator==(const Response&) const = default;
};

/// One tenant's full placement state: an owned fabric region with a fault
/// overlay, an online placer over it, and the module library. Tenant is a
/// *single-threaded* state machine — the service guarantees per-tenant
/// serial execution by sharding, and the same class replayed serially is
/// the determinism oracle in the tests.
class Tenant {
 public:
  struct Config {
    std::shared_ptr<const fpga::Fabric> fabric;
    /// Region window; nullopt offers the whole fabric.
    std::optional<Rect> window;
    std::vector<model::Module> library;
    baseline::OnlineOptions online{};
    /// Shared context cache; nullptr disables caching (every request pays
    /// the anchor scan — the bench's control arm).
    SolveContextCache* cache = nullptr;
    /// Time source for remaining-budget computation; nullptr = the system
    /// clock. The service wires its own injected clock through here.
    const Clock* clock = nullptr;
  };

  explicit Tenant(Config config);

  Tenant(const Tenant&) = delete;
  Tenant& operator=(const Tenant&) = delete;

  /// Apply one request. Invalid requests yield Status::kError (the service
  /// must not die on a bad client), everything else the matching status.
  ///
  /// `deadline_ns` (in Config::clock time; 0 = none) is the request's
  /// absolute completion deadline: each defrag-capable step — the placement
  /// itself, and every casualty re-place of a fault event — receives only
  /// the budget still remaining when it starts, never the full configured
  /// defrag budget. An already-expired deadline degrades the step to plain
  /// first-fit (the cheap tier always runs; only the expensive defrag pass
  /// is cut). With defrag off the deadline changes nothing, keeping the
  /// serial determinism oracle exact.
  Response apply(const Request& request, std::uint64_t deadline_ns = 0);

  /// Bumped by every fault/repair event; occupancy changes don't count.
  /// Batching uses it to delimit "same fabric epoch".
  [[nodiscard]] std::uint64_t fabric_epoch() const noexcept {
    return fabric_epoch_;
  }

  [[nodiscard]] const fpga::PartialRegion& region() const noexcept {
    return region_;
  }
  [[nodiscard]] const fpga::FaultMap& faults() const noexcept {
    return faults_;
  }
  [[nodiscard]] const baseline::OnlinePlacer& placer() const noexcept {
    return placer_;
  }
  [[nodiscard]] std::span<const model::Module> library() const noexcept {
    return library_;
  }
  /// The context currently installed (null when caching is off).
  [[nodiscard]] const std::shared_ptr<SolveContext>& context() const noexcept {
    return context_;
  }

 private:
  Response apply_place(const Request& request, std::uint64_t deadline_ns);
  Response apply_fault(const Request& request, std::uint64_t deadline_ns);
  Response apply_remove(const Request& request);
  /// Re-resolve the solve context against the current fabric state and
  /// install it as the placer's table source.
  void refresh_context();
  /// Seconds of budget left before `deadline_ns` on the tenant's clock:
  /// 0 when there is no deadline (= uncapped downstream), a tiny positive
  /// epsilon when already expired (= defrag effectively disabled, cheap
  /// tiers still run).
  [[nodiscard]] double remaining_budget_seconds(
      std::uint64_t deadline_ns) const;

  std::vector<model::Module> library_;
  fpga::PartialRegion region_;  // owned; placer_ references it
  fpga::FaultMap faults_;
  baseline::OnlinePlacer placer_;
  SolveContextCache* cache_;
  const Clock* clock_;
  baseline::OnlineOptions online_;
  std::shared_ptr<SolveContext> context_;
  std::unordered_map<int, int> instance_module_;  // instance id → library idx
  std::uint64_t fabric_epoch_ = 0;
};

struct ServiceOptions {
  int workers = 4;
  std::size_t queue_capacity = 256;
  /// Most same-tenant occupancy requests drained into one batch.
  int max_batch = 16;
  /// Solve-context cache LRU capacity (0 = unbounded); see
  /// SolveContextCache.
  std::size_t cache_capacity = SolveContextCache::kDefaultCapacity;

  // --- Overload control (defaults preserve the PR 7 behavior exactly:
  // unlimited quota, blocking submit, no deadlines, system clock).

  /// Max requests one tenant may have in flight (submitted, not yet
  /// completed); further submits get kShedQuota immediately. 0 = unlimited.
  int tenant_inflight_quota = 0;
  /// Deadline applied to requests that carry none (Request::deadline_ms
  /// <= 0); <= 0 = no default deadline.
  double default_deadline_ms = 0.0;
  /// Submit path on a full shard queue. Negative: block until space frees
  /// (backpressure, never sheds). >= 0: non-blocking try_push retried this
  /// many times under exponential backoff, then kShedQueue.
  int submit_retry_budget = -1;
  /// Backoff sleep before the first retry; doubles per retry up to
  /// backoff_max_us. Pacing only — the retry *budget* is attempt-counted,
  /// so shed decisions stay deterministic under a fake clock.
  std::uint64_t backoff_initial_us = 50;
  std::uint64_t backoff_max_us = 2000;
  /// Time source for all deadline/latency logic; nullptr = system_clock().
  /// Must outlive the service.
  const Clock* clock = nullptr;
  /// Construct with parked workers; no request executes until resume().
  /// Lets deterministic tests enqueue, advance a FakeClock past deadlines,
  /// and only then release the workers.
  bool start_paused = false;
};

/// Monotone admission/shed counters, safely readable while the service is
/// running (plain atomics) — the soak auditor's accounting source. The
/// identity `submitted == completed + shed_deadline + shed_quota +
/// shed_queue + rejected_stopped + inflight` holds at every instant;
/// once every submitted future has resolved, inflight is 0 and it is exact.
struct ShedCounters {
  std::uint64_t submitted = 0;         // submit() calls that returned a future
  std::uint64_t completed = 0;         // executed through Tenant::apply
  std::uint64_t shed_deadline = 0;     // kShedDeadline responses
  std::uint64_t shed_quota = 0;        // kShedQuota responses
  std::uint64_t shed_queue = 0;        // kShedQueue responses
  std::uint64_t rejected_stopped = 0;  // kRejectedStopped responses
  std::uint64_t submit_retries = 0;    // try_push attempts beyond the first

  [[nodiscard]] std::uint64_t total_shed() const noexcept {
    return shed_deadline + shed_quota + shed_queue + rejected_stopped;
  }
};

/// Aggregated service telemetry; exact once the service is stopped.
struct ServiceStats {
  std::uint64_t requests = 0;
  std::uint64_t placed = 0;
  std::uint64_t rejected = 0;
  std::uint64_t removed = 0;
  std::uint64_t fault_events = 0;
  std::uint64_t errors = 0;
  std::uint64_t batches = 0;          // dequeue rounds
  std::uint64_t batched_requests = 0; // requests beyond the first in a batch
  /// Admission/shed accounting (shed requests are NOT in `requests` or the
  /// latency distributions — they were never executed).
  ShedCounters shed;
  SolveContextCacheStats cache;
  // Submit-to-completion latency over all requests, split into the time
  // spent inside Tenant::apply (service) and everything else between
  // submit and completion — queue wait plus batching overhead (queue).
  // total = service + queue per request, so the aggregate means add up;
  // the percentiles are per-component and need not.
  std::uint64_t latency_count = 0;
  double latency_mean_ms = 0.0;
  double latency_p50_ms = 0.0;
  double latency_p99_ms = 0.0;
  double latency_max_ms = 0.0;
  double latency_service_mean_ms = 0.0;
  double latency_service_p50_ms = 0.0;
  double latency_service_p99_ms = 0.0;
  double latency_service_max_ms = 0.0;
  double latency_queue_mean_ms = 0.0;
  double latency_queue_p50_ms = 0.0;
  double latency_queue_p99_ms = 0.0;
  double latency_queue_max_ms = 0.0;

  /// The `service` stats-json section (counters, cache, latency).
  [[nodiscard]] json::Value to_json() const;
};

/// The server: owns the tenants, the shared context cache, and the worker
/// pool. Submitting is thread-safe from any number of client threads;
/// per-tenant request order is the submission order (per submitting
/// thread). stop() is idempotent and runs in the destructor.
class PlacementService {
 public:
  PlacementService(std::vector<Tenant::Config> tenants,
                   ServiceOptions options = {}, bool cache_enabled = true);
  ~PlacementService();

  PlacementService(const PlacementService&) = delete;
  PlacementService& operator=(const PlacementService&) = delete;

  /// Enqueue a request. Throws InvalidInput only on an unknown tenant id
  /// (a programming error); every overload/lifecycle outcome — quota
  /// exceeded, queue full through the retry budget, deadline expired while
  /// backing off, service stopped — resolves the returned future with the
  /// matching kShed*/kRejectedStopped status instead of throwing. With the
  /// default options a full queue blocks (backpressure) exactly as before.
  [[nodiscard]] std::future<Response> submit(Request request);

  /// submit + wait.
  Response call(Request request);

  /// Drain all queues, join the workers, and fold the worker metric shards
  /// into metrics::process(). Idempotent.
  void stop();

  /// Release workers parked by ServiceOptions::start_paused. Idempotent;
  /// a no-op when the service was not started paused.
  void resume();

  [[nodiscard]] int worker_count() const noexcept {
    return static_cast<int>(workers_.size());
  }
  [[nodiscard]] int tenant_count() const noexcept {
    return static_cast<int>(tenants_.size());
  }
  /// The worker shard serving `tenant` (the sharding function, exposed so
  /// tests can construct colliding/non-colliding tenant sets).
  [[nodiscard]] int worker_of(int tenant) const noexcept;

  /// Post-stop inspection: the tenant's final state (occupancy, faults,
  /// context). Only safe once stop() returned.
  [[nodiscard]] const Tenant& tenant(int id) const;

  /// Mid-run inspection for epoch auditors: safe *only* while the caller
  /// guarantees quiescence — every submitted future has been observed
  /// (future.get() returned) and no thread is submitting concurrently.
  /// Then promise/future synchronization orders all worker writes to the
  /// tenant before this read, and the workers are parked in their queue
  /// waits. The service cannot verify the guarantee; violating it is a
  /// data race.
  [[nodiscard]] const Tenant& tenant_quiesced(int id) const;

  /// Monotone admission/shed counters; thread-safe at any time.
  [[nodiscard]] ShedCounters shed_counters() const;

  [[nodiscard]] const SolveContextCache& cache() const noexcept {
    return cache_;
  }

  /// Exact after stop(); while running it races with the workers, so it
  /// requires a stopped service.
  [[nodiscard]] ServiceStats stats() const;

 private:
  struct Job {
    Request request;
    std::promise<Response> promise;
    std::uint64_t submit_ns = 0;    // clock timestamp at submit
    std::uint64_t deadline_ns = 0;  // absolute completion deadline; 0 = none
  };
  struct Worker {
    explicit Worker(std::size_t queue_capacity) : queue(queue_capacity) {}
    BoundedQueue<Job> queue;
    std::thread thread;
    // Written by the worker thread only; read after join.
    metrics::Registry shard;
    std::vector<std::uint64_t> latency_ns;
    std::vector<std::uint64_t> service_ns;  // inside Tenant::apply
    std::vector<std::uint64_t> queue_ns;    // latency_ns - service_ns
    std::uint64_t requests = 0;
    std::uint64_t placed = 0;
    std::uint64_t rejected = 0;
    std::uint64_t removed = 0;
    std::uint64_t fault_events = 0;
    std::uint64_t errors = 0;
    std::uint64_t batches = 0;
    std::uint64_t batched_requests = 0;
  };

  void worker_loop(Worker& worker);
  void record(Worker& worker, const Response& response);
  /// Resolve `job` with a shed/stopped status, bumping `counter` and
  /// releasing the tenant's inflight slot when `held` says one is held.
  void resolve_shed(Job& job, Response::Status status,
                    std::atomic<std::uint64_t>& counter, bool held);

  ServiceOptions options_;
  const Clock* clock_;  // never null (system_clock() when not injected)
  SolveContextCache cache_;
  std::vector<std::unique_ptr<Tenant>> tenants_;
  std::vector<std::unique_ptr<Worker>> workers_;
  /// Per-tenant inflight request counts (quota enforcement + accounting).
  std::unique_ptr<std::atomic<int>[]> inflight_;
  // Admission/shed counters; see ShedCounters for the identity they keep.
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> shed_deadline_{0};
  std::atomic<std::uint64_t> shed_quota_{0};
  std::atomic<std::uint64_t> shed_queue_{0};
  std::atomic<std::uint64_t> rejected_stopped_{0};
  std::atomic<std::uint64_t> submit_retries_{0};
  // start_paused gate: workers wait on resume_ before their first drain.
  std::mutex pause_mutex_;
  std::condition_variable resume_;
  bool paused_ = false;
  std::atomic<bool> stopped_{false};
};

}  // namespace rr::service
