// Bounded blocking MPMC queue — the request channel between service
// clients and worker threads.
//
// Multiple producers (submitting clients) and multiple consumers are safe
// concurrently; the service attaches exactly one consumer per queue so each
// queue's pop order is a total order, which is what makes per-tenant FIFO
// hold under tenant→worker sharding. push() blocks while full (bounded
// memory, natural backpressure), pop() blocks while empty. close() wakes
// everyone: pending pushes fail, pops drain the remaining items and then
// return nullopt.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "util/error.hpp"

namespace rr::service {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {
    RR_REQUIRE(capacity > 0, "queue capacity must be positive");
  }

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Enqueue, blocking while the queue is full. Returns false when the
  /// queue is or becomes closed; `value` is consumed only on success, so a
  /// caller can still resolve a promise riding inside it after a failed
  /// push (the submit/stop race turns into a typed response, not a broken
  /// promise).
  bool push(T& value) {
    std::unique_lock lock(mutex_);
    not_full_.wait(lock,
                   [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(value));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Rvalue convenience; the value is dropped when the queue is closed.
  bool push(T&& value) {
    T local(std::move(value));
    return push(local);
  }

  /// try_push outcome: distinguishing a full queue (caller may back off
  /// and retry) from a closed one (the consumer is gone; retrying is
  /// pointless) is what lets the service shed instead of spin.
  enum class PushResult : std::uint8_t { kPushed, kFull, kClosed };

  /// Non-blocking enqueue. `value` is consumed only on kPushed, so a
  /// caller with a retry budget keeps its item across kFull attempts.
  PushResult try_push(T& value) {
    {
      const std::scoped_lock lock(mutex_);
      if (closed_) return PushResult::kClosed;
      if (items_.size() >= capacity_) return PushResult::kFull;
      items_.push_back(std::move(value));
    }
    not_empty_.notify_one();
    return PushResult::kPushed;
  }

  /// Dequeue, blocking while empty. Returns nullopt once the queue is
  /// closed *and* drained — consumers use that as their shutdown signal.
  std::optional<T> pop() {
    std::unique_lock lock(mutex_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    std::optional<T> value(std::move(items_.front()));
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return value;
  }

  /// Blocking batch dequeue: wait for one item, then keep draining while
  /// `pred(first, head)` accepts the next head, up to `max` items — all
  /// under ONE lock acquisition, with one producer wake-up for the freed
  /// capacity. One-at-a-time popping turns a full queue into a futex
  /// ping-pong (pop one → wake producer → producer pushes one → wake
  /// consumer), which costs two context switches per item; draining a run
  /// amortizes that to two per batch. Appends to `out` and returns the
  /// number of items taken (0 = closed and drained).
  template <typename Pred>
  std::size_t pop_run(Pred pred, std::size_t max, std::vector<T>& out) {
    std::size_t taken = 0;
    {
      std::unique_lock lock(mutex_);
      not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
      if (items_.empty()) return 0;
      const std::size_t first = out.size();
      out.push_back(std::move(items_.front()));
      items_.pop_front();
      ++taken;
      while (taken < max && !items_.empty() &&
             pred(std::as_const(out[first]), std::as_const(items_.front()))) {
        out.push_back(std::move(items_.front()));
        items_.pop_front();
        ++taken;
      }
    }
    // Several producers may fit into the freed capacity at once.
    if (taken > 1) not_full_.notify_all();
    else not_full_.notify_one();
    return taken;
  }

  /// Dequeue the head only if `pred(head)` holds; never blocks. Lets a
  /// consumer peel off a batch of compatible requests without committing to
  /// whatever comes next.
  template <typename Pred>
  std::optional<T> try_pop_if(Pred pred) {
    std::unique_lock lock(mutex_);
    if (items_.empty() || !pred(std::as_const(items_.front())))
      return std::nullopt;
    std::optional<T> value(std::move(items_.front()));
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return value;
  }

  /// Close the queue: blocked pushes fail, blocked pops drain then end.
  void close() {
    {
      const std::scoped_lock lock(mutex_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  [[nodiscard]] std::size_t size() const {
    const std::scoped_lock lock(mutex_);
    return items_.size();
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace rr::service
