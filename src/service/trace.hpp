// Serve-trace grammar: the multi-tenant request language shared by
// `rrplace_cli --serve-trace`, the workload generator (src/sim emits it),
// and the soak/replay harnesses.
//
//   tenants <n>                       # header; before the first request
//   place <tenant> <id> <module> [deadline_ms]
//   remove <tenant> <id>
//   fault <tenant> tile <x> <y> [permanent|transient]
//   fault <tenant> column <x> [kind]
//   fault <tenant> rect <x> <y> <w> <h> [kind]
//   repair <tenant> <x> <y>
//   repair-transient <tenant>
//   # comment
//
// The optional trailing deadline on `place` (milliseconds, > 0) is a
// backward-compatible extension: absent means "no deadline" and every
// pre-existing trace parses unchanged.
#pragma once

#include <iosfwd>
#include <span>
#include <string_view>
#include <vector>

#include "model/module.hpp"
#include "service/service.hpp"

namespace rr::service {

/// A parsed serve trace: the tenant count and the request sequence in
/// file order (= submission order).
struct ServeTrace {
  int tenants = 1;
  std::vector<Request> requests;
};

/// Parse a serve trace from `in`. Module names resolve against `modules`
/// (library indices in file order); fault rectangles are validated against
/// the fabric bounds. Malformed input throws InvalidInput with a
/// "<name>:<line>: <what>" message.
[[nodiscard]] ServeTrace parse_serve_trace(std::istream& in,
                                           std::string_view name,
                                           std::span<const model::Module>
                                               modules,
                                           int fabric_width,
                                           int fabric_height);

/// Convenience overload over an in-memory trace (generator round-trip
/// tests, byte-identity checks).
[[nodiscard]] ServeTrace parse_serve_trace_text(
    std::string_view text, std::string_view name,
    std::span<const model::Module> modules, int fabric_width,
    int fabric_height);

}  // namespace rr::service
