#include "service/solve_context.hpp"

#include "util/error.hpp"
#include "util/metrics.hpp"

namespace rr::service {
namespace {

// FNV-1a, 64-bit: tiny, deterministic across platforms, and collisions are
// a performance concern only (a false mismatch rebuilds tables; a false
// match cannot happen between the fabrics of one process because acquire()
// compares nothing but these hashes — so the word streams below must cover
// every input the tables depend on).
constexpr std::uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

void mix(std::uint64_t& hash, std::uint64_t value) noexcept {
  for (int byte = 0; byte < 8; ++byte) {
    hash ^= (value >> (byte * 8)) & 0xFFU;
    hash *= kFnvPrime;
  }
}

void mix_matrix(std::uint64_t& hash, const BitMatrix& m) {
  mix(hash, static_cast<std::uint64_t>(m.rows()));
  mix(hash, static_cast<std::uint64_t>(m.cols()));
  for (int r = 0; r < m.rows(); ++r)
    for (const std::uint64_t word : m.row_span(r)) mix(hash, word);
}

}  // namespace

std::uint64_t fabric_signature(const fpga::PartialRegion& region) {
  std::uint64_t hash = kFnvOffset;
  mix(hash, static_cast<std::uint64_t>(region.width()));
  mix(hash, static_cast<std::uint64_t>(region.height()));
  // The per-resource availability masks are the whole placement-relevant
  // state: static tiles, blocks, and the fault overlay are already folded
  // in, so faults/repairs change this signature and nothing else needs to.
  for (const BitMatrix& mask : region.masks()) mix_matrix(hash, mask);
  return hash;
}

std::uint64_t library_signature(std::span<const model::Module> modules) {
  std::uint64_t hash = kFnvOffset;
  mix(hash, static_cast<std::uint64_t>(modules.size()));
  for (const model::Module& module : modules) {
    mix(hash, static_cast<std::uint64_t>(module.name().size()));
    for (const char c : module.name())
      mix(hash, static_cast<std::uint64_t>(static_cast<unsigned char>(c)));
    mix(hash, static_cast<std::uint64_t>(module.shape_count()));
    for (const geost::ShapeFootprint& shape : module.shapes()) {
      // resource + normalized per-resource bitmap pins the typed layout.
      mix(hash, static_cast<std::uint64_t>(shape.typed().size()));
      for (std::size_t g = 0; g < shape.typed().size(); ++g) {
        mix(hash, static_cast<std::uint64_t>(shape.typed()[g].resource));
        mix_matrix(hash, shape.typed_masks()[g]);
      }
    }
  }
  return hash;
}

SolveContext::SolveContext(SolveContextKey key,
                           const fpga::PartialRegion& region,
                           std::span<const model::Module> library)
    : key_(key),
      tables_(placer::prepare_tables_shared(region, library,
                                            key.use_alternatives)) {
  index_.reserve(library.size());
  for (std::size_t i = 0; i < library.size(); ++i) {
    const bool fresh = index_.emplace(library[i].name(), i).second;
    RR_REQUIRE(fresh, "module library has duplicate name '" +
                          library[i].name() + "'");
  }
}

const placer::ModuleTables* SolveContext::lookup(const model::Module& module) {
  const auto it = index_.find(module.name());
  if (it == index_.end()) return nullptr;
  return &(*tables_)[it->second];
}

std::shared_ptr<SolveContext> SolveContextCache::acquire(
    const fpga::PartialRegion& region, std::span<const model::Module> library,
    bool use_alternatives) {
  const SolveContextKey key{fabric_signature(region),
                            library_signature(library), use_alternatives};
  if (enabled_) {
    const std::scoped_lock lock(mutex_);
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
      it->second.last_used = ++tick_;
      ++hits_;
      RR_METRIC_COUNT("service.cache.hits");
      return it->second.context;
    }
  }
  // Build outside the lock: table preparation is the expensive part, and
  // two workers racing to build the same context is rarer (and cheaper)
  // than serializing every build behind one mutex.
  auto context = std::make_shared<SolveContext>(key, region, library);
  if (!enabled_) return context;
  const std::scoped_lock lock(mutex_);
  const auto [it, inserted] = entries_.emplace(key, Entry{context, ++tick_});
  ++misses_;
  RR_METRIC_COUNT("service.cache.misses");
  if (inserted && capacity_ > 0 && entries_.size() > capacity_) {
    // LRU cap: drop the least-recently-acquired entry (never the one just
    // inserted — its tick is the freshest). Holders keep their shared_ptr.
    auto lru = entries_.begin();
    for (auto cur = entries_.begin(); cur != entries_.end(); ++cur)
      if (cur->second.last_used < lru->second.last_used) lru = cur;
    entries_.erase(lru);
    ++evictions_;
    RR_METRIC_COUNT("service.cache.evictions");
  }
  return inserted ? context : it->second.context;
}

void SolveContextCache::invalidate(const SolveContextKey& key) {
  const std::scoped_lock lock(mutex_);
  if (entries_.erase(key) > 0) {
    ++invalidations_;
    RR_METRIC_COUNT("service.cache.invalidations");
  }
}

SolveContextCacheStats SolveContextCache::stats() const {
  const std::scoped_lock lock(mutex_);
  SolveContextCacheStats stats;
  stats.hits = hits_;
  stats.misses = misses_;
  stats.invalidations = invalidations_;
  stats.evictions = evictions_;
  stats.entries = entries_.size();
  return stats;
}

}  // namespace rr::service
