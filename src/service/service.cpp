#include "service/service.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <thread>
#include <utility>

#include "util/error.hpp"

namespace rr::service {
namespace {

fpga::PartialRegion make_region(const Tenant::Config& config) {
  RR_REQUIRE(config.fabric != nullptr, "tenant needs a fabric");
  if (config.window.has_value())
    return fpga::PartialRegion(config.fabric, *config.window);
  return fpga::PartialRegion(config.fabric);
}

double to_ms(std::uint64_t ns) noexcept {
  return static_cast<double>(ns) * 1e-6;
}

/// v must be sorted ascending; nearest-rank percentile in [0, 1].
double percentile_ms(const std::vector<std::uint64_t>& v, double q) noexcept {
  if (v.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(v.size() - 1) + 0.5);
  return to_ms(v[std::min(rank, v.size() - 1)]);
}

}  // namespace

Tenant::Tenant(Config config)
    : library_(std::move(config.library)),
      region_(make_region(config)),
      faults_(*config.fabric),
      placer_(region_, config.online),
      cache_(config.cache),
      clock_(config.clock != nullptr ? config.clock : &system_clock()),
      online_(config.online) {
  RR_REQUIRE(!library_.empty(), "tenant needs a non-empty module library");
  refresh_context();
}

void Tenant::refresh_context() {
  if (cache_ == nullptr) return;  // uncached: the placer scans per request
  context_ = cache_->acquire(region_, library_, online_.use_alternatives);
  placer_.set_table_source(context_.get());
}

double Tenant::remaining_budget_seconds(std::uint64_t deadline_ns) const {
  if (deadline_ns == 0) return 0.0;  // no deadline: downstream uncapped
  const std::uint64_t now = clock_->now_ns();
  // Expired: a tiny positive budget keeps the cap active (0 would mean
  // "uncapped") while giving the defrag pass no room — it degrades to the
  // plain first-fit tier, which always runs.
  if (now >= deadline_ns) return 1e-9;
  return static_cast<double>(deadline_ns - now) * 1e-9;
}

Response Tenant::apply(const Request& request, std::uint64_t deadline_ns) {
  try {
    switch (request.op) {
      case RequestOp::kPlace:
        return apply_place(request, deadline_ns);
      case RequestOp::kRemove:
        return apply_remove(request);
      case RequestOp::kFault:
        return apply_fault(request, deadline_ns);
    }
    Response response;
    response.error = "unknown request op";
    return response;
  } catch (const std::exception& e) {
    // A bad request (duplicate instance, out-of-range fault rect, ...)
    // must fail that request, not the worker thread.
    Response response;
    response.status = Response::Status::kError;
    response.error = e.what();
    return response;
  }
}

Response Tenant::apply_place(const Request& request,
                             std::uint64_t deadline_ns) {
  Response response;
  if (request.module < 0 ||
      request.module >= static_cast<int>(library_.size())) {
    response.error = "module index out of range";
    return response;
  }
  if (instance_module_.contains(request.instance)) {
    response.error = "instance id already live";
    return response;
  }
  const auto placed = placer_.place(
      request.instance, library_[static_cast<std::size_t>(request.module)],
      remaining_budget_seconds(deadline_ns));
  if (!placed.has_value()) {
    response.status = Response::Status::kRejected;
    return response;
  }
  instance_module_.emplace(request.instance, request.module);
  response.status = Response::Status::kPlaced;
  response.placement = *placed;
  return response;
}

Response Tenant::apply_remove(const Request& request) {
  Response response;
  const auto it = instance_module_.find(request.instance);
  if (it == instance_module_.end()) {
    response.error = "instance id not live";
    return response;
  }
  placer_.remove(request.instance);
  instance_module_.erase(it);
  response.status = Response::Status::kRemoved;
  return response;
}

Response Tenant::apply_fault(const Request& request,
                             std::uint64_t deadline_ns) {
  Response response;
  faults_.apply(request.fault);
  region_.apply_faults(faults_);
  ++fabric_epoch_;

  // Re-sync the placer with the changed availability masks FIRST: the
  // free-space index must diff the new union availability and the
  // installed tables are stale — a casualty re-placed through them could
  // land on a faulty tile (the occupancy bitmap alone cannot catch that).
  // The content-keyed cache makes the context refresh a natural
  // re-acquire; entries this tenant no longer runs age out through the
  // cache's LRU cap, so a tenant-private fault never flushes the
  // healthy-fabric tables other tenants share.
  placer_.refresh_region();
  refresh_context();

  // Displace every live instance whose footprint the fault overlay now
  // hits, then try to re-place each on the degraded fabric (ascending id:
  // deterministic). Unrecoverable instances are lost and their ids freed.
  std::vector<int> displaced;
  const BitMatrix& faulty = region_.fault_mask();
  for (const placer::ModulePlacement& p : placer_.live_placements()) {
    const int library_index = instance_module_.at(p.module);
    const geost::ShapeFootprint& shape =
        library_[static_cast<std::size_t>(library_index)]
            .shapes()[static_cast<std::size_t>(p.shape)];
    if (faulty.intersects_shifted(shape.mask(), p.y, p.x))
      displaced.push_back(p.module);  // p.module is the instance id
  }
  for (const int id : displaced) placer_.remove(id);
  for (const int id : displaced) {
    const int library_index = instance_module_.at(id);
    // Remaining budget, re-read per casualty: each re-place's defrag tier
    // gets only what the earlier casualties left, never the full budget.
    const auto placed = placer_.place(
        id, library_[static_cast<std::size_t>(library_index)],
        remaining_budget_seconds(deadline_ns));
    if (placed.has_value()) {
      ++response.recovered;
    } else {
      instance_module_.erase(id);
    }
  }
  response.displaced = static_cast<int>(displaced.size());
  response.status = Response::Status::kFaulted;
  return response;
}

json::Value ServiceStats::to_json() const {
  json::Value doc = json::Value::object();
  doc.set("requests", json::Value(requests));
  doc.set("placed", json::Value(placed));
  doc.set("rejected", json::Value(rejected));
  doc.set("removed", json::Value(removed));
  doc.set("fault_events", json::Value(fault_events));
  doc.set("errors", json::Value(errors));
  doc.set("batches", json::Value(batches));
  doc.set("batched_requests", json::Value(batched_requests));
  json::Value shed_doc = json::Value::object();
  shed_doc.set("submitted", json::Value(shed.submitted));
  shed_doc.set("completed", json::Value(shed.completed));
  shed_doc.set("deadline", json::Value(shed.shed_deadline));
  shed_doc.set("quota", json::Value(shed.shed_quota));
  shed_doc.set("queue", json::Value(shed.shed_queue));
  shed_doc.set("stopped", json::Value(shed.rejected_stopped));
  shed_doc.set("submit_retries", json::Value(shed.submit_retries));
  shed_doc.set(
      "shed_rate",
      json::Value(shed.submitted > 0
                      ? static_cast<double>(shed.total_shed()) /
                            static_cast<double>(shed.submitted)
                      : 0.0));
  doc.set("shed", std::move(shed_doc));
  json::Value cache_doc = json::Value::object();
  cache_doc.set("hits", json::Value(cache.hits));
  cache_doc.set("misses", json::Value(cache.misses));
  cache_doc.set("invalidations", json::Value(cache.invalidations));
  cache_doc.set("evictions", json::Value(cache.evictions));
  cache_doc.set("entries", json::Value(cache.entries));
  cache_doc.set("hit_rate", json::Value(cache.hit_rate()));
  doc.set("cache", std::move(cache_doc));
  json::Value latency = json::Value::object();
  latency.set("count", json::Value(latency_count));
  latency.set("mean_ms", json::Value(latency_mean_ms));
  latency.set("p50_ms", json::Value(latency_p50_ms));
  latency.set("p99_ms", json::Value(latency_p99_ms));
  latency.set("max_ms", json::Value(latency_max_ms));
  doc.set("latency", std::move(latency));
  json::Value service_lat = json::Value::object();
  service_lat.set("mean_ms", json::Value(latency_service_mean_ms));
  service_lat.set("p50_ms", json::Value(latency_service_p50_ms));
  service_lat.set("p99_ms", json::Value(latency_service_p99_ms));
  service_lat.set("max_ms", json::Value(latency_service_max_ms));
  doc.set("latency_service", std::move(service_lat));
  json::Value queue_lat = json::Value::object();
  queue_lat.set("mean_ms", json::Value(latency_queue_mean_ms));
  queue_lat.set("p50_ms", json::Value(latency_queue_p50_ms));
  queue_lat.set("p99_ms", json::Value(latency_queue_p99_ms));
  queue_lat.set("max_ms", json::Value(latency_queue_max_ms));
  doc.set("latency_queue", std::move(queue_lat));
  return doc;
}

PlacementService::PlacementService(std::vector<Tenant::Config> tenants,
                                   ServiceOptions options, bool cache_enabled)
    : options_(options),
      clock_(options.clock != nullptr ? options.clock : &system_clock()),
      cache_(cache_enabled, options.cache_capacity),
      paused_(options.start_paused) {
  RR_REQUIRE(options_.workers >= 1, "service needs at least one worker");
  RR_REQUIRE(options_.max_batch >= 1, "max_batch must be at least 1");
  RR_REQUIRE(!tenants.empty(), "service needs at least one tenant");
  tenants_.reserve(tenants.size());
  inflight_ = std::make_unique<std::atomic<int>[]>(tenants.size());
  for (std::size_t t = 0; t < tenants.size(); ++t)
    inflight_[t].store(0, std::memory_order_relaxed);
  for (Tenant::Config& config : tenants) {
    // cache_enabled = false means NO solve contexts at all — every request
    // pays the per-module anchor scan inside the online placer. That is
    // the pre-service behavior and the bench's control arm; wiring the
    // disabled cache in instead would still hand each tenant per-epoch
    // tables and quietly measure the wrong thing.
    config.cache = cache_.enabled() ? &cache_ : nullptr;
    config.clock = clock_;
    tenants_.push_back(std::make_unique<Tenant>(std::move(config)));
  }
  workers_.reserve(static_cast<std::size_t>(options_.workers));
  for (int w = 0; w < options_.workers; ++w)
    workers_.push_back(std::make_unique<Worker>(options_.queue_capacity));
  for (const std::unique_ptr<Worker>& worker : workers_) {
    Worker* raw = worker.get();
    raw->thread = std::thread([this, raw] { worker_loop(*raw); });
  }
}

PlacementService::~PlacementService() { stop(); }

int PlacementService::worker_of(int tenant) const noexcept {
  // splitmix64 finalizer: spreads consecutive tenant ids over the workers
  // so adjacent tenants don't pile onto adjacent shards.
  std::uint64_t x = static_cast<std::uint64_t>(tenant) + 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return static_cast<int>(x % workers_.size());
}

void PlacementService::resolve_shed(Job& job, Response::Status status,
                                    std::atomic<std::uint64_t>& counter,
                                    bool held) {
  if (held)
    inflight_[static_cast<std::size_t>(job.request.tenant)].fetch_sub(
        1, std::memory_order_acq_rel);
  counter.fetch_add(1, std::memory_order_relaxed);
  Response response;
  response.status = status;
  job.promise.set_value(std::move(response));
}

std::future<Response> PlacementService::submit(Request request) {
  RR_REQUIRE(request.tenant >= 0 &&
                 request.tenant < static_cast<int>(tenants_.size()),
             "unknown tenant id " + std::to_string(request.tenant));
  submitted_.fetch_add(1, std::memory_order_relaxed);
  Job job;
  job.request = request;
  std::future<Response> future = job.promise.get_future();
  job.submit_ns = clock_->now_ns();
  const double deadline_ms = request.deadline_ms > 0.0
                                 ? request.deadline_ms
                                 : options_.default_deadline_ms;
  if (deadline_ms > 0.0)
    job.deadline_ns =
        job.submit_ns + static_cast<std::uint64_t>(deadline_ms * 1e6);

  // Quota admission: CAS so concurrent submitters cannot overshoot. The
  // slot is held until the response resolves (worker or shed path).
  std::atomic<int>& inflight =
      inflight_[static_cast<std::size_t>(request.tenant)];
  if (options_.tenant_inflight_quota > 0) {
    int current = inflight.load(std::memory_order_relaxed);
    for (;;) {
      if (current >= options_.tenant_inflight_quota) {
        resolve_shed(job, Response::Status::kShedQuota, shed_quota_,
                     /*held=*/false);
        return future;
      }
      if (inflight.compare_exchange_weak(current, current + 1,
                                         std::memory_order_acq_rel))
        break;
    }
  } else {
    inflight.fetch_add(1, std::memory_order_acq_rel);
  }

  BoundedQueue<Job>& queue =
      workers_[static_cast<std::size_t>(worker_of(request.tenant))]->queue;
  if (options_.submit_retry_budget < 0) {
    // Backpressure: block while full. A stop() racing this push is benign
    // now — the request resolves kRejectedStopped instead of throwing
    // (push leaves the job, and its promise, intact on failure).
    if (!queue.push(job))
      resolve_shed(job, Response::Status::kRejectedStopped, rejected_stopped_,
                   /*held=*/true);
    return future;
  }

  std::uint64_t backoff_us = options_.backoff_initial_us;
  for (int attempt = 0;; ++attempt) {
    const BoundedQueue<Job>::PushResult pushed = queue.try_push(job);
    if (pushed == BoundedQueue<Job>::PushResult::kPushed) return future;
    if (pushed == BoundedQueue<Job>::PushResult::kClosed) {
      resolve_shed(job, Response::Status::kRejectedStopped, rejected_stopped_,
                   /*held=*/true);
      return future;
    }
    // kFull: shed on an expired deadline, then on a spent retry budget;
    // otherwise back off (real sleep — pacing only; the *decisions* above
    // read the injected clock and an attempt counter, so they are
    // deterministic under a FakeClock).
    if (job.deadline_ns != 0 && clock_->now_ns() >= job.deadline_ns) {
      resolve_shed(job, Response::Status::kShedDeadline, shed_deadline_,
                   /*held=*/true);
      return future;
    }
    if (attempt >= options_.submit_retry_budget) {
      resolve_shed(job, Response::Status::kShedQueue, shed_queue_,
                   /*held=*/true);
      return future;
    }
    submit_retries_.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(std::chrono::microseconds(backoff_us));
    backoff_us = std::min(backoff_us * 2, options_.backoff_max_us);
  }
}

Response PlacementService::call(Request request) {
  return submit(request).get();
}

void PlacementService::worker_loop(Worker& worker) {
  // Hot-path metrics land in this worker's shard, contention-free; stop()
  // folds the shards into the process registry.
  const metrics::ThreadShard redirect(worker.shard);
  {
    // start_paused gate: requests may pile up (and FakeClock deadlines
    // expire) before any of them executes.
    std::unique_lock lock(pause_mutex_);
    resume_.wait(lock, [&] { return !paused_; });
  }
  std::vector<Job> batch;
  for (;;) {
    batch.clear();
    // Drain a run of consecutive same-tenant occupancy requests in one
    // queue lock: one batch, one solve-context resolution. A fault request
    // changes the fabric epoch, so it neither starts nor joins a run.
    const std::size_t taken = worker.queue.pop_run(
        [](const Job& first, const Job& next) {
          return first.request.op != RequestOp::kFault &&
                 next.request.op != RequestOp::kFault &&
                 next.request.tenant == first.request.tenant;
        },
        static_cast<std::size_t>(options_.max_batch), batch);
    if (taken == 0) break;
    worker.batched_requests += taken - 1;
    ++worker.batches;
    Tenant& tenant =
        *tenants_[static_cast<std::size_t>(batch.front().request.tenant)];
    for (Job& job : batch) {
      // Deadline shedding at dequeue: a request whose queue wait already
      // consumed its budget would solve for nobody — drop it before
      // touching the tenant. Shed requests stay out of the latency
      // distributions (those describe executed requests).
      if (job.deadline_ns != 0 && clock_->now_ns() >= job.deadline_ns) {
        worker.shard.add("service.shed.deadline");
        resolve_shed(job, Response::Status::kShedDeadline, shed_deadline_,
                     /*held=*/true);
        continue;
      }
      const std::uint64_t service_start = clock_->now_ns();
      Response response = tenant.apply(job.request, job.deadline_ns);
      const std::uint64_t done = clock_->now_ns();
      const std::uint64_t service_ns = done - service_start;
      record(worker, response);
      const std::uint64_t elapsed_ns = done - job.submit_ns;
      const std::uint64_t queue_ns =
          elapsed_ns > service_ns ? elapsed_ns - service_ns : 0;
      worker.latency_ns.push_back(elapsed_ns);
      worker.service_ns.push_back(service_ns);
      worker.queue_ns.push_back(queue_ns);
      worker.shard.record_time("service.request", elapsed_ns);
      worker.shard.record_time("service.request.service", service_ns);
      worker.shard.record_time("service.request.queue", queue_ns);
      ++worker.requests;
      // Order matters for the accounting identity: bump completed_ and
      // release the inflight slot before set_value, so a client that has
      // observed the future also observes the counters it implies.
      completed_.fetch_add(1, std::memory_order_relaxed);
      inflight_[static_cast<std::size_t>(job.request.tenant)].fetch_sub(
          1, std::memory_order_acq_rel);
      job.promise.set_value(std::move(response));
    }
  }
}

void PlacementService::record(Worker& worker, const Response& response) {
  switch (response.status) {
    case Response::Status::kPlaced:
      ++worker.placed;
      break;
    case Response::Status::kRejected:
      ++worker.rejected;
      break;
    case Response::Status::kRemoved:
      ++worker.removed;
      break;
    case Response::Status::kFaulted:
      ++worker.fault_events;
      break;
    case Response::Status::kError:
      ++worker.errors;
      break;
    case Response::Status::kShedDeadline:
    case Response::Status::kShedQuota:
    case Response::Status::kShedQueue:
    case Response::Status::kRejectedStopped:
      break;  // shed responses never come out of Tenant::apply
  }
}

void PlacementService::resume() {
  {
    const std::scoped_lock lock(pause_mutex_);
    paused_ = false;
  }
  resume_.notify_all();
}

void PlacementService::stop() {
  if (stopped_.exchange(true)) return;
  resume();  // a paused service must still drain and join
  for (const std::unique_ptr<Worker>& worker : workers_)
    worker->queue.close();
  for (const std::unique_ptr<Worker>& worker : workers_)
    if (worker->thread.joinable()) worker->thread.join();
  for (const std::unique_ptr<Worker>& worker : workers_)
    metrics::process().merge(worker->shard);
}

const Tenant& PlacementService::tenant(int id) const {
  RR_REQUIRE(stopped_.load(), "tenant inspection requires a stopped service");
  RR_REQUIRE(id >= 0 && id < static_cast<int>(tenants_.size()),
             "unknown tenant id " + std::to_string(id));
  return *tenants_[static_cast<std::size_t>(id)];
}

const Tenant& PlacementService::tenant_quiesced(int id) const {
  // Quiescence (all futures observed, no concurrent submits) is the
  // caller's contract — see the header. Only the id can be checked here.
  RR_REQUIRE(id >= 0 && id < static_cast<int>(tenants_.size()),
             "unknown tenant id " + std::to_string(id));
  return *tenants_[static_cast<std::size_t>(id)];
}

ShedCounters PlacementService::shed_counters() const {
  ShedCounters counters;
  counters.submitted = submitted_.load(std::memory_order_relaxed);
  counters.completed = completed_.load(std::memory_order_relaxed);
  counters.shed_deadline = shed_deadline_.load(std::memory_order_relaxed);
  counters.shed_quota = shed_quota_.load(std::memory_order_relaxed);
  counters.shed_queue = shed_queue_.load(std::memory_order_relaxed);
  counters.rejected_stopped =
      rejected_stopped_.load(std::memory_order_relaxed);
  counters.submit_retries = submit_retries_.load(std::memory_order_relaxed);
  return counters;
}

ServiceStats PlacementService::stats() const {
  RR_REQUIRE(stopped_.load(), "stats() requires a stopped service");
  ServiceStats stats;
  std::vector<std::uint64_t> latencies;
  std::vector<std::uint64_t> service;
  std::vector<std::uint64_t> queue;
  for (const std::unique_ptr<Worker>& worker : workers_) {
    stats.requests += worker->requests;
    stats.placed += worker->placed;
    stats.rejected += worker->rejected;
    stats.removed += worker->removed;
    stats.fault_events += worker->fault_events;
    stats.errors += worker->errors;
    stats.batches += worker->batches;
    stats.batched_requests += worker->batched_requests;
    latencies.insert(latencies.end(), worker->latency_ns.begin(),
                     worker->latency_ns.end());
    service.insert(service.end(), worker->service_ns.begin(),
                   worker->service_ns.end());
    queue.insert(queue.end(), worker->queue_ns.begin(),
                 worker->queue_ns.end());
  }
  stats.shed = shed_counters();
  stats.cache = cache_.stats();
  stats.latency_count = latencies.size();
  const auto summarize = [](std::vector<std::uint64_t>& v, double* mean,
                            double* p50, double* p99, double* max) {
    if (v.empty()) return;
    std::sort(v.begin(), v.end());
    std::uint64_t total = 0;
    for (const std::uint64_t ns : v) total += ns;
    *mean = to_ms(total) / static_cast<double>(v.size());
    *p50 = percentile_ms(v, 0.50);
    *p99 = percentile_ms(v, 0.99);
    *max = to_ms(v.back());
  };
  summarize(latencies, &stats.latency_mean_ms, &stats.latency_p50_ms,
            &stats.latency_p99_ms, &stats.latency_max_ms);
  summarize(service, &stats.latency_service_mean_ms,
            &stats.latency_service_p50_ms, &stats.latency_service_p99_ms,
            &stats.latency_service_max_ms);
  summarize(queue, &stats.latency_queue_mean_ms, &stats.latency_queue_p50_ms,
            &stats.latency_queue_p99_ms, &stats.latency_queue_max_ms);
  return stats;
}

}  // namespace rr::service
