#include "service/service.hpp"

#include <algorithm>
#include <exception>
#include <utility>

#include "util/error.hpp"

namespace rr::service {
namespace {

fpga::PartialRegion make_region(const Tenant::Config& config) {
  RR_REQUIRE(config.fabric != nullptr, "tenant needs a fabric");
  if (config.window.has_value())
    return fpga::PartialRegion(config.fabric, *config.window);
  return fpga::PartialRegion(config.fabric);
}

double to_ms(std::uint64_t ns) noexcept {
  return static_cast<double>(ns) * 1e-6;
}

/// v must be sorted ascending; nearest-rank percentile in [0, 1].
double percentile_ms(const std::vector<std::uint64_t>& v, double q) noexcept {
  if (v.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(v.size() - 1) + 0.5);
  return to_ms(v[std::min(rank, v.size() - 1)]);
}

}  // namespace

Tenant::Tenant(Config config)
    : library_(std::move(config.library)),
      region_(make_region(config)),
      faults_(*config.fabric),
      placer_(region_, config.online),
      cache_(config.cache),
      online_(config.online) {
  RR_REQUIRE(!library_.empty(), "tenant needs a non-empty module library");
  refresh_context();
}

void Tenant::refresh_context() {
  if (cache_ == nullptr) return;  // uncached: the placer scans per request
  context_ = cache_->acquire(region_, library_, online_.use_alternatives);
  placer_.set_table_source(context_.get());
}

Response Tenant::apply(const Request& request) {
  try {
    switch (request.op) {
      case RequestOp::kPlace:
        return apply_place(request);
      case RequestOp::kRemove:
        return apply_remove(request);
      case RequestOp::kFault:
        return apply_fault(request);
    }
    Response response;
    response.error = "unknown request op";
    return response;
  } catch (const std::exception& e) {
    // A bad request (duplicate instance, out-of-range fault rect, ...)
    // must fail that request, not the worker thread.
    Response response;
    response.status = Response::Status::kError;
    response.error = e.what();
    return response;
  }
}

Response Tenant::apply_place(const Request& request) {
  Response response;
  if (request.module < 0 ||
      request.module >= static_cast<int>(library_.size())) {
    response.error = "module index out of range";
    return response;
  }
  if (instance_module_.contains(request.instance)) {
    response.error = "instance id already live";
    return response;
  }
  const auto placed = placer_.place(
      request.instance, library_[static_cast<std::size_t>(request.module)]);
  if (!placed.has_value()) {
    response.status = Response::Status::kRejected;
    return response;
  }
  instance_module_.emplace(request.instance, request.module);
  response.status = Response::Status::kPlaced;
  response.placement = *placed;
  return response;
}

Response Tenant::apply_remove(const Request& request) {
  Response response;
  const auto it = instance_module_.find(request.instance);
  if (it == instance_module_.end()) {
    response.error = "instance id not live";
    return response;
  }
  placer_.remove(request.instance);
  instance_module_.erase(it);
  response.status = Response::Status::kRemoved;
  return response;
}

Response Tenant::apply_fault(const Request& request) {
  Response response;
  faults_.apply(request.fault);
  region_.apply_faults(faults_);
  ++fabric_epoch_;

  // Re-sync the placer with the changed availability masks FIRST: the
  // free-space index must diff the new union availability and the
  // installed tables are stale — a casualty re-placed through them could
  // land on a faulty tile (the occupancy bitmap alone cannot catch that).
  // The content-keyed cache makes the context refresh a natural
  // re-acquire; entries this tenant no longer runs age out through the
  // cache's LRU cap, so a tenant-private fault never flushes the
  // healthy-fabric tables other tenants share.
  placer_.refresh_region();
  refresh_context();

  // Displace every live instance whose footprint the fault overlay now
  // hits, then try to re-place each on the degraded fabric (ascending id:
  // deterministic). Unrecoverable instances are lost and their ids freed.
  std::vector<int> displaced;
  const BitMatrix& faulty = region_.fault_mask();
  for (const placer::ModulePlacement& p : placer_.live_placements()) {
    const int library_index = instance_module_.at(p.module);
    const geost::ShapeFootprint& shape =
        library_[static_cast<std::size_t>(library_index)]
            .shapes()[static_cast<std::size_t>(p.shape)];
    if (faulty.intersects_shifted(shape.mask(), p.y, p.x))
      displaced.push_back(p.module);  // p.module is the instance id
  }
  for (const int id : displaced) placer_.remove(id);
  for (const int id : displaced) {
    const int library_index = instance_module_.at(id);
    const auto placed = placer_.place(
        id, library_[static_cast<std::size_t>(library_index)]);
    if (placed.has_value()) {
      ++response.recovered;
    } else {
      instance_module_.erase(id);
    }
  }
  response.displaced = static_cast<int>(displaced.size());
  response.status = Response::Status::kFaulted;
  return response;
}

json::Value ServiceStats::to_json() const {
  json::Value doc = json::Value::object();
  doc.set("requests", json::Value(requests));
  doc.set("placed", json::Value(placed));
  doc.set("rejected", json::Value(rejected));
  doc.set("removed", json::Value(removed));
  doc.set("fault_events", json::Value(fault_events));
  doc.set("errors", json::Value(errors));
  doc.set("batches", json::Value(batches));
  doc.set("batched_requests", json::Value(batched_requests));
  json::Value cache_doc = json::Value::object();
  cache_doc.set("hits", json::Value(cache.hits));
  cache_doc.set("misses", json::Value(cache.misses));
  cache_doc.set("invalidations", json::Value(cache.invalidations));
  cache_doc.set("evictions", json::Value(cache.evictions));
  cache_doc.set("entries", json::Value(cache.entries));
  cache_doc.set("hit_rate", json::Value(cache.hit_rate()));
  doc.set("cache", std::move(cache_doc));
  json::Value latency = json::Value::object();
  latency.set("count", json::Value(latency_count));
  latency.set("mean_ms", json::Value(latency_mean_ms));
  latency.set("p50_ms", json::Value(latency_p50_ms));
  latency.set("p99_ms", json::Value(latency_p99_ms));
  latency.set("max_ms", json::Value(latency_max_ms));
  doc.set("latency", std::move(latency));
  json::Value service_lat = json::Value::object();
  service_lat.set("mean_ms", json::Value(latency_service_mean_ms));
  service_lat.set("p50_ms", json::Value(latency_service_p50_ms));
  service_lat.set("p99_ms", json::Value(latency_service_p99_ms));
  service_lat.set("max_ms", json::Value(latency_service_max_ms));
  doc.set("latency_service", std::move(service_lat));
  json::Value queue_lat = json::Value::object();
  queue_lat.set("mean_ms", json::Value(latency_queue_mean_ms));
  queue_lat.set("p50_ms", json::Value(latency_queue_p50_ms));
  queue_lat.set("p99_ms", json::Value(latency_queue_p99_ms));
  queue_lat.set("max_ms", json::Value(latency_queue_max_ms));
  doc.set("latency_queue", std::move(queue_lat));
  return doc;
}

PlacementService::PlacementService(std::vector<Tenant::Config> tenants,
                                   ServiceOptions options, bool cache_enabled)
    : options_(options), cache_(cache_enabled, options.cache_capacity) {
  RR_REQUIRE(options_.workers >= 1, "service needs at least one worker");
  RR_REQUIRE(options_.max_batch >= 1, "max_batch must be at least 1");
  RR_REQUIRE(!tenants.empty(), "service needs at least one tenant");
  tenants_.reserve(tenants.size());
  for (Tenant::Config& config : tenants) {
    // cache_enabled = false means NO solve contexts at all — every request
    // pays the per-module anchor scan inside the online placer. That is
    // the pre-service behavior and the bench's control arm; wiring the
    // disabled cache in instead would still hand each tenant per-epoch
    // tables and quietly measure the wrong thing.
    config.cache = cache_.enabled() ? &cache_ : nullptr;
    tenants_.push_back(std::make_unique<Tenant>(std::move(config)));
  }
  workers_.reserve(static_cast<std::size_t>(options_.workers));
  for (int w = 0; w < options_.workers; ++w)
    workers_.push_back(std::make_unique<Worker>(options_.queue_capacity));
  for (const std::unique_ptr<Worker>& worker : workers_) {
    Worker* raw = worker.get();
    raw->thread = std::thread([this, raw] { worker_loop(*raw); });
  }
}

PlacementService::~PlacementService() { stop(); }

int PlacementService::worker_of(int tenant) const noexcept {
  // splitmix64 finalizer: spreads consecutive tenant ids over the workers
  // so adjacent tenants don't pile onto adjacent shards.
  std::uint64_t x = static_cast<std::uint64_t>(tenant) + 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return static_cast<int>(x % workers_.size());
}

std::future<Response> PlacementService::submit(Request request) {
  RR_REQUIRE(request.tenant >= 0 &&
                 request.tenant < static_cast<int>(tenants_.size()),
             "unknown tenant id " + std::to_string(request.tenant));
  Job job;
  job.request = request;
  std::future<Response> future = job.promise.get_future();
  const int worker = worker_of(request.tenant);
  const bool pushed =
      workers_[static_cast<std::size_t>(worker)]->queue.push(std::move(job));
  RR_REQUIRE(pushed, "service is stopped");
  return future;
}

Response PlacementService::call(Request request) {
  return submit(request).get();
}

void PlacementService::worker_loop(Worker& worker) {
  // Hot-path metrics land in this worker's shard, contention-free; stop()
  // folds the shards into the process registry.
  const metrics::ThreadShard redirect(worker.shard);
  std::vector<Job> batch;
  for (;;) {
    batch.clear();
    // Drain a run of consecutive same-tenant occupancy requests in one
    // queue lock: one batch, one solve-context resolution. A fault request
    // changes the fabric epoch, so it neither starts nor joins a run.
    const std::size_t taken = worker.queue.pop_run(
        [](const Job& first, const Job& next) {
          return first.request.op != RequestOp::kFault &&
                 next.request.op != RequestOp::kFault &&
                 next.request.tenant == first.request.tenant;
        },
        static_cast<std::size_t>(options_.max_batch), batch);
    if (taken == 0) break;
    worker.batched_requests += taken - 1;
    ++worker.batches;
    Tenant& tenant =
        *tenants_[static_cast<std::size_t>(batch.front().request.tenant)];
    for (Job& job : batch) {
      Stopwatch service_watch;
      Response response = tenant.apply(job.request);
      const auto service_ns =
          static_cast<std::uint64_t>(service_watch.elapsed().count());
      record(worker, response);
      const auto elapsed_ns =
          static_cast<std::uint64_t>(job.latency.elapsed().count());
      const std::uint64_t queue_ns =
          elapsed_ns > service_ns ? elapsed_ns - service_ns : 0;
      worker.latency_ns.push_back(elapsed_ns);
      worker.service_ns.push_back(service_ns);
      worker.queue_ns.push_back(queue_ns);
      worker.shard.record_time("service.request", elapsed_ns);
      worker.shard.record_time("service.request.service", service_ns);
      worker.shard.record_time("service.request.queue", queue_ns);
      ++worker.requests;
      job.promise.set_value(std::move(response));
    }
  }
}

void PlacementService::record(Worker& worker, const Response& response) {
  switch (response.status) {
    case Response::Status::kPlaced:
      ++worker.placed;
      break;
    case Response::Status::kRejected:
      ++worker.rejected;
      break;
    case Response::Status::kRemoved:
      ++worker.removed;
      break;
    case Response::Status::kFaulted:
      ++worker.fault_events;
      break;
    case Response::Status::kError:
      ++worker.errors;
      break;
  }
}

void PlacementService::stop() {
  if (stopped_.exchange(true)) return;
  for (const std::unique_ptr<Worker>& worker : workers_)
    worker->queue.close();
  for (const std::unique_ptr<Worker>& worker : workers_)
    if (worker->thread.joinable()) worker->thread.join();
  for (const std::unique_ptr<Worker>& worker : workers_)
    metrics::process().merge(worker->shard);
}

const Tenant& PlacementService::tenant(int id) const {
  RR_REQUIRE(stopped_.load(), "tenant inspection requires a stopped service");
  RR_REQUIRE(id >= 0 && id < static_cast<int>(tenants_.size()),
             "unknown tenant id " + std::to_string(id));
  return *tenants_[static_cast<std::size_t>(id)];
}

ServiceStats PlacementService::stats() const {
  RR_REQUIRE(stopped_.load(), "stats() requires a stopped service");
  ServiceStats stats;
  std::vector<std::uint64_t> latencies;
  std::vector<std::uint64_t> service;
  std::vector<std::uint64_t> queue;
  for (const std::unique_ptr<Worker>& worker : workers_) {
    stats.requests += worker->requests;
    stats.placed += worker->placed;
    stats.rejected += worker->rejected;
    stats.removed += worker->removed;
    stats.fault_events += worker->fault_events;
    stats.errors += worker->errors;
    stats.batches += worker->batches;
    stats.batched_requests += worker->batched_requests;
    latencies.insert(latencies.end(), worker->latency_ns.begin(),
                     worker->latency_ns.end());
    service.insert(service.end(), worker->service_ns.begin(),
                   worker->service_ns.end());
    queue.insert(queue.end(), worker->queue_ns.begin(),
                 worker->queue_ns.end());
  }
  stats.cache = cache_.stats();
  stats.latency_count = latencies.size();
  const auto summarize = [](std::vector<std::uint64_t>& v, double* mean,
                            double* p50, double* p99, double* max) {
    if (v.empty()) return;
    std::sort(v.begin(), v.end());
    std::uint64_t total = 0;
    for (const std::uint64_t ns : v) total += ns;
    *mean = to_ms(total) / static_cast<double>(v.size());
    *p50 = percentile_ms(v, 0.50);
    *p99 = percentile_ms(v, 0.99);
    *max = to_ms(v.back());
  };
  summarize(latencies, &stats.latency_mean_ms, &stats.latency_p50_ms,
            &stats.latency_p99_ms, &stats.latency_max_ms);
  summarize(service, &stats.latency_service_mean_ms,
            &stats.latency_service_p50_ms, &stats.latency_service_p99_ms,
            &stats.latency_service_max_ms);
  summarize(queue, &stats.latency_queue_mean_ms, &stats.latency_queue_p50_ms,
            &stats.latency_queue_p99_ms, &stats.latency_queue_max_ms);
  return stats;
}

}  // namespace rr::service
