// Solve-context caching for the placement service.
//
// The expensive part of serving a placement request is not the first-fit
// scan — it is preparing the per-module placement tables (anchor
// correlation of every shape against the region's availability masks).
// Those tables depend only on (fabric availability, module library,
// alternatives setting), all of which are stable across many requests, so
// the service caches them: a SolveContext bundles the shared tables for one
// (fabric signature, library signature) pair and plugs into
// baseline::OnlinePlacer as its ModuleTableSource; the SolveContextCache
// deduplicates contexts across tenants that run the same fabric and
// library.
//
// Invalidation: signatures are content hashes over the availability masks
// and shape layouts, so any fault or repair changes the fabric signature
// and a re-acquire naturally builds (or finds) the right context — a stale
// context cannot be returned for a changed fabric. Memory is bounded by an
// LRU cap: when an insert would exceed the capacity, the least-recently-
// acquired entry is evicted, so fabric states nobody runs anymore age out
// while hot shared entries (healthy-fabric tables several tenants run on)
// survive any one tenant's fault churn. Occupancy changes
// (place/remove/defrag) never invalidate: the tables encode availability,
// not occupancy.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "baseline/online.hpp"
#include "fpga/region.hpp"
#include "model/module.hpp"
#include "placer/model_builder.hpp"

namespace rr::service {

/// Content hash of a region's placement-relevant state: dimensions plus the
/// per-resource availability masks (which already fold in static tiles,
/// blocks, and the fault overlay). Two regions with equal signatures yield
/// identical anchor tables for any module.
[[nodiscard]] std::uint64_t fabric_signature(const fpga::PartialRegion& region);

/// Content hash of a module library: names, shape order, and per-shape
/// typed layouts. Order-sensitive — the cached tables are indexed by
/// library position.
[[nodiscard]] std::uint64_t library_signature(
    std::span<const model::Module> modules);

struct SolveContextKey {
  std::uint64_t fabric = 0;
  std::uint64_t library = 0;
  bool use_alternatives = true;

  auto operator<=>(const SolveContextKey&) const = default;
};

/// Immutable solve state for one (fabric, library) pair: the shared
/// placement tables plus a name index for ModuleTableSource lookups.
/// Everything is built in the constructor and never mutated, so one context
/// may be installed in placers on several worker threads at once.
class SolveContext final : public baseline::ModuleTableSource {
 public:
  SolveContext(SolveContextKey key, const fpga::PartialRegion& region,
               std::span<const model::Module> library);

  [[nodiscard]] const SolveContextKey& key() const noexcept { return key_; }

  /// Tables over the whole library, library order — the handle to inject
  /// into runtime::ReconfigurationManager::set_pool_tables or a Placer.
  [[nodiscard]] const placer::TablesHandle& tables() const noexcept {
    return tables_;
  }

  /// ModuleTableSource: resolve by module name. Within one library names
  /// are unique and pin the content (the library signature covers shapes),
  /// so a name match is a content match. Thread-safe (pure read).
  [[nodiscard]] const placer::ModuleTables* lookup(
      const model::Module& module) override;

 private:
  SolveContextKey key_;
  placer::TablesHandle tables_;
  std::unordered_map<std::string, std::size_t> index_;  // name → library pos
};

struct SolveContextCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t invalidations = 0;
  std::uint64_t evictions = 0;  // LRU-cap evictions (not invalidate() calls)
  std::size_t entries = 0;

  [[nodiscard]] double hit_rate() const noexcept {
    const std::uint64_t total = hits + misses;
    return total > 0 ? static_cast<double>(hits) / static_cast<double>(total)
                     : 0.0;
  }
};

/// Shared, thread-safe context cache. acquire() is the only build path, so
/// concurrent tenants with the same fabric and library share one table
/// preparation. Disabled mode (enabled = false) builds a fresh context on
/// every acquire and caches nothing — the control arm of the service bench.
class SolveContextCache {
 public:
  /// Default LRU capacity: comfortably above the distinct (fabric, library)
  /// states a typical tenant mix runs at once, small enough that dead
  /// fabric states cannot accumulate tables without bound.
  static constexpr std::size_t kDefaultCapacity = 32;

  /// `capacity` caps the entry count (LRU eviction on overflow); 0 means
  /// unbounded.
  explicit SolveContextCache(bool enabled = true,
                             std::size_t capacity = kDefaultCapacity)
      : enabled_(enabled), capacity_(capacity) {}

  [[nodiscard]] bool enabled() const noexcept { return enabled_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// The context for (region, library, use_alternatives): cached when the
  /// signatures match an entry, freshly built (and inserted) otherwise.
  [[nodiscard]] std::shared_ptr<SolveContext> acquire(
      const fpga::PartialRegion& region,
      std::span<const model::Module> library, bool use_alternatives);

  /// Drop the entry for `key`, if present. Holders keep their shared_ptr
  /// alive; the next acquire for the same signatures rebuilds (a miss).
  void invalidate(const SolveContextKey& key);

  [[nodiscard]] SolveContextCacheStats stats() const;

 private:
  struct Entry {
    std::shared_ptr<SolveContext> context;
    std::uint64_t last_used = 0;  // recency tick of the latest acquire
  };

  const bool enabled_;
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::map<SolveContextKey, Entry> entries_;
  std::uint64_t tick_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t invalidations_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace rr::service
