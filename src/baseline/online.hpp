// Online module placement (the related-work setting of §II: modules are
// placed and removed at run time in a nondeterministic order, and the
// placer manages free space incrementally).
//
// OnlinePlacer keeps the occupancy state of a region and serves place() /
// remove() requests with a bottom-left first-fit over precomputed anchor
// tables. It is the comparison point for the paper's offline in-advance
// placement, and demonstrates how design alternatives raise the request
// acceptance ratio (service level) under fragmentation.
//
// When a defrag deadline is configured, a rejected request additionally
// triggers an online defragmentation pass in the spirit of van der Veen et
// al. ("Defragmenting the Module Layout of a Partially Reconfigurable
// Device") and Fekete et al.'s no-break model: a bounded set of live
// modules — chosen by a blocking-cell heuristic over the occupancy bitmap
// — is re-placed together with the new request, and the result is
// committed only if the request then fits. Degradation is graceful: an
// exact CP re-place first, a greedy bottom-left shake when the deadline
// expires mid-search, and finally a plain reject. Relocations are paid
// for in the no-break copy model: a moved module costs its old footprint
// (cleared) plus its new footprint (written), accounted as a
// runtime::TransitionCost.
#pragma once

#include <memory>
#include <optional>
#include <string_view>
#include <unordered_map>

#include "comm/net.hpp"
#include "fpga/region.hpp"
#include "geo/free_space.hpp"
#include "model/module.hpp"
#include "placer/model_builder.hpp"
#include "placer/placement.hpp"
#include "runtime/manager.hpp"

namespace rr::baseline {

/// Supplier of cached per-module placement tables, as produced by
/// placer::prepare_tables over this placer's region and alternatives
/// setting. When installed via OnlinePlacer::set_table_source, place() and
/// the defrag shake tier skip the per-request anchor scan for any module
/// the source covers; a nullptr lookup falls back to the scan. Cached and
/// scanned tables are prepared by the same code path, so placements are
/// bit-identical either way.
///
/// Staleness contract: the tables encode the region's availability masks at
/// preparation time. After a fault or repair changes the masks the caller
/// MUST drop or refresh the source before the next request, or placements
/// may land on unavailable tiles (the occupancy bitmap alone cannot catch
/// this). Occupancy changes — place/remove/defrag — do not invalidate.
class ModuleTableSource {
 public:
  virtual ~ModuleTableSource() = default;
  /// Tables for `module`, or nullptr when not cached. The pointee must stay
  /// valid until the source is replaced or the placer is destroyed.
  [[nodiscard]] virtual const placer::ModuleTables* lookup(
      const model::Module& module) = 0;
};

/// Tuning for the on-reject defragmentation pass. Defrag is off by default
/// (deadline_seconds <= 0), in which case place() behaves exactly like the
/// plain first-fit placer — bit-identical outcomes on any trace.
struct OnlineDefragOptions {
  /// Wall-clock budget per defrag pass; <= 0 disables defragmentation.
  double deadline_seconds = 0.0;
  /// Largest relocation set considered (live modules moved per pass).
  int max_relocations = 4;
  /// Blocking-cell heuristic scan bound: candidate anchors examined when
  /// choosing the relocation set.
  int max_anchor_scan = 256;
  /// Lifetime cap on relocated tiles (cleared + written); < 0 = unlimited.
  /// Once exhausted, defrag passes are skipped and requests fall back to
  /// plain first-fit accept/reject.
  long relocation_budget_tiles = -1;
  /// Seed for the exact tier's search.
  std::uint64_t seed = 1;
};

/// Defragmentation telemetry; also mirrored into rr::metrics under
/// "online.defrag.*" while collection is enabled.
struct OnlineDefragStats {
  std::uint64_t attempts = 0;           // defrag passes started
  std::uint64_t successes = 0;          // request admitted by a pass
  std::uint64_t exact_successes = 0;    // ... via the exact CP tier
  std::uint64_t greedy_successes = 0;   // ... via the greedy shake tier
  std::uint64_t relocated_modules = 0;  // live modules actually moved
  std::uint64_t relocated_tiles = 0;    // tiles cleared + written by moves
  std::uint64_t deadline_expiries = 0;  // exact tier cut off by deadline
  std::uint64_t rejects = 0;            // pass ran, request still rejected
  std::uint64_t retry_skips = 0;        // skipped: state unchanged since a
                                        // failed pass for a no-larger module
  std::uint64_t budget_skips = 0;       // skipped: relocation budget spent
};

struct OnlineOptions {
  bool use_alternatives = true;
  /// Batch anchor-feasibility kernels (geost/anchor_kernel) for the
  /// first-fit scan and the defrag blocking-cell ranking: conflicts are
  /// computed for all anchors of a shape in one dilation sweep instead of
  /// one intersects/overlap call per anchor. Placements and defrag plans
  /// are identical either way; false keeps the per-anchor loops (the
  /// differential oracle).
  bool batch_feasibility = true;
  /// Answer admission queries from the incremental maximal-empty-rectangle
  /// index (geo/free_space) instead of sweeping anchor tables against the
  /// occupancy bitmap. Accept/reject decisions and chosen anchors are
  /// bit-identical either way; false keeps the bitmap sweep as the
  /// differential oracle (and skips all index maintenance).
  bool free_space_index = true;
  /// Which feasible anchor wins a placement query; see AnchorPolicy. Both
  /// the index and the sweep honour the policy identically.
  AnchorPolicy policy = AnchorPolicy::kFirstFit;
  /// Communication model for AnchorPolicy::kCommCost: a request's candidate
  /// anchors are ranked by the weighted HPWL growth against the pins of the
  /// currently live instances (nets reference modules by name; instances of
  /// unnamed-by-any-net modules rank as first-fit). A null/empty net list or
  /// comm_weight <= 0 degrades kCommCost to kFirstFit — the zero-weight
  /// oracle. Shared ownership so service tenants can alias one list.
  std::shared_ptr<const comm::NetList> nets;
  long comm_weight = 0;
  OnlineDefragOptions defrag{};
};

class OnlinePlacer {
 public:
  /// The region must outlive the placer.
  explicit OnlinePlacer(const fpga::PartialRegion& region,
                        OnlineOptions options = {});

  /// Try to place an instance of `module`; returns the placement (region
  /// coordinates and chosen shape) or nullopt when no conflict-free anchor
  /// exists and defragmentation (if enabled) cannot make room.
  /// `instance_id` names the instance for later removal and must be fresh.
  /// A successful defrag pass may relocate other live instances; their new
  /// positions are visible through live_placements().
  ///
  /// `budget_seconds` > 0 caps the defrag pass's deadline at
  /// min(configured, budget) — the service hands each request's *remaining*
  /// deadline budget through here so a late-starting request cannot spend
  /// the full configured defrag budget it no longer has. <= 0 means "no
  /// extra cap" (the configured deadline applies unchanged); a positive
  /// budget never *enables* defrag when it is configured off, so the
  /// default is bit-identical to the two-argument call.
  std::optional<placer::ModulePlacement> place(int instance_id,
                                               const model::Module& module,
                                               double budget_seconds = 0.0);

  /// Remove a previously placed instance, freeing its tiles.
  void remove(int instance_id);

  /// Install (or clear, with nullptr) a table cache; see ModuleTableSource
  /// for the staleness contract. The source must outlive its installation.
  /// Dropping the source also drops the anchor-query cache derived from its
  /// tables (cache entries are keyed by ModuleTables address).
  void set_table_source(ModuleTableSource* source) noexcept {
    table_source_ = source;
    query_cache_.clear();
  }

  /// Re-sync with the region after its availability masks changed (fault or
  /// repair overlay): the free-space index diffs the new union-availability
  /// bitmap and the anchor-query cache is dropped. Callers refreshing their
  /// ModuleTableSource after a fault (the staleness contract) must call this
  /// too, or index decisions diverge from the masks.
  void refresh_region();

  [[nodiscard]] bool is_placed(int instance_id) const noexcept {
    return live_.contains(instance_id);
  }
  [[nodiscard]] int live_count() const noexcept {
    return static_cast<int>(live_.size());
  }
  /// Tiles currently occupied by live instances.
  [[nodiscard]] long occupied_tiles() const noexcept { return occupied_tiles_; }
  /// Fraction of the region's available tiles currently occupied.
  [[nodiscard]] double occupancy() const noexcept;

  /// Current placement of every live instance (ModulePlacement::module is
  /// the instance id), sorted by id. The oracle view for cross-checking
  /// the incremental occupancy state.
  [[nodiscard]] std::vector<placer::ModulePlacement> live_placements() const;

  /// The incremental occupancy bitmap (rows by y, columns by x).
  [[nodiscard]] const BitMatrix& occupied_matrix() const noexcept {
    return occupied_;
  }

  /// The free-space index (meaningful only while options.free_space_index;
  /// otherwise it is empty). Exposed for recovery-tier queries and tests.
  [[nodiscard]] const FreeSpaceIndex& free_space() const noexcept {
    return index_;
  }

  [[nodiscard]] const OnlineDefragStats& defrag_stats() const noexcept {
    return defrag_stats_;
  }

  /// Accumulated reconfiguration cost of defrag relocations: every moved
  /// module contributes tiles_cleared (old footprint) + tiles_written (new
  /// footprint), mirroring the no-break copy-cost model. The new request's
  /// own configuration write is not included — that cost exists with or
  /// without defragmentation.
  [[nodiscard]] const runtime::TransitionCost& relocation_cost()
      const noexcept {
    return relocation_cost_;
  }

 private:
  struct LiveInstance {
    model::Module module;  // owned copy: defrag re-places alternatives
    int shape = 0;         // index into module.shapes()
    int x = 0;
    int y = 0;

    [[nodiscard]] const geost::ShapeFootprint& footprint() const noexcept {
      return module.shapes()[static_cast<std::size_t>(shape)];
    }
  };

  /// One pending move of a committed defrag plan.
  struct Move {
    int instance_id = 0;
    int shape = 0;
    int x = 0;
    int y = 0;
  };

  [[nodiscard]] std::vector<geost::ShapeFootprint> shapes_of(
      const model::Module& module) const;

  /// The anchor scan (prepare_tables' per-module body): fills `shapes` and
  /// the sorted placement `table` for `module`. The fallback path when no
  /// table source covers the module.
  void build_tables(const model::Module& module,
                    std::vector<geost::ShapeFootprint>& shapes,
                    std::vector<geost::Placement>& table) const;

  /// Bottom-left first-fit of `shapes` against `occupancy`; nullopt when no
  /// table entry is conflict-free.
  [[nodiscard]] std::optional<geost::Placement> first_fit(
      const BitMatrix& occupancy,
      const std::vector<geost::ShapeFootprint>& shapes,
      const std::vector<geost::Placement>& table) const;

  /// Per-shape inputs for FreeSpaceIndex::best_anchor, derived purely from
  /// a table's contents (anchor bitmaps scattered from its entries, part
  /// decompositions of its shapes) — never from occupancy, so cached data
  /// stays valid for the lifetime of its ModuleTables object.
  struct ShapeQueryData {
    std::vector<BitMatrix> anchors;
    std::vector<std::vector<Rect>> parts;
  };

  [[nodiscard]] ShapeQueryData build_query_data(
      const std::vector<geost::ShapeFootprint>& shapes,
      const std::vector<geost::Placement>& table) const;

  /// Policy-aware admission via the free-space index; decisions match
  /// sweep_fit bit-for-bit. `cached` (may be null) keys the query-data
  /// cache. `comm` (may be null) is the kCommCost ranking context.
  [[nodiscard]] std::optional<geost::Placement> index_fit(
      const FreeSpaceIndex& index,
      const std::vector<geost::ShapeFootprint>& shapes,
      const std::vector<geost::Placement>& table,
      const placer::ModuleTables* cached,
      const comm::PinContext* comm) const;

  /// Policy-aware admission via the occupancy-bitmap sweep (the
  /// differential oracle). kFirstFit delegates to first_fit; the other
  /// policies reduce over every feasible table entry.
  [[nodiscard]] std::optional<geost::Placement> sweep_fit(
      const BitMatrix& occupancy,
      const std::vector<geost::ShapeFootprint>& shapes,
      const std::vector<geost::Placement>& table,
      const comm::PinContext* comm) const;

  /// Dispatch: index when `index` is non-null, sweep otherwise.
  [[nodiscard]] std::optional<geost::Placement> find_spot(
      const BitMatrix& occupancy, const FreeSpaceIndex* index,
      const std::vector<geost::ShapeFootprint>& shapes,
      const std::vector<geost::Placement>& table,
      const placer::ModuleTables* cached,
      const comm::PinContext* comm) const;

  /// kCommCost ranking context for placing one instance of `name`: the
  /// fixed pins of the live instances, minus `exclude_id` (the moving
  /// instance must not attract itself during a defrag shake). Empty when
  /// comm is off or no net can distinguish anchors for this module.
  [[nodiscard]] comm::PinContext build_pin_context(std::string_view name,
                                                   int exclude_id) const;

  /// The defrag pass (gates already passed). Commits and returns the new
  /// request's placement on success. `deadline_seconds` is the effective
  /// (possibly remaining-budget-clamped) wall budget for this pass.
  std::optional<placer::ModulePlacement> defrag_place(
      int instance_id, const model::Module& module,
      const std::vector<geost::ShapeFootprint>& shapes,
      const std::vector<geost::Placement>& table,
      const placer::ModuleTables* cached, double deadline_seconds);

  /// Apply a defrag plan: relocate `moves` (entries whose placement is
  /// unchanged are kept for free) and admit the new request.
  placer::ModulePlacement commit_plan(int instance_id,
                                      const model::Module& module,
                                      const std::vector<Move>& moves,
                                      const geost::Placement& request);

  void note_defrag_failure(const model::Module& module);

  const fpga::PartialRegion& region_;
  OnlineOptions options_;
  ModuleTableSource* table_source_ = nullptr;  // non-owning; may be null
  BitMatrix occupied_;
  long occupied_tiles_ = 0;
  std::unordered_map<int, LiveInstance> live_;
  /// Mirrors occupied_ against the region's union availability; maintained
  /// at every occupancy mutation while options_.free_space_index.
  FreeSpaceIndex index_;
  /// Anchor bitmaps / parts per cached table, built on first index query.
  mutable std::unordered_map<const placer::ModuleTables*, ShapeQueryData>
      query_cache_;

  OnlineDefragStats defrag_stats_{};
  runtime::TransitionCost relocation_cost_{};
  /// Bumped on every state change (place/remove/defrag commit); the retry
  /// gate compares it against the epoch of the last failed pass so a
  /// pathological trace of identical doomed requests cannot livelock the
  /// service re-running defrag against an unchanged region.
  std::uint64_t epoch_ = 0;
  bool have_failed_defrag_ = false;
  std::uint64_t failed_defrag_epoch_ = 0;
  int failed_defrag_min_area_ = 0;
};

}  // namespace rr::baseline
