// Online module placement (the related-work setting of §II: modules are
// placed and removed at run time in a nondeterministic order, and the
// placer manages free space incrementally).
//
// OnlinePlacer keeps the occupancy state of a region and serves place() /
// remove() requests with a bottom-left first-fit over precomputed anchor
// tables. It is the comparison point for the paper's offline in-advance
// placement, and demonstrates how design alternatives raise the request
// acceptance ratio (service level) under fragmentation.
#pragma once

#include <optional>
#include <unordered_map>

#include "fpga/region.hpp"
#include "model/module.hpp"
#include "placer/placement.hpp"

namespace rr::baseline {

struct OnlineOptions {
  bool use_alternatives = true;
};

class OnlinePlacer {
 public:
  /// The region must outlive the placer.
  explicit OnlinePlacer(const fpga::PartialRegion& region,
                        OnlineOptions options = {});

  /// Try to place an instance of `module`; returns the placement (region
  /// coordinates and chosen shape) or nullopt when no conflict-free anchor
  /// exists. `instance_id` names the instance for later removal and must be
  /// fresh.
  std::optional<placer::ModulePlacement> place(int instance_id,
                                               const model::Module& module);

  /// Remove a previously placed instance, freeing its tiles.
  void remove(int instance_id);

  [[nodiscard]] bool is_placed(int instance_id) const noexcept {
    return live_.contains(instance_id);
  }
  [[nodiscard]] int live_count() const noexcept {
    return static_cast<int>(live_.size());
  }
  /// Tiles currently occupied by live instances.
  [[nodiscard]] long occupied_tiles() const noexcept { return occupied_tiles_; }
  /// Fraction of the region's available tiles currently occupied.
  [[nodiscard]] double occupancy() const noexcept;

 private:
  struct LiveInstance {
    geost::ShapeFootprint shape;  // the chosen alternative (owned copy)
    int x = 0;
    int y = 0;
  };

  const fpga::PartialRegion& region_;
  OnlineOptions options_;
  BitMatrix occupied_;
  long occupied_tiles_ = 0;
  std::unordered_map<int, LiveInstance> live_;
};

}  // namespace rr::baseline
