#include "baseline/greedy.hpp"

#include <algorithm>
#include <numeric>

#include "geost/object.hpp"
#include "util/stopwatch.hpp"

namespace rr::baseline {

placer::PlacementOutcome place_greedy(const fpga::PartialRegion& region,
                                      std::span<const model::Module> modules,
                                      const GreedyOptions& options) {
  Stopwatch watch;
  placer::PlacementOutcome outcome;

  // Per-module sorted placement tables (same machinery as the CP model).
  struct Candidate {
    std::vector<geost::ShapeFootprint> shapes;
    std::vector<geost::Placement> table;
    int min_area = 0;
  };
  std::vector<Candidate> candidates(modules.size());
  for (std::size_t i = 0; i < modules.size(); ++i) {
    Candidate& c = candidates[i];
    if (options.use_alternatives) {
      c.shapes = modules[i].shapes();
    } else {
      c.shapes.push_back(modules[i].shapes().front());
    }
    std::vector<std::vector<Point>> anchors;
    anchors.reserve(c.shapes.size());
    for (const geost::ShapeFootprint& shape : c.shapes)
      anchors.push_back(geost::compute_valid_anchors(region.masks(), shape));
    c.table = geost::sorted_placement_table(c.shapes, anchors);
    c.min_area = c.shapes.front().area();
    for (const geost::ShapeFootprint& shape : c.shapes)
      c.min_area = std::min(c.min_area, shape.area());
  }

  std::vector<std::size_t> order(modules.size());
  std::iota(order.begin(), order.end(), 0);
  if (options.order == GreedyOrder::kDecreasingArea) {
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return candidates[a].min_area > candidates[b].min_area;
    });
  }

  BitMatrix occupied(region.height(), region.width());
  placer::PlacementSolution solution;
  solution.feasible = true;
  solution.placements.assign(modules.size(), placer::ModulePlacement{});

  for (std::size_t i : order) {
    const Candidate& c = candidates[i];
    bool placed = false;
    for (const geost::Placement& p : c.table) {
      const geost::ShapeFootprint& shape =
          c.shapes[static_cast<std::size_t>(p.shape)];
      if (occupied.intersects_shifted(shape.mask(), p.y, p.x)) continue;
      occupied.or_shifted(shape.mask(), p.y, p.x);
      solution.placements[i] = placer::ModulePlacement{
          static_cast<int>(i), p.shape, p.x, p.y};
      solution.extent = std::max(
          solution.extent, p.x + shape.bounding_box().width);
      placed = true;
      break;
    }
    if (!placed) {
      solution.feasible = false;
      break;
    }
  }

  if (solution.feasible) outcome.solution = std::move(solution);
  outcome.seconds = watch.seconds();
  return outcome;
}

}  // namespace rr::baseline
