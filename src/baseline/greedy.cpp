#include "baseline/greedy.hpp"

#include <algorithm>
#include <numeric>

#include "geost/object.hpp"
#include "util/stopwatch.hpp"

namespace rr::baseline {

placer::PlacementOutcome place_greedy(const fpga::PartialRegion& region,
                                      std::span<const model::Module> modules,
                                      const GreedyOptions& options) {
  Stopwatch watch;
  placer::PlacementOutcome outcome;

  // Per-module sorted placement tables (same machinery as the CP model).
  struct Candidate {
    std::vector<geost::ShapeFootprint> shapes;
    std::vector<geost::Placement> table;
    int min_area = 0;
  };
  std::vector<Candidate> candidates(modules.size());
  for (std::size_t i = 0; i < modules.size(); ++i) {
    Candidate& c = candidates[i];
    if (options.use_alternatives) {
      c.shapes = modules[i].shapes();
    } else {
      c.shapes.push_back(modules[i].shapes().front());
    }
    std::vector<std::vector<Point>> anchors;
    anchors.reserve(c.shapes.size());
    for (const geost::ShapeFootprint& shape : c.shapes)
      anchors.push_back(geost::compute_valid_anchors(region.masks(), shape));
    c.table = geost::sorted_placement_table(c.shapes, anchors);
    c.min_area = c.shapes.front().area();
    for (const geost::ShapeFootprint& shape : c.shapes)
      c.min_area = std::min(c.min_area, shape.area());
  }

  std::vector<std::size_t> order(modules.size());
  std::iota(order.begin(), order.end(), 0);
  if (options.order == GreedyOrder::kDecreasingArea) {
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return candidates[a].min_area > candidates[b].min_area;
    });
  }

  BitMatrix occupied(region.height(), region.width());
  placer::PlacementSolution solution;
  solution.feasible = true;
  solution.placements.assign(modules.size(), placer::ModulePlacement{});

  const bool comm_on = options.nets != nullptr && options.comm_weight > 0 &&
                       !options.nets->empty();
  std::vector<comm::NamedPin> pins;  // modules placed so far

  const auto commit = [&](std::size_t i, const geost::Placement& p,
                          const geost::ShapeFootprint& shape) {
    occupied.or_shifted(shape.mask(), p.y, p.x);
    solution.placements[i] =
        placer::ModulePlacement{static_cast<int>(i), p.shape, p.x, p.y};
    solution.extent =
        std::max(solution.extent, p.x + shape.bounding_box().width);
    if (comm_on) {
      pins.push_back(comm::NamedPin{
          modules[i].name(), comm::center2(shape.bounding_box(), p.x, p.y)});
    }
  };

  for (std::size_t i : order) {
    const Candidate& c = candidates[i];
    comm::PinContext ctx;
    if (comm_on)
      ctx = comm::PinContext::build(*options.nets, modules[i].name(), pins);
    bool placed = false;
    if (ctx.empty()) {
      // Area-only first fit (also the comm path when no already-placed net
      // partner pins the module anywhere).
      for (const geost::Placement& p : c.table) {
        const geost::ShapeFootprint& shape =
            c.shapes[static_cast<std::size_t>(p.shape)];
        if (occupied.intersects_shifted(shape.mask(), p.y, p.x)) continue;
        commit(i, p, shape);
        placed = true;
        break;
      }
    } else {
      // Minimal communication cost against the placed-so-far pins; the
      // table is sorted by the first-fit key, so keeping the earliest entry
      // of minimal cost realizes the pinned (cost, x+w, x, y, shape) order.
      const geost::Placement* best = nullptr;
      const geost::ShapeFootprint* best_shape = nullptr;
      long best_cost = 0;
      for (const geost::Placement& p : c.table) {
        const geost::ShapeFootprint& shape =
            c.shapes[static_cast<std::size_t>(p.shape)];
        const long cost =
            ctx.cost2(comm::center2(shape.bounding_box(), p.x, p.y));
        if (best != nullptr && cost >= best_cost) continue;
        if (occupied.intersects_shifted(shape.mask(), p.y, p.x)) continue;
        best = &p;
        best_shape = &shape;
        best_cost = cost;
      }
      if (best != nullptr) {
        commit(i, *best, *best_shape);
        placed = true;
      }
    }
    if (!placed) {
      solution.feasible = false;
      break;
    }
  }

  if (solution.feasible) outcome.solution = std::move(solution);
  outcome.seconds = watch.seconds();
  return outcome;
}

}  // namespace rr::baseline
