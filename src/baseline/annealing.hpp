// Simulated-annealing baseline placer.
//
// A metaheuristic comparator for the CP placer: the state assigns every
// module one entry of its placement table; overlaps are allowed during the
// walk and penalized, so the search can tunnel through infeasible
// configurations. The best feasible (overlap-free) state seen is returned.
#pragma once

#include <cstdint>
#include <span>

#include "comm/net.hpp"
#include "fpga/region.hpp"
#include "model/module.hpp"
#include "placer/placement.hpp"

namespace rr::baseline {

struct AnnealingOptions {
  bool use_alternatives = true;
  double time_limit_seconds = 2.0;
  std::uint64_t seed = 1;
  /// Initial temperature and geometric cooling factor per round.
  double initial_temperature = 8.0;
  double cooling = 0.95;
  /// Moves attempted per temperature (scaled by module count).
  int moves_per_round_per_module = 40;
  /// Cost weight of each doubly-occupied tile.
  double overlap_weight = 4.0;
  /// Optional inter-module nets: with comm_weight > 0 the walk minimizes
  /// extent + overlap penalty + comm_weight * HPWL2 / comm::kExtentScale
  /// (the CP objective's relative scaling, in tiles). Null nets or
  /// comm_weight <= 0 leaves the area-only cost and the random walk
  /// byte-identical (the zero-weight oracle).
  const comm::NetList* nets = nullptr;
  long comm_weight = 0;
};

[[nodiscard]] placer::PlacementOutcome place_annealing(
    const fpga::PartialRegion& region,
    std::span<const model::Module> modules,
    const AnnealingOptions& options = {});

}  // namespace rr::baseline
