#include "baseline/online.hpp"

#include "geost/object.hpp"
#include "util/error.hpp"

namespace rr::baseline {

OnlinePlacer::OnlinePlacer(const fpga::PartialRegion& region,
                           OnlineOptions options)
    : region_(region),
      options_(options),
      occupied_(region.height(), region.width()) {}

double OnlinePlacer::occupancy() const noexcept {
  const long total = region_.total_available();
  return total > 0 ? static_cast<double>(occupied_tiles_) /
                         static_cast<double>(total)
                   : 0.0;
}

std::optional<placer::ModulePlacement> OnlinePlacer::place(
    int instance_id, const model::Module& module) {
  RR_REQUIRE(!live_.contains(instance_id),
             "instance id " + std::to_string(instance_id) + " already placed");
  // Anchor tables are computed per request: the online setting has no
  // design-time module list. (Callers placing the same module repeatedly
  // can cache at their level.)
  std::vector<geost::ShapeFootprint> shapes;
  if (options_.use_alternatives) shapes = module.shapes();
  else shapes.push_back(module.shapes().front());
  std::vector<std::vector<Point>> anchors;
  anchors.reserve(shapes.size());
  for (const geost::ShapeFootprint& shape : shapes)
    anchors.push_back(geost::compute_valid_anchors(region_.masks(), shape));
  const auto table = geost::sorted_placement_table(shapes, anchors);

  for (const geost::Placement& p : table) {
    const geost::ShapeFootprint& shape =
        shapes[static_cast<std::size_t>(p.shape)];
    if (occupied_.intersects_shifted(shape.mask(), p.y, p.x)) continue;
    occupied_.or_shifted(shape.mask(), p.y, p.x);
    occupied_tiles_ += shape.area();
    live_.emplace(instance_id, LiveInstance{shape, p.x, p.y});
    return placer::ModulePlacement{instance_id, p.shape, p.x, p.y};
  }
  return std::nullopt;
}

void OnlinePlacer::remove(int instance_id) {
  const auto it = live_.find(instance_id);
  RR_REQUIRE(it != live_.end(),
             "instance id " + std::to_string(instance_id) + " is not placed");
  const LiveInstance& instance = it->second;
  occupied_.clear_shifted(instance.shape.mask(), instance.y, instance.x);
  occupied_tiles_ -= instance.shape.area();
  live_.erase(it);
}

}  // namespace rr::baseline
