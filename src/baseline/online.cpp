#include "baseline/online.hpp"

#include <algorithm>
#include <array>
#include <tuple>

#include "geost/anchor_kernel.hpp"
#include "geost/object.hpp"
#include "placer/brancher.hpp"
#include "placer/model_builder.hpp"
#include "util/error.hpp"
#include "util/metrics.hpp"

namespace rr::baseline {

OnlinePlacer::OnlinePlacer(const fpga::PartialRegion& region,
                           OnlineOptions options)
    : region_(region),
      options_(options),
      occupied_(region.height(), region.width()) {
  if (options_.free_space_index)
    index_ = FreeSpaceIndex(FreeSpaceIndex::union_of(region_.masks()));
}

void OnlinePlacer::refresh_region() {
  if (options_.free_space_index)
    index_.set_available(FreeSpaceIndex::union_of(region_.masks()));
  query_cache_.clear();
}

double OnlinePlacer::occupancy() const noexcept {
  const long total = region_.total_available();
  return total > 0 ? static_cast<double>(occupied_tiles_) /
                         static_cast<double>(total)
                   : 0.0;
}

std::vector<placer::ModulePlacement> OnlinePlacer::live_placements() const {
  std::vector<placer::ModulePlacement> out;
  out.reserve(live_.size());
  for (const auto& [id, instance] : live_)
    out.push_back(placer::ModulePlacement{id, instance.shape, instance.x,
                                          instance.y});
  std::sort(out.begin(), out.end(),
            [](const placer::ModulePlacement& a,
               const placer::ModulePlacement& b) {
              return a.module < b.module;
            });
  return out;
}

std::vector<geost::ShapeFootprint> OnlinePlacer::shapes_of(
    const model::Module& module) const {
  std::vector<geost::ShapeFootprint> shapes;
  if (options_.use_alternatives) shapes = module.shapes();
  else shapes.push_back(module.shapes().front());
  return shapes;
}

void OnlinePlacer::build_tables(const model::Module& module,
                                std::vector<geost::ShapeFootprint>& shapes,
                                std::vector<geost::Placement>& table) const {
  shapes = shapes_of(module);
  std::vector<std::vector<Point>> anchors;
  anchors.reserve(shapes.size());
  for (const geost::ShapeFootprint& shape : shapes)
    anchors.push_back(geost::compute_valid_anchors(region_.masks(), shape));
  table = geost::sorted_placement_table(shapes, anchors);
}

std::optional<geost::Placement> OnlinePlacer::first_fit(
    const BitMatrix& occupancy,
    const std::vector<geost::ShapeFootprint>& shapes,
    const std::vector<geost::Placement>& table) const {
  // Hybrid scan: at low occupancy first-fit succeeds within a handful of
  // bottom-left entries, so probe a scalar prefix before paying for batch
  // conflict bitmaps. The batch remainder tests each entry with one bit
  // probe into a per-shape dilated bitmap — identical verdicts, since
  // conflict(y, x) == intersects_shifted(shape, y, x) for every anchor.
  constexpr std::size_t kScalarPrefix = 64;
  const std::size_t prefix = options_.batch_feasibility
                                 ? std::min(kScalarPrefix, table.size())
                                 : table.size();
  for (std::size_t t = 0; t < prefix; ++t) {
    const geost::Placement& p = table[t];
    const geost::ShapeFootprint& shape =
        shapes[static_cast<std::size_t>(p.shape)];
    if (occupancy.intersects_shifted(shape.mask(), p.y, p.x)) continue;
    return p;
  }
  if (!options_.batch_feasibility || prefix == table.size())
    return std::nullopt;
  std::vector<BitMatrix> conflicts(shapes.size());
  std::vector<unsigned char> built(shapes.size(), 0);
  for (std::size_t t = prefix; t < table.size(); ++t) {
    const geost::Placement& p = table[t];
    const std::size_t s = static_cast<std::size_t>(p.shape);
    if (!built[s]) {
      conflicts[s] = BitMatrix(occupancy.rows(), occupancy.cols());
      geost::accumulate_conflicts(conflicts[s], occupancy, shapes[s].mask(),
                                  0, occupancy.rows());
      built[s] = 1;
    }
    if (!conflicts[s].get(p.y, p.x)) return p;
  }
  return std::nullopt;
}

OnlinePlacer::ShapeQueryData OnlinePlacer::build_query_data(
    const std::vector<geost::ShapeFootprint>& shapes,
    const std::vector<geost::Placement>& table) const {
  ShapeQueryData data;
  data.anchors.reserve(shapes.size());
  data.parts.reserve(shapes.size());
  for (const geost::ShapeFootprint& shape : shapes) {
    data.anchors.emplace_back(region_.height(), region_.width());
    data.parts.push_back(decompose_mask(shape.mask()));
  }
  for (const geost::Placement& p : table)
    data.anchors[static_cast<std::size_t>(p.shape)].set(p.y, p.x, true);
  return data;
}

comm::PinContext OnlinePlacer::build_pin_context(std::string_view name,
                                                 int exclude_id) const {
  if (options_.nets == nullptr || options_.comm_weight <= 0 ||
      options_.nets->empty())
    return {};
  std::vector<comm::NamedPin> pins;
  pins.reserve(live_.size());
  for (const auto& [id, li] : live_) {
    if (id == exclude_id) continue;
    const Rect box = li.footprint().bounding_box();
    pins.push_back(
        comm::NamedPin{li.module.name(), comm::center2(box, li.x, li.y)});
  }
  // PinContext folds pins to per-net min/max bounds, so the unordered map's
  // iteration order cannot influence the result (determinism contract).
  return comm::PinContext::build(*options_.nets, name, pins);
}

std::optional<geost::Placement> OnlinePlacer::index_fit(
    const FreeSpaceIndex& index,
    const std::vector<geost::ShapeFootprint>& shapes,
    const std::vector<geost::Placement>& table,
    const placer::ModuleTables* cached, const comm::PinContext* comm) const {
  const ShapeQueryData* data;
  ShapeQueryData local;
  if (cached != nullptr) {
    const auto [it, inserted] = query_cache_.try_emplace(cached);
    if (inserted) it->second = build_query_data(shapes, table);
    data = &it->second;
  } else {
    local = build_query_data(shapes, table);
    data = &local;
  }
  std::vector<AnchorQuery> queries(shapes.size());
  for (std::size_t s = 0; s < shapes.size(); ++s) {
    const Rect box = shapes[s].bounding_box();
    queries[s] = AnchorQuery{&data->anchors[s], data->parts[s], box.width,
                             box.height};
  }
  AnchorCost cost;
  const AnchorCost* cost_ptr = nullptr;
  if (options_.policy == AnchorPolicy::kCommCost && comm != nullptr) {
    cost = [&shapes, comm](int s, int x, int y) {
      const Rect box = shapes[static_cast<std::size_t>(s)].bounding_box();
      return comm->cost2(comm::center2(box, x, y));
    };
    cost_ptr = &cost;
  }
  const auto pick = index.best_anchor(queries, options_.policy, nullptr,
                                      cost_ptr);
  if (!pick.has_value()) return std::nullopt;
  return geost::Placement{pick->shape, pick->x, pick->y};
}

std::optional<geost::Placement> OnlinePlacer::sweep_fit(
    const BitMatrix& occupancy,
    const std::vector<geost::ShapeFootprint>& shapes,
    const std::vector<geost::Placement>& table,
    const comm::PinContext* comm) const {
  // kFirstFit wants the first feasible entry in table order — exactly the
  // early-exit hybrid scan. The other policies must see every feasible
  // entry, so they pay a full scan and reduce under the policy key.
  // kCommCost without a ranking context cannot distinguish anchors and
  // degrades to the same first-fit order (zero-weight oracle, matching the
  // index arm's null-cost fallback).
  if (options_.policy == AnchorPolicy::kFirstFit ||
      (options_.policy == AnchorPolicy::kCommCost && comm == nullptr))
    return first_fit(occupancy, shapes, table);
  std::vector<BitMatrix> conflicts(shapes.size());
  std::vector<unsigned char> built(shapes.size(), 0);
  const auto feasible = [&](const geost::Placement& p) {
    const std::size_t s = static_cast<std::size_t>(p.shape);
    if (!options_.batch_feasibility)
      return !occupancy.intersects_shifted(shapes[s].mask(), p.y, p.x);
    if (!built[s]) {
      conflicts[s] = BitMatrix(occupancy.rows(), occupancy.cols());
      geost::accumulate_conflicts(conflicts[s], occupancy, shapes[s].mask(),
                                  0, occupancy.rows());
      built[s] = 1;
    }
    return !conflicts[s].get(p.y, p.x);
  };
  if (options_.policy == AnchorPolicy::kCommCost) {
    // Pinned key (cost, x + bbox.width, x, y, shape) — the same strict-`<`
    // reduction the index arm runs over its feasible bitmap, so both arms
    // resolve equal-cost ties to the same anchor.
    const geost::Placement* best = nullptr;
    std::array<long, 5> best_key{};
    for (const geost::Placement& p : table) {
      const Rect box =
          shapes[static_cast<std::size_t>(p.shape)].bounding_box();
      const std::array<long, 5> key{comm->cost2(comm::center2(box, p.x, p.y)),
                                    p.x + box.width, p.x, p.y, p.shape};
      if (best != nullptr && !(key < best_key)) continue;
      if (!feasible(p)) continue;
      best = &p;
      best_key = key;
    }
    if (best == nullptr) return std::nullopt;
    return *best;
  }
  if (options_.policy == AnchorPolicy::kBottomLeft) {
    const geost::Placement* best = nullptr;
    for (const geost::Placement& p : table) {
      if (best != nullptr &&
          std::tuple(best->y, best->x, best->shape) <=
              std::tuple(p.y, p.x, p.shape))
        continue;
      if (feasible(p)) best = &p;
    }
    if (best == nullptr) return std::nullopt;
    return *best;
  }
  // kBestFit: tightest hole — the smallest maximal empty rectangle of the
  // current free bitmap containing the shape's first part; ties fall back
  // to the first-fit key, which is the table order, so the first feasible
  // entry attaining the minimum wins.
  BitMatrix free = FreeSpaceIndex::union_of(region_.masks());
  free.clear_shifted(occupancy, 0, 0);
  const std::vector<Rect> mers = FreeSpaceIndex::enumerate(free);
  std::vector<std::vector<Rect>> parts(shapes.size());
  for (std::size_t s = 0; s < shapes.size(); ++s)
    parts[s] = decompose_mask(shapes[s].mask());
  const geost::Placement* best = nullptr;
  long best_area = 0;
  for (const geost::Placement& p : table) {
    if (!feasible(p)) continue;
    const Rect probe =
        parts[static_cast<std::size_t>(p.shape)].front().translated(
            {p.x, p.y});
    long area = -1;
    for (const Rect& m : mers)
      if (m.contains(probe) && (area < 0 || m.area() < area)) area = m.area();
    RR_ASSERT(area > 0);  // feasible => the part is free => some MER holds it
    if (best == nullptr || area < best_area) {
      best = &p;
      best_area = area;
    }
  }
  if (best == nullptr) return std::nullopt;
  return *best;
}

std::optional<geost::Placement> OnlinePlacer::find_spot(
    const BitMatrix& occupancy, const FreeSpaceIndex* index,
    const std::vector<geost::ShapeFootprint>& shapes,
    const std::vector<geost::Placement>& table,
    const placer::ModuleTables* cached, const comm::PinContext* comm) const {
  return index != nullptr ? index_fit(*index, shapes, table, cached, comm)
                          : sweep_fit(occupancy, shapes, table, comm);
}

std::optional<placer::ModulePlacement> OnlinePlacer::place(
    int instance_id, const model::Module& module, double budget_seconds) {
  RR_REQUIRE(!live_.contains(instance_id),
             "instance id " + std::to_string(instance_id) + " already placed");
  // Anchor tables are computed per request — the online setting has no
  // design-time module list — unless an installed ModuleTableSource covers
  // the module, in which case the cached tables (prepared by the same code)
  // short-circuit the scan with bit-identical results.
  const placer::ModuleTables* cached =
      table_source_ != nullptr ? table_source_->lookup(module) : nullptr;
  std::vector<geost::ShapeFootprint> local_shapes;
  std::vector<geost::Placement> local_table;
  if (cached == nullptr) build_tables(module, local_shapes, local_table);
  const std::vector<geost::ShapeFootprint>& shapes =
      cached != nullptr ? *cached->shapes : local_shapes;
  const std::vector<geost::Placement>& table =
      cached != nullptr ? cached->table : local_table;

  const FreeSpaceIndex* index = options_.free_space_index ? &index_ : nullptr;
  comm::PinContext pin_context;
  const comm::PinContext* comm_ctx = nullptr;
  if (options_.policy == AnchorPolicy::kCommCost) {
    pin_context = build_pin_context(module.name(), instance_id);
    if (!pin_context.empty()) comm_ctx = &pin_context;
  }
  if (const auto p = find_spot(occupied_, index, shapes, table, cached,
                               comm_ctx)) {
    const geost::ShapeFootprint& shape =
        shapes[static_cast<std::size_t>(p->shape)];
    occupied_.or_shifted(shape.mask(), p->y, p->x);
    if (options_.free_space_index) index_.occupy(shape.mask(), p->y, p->x);
    occupied_tiles_ += shape.area();
    live_.emplace(instance_id,
                  LiveInstance{module, p->shape, p->x, p->y});
    ++epoch_;
    return placer::ModulePlacement{instance_id, p->shape, p->x, p->y};
  }

  // First-fit failed: defragment, unless disabled or gated off. A caller
  // budget clamps the configured pass deadline (remaining-budget deadline
  // propagation) but never enables defrag on its own.
  if (options_.defrag.deadline_seconds <= 0.0) return std::nullopt;
  const double deadline_seconds =
      budget_seconds > 0.0
          ? std::min(options_.defrag.deadline_seconds, budget_seconds)
          : options_.defrag.deadline_seconds;
  if (table.empty() || live_.empty()) return std::nullopt;
  if (options_.defrag.relocation_budget_tiles >= 0 &&
      static_cast<long>(defrag_stats_.relocated_tiles) >=
          options_.defrag.relocation_budget_tiles) {
    ++defrag_stats_.budget_skips;
    RR_METRIC_COUNT("online.defrag.budget_skips");
    return std::nullopt;
  }
  if (have_failed_defrag_ && epoch_ == failed_defrag_epoch_ &&
      module.min_area() >= failed_defrag_min_area_) {
    // Nothing changed since a pass failed for a no-larger request: retrying
    // would burn the deadline on a provably identical sub-problem.
    ++defrag_stats_.retry_skips;
    RR_METRIC_COUNT("online.defrag.retry_skips");
    return std::nullopt;
  }
  return defrag_place(instance_id, module, shapes, table, cached,
                      deadline_seconds);
}

std::optional<placer::ModulePlacement> OnlinePlacer::defrag_place(
    int instance_id, const model::Module& module,
    const std::vector<geost::ShapeFootprint>& shapes,
    const std::vector<geost::Placement>& table,
    const placer::ModuleTables* cached, double deadline_seconds) {
  ++defrag_stats_.attempts;
  RR_METRIC_COUNT("online.defrag.attempts");
  const Deadline deadline(deadline_seconds);

  // --- Blocking-cell heuristic: rank relocation sets by how cheap their
  // conflict is to clear. For each candidate anchor of the request
  // (bottom-left order), find the live instances its footprint overlaps;
  // the distinct blocker sets, ordered by (fewest blockers, fewest blocked
  // tiles), are the relocation sets the exact tier will try. A single
  // "best" set is not enough: when the free space is fragmented, the
  // cheapest set's modules often have nowhere else to go, while a slightly
  // larger set frees a workable hole.
  struct Candidate {
    std::vector<int> blockers;  // sorted instance ids
    std::size_t blocked_tiles = 0;
  };
  std::vector<Candidate> candidates;
  const std::vector<placer::ModulePlacement> live = live_placements();
  BitMatrix scratch(region_.height(), region_.width());
  const int scan_limit =
      std::min<int>(options_.defrag.max_anchor_scan,
                    static_cast<int>(table.size()));
  // Batch mode: one conflict bitmap per (live instance, request shape)
  // pair, built lazily — conflict(y, x) answers "would the request overlap
  // this instance at anchor (x, y)" for the whole scan at once, so the
  // per-anchor overlap popcount is paid only for actual blockers.
  std::vector<BitMatrix> inst_conflicts;
  std::vector<unsigned char> inst_built;
  BitMatrix inst_scratch;
  if (options_.batch_feasibility) {
    inst_conflicts.resize(live.size() * shapes.size());
    inst_built.assign(inst_conflicts.size(), 0);
    inst_scratch = BitMatrix(region_.height(), region_.width());
  }
  for (int t = 0; t < scan_limit; ++t) {
    if ((t & 31) == 0 && deadline.expired()) break;
    const geost::Placement& p = table[static_cast<std::size_t>(t)];
    const geost::ShapeFootprint& shape =
        shapes[static_cast<std::size_t>(p.shape)];
    Candidate candidate;
    bool have_scratch = false;
    for (std::size_t i = 0; i < live.size(); ++i) {
      const LiveInstance& li = live_.at(live[i].module);
      if (options_.batch_feasibility) {
        const std::size_t key =
            i * shapes.size() + static_cast<std::size_t>(p.shape);
        if (!inst_built[key]) {
          BitMatrix& conflict = inst_conflicts[key];
          conflict = BitMatrix(region_.height(), region_.width());
          inst_scratch.clear();
          inst_scratch.or_shifted(li.footprint().mask(), li.y, li.x);
          geost::accumulate_conflicts(conflict, inst_scratch, shape.mask(), 0,
                                      region_.height());
          inst_built[key] = 1;
        }
        if (!inst_conflicts[key].get(p.y, p.x)) continue;
      }
      if (!have_scratch) {
        scratch.clear();
        scratch.or_shifted(shape.mask(), p.y, p.x);
        have_scratch = true;
      }
      const std::size_t overlap = scratch.overlap_popcount_shifted(
          li.footprint().mask(), li.y, li.x);
      if (overlap == 0) continue;
      candidate.blockers.push_back(live[i].module);
      candidate.blocked_tiles += overlap;
      if (static_cast<int>(candidate.blockers.size()) >
          options_.defrag.max_relocations)
        break;
    }
    if (static_cast<int>(candidate.blockers.size()) >
        options_.defrag.max_relocations)
      continue;
    candidates.push_back(std::move(candidate));
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.blockers.size() != b.blockers.size())
                return a.blockers.size() < b.blockers.size();
              if (a.blocked_tiles != b.blocked_tiles)
                return a.blocked_tiles < b.blocked_tiles;
              return a.blockers < b.blockers;
            });
  candidates.erase(std::unique(candidates.begin(), candidates.end(),
                               [](const Candidate& a, const Candidate& b) {
                                 return a.blockers == b.blockers;
                               }),
                   candidates.end());
  if (candidates.empty()) {
    ++defrag_stats_.rejects;
    RR_METRIC_COUNT("online.defrag.rejects");
    note_defrag_failure(module);
    return std::nullopt;
  }

  // --- Tier 1: exact re-place of a relocation set plus the request via the
  // CP machinery (satisfaction search, bottom-left descent). Candidate sets
  // are tried cheapest-first until one admits the request, a completed
  // search has refuted every set, or the deadline expires.
  bool deadline_cut = false;
  for (const Candidate& candidate : candidates) {
    if (deadline.expired()) {
      deadline_cut = true;
      break;
    }
    // The sub-problem region: everything occupied except the relocation set.
    fpga::PartialRegion sub_region = region_;
    BitMatrix others = occupied_;
    for (const int id : candidate.blockers) {
      const LiveInstance& li = live_.at(id);
      others.clear_shifted(li.footprint().mask(), li.y, li.x);
    }
    sub_region.block_mask(others);

    std::vector<model::Module> sub_modules;
    sub_modules.reserve(candidate.blockers.size() + 1);
    for (const int id : candidate.blockers)
      sub_modules.push_back(live_.at(id).module);
    sub_modules.push_back(module);

    const auto sub_tables = placer::prepare_tables(
        sub_region, sub_modules, options_.use_alternatives);
    placer::BuildOptions build_options;
    build_options.use_alternatives = options_.use_alternatives;
    placer::BuiltModel model =
        placer::build_model_from_tables(sub_region, sub_tables, build_options);
    if (model.infeasible) continue;
    const auto brancher = placer::make_placement_brancher(
        model, placer::SearchStrategy::kAreaOrderBottomLeft,
        options_.defrag.seed);
    cp::Search::Options search_options;
    search_options.limits.deadline = deadline;
    cp::Search search(*model.space, *brancher, search_options);
    if (search.next()) {
      std::vector<Move> moves;
      for (std::size_t i = 0; i < candidate.blockers.size(); ++i) {
        const int value = model.space->min(model.placement_vars[i]);
        const geost::Placement& p =
            sub_tables[i].table[static_cast<std::size_t>(value)];
        moves.push_back(Move{candidate.blockers[i], p.shape, p.x, p.y});
      }
      const std::size_t last = candidate.blockers.size();
      const int value = model.space->min(model.placement_vars[last]);
      const geost::Placement& request =
          sub_tables[last].table[static_cast<std::size_t>(value)];
      ++defrag_stats_.exact_successes;
      RR_METRIC_COUNT("online.defrag.exact_successes");
      return commit_plan(instance_id, module, moves, request);
    }
    if (!search.stats().complete) {
      // The deadline (not exhaustion) stopped the search: degrade.
      deadline_cut = true;
      break;
    }
    // A completed search proved this relocation set infeasible; the greedy
    // shake explores a subset of the same space, so move on to the next set.
  }
  if (deadline_cut) {
    ++defrag_stats_.deadline_expiries;
    RR_METRIC_COUNT("online.defrag.deadline_expiries");
  }

  // --- Tier 2: greedy bottom-left shake. Lift the cheapest relocation set
  // out of the occupancy, then first-fit the request and the lifted modules
  // (by decreasing area) back in. One linear pass — the degraded mode when
  // the exact tier ran out of time (after a refutation of every candidate
  // set it would be pointless: the shake explores a subset of that space).
  if (deadline_cut) {
    const std::vector<int>& shake_set = candidates.front().blockers;
    // Relocation-target search on the shaken state: the index arm clones
    // the live index and releases the lifted footprints, so its free space
    // mirrors the shaken bitmap exactly.
    BitMatrix shaken = occupied_;
    FreeSpaceIndex shadow;
    if (options_.free_space_index) shadow = index_;
    for (const int id : shake_set) {
      const LiveInstance& li = live_.at(id);
      shaken.clear_shifted(li.footprint().mask(), li.y, li.x);
      if (options_.free_space_index)
        shadow.release(li.footprint().mask(), li.y, li.x);
    }
    const FreeSpaceIndex* shadow_ptr =
        options_.free_space_index ? &shadow : nullptr;
    // kCommCost ranking contexts fold pins from live_ as it stands during
    // the shake — lifted modules still contribute their old pins, which is
    // deterministic and identical for both arms (the oracle's requirement).
    comm::PinContext request_ctx;
    const comm::PinContext* request_comm = nullptr;
    if (options_.policy == AnchorPolicy::kCommCost) {
      request_ctx = build_pin_context(module.name(), instance_id);
      if (!request_ctx.empty()) request_comm = &request_ctx;
    }
    const auto request =
        find_spot(shaken, shadow_ptr, shapes, table, cached, request_comm);
    if (request.has_value()) {
      const geost::ShapeFootprint& shape =
          shapes[static_cast<std::size_t>(request->shape)];
      shaken.or_shifted(shape.mask(), request->y, request->x);
      if (shadow_ptr != nullptr)
        shadow.occupy(shape.mask(), request->y, request->x);
      std::vector<int> order = shake_set;
      std::sort(order.begin(), order.end(), [&](int a, int b) {
        const int area_a = live_.at(a).footprint().area();
        const int area_b = live_.at(b).footprint().area();
        return area_a != area_b ? area_a > area_b : a < b;
      });
      std::vector<Move> moves;
      bool all_placed = true;
      for (const int id : order) {
        const LiveInstance& li = live_.at(id);
        const placer::ModuleTables* li_cached =
            table_source_ != nullptr ? table_source_->lookup(li.module)
                                     : nullptr;
        std::vector<geost::ShapeFootprint> li_local_shapes;
        std::vector<geost::Placement> li_local_table;
        if (li_cached == nullptr)
          build_tables(li.module, li_local_shapes, li_local_table);
        const std::vector<geost::ShapeFootprint>& li_shapes =
            li_cached != nullptr ? *li_cached->shapes : li_local_shapes;
        const std::vector<geost::Placement>& li_table =
            li_cached != nullptr ? li_cached->table : li_local_table;
        comm::PinContext li_ctx;
        const comm::PinContext* li_comm = nullptr;
        if (options_.policy == AnchorPolicy::kCommCost) {
          li_ctx = build_pin_context(li.module.name(), id);
          if (!li_ctx.empty()) li_comm = &li_ctx;
        }
        const auto spot = find_spot(shaken, shadow_ptr, li_shapes, li_table,
                                    li_cached, li_comm);
        if (!spot.has_value()) {
          all_placed = false;
          break;
        }
        const BitMatrix& spot_mask =
            li_shapes[static_cast<std::size_t>(spot->shape)].mask();
        shaken.or_shifted(spot_mask, spot->y, spot->x);
        if (shadow_ptr != nullptr) shadow.occupy(spot_mask, spot->y, spot->x);
        moves.push_back(Move{id, spot->shape, spot->x, spot->y});
      }
      if (all_placed) {
        ++defrag_stats_.greedy_successes;
        RR_METRIC_COUNT("online.defrag.greedy_successes");
        return commit_plan(instance_id, module, moves, *request);
      }
    }
  }

  ++defrag_stats_.rejects;
  RR_METRIC_COUNT("online.defrag.rejects");
  note_defrag_failure(module);
  return std::nullopt;
}

placer::ModulePlacement OnlinePlacer::commit_plan(
    int instance_id, const model::Module& module,
    const std::vector<Move>& moves, const geost::Placement& request) {
  // Two passes: a moved instance's new footprint may cover another moved
  // instance's old position, so every old footprint must be lifted out of
  // the occupancy before any new one is written.
  std::vector<const Move*> applied;
  applied.reserve(moves.size());
  for (const Move& move : moves) {
    LiveInstance& li = live_.at(move.instance_id);
    if (li.shape == move.shape && li.x == move.x && li.y == move.y)
      continue;  // kept in place: no reconfiguration
    occupied_.clear_shifted(li.footprint().mask(), li.y, li.x);
    if (options_.free_space_index)
      index_.release(li.footprint().mask(), li.y, li.x);
    applied.push_back(&move);
  }
  for (const Move* move : applied) {
    LiveInstance& li = live_.at(move->instance_id);
    const long old_area = li.footprint().area();
    li.shape = move->shape;
    li.x = move->x;
    li.y = move->y;
    const geost::ShapeFootprint& new_shape = li.footprint();
    const long new_area = new_shape.area();
    RR_ASSERT(!occupied_.intersects_shifted(new_shape.mask(), li.y, li.x));
    occupied_.or_shifted(new_shape.mask(), li.y, li.x);
    if (options_.free_space_index)
      index_.occupy(new_shape.mask(), li.y, li.x);
    occupied_tiles_ += new_area - old_area;
    ++defrag_stats_.relocated_modules;
    defrag_stats_.relocated_tiles +=
        static_cast<std::uint64_t>(old_area + new_area);
    relocation_cost_.tiles_cleared += old_area;
    relocation_cost_.tiles_written += new_area;
    ++relocation_cost_.modules_loaded;
    RR_METRIC_COUNT("online.defrag.relocated_modules");
    RR_METRIC_ADD("online.defrag.relocated_tiles",
                  static_cast<std::uint64_t>(old_area + new_area));
  }

  const geost::ShapeFootprint& shape =
      (options_.use_alternatives
           ? module.shapes()[static_cast<std::size_t>(request.shape)]
           : module.shapes().front());
  RR_ASSERT(!occupied_.intersects_shifted(shape.mask(), request.y, request.x));
  occupied_.or_shifted(shape.mask(), request.y, request.x);
  if (options_.free_space_index)
    index_.occupy(shape.mask(), request.y, request.x);
  occupied_tiles_ += shape.area();
  live_.emplace(instance_id,
                LiveInstance{module, request.shape, request.x, request.y});
  ++epoch_;
  ++defrag_stats_.successes;
  RR_METRIC_COUNT("online.defrag.successes");
  return placer::ModulePlacement{instance_id, request.shape, request.x,
                                 request.y};
}

void OnlinePlacer::note_defrag_failure(const model::Module& module) {
  have_failed_defrag_ = true;
  failed_defrag_epoch_ = epoch_;
  failed_defrag_min_area_ = module.min_area();
}

void OnlinePlacer::remove(int instance_id) {
  const auto it = live_.find(instance_id);
  RR_REQUIRE(it != live_.end(),
             "instance id " + std::to_string(instance_id) + " is not placed");
  const LiveInstance& instance = it->second;
  occupied_.clear_shifted(instance.footprint().mask(), instance.y, instance.x);
  if (options_.free_space_index)
    index_.release(instance.footprint().mask(), instance.y, instance.x);
  occupied_tiles_ -= instance.footprint().area();
  live_.erase(it);
  ++epoch_;
}

}  // namespace rr::baseline
