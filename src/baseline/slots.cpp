#include "baseline/slots.hpp"

#include <algorithm>
#include <numeric>

#include "geost/object.hpp"
#include "util/stopwatch.hpp"

namespace rr::baseline {

placer::PlacementOutcome place_slots(const fpga::PartialRegion& region,
                                     std::span<const model::Module> modules,
                                     const SlotOptions& options) {
  RR_REQUIRE(options.slot_width > 0, "slot width must be positive");
  Stopwatch watch;
  placer::PlacementOutcome outcome;

  const int slot_count = region.width() / options.slot_width;
  std::vector<bool> slot_used(static_cast<std::size_t>(slot_count), false);

  // Decreasing-area order, as for the other first-fit baselines.
  std::vector<std::size_t> order(modules.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return modules[a].min_area() > modules[b].min_area();
  });

  placer::PlacementSolution solution;
  solution.feasible = true;
  solution.placements.assign(modules.size(), placer::ModulePlacement{});
  int last_slot_used = -1;

  for (const std::size_t i : order) {
    const model::Module& module = modules[i];
    std::vector<geost::ShapeFootprint> shapes;
    if (options.use_alternatives) shapes = module.shapes();
    else shapes.push_back(module.shapes().front());

    bool placed = false;
    for (int slot = 0; slot < slot_count && !placed; ++slot) {
      for (std::size_t s = 0; s < shapes.size() && !placed; ++s) {
        const geost::ShapeFootprint& shape = shapes[s];
        const int slots_needed =
            (shape.bounding_box().width + options.slot_width - 1) /
            options.slot_width;
        if (slot + slots_needed > slot_count) continue;
        bool free_run = true;
        for (int k = 0; k < slots_needed; ++k)
          free_run = free_run && !slot_used[static_cast<std::size_t>(slot + k)];
        if (!free_run) continue;
        // Resource-compatible anchor at the slot's left edge, any row.
        const int x = slot * options.slot_width;
        int anchor_y = -1;
        for (int y = 0;
             y + shape.bounding_box().height <= region.height() && anchor_y < 0;
             ++y) {
          bool ok = true;
          for (std::size_t g = 0; g < shape.typed().size() && ok; ++g) {
            ok = region.masks()[static_cast<std::size_t>(
                                    shape.typed()[g].resource)]
                     .covers_shifted(shape.typed_masks()[g], y, x);
          }
          if (ok) anchor_y = y;
        }
        if (anchor_y < 0) continue;
        for (int k = 0; k < slots_needed; ++k)
          slot_used[static_cast<std::size_t>(slot + k)] = true;
        solution.placements[i] = placer::ModulePlacement{
            static_cast<int>(i), static_cast<int>(s), x, anchor_y};
        last_slot_used = std::max(last_slot_used, slot + slots_needed - 1);
        placed = true;
      }
    }
    if (!placed) {
      solution.feasible = false;
      break;
    }
  }

  if (solution.feasible) {
    // Slot-granular extent: whole slots are reserved even where the module
    // is narrower (that is the internal fragmentation of slot systems).
    solution.extent = (last_slot_used + 1) * options.slot_width;
    outcome.solution = std::move(solution);
  }
  outcome.seconds = watch.seconds();
  return outcome;
}

}  // namespace rr::baseline
