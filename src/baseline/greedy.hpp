// Greedy bottom-left baseline placer.
//
// The related-work positioning (§II) compares constraint-based optimal
// placement against classical first-fit style heuristics; this module
// provides that comparator. It shares the anchor computation and the
// bottom-left placement ordering with the CP placer, so differences in
// outcome are attributable to search, not modeling.
#pragma once

#include <span>

#include "fpga/region.hpp"
#include "model/module.hpp"
#include "placer/placement.hpp"

namespace rr::baseline {

enum class GreedyOrder {
  kDecreasingArea,  // first-fit decreasing (the strong default)
  kInputOrder,      // modules in list order (online-arrival flavour)
};

struct GreedyOptions {
  bool use_alternatives = true;
  GreedyOrder order = GreedyOrder::kDecreasingArea;
};

/// Place each module at its first (bottom-left-most) conflict-free
/// placement. Never backtracks: a module with no conflict-free placement
/// makes the outcome infeasible.
[[nodiscard]] placer::PlacementOutcome place_greedy(
    const fpga::PartialRegion& region,
    std::span<const model::Module> modules, const GreedyOptions& options = {});

}  // namespace rr::baseline
