// Greedy bottom-left baseline placer.
//
// The related-work positioning (§II) compares constraint-based optimal
// placement against classical first-fit style heuristics; this module
// provides that comparator. It shares the anchor computation and the
// bottom-left placement ordering with the CP placer, so differences in
// outcome are attributable to search, not modeling.
#pragma once

#include <span>

#include "comm/net.hpp"
#include "fpga/region.hpp"
#include "model/module.hpp"
#include "placer/placement.hpp"

namespace rr::baseline {

enum class GreedyOrder {
  kDecreasingArea,  // first-fit decreasing (the strong default)
  kInputOrder,      // modules in list order (online-arrival flavour)
};

struct GreedyOptions {
  bool use_alternatives = true;
  GreedyOrder order = GreedyOrder::kDecreasingArea;
  /// Optional inter-module nets: with comm_weight > 0 each module goes to
  /// the feasible placement of minimal communication cost against the
  /// modules placed so far (ties broken by table order, i.e. the first-fit
  /// key). Null nets or comm_weight <= 0 leaves the area-only first-fit
  /// path byte-identical (the zero-weight oracle).
  const comm::NetList* nets = nullptr;
  long comm_weight = 0;
};

/// Place each module at its first (bottom-left-most) conflict-free
/// placement. Never backtracks: a module with no conflict-free placement
/// makes the outcome infeasible.
[[nodiscard]] placer::PlacementOutcome place_greedy(
    const fpga::PartialRegion& region,
    std::span<const model::Module> modules, const GreedyOptions& options = {});

}  // namespace rr::baseline
