// 1-D slot-style placement (§II classification axis 5).
//
// Early reconfigurable systems divided the device into fixed-width,
// full-height slots; a module occupies one or more adjacent slots
// exclusively, and no two modules share a slot (no vertical stacking).
// This is the classical comparison point for 2-D grid placement: internal
// fragmentation is the slot area a module does not fill. The slot placer
// reuses the anchor machinery (resource matching still applies inside a
// slot) but restricts anchors to slot boundaries and allocates whole slots.
#pragma once

#include <span>

#include "fpga/region.hpp"
#include "model/module.hpp"
#include "placer/placement.hpp"

namespace rr::baseline {

struct SlotOptions {
  /// Width of one slot, in tiles.
  int slot_width = 12;
  bool use_alternatives = true;
};

/// First-fit decreasing over slots: each module takes the leftmost run of
/// free slots in which one of its layouts has a resource-compatible anchor
/// at the slot's left edge. The reported extent is the right edge of the
/// last *slot* used (slot-granular, as slot-style systems are).
[[nodiscard]] placer::PlacementOutcome place_slots(
    const fpga::PartialRegion& region,
    std::span<const model::Module> modules, const SlotOptions& options = {});

}  // namespace rr::baseline
