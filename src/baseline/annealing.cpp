#include "baseline/annealing.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

#include "baseline/greedy.hpp"
#include "geost/object.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace rr::baseline {
namespace {

/// Per-tile occupancy counter so overlap cells can be updated in O(shape).
class CountGrid {
 public:
  CountGrid(int height, int width)
      : width_(width), counts_(static_cast<std::size_t>(height) *
                               static_cast<std::size_t>(width)) {}

  /// Add (+1) or remove (-1) a footprint; returns the change in the number
  /// of overlapped tiles (tiles with count >= 2).
  int apply(const geost::ShapeFootprint& shape, int x, int y, int delta) {
    int overlap_delta = 0;
    for (const Point& cell : shape.all_cells().cells()) {
      auto& count = counts_[static_cast<std::size_t>(cell.y + y) *
                                static_cast<std::size_t>(width_) +
                            static_cast<std::size_t>(cell.x + x)];
      if (delta > 0) {
        if (count >= 1) ++overlap_delta;
        ++count;
      } else {
        --count;
        if (count >= 1) --overlap_delta;
      }
    }
    return overlap_delta;
  }

 private:
  int width_;
  std::vector<std::int16_t> counts_;
};

}  // namespace

placer::PlacementOutcome place_annealing(
    const fpga::PartialRegion& region,
    std::span<const model::Module> modules, const AnnealingOptions& options) {
  Stopwatch watch;
  placer::PlacementOutcome outcome;
  Rng rng(options.seed);

  struct Candidate {
    std::vector<geost::ShapeFootprint> shapes;
    std::vector<geost::Placement> table;
  };
  std::vector<Candidate> candidates(modules.size());
  for (std::size_t i = 0; i < modules.size(); ++i) {
    Candidate& c = candidates[i];
    if (options.use_alternatives) c.shapes = modules[i].shapes();
    else c.shapes.push_back(modules[i].shapes().front());
    std::vector<std::vector<Point>> anchors;
    anchors.reserve(c.shapes.size());
    for (const geost::ShapeFootprint& shape : c.shapes)
      anchors.push_back(geost::compute_valid_anchors(region.masks(), shape));
    c.table = geost::sorted_placement_table(c.shapes, anchors);
    if (c.table.empty()) {
      outcome.seconds = watch.seconds();
      return outcome;  // unplaceable module: infeasible
    }
  }

  const auto shape_of = [&](std::size_t i, int value) -> const geost::ShapeFootprint& {
    const geost::Placement& p = candidates[i].table[static_cast<std::size_t>(value)];
    return candidates[i].shapes[static_cast<std::size_t>(p.shape)];
  };
  const auto extent_of = [&](std::size_t i, int value) {
    const geost::Placement& p = candidates[i].table[static_cast<std::size_t>(value)];
    return p.x + shape_of(i, value).bounding_box().width;
  };

  // Initial state: greedy when it succeeds (fast descent start), otherwise
  // every module at its bottom-left-most placement (overlaps likely).
  std::vector<int> state(modules.size(), 0);
  {
    GreedyOptions greedy_options;
    greedy_options.use_alternatives = options.use_alternatives;
    const placer::PlacementOutcome greedy =
        place_greedy(region, modules, greedy_options);
    if (greedy.solution.feasible) {
      for (std::size_t i = 0; i < modules.size(); ++i) {
        const placer::ModulePlacement& mp = greedy.solution.placements[i];
        const auto& table = candidates[i].table;
        for (std::size_t v = 0; v < table.size(); ++v) {
          if (table[v].shape == mp.shape && table[v].x == mp.x &&
              table[v].y == mp.y) {
            state[i] = static_cast<int>(v);
            break;
          }
        }
      }
    }
  }

  // Communication term: bound nets plus the per-module doubled centers the
  // walk keeps in sync with `state`. Fully gated — with comm off the cost
  // function, the accepted-move sequence, and every RNG draw are
  // byte-identical to the area-only walk (the zero-weight oracle).
  comm::BoundNets bound_nets;
  if (options.nets != nullptr && options.comm_weight > 0)
    bound_nets = comm::BoundNets(*options.nets, modules);
  const bool comm_on = !bound_nets.empty();
  const auto center_of = [&](std::size_t i, int value) {
    const geost::Placement& p =
        candidates[i].table[static_cast<std::size_t>(value)];
    return comm::center2(shape_of(i, value).bounding_box(), p.x, p.y);
  };
  std::vector<comm::Center2> centers(comm_on ? modules.size() : 0);

  CountGrid grid(region.height(), region.width());
  int overlap_tiles = 0;
  std::vector<int> extents(modules.size());
  for (std::size_t i = 0; i < modules.size(); ++i) {
    const geost::Placement& p = candidates[i].table[static_cast<std::size_t>(state[i])];
    overlap_tiles += grid.apply(shape_of(i, state[i]), p.x, p.y, +1);
    extents[i] = extent_of(i, state[i]);
    if (comm_on) centers[i] = center_of(i, state[i]);
  }
  auto cost = [&]() {
    const int extent = *std::max_element(extents.begin(), extents.end());
    double c = static_cast<double>(extent) +
               options.overlap_weight * overlap_tiles;
    if (comm_on) {
      c += static_cast<double>(options.comm_weight) *
           static_cast<double>(bound_nets.wirelength2(centers)) /
           static_cast<double>(comm::kExtentScale);
    }
    return c;
  };

  double current = cost();
  double best_cost = std::numeric_limits<double>::infinity();
  std::vector<int> best_state;
  auto consider_best = [&]() {
    if (overlap_tiles == 0 && current < best_cost) {
      best_cost = current;
      best_state = state;
    }
  };
  consider_best();

  const Deadline deadline(options.time_limit_seconds);
  double temperature = options.initial_temperature;
  const int moves_per_round = options.moves_per_round_per_module *
                              static_cast<int>(modules.size());
  while (!deadline.expired() && temperature > 1e-3) {
    for (int move = 0; move < moves_per_round; ++move) {
      const std::size_t i = rng.pick_index(candidates);
      const auto& table = candidates[i].table;
      // Bias toward low (bottom-left) table entries: squaring the uniform
      // draw concentrates mass near 0 while keeping full support.
      const double u = rng.uniform01();
      const int value = static_cast<int>(u * u * static_cast<double>(table.size()));
      if (value == state[i]) continue;

      const geost::Placement& old_p = table[static_cast<std::size_t>(state[i])];
      const geost::Placement& new_p = table[static_cast<std::size_t>(value)];
      const int old_value = state[i];
      const int old_extent = extents[i];
      int delta_overlap = grid.apply(shape_of(i, old_value), old_p.x, old_p.y, -1);
      delta_overlap += grid.apply(shape_of(i, value), new_p.x, new_p.y, +1);
      overlap_tiles += delta_overlap;
      state[i] = value;
      extents[i] = extent_of(i, value);
      if (comm_on) centers[i] = center_of(i, value);
      const double next = cost();
      const double delta = next - current;
      if (delta <= 0 || rng.uniform01() < std::exp(-delta / temperature)) {
        current = next;
        consider_best();
      } else {
        // Undo: the reverse applies return exactly -delta_overlap in total.
        overlap_tiles += grid.apply(shape_of(i, value), new_p.x, new_p.y, -1);
        overlap_tiles += grid.apply(shape_of(i, old_value), old_p.x, old_p.y, +1);
        state[i] = old_value;
        extents[i] = old_extent;
        if (comm_on) centers[i] = center_of(i, old_value);
      }
    }
    temperature *= options.cooling;
  }

  if (!best_state.empty()) {
    placer::PlacementSolution solution;
    solution.feasible = true;
    for (std::size_t i = 0; i < modules.size(); ++i) {
      const geost::Placement& p =
          candidates[i].table[static_cast<std::size_t>(best_state[i])];
      solution.placements.push_back(placer::ModulePlacement{
          static_cast<int>(i), p.shape, p.x, p.y});
      solution.extent = std::max(solution.extent, extent_of(i, best_state[i]));
    }
    outcome.solution = std::move(solution);
  }
  outcome.seconds = watch.seconds();
  return outcome;
}

}  // namespace rr::baseline
