#include <algorithm>
#include <memory>
#include <vector>

#include "cp/constraints.hpp"

namespace rr::cp {
namespace {

/// result == table[index], domain consistent in both directions.
///
/// The placer uses this to tie a placement-index variable to the x-extent
/// each placement would occupy, so pruning the extent (by the B&B cut)
/// immediately prunes placements and vice versa.
class Element final : public Propagator {
 public:
  Element(std::vector<int> table, VarId index, VarId result)
      : Propagator(PropPriority::kLinear, PropKind::kElement),
        table_(std::move(table)),
        index_(index),
        result_(result) {}

  void attach(Space& space, int self) override {
    space.subscribe(index_, self, kOnDomain);
    space.subscribe(result_, self, kOnDomain);
    // Restrict the index to the table range once.
    space.set_min(index_, 0);
    space.set_max(index_, static_cast<int>(table_.size()) - 1);
  }

  PropStatus propagate(Space& space) override {
    if (space.failed()) return PropStatus::kFail;
    // Supported results and unsupported indices in one pass over dom(index).
    std::vector<int> supported;
    std::vector<int> dead_indices;
    const Domain& rdom = space.dom(result_);
    space.dom(index_).for_each([&](int i) {
      const int entry = table_[static_cast<std::size_t>(i)];
      if (rdom.contains(entry)) supported.push_back(entry);
      else dead_indices.push_back(i);
    });
    if (supported.empty()) return PropStatus::kFail;
    if (!dead_indices.empty()) {
      if (space.remove_values_sorted(index_, dead_indices) == ModEvent::kFail)
        return PropStatus::kFail;
    }
    if (space.intersect(result_, Domain::from_values(std::move(supported))) ==
        ModEvent::kFail)
      return PropStatus::kFail;
    if (space.assigned(index_)) {
      if (space.assign(result_,
                       table_[static_cast<std::size_t>(space.value(index_))]) ==
          ModEvent::kFail)
        return PropStatus::kFail;
      return PropStatus::kSubsumed;
    }
    return PropStatus::kFix;
  }

 private:
  std::vector<int> table_;
  VarId index_;
  VarId result_;
};

}  // namespace

void post_element(Space& space, std::span<const int> table, VarId index,
                  VarId result) {
  RR_REQUIRE(!table.empty(), "element: table must be non-empty");
  space.post(std::make_unique<Element>(
      std::vector<int>(table.begin(), table.end()), index, result));
}

}  // namespace rr::cp
