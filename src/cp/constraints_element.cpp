#include <algorithm>
#include <memory>
#include <vector>

#include "cp/constraints.hpp"
#include "cp/sparse_bitset.hpp"

namespace rr::cp {
namespace {

/// result == table[index], domain consistent in both directions.
///
/// The placer uses this to tie a placement-index variable to the x-extent
/// each placement would occupy, so pruning the extent (by the B&B cut)
/// immediately prunes placements and vice versa.
///
/// Scanning implementation: one for_each pass over dom(index) per run.
/// Kept behind ElementOptions{.compact = false} as the differential-testing
/// oracle for CompactElement.
class ScanningElement final : public Propagator {
 public:
  ScanningElement(std::vector<int> table, VarId index, VarId result)
      : Propagator(PropPriority::kLinear, PropKind::kElement),
        table_(std::move(table)),
        index_(index),
        result_(result) {}

  void attach(Space& space, int self) override {
    space.subscribe(index_, self, kOnDomain);
    space.subscribe(result_, self, kOnDomain);
    // Restrict the index to the table range once.
    space.set_min(index_, 0);
    space.set_max(index_, static_cast<int>(table_.size()) - 1);
  }

  PropStatus propagate(Space& space) override {
    if (space.failed()) return PropStatus::kFail;
    // Supported results and unsupported indices in one pass over dom(index).
    std::vector<int> supported;
    std::vector<int> dead_indices;
    const Domain& rdom = space.dom(result_);
    space.dom(index_).for_each([&](int i) {
      const int entry = table_[static_cast<std::size_t>(i)];
      if (rdom.contains(entry)) supported.push_back(entry);
      else dead_indices.push_back(i);
    });
    if (supported.empty()) return PropStatus::kFail;
    if (!dead_indices.empty()) {
      if (space.remove_values_sorted(index_, dead_indices) == ModEvent::kFail)
        return PropStatus::kFail;
    }
    if (space.intersect(result_, Domain::from_values(std::move(supported))) ==
        ModEvent::kFail)
      return PropStatus::kFail;
    if (space.assigned(index_)) {
      if (space.assign(result_,
                       table_[static_cast<std::size_t>(space.value(index_))]) ==
          ModEvent::kFail)
        return PropStatus::kFail;
      return PropStatus::kSubsumed;
    }
    return PropStatus::kFix;
  }

 private:
  std::vector<int> table_;
  VarId index_;
  VarId result_;
};

void or_into(std::span<std::uint64_t> acc,
             std::span<const std::uint64_t> src) noexcept {
  for (std::size_t w = 0; w < acc.size(); ++w) acc[w] |= src[w];
}

/// Compact-table element: a binary table whose tuples are (i, table[i]).
/// The live set is a reversible sparse bitset over table indices; per
/// result-value support masks (value -> indices mapping to it) are built at
/// construction. Index-side deltas are one word-parallel AND of the index
/// domain into the live set; result-side deltas (e.g. B&B objective cuts on
/// the extent variable) turn into AND-NOT with the union of the removed
/// values' support masks — no per-value contains() probes. Index pruning
/// hands the live words straight to Space::keep_masked; result pruning
/// probes each value's last witness word first (residue). Steady-state runs
/// allocate nothing and touch no domains (cp_alloc_test pins this).
class CompactElement final : public Propagator {
 public:
  CompactElement(std::vector<int> table, VarId index, VarId result)
      : Propagator(PropPriority::kLinear, PropKind::kElement),
        table_(std::move(table)),
        index_(index),
        result_(result),
        index_words_(static_cast<std::size_t>(ReversibleSparseBitSet::words_for(
            static_cast<long>(table_.size())))) {
    int lo = table_[0];
    int hi = lo;
    for (int v : table_) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    rbase_ = lo;
    rnvals_ = hi - lo + 1;
    rwords_ = static_cast<std::size_t>(
        ReversibleSparseBitSet::words_for(rnvals_));
    support_words_.assign(static_cast<std::size_t>(rnvals_) * index_words_, 0);
    residues_.assign(static_cast<std::size_t>(rnvals_), -1);
    for (std::size_t i = 0; i < table_.size(); ++i)
      support(table_[i])[i >> 6] |= std::uint64_t{1} << (i & 63u);
    index_scratch_.resize(index_words_);
    result_scratch_.resize(rwords_);
    removed_scratch_.resize(rwords_);
    keep_scratch_.resize(rwords_);
  }

  [[nodiscard]] bool advised() const noexcept override { return true; }

  void attach(Space& space, int self) override {
    space.subscribe(index_, self, kOnDomain, 0);
    space.subscribe(result_, self, kOnDomain, 1);
    // Restrict the index to the table range once.
    space.set_min(index_, 0);
    space.set_max(index_, static_cast<int>(table_.size()) - 1);
    // Initialize from the current (root) domains: known result values, and
    // the live indices — in domain AND mapping to an in-domain entry.
    space.dom(result_).fill_words(rbase_, result_scratch_);
    known_result_.init_from_mask(result_scratch_, rnvals_);
    space.dom(index_).fill_words(0, index_scratch_);
    for (std::size_t i = 0; i < table_.size(); ++i) {
      if (!known_result_.test(table_[i] - rbase_))
        index_scratch_[i >> 6] &= ~(std::uint64_t{1} << (i & 63u));
    }
    live_.init_from_mask(index_scratch_, static_cast<long>(table_.size()));
    index_dirty_ = false;
    result_dirty_ = false;
  }

  void modified(Space& /*space*/, VarId /*var*/, int data) override {
    if (data == 0) index_dirty_ = true;
    else result_dirty_ = true;
  }

  void level_pushed(Space& /*space*/) override {
    live_.push_level();
    known_result_.push_level();
  }

  void level_popped(Space& /*space*/) override {
    live_.pop_level();
    known_result_.pop_level();
  }

  PropStatus propagate(Space& space) override {
    if (space.failed()) return PropStatus::kFail;
    // Phase 1: fold domain deltas into the live index set.
    if (index_dirty_) {
      index_dirty_ = false;
      space.dom(index_).fill_words(0, index_scratch_);
      live_.and_mask(index_scratch_);
      if (live_.empty()) return PropStatus::kFail;
    }
    if (result_dirty_) {
      result_dirty_ = false;
      space.dom(result_).fill_words(rbase_, result_scratch_);
      const auto known = known_result_.words();
      long removed_cnt = 0;
      long stay_cnt = 0;
      for (std::size_t w = 0; w < rwords_; ++w) {
        removed_scratch_[w] = known[w] & ~result_scratch_[w];
        removed_cnt += std::popcount(removed_scratch_[w]);
        stay_cnt += std::popcount(known[w] & result_scratch_[w]);
      }
      if (removed_cnt != 0) {
        // Result-value supports partition the indices, so masking with the
        // cheaper side's union is exact.
        std::fill(index_scratch_.begin(), index_scratch_.end(), 0);
        if (removed_cnt <= stay_cnt) {
          for_each_value(removed_scratch_,
                         [&](int v) { or_into(index_scratch_, support(v)); });
          live_.and_not_mask(index_scratch_);
        } else {
          for (std::size_t w = 0; w < rwords_; ++w)
            removed_scratch_[w] = known[w] & result_scratch_[w];
          for_each_value(removed_scratch_,
                         [&](int v) { or_into(index_scratch_, support(v)); });
          live_.and_mask(index_scratch_);
        }
        known_result_.and_mask(result_scratch_);
        if (live_.empty()) return PropStatus::kFail;
      }
    }
    // Phase 2: pruning, skipped when the live set is unchanged since the
    // last full check (then no value can have lost its support).
    if (force_full_ || live_.version() != checked_version_) {
      force_full_ = false;
      // The live words are exactly the indices to keep. live is a subset
      // of dom(index) (phase 1 intersects it with every index delta), so
      // equal cardinality means equal sets — skip the mutator call and its
      // trail snapshot when there is nothing to prune.
      if (live_.count() <
              static_cast<long long>(space.dom(index_).size()) &&
          space.keep_masked(index_, 0, live_.words()) == ModEvent::kFail)
        return PropStatus::kFail;
      space.dom(result_).fill_words(rbase_, result_scratch_);
      const auto known = known_result_.words();
      std::fill(keep_scratch_.begin(), keep_scratch_.end(), 0);
      bool all_supported = true;
      for (std::size_t w = 0; w < rwords_; ++w) {
        std::uint64_t word = known[w] & result_scratch_[w];
        while (word != 0) {
          const int b = std::countr_zero(word);
          word &= word - 1;
          const std::size_t off = w * 64 + static_cast<std::size_t>(b);
          if (live_.intersects(support(rbase_ + static_cast<int>(off)),
                               residues_[off])) {
            keep_scratch_[w] |= std::uint64_t{1} << static_cast<unsigned>(b);
          } else {
            all_supported = false;
          }
        }
      }
      const Domain& rdom = space.dom(result_);
      const bool outside_window =
          rdom.min() < rbase_ || rdom.max() >= rbase_ + rnvals_;
      if (!all_supported || outside_window) {
        if (space.keep_masked(result_, rbase_, keep_scratch_) ==
            ModEvent::kFail)
          return PropStatus::kFail;
      }
      checked_version_ = live_.version();
    }
    if (space.assigned(index_)) {
      if (space.assign(result_,
                       table_[static_cast<std::size_t>(space.value(index_))]) ==
          ModEvent::kFail)
        return PropStatus::kFail;
      return PropStatus::kSubsumed;
    }
    return PropStatus::kFix;
  }

 private:
  [[nodiscard]] std::span<std::uint64_t> support(int v) noexcept {
    return {support_words_.data() +
                static_cast<std::size_t>(v - rbase_) * index_words_,
            index_words_};
  }

  template <typename F>
  void for_each_value(std::span<const std::uint64_t> mask, F&& fn) {
    for (std::size_t w = 0; w < mask.size(); ++w) {
      std::uint64_t word = mask[w];
      while (word != 0) {
        const int b = std::countr_zero(word);
        word &= word - 1;
        fn(rbase_ + static_cast<int>(w * 64) + b);
      }
    }
  }

  std::vector<int> table_;
  VarId index_;
  VarId result_;
  std::size_t index_words_;
  int rbase_ = 0;    // smallest table entry
  int rnvals_ = 0;   // result value-window span
  std::size_t rwords_ = 0;
  std::vector<std::uint64_t> support_words_;  // per result value
  std::vector<int> residues_;                 // last witness word per value
  ReversibleSparseBitSet live_;          // indices still feasible
  ReversibleSparseBitSet known_result_;  // values not yet folded out

  // Scratch buffers sized once in the constructor — propagate() allocates
  // nothing.
  std::vector<std::uint64_t> index_scratch_;
  std::vector<std::uint64_t> result_scratch_;
  std::vector<std::uint64_t> removed_scratch_;
  std::vector<std::uint64_t> keep_scratch_;

  bool index_dirty_ = false;
  bool result_dirty_ = false;
  bool force_full_ = true;
  std::uint64_t checked_version_ = 0;
};

/// Memory guard: fall back to scanning for degenerate value ranges.
constexpr long kMaxResultSpan = 1 << 20;
constexpr std::size_t kMaxSupportWords = std::size_t{1} << 22;  // 32 MiB

bool compact_feasible(std::span<const int> table) {
  const auto [lo, hi] = std::minmax_element(table.begin(), table.end());
  const long span = static_cast<long>(*hi) - *lo + 1;
  if (span > kMaxResultSpan) return false;
  const std::size_t index_words = static_cast<std::size_t>(
      ReversibleSparseBitSet::words_for(static_cast<long>(table.size())));
  return static_cast<std::size_t>(span) * index_words <= kMaxSupportWords;
}

}  // namespace

int post_element(Space& space, std::span<const int> table, VarId index,
                 VarId result, ElementOptions options) {
  RR_REQUIRE(!table.empty(), "element: table must be non-empty");
  std::vector<int> table_vec(table.begin(), table.end());
  if (options.compact && compact_feasible(table)) {
    return space.post(
        std::make_unique<CompactElement>(std::move(table_vec), index, result));
  }
  return space.post(
      std::make_unique<ScanningElement>(std::move(table_vec), index, result));
}

}  // namespace rr::cp
