#include <memory>

#include "cp/constraints.hpp"

namespace rr::cp {
namespace {

/// x `op` y + offset with bounds reasoning; kEq additionally channels
/// removed interior values (domain consistency for the equality case).
class BinaryRel final : public Propagator {
 public:
  BinaryRel(VarId x, RelOp op, VarId y, int offset)
      : Propagator(PropPriority::kUnary, PropKind::kRel),
        x_(x), op_(op), y_(y), offset_(offset) {}

  void attach(Space& space, int self) override {
    const unsigned mask = op_ == RelOp::kEq ? kOnDomain : kOnBounds;
    space.subscribe(x_, self, mask);
    space.subscribe(y_, self, op_ == RelOp::kNeq ? kOnAssign : mask);
  }

  PropStatus propagate(Space& space) override {
    switch (op_) {
      case RelOp::kLeq:
      case RelOp::kLt: {
        const int strict = op_ == RelOp::kLt ? 1 : 0;
        // x <= y + offset - strict
        if (space.set_max(x_, space.max(y_) + offset_ - strict) ==
            ModEvent::kFail)
          return PropStatus::kFail;
        if (space.set_min(y_, space.min(x_) - offset_ + strict) ==
            ModEvent::kFail)
          return PropStatus::kFail;
        if (space.max(x_) <= space.min(y_) + offset_ - strict)
          return PropStatus::kSubsumed;
        return PropStatus::kFix;
      }
      case RelOp::kGeq:
      case RelOp::kGt: {
        const int strict = op_ == RelOp::kGt ? 1 : 0;
        if (space.set_min(x_, space.min(y_) + offset_ + strict) ==
            ModEvent::kFail)
          return PropStatus::kFail;
        if (space.set_max(y_, space.max(x_) - offset_ - strict) ==
            ModEvent::kFail)
          return PropStatus::kFail;
        if (space.min(x_) >= space.max(y_) + offset_ + strict)
          return PropStatus::kSubsumed;
        return PropStatus::kFix;
      }
      case RelOp::kEq: {
        // Channel full domains: x == y + offset.
        Domain shifted_y(0, -1);
        {
          // Build dom(y) + offset.
          std::vector<int> vals;
          space.dom(y_).for_each([&](int v) { vals.push_back(v + offset_); });
          shifted_y = Domain::from_values(std::move(vals));
        }
        if (space.intersect(x_, shifted_y) == ModEvent::kFail)
          return PropStatus::kFail;
        std::vector<int> vals;
        space.dom(x_).for_each([&](int v) { vals.push_back(v - offset_); });
        if (space.intersect(y_, Domain::from_values(std::move(vals))) ==
            ModEvent::kFail)
          return PropStatus::kFail;
        if (space.assigned(x_) && space.assigned(y_))
          return PropStatus::kSubsumed;
        return PropStatus::kFix;
      }
      case RelOp::kNeq: {
        if (space.assigned(x_)) {
          if (space.remove(y_, space.value(x_) - offset_) == ModEvent::kFail)
            return PropStatus::kFail;
          return PropStatus::kSubsumed;
        }
        if (space.assigned(y_)) {
          if (space.remove(x_, space.value(y_) + offset_) == ModEvent::kFail)
            return PropStatus::kFail;
          return PropStatus::kSubsumed;
        }
        return PropStatus::kFix;
      }
    }
    return PropStatus::kFix;
  }

 private:
  VarId x_;
  RelOp op_;
  VarId y_;
  int offset_;
};

}  // namespace

void post_rel_const(Space& space, VarId x, RelOp op, int c) {
  switch (op) {
    case RelOp::kEq: space.assign(x, c); break;
    case RelOp::kNeq: space.remove(x, c); break;
    case RelOp::kLeq: space.set_max(x, c); break;
    case RelOp::kLt: space.set_max(x, c - 1); break;
    case RelOp::kGeq: space.set_min(x, c); break;
    case RelOp::kGt: space.set_min(x, c + 1); break;
  }
}

void post_rel(Space& space, VarId x, RelOp op, VarId y, int offset) {
  space.post(std::make_unique<BinaryRel>(x, op, y, offset));
}

}  // namespace rr::cp
