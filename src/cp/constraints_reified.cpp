#include <memory>

#include "cp/constraints.hpp"

namespace rr::cp {
namespace {

/// b <-> (x op c). Three-way propagation: a decided b enforces the relation
/// or its negation on x; an entailed/refuted relation decides b.
class ReifiedRelConst final : public Propagator {
 public:
  ReifiedRelConst(VarId x, RelOp op, int c, VarId b)
      : Propagator(PropPriority::kUnary, PropKind::kReified),
        x_(x), op_(op), c_(c), b_(b) {}

  void attach(Space& space, int self) override {
    space.subscribe(x_, self, kOnDomain);
    space.subscribe(b_, self, kOnAssign);
    space.set_min(b_, 0);
    space.set_max(b_, 1);
  }

  PropStatus propagate(Space& space) override {
    if (space.failed()) return PropStatus::kFail;
    if (space.assigned(b_)) {
      const bool truth = space.value(b_) == 1;
      if (apply(space, truth ? op_ : negate(op_)) == ModEvent::kFail)
        return PropStatus::kFail;
      return PropStatus::kSubsumed;
    }
    switch (entailment(space)) {
      case Entail::kTrue:
        if (space.assign(b_, 1) == ModEvent::kFail) return PropStatus::kFail;
        return PropStatus::kSubsumed;
      case Entail::kFalse:
        if (space.assign(b_, 0) == ModEvent::kFail) return PropStatus::kFail;
        return PropStatus::kSubsumed;
      case Entail::kUnknown:
        return PropStatus::kFix;
    }
    return PropStatus::kFix;
  }

 private:
  enum class Entail { kTrue, kFalse, kUnknown };

  static RelOp negate(RelOp op) noexcept {
    switch (op) {
      case RelOp::kEq: return RelOp::kNeq;
      case RelOp::kNeq: return RelOp::kEq;
      case RelOp::kLeq: return RelOp::kGt;
      case RelOp::kGt: return RelOp::kLeq;
      case RelOp::kGeq: return RelOp::kLt;
      case RelOp::kLt: return RelOp::kGeq;
    }
    return op;
  }

  ModEvent apply(Space& space, RelOp op) const {
    switch (op) {
      case RelOp::kEq: return space.assign(x_, c_);
      case RelOp::kNeq: return space.remove(x_, c_);
      case RelOp::kLeq: return space.set_max(x_, c_);
      case RelOp::kLt: return space.set_max(x_, c_ - 1);
      case RelOp::kGeq: return space.set_min(x_, c_);
      case RelOp::kGt: return space.set_min(x_, c_ + 1);
    }
    return ModEvent::kNone;
  }

  [[nodiscard]] Entail entailment(const Space& space) const {
    const Domain& dom = space.dom(x_);
    switch (op_) {
      case RelOp::kEq:
        if (!dom.contains(c_)) return Entail::kFalse;
        if (dom.assigned()) return Entail::kTrue;
        return Entail::kUnknown;
      case RelOp::kNeq:
        if (!dom.contains(c_)) return Entail::kTrue;
        if (dom.assigned()) return Entail::kFalse;
        return Entail::kUnknown;
      case RelOp::kLeq:
        if (dom.max() <= c_) return Entail::kTrue;
        if (dom.min() > c_) return Entail::kFalse;
        return Entail::kUnknown;
      case RelOp::kLt:
        if (dom.max() < c_) return Entail::kTrue;
        if (dom.min() >= c_) return Entail::kFalse;
        return Entail::kUnknown;
      case RelOp::kGeq:
        if (dom.min() >= c_) return Entail::kTrue;
        if (dom.max() < c_) return Entail::kFalse;
        return Entail::kUnknown;
      case RelOp::kGt:
        if (dom.min() > c_) return Entail::kTrue;
        if (dom.max() <= c_) return Entail::kFalse;
        return Entail::kUnknown;
    }
    return Entail::kUnknown;
  }

  VarId x_;
  RelOp op_;
  int c_;
  VarId b_;
};

}  // namespace

void post_rel_reified(Space& space, VarId x, RelOp op, int c, VarId b) {
  space.post(std::make_unique<ReifiedRelConst>(x, op, c, b));
}

}  // namespace rr::cp
