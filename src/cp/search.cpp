#include "cp/search.hpp"

#include <algorithm>

namespace rr::cp {

Search::Search(Space& space, Brancher& brancher, Options options)
    : space_(space), brancher_(brancher), options_(options) {}

long Search::current_bound() const noexcept {
  long bound = local_bound_;
  if (options_.shared_bound != nullptr) {
    bound = std::min(
        bound, options_.shared_bound->load(std::memory_order_relaxed));
  }
  return bound;
}

bool Search::apply_cut() {
  if (options_.objective == kNoVar) return true;
  const long bound = current_bound();
  if (bound == kNoBound) return true;
  return space_.set_max(options_.objective, static_cast<int>(bound - 1)) !=
         ModEvent::kFail;
}

bool Search::limit_reached() const noexcept {
  if (options_.stop != nullptr &&
      options_.stop->load(std::memory_order_relaxed))
    return true;
  if (options_.limits.max_nodes != 0 &&
      stats_.nodes >= options_.limits.max_nodes)
    return true;
  if (options_.limits.max_fails != 0 &&
      stats_.fails >= options_.limits.max_fails)
    return true;
  return options_.limits.deadline.expired();
}

void Search::record_solution() {
  ++stats_.solutions;
  if (options_.objective == kNoVar) return;
  // At a solution the objective is fixed by propagation; its lower bound is
  // the sound value to cut with even if a custom brancher left it unassigned.
  const long value = space_.min(options_.objective);
  local_bound_ = std::min(local_bound_, value);
  if (options_.shared_bound != nullptr) {
    long observed = options_.shared_bound->load(std::memory_order_relaxed);
    while (value < observed &&
           !options_.shared_bound->compare_exchange_weak(
               observed, value, std::memory_order_relaxed)) {
    }
  }
}

bool Search::backtrack() {
  for (;;) {
    // Discard exhausted frames (both children explored).
    while (!stack_.empty() && stack_.back().right_done) {
      space_.pop();
      stack_.pop_back();
    }
    if (stack_.empty()) return false;

    // Failed right branches below count toward the fail budget, so the
    // limits must be honored here too — otherwise a cascade of exhausted
    // subtrees overshoots max_fails arbitrarily. Stop with the stack
    // intact; need_backtrack_ makes the next next() call resume exactly
    // here.
    if (limit_reached()) {
      need_backtrack_ = true;
      return false;
    }

    // Swap the left subtree for the right branch: var != value.
    space_.pop();
    space_.push();
    Frame& frame = stack_.back();
    frame.right_done = true;
    ++stats_.nodes;
    space_.remove(frame.choice.var, frame.choice.value);
    if (!space_.failed() && apply_cut() && space_.propagate()) return true;
    ++stats_.fails;
    space_.pop();
    space_.push();  // keep the one-level-per-frame invariant for the loop
  }
}

bool Search::next() {
  if (exhausted_) return false;
  if (!started_) {
    started_ = true;
    if (space_.failed() || !apply_cut() || !space_.propagate()) {
      ++stats_.fails;
      stats_.complete = true;
      exhausted_ = true;
      return false;
    }
  } else if (need_backtrack_) {
    need_backtrack_ = false;
    if (!backtrack()) {
      if (need_backtrack_) return false;  // limit fired mid-backtrack
      stats_.complete = true;
      exhausted_ = true;
      return false;
    }
  }

  for (;;) {
    if (limit_reached()) return false;
    const std::optional<Choice> choice = brancher_.choose(space_);
    if (!choice.has_value()) {
      record_solution();
      need_backtrack_ = true;
      return true;
    }
    // Left branch: var == value.
    space_.push();
    stack_.push_back(Frame{*choice, false});
    stats_.max_depth =
        std::max(stats_.max_depth, static_cast<int>(stack_.size()));
    ++stats_.nodes;
    space_.assign(choice->var, choice->value);
    if (space_.failed() || !apply_cut() || !space_.propagate()) {
      ++stats_.fails;
      if (!backtrack()) {
        if (need_backtrack_) return false;  // limit fired mid-backtrack
        stats_.complete = true;
        exhausted_ = true;
        return false;
      }
    }
  }
}

MinimizeResult minimize_with_restarts(
    Space& space,
    const std::function<std::unique_ptr<Brancher>(int restart)>& make_brancher,
    VarId objective, std::span<const VarId> report, const SearchLimits& limits,
    const RestartOptions& restart_options, int* restarts_out) {
  MinimizeResult result;
  std::atomic<long> bound{kNoBound};  // carries the incumbent across restarts
  double budget = static_cast<double>(restart_options.base_fails);
  int restart = 0;
  for (;; ++restart) {
    // Rewind to the root: a limited search may stop mid-tree.
    while (space.decision_level() > 0) space.pop();

    Search::Options options;
    options.objective = objective;
    options.shared_bound = &bound;
    options.limits = limits;
    // Cap this restart's budget by what remains of the *global* fail
    // budget; handing each restart min(max_fails, restart_fails) afresh
    // would let the total overshoot max_fails by nearly a full restart.
    std::uint64_t restart_fails = static_cast<std::uint64_t>(budget);
    if (limits.max_fails != 0) {
      const std::uint64_t remaining = limits.max_fails - result.stats.fails;
      restart_fails = std::min(restart_fails, remaining);
    }
    options.limits.max_fails = restart_fails;

    std::unique_ptr<Brancher> brancher = make_brancher(restart);
    Search search(space, *brancher, options);
    while (search.next()) {
      result.found = true;
      result.objective = space.min(objective);
      result.assignment.clear();
      result.assignment.reserve(report.size());
      for (VarId v : report) result.assignment.push_back(space.min(v));
    }
    result.stats.merge(search.stats());
    result.stats.restarts = static_cast<std::uint64_t>(restart) + 1;
    if (search.stats().complete) break;
    // Stop when the global limits (not this restart's budget) fired.
    if (limits.deadline.expired()) break;
    if (limits.max_fails != 0 && result.stats.fails >= limits.max_fails) break;
    budget *= restart_options.growth;
  }
  if (restarts_out != nullptr) *restarts_out = restart + 1;
  return result;
}

MinimizeResult minimize(Space& space, Brancher& brancher, VarId objective,
                        std::span<const VarId> report,
                        const SearchLimits& limits) {
  Search::Options options;
  options.limits = limits;
  options.objective = objective;
  Search search(space, brancher, options);
  MinimizeResult result;
  while (search.next()) {
    result.found = true;
    result.objective = space.min(objective);
    result.assignment.clear();
    result.assignment.reserve(report.size());
    for (VarId v : report) result.assignment.push_back(space.min(v));
  }
  result.stats = search.stats();
  return result;
}

}  // namespace rr::cp
