#include <memory>
#include <vector>

#include "cp/constraints.hpp"

namespace rr::cp {
namespace {

/// |{i : vars[i] == value}| op n for op in {kEq, kLeq, kGeq}.
class Count final : public Propagator {
 public:
  Count(std::vector<VarId> vars, int value, bool need_leq, bool need_geq,
        int n)
      : Propagator(PropPriority::kLinear, PropKind::kCount),
        vars_(std::move(vars)),
        value_(value),
        need_leq_(need_leq),
        need_geq_(need_geq),
        n_(n) {}

  void attach(Space& space, int self) override {
    for (VarId v : vars_) space.subscribe(v, self, kOnDomain);
  }

  PropStatus propagate(Space& space) override {
    int fixed = 0;     // vars assigned to value
    int possible = 0;  // vars whose domain still contains value
    for (VarId v : vars_) {
      const bool has = space.dom(v).contains(value_);
      if (has) ++possible;
      if (has && space.assigned(v)) ++fixed;
    }
    if (need_leq_ && fixed > n_) return PropStatus::kFail;
    if (need_geq_ && possible < n_) return PropStatus::kFail;

    if (need_leq_ && fixed == n_) {
      // No further variable may take the value.
      for (VarId v : vars_) {
        if (space.assigned(v)) continue;
        if (space.remove(v, value_) == ModEvent::kFail)
          return PropStatus::kFail;
      }
    }
    if (need_geq_ && possible == n_) {
      // Every variable that still can take the value must.
      for (VarId v : vars_) {
        if (!space.dom(v).contains(value_)) continue;
        if (space.assign(v, value_) == ModEvent::kFail)
          return PropStatus::kFail;
      }
    }
    return PropStatus::kFix;
  }

 private:
  std::vector<VarId> vars_;
  int value_;
  bool need_leq_;
  bool need_geq_;
  int n_;
};

}  // namespace

void post_count(Space& space, std::span<const VarId> vars, int value,
                RelOp op, int n) {
  RR_REQUIRE(op == RelOp::kEq || op == RelOp::kLeq || op == RelOp::kGeq,
             "count: op must be ==, <= or >=");
  const bool leq = op != RelOp::kGeq;
  const bool geq = op != RelOp::kLeq;
  space.post(std::make_unique<Count>(
      std::vector<VarId>(vars.begin(), vars.end()), value, leq, geq, n));
}

}  // namespace rr::cp
