// The constraint store: variables, propagators, the propagation loop and
// the backtracking trail.
//
// The engine uses trail-based state restoration (save a variable's domain
// the first time it changes at each decision level) rather than copying
// spaces; this keeps one Space per search thread and makes pushing and
// popping choice points cheap.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "cp/domain.hpp"
#include "cp/propagator.hpp"
#include "cp/types.hpp"

namespace rr::cp {

/// Per-propagator-kind counters: where propagation effort goes and which
/// constraint families actually prune or fail. Time is only collected when
/// metrics collection is enabled (rr::metrics::enabled() at Space
/// construction); the counts are always cheap enough to keep.
struct PropKindStats {
  std::uint64_t runs = 0;      // propagate() invocations
  std::uint64_t failures = 0;  // runs that detected inconsistency
  std::uint64_t prunings = 0;  // domain changes made during those runs
  std::uint64_t time_ns = 0;   // cumulative wall time (0 when disabled)
};

/// Counters exposed for search statistics and the micro-benchmarks.
struct SpaceStats {
  std::uint64_t propagations = 0;  // propagate() calls on propagators
  std::uint64_t domain_changes = 0;
  /// Buckets indexed by int(PropKind); populated only while metrics
  /// collection is enabled (see rr::metrics::enabled()).
  std::array<PropKindStats, kNumPropKinds> by_kind{};

  /// Sum another space's counters into this one (portfolio aggregation).
  void merge(const SpaceStats& other) noexcept {
    propagations += other.propagations;
    domain_changes += other.domain_changes;
    for (int k = 0; k < kNumPropKinds; ++k) {
      auto& mine = by_kind[static_cast<std::size_t>(k)];
      const auto& theirs = other.by_kind[static_cast<std::size_t>(k)];
      mine.runs += theirs.runs;
      mine.failures += theirs.failures;
      mine.prunings += theirs.prunings;
      mine.time_ns += theirs.time_ns;
    }
  }
};

class Space {
 public:
  /// Snapshots rr::metrics::enabled() at construction: per-kind metrics are
  /// collected for the space's whole lifetime or not at all, so the hot
  /// propagation loop tests one cached bool instead of an atomic.
  Space();
  Space(const Space&) = delete;
  Space& operator=(const Space&) = delete;

  // --- Variables -----------------------------------------------------------
  VarId new_var(int lo, int hi);
  VarId new_var(Domain dom);

  [[nodiscard]] int num_vars() const noexcept {
    return static_cast<int>(domains_.size());
  }
  [[nodiscard]] const Domain& dom(VarId v) const noexcept {
    RR_ASSERT(v >= 0 && v < num_vars());
    return domains_[static_cast<std::size_t>(v)];
  }
  [[nodiscard]] int min(VarId v) const noexcept { return dom(v).min(); }
  [[nodiscard]] int max(VarId v) const noexcept { return dom(v).max(); }
  [[nodiscard]] bool assigned(VarId v) const noexcept {
    return dom(v).assigned();
  }
  [[nodiscard]] int value(VarId v) const noexcept { return dom(v).value(); }

  // --- Domain modification (propagators & branchers) ------------------------
  // Each returns the strongest event that occurred; kFail marks the space
  // failed. Callers inside propagators typically just test for kFail.
  ModEvent set_min(VarId v, int bound);
  ModEvent set_max(VarId v, int bound);
  ModEvent assign(VarId v, int value);
  ModEvent remove(VarId v, int value);
  ModEvent remove_range(VarId v, int lo, int hi);
  ModEvent remove_values_sorted(VarId v, std::span<const int> values);
  ModEvent intersect(VarId v, const Domain& with);
  /// Keep only values v with mask bit (v - base) set (word-parallel); see
  /// Domain::keep_masked. Compact-table propagators hand the live-set words
  /// in here directly.
  ModEvent keep_masked(VarId v, int base, std::span<const std::uint64_t> mask);

  [[nodiscard]] bool failed() const noexcept { return failed_; }
  /// Mark the space failed without touching a domain (global propagators).
  void fail() noexcept { failed_ = true; }

  // --- Propagators -----------------------------------------------------------
  /// Take ownership, attach, and schedule for an initial run. Returns the
  /// propagator id.
  int post(std::unique_ptr<Propagator> propagator);

  /// Subscribe propagator `prop` to events on `v` matching `mask`. `data`
  /// is an opaque payload handed back through Propagator::modified() for
  /// advised propagators (typically the subscriber's index for `v`).
  void subscribe(VarId v, int prop, unsigned mask, int data = 0);

  /// Re-schedule a propagator explicitly (used by search for objective cuts).
  void schedule(int prop);

  /// Run the queue to fixpoint. Returns false iff the space failed.
  bool propagate();

  /// Number of posted propagators.
  [[nodiscard]] int num_propagators() const noexcept {
    return static_cast<int>(propagators_.size());
  }

  // --- Search support ---------------------------------------------------------
  /// Open a new decision level.
  void push();
  /// Undo all changes of the current level (clears failure).
  void pop();
  [[nodiscard]] int decision_level() const noexcept {
    return static_cast<int>(level_marks_.size());
  }

  [[nodiscard]] const SpaceStats& stats() const noexcept { return stats_; }

 private:
  struct Subscription {
    int prop;
    unsigned mask;
    int data;
  };

  void notify(VarId v, ModEvent event);
  void save_domain(VarId v);
  ModEvent classify(VarId v, const Domain& before) const noexcept;
  ModEvent apply_result(VarId v, const Domain& before, bool changed);

  std::vector<Domain> domains_;
  std::vector<int> domain_saved_at_;  // last level each var's domain was saved
  std::vector<std::vector<Subscription>> subscriptions_;

  std::vector<std::unique_ptr<Propagator>> propagators_;
  std::vector<bool> scheduled_;
  std::vector<bool> subsumed_;
  std::vector<bool> advised_;  // advised() sampled at post()
  std::vector<int> advisors_;  // ids of advised propagators (level hooks)
  // Queue, bucketed by priority.
  std::vector<int> queue_[kNumPriorities];

  // Trail of (var, previous domain) plus per-level marks.
  std::vector<std::pair<VarId, Domain>> trail_;
  std::vector<std::size_t> level_marks_;
  // Subsumption trail: propagators subsumed at a level, restored on pop.
  std::vector<int> subsumed_trail_;
  std::vector<std::size_t> subsumed_marks_;

  bool failed_ = false;
  SpaceStats stats_;
  bool collect_metrics_ = false;  // rr::metrics::enabled() at construction
};

}  // namespace rr::cp
