#include "cp/portfolio.hpp"

#include <atomic>
#include <mutex>
#include <thread>

#include "util/error.hpp"
#include "util/stopwatch.hpp"

namespace rr::cp {
namespace {

struct SharedState {
  std::atomic<long> bound{kNoBound};
  std::atomic<bool> stop{false};
  Stopwatch watch;   // portfolio launch time, for the incumbent timeline
  std::mutex mutex;  // guards the fields below
  PortfolioResult result;
};

void run_worker(int index, PortfolioModel& model, const SearchLimits& limits,
                SharedState& shared) {
  Search::Options options;
  options.limits = limits;
  options.objective = model.objective;
  options.shared_bound = &shared.bound;
  options.stop = &shared.stop;
  Search search(*model.space, *model.brancher, options);

  while (search.next()) {
    const long objective = model.space->min(model.objective);
    const double at = shared.watch.seconds();
    std::lock_guard<std::mutex> lock(shared.mutex);
    shared.result.incumbents.push_back(IncumbentEvent{index, at, objective});
    // Another worker may have found an equal or better solution while this
    // one was propagating; keep only strict improvements.
    if (!shared.result.found || objective < shared.result.objective) {
      shared.result.found = true;
      shared.result.objective = objective;
      shared.result.winner = index;
      shared.result.assignment.clear();
      shared.result.assignment.reserve(model.report.size());
      for (VarId v : model.report)
        shared.result.assignment.push_back(model.space->min(v));
    }
  }

  const SearchStats& stats = search.stats();
  std::lock_guard<std::mutex> lock(shared.mutex);
  shared.result.total.merge(stats);
  shared.result.space.merge(model.space->stats());
  if (stats.complete) {
    shared.result.complete = true;
    // Optimality proved: stop the siblings.
    shared.stop.store(true, std::memory_order_relaxed);
  }
}

}  // namespace

PortfolioResult minimize_portfolio(const PortfolioFactory& factory,
                                   int workers, const SearchLimits& limits) {
  RR_REQUIRE(workers >= 1, "portfolio needs at least one worker");
  // Build all models up front on this thread; factories need not be
  // thread-safe (they typically share a problem description).
  std::vector<PortfolioModel> models;
  models.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    models.push_back(factory(i));
    RR_REQUIRE(models.back().space != nullptr && models.back().brancher != nullptr,
               "portfolio factory returned an incomplete model");
  }

  SharedState shared;
  if (workers == 1) {
    run_worker(0, models[0], limits, shared);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(workers));
    for (int i = 0; i < workers; ++i) {
      threads.emplace_back(run_worker, i, std::ref(models[static_cast<std::size_t>(i)]),
                           std::cref(limits), std::ref(shared));
    }
    for (std::thread& t : threads) t.join();
  }
  return std::move(shared.result);
}

}  // namespace rr::cp
