// Shared vocabulary types of the constraint engine.
#pragma once

namespace rr::cp {

/// Handle to an integer decision variable owned by a Space.
using VarId = int;
inline constexpr VarId kNoVar = -1;

/// Result of a domain modification.
enum class ModEvent {
  kNone,    // no change
  kDomain,  // interior values removed, bounds unchanged
  kBounds,  // min or max changed
  kAssign,  // domain became a singleton
  kFail,    // domain became empty
};

/// Result of a propagation step.
enum class PropStatus {
  kFix,       // at fixpoint for now; keep the propagator
  kSubsumed,  // entailed at this node and below; disabled until backtrack
  kFail,      // inconsistency detected
};

/// Events a propagator may subscribe to, as a bitmask.
enum PropCond : unsigned {
  kOnAssign = 1u << 0,
  kOnBounds = 1u << 1,  // implies interest in assignment as well
  kOnDomain = 1u << 2,  // any change at all
};

/// Scheduling priority: lower runs earlier. Cheap propagators first keeps
/// the queue short before expensive global constraints run.
enum class PropPriority : int { kUnary = 0, kLinear = 1, kGlobal = 2 };
inline constexpr int kNumPriorities = 3;

}  // namespace rr::cp
