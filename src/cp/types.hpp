// Shared vocabulary types of the constraint engine.
#pragma once

namespace rr::cp {

/// Handle to an integer decision variable owned by a Space.
using VarId = int;
inline constexpr VarId kNoVar = -1;

/// Result of a domain modification.
enum class ModEvent {
  kNone,    // no change
  kDomain,  // interior values removed, bounds unchanged
  kBounds,  // min or max changed
  kAssign,  // domain became a singleton
  kFail,    // domain became empty
};

/// Result of a propagation step.
enum class PropStatus {
  kFix,       // at fixpoint for now; keep the propagator
  kSubsumed,  // entailed at this node and below; disabled until backtrack
  kFail,      // inconsistency detected
};

/// Events a propagator may subscribe to, as a bitmask.
enum PropCond : unsigned {
  kOnAssign = 1u << 0,
  kOnBounds = 1u << 1,  // implies interest in assignment as well
  kOnDomain = 1u << 2,  // any change at all
};

/// Scheduling priority: lower runs earlier. Cheap propagators first keeps
/// the queue short before expensive global constraints run.
enum class PropPriority : int { kUnary = 0, kLinear = 1, kGlobal = 2 };
inline constexpr int kNumPriorities = 3;

/// Propagator family, for per-kind solver metrics (runs / failures /
/// prunings / time bucketed by constraint type). Purely observational:
/// scheduling only ever looks at PropPriority.
enum class PropKind : int {
  kRel = 0,      // binary relations (x op y + c)
  kLinear,       // linear sums
  kElement,      // result == table[index]
  kMinMax,       // z == min/max(xs)
  kDistinct,     // all-different
  kCount,        // occurrence counting
  kReified,      // b <-> (x op c)
  kTable,        // positive table / GAC
  kGeost,        // geost-style non-overlap over resource-typed boxes
  kOther,        // anything user-defined that doesn't declare a kind
};
inline constexpr int kNumPropKinds = 10;

/// Stable lowercase name of a kind ("linear", "geost-nonoverlap", ...),
/// used as the JSON key in emitted stats.
[[nodiscard]] constexpr const char* prop_kind_name(PropKind kind) noexcept {
  switch (kind) {
    case PropKind::kRel: return "rel";
    case PropKind::kLinear: return "linear";
    case PropKind::kElement: return "element";
    case PropKind::kMinMax: return "minmax";
    case PropKind::kDistinct: return "distinct";
    case PropKind::kCount: return "count";
    case PropKind::kReified: return "reified";
    case PropKind::kTable: return "table";
    case PropKind::kGeost: return "geost-nonoverlap";
    case PropKind::kOther: return "other";
  }
  return "other";
}

}  // namespace rr::cp
