#include <algorithm>
#include <limits>
#include <memory>
#include <vector>

#include "cp/constraints.hpp"

namespace rr::cp {
namespace {

/// z == max(xs) with bounds consistency. The min variant is obtained by
/// negation at post time (z' = -z, x' = -x is avoided; instead a mirrored
/// propagator flag flips the comparisons).
class MaxOf final : public Propagator {
 public:
  MaxOf(VarId z, std::vector<VarId> xs, bool is_max)
      : Propagator(PropPriority::kLinear, PropKind::kMinMax),
        z_(z),
        xs_(std::move(xs)),
        is_max_(is_max) {}

  void attach(Space& space, int self) override {
    space.subscribe(z_, self, kOnBounds);
    for (VarId x : xs_) space.subscribe(x, self, kOnBounds);
  }

  PropStatus propagate(Space& space) override {
    // Work in "max space": lo(v)/hi(v) flip roles for the min variant.
    auto lo = [&](VarId v) { return is_max_ ? space.min(v) : -space.max(v); };
    auto hi = [&](VarId v) { return is_max_ ? space.max(v) : -space.min(v); };
    auto clamp_hi = [&](VarId v, int b) {
      return is_max_ ? space.set_max(v, b) : space.set_min(v, -b);
    };
    auto clamp_lo = [&](VarId v, int b) {
      return is_max_ ? space.set_min(v, b) : space.set_max(v, -b);
    };

    int best_hi = std::numeric_limits<int>::min();
    int best_lo = std::numeric_limits<int>::min();
    for (VarId x : xs_) {
      best_hi = std::max(best_hi, hi(x));
      best_lo = std::max(best_lo, lo(x));
    }
    if (clamp_hi(z_, best_hi) == ModEvent::kFail) return PropStatus::kFail;
    if (clamp_lo(z_, best_lo) == ModEvent::kFail) return PropStatus::kFail;

    // Every x is <= z.
    for (VarId x : xs_) {
      if (clamp_hi(x, hi(z_)) == ModEvent::kFail) return PropStatus::kFail;
    }

    // If exactly one x can reach z's lower bound, it must.
    int support = -1, supports = 0;
    for (std::size_t i = 0; i < xs_.size(); ++i) {
      if (hi(xs_[i]) >= lo(z_)) {
        support = static_cast<int>(i);
        if (++supports > 1) break;
      }
    }
    if (supports == 0) return PropStatus::kFail;
    if (supports == 1) {
      if (clamp_lo(xs_[static_cast<std::size_t>(support)], lo(z_)) ==
          ModEvent::kFail)
        return PropStatus::kFail;
    }
    return PropStatus::kFix;
  }

 private:
  VarId z_;
  std::vector<VarId> xs_;
  bool is_max_;
};

}  // namespace

void post_max(Space& space, VarId z, std::span<const VarId> xs) {
  RR_REQUIRE(!xs.empty(), "max: needs at least one operand");
  space.post(std::make_unique<MaxOf>(
      z, std::vector<VarId>(xs.begin(), xs.end()), /*is_max=*/true));
}

void post_min(Space& space, VarId z, std::span<const VarId> xs) {
  RR_REQUIRE(!xs.empty(), "min: needs at least one operand");
  space.post(std::make_unique<MaxOf>(
      z, std::vector<VarId>(xs.begin(), xs.end()), /*is_max=*/false));
}

}  // namespace rr::cp
