#include <memory>
#include <vector>

#include "cp/constraints.hpp"

namespace rr::cp {
namespace {

/// Bounds-consistent linear constraint sum(a_i * x_i) op rhs for
/// op in {kEq, kLeq, kGeq}. kGeq is normalized to kLeq by negation.
class Linear final : public Propagator {
 public:
  Linear(std::vector<int> coeffs, std::vector<VarId> vars, bool equality,
         int rhs)
      : Propagator(PropPriority::kLinear, PropKind::kLinear),
        coeffs_(std::move(coeffs)),
        vars_(std::move(vars)),
        equality_(equality),
        rhs_(rhs) {}

  void attach(Space& space, int self) override {
    for (VarId v : vars_) space.subscribe(v, self, kOnBounds);
  }

  PropStatus propagate(Space& space) override {
    // lb/ub of the sum under current bounds.
    long lb = 0, ub = 0;
    for (std::size_t i = 0; i < vars_.size(); ++i) {
      const int a = coeffs_[i];
      const long lo = space.min(vars_[i]);
      const long hi = space.max(vars_[i]);
      lb += a >= 0 ? a * lo : a * hi;
      ub += a >= 0 ? a * hi : a * lo;
    }
    if (lb > rhs_) return PropStatus::kFail;
    if (equality_ && ub < rhs_) return PropStatus::kFail;

    // sum <= rhs: tighten each term's upper contribution.
    for (std::size_t i = 0; i < vars_.size(); ++i) {
      const int a = coeffs_[i];
      if (a == 0) continue;
      const long lo = space.min(vars_[i]);
      const long hi = space.max(vars_[i]);
      const long term_lb = a >= 0 ? a * lo : a * hi;
      const long slack = rhs_ - (lb - term_lb);
      // a * x_i <= slack
      if (a > 0) {
        if (space.set_max(vars_[i], static_cast<int>(div_floor(slack, a))) ==
            ModEvent::kFail)
          return PropStatus::kFail;
      } else {
        if (space.set_min(vars_[i], static_cast<int>(div_ceil(slack, a))) ==
            ModEvent::kFail)
          return PropStatus::kFail;
      }
      if (equality_) {
        // sum >= rhs: symmetric tightening.
        const long term_ub = a >= 0 ? a * hi : a * lo;
        const long need = rhs_ - (ub - term_ub);
        // a * x_i >= need
        if (a > 0) {
          if (space.set_min(vars_[i], static_cast<int>(div_ceil(need, a))) ==
              ModEvent::kFail)
            return PropStatus::kFail;
        } else {
          if (space.set_max(vars_[i], static_cast<int>(div_floor(need, a))) ==
              ModEvent::kFail)
            return PropStatus::kFail;
        }
      }
    }
    if (!equality_ && ub <= rhs_) return PropStatus::kSubsumed;
    return PropStatus::kFix;
  }

 private:
  static long div_floor(long a, long b) noexcept {
    const long q = a / b;
    return (a % b != 0 && ((a < 0) != (b < 0))) ? q - 1 : q;
  }
  static long div_ceil(long a, long b) noexcept {
    const long q = a / b;
    return (a % b != 0 && ((a < 0) == (b < 0))) ? q + 1 : q;
  }

  std::vector<int> coeffs_;
  std::vector<VarId> vars_;
  bool equality_;
  int rhs_;
};

}  // namespace

void post_linear(Space& space, std::span<const int> coeffs,
                 std::span<const VarId> vars, RelOp op, int rhs) {
  RR_REQUIRE(coeffs.size() == vars.size(),
             "linear: coefficient/variable arity mismatch");
  RR_REQUIRE(op == RelOp::kEq || op == RelOp::kLeq || op == RelOp::kGeq,
             "linear: op must be ==, <= or >=");
  std::vector<int> a(coeffs.begin(), coeffs.end());
  std::vector<VarId> x(vars.begin(), vars.end());
  if (op == RelOp::kGeq) {
    // -sum <= -rhs
    for (int& c : a) c = -c;
    rhs = -rhs;
  }
  space.post(std::make_unique<Linear>(std::move(a), std::move(x),
                                      op == RelOp::kEq, rhs));
}

}  // namespace rr::cp
