// Depth-first search with optional branch-and-bound minimization.
//
// The engine walks a binary tree over Choices from a Brancher: left child
// asserts var == value, right child var != value. With an objective
// variable set, every improving solution tightens a bound that is
// re-applied at every node (the classic B&B cut); the bound may live in a
// shared atomic so parallel portfolio workers prune each other.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <vector>

#include "cp/brancher.hpp"
#include "cp/space.hpp"
#include "util/stopwatch.hpp"

namespace rr::cp {

struct SearchLimits {
  Deadline deadline{};               // default: unlimited
  std::uint64_t max_nodes = 0;       // 0 = unlimited
  std::uint64_t max_fails = 0;       // 0 = unlimited
};

struct SearchStats {
  std::uint64_t nodes = 0;
  std::uint64_t fails = 0;
  std::uint64_t solutions = 0;
  int max_depth = 0;
  /// Restart count (minimize_with_restarts); 0 for single-descent engines.
  std::uint64_t restarts = 0;
  /// True when the search tree was exhausted (proof of optimality /
  /// unsatisfiability), false when a limit stopped the search.
  bool complete = false;

  /// Sum another engine's counters into this one (restarts, LNS rounds,
  /// portfolio workers). `complete` stays an OR: any proof is a proof.
  void merge(const SearchStats& other) noexcept {
    nodes += other.nodes;
    fails += other.fails;
    solutions += other.solutions;
    max_depth = max_depth > other.max_depth ? max_depth : other.max_depth;
    restarts += other.restarts;
    complete = complete || other.complete;
  }
};

inline constexpr long kNoBound = std::numeric_limits<long>::max();

class Search {
 public:
  struct Options {
    SearchLimits limits{};
    /// Variable to minimize; kNoVar for plain satisfaction search.
    VarId objective = kNoVar;
    /// Optional cross-thread bound. When set, this engine both honours and
    /// updates it. The atomic holds the best *known solution* objective, so
    /// the cut applied is `objective <= bound - 1`.
    std::atomic<long>* shared_bound = nullptr;
    /// Optional cooperative stop flag (portfolio cancellation).
    std::atomic<bool>* stop = nullptr;
  };

  Search(Space& space, Brancher& brancher, Options options);

  /// Advance to the next solution (the next *improving* solution when an
  /// objective is set). Returns false when exhausted or a limit fired —
  /// distinguish via stats().complete.
  bool next();

  [[nodiscard]] const SearchStats& stats() const noexcept { return stats_; }

  /// Best objective value seen by this engine (kNoBound if none yet).
  [[nodiscard]] long best_objective() const noexcept { return local_bound_; }

 private:
  /// Apply the B&B cut for the current bound. False on immediate failure.
  bool apply_cut();
  /// Backtrack to the deepest open right branch and take it (propagating).
  /// False when the stack empties (search exhausted).
  bool backtrack();
  /// True when a limit fired.
  [[nodiscard]] bool limit_reached() const noexcept;
  [[nodiscard]] long current_bound() const noexcept;
  void record_solution();

  struct Frame {
    Choice choice;
    bool right_done;
  };

  Space& space_;
  Brancher& brancher_;
  Options options_;
  std::vector<Frame> stack_;
  SearchStats stats_;
  long local_bound_ = kNoBound;
  bool started_ = false;
  bool need_backtrack_ = false;  // true after a solution: leave it on resume
  bool exhausted_ = false;
};

/// Convenience: minimize `objective`, returning the best assignment of
/// `report` variables (empty when infeasible). `complete_out`, when
/// non-null, receives the optimality proof flag.
struct MinimizeResult {
  bool found = false;
  long objective = kNoBound;
  std::vector<int> assignment;  // values of `report` vars at the best solution
  SearchStats stats;
};

MinimizeResult minimize(Space& space, Brancher& brancher, VarId objective,
                        std::span<const VarId> report,
                        const SearchLimits& limits = {});

/// Restart policy for minimize_with_restarts: geometric fail budgets.
struct RestartOptions {
  std::uint64_t base_fails = 200;  // budget of the first restart
  double growth = 1.5;             // geometric growth per restart
};

/// Restarting branch-and-bound: run DFS under a growing fail budget,
/// carrying the incumbent bound across restarts; a fresh brancher per
/// restart (typically with a new random seed) diversifies the descents.
/// Completes (proves optimality) when some restart exhausts its tree within
/// budget. `restarts_out`, when non-null, receives the restart count.
MinimizeResult minimize_with_restarts(
    Space& space,
    const std::function<std::unique_ptr<Brancher>(int restart)>& make_brancher,
    VarId objective, std::span<const VarId> report, const SearchLimits& limits,
    const RestartOptions& restart_options = {}, int* restarts_out = nullptr);

}  // namespace rr::cp
