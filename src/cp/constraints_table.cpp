#include <memory>
#include <vector>

#include "cp/constraints.hpp"

namespace rr::cp {
namespace {

/// Positive table constraint with straight support scanning: a tuple is
/// live iff every component is still in its variable's domain; a value
/// survives iff some live tuple uses it. O(#tuples x arity) per run.
class PositiveTable final : public Propagator {
 public:
  PositiveTable(std::vector<VarId> vars, std::vector<std::vector<int>> tuples)
      : Propagator(PropPriority::kLinear, PropKind::kTable),
        vars_(std::move(vars)),
        tuples_(std::move(tuples)) {}

  void attach(Space& space, int self) override {
    for (VarId v : vars_) space.subscribe(v, self, kOnDomain);
  }

  PropStatus propagate(Space& space) override {
    const std::size_t arity = vars_.size();
    // Supported values per variable, collected from live tuples.
    std::vector<std::vector<int>> supported(arity);
    bool any_live = false;
    for (const std::vector<int>& tuple : tuples_) {
      bool live = true;
      for (std::size_t i = 0; i < arity && live; ++i)
        live = space.dom(vars_[i]).contains(tuple[i]);
      if (!live) continue;
      any_live = true;
      for (std::size_t i = 0; i < arity; ++i)
        supported[i].push_back(tuple[i]);
    }
    if (!any_live) return PropStatus::kFail;
    bool all_assigned = true;
    for (std::size_t i = 0; i < arity; ++i) {
      if (space.intersect(vars_[i],
                          Domain::from_values(std::move(supported[i]))) ==
          ModEvent::kFail)
        return PropStatus::kFail;
      all_assigned = all_assigned && space.assigned(vars_[i]);
    }
    return all_assigned ? PropStatus::kSubsumed : PropStatus::kFix;
  }

 private:
  std::vector<VarId> vars_;
  std::vector<std::vector<int>> tuples_;
};

}  // namespace

void post_table(Space& space, std::span<const VarId> vars,
                std::vector<std::vector<int>> tuples) {
  RR_REQUIRE(!vars.empty(), "table: needs at least one variable");
  for (const std::vector<int>& tuple : tuples) {
    RR_REQUIRE(tuple.size() == vars.size(),
               "table: tuple arity must match variable count");
  }
  space.post(std::make_unique<PositiveTable>(
      std::vector<VarId>(vars.begin(), vars.end()), std::move(tuples)));
}

}  // namespace rr::cp
